// Monitor: standing queries over live ingestion. A subscription
// manager watches a localized query on the salary dataset while
// transactions stream in; every batch that touches the focal region
// produces an incremental rule diff — rules appearing, disappearing,
// or drifting — tagged with the version interval it covers, without
// ever re-running the full query. Batches outside the region are
// skipped by the affectedness gate.
//
// The same machinery backs colarm-serve's POST /v1/subscriptions and
// its SSE event streams; this example drives it in-process through
// the facade (Engine.Subscribe / Engine.RuleDiff) via the standing
// manager.
package main

import (
	"context"
	"fmt"
	"log"

	"colarm"
	"colarm/internal/standing"
)

func main() {
	ds, err := colarm.Salary()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := colarm.Open(ds, colarm.Options{PrimarySupport: 0.18})
	if err != nil {
		log.Fatal(err)
	}

	mgr := standing.NewManager(standing.Config{})
	defer mgr.Close()
	mgr.Attach(ds.Name(), eng)

	// Stand up a query over the Seattle region, tracking rules whose
	// confidence crosses 0.9 in either direction.
	ctx := context.Background()
	sub, err := mgr.Create(ctx, ds.Name(), colarm.Query{
		Range:         map[string][]string{"Location": {"Seattle"}},
		MinSupport:    0.30,
		MinConfidence: 0.50,
	}, &standing.Track{Measure: "confidence", Threshold: 0.90})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscription %s on %q\n", sub.ID(), sub.Query().Canonical())

	cur := sub.Cursor(0) // from the beginning: first event is the snapshot

	batches := []struct {
		label   string
		inserts []map[string]string
	}{
		{"Seattle hire (inside the focal region)", []map[string]string{{
			"Company": "Facebook", "Title": "Sw Engg", "Location": "Seattle",
			"Gender": "F", "Age": "20-30", "Salary": "30K-60K"}}},
		{"Boston hire (outside the region - gate skips the diff)", []map[string]string{{
			"Company": "Google", "Title": "QA Engg", "Location": "Boston",
			"Gender": "M", "Age": "20-30", "Salary": "60K-90K"}}},
		{"two more Seattle hires", []map[string]string{
			{"Company": "Microsoft", "Title": "Engg Mgr", "Location": "Seattle",
				"Gender": "M", "Age": "30-40", "Salary": "90K-120K"},
			{"Company": "Facebook", "Title": "QA Mgr", "Location": "Seattle",
				"Gender": "F", "Age": "30-40", "Salary": "90K-120K"}}},
	}

	for _, b := range batches {
		fmt.Printf("\n=== ingest: %s\n", b.label)
		if _, err := eng.Ingest(b.inserts, nil); err != nil {
			log.Fatal(err)
		}
		// Wait for the batch to be fully processed, then drain
		// whatever events it produced (none, when the gate skipped).
		if err := mgr.Quiesce(ctx); err != nil {
			log.Fatal(err)
		}
		drain(cur)
	}
	fmt.Println("\n(no event for the Boston batch: its rows cannot change any Seattle rule)")
}

// drain prints the events currently buffered on the cursor.
func drain(cur *standing.Cursor) {
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 0)
		evs, err := cur.Next(ctx)
		cancel()
		if err != nil {
			return // deadline: nothing buffered
		}
		for _, ev := range evs {
			fmt.Printf("event %d %s: versions (%d, %d]\n",
				ev.Seq, ev.Type, ev.FromVersion, ev.ToVersion)
			for _, r := range ev.Rules {
				fmt.Printf("  rule        %v\n", r)
			}
			for _, r := range ev.Appeared {
				fmt.Printf("  appeared    %v\n", r)
			}
			for _, r := range ev.Disappeared {
				fmt.Printf("  disappeared %v\n", r)
			}
			for _, r := range ev.Updated {
				fmt.Printf("  updated     %v\n", r)
			}
			for _, c := range ev.Crossed {
				fmt.Printf("  crossed %s %s %.2f: %.2f -> %.2f on %v\n",
					c.Direction, c.Measure, c.Threshold, c.Previous, c.Current, c.Rule)
			}
		}
	}
}
