// Package apriori implements the classic level-wise frequent itemset
// miner of Agrawal & Srikant (VLDB 1994). COLARM uses it in two roles:
// as a cross-checking oracle for the CHARM miner (every closed frequent
// itemset must appear among Apriori's frequent itemsets with the same
// support), and as an alternative engine for the traditional ARM baseline
// plan.
package apriori

import (
	"fmt"
	"sort"

	"colarm/internal/bitset"
	"colarm/internal/itemset"
	"colarm/internal/relation"
)

// FrequentSet is one frequent itemset with its tidset and support.
type FrequentSet struct {
	Items   itemset.Set
	Tids    *bitset.Set
	Support int
}

// Result holds all frequent itemsets grouped by level (itemset length);
// Levels[k] holds the (k+1)-itemsets.
type Result struct {
	Levels     [][]*FrequentSet
	NumRecords int
	MinCount   int
}

// All returns every frequent itemset across levels in deterministic
// order.
func (r *Result) All() []*FrequentSet {
	var out []*FrequentSet
	for _, lvl := range r.Levels {
		out = append(out, lvl...)
	}
	return out
}

// Mine runs Apriori over the dataset at an absolute support count.
// maxLen caps the itemset length explored (0 means unlimited) — the ARM
// plan uses the cap to bound worst-case query latency.
func Mine(d *relation.Dataset, sp *itemset.Space, minCount, maxLen int) (*Result, error) {
	return MineTidsets(itemset.ItemTidsets(d, sp), d.NumRecords(), minCount, maxLen)
}

// MineTidsets runs Apriori over per-item tidsets; nil tidsets exclude the
// item from the universe.
func MineTidsets(tidsets []*bitset.Set, numRecords, minCount, maxLen int) (*Result, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("apriori: minimum support count %d < 1", minCount)
	}
	if maxLen < 0 {
		return nil, fmt.Errorf("apriori: maxLen %d < 0", maxLen)
	}
	res := &Result{NumRecords: numRecords, MinCount: minCount}

	// Level 1: frequent singletons in item order.
	var level []*FrequentSet
	for it, t := range tidsets {
		if t == nil {
			continue
		}
		if c := t.Count(); c >= minCount {
			level = append(level, &FrequentSet{
				Items:   itemset.Set{itemset.Item(it)},
				Tids:    t.Clone(),
				Support: c,
			})
		}
	}
	for len(level) > 0 {
		res.Levels = append(res.Levels, level)
		if maxLen > 0 && len(res.Levels) >= maxLen {
			break
		}
		level = nextLevel(level, minCount)
	}
	return res, nil
}

// nextLevel generates and counts the (k+1)-candidates from the frequent
// k-itemsets using the prefix join plus downward-closure pruning.
func nextLevel(level []*FrequentSet, minCount int) []*FrequentSet {
	// Index current level for the pruning subset tests.
	have := make(map[string]bool, len(level))
	for _, f := range level {
		have[f.Items.Key()] = true
	}
	var next []*FrequentSet
	for i := 0; i < len(level); i++ {
		fi := level[i]
		k := len(fi.Items)
		for j := i + 1; j < len(level); j++ {
			fj := level[j]
			// Prefix join: first k-1 items equal, last item of j greater.
			if !samePrefix(fi.Items, fj.Items) {
				// level is sorted by items; once prefixes diverge no
				// later j can match i.
				break
			}
			cand := append(fi.Items.Clone(), fj.Items[k-1])
			if !allSubsetsFrequent(cand, have) {
				continue
			}
			tids := bitset.Intersect(fi.Tids, fj.Tids)
			if c := tids.Count(); c >= minCount {
				next = append(next, &FrequentSet{Items: cand, Tids: tids, Support: c})
			}
		}
	}
	sort.Slice(next, func(a, b int) bool { return lessItems(next[a].Items, next[b].Items) })
	return next
}

func samePrefix(a, b itemset.Set) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] < b[len(b)-1]
}

// allSubsetsFrequent applies downward closure: every k-subset of the
// (k+1)-candidate must be frequent.
func allSubsetsFrequent(cand itemset.Set, have map[string]bool) bool {
	if len(cand) <= 2 {
		return true // both generating subsets are frequent by construction
	}
	tmp := make(itemset.Set, 0, len(cand)-1)
	for drop := 0; drop < len(cand); drop++ {
		tmp = tmp[:0]
		for i, it := range cand {
			if i != drop {
				tmp = append(tmp, it)
			}
		}
		if !have[tmp.Key()] {
			return false
		}
	}
	return true
}

func lessItems(a, b itemset.Set) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Support looks up the support of an exact itemset in the result, or -1
// if it is not frequent.
func (r *Result) Support(s itemset.Set) int {
	k := len(s)
	if k == 0 || k > len(r.Levels) {
		return -1
	}
	key := s.Key()
	for _, f := range r.Levels[k-1] {
		if f.Items.Key() == key {
			return f.Support
		}
	}
	return -1
}

// ClosedOnly filters the frequent itemsets down to the closed ones
// (no frequent superset with equal support); used to cross-check CHARM.
func (r *Result) ClosedOnly() []*FrequentSet {
	var out []*FrequentSet
	for li, lvl := range r.Levels {
		for _, f := range lvl {
			closed := true
			if li+1 < len(r.Levels) {
				for _, g := range r.Levels[li+1] {
					if g.Support == f.Support && f.Items.SubsetOf(g.Items) {
						closed = false
						break
					}
				}
			}
			if closed {
				out = append(out, f)
			}
		}
	}
	return out
}
