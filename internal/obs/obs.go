// Package obs is the engine's observability layer: per-query operator
// traces, engine-level cumulative metrics (atomic counters and
// fixed-bucket latency histograms with a Prometheus text exposition
// writer), and the running plan-choice accuracy tracker that scores the
// cost-based optimizer online against measured plan times — the
// paper's §5.1 predicted-vs-measured study, maintained continuously.
//
// Everything on the metrics side is goroutine-safe and
// allocation-conscious: counters and histogram buckets are single
// atomic words, so recording from the executor's worker pool or from
// concurrent Mine callers never takes a lock. A Trace, in contrast,
// belongs to exactly one query execution and is recorded only from the
// query's own goroutine; cross-query aggregates live in a Registry.
package obs

import "fmt"

// Op identifies one mining operator in a query trace (the isolated
// operators of paper Section 4 the six plans are pipelined from).
type Op uint8

const (
	OpSearch Op = iota
	OpSupportedSearch
	OpEliminate
	OpUnion
	OpVerify
	OpSelect
	OpARM
)

func (o Op) String() string {
	switch o {
	case OpSearch:
		return "SEARCH"
	case OpSupportedSearch:
		return "SUPPORTED-SEARCH"
	case OpEliminate:
		return "ELIMINATE"
	case OpUnion:
		return "UNION"
	case OpVerify:
		return "VERIFY"
	case OpSelect:
		return "SELECT"
	case OpARM:
		return "ARM"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}
