package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"colarm"
)

func salaryRecord(t testing.TB, eng *colarm.Engine) map[string]string {
	t.Helper()
	rec := make(map[string]string)
	for _, a := range eng.Dataset().Attributes() {
		vals, err := eng.Dataset().Values(a)
		if err != nil {
			t.Fatal(err)
		}
		rec[a] = vals[0]
	}
	return rec
}

func decodeIngest(t testing.TB, w *httptest.ResponseRecorder) ingestResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body: %s", w.Code, w.Body.String())
	}
	var resp ingestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestIngestEndpoint(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	h := s.Handler()
	eng, _, err := reg.Get("salary")
	if err != nil {
		t.Fatal(err)
	}

	w := postJSON(t, h, "/v1/ingest", ingestRequest{
		Dataset: "salary",
		Inserts: []map[string]string{salaryRecord(t, eng)},
		Deletes: []int{0},
		Rebuild: "never",
	})
	resp := decodeIngest(t, w)
	if resp.Inserted != 1 || resp.Deleted != 1 || resp.RebuildStarted {
		t.Fatalf("unexpected ingest response: %+v", resp)
	}
	if st := resp.Staleness; st.BufferedRows != 1 || st.Tombstones != 1 || st.Version != 1 {
		t.Fatalf("unexpected staleness: %+v", st)
	}

	// The staleness shows up in the dataset listing.
	req := httptest.NewRequest("GET", "/v1/datasets", nil)
	lw := httptest.NewRecorder()
	h.ServeHTTP(lw, req)
	var listing struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(lw.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Datasets) != 1 || listing.Datasets[0].BufferedRows != 1 || listing.Datasets[0].Tombstones != 1 {
		t.Fatalf("listing does not report staleness: %+v", listing.Datasets)
	}

	// Queries over the stale engine keep answering (exactly, per the
	// root-package differential test; here we just check they serve).
	mw := postJSON(t, h, "/v1/mine", mineRequest{Dataset: "salary", MinSupport: 0.3, MinConfidence: 0.8})
	if mw.Code != http.StatusOK {
		t.Fatalf("mine on stale engine: %d %s", mw.Code, mw.Body.String())
	}

	// Validation failures map to 400.
	bad := salaryRecord(t, eng)
	bad["Location"] = "Atlantis"
	if w := postJSON(t, h, "/v1/ingest", ingestRequest{Dataset: "salary", Inserts: []map[string]string{bad}}); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown value: %d %s", w.Code, w.Body.String())
	}
	if w := postJSON(t, h, "/v1/ingest", ingestRequest{Dataset: "salary", Deletes: []int{99999}}); w.Code != http.StatusBadRequest {
		t.Fatalf("bad record id: %d %s", w.Code, w.Body.String())
	}
	if w := postJSON(t, h, "/v1/ingest", ingestRequest{Dataset: "salary", Rebuild: "sometimes"}); w.Code != http.StatusBadRequest {
		t.Fatalf("bad rebuild policy: %d %s", w.Code, w.Body.String())
	}
	if w := postJSON(t, h, "/v1/ingest", ingestRequest{Dataset: "nope"}); w.Code != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d %s", w.Code, w.Body.String())
	}
}

// TestIngestForcedRebuild checks the background rebuild path end to
// end: a forced rebuild reports rebuildStarted, swaps a fresh engine
// into the registry (generation bump), and the fresh engine has
// absorbed the delta.
func TestIngestForcedRebuild(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	h := s.Handler()
	eng, gen0, err := reg.Get("salary")
	if err != nil {
		t.Fatal(err)
	}
	base := eng.Dataset().NumRecords()

	w := postJSON(t, h, "/v1/ingest", ingestRequest{
		Dataset: "salary",
		Inserts: []map[string]string{salaryRecord(t, eng), salaryRecord(t, eng)},
		Deletes: []int{0},
		Rebuild: "force",
	})
	resp := decodeIngest(t, w)
	if !resp.RebuildStarted {
		t.Fatalf("forced rebuild did not start: %+v", resp)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		fresh, gen, err := reg.Get("salary")
		if err != nil {
			t.Fatal(err)
		}
		if gen == gen0+1 {
			if got, want := fresh.Dataset().NumRecords(), base+2-1; got != want {
				t.Fatalf("rebuilt dataset has %d records, want %d", got, want)
			}
			if st := fresh.Staleness(); st.BufferedRows != 0 || st.Tombstones != 0 {
				t.Fatalf("rebuilt engine still stale: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rebuild never swapped the registry generation")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWrongMethod405 pins the JSON 405 + Allow contract on every /v1
// route.
func TestWrongMethod405(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct{ method, path, allow string }{
		{"GET", "/v1/mine", "POST"},
		{"DELETE", "/v1/mine", "POST"},
		{"GET", "/v1/explain", "POST"},
		{"PUT", "/v1/ingest", "POST"},
		{"POST", "/v1/datasets", "GET"},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", c.method, c.path, w.Code)
		}
		if got := w.Header().Get("Allow"); got != c.allow {
			t.Fatalf("%s %s: Allow %q, want %q", c.method, c.path, got, c.allow)
		}
		var er errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Code == "" {
			t.Fatalf("%s %s: body is not a JSON error: %q", c.method, c.path, w.Body.String())
		}
	}
}

// TestConcurrentIngestMineReload drives concurrent ingests, mining
// queries and registry reloads (forced rebuild swaps plus manual
// re-registrations) against one server; run under -race this is the
// subsystem's concurrency proof. Ingest conflicts (409, racing a
// rebuild) are expected and tolerated; every other failure is not.
func TestConcurrentIngestMineReload(t *testing.T) {
	s, reg := newTestServer(t, Config{CacheEntries: 64})
	h := s.Handler()
	eng, _, err := reg.Get("salary")
	if err != nil {
		t.Fatal(err)
	}
	rec := salaryRecord(t, eng)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 64)

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := postJSON(t, h, "/v1/mine", mineRequest{
					Dataset:       "salary",
					MinSupport:    0.2 + 0.4*rng.Float64(),
					MinConfidence: 0.8,
					NoCache:       rng.Intn(2) == 0,
				})
				if w.Code != http.StatusOK {
					fail <- fmt.Sprintf("mine: %d %s", w.Code, w.Body.String())
					return
				}
			}
		}(int64(i))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			policy := "never"
			if rng.Intn(4) == 0 {
				policy = "force"
			}
			w := postJSON(t, h, "/v1/ingest", ingestRequest{
				Dataset: "salary",
				Inserts: []map[string]string{rec},
				Rebuild: policy,
			})
			if w.Code != http.StatusOK && w.Code != http.StatusConflict {
				fail <- fmt.Sprintf("ingest: %d %s", w.Code, w.Body.String())
				return
			}
		}
	}()

	// Manual registry reloads racing everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			reg.Register(salaryEngine(t, nil))
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}
