package advisor

import (
	"fmt"
	"sort"
	"time"

	"colarm/internal/plans"
)

// QueryObservation is one mined query in the workload log.
type QueryObservation struct {
	// Canonical is the query's canonical form (dedup key for reporting).
	Canonical string
	// SubsetSize is the focal subset's record count; LocalCount the
	// localized support-count threshold (minsupport over the subset) —
	// the number a MIP-index's primary count must not exceed for the
	// query to be answerable from prestored CFIs.
	SubsetSize int
	LocalCount int
	// Plan is the executed plan; IndexUsed the physical index that
	// answered (0 = base, i > 0 = secondary i, counting from 1).
	Plan      plans.Kind
	IndexUsed int
	// ForcedARM reports the applicability gate overrode a MIP argmin —
	// the queries a lower-primary secondary index would reclaim.
	ForcedARM bool
	Measured  time.Duration
	// BestMIPCost is the estimated cost of the cheapest MIP-backed plan
	// had it been applicable; ARMCost the ARM estimate. Both under the
	// units live at execution time.
	BestMIPCost float64
	ARMCost     float64
}

// SecondaryState describes one installed secondary index for the
// recommendation pass.
type SecondaryState struct {
	ID           int // 1-based index id as logged in IndexUsed
	Primary      float64
	PrimaryCount int
	Stale        bool
}

// Recommendation is one index action the workload pays for.
type Recommendation struct {
	// Action is "build" or "drop".
	Action string
	// Primary is the primary-support fraction of the index to build or
	// drop; PrimaryCount its support-count form over the current
	// records.
	Primary      float64
	PrimaryCount int
	// BenefitNanos is the accumulated measured-over-estimated cost gap
	// the action recovers (build) or the residual value lost (drop);
	// BuildCostNanos the build price it was weighed against.
	BenefitNanos   int64
	BuildCostNanos int64
	// Queries counts the logged queries supporting the recommendation.
	Queries int
	Reason  string
}

// WorkloadStats summarizes the logged window.
type WorkloadStats struct {
	Window    int
	ForcedARM int
	// SecondaryWins counts logged queries answered by any secondary
	// index.
	SecondaryWins int
}

// workload is the query-log side of the advisor. All methods are
// called under the advisor's lock.
type workload struct {
	cfg Config
	log []QueryObservation // ring, newest last
}

func (w *workload) init(cfg Config) { w.cfg = cfg }

func (w *workload) observe(q QueryObservation) {
	w.log = append(w.log, q)
	if over := len(w.log) - w.cfg.LogWindow; over > 0 {
		w.log = append(w.log[:0], w.log[over:]...)
	}
}

func (w *workload) stats() WorkloadStats {
	st := WorkloadStats{Window: len(w.log)}
	for _, q := range w.log {
		if q.ForcedARM {
			st.ForcedARM++
		}
		if q.IndexUsed > 0 {
			st.SecondaryWins++
		}
	}
	return st
}

// recommendations mines the log: build a lower-primary secondary when
// the forced-ARM queries' accumulated cost gap pays for the build, drop
// a secondary that stopped winning queries.
func (w *workload) recommendations(records int, secondaries []SecondaryState, buildCost time.Duration, cfg Config) []Recommendation {
	var out []Recommendation

	// Build: collect the forced-ARM evidence not already covered by an
	// installed (fresh) secondary.
	covered := func(localCount int) bool {
		for _, s := range secondaries {
			if !s.Stale && s.PrimaryCount <= localCount {
				return true
			}
		}
		return false
	}
	var counts []int
	benefit := 0.0
	supporting := 0
	for _, q := range w.log {
		if !q.ForcedARM || covered(q.LocalCount) {
			continue
		}
		supporting++
		counts = append(counts, q.LocalCount)
		if gap := float64(q.Measured.Nanoseconds()) - q.BestMIPCost; gap > 0 {
			benefit += gap
		}
	}
	if supporting > 0 && records > 0 {
		// Target the 10th percentile of the uncovered localized counts:
		// an index mined at that primary count reclaims ~90% of the
		// forced-ARM workload while staying as small as possible.
		sort.Ints(counts)
		target := counts[len(counts)/10]
		if target < 1 {
			target = 1
		}
		need := cfg.MinBenefitFactor * float64(buildCost.Nanoseconds())
		if benefit >= need && need > 0 {
			out = append(out, Recommendation{
				Action:         "build",
				Primary:        float64(target) / float64(records),
				PrimaryCount:   target,
				BenefitNanos:   int64(benefit),
				BuildCostNanos: buildCost.Nanoseconds(),
				Queries:        supporting,
				Reason: fmt.Sprintf("%d forced-ARM queries accumulated %.1fms over the best inapplicable MIP plan (build costs ~%.1fms)",
					supporting, benefit/1e6, float64(buildCost.Nanoseconds())/1e6),
			})
		}
	}

	// Drop: a secondary that wins almost nothing over a full window is
	// dead weight (memory plus a per-query estimation pass).
	if len(w.log) >= cfg.MinDropWindow {
		wins := make(map[int]int)
		for _, q := range w.log {
			wins[q.IndexUsed]++
		}
		for _, s := range secondaries {
			frac := float64(wins[s.ID]) / float64(len(w.log))
			if frac < cfg.DropWinFraction {
				out = append(out, Recommendation{
					Action:       "drop",
					Primary:      s.Primary,
					PrimaryCount: s.PrimaryCount,
					Queries:      wins[s.ID],
					Reason: fmt.Sprintf("secondary index at primary %.4f won %d of the last %d queries (%.1f%%, below %.1f%%)",
						s.Primary, wins[s.ID], len(w.log), 100*frac, 100*cfg.DropWinFraction),
				})
			}
		}
	}
	return out
}
