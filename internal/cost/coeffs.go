package cost

import "colarm/internal/plans"

// Every plan estimate is an exactly linear function of the unit costs:
// each term multiplies a shape-derived operation count by one unit, the
// shape itself (probe fractions, subset sizes, lattice estimates) never
// reads the units, and the only branch that could couple them —
// AutoCheck's scan-vs-bitmap threshold — depends on the subset size
// alone. The decomposition below exploits that: evaluating the
// estimator once per basis unit vector over one shared query shape
// recovers the exact per-operator coefficient vectors, so an estimate
// under any alternative units is a dot product. This is what makes
// online recalibration cheap — the advisor replays logged plan choices
// under candidate units without re-probing the index.

// NumUnits is the dimension of the unit-cost vector.
const NumUnits = 5

// UnitNames returns the unit names in vector order (matching Vec).
func UnitNames() [NumUnits]string {
	return [NumUnits]string{"wordOp", "boxRel", "idProbe", "mapOp", "genOp"}
}

// Vec returns the units as a vector in UnitNames order.
func (u Units) Vec() [NumUnits]float64 {
	return [NumUnits]float64{u.WordOp, u.BoxRel, u.IDProbe, u.MapOp, u.GenOp}
}

// UnitsFromVec is the inverse of Vec.
func UnitsFromVec(v [NumUnits]float64) Units {
	return Units{WordOp: v[0], BoxRel: v[1], IDProbe: v[2], MapOp: v[3], GenOp: v[4]}
}

// TermCoeffs is one operator-labeled cost term decomposed over the unit
// basis: the term's cost under units u is the dot product Coeff · u.
type TermCoeffs struct {
	Operator string
	Coeff    [NumUnits]float64
}

// Cost evaluates the term under the given units.
func (t TermCoeffs) Cost(u Units) float64 {
	return dot(t.Coeff, u.Vec())
}

// PlanCoeffs is one plan's full estimate decomposed over the unit
// basis, term by term in pipeline order (matching Estimate.Terms).
type PlanCoeffs struct {
	Plan  plans.Kind
	Terms []TermCoeffs
}

// Total evaluates the plan's total estimated cost under the given
// units — exactly what estimating with those units would return.
func (pc PlanCoeffs) Total(u Units) float64 {
	return dot(pc.TotalCoeff(), u.Vec())
}

// TotalCoeff sums the term coefficient vectors: the plan's total cost
// as a linear form over the units.
func (pc PlanCoeffs) TotalCoeff() [NumUnits]float64 {
	var out [NumUnits]float64
	for _, t := range pc.Terms {
		for i, c := range t.Coeff {
			out[i] += c
		}
	}
	return out
}

func dot(a, b [NumUnits]float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Decompose computes the unit-basis coefficient decomposition of every
// plan's estimate for the query, sharing one query shape (one round of
// index and record probes) across all plans and basis vectors. The
// returned slice is ordered as plans.Kinds().
func (mo *Model) Decompose(q *plans.Query) []PlanCoeffs {
	s := mo.shape(q)
	out := make([]PlanCoeffs, 0, len(plans.Kinds()))
	for _, k := range plans.Kinds() {
		out = append(out, mo.decomposeOne(k, q, s))
	}
	return out
}

func (mo *Model) decomposeOne(k plans.Kind, q *plans.Query, s queryShape) PlanCoeffs {
	pc := PlanCoeffs{Plan: k}
	basis := *mo
	for b := 0; b < NumUnits; b++ {
		var v [NumUnits]float64
		v[b] = 1
		basis.U = UnitsFromVec(v)
		terms := basis.estimateOne(k, q, s).Terms()
		if pc.Terms == nil {
			pc.Terms = make([]TermCoeffs, len(terms))
			for i, t := range terms {
				pc.Terms[i].Operator = t.Operator
			}
		}
		for i, t := range terms {
			pc.Terms[i].Coeff[b] = t.Cost
		}
	}
	return pc
}
