package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/plans"
)

// Fig8Row is one point of the Figure 8 curve.
type Fig8Row struct {
	Threshold float64
	CFIs      int
}

// RunFig8 mines the dataset at each primary threshold of the spec's
// sweep and reports the closed-frequent-itemset counts (E1).
func (e *Env) RunFig8() ([]Fig8Row, error) {
	sp := e.Engine.Index.Space
	out := make([]Fig8Row, 0, len(e.Spec.Fig8Sweep))
	for _, th := range e.Spec.Fig8Sweep {
		res, err := charm.MineSupport(e.Dataset, sp, th)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig8Row{Threshold: th, CFIs: len(res.Closed)})
	}
	return out, nil
}

// GridCell is one bar group of Figures 9-11: a (|DQ|, minsupp) setting
// with the average execution time of every plan and the optimizer's
// majority choice.
type GridCell struct {
	DQFrac  float64
	MinSupp float64
	MinConf float64
	Runs    int

	AvgTime   map[plans.Kind]time.Duration
	Chosen    plans.Kind // optimizer's majority choice
	Fastest   plans.Kind // measured-best plan on average
	ChosenAvg time.Duration
	BestAvg   time.Duration
}

// Regret is the extra cost fraction of the chosen plan vs the fastest.
func (c GridCell) Regret() float64 {
	if c.BestAvg <= 0 {
		return 0
	}
	return float64(c.ChosenAvg-c.BestAvg) / float64(c.BestAvg)
}

// Correct reports whether the optimizer's choice was (effectively) the
// best plan: either identical or within tol extra cost.
func (c GridCell) Correct(tol float64) bool {
	return c.Chosen == c.Fastest || c.Regret() <= tol
}

// RunPlanGrid measures the average execution time of all six plans over
// runsPer random focal subsets for every (DQFrac, minsupp) combination
// at a fixed minconf (E2-E4). The optimizer's choice is recorded per
// run and the majority reported per cell (the arrows of Figures 9-11).
func (e *Env) RunPlanGrid(minConf float64, runsPer int, rng *rand.Rand) ([]GridCell, error) {
	var cells []GridCell
	for _, frac := range e.Spec.DQFracs {
		for _, ms := range e.Spec.MinSupps {
			cell, err := e.runCell(frac, ms, minConf, runsPer, rng)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func (e *Env) runCell(frac, minSupp, minConf float64, runsPer int, rng *rand.Rand) (GridCell, error) {
	cell := GridCell{
		DQFrac:  frac,
		MinSupp: minSupp,
		MinConf: minConf,
		Runs:    runsPer,
		AvgTime: map[plans.Kind]time.Duration{},
	}
	chosenVotes := map[plans.Kind]int{}
	total := map[plans.Kind]time.Duration{}
	for run := 0; run < runsPer; run++ {
		reg := e.RandomFocalSubset(rng, frac)
		q := e.QueryFor(reg, minSupp, minConf)
		choice, _ := e.Engine.Model.Choose(q)
		chosenVotes[choice]++
		for _, k := range plans.Kinds() {
			res, err := e.Engine.Executor.Run(k, q)
			if err != nil {
				return cell, err
			}
			total[k] += res.Stats.Duration
		}
	}
	for k, d := range total {
		cell.AvgTime[k] = d / time.Duration(runsPer)
	}
	// Majority optimizer choice.
	bestVotes := -1
	for _, k := range plans.Kinds() {
		if v := chosenVotes[k]; v > bestVotes {
			bestVotes = v
			cell.Chosen = k
		}
	}
	// Measured fastest.
	first := true
	for _, k := range plans.Kinds() {
		if first || cell.AvgTime[k] < cell.BestAvg {
			cell.Fastest = k
			cell.BestAvg = cell.AvgTime[k]
			first = false
		}
	}
	cell.ChosenAvg = cell.AvgTime[cell.Chosen]
	return cell, nil
}

// AccuracyResult summarizes E5 over a dataset's full 36-scenario grid.
type AccuracyResult struct {
	Dataset   string
	Scenarios int
	Correct   int
	// MaxMissRegret is the largest extra-cost fraction among wrong
	// picks (the paper reports <= 5%).
	MaxMissRegret float64
	Cells         []GridCell
}

// Accuracy is the fraction of scenarios with a correct pick.
func (a AccuracyResult) Accuracy() float64 {
	if a.Scenarios == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Scenarios)
}

// RunAccuracy sweeps the full (DQ × minsupp × minconf) grid — 36
// scenarios per dataset, 108 over the three — and scores the optimizer
// (E5). A pick is correct when the chosen plan is the measured-fastest
// or within tol extra cost of it.
func (e *Env) RunAccuracy(runsPer int, tol float64, rng *rand.Rand) (AccuracyResult, error) {
	res := AccuracyResult{Dataset: e.Spec.Name}
	for _, frac := range e.Spec.DQFracs {
		for _, ms := range e.Spec.MinSupps {
			for _, mc := range e.Spec.MinConfs {
				cell, err := e.runCell(frac, ms, mc, runsPer, rng)
				if err != nil {
					return res, err
				}
				res.Scenarios++
				if cell.Correct(tol) {
					res.Correct++
				} else if r := cell.Regret(); r > res.MaxMissRegret {
					res.MaxMissRegret = r
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res, nil
}

// GainRow is one bar group of Figure 12: the percentage execution-cost
// gain of each optimized plan over the baseline S-E-V plan.
type GainRow struct {
	Dataset string
	Gains   map[plans.Kind]float64 // S-VS, SS-E-V, SS-VS, SS-E-U-V
}

// Gains aggregates Figure 12 from measured grid cells: for plan P,
// gain = (T_SEV - T_P) / T_SEV averaged over cells.
func Gains(dataset string, cells []GridCell) GainRow {
	row := GainRow{Dataset: dataset, Gains: map[plans.Kind]float64{}}
	optimized := []plans.Kind{plans.SVS, plans.SSEV, plans.SSVS, plans.SSEUV}
	n := 0
	sums := map[plans.Kind]float64{}
	for _, c := range cells {
		base := c.AvgTime[plans.SEV]
		if base <= 0 {
			continue
		}
		n++
		for _, k := range optimized {
			sums[k] += float64(base-c.AvgTime[k]) / float64(base)
		}
	}
	if n > 0 {
		for _, k := range optimized {
			row.Gains[k] = 100 * sums[k] / float64(n)
		}
	}
	return row
}

// Fig13Row reports, for one focal subset size, the average counts of
// locally frequent CFIs split into fresh-local (hidden at the global
// reference minsupport) and repeated-global ones (E7).
type Fig13Row struct {
	DQFrac         float64
	FreshLocal     float64
	RepeatedGlobal float64
}

// RunLocalVsGlobal measures Figure 13: for each subset size, random
// focal subsets are drawn and every prestored CFI that qualifies at the
// figure's local minsupport is classified by whether its global support
// reaches the dataset's reference global minsupport.
func (e *Env) RunLocalVsGlobal(runsPer int, rng *rand.Rand) []Fig13Row {
	idx := e.Engine.Index
	m := e.Dataset.NumRecords()
	globalNeed := charm.CountFor(e.Spec.GlobalMinSupp, m)
	localMinSupp := e.Spec.MinSupps[0] // the figure's local threshold

	var rows []Fig13Row
	fracs := append([]float64(nil), e.Spec.DQFracs...)
	sort.Float64s(fracs) // ascending, as in the figure (1% .. 50%)
	for _, frac := range fracs {
		var fresh, repeated int
		for run := 0; run < runsPer; run++ {
			reg := e.RandomFocalSubset(rng, frac)
			dq := idx.SubsetBitmap(reg)
			size := dq.Count()
			if size == 0 {
				continue
			}
			need := charm.CountFor(localMinSupp, size)
			for id := 0; id < idx.ITTree.Size(); id++ {
				c := idx.ITTree.Set(id)
				if len(c.Items) < 2 {
					continue
				}
				if !reg.Intersects(idx.Boxes[id]) {
					continue
				}
				if bitset.AndCount(c.Tids, dq) < need {
					continue
				}
				if c.Support >= globalNeed {
					repeated++
				} else {
					fresh++
				}
			}
		}
		rows = append(rows, Fig13Row{
			DQFrac:         frac,
			FreshLocal:     float64(fresh) / float64(runsPer),
			RepeatedGlobal: float64(repeated) / float64(runsPer),
		})
	}
	return rows
}

// SimpsonFinding is one locally prominent, globally hidden CFI from the
// Section 5.3 style analysis (E8).
type SimpsonFinding struct {
	Items       string
	LocalSupp   float64
	GlobalSupp  float64
	LocalCount  int
	GlobalCount int
}

// SimpsonReport summarizes E8 for one subpopulation selection.
type SimpsonReport struct {
	RangeAttr   string
	RangeValue  string
	SubsetSize  int
	LocalCFIs   int // CFIs qualifying locally at the threshold
	HiddenCFIs  int // of those, globally below the hidden threshold
	Examples    []SimpsonFinding
	LocalThresh float64
	HideThresh  float64
}

// RunSimpson reproduces the paper's mushroom anecdote: select the
// subpopulation of one attribute value and list the CFIs that qualify
// locally at localThresh but sit below hideThresh globally — rules
// hidden in the global context.
func (e *Env) RunSimpson(attrName, valueLabel string, localThresh, hideThresh float64, maxExamples int) (*SimpsonReport, error) {
	idx := e.Engine.Index
	ai := e.Dataset.AttrIndex(attrName)
	if ai < 0 {
		return nil, fmt.Errorf("bench: unknown attribute %q", attrName)
	}
	v := e.Dataset.Attrs[ai].ValueIndex(valueLabel)
	if v < 0 {
		return nil, fmt.Errorf("bench: attribute %q has no value %q", attrName, valueLabel)
	}
	reg := itemset.RegionFor(idx.Space)
	if err := reg.Restrict(ai, []int{v}); err != nil {
		return nil, err
	}
	dq := idx.SubsetBitmap(reg)
	size := dq.Count()
	rep := &SimpsonReport{
		RangeAttr: attrName, RangeValue: valueLabel, SubsetSize: size,
		LocalThresh: localThresh, HideThresh: hideThresh,
	}
	if size == 0 {
		return rep, nil
	}
	need := charm.CountFor(localThresh, size)
	m := e.Dataset.NumRecords()
	for id := 0; id < idx.ITTree.Size(); id++ {
		c := idx.ITTree.Set(id)
		if len(c.Items) < 2 {
			continue
		}
		local := bitset.AndCount(c.Tids, dq)
		if local < need {
			continue
		}
		rep.LocalCFIs++
		globalSupp := float64(c.Support) / float64(m)
		if globalSupp <= hideThresh {
			rep.HiddenCFIs++
			if len(rep.Examples) < maxExamples {
				rep.Examples = append(rep.Examples, SimpsonFinding{
					Items:       c.Items.Format(idx.Space),
					LocalSupp:   float64(local) / float64(size),
					GlobalSupp:  globalSupp,
					LocalCount:  local,
					GlobalCount: c.Support,
				})
			}
		}
	}
	return rep, nil
}
