package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicAddRemoveContains(t *testing.T) {
	s := New(130)
	ids := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, id := range ids {
		s.Add(id)
	}
	for _, id := range ids {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	if s.Count() != len(ids) {
		t.Fatalf("Count() = %d, want %d", s.Count(), len(ids))
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) after Remove = true")
	}
	if s.Count() != len(ids)-1 {
		t.Errorf("Count() after remove = %d, want %d", s.Count(), len(ids)-1)
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(1000) {
		t.Error("out-of-range ids must be reported as absent")
	}
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if !s.IsEmpty() || s.Count() != 0 {
		t.Error("zero-capacity set must be empty")
	}
	s.Fill()
	if s.Count() != 0 {
		t.Error("Fill on zero-capacity set must stay empty")
	}
	neg := New(-5)
	if neg.Len() != 0 {
		t.Errorf("New(-5).Len() = %d, want 0", neg.Len())
	}
}

func TestFromIDsIgnoresOutOfRange(t *testing.T) {
	s := FromIDs(8, 1, 3, 9, -2, 7)
	want := []int{1, 3, 7}
	got := s.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
}

func TestFillAndTrim(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(n=%d).Count() = %d, want %d", n, s.Count(), n)
		}
	}
}

func TestComplement(t *testing.T) {
	s := FromIDs(70, 0, 13, 69)
	s.Complement()
	if s.Count() != 67 {
		t.Fatalf("complement count = %d, want 67", s.Count())
	}
	if s.Contains(13) || !s.Contains(14) {
		t.Error("complement membership wrong")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIDs(100, 1, 2, 3, 50, 99)
	b := FromIDs(100, 2, 3, 4, 98, 99)

	if got := Intersect(a, b).IDs(); !eqInts(got, []int{2, 3, 99}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Union(a, b).IDs(); !eqInts(got, []int{1, 2, 3, 4, 50, 98, 99}) {
		t.Errorf("Union = %v", got)
	}
	if got := Difference(a, b).IDs(); !eqInts(got, []int{1, 50}) {
		t.Errorf("Difference = %v", got)
	}
	if got := AndCount(a, b); got != 3 {
		t.Errorf("AndCount = %d, want 3", got)
	}
}

func TestInPlaceOpsMatchFunctional(t *testing.T) {
	a := FromIDs(64, 1, 5, 9)
	b := FromIDs(64, 5, 9, 10)

	c := a.Clone()
	c.And(b)
	if !c.Equal(Intersect(a, b)) {
		t.Error("And != Intersect")
	}
	c = a.Clone()
	c.Or(b)
	if !c.Equal(Union(a, b)) {
		t.Error("Or != Union")
	}
	c = a.Clone()
	c.AndNot(b)
	if !c.Equal(Difference(a, b)) {
		t.Error("AndNot != Difference")
	}
}

func TestSubsetIntersects(t *testing.T) {
	a := FromIDs(32, 1, 2)
	b := FromIDs(32, 1, 2, 3)
	c := FromIDs(32, 9)
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a unexpected")
	}
	if !a.SubsetOf(a) {
		t.Error("a ⊆ a expected")
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIDs(128, 3, 60, 61, 90)
	var seen []int
	s.ForEach(func(id int) bool {
		seen = append(seen, id)
		return len(seen) < 2
	})
	if !eqInts(seen, []int{3, 60}) {
		t.Errorf("early stop visited %v", seen)
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And across capacities must panic")
		}
	}()
	New(10).And(New(20))
}

func TestStringer(t *testing.T) {
	if got := FromIDs(16, 1, 5, 9).String(); got != "{1, 5, 9}" {
		t.Errorf("String() = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestHashEqualSetsAgree(t *testing.T) {
	a := FromIDs(256, 7, 100, 200)
	b := FromIDs(256, 200, 7, 100)
	if a.Hash() != b.Hash() {
		t.Error("equal sets must hash equally")
	}
}

// randomSet builds a set plus its mirror map for property checks.
func randomSet(rng *rand.Rand, n int) (*Set, map[int]bool) {
	s := New(n)
	m := make(map[int]bool)
	for i := 0; i < n/2; i++ {
		id := rng.Intn(n)
		s.Add(id)
		m[id] = true
	}
	return s, m
}

func TestQuickAlgebraLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		c, _ := randomSet(r, n)

		// Commutativity.
		if !Intersect(a, b).Equal(Intersect(b, a)) {
			return false
		}
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		// Associativity of union.
		if !Union(Union(a, b), c).Equal(Union(a, Union(b, c))) {
			return false
		}
		// Distributivity: a ∩ (b ∪ c) == (a∩b) ∪ (a∩c).
		if !Intersect(a, Union(b, c)).Equal(Union(Intersect(a, b), Intersect(a, c))) {
			return false
		}
		// De Morgan: ¬(a ∪ b) == ¬a ∩ ¬b.
		na, nb := a.Clone(), b.Clone()
		na.Complement()
		nb.Complement()
		u := Union(a, b)
		u.Complement()
		if !u.Equal(Intersect(na, nb)) {
			return false
		}
		// AndCount consistency.
		if AndCount(a, b) != Intersect(a, b).Count() {
			return false
		}
		// Difference partitions: |a| == |a∩b| + |a\b|.
		if a.Count() != AndCount(a, b)+Difference(a, b).Count() {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesMap(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		s, m := randomSet(r, n)
		if s.Count() != len(m) {
			return false
		}
		for id := range m {
			if !s.Contains(id) {
				return false
			}
		}
		ids := s.IDs()
		if len(ids) != len(m) {
			return false
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				return false // must be ascending
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
