package obs

import "time"

// Span is one operator execution within a traced query.
type Span struct {
	Op       Op
	Duration time.Duration
	// In and Out count the items entering and leaving the operator
	// (candidates, qualified itemsets, rules, ...); -1 marks a side
	// that has no meaningful cardinality (SEARCH consumes a region,
	// not a list).
	In, Out int
	// Workers is the number of goroutines the operator actually fanned
	// out to; 1 means the serial path ran.
	Workers int
	// Detail carries operator-specific counters, preformatted by the
	// executor ("checks=31 eliminated=4", "oracle=96 misses=40", ...).
	Detail string
}

// Trace records the per-operator execution of one query. A Trace is
// owned by a single Run call: the executor records spans from the
// query's goroutine only (worker goroutines never touch it), so it
// needs no synchronization. Attach a fresh Trace per query.
type Trace struct {
	// Label is the executed plan's name, set by the executor.
	Label string
	// Total is the plan's end-to-end duration.
	Total time.Duration
	// Spans lists the operator executions in pipeline order.
	Spans []Span
}

// Record appends one operator span.
func (t *Trace) Record(op Op, d time.Duration, in, out, workers int, detail string) {
	t.Spans = append(t.Spans, Span{Op: op, Duration: d, In: in, Out: out, Workers: workers, Detail: detail})
}
