package shard

import (
	"sort"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
)

// MergeClosed recombines per-shard closed-itemset catalogs into the
// global catalog (DESIGN §13). Given the threshold-1 closed sets of
// each shard — mined over the universe U of globally frequent items,
// with non-U item tidsets nil — and the merged global per-item tidsets,
// it returns exactly the charm.Result a from-scratch global mine over
// the same tidsets at minCount would produce, in the same canonical
// order.
//
// Correctness rests on two facts about closure operators:
//
//  1. The global closure is the intersection of the shard closures:
//     T(X) = ⋃ₛ Tₛ(X) implies clos(X) = ⋂_{s: Tₛ(X)≠∅} closₛ(X),
//     because an item i extends X's global closure iff every record of
//     every shard-local tidset of X contains i. Hence every globally
//     closed frequent X is an intersection of at most K shard-closed
//     sets, all of which the threshold-1 per-shard mines enumerate
//     (any weaker per-shard threshold loses candidates: a set globally
//     frequent overall can sit below any fixed fraction in one shard).
//  2. Restricting to U is sound: a globally frequent itemset contains
//     only globally frequent items, and closures of frequent sets
//     likewise, so no candidate outside 2^U survives the support
//     filter. It also bounds the per-shard threshold-1 enumeration,
//     which over the full item universe could be enormous.
//
// The converse of (1) — an intersection of shard-closed sets need not
// be globally closed, and a shard-closed set need not be globally
// frequent — is handled by re-deriving each candidate's global tidset
// from the merged item tidsets and filtering on support and explicit
// closedness. A corollary worth noting: an itemset closed in every
// shard it touches IS globally closed (its global closure is an
// intersection of copies of itself), so the merge never needs to
// "break" a unanimously closed set; the interesting direction is sets
// closed globally but in no single shard.
func MergeClosed(perShard []*charm.Result, tidsets []*bitset.Set, numRecords, minCount int) *charm.Result {
	if minCount < 1 {
		minCount = 1
	}
	// Universe U of globally frequent items, from the merged tidsets.
	var universe []itemset.Item
	for it, t := range tidsets {
		if t != nil && t.Count() >= minCount {
			universe = append(universe, itemset.Item(it))
		}
	}

	// Candidate pool W: union of the per-shard closed sets, closed
	// under pairwise intersection (worklist: each set intersects every
	// set processed before it, so every pair meets exactly once and
	// k-way intersections emerge by iteration).
	seen := make(map[string]itemset.Set)
	var queue, done []itemset.Set
	add := func(x itemset.Set) {
		if len(x) == 0 {
			return
		}
		k := x.Key()
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = x
		queue = append(queue, x)
	}
	for _, res := range perShard {
		if res == nil {
			continue
		}
		for _, c := range res.Closed {
			add(c.Items)
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range done {
			add(intersect(x, y))
		}
		done = append(done, x)
	}

	// Filter: recompute each candidate's global tidset, keep the
	// globally frequent ones that are explicitly closed (no item of U
	// outside the set is contained in every supporting record).
	var out []*charm.ClosedSet
	for _, x := range done {
		tids := tidsets[x[0]].Clone()
		for _, it := range x[1:] {
			tids.And(tidsets[it])
		}
		supp := tids.Count()
		if supp < minCount {
			continue
		}
		closed := true
		for _, i := range universe {
			if x.Contains(i) {
				continue
			}
			if bitset.AndCount(tids, tidsets[i]) == supp {
				closed = false
				break
			}
		}
		if !closed {
			continue
		}
		tids.Optimize()
		out = append(out, &charm.ClosedSet{Items: x, Tids: tids, Support: supp})
	}

	// Canonical order, matching charm.MineTidsets: by itemset length,
	// then by item ids. Distinct itemsets never tie, so the order is
	// deterministic regardless of map iteration above.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Items, out[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return &charm.Result{Closed: out, NumRecords: numRecords, MinCount: minCount}
}

// intersect computes the sorted-merge intersection of two itemsets
// (itemset.Set carries no intersection helper; both inputs are sorted
// ascending, as is the result).
func intersect(a, b itemset.Set) itemset.Set {
	var out itemset.Set
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
