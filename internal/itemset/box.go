package itemset

import (
	"fmt"
	"strings"
)

// Box is an axis-aligned bounding box in the n-dimensional value-index
// space: for each dimension d, the closed interval [Lo[d], Hi[d]].
// An itemset's MIP box degenerates to a point on the dimensions the
// itemset constrains and spans the extent of its supporting records on
// the rest.
type Box struct {
	Lo, Hi []int32
}

// NewBox allocates a box of n dimensions with an empty (inverted)
// interval in every dimension, ready to be extended with Extend.
func NewBox(n int) Box {
	b := Box{Lo: make([]int32, n), Hi: make([]int32, n)}
	for d := 0; d < n; d++ {
		b.Lo[d] = 1 << 30
		b.Hi[d] = -1
	}
	return b
}

// Dims returns the dimensionality of the box.
func (b Box) Dims() int { return len(b.Lo) }

// Extend grows the box to include the point p (a record's value indices).
func (b Box) Extend(p []int) {
	for d, v := range p {
		if int32(v) < b.Lo[d] {
			b.Lo[d] = int32(v)
		}
		if int32(v) > b.Hi[d] {
			b.Hi[d] = int32(v)
		}
	}
}

// ExtendBox grows the box to include the box o.
func (b Box) ExtendBox(o Box) {
	for d := range b.Lo {
		if o.Lo[d] < b.Lo[d] {
			b.Lo[d] = o.Lo[d]
		}
		if o.Hi[d] > b.Hi[d] {
			b.Hi[d] = o.Hi[d]
		}
	}
}

// IsEmpty reports whether the box has an inverted interval (never
// extended) in any dimension.
func (b Box) IsEmpty() bool {
	for d := range b.Lo {
		if b.Lo[d] > b.Hi[d] {
			return true
		}
	}
	return len(b.Lo) == 0
}

// Clone returns an independent copy of the box.
func (b Box) Clone() Box {
	return Box{Lo: append([]int32(nil), b.Lo...), Hi: append([]int32(nil), b.Hi...)}
}

// Intersects reports whether b and o overlap in every dimension.
func (b Box) Intersects(o Box) bool {
	for d := range b.Lo {
		if b.Hi[d] < o.Lo[d] || o.Hi[d] < b.Lo[d] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o lies entirely within b.
func (b Box) ContainsBox(o Box) bool {
	for d := range b.Lo {
		if o.Lo[d] < b.Lo[d] || o.Hi[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point p lies within b.
func (b Box) ContainsPoint(p []int) bool {
	for d, v := range p {
		if int32(v) < b.Lo[d] || int32(v) > b.Hi[d] {
			return false
		}
	}
	return true
}

// Extent returns the number of values the box spans in dimension d
// (Hi-Lo+1); cost-model code normalizes this by the axis cardinality.
func (b Box) Extent(d int) int { return int(b.Hi[d] - b.Lo[d] + 1) }

// String renders the box as "[0..2]×[1..1]×..." for debugging.
func (b Box) String() string {
	var sb strings.Builder
	for d := range b.Lo {
		if d > 0 {
			sb.WriteByte('x')
		}
		fmt.Fprintf(&sb, "[%d..%d]", b.Lo[d], b.Hi[d])
	}
	return sb.String()
}

// Rel classifies the spatial relationship between a focal-subset region
// and a MIP bounding box (paper Section 3.4: contained, partially
// overlapped, disjoint).
type Rel int

const (
	Disjoint Rel = iota
	Partial
	Contained
)

func (r Rel) String() string {
	switch r {
	case Disjoint:
		return "disjoint"
	case Partial:
		return "partial"
	case Contained:
		return "contained"
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Region is the focal subset D^Q: for each dimension, the set of selected
// value indices. A nil dimension mask means the full domain (the paper's
// default when an attribute is absent from the RANGE clause). Regions are
// cross products of the per-dimension selections, which is exactly the
// shape the WHERE RANGE clause of query Q can express.
type Region struct {
	// sel[d] == nil means every value of dimension d is selected;
	// otherwise sel[d][v] reports whether value v is selected.
	sel [][]bool
	// prefix[d] is the running count of selected values up to index v,
	// enabling O(1) "how many selected values fall in [lo,hi]" tests.
	prefix [][]int32
	cards  []int
}

// NewRegion creates a region over a space with the given per-dimension
// cardinalities, initially selecting the full domain everywhere.
func NewRegion(cards []int) *Region {
	return &Region{
		sel:    make([][]bool, len(cards)),
		prefix: make([][]int32, len(cards)),
		cards:  append([]int(nil), cards...),
	}
}

// RegionFor creates a full-domain region for the space.
func RegionFor(sp *Space) *Region {
	cards := make([]int, sp.NumAttrs())
	for a := range cards {
		cards[a] = sp.Cardinality(a)
	}
	return NewRegion(cards)
}

// Restrict narrows dimension d to exactly the given value indices. An
// empty selection makes the region empty. Out-of-range values error.
func (r *Region) Restrict(d int, values []int) error {
	if d < 0 || d >= len(r.cards) {
		return fmt.Errorf("itemset: region dimension %d out of range", d)
	}
	mask := make([]bool, r.cards[d])
	for _, v := range values {
		if v < 0 || v >= r.cards[d] {
			return fmt.Errorf("itemset: value index %d out of range for dimension %d (cardinality %d)", v, d, r.cards[d])
		}
		mask[v] = true
	}
	r.sel[d] = mask
	pre := make([]int32, r.cards[d]+1)
	for v := 0; v < r.cards[d]; v++ {
		pre[v+1] = pre[v]
		if mask[v] {
			pre[v+1]++
		}
	}
	r.prefix[d] = pre
	return nil
}

// Dims returns the region's dimensionality.
func (r *Region) Dims() int { return len(r.cards) }

// Restricted reports whether dimension d has an explicit selection.
func (r *Region) Restricted(d int) bool { return r.sel[d] != nil }

// SelectedCount returns the number of selected values in dimension d.
func (r *Region) SelectedCount(d int) int {
	if r.sel[d] == nil {
		return r.cards[d]
	}
	return int(r.prefix[d][r.cards[d]])
}

// Selected returns the selected value indices of dimension d in
// ascending order (the full domain when unrestricted).
func (r *Region) Selected(d int) []int {
	out := make([]int, 0, r.SelectedCount(d))
	for v := 0; v < r.cards[d]; v++ {
		if r.sel[d] == nil || r.sel[d][v] {
			out = append(out, v)
		}
	}
	return out
}

// IsEmpty reports whether any dimension has no selected values.
func (r *Region) IsEmpty() bool {
	for d := range r.cards {
		if r.SelectedCount(d) == 0 {
			return true
		}
	}
	return false
}

// selectedIn returns how many selected values of dimension d fall within
// the closed interval [lo, hi].
func (r *Region) selectedIn(d int, lo, hi int32) int32 {
	if lo < 0 {
		lo = 0
	}
	if hi >= int32(r.cards[d]) {
		hi = int32(r.cards[d]) - 1
	}
	if lo > hi {
		return 0
	}
	if r.sel[d] == nil {
		return hi - lo + 1
	}
	return r.prefix[d][hi+1] - r.prefix[d][lo]
}

// Relation classifies box b against the region (Lemma 4.5 drives the
// special treatment of Contained). Contained means every cell of b lies
// inside the region; Disjoint means no selected value in some dimension
// of b; anything else is Partial. The classification is conservative for
// Partial: a box whose interval includes unselected values is Partial
// even if no supporting record sits on them, which only costs extra
// record-level checks, never correctness.
func (r *Region) Relation(b Box) Rel {
	contained := true
	for d := range r.cards {
		n := r.selectedIn(d, b.Lo[d], b.Hi[d])
		if n == 0 {
			return Disjoint
		}
		if int(n) != b.Extent(d) {
			contained = false
		}
	}
	if contained {
		return Contained
	}
	return Partial
}

// RelationPacked is Relation over a box packed at arena[off:off+2*dims]
// (Lo run, then Hi run) — the flat R-tree's inline box layout. It skips
// the construction of a Box view on the hot search path.
func (r *Region) RelationPacked(arena []int32, off, dims int) Rel {
	b := arena[off : off+2*dims : off+2*dims]
	contained := true
	for d := range r.cards {
		lo, hi := b[d], b[dims+d]
		n := r.selectedIn(d, lo, hi)
		if n == 0 {
			return Disjoint
		}
		if n != hi-lo+1 {
			contained = false
		}
	}
	if contained {
		return Contained
	}
	return Partial
}

// Intersects reports whether box b overlaps the region in every
// dimension.
func (r *Region) Intersects(b Box) bool { return r.Relation(b) != Disjoint }

// ContainsPoint reports whether the record point p lies in the region;
// this is the record-level membership test for D^Q.
func (r *Region) ContainsPoint(p []int) bool {
	for d, v := range p {
		if r.sel[d] != nil && !r.sel[d][v] {
			return false
		}
	}
	return true
}

// BoundingBox returns the MBR of the region: per-dimension [min,max] of
// the selected values. Empty dimensions produce an inverted interval.
func (r *Region) BoundingBox() Box {
	b := NewBox(len(r.cards))
	for d := range r.cards {
		if r.sel[d] == nil {
			b.Lo[d], b.Hi[d] = 0, int32(r.cards[d])-1
			continue
		}
		for v := 0; v < r.cards[d]; v++ {
			if r.sel[d][v] {
				if int32(v) < b.Lo[d] {
					b.Lo[d] = int32(v)
				}
				if int32(v) > b.Hi[d] {
					b.Hi[d] = int32(v)
				}
			}
		}
	}
	return b
}

// AvgExtent returns the fraction of dimension d's domain selected by the
// region — D^Q_i_avg in the paper's cost notation (Table 3), normalized
// to [0,1].
func (r *Region) AvgExtent(d int) float64 {
	if r.cards[d] == 0 {
		return 0
	}
	return float64(r.SelectedCount(d)) / float64(r.cards[d])
}
