package colarm

import (
	"io"
	"net/http"

	"colarm/internal/obs"
)

// MetricsRegistry is a shared metrics registry: engines opened with
// Options.Metrics pointing at the same registry expose their cumulative
// metrics — labeled per dataset — through one Prometheus exposition.
// The serving layer opens every registered engine against a single
// shared registry so one /metrics scrape covers the whole process.
type MetricsRegistry struct {
	reg *obs.Registry
}

// NewMetricsRegistry creates an empty shared registry.
func NewMetricsRegistry() *MetricsRegistry {
	return &MetricsRegistry{reg: obs.NewRegistry()}
}

// registry unwraps the internal registry; nil-safe (nil receiver yields
// nil, letting the engine fall back to a private registry).
func (m *MetricsRegistry) registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// WritePrometheus renders every metric registered by the sharing
// engines in the Prometheus text exposition format.
func (m *MetricsRegistry) WritePrometheus(w io.Writer) error {
	return m.reg.WritePrometheus(w)
}

// Handler returns an http.Handler serving WritePrometheus.
func (m *MetricsRegistry) Handler() http.Handler {
	return m.reg.Handler()
}

// WriteMetrics renders the engine's cumulative metrics — query and rule
// counters, plan-choice counters, latency histograms, plan-choice
// accuracy counters — in the Prometheus text exposition format.
func (e *Engine) WriteMetrics(w io.Writer) error {
	return e.eng.Metrics.WritePrometheus(w)
}

// MetricsHandler returns an http.Handler serving WriteMetrics, suitable
// for mounting at /metrics.
func (e *Engine) MetricsHandler() http.Handler {
	return e.eng.Metrics.Handler()
}

// AccuracyReport summarizes the optimizer's running plan-choice
// accuracy, fed by queries mined with Query.Trace set on an engine
// opened with Options.TrackAccuracy (each such query re-executes all
// six plans and compares the optimizer's pick against the empirically
// cheapest one).
type AccuracyReport struct {
	// Tolerance is the regret fraction under which a mispredicted
	// choice still counts as correct (the paper's §5.1 methodology
	// uses 5%).
	Tolerance float64
	// Queries and Correct count the scored queries and the choices
	// deemed correct.
	Queries int
	Correct int
	// MissRegretMax and MissRegretAvg summarize the extra-cost
	// fraction over the best plan across genuinely missed choices.
	MissRegretMax float64
	MissRegretAvg float64
}

// Accuracy returns Correct/Queries, or 0 with no scored queries.
func (r AccuracyReport) Accuracy() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Queries)
}

// AccuracyReport returns the engine's running plan-choice accuracy.
func (e *Engine) AccuracyReport() AccuracyReport {
	rep := e.eng.Accuracy.Report()
	return AccuracyReport{
		Tolerance:     rep.Tolerance,
		Queries:       rep.Queries,
		Correct:       rep.Correct,
		MissRegretMax: rep.MissRegretMax,
		MissRegretAvg: rep.MissRegretAvg,
	}
}
