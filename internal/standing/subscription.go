package standing

import (
	"context"
	"errors"
	"fmt"

	"colarm"
)

// Event types. Every event carries a per-subscription sequence number
// (starting at 1) and the (generation, version-clock) interval it
// covers; a client that applies snapshot → diffs in sequence order
// reconstructs the subscription's rule set exactly.
const (
	// EventSnapshot carries the full rule set — the first event of every
	// subscription, and the resync event handed to a consumer resuming
	// from a position that has aged out of the event buffer.
	EventSnapshot = "snapshot"
	// EventDiff carries an incremental change: Appeared, Disappeared and
	// Updated rules, plus any tracked-measure threshold Crossings.
	EventDiff = "diff"
	// EventEpoch marks an engine swap (background rebuild): the version
	// clock re-anchors at the new engine's reading. It carries diff
	// fields like EventDiff — empty when the rebuild was
	// exactness-preserving, non-empty if the swapped-in engine disagrees.
	EventEpoch = "epoch"
	// EventEvicted is the terminal event delivered to a slow consumer
	// that fell off the event buffer while connected: the subscription
	// stays alive, but this consumer must reconnect (and will be
	// resynced with a snapshot).
	EventEvicted = "evicted"
)

// Sentinel errors surfaced by Cursor.Next and Manager entry points.
var (
	// ErrEvicted accompanies the terminal EventEvicted batch: the
	// consumer fell behind the subscription's bounded event buffer.
	ErrEvicted = errors.New("standing: consumer evicted: fell behind the event buffer")
	// ErrClosed means the subscription was deleted (or the manager shut
	// down) and no further events will ever arrive.
	ErrClosed = errors.New("standing: subscription closed")
	// ErrLimit means the manager's MaxSubscriptions cap is reached.
	ErrLimit = errors.New("standing: subscription limit reached")
)

// Track asks a subscription to additionally report threshold crossings
// of one derived measure: whenever a rule persists across a diff and
// its tracked measure moves from one side of Threshold to the other,
// the diff event's Crossed list records it.
type Track struct {
	// Measure is one of "support", "confidence", "lift", "cosine",
	// "kulczynski".
	Measure string `json:"measure"`
	// Threshold is the boundary being watched.
	Threshold float64 `json:"threshold"`
}

// Crossing reports one rule whose tracked measure crossed the
// subscription's threshold within a diff's version interval.
type Crossing struct {
	Rule      colarm.Rule `json:"rule"`
	Measure   string      `json:"measure"`
	Threshold float64     `json:"threshold"`
	// Direction is "above" when the measure rose across the threshold,
	// "below" when it fell.
	Direction string `json:"direction"`
	// Previous and Current are the measure's values on the two sides.
	Previous float64 `json:"previous"`
	Current  float64 `json:"current"`
}

// Event is one entry in a subscription's ordered event stream.
type Event struct {
	// Seq is the per-subscription sequence number, contiguous from 1.
	// Synthesized resync snapshots and terminal evicted events reuse the
	// last appended sequence number rather than consuming a new one.
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`

	Dataset string `json:"dataset"`
	// Generation is the engine generation the event's "after" side was
	// mined on; FromVersion..ToVersion is the delta version-clock
	// interval the event covers. Diff intervals tile: each diff's
	// FromVersion equals the previous event's ToVersion, so unaffected
	// batches (which provably leave the rule set unchanged) are covered
	// by the next emitted diff's interval. An epoch event re-anchors the
	// clock: its interval is on the new generation's clock.
	Generation  uint64 `json:"generation"`
	FromVersion uint64 `json:"fromVersion"`
	ToVersion   uint64 `json:"toVersion"`

	// Rules is the full rule set (snapshot events only).
	Rules []colarm.Rule `json:"rules,omitempty"`
	// Appeared/Disappeared/Updated are the diff payload (diff and epoch
	// events). Disappeared rules carry their last-seen values; Updated
	// rules carry current values.
	Appeared    []colarm.Rule `json:"appeared,omitempty"`
	Disappeared []colarm.Rule `json:"disappeared,omitempty"`
	Updated     []colarm.Rule `json:"updated,omitempty"`
	// Crossed lists tracked-measure threshold crossings (only when the
	// subscription was created with a Track).
	Crossed []Crossing `json:"crossed,omitempty"`
	// Reason explains terminal evicted events.
	Reason string `json:"reason,omitempty"`
}

// Subscription is one registered standing query. Events accumulate in
// a bounded ring buffer; any number of concurrent consumers read them
// through Cursors. When the ring wraps, the oldest events are dropped
// (counted, never silent): a connected consumer that needed them is
// evicted with a terminal event, a reconnecting consumer is resynced
// with a fresh snapshot.
type Subscription struct {
	id      string
	dataset string
	query   colarm.Query
	track   *Track
	t       *tracker
	m       *Manager

	// Ring state, guarded by the tracker's mutex (appends happen while
	// the tracker updates its baseline, and resyncs must read baseline
	// and cursor position atomically, so one lock covers both).
	buf      []Event // ring storage, capacity fixed at creation
	start    int     // index of the event with sequence firstSeq
	firstSeq uint64  // sequence of the oldest retained event
	nextSeq  uint64  // sequence the next appended event receives
	wake     chan struct{}
	closed   bool
}

// ID returns the subscription's opaque identifier.
func (s *Subscription) ID() string { return s.id }

// Dataset returns the dataset the subscription watches.
func (s *Subscription) Dataset() string { return s.dataset }

// Query returns the subscribed query.
func (s *Subscription) Query() colarm.Query { return s.query }

// Track returns the tracked-measure configuration, or nil.
func (s *Subscription) Track() *Track { return s.track }

// append adds ev to the ring under t.mu, assigning its sequence
// number, and reports how many old events were dropped to make room.
func (s *Subscription) append(ev Event) (dropped int) {
	ev.Seq = s.nextSeq
	s.nextSeq++
	if n := int(s.nextSeq - s.firstSeq - 1); n == len(s.buf) {
		// Ring full: overwrite the oldest slot.
		s.buf[s.start] = ev
		s.start = (s.start + 1) % len(s.buf)
		s.firstSeq++
		dropped = 1
	} else {
		s.buf[(s.start+n)%len(s.buf)] = ev
	}
	close(s.wake)
	s.wake = make(chan struct{})
	return dropped
}

// close marks the subscription deleted and wakes all consumers (under
// t.mu).
func (s *Subscription) closeLocked() {
	if s.closed {
		return
	}
	s.closed = true
	close(s.wake)
	s.wake = make(chan struct{})
}

// Cursor is one consumer's position in a subscription's event stream.
// Cursors are not safe for concurrent use; create one per consumer.
type Cursor struct {
	s *Subscription
	// next is the sequence number of the next event to deliver.
	next uint64
	// live is set once the cursor has delivered events: a live cursor
	// that falls off the ring is evicted, a fresh one is resynced.
	live bool
}

// Cursor creates a consumer cursor positioned after sequence number
// `after` (0 reads from the beginning). A position that has already
// aged out of the buffer is not an error: the first Next resyncs with
// a synthesized snapshot.
func (s *Subscription) Cursor(after uint64) *Cursor {
	return &Cursor{s: s, next: after + 1}
}

// Next blocks until at least one event past the cursor's position is
// available and returns the available batch in sequence order.
//
//   - If the subscription was deleted, returns ErrClosed (after
//     draining any remaining buffered events).
//   - If a cursor that has already delivered events falls off the ring
//     (slow consumer), returns a terminal EventEvicted event together
//     with ErrEvicted; the consumer must reconnect.
//   - If a fresh cursor's start position has aged out, returns a
//     synthesized EventSnapshot carrying the subscription's current
//     baseline, re-positioned at the live tail.
//   - Otherwise blocks until woken by an append, ctx.Done(), or close.
func (c *Cursor) Next(ctx context.Context) ([]Event, error) {
	s := c.s
	for {
		s.t.mu.Lock()
		if c.next < s.firstSeq {
			if c.live {
				ev := Event{
					Seq:     s.nextSeq - 1,
					Type:    EventEvicted,
					Dataset: s.dataset,
					Reason: fmt.Sprintf("consumer fell behind: events %d..%d were dropped from the buffer",
						c.next, s.firstSeq-1),
				}
				s.t.mu.Unlock()
				s.m.evictions.Inc()
				return []Event{ev}, ErrEvicted
			}
			// Fresh consumer whose position aged out: resync from the
			// tracker baseline. Baseline and cursor position are read
			// under the same lock that appends hold, so no diff computed
			// after this snapshot can be skipped.
			ev := s.t.snapshotEventLocked(s)
			ev.Seq = s.nextSeq - 1
			c.next = s.nextSeq
			c.live = true
			s.t.mu.Unlock()
			return []Event{ev}, nil
		}
		if c.next < s.nextSeq {
			evs := make([]Event, 0, s.nextSeq-c.next)
			for seq := c.next; seq < s.nextSeq; seq++ {
				evs = append(evs, s.buf[(s.start+int(seq-s.firstSeq))%len(s.buf)])
			}
			c.next = s.nextSeq
			c.live = true
			s.t.mu.Unlock()
			return evs, nil
		}
		if s.closed {
			s.t.mu.Unlock()
			return nil, ErrClosed
		}
		wake := s.wake
		s.t.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
