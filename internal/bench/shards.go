package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"colarm/internal/core"
	"colarm/internal/plans"
)

// CurrentPR stamps freshly generated BENCH_<pr>.json perf-trajectory
// artifacts with the PR that produced them.
const CurrentPR = 10

// The shards benchmark measures what hash-partitioning costs and buys:
// for each shard count K the same read workload is replayed against a
// fresh index (the scatter-gather overhead in its purest form), against
// an aged index carrying a delta (per-shard clocks dirty), and while a
// consolidation runs (the engine keeps serving — only drifted shards
// re-mine, so the "pause" is the consolidation's wall time, not a stop
// of the world), then once more on the consolidated result.

// ShardRow is one shard count's measurements.
type ShardRow struct {
	Shards  int   `json:"shards"`
	BuildNs int64 `json:"build_ns"` // offline phase: index + collection

	FreshP50Ns int64 `json:"fresh_p50_ns"`
	FreshP99Ns int64 `json:"fresh_p99_ns"`
	StaleP50Ns int64 `json:"stale_p50_ns"` // reads over base+delta
	StaleP99Ns int64 `json:"stale_p99_ns"`

	// Reads racing the consolidation, and the consolidation itself.
	DuringP50Ns    int64 `json:"during_p50_ns"`
	DuringP99Ns    int64 `json:"during_p99_ns"`
	RebuildPauseNs int64 `json:"rebuild_pause_ns"`

	RebuiltP50Ns int64 `json:"rebuilt_p50_ns"`
	RebuiltP99Ns int64 `json:"rebuilt_p99_ns"`
}

// ShardReport is the serialized artifact (BENCH_<pr>.json).
type ShardReport struct {
	Bench     string     `json:"bench"`
	PR        int        `json:"pr"`
	GoVersion string     `json:"go_version"`
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	CPUs      int        `json:"cpus"`
	Dataset   string     `json:"dataset"`
	Records   int        `json:"records"`
	Reads     int        `json:"reads"`
	Rows      []ShardRow `json:"rows"`
}

// RunShards measures scatter-gather mining across shard counts. One
// dataset and one read workload (clients × perClient queries, built
// once — regions name items of the shared space, so they are valid on
// every engine); for each K in ks a fresh engine is built with K
// shards and pushed through the four phases. batches × batchRows rows
// plus a few deletes age the engine between the fresh and stale reads.
func RunShards(spec DatasetSpec, ks []int, clients, perClient, batches, batchRows int, seed int64) (*ShardReport, error) {
	if clients < 1 || perClient < 1 || batches < 1 || batchRows < 1 {
		return nil, fmt.Errorf("bench: clients (%d), reads per client (%d), batches (%d) and batch rows (%d) must be positive",
			clients, perClient, batches, batchRows)
	}
	env, err := Setup(spec)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	total := clients * perClient
	queries := make([]*plans.Query, total)
	for i := range queries {
		frac := spec.DQFracs[i%len(spec.DQFracs)]
		queries[i] = env.QueryFor(env.RandomFocalSubset(rng, frac), spec.MinSupps[0], spec.MinConfs[0])
	}

	rep := &ShardReport{
		Bench:     "shards",
		PR:        CurrentPR,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Dataset:   spec.Name,
		Records:   env.Dataset.NumRecords(),
		Reads:     total,
	}

	for _, k := range ks {
		row := ShardRow{Shards: k}
		t0 := time.Now()
		eng, err := core.NewEngine(env.Dataset, core.Options{
			PrimarySupport: spec.Primary,
			CheckMode:      plans.ScanCheck,
			Shards:         k,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: K=%d: %w", k, err)
		}
		row.BuildNs = time.Since(t0).Nanoseconds()

		if _, _, err := eng.Mine(queries[0]); err != nil { // warm-up, untimed
			return nil, fmt.Errorf("bench: K=%d warm-up: %w", k, err)
		}
		fresh, err := replayReads(eng, queries, clients, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: K=%d fresh: %w", k, err)
		}
		row.FreshP50Ns = percentile(fresh, 50).Nanoseconds()
		row.FreshP99Ns = percentile(fresh, 99).Nanoseconds()

		// Age the engine: sampled rows are valid against the frozen
		// vocabulary; a few base records get tombstoned.
		wrng := rand.New(rand.NewSource(seed + int64(k)))
		for b := 0; b < batches; b++ {
			rows := make([][]int32, batchRows)
			for i := range rows {
				r := wrng.Intn(env.Dataset.NumRecords())
				rec := make([]int32, env.Dataset.NumAttrs())
				for a := range rec {
					rec[a] = int32(env.Dataset.Value(r, a))
				}
				rows[i] = rec
			}
			var dels []int
			if wrng.Intn(2) == 0 {
				dels = append(dels, wrng.Intn(env.Dataset.NumRecords()))
			}
			if _, err := eng.Ingest(rows, dels); err != nil {
				return nil, fmt.Errorf("bench: K=%d ingest: %w", k, err)
			}
		}
		stale, err := replayReads(eng, queries, clients, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: K=%d stale: %w", k, err)
		}
		row.StaleP50Ns = percentile(stale, 50).Nanoseconds()
		row.StaleP99Ns = percentile(stale, 99).Nanoseconds()

		// Consolidate while the read workload keeps hitting the old
		// engine — the serving story: no pause, just the rebuild's own
		// wall time on the side.
		type rebuilt struct {
			eng *core.Engine
			ns  int64
			err error
		}
		done := make(chan rebuilt, 1)
		go func() {
			t := time.Now()
			fresh, err := eng.Rebuild(context.Background())
			done <- rebuilt{fresh, time.Since(t).Nanoseconds(), err}
		}()
		during, err := replayReads(eng, queries, clients, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: K=%d during-rebuild: %w", k, err)
		}
		rb := <-done
		if rb.err != nil {
			return nil, fmt.Errorf("bench: K=%d rebuild: %w", k, rb.err)
		}
		row.DuringP50Ns = percentile(during, 50).Nanoseconds()
		row.DuringP99Ns = percentile(during, 99).Nanoseconds()
		row.RebuildPauseNs = rb.ns

		after, err := replayReads(rb.eng, queries, clients, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: K=%d rebuilt: %w", k, err)
		}
		row.RebuiltP50Ns = percentile(after, 50).Nanoseconds()
		row.RebuiltP99Ns = percentile(after, 99).Nanoseconds()
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// WriteJSON serializes the report as indented JSON.
func (r *ShardReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintShards renders the report as a table of K against latency and
// rebuild pause.
func PrintShards(w io.Writer, rep *ShardReport) {
	fmt.Fprintf(w, "Scatter-gather benchmark — %s, %d records, %d reads/phase (%s/%s, %d CPUs)\n",
		rep.Dataset, rep.Records, rep.Reads, rep.GOOS, rep.GOARCH, rep.CPUs)
	fmt.Fprintf(w, "%-7s %10s %10s %10s %10s %10s %10s %10s %12s\n",
		"shards", "build", "fresh p50", "fresh p99", "stale p50", "stale p99",
		"during p99", "rebuilt p50", "rebuild")
	for _, row := range rep.Rows {
		ms := func(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }
		fmt.Fprintf(w, "%-7d %10s %10s %10s %10s %10s %10s %10s %12s\n",
			row.Shards, ms(row.BuildNs), ms(row.FreshP50Ns), ms(row.FreshP99Ns),
			ms(row.StaleP50Ns), ms(row.StaleP99Ns), ms(row.DuringP99Ns),
			ms(row.RebuiltP50Ns), ms(row.RebuildPauseNs))
	}
}
