// Simpson's-paradox hunt: scan a mushroom-like dataset for
// subpopulations whose local rules are invisible globally. For each
// value of a partitioning attribute, the example compares the rules
// mined inside the subpopulation with the globally mined rules and
// reports the fresh ones — the analysis behind the paper's Section 5.3.
package main

import (
	"fmt"
	"log"
	"sort"

	"colarm"
)

func main() {
	fmt.Println("generating mushroom-like dataset (8124 records)...")
	ds, err := colarm.GenerateMushroom(1)
	if err != nil {
		log.Fatal(err)
	}
	// Low primary support (the paper uses 5% for mushroom) so local
	// patterns are captured in the index even when globally weak.
	eng, err := colarm.Open(ds, colarm.Options{PrimarySupport: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index holds %d partitions\n\n", eng.NumPartitions())

	// Global reference: rules at a reasonable global minsupport.
	globalRules := mustMine(eng, colarm.Query{
		MinSupport:    0.60,
		MinConfidence: 0.90,
		MaxConsequent: 1,
	})
	globalSet := map[string]bool{}
	for _, r := range globalRules {
		globalSet[key(r)] = true
	}
	fmt.Printf("global context: %d rules at minsupp 60%%, minconf 90%%\n\n", len(globalRules))

	// Sweep the subpopulations of the partition attribute m01.
	partition := "m01"
	values, err := ds.Values(partition)
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(values)
	type finding struct {
		value string
		size  int
		fresh []colarm.Rule
	}
	var findings []finding
	for _, v := range values {
		res, err := eng.Mine(colarm.Query{
			Range:         map[string][]string{partition: {v}},
			MinSupport:    0.69,
			MinConfidence: 0.90,
			MaxConsequent: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		var fresh []colarm.Rule
		for _, r := range res.Rules {
			if !globalSet[key(r)] {
				fresh = append(fresh, r)
			}
		}
		if len(fresh) > 0 {
			findings = append(findings, finding{value: v, size: res.Stats.SubsetSize, fresh: fresh})
		}
	}

	fmt.Printf("subpopulations of %q with locally significant rules hidden globally:\n", partition)
	for _, f := range findings {
		fmt.Printf("\n  %s = %s  (%d records): %d fresh local rules, e.g.\n",
			partition, f.value, f.size, len(f.fresh))
		for i, r := range f.fresh {
			if i == 3 {
				break
			}
			fmt.Printf("    %s  lift=%.2f\n", r, r.Lift)
		}
	}
	if len(findings) == 0 {
		fmt.Println("  none found — try a lower global threshold")
	}
}

func mustMine(eng *colarm.Engine, q colarm.Query) []colarm.Rule {
	res, err := eng.Mine(q)
	if err != nil {
		log.Fatal(err)
	}
	return res.Rules
}

func key(r colarm.Rule) string {
	return fmt.Sprint(r.Antecedent, "=>", r.Consequent)
}
