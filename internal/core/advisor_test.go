package core

import (
	"context"
	"testing"

	"colarm/internal/advisor"
	"colarm/internal/datagen"
	"colarm/internal/itemset"
	"colarm/internal/obs"
	"colarm/internal/plans"
	"colarm/internal/relation"
	"colarm/internal/rules"
)

// advisorDataset generates a dataset large enough that localized
// queries under the base primary support get forced to ARM, giving the
// index advisor something to reclaim.
func advisorDataset(t testing.TB) *relation.Dataset {
	t.Helper()
	cfg := datagen.Config{
		Name:    "adv",
		Records: 1200,
		Attrs: []datagen.AttrSpec{
			{Name: "A", Cardinality: 4, Align: []float64{0.9, 0.1}},
			{Name: "B", Cardinality: 4, Align: []float64{0.8, 0.2}},
			{Name: "C", Cardinality: 4, Align: []float64{0.7, 0.3}},
			{Name: "D", Cardinality: 4, Align: []float64{0.6, 0.4}},
		},
		Clusters: []float64{0.5, 0.5},
		Skew:     0.8,
		Seed:     7,
	}
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// lowSupportQuery builds a query whose localized threshold falls below
// the base index's primary count, so the applicability gate forces ARM.
func lowSupportQuery(t testing.TB, eng *Engine) *plans.Query {
	t.Helper()
	reg := itemset.RegionFor(eng.Index.Space)
	if err := reg.Restrict(0, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	q := &plans.Query{Region: reg, MinSupport: 0.25, MinConfidence: 0.9}
	subset, localCount, primaryCount := eng.Executor.Localized(q)
	if localCount >= primaryCount {
		t.Fatalf("fixture drifted: localized count %d (subset %d) must fall below primary count %d", localCount, subset, primaryCount)
	}
	return q
}

func canonical(rs []rules.Rule) []rules.Rule {
	out := rules.Dedupe(append([]rules.Rule(nil), rs...))
	rules.SortCanonical(out)
	return out
}

func sameRules(t *testing.T, a, b []rules.Rule) {
	t.Helper()
	ca, cb := canonical(a), canonical(b)
	if len(ca) != len(cb) {
		t.Fatalf("rule counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Key() != cb[i].Key() || ca[i].SupportCount != cb[i].SupportCount || ca[i].Confidence != cb[i].Confidence {
			t.Fatalf("rule %d differs: %v vs %v", i, ca[i], cb[i])
		}
	}
}

// TestSecondaryIndexReclaimsForcedARM is the differential at the heart
// of the index advisor: a query the base index's gate forces to ARM is
// answered by a secondary index at a lower primary support with
// byte-identical rules, and dropping the secondary returns the query to
// ARM.
func TestSecondaryIndexReclaimsForcedARM(t *testing.T) {
	eng, err := NewEngine(advisorDataset(t), Options{PrimarySupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	q := lowSupportQuery(t, eng)

	before, _, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if before.Stats.Plan != plans.ARM {
		t.Fatalf("gate did not force ARM: executed %v", before.Stats.Plan)
	}
	if st := eng.Advisor.WorkloadStats(); st.ForcedARM != 1 {
		t.Fatalf("forced-ARM not logged: %+v", st)
	}

	info, err := eng.BuildSecondary(context.Background(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fresh || info.PrimaryCount <= 0 {
		t.Fatalf("secondary not installed fresh: %+v", info)
	}
	after, _, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.Plan == plans.ARM {
		t.Fatalf("secondary index did not reclaim the query (still ARM)")
	}
	if st := eng.Advisor.WorkloadStats(); st.SecondaryWins != 1 {
		t.Fatalf("secondary win not logged: %+v", st)
	}
	sameRules(t, before.Rules, after.Rules)

	// Explain agrees with the multi-index argmin.
	kind, _, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if kind != after.Stats.Plan {
		t.Errorf("explain chose %v, mine executed %v", kind, after.Stats.Plan)
	}

	if !eng.DropSecondary(0.1) {
		t.Fatal("drop did not find the secondary")
	}
	if eng.DropSecondary(0.1) {
		t.Fatal("double drop succeeded")
	}
	dropped, _, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if dropped.Stats.Plan != plans.ARM {
		t.Fatalf("after drop the gate must force ARM again, got %v", dropped.Stats.Plan)
	}
}

// TestSecondaryGoesStaleOnIngest pins the exactness gate: a secondary
// is consulted only while its build version matches the delta version,
// because any later batch would make its prestored CFIs incomplete.
func TestSecondaryGoesStaleOnIngest(t *testing.T) {
	eng, err := NewEngine(advisorDataset(t), Options{PrimarySupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	q := lowSupportQuery(t, eng)
	if _, err := eng.BuildSecondary(context.Background(), 0.1); err != nil {
		t.Fatal(err)
	}
	res, _, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plan == plans.ARM {
		t.Fatal("fresh secondary not consulted")
	}
	if _, err := eng.Ingest([][]int32{{0, 0, 0, 0}}, nil); err != nil {
		t.Fatal(err)
	}
	secs := eng.Secondaries()
	if len(secs) != 1 || secs[0].Fresh {
		t.Fatalf("secondary must be stale after ingest: %+v", secs)
	}
	res, _, err = eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plan != plans.ARM {
		t.Fatalf("stale secondary consulted: executed %v", res.Stats.Plan)
	}
	// Rebuilding the secondary over the moved surface re-freshens it.
	if _, err := eng.BuildSecondary(context.Background(), 0.1); err != nil {
		t.Fatal(err)
	}
	if secs := eng.Secondaries(); len(secs) != 1 || !secs[0].Fresh {
		t.Fatalf("rebuilt secondary must replace the stale one, fresh: %+v", secs)
	}
}

// TestAdvisorRecommendationLoop drives the full loop: forced-ARM
// queries accumulate evidence, Recommendations proposes a build sized
// to the workload, ApplyRecommendations installs it, and the workload
// starts landing on the secondary.
func TestAdvisorRecommendationLoop(t *testing.T) {
	eng, err := NewEngine(advisorDataset(t), Options{
		PrimarySupport: 0.4,
		// A synthetic workload's accumulated gap is tiny against a real
		// build duration; shrink the pay-for-itself bar so the loop is
		// testable deterministically.
		Advisor: advisor.Config{MinBenefitFactor: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := lowSupportQuery(t, eng)
	for i := 0; i < 20; i++ {
		if _, _, err := eng.Mine(q); err != nil {
			t.Fatal(err)
		}
	}
	recs := eng.Recommendations()
	var build *advisor.Recommendation
	for i := range recs {
		if recs[i].Action == "build" {
			build = &recs[i]
		}
	}
	if build == nil {
		t.Fatalf("no build recommendation from %d forced-ARM queries: %+v", 20, recs)
	}
	_, localCount, _ := eng.Executor.Localized(q)
	if build.PrimaryCount > localCount {
		t.Fatalf("recommended primary count %d cannot reclaim the workload (localized %d)", build.PrimaryCount, localCount)
	}
	applied, err := eng.ApplyRecommendations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) == 0 || len(eng.Secondaries()) != 1 {
		t.Fatalf("recommendation not applied: %+v, secondaries %+v", applied, eng.Secondaries())
	}
	res, _, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plan == plans.ARM {
		t.Fatal("applied secondary did not reclaim the workload")
	}
	// With the workload now covered, no further build is recommended.
	for _, r := range eng.Recommendations() {
		if r.Action == "build" {
			t.Fatalf("build still recommended after coverage: %+v", r)
		}
	}
}

// TestEngineRecalibrationFeeds pins the observation plumbing: traced
// queries feed per-operator evidence, EvaluatePlans feeds the guardrail
// replay, and Recalibrate reports on both.
func TestEngineRecalibrationFeeds(t *testing.T) {
	eng, err := NewEngine(advisorDataset(t), Options{PrimarySupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	reg := itemset.RegionFor(eng.Index.Space)
	if err := reg.Restrict(0, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		q := &plans.Query{Region: reg, MinSupport: 0.6, MinConfidence: 0.9, Trace: &obs.Trace{}}
		if _, _, err := eng.Mine(q); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.EvaluatePlans(&plans.Query{Region: reg, MinSupport: 0.6, MinConfidence: 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	rep := eng.Recalibrate()
	if rep.Samples == 0 {
		t.Fatal("traced queries fed no recalibration samples")
	}
	if rep.Static != eng.Model.U {
		t.Errorf("static reference %+v != model units %+v", rep.Static, eng.Model.U)
	}
	if rep.Swapped && !rep.Guardrail.Passed {
		t.Error("swap without a passing guardrail")
	}
	// The live units the optimizer prices with are the advisor's.
	if eng.liveModel().U != eng.Advisor.LiveUnits() {
		t.Error("liveModel does not price with the advisor's live units")
	}
}

// TestRebuildCarriesAdvisor: calibration and workload survive an engine
// swap; secondaries (mined over the old surface) do not.
func TestRebuildCarriesAdvisor(t *testing.T) {
	eng, err := NewEngine(advisorDataset(t), Options{PrimarySupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildSecondary(context.Background(), 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ingest([][]int32{{1, 1, 1, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	fresh, err := eng.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Advisor != eng.Advisor {
		t.Error("advisor not carried across rebuild")
	}
	if len(fresh.Secondaries()) != 0 {
		t.Error("stale secondaries carried across rebuild")
	}
}
