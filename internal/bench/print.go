package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"colarm/internal/plans"
)

// PrintFig8 renders the Figure 8 series for one dataset.
func PrintFig8(w io.Writer, dataset string, rows []Fig8Row) {
	fmt.Fprintf(w, "Figure 8 — closed frequent itemsets by primary threshold (%s)\n", dataset)
	fmt.Fprintf(w, "  %-12s %s\n", "threshold", "#CFIs")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12.0f %d\n", 100*r.Threshold, r.CFIs)
	}
	fmt.Fprintln(w)
}

// PrintPlanGrid renders a Figures 9-11 style table: one block per focal
// subset size, one row per plan, one column per minsupport, with the
// optimizer's majority choice marked "<-- COLARM" (the figures' arrow).
func PrintPlanGrid(w io.Writer, dataset string, cells []GridCell) {
	fmt.Fprintf(w, "Avg execution time of mining plans (%s), minconf=%.0f%%\n", dataset, 100*cellsMinConf(cells))
	byFrac := map[float64][]GridCell{}
	var fracs []float64
	for _, c := range cells {
		if _, ok := byFrac[c.DQFrac]; !ok {
			fracs = append(fracs, c.DQFrac)
		}
		byFrac[c.DQFrac] = append(byFrac[c.DQFrac], c)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(fracs)))
	for _, frac := range fracs {
		group := byFrac[frac]
		sort.Slice(group, func(i, j int) bool { return group[i].MinSupp < group[j].MinSupp })
		fmt.Fprintf(w, "\n  |DQ| = %.0f%% of |D|\n", 100*frac)
		fmt.Fprintf(w, "  %-10s", "plan")
		for _, c := range group {
			fmt.Fprintf(w, " %14s", fmt.Sprintf("minsupp=%.0f%%", 100*c.MinSupp))
		}
		fmt.Fprintln(w)
		for _, k := range plans.Kinds() {
			fmt.Fprintf(w, "  %-10s", k)
			for _, c := range group {
				fmt.Fprintf(w, " %14s", fmtDur(c.AvgTime[k]))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  %-10s", "COLARM ->")
		for _, c := range group {
			fmt.Fprintf(w, " %14s", c.Chosen)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func cellsMinConf(cells []GridCell) float64 {
	if len(cells) == 0 {
		return 0
	}
	return cells[0].MinConf
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// PrintAccuracy renders the Section 5.1 plan-selection accuracy table.
func PrintAccuracy(w io.Writer, results []AccuracyResult, tol float64) {
	fmt.Fprintf(w, "COLARM optimizer plan-selection accuracy (tolerance %.0f%% extra cost)\n", 100*tol)
	fmt.Fprintf(w, "  %-10s %10s %9s %9s %14s\n", "dataset", "scenarios", "correct", "accuracy", "max miss cost")
	total, correct := 0, 0
	worst := 0.0
	for _, r := range results {
		fmt.Fprintf(w, "  %-10s %10d %9d %8.1f%% %13.1f%%\n",
			r.Dataset, r.Scenarios, r.Correct, 100*r.Accuracy(), 100*r.MaxMissRegret)
		total += r.Scenarios
		correct += r.Correct
		if r.MaxMissRegret > worst {
			worst = r.MaxMissRegret
		}
	}
	if total > 0 {
		fmt.Fprintf(w, "  %-10s %10d %9d %8.1f%% %13.1f%%\n",
			"overall", total, correct, 100*float64(correct)/float64(total), 100*worst)
	}
	fmt.Fprintln(w)
}

// PrintGains renders Figure 12: % gains over S-E-V per dataset plus the
// overall average.
func PrintGains(w io.Writer, rows []GainRow) {
	optimized := []plans.Kind{plans.SSEUV, plans.SSVS, plans.SSEV, plans.SVS}
	fmt.Fprintln(w, "Figure 12 — % execution-cost gain over the S-E-V baseline")
	fmt.Fprintf(w, "  %-10s", "dataset")
	for _, k := range optimized {
		fmt.Fprintf(w, " %10s", k)
	}
	fmt.Fprintln(w)
	overall := map[plans.Kind]float64{}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s", r.Dataset)
		for _, k := range optimized {
			fmt.Fprintf(w, " %9.1f%%", r.Gains[k])
			overall[k] += r.Gains[k]
		}
		fmt.Fprintln(w)
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "  %-10s", "overall")
		for _, k := range optimized {
			fmt.Fprintf(w, " %9.1f%%", overall[k]/float64(len(rows)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// PrintFig13 renders the fresh-local vs repeated-global CFI counts.
func PrintFig13(w io.Writer, dataset string, rows []Fig13Row) {
	fmt.Fprintf(w, "Figure 13 — avg local vs global CFIs (%s)\n", dataset)
	fmt.Fprintf(w, "  %-8s %16s %20s\n", "|DQ|", "fresh-local", "repeated-global")
	for _, r := range rows {
		fmt.Fprintf(w, "  %6.0f%% %16.1f %20.1f\n", 100*r.DQFrac, r.FreshLocal, r.RepeatedGlobal)
	}
	fmt.Fprintln(w)
}

// PrintConcurrent renders a concurrent-clients comparison: one row per
// configuration with throughput and latency percentiles, plus the
// throughput speedup of every row over the first (the serial baseline).
func PrintConcurrent(w io.Writer, dataset string, rows []ConcurrentResult) {
	fmt.Fprintf(w, "Concurrent serving — %s (queries through the cost-based optimizer)\n", dataset)
	fmt.Fprintf(w, "  %-8s %-8s %8s %12s %10s %10s %10s %9s\n",
		"clients", "workers", "queries", "qps", "p50", "p99", "max", "speedup")
	var base float64
	for i, r := range rows {
		if i == 0 {
			base = r.Throughput
		}
		workers := fmt.Sprintf("%d", r.Workers)
		if r.Workers == 0 {
			workers = "ncpu"
		}
		speedup := "-"
		if i > 0 && base > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Throughput/base)
		}
		fmt.Fprintf(w, "  %-8d %-8s %8d %12.1f %10s %10s %10s %9s\n",
			r.Clients, workers, r.Queries, r.Throughput,
			fmtDur(r.P50), fmtDur(r.P99), fmtDur(r.Max), speedup)
	}
	fmt.Fprintln(w)
}

// PrintSimpson renders the Section 5.3 anecdote report.
func PrintSimpson(w io.Writer, rep *SimpsonReport) {
	fmt.Fprintf(w, "Simpson's paradox probe — subset %s=%s (%d records)\n",
		rep.RangeAttr, rep.RangeValue, rep.SubsetSize)
	fmt.Fprintf(w, "  local CFIs at >=%.0f%% local support: %d\n", 100*rep.LocalThresh, rep.LocalCFIs)
	fmt.Fprintf(w, "  of which hidden globally (<=%.0f%% global support): %d\n", 100*rep.HideThresh, rep.HiddenCFIs)
	for _, ex := range rep.Examples {
		fmt.Fprintf(w, "    %s  local=%.0f%% global=%.0f%%\n", ex.Items, 100*ex.LocalSupp, 100*ex.GlobalSupp)
	}
	fmt.Fprintln(w)
}
