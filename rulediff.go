package colarm

import (
	"context"
	"strings"
)

// RuleSetDiff is the change in a localized query's rule set between a
// previous snapshot and the engine's current state, as computed by
// Engine.RuleDiff. Rules are identified by their antecedent/consequent
// item labels (RuleKey); a rule present on both sides with any changed
// measure appears in Updated with its current values.
//
// Replaying a snapshot plus a sequence of diffs reconstructs the rule
// set exactly: drop Disappeared, then upsert Appeared and Updated.
type RuleSetDiff struct {
	// Generation and Version locate the current side on the engine's
	// (generation, version-clock) timeline; Version is read after the
	// mining completes, so under concurrent ingestion it is an upper
	// bound on the version the rules reflect.
	Generation uint64
	Version    uint64

	// Rules is the full current rule set (the diff's "after" side).
	Rules []Rule

	// Appeared lists rules present now but absent from prev;
	// Disappeared the reverse (with their previous values); Updated the
	// rules present on both sides whose counts or measures changed,
	// carrying current values.
	Appeared    []Rule
	Disappeared []Rule
	Updated     []Rule
}

// Empty reports whether the diff carries no change at all.
func (d *RuleSetDiff) Empty() bool {
	return len(d.Appeared) == 0 && len(d.Disappeared) == 0 && len(d.Updated) == 0
}

// RuleKey identifies a rule by its item labels — the antecedent and
// consequent joined with unit separators — independent of its measured
// values. Two rules with equal keys are "the same rule" across
// versions; diffing tracks measure movement under the key.
func RuleKey(r Rule) string {
	return strings.Join(r.Antecedent, "\x1f") + "\x1e" + strings.Join(r.Consequent, "\x1f")
}

// sameMeasures reports whether two same-key rules carry identical
// counts; every derived measure (support, confidence, lift, cosine,
// Kulczynski) is a pure function of counts computed by the same code,
// so equal counts imply bit-equal measures. Lift and friends also
// depend on the consequent's subset support, which the counts do not
// pin down — compare the derived floats too.
func sameMeasures(a, b Rule) bool {
	return a.SupportCount == b.SupportCount &&
		a.AntecedentCount == b.AntecedentCount &&
		a.SubsetSize == b.SubsetSize &&
		a.Support == b.Support &&
		a.Confidence == b.Confidence &&
		a.Lift == b.Lift &&
		a.Cosine == b.Cosine &&
		a.Kulczynski == b.Kulczynski
}

// RuleDiff mines q against the engine's current state and returns the
// change relative to prev, a previously obtained rule set for the same
// query. It executes one mining pass through the shared merged-view
// machinery (the view is materialized at most once per delta version,
// so concurrent diffs of different queries at one version share it)
// and diffs the result against prev by RuleKey. Passing nil prev
// yields a diff in which every rule Appeared — the snapshot form.
func (e *Engine) RuleDiff(ctx context.Context, q Query, prev []Rule) (*RuleSetDiff, error) {
	res, err := e.MineContext(ctx, q)
	if err != nil {
		return nil, err
	}
	d := &RuleSetDiff{
		Generation: e.gen,
		Version:    e.Version(),
		Rules:      res.Rules,
	}
	old := make(map[string]Rule, len(prev))
	for _, r := range prev {
		old[RuleKey(r)] = r
	}
	for _, r := range res.Rules {
		k := RuleKey(r)
		p, ok := old[k]
		switch {
		case !ok:
			d.Appeared = append(d.Appeared, r)
		case !sameMeasures(p, r):
			d.Updated = append(d.Updated, r)
		}
		delete(old, k)
	}
	// Preserve prev's order for the disappeared side (map iteration
	// would make the diff nondeterministic).
	for _, r := range prev {
		if _, gone := old[RuleKey(r)]; gone {
			d.Disappeared = append(d.Disappeared, r)
		}
	}
	return d, nil
}
