// Flat struct-of-arrays layout for the IT-tree.
//
// Instead of one heap object per CFI plus a string-keyed map, the flat
// layout packs everything the online operations touch into five dense
// slabs:
//
//	itemArena/itemOff   all CFI itemsets concatenated, offset-indexed
//	supports            global support per CFI id
//	tids                tidset pointer per CFI id
//	invArena/invOff     per-item inverted lists of CFI ids
//	htab                open-addressed exact-lookup table
//
// The inverted-list runs are ordered by (support descending, id
// ascending). The closure of X is the unique maximum-support CFI
// containing X (two distinct containing CFIs at the shared maximum would
// have equal tidsets — impossible for distinct closed sets), so the
// closure scan can return the FIRST containing CFI it meets in that
// order; the id-ascending tie-break reproduces the pointer layout's
// "first max-support wins" result exactly. Exact lookup hashes the item
// slice directly (FNV-1a over the item words) and verifies candidates
// against the arena, so no per-probe string key is ever allocated.
package ittree

import (
	"sort"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
)

// buildFlat populates the slab fields from the mined CFIs.
func (t *Tree) buildFlat(closed []*charm.ClosedSet) {
	n := len(closed)
	totalItems := 0
	for _, c := range closed {
		totalItems += len(c.Items)
	}
	t.itemArena = make([]itemset.Item, 0, totalItems)
	t.itemOff = make([]int32, n+1)
	t.supports = make([]int32, n)
	t.tids = make([]*bitset.Set, n)
	for id, c := range closed {
		t.itemOff[id] = int32(len(t.itemArena))
		t.itemArena = append(t.itemArena, c.Items...)
		t.supports[id] = int32(c.Support)
		t.tids[id] = c.Tids
	}
	t.itemOff[n] = int32(len(t.itemArena))

	// Inverted lists: bucket ids per item (ascending id by construction),
	// then order each run by (support desc, id asc) for the early-exit
	// closure scan.
	counts := make([]int32, t.numItems)
	for _, it := range t.itemArena {
		counts[it]++
	}
	t.invOff = make([]int32, t.numItems+1)
	for it := 0; it < t.numItems; it++ {
		t.invOff[it+1] = t.invOff[it] + counts[it]
	}
	t.invArena = make([]int32, totalItems)
	cursor := make([]int32, t.numItems)
	copy(cursor, t.invOff[:t.numItems])
	for id := 0; id < n; id++ {
		for _, it := range t.itemArena[t.itemOff[id]:t.itemOff[id+1]] {
			t.invArena[cursor[it]] = int32(id)
			cursor[it]++
		}
	}
	for it := 0; it < t.numItems; it++ {
		run := t.invArena[t.invOff[it]:t.invOff[it+1]]
		sort.Slice(run, func(a, b int) bool {
			sa, sb := t.supports[run[a]], t.supports[run[b]]
			if sa != sb {
				return sa > sb
			}
			return run[a] < run[b]
		})
	}

	// Exact-lookup table: power-of-two size at load factor <= 0.5,
	// linear probing, -1 empty. Collisions are resolved by verifying the
	// candidate's items against the arena.
	size := 8
	for size < 2*n {
		size <<= 1
	}
	t.htab = make([]int32, size)
	for i := range t.htab {
		t.htab[i] = -1
	}
	mask := uint64(size - 1)
	for id := 0; id < n; id++ {
		h := hashItems(t.itemArena[t.itemOff[id]:t.itemOff[id+1]])
		for i := h & mask; ; i = (i + 1) & mask {
			if t.htab[i] < 0 {
				t.htab[i] = int32(id)
				break
			}
		}
	}
}

// hashItems is FNV-1a over the item words of a (sorted) itemset.
func hashItems(x itemset.Set) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range x {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

// probeFlat finds the id of the CFI whose itemset is exactly x via the
// open-addressed table.
func (t *Tree) probeFlat(x itemset.Set) (int, bool) {
	if len(t.htab) == 0 || len(x) == 0 {
		return 0, false
	}
	mask := uint64(len(t.htab) - 1)
	for i := hashItems(x) & mask; ; i = (i + 1) & mask {
		id := t.htab[i]
		if id < 0 {
			return 0, false
		}
		items := t.itemArena[t.itemOff[id]:t.itemOff[id+1]]
		if equalItems(items, x) {
			return int(id), true
		}
	}
}

func equalItems(a, b itemset.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// closureFlat resolves the closure of a non-empty x on the slabs: exact
// probe first, then a single early-exit pass over the shortest inverted
// list of x's items.
func (t *Tree) closureFlat(x itemset.Set) (int, bool) {
	if id, ok := t.probeFlat(x); ok {
		return id, true
	}
	shortest := itemset.Item(-1)
	shortLen := int32(0)
	for _, it := range x {
		l := t.invOff[it+1] - t.invOff[it]
		if l == 0 {
			return 0, false
		}
		if shortest < 0 || l < shortLen {
			shortest, shortLen = it, l
		}
	}
	for _, id := range t.invArena[t.invOff[shortest]:t.invOff[shortest+1]] {
		if t.containsAll(int(id), x) {
			return int(id), true
		}
	}
	return 0, false
}

// containsAll reports whether CFI id's itemset contains every item of x.
// Both sides are sorted ascending, so a single merge scan suffices.
func (t *Tree) containsAll(id int, x itemset.Set) bool {
	items := t.itemArena[t.itemOff[id]:t.itemOff[id+1]]
	i := 0
	for _, v := range x {
		for i < len(items) && items[i] < v {
			i++
		}
		if i >= len(items) || items[i] != v {
			return false
		}
		i++
	}
	return true
}

// containingFlat computes ContainingIDs on the slabs: filter the
// shortest inverted list by full containment, then restore ascending id
// order (inverted runs are support-ordered).
func (t *Tree) containingFlat(x itemset.Set) []int32 {
	shortest := itemset.Item(-1)
	shortLen := int32(0)
	for _, it := range x {
		l := t.invOff[it+1] - t.invOff[it]
		if l == 0 {
			return nil
		}
		if shortest < 0 || l < shortLen {
			shortest, shortLen = it, l
		}
	}
	var out []int32
	for _, id := range t.invArena[t.invOff[shortest]:t.invOff[shortest+1]] {
		if t.containsAll(int(id), x) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
