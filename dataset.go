package colarm

import (
	"fmt"
	"io"

	"colarm/internal/datagen"
	"colarm/internal/relation"
)

// Dataset is a relational dataset of nominal attributes — the input to
// Open. Quantitative columns must be discretized (see Discretize) before
// an engine is built over them.
type Dataset struct {
	rel *relation.Dataset
}

// Name returns the dataset's name (used by the query language's FROM
// clause).
func (d *Dataset) Name() string { return d.rel.Name }

// NumRecords returns the number of records.
func (d *Dataset) NumRecords() int { return d.rel.NumRecords() }

// NumAttributes returns the number of attributes.
func (d *Dataset) NumAttributes() int { return d.rel.NumAttrs() }

// Attributes returns the attribute names in schema order.
func (d *Dataset) Attributes() []string {
	out := make([]string, d.rel.NumAttrs())
	for i, a := range d.rel.Attrs {
		out[i] = a.Name
	}
	return out
}

// Values returns the value dictionary of the named attribute.
func (d *Dataset) Values(attr string) ([]string, error) {
	ai := d.rel.AttrIndex(attr)
	if ai < 0 {
		return nil, fmt.Errorf("colarm: unknown attribute %q", attr)
	}
	return append([]string(nil), d.rel.Attrs[ai].Values...), nil
}

// Record returns record r as attribute value labels in schema order.
func (d *Dataset) Record(r int) []string {
	out := make([]string, d.rel.NumAttrs())
	for a := range out {
		out[a] = d.rel.ValueString(r, a)
	}
	return out
}

// WriteCSV writes the dataset (with a header row) to w.
func (d *Dataset) WriteCSV(w io.Writer) error { return d.rel.WriteCSV(w) }

// Discretize returns a copy of the dataset with the named numeric
// column cut into k interval labels. method is "width" (equal-width) or
// "frequency" (equal-frequency).
func (d *Dataset) Discretize(attr string, k int, method string) (*Dataset, error) {
	ai := d.rel.AttrIndex(attr)
	if ai < 0 {
		return nil, fmt.Errorf("colarm: unknown attribute %q", attr)
	}
	var m relation.BinningMethod
	switch method {
	case "width", "":
		m = relation.EqualWidth
	case "frequency":
		m = relation.EqualFrequency
	default:
		return nil, fmt.Errorf("colarm: unknown binning method %q (want width or frequency)", method)
	}
	dd, err := relation.DiscretizeColumn(d.rel, ai, k, m)
	if err != nil {
		return nil, err
	}
	return &Dataset{rel: dd}, nil
}

// LoadCSV loads a dataset from a headed CSV file; every column is read
// as nominal strings.
func LoadCSV(path string) (*Dataset, error) {
	d, err := relation.LoadCSV(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{rel: d}, nil
}

// ReadCSV loads a dataset from a headed CSV stream.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	d, err := relation.ReadCSV(name, r)
	if err != nil {
		return nil, err
	}
	return &Dataset{rel: d}, nil
}

// DatasetBuilder assembles a Dataset record by record.
type DatasetBuilder struct {
	b *relation.Builder
}

// NewDataset starts a dataset with the given attribute names.
func NewDataset(name string, attrs ...string) *DatasetBuilder {
	return &DatasetBuilder{b: relation.NewBuilder(name, attrs...)}
}

// Add appends one record given as attribute value labels in schema
// order; new labels extend the attribute's dictionary in first-seen
// order (which defines the attribute's axis for range queries).
func (db *DatasetBuilder) Add(values ...string) error { return db.b.AddRecord(values...) }

// Build freezes the builder.
func (db *DatasetBuilder) Build() *Dataset { return &Dataset{rel: db.b.Build()} }

// Salary returns the paper's Table 1 example dataset (11 anonymized IT
// employee records).
func Salary() (*Dataset, error) {
	return &Dataset{rel: datagen.Salary()}, nil
}

// GenerateChess returns the synthetic stand-in for the UCI chess
// benchmark: 3196 dense records over 37 attributes (76 items) with an
// exploding closed-itemset population (paper primary support: 60%).
func GenerateChess(seed int64) (*Dataset, error) {
	d, err := datagen.Generate(datagen.ChessConfig(seed))
	if err != nil {
		return nil, err
	}
	return &Dataset{rel: d}, nil
}

// GenerateMushroom returns the synthetic stand-in for the UCI mushroom
// benchmark: 8124 records over 23 attributes (~120 items) with a
// bi-modal closed-itemset length distribution (paper primary support:
// 5%).
func GenerateMushroom(seed int64) (*Dataset, error) {
	d, err := datagen.Generate(datagen.MushroomConfig(seed))
	if err != nil {
		return nil, err
	}
	return &Dataset{rel: d}, nil
}

// GeneratePUMSB returns the synthetic stand-in for the UCI PUMSB census
// benchmark: 49046 records over 74 high-cardinality attributes (~7100
// items), very dense and skewed (paper primary support: 80%).
func GeneratePUMSB(seed int64) (*Dataset, error) {
	d, err := datagen.Generate(datagen.PUMSBConfig(seed))
	if err != nil {
		return nil, err
	}
	return &Dataset{rel: d}, nil
}
