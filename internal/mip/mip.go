// Package mip builds and holds the Multidimensional Itemset Partitioning
// index (MIP-index, paper Section 3): the one-time offline structure that
// makes preprocess-once-query-many localized rule mining feasible.
//
// A MIP is a closed frequent itemset viewed geometrically: its bounding
// box in the n-dimensional value-index space together with the items
// composing it. The index stores both features in two layers:
//
//   - an R-tree over the MIP bounding boxes, augmented with global
//     support counts (the supported R-tree of Section 4.3);
//   - a closed IT-tree over the itemsets and their tidsets.
//
// Build also precomputes the statistics the COLARM cost model consumes
// (per-level node counts and extents, support distributions).
package mip

import (
	"fmt"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
	"colarm/internal/pool"
	"colarm/internal/qerr"
	"colarm/internal/relation"
	"colarm/internal/rtree"
)

// Layout selects the physical layout of both index layers: FlatLayout
// (the default) packs the IT-tree and R-tree into contiguous
// struct-of-arrays slabs; PointerLayout keeps the original
// one-heap-object-per-node organization as the differential reference.
type Layout int

const (
	FlatLayout Layout = iota
	PointerLayout
)

func (l Layout) String() string {
	switch l {
	case FlatLayout:
		return "flat"
	case PointerLayout:
		return "pointer"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ITTreeLayout maps the index-level layout to the IT-tree layer's.
func (l Layout) ITTreeLayout() ittree.Layout {
	if l == PointerLayout {
		return ittree.PointerLayout
	}
	return ittree.FlatLayout
}

// RTreeLayout maps the index-level layout to the R-tree layer's.
func (l Layout) RTreeLayout() rtree.Layout {
	if l == PointerLayout {
		return rtree.PointerLayout
	}
	return rtree.FlatLayout
}

// Options configures the offline preprocessing phase.
type Options struct {
	// PrimarySupport is the primary support threshold (fraction of the
	// dataset) below which itemsets are not prestored. Analysts are
	// assumed not to ask for rules rarer than this (paper footnote 2).
	PrimarySupport float64
	// Fanout is the R-tree node capacity; <= 0 selects the default.
	Fanout int
	// Packing selects the bulk-loading scheme for the R-tree.
	Packing rtree.Packing
	// Layout selects the physical layout of the index layers.
	Layout Layout
	// Workers bounds the fan-out of the per-CFI bounding-box computation
	// during assembly: 0 means one worker per CPU, 1 forces serial. Box
	// probes are independent reads over immutable tidsets and land in
	// pre-indexed slots, so the result is worker-count-invariant.
	Workers int
}

// Index is the built MIP-index plus everything the online phase needs:
// the item space, the per-item tidsets, and precomputed statistics.
type Index struct {
	Dataset *relation.Dataset
	Space   *itemset.Space
	// Tidsets maps each item to the records containing it.
	Tidsets []*bitset.Set
	// ITTree stores the closed frequent itemsets (second index layer).
	ITTree *ittree.Tree
	// RTree indexes the MIP bounding boxes (first index layer).
	RTree *rtree.Tree
	// Boxes[i] is the bounding box of CFI i (same ids as ITTree).
	Boxes []itemset.Box
	// PrimaryCount is the primary support threshold in records.
	PrimaryCount int
	// Cards caches per-attribute cardinalities (R-tree axis sizes).
	Cards []int
	// Layout records the physical layout the index was assembled with.
	Layout Layout
	// Live, when non-nil, flags the records of Dataset that exist: a
	// consolidated sharded engine absorbs deletions without renumbering
	// record ids (hash partitioning must stay stable), so deleted rows
	// remain in Dataset as ghosts outside Live. Nil means every record
	// is live — the layout every monolithic build produces. Tidsets,
	// the CFI catalog and all query surfaces cover live records only.
	Live *bitset.Set

	// Precomputed statistics for the cost model.
	LevelStats []rtree.LevelStats
	EntryStats rtree.EntryStats
}

// Build runs the offline preprocessing phase: CHARM at the primary
// support, IT-tree construction, MIP bounding boxes, and the packed
// supported R-tree.
func Build(d *relation.Dataset, opts Options) (*Index, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if opts.PrimarySupport <= 0 || opts.PrimarySupport > 1 {
		return nil, fmt.Errorf("mip: primary support %v outside (0,1]", opts.PrimarySupport)
	}
	sp := itemset.NewSpace(d)
	tidsets := itemset.ItemTidsets(d, sp)
	primaryCount := charm.CountFor(opts.PrimarySupport, d.NumRecords())
	res, err := charm.MineTidsets(tidsets, d.NumRecords(), primaryCount)
	if err != nil {
		return nil, err
	}
	return assemble(d, sp, tidsets, res, primaryCount, opts)
}

// Assemble builds the index layers from an existing mining result. The
// shard layer consolidates through it: after folding buffered deltas
// into a ghost-preserving dataset and re-mining the catalog (globally or
// via the cross-shard closure merge), Assemble packs the same IT-tree,
// boxes and supported R-tree the offline Build would, so a consolidated
// index answers byte-identically to a from-scratch build over the
// compacted data. Set Live on the returned index afterwards when the
// dataset carries ghost rows.
func Assemble(d *relation.Dataset, sp *itemset.Space, tidsets []*bitset.Set, res *charm.Result, primaryCount int, opts Options) (*Index, error) {
	return assemble(d, sp, tidsets, res, primaryCount, opts)
}

// assemble builds the index layers from an existing mining result; split
// out so tests can inject hand-built CFI collections.
func assemble(d *relation.Dataset, sp *itemset.Space, tidsets []*bitset.Set, res *charm.Result, primaryCount int, opts Options) (*Index, error) {
	idx := &Index{
		Dataset:      d,
		Space:        sp,
		Tidsets:      tidsets,
		ITTree:       ittree.BuildLayout(res, sp.NumItems(), opts.Layout.ITTreeLayout()),
		PrimaryCount: primaryCount,
		Layout:       opts.Layout,
	}
	idx.Cards = make([]int, sp.NumAttrs())
	for a := range idx.Cards {
		idx.Cards[a] = sp.Cardinality(a)
	}
	// Box probes are independent tidset reads landing in pre-indexed
	// slots, so they fan out across the worker pool without affecting the
	// result.
	idx.Boxes = make([]itemset.Box, len(res.Closed))
	entries := make([]rtree.Entry, len(res.Closed))
	pool.For(len(res.Closed), pool.Workers(opts.Workers), func(id int) {
		c := res.Closed[id]
		idx.Boxes[id] = idx.boundingBox(c)
		entries[id] = rtree.Entry{Box: idx.Boxes[id], ID: int32(id), Support: int32(c.Support)}
	})
	rt, err := rtree.BulkLayout(entries, sp.NumAttrs(), opts.Fanout, opts.Packing, idx.Cards, opts.Layout.RTreeLayout())
	if err != nil {
		return nil, err
	}
	idx.RTree = rt
	idx.LevelStats, idx.EntryStats = rt.Stats(idx.Cards)
	return idx, nil
}

// boundingBox computes the MIP box of a CFI: a point interval on every
// dimension the itemset constrains, and the [min,max] extent of the
// supporting records on the rest. The probe walks each unconstrained
// axis from both ends testing tidset overlap with the per-value item
// tidsets, so the cost is proportional to the located extent rather than
// the support count.
func (x *Index) boundingBox(c *charm.ClosedSet) itemset.Box {
	return BoundingBox(x.Space, x.Cards, x.Tidsets, c)
}

// BoundingBox is the box computation over arbitrary tidsets, shared with
// the delta layer: the merge view recomputes boxes against tidsets that
// extend over buffered record ids, so the boxes it produces are exactly
// those a from-scratch rebuild over the merged data would compute.
func BoundingBox(sp *itemset.Space, cards []int, tidsets []*bitset.Set, c *charm.ClosedSet) itemset.Box {
	n := sp.NumAttrs()
	b := itemset.NewBox(n)
	constrained := make([]bool, n)
	for _, it := range c.Items {
		a := sp.AttrOf(it)
		v := int32(sp.ValueOf(it))
		b.Lo[a], b.Hi[a] = v, v
		constrained[a] = true
	}
	for a := 0; a < n; a++ {
		if constrained[a] {
			continue
		}
		card := cards[a]
		lo, hi := -1, -1
		for v := 0; v < card; v++ {
			if c.Tids.Intersects(tidsets[sp.ItemOf(a, v)]) {
				lo = v
				break
			}
		}
		for v := card - 1; v >= 0; v-- {
			if c.Tids.Intersects(tidsets[sp.ItemOf(a, v)]) {
				hi = v
				break
			}
		}
		if lo < 0 {
			// A CFI with an empty tidset cannot exist (support >= 1),
			// but guard against it with a degenerate full-extent box.
			lo, hi = 0, card-1
		}
		b.Lo[a], b.Hi[a] = int32(lo), int32(hi)
	}
	return b
}

// NumMIPs returns the number of prestored MIPs (closed frequent
// itemsets).
func (x *Index) NumMIPs() int { return x.ITTree.Size() }

// SubsetBitmap materializes the record bitmap of a focal-subset region.
func (x *Index) SubsetBitmap(reg *itemset.Region) *bitset.Set {
	dq := itemset.RegionTidset(reg, x.Space, x.Tidsets, x.Dataset.NumRecords())
	if x.Live != nil {
		// Ghost rows (consolidated deletions) never join a focal subset;
		// restricted dimensions exclude them already via the live-only
		// tidsets, but unrestricted dimensions contribute a full bitmap.
		dq.And(x.Live)
	}
	return dq
}

// RegionFromSelections builds a Region from attribute-name → value-label
// selections, validating every name and label against the dataset.
func (x *Index) RegionFromSelections(sel map[string][]string) (*itemset.Region, error) {
	reg := itemset.RegionFor(x.Space)
	for name, labels := range sel {
		ai := x.Dataset.AttrIndex(name)
		if ai < 0 {
			return nil, fmt.Errorf("mip: %w: range attribute %q", qerr.ErrUnknownAttribute, name)
		}
		vals := make([]int, 0, len(labels))
		for _, l := range labels {
			v := x.Dataset.Attrs[ai].ValueIndex(l)
			if v < 0 {
				return nil, fmt.Errorf("mip: %w: attribute %q has no value %q", qerr.ErrUnknownValue, name, l)
			}
			vals = append(vals, v)
		}
		if err := reg.Restrict(ai, vals); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// Validate cross-checks the index layers: every CFI box must cover its
// supporting records, the R-tree must be structurally valid and hold one
// entry per CFI, and the IT-tree must resolve its own itemsets.
func (x *Index) Validate() error {
	if err := x.RTree.Validate(); err != nil {
		return err
	}
	if err := x.ITTree.Validate(); err != nil {
		return err
	}
	if x.RTree.Size() != x.ITTree.Size() {
		return fmt.Errorf("mip: R-tree has %d entries, IT-tree %d", x.RTree.Size(), x.ITTree.Size())
	}
	n := x.Dataset.NumAttrs()
	point := make([]int, n)
	for id := 0; id < x.ITTree.Size(); id++ {
		c := x.ITTree.Set(id)
		box := x.Boxes[id]
		ok := true
		c.Tids.ForEach(func(r int) bool {
			for a := 0; a < n; a++ {
				point[a] = x.Dataset.Value(r, a)
			}
			if !box.ContainsPoint(point) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return fmt.Errorf("mip: box of CFI %d does not cover its records", id)
		}
	}
	return nil
}
