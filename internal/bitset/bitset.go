// Package bitset provides dense fixed-capacity bitsets used throughout
// COLARM as tidsets: sets of record identifiers attached to items and
// itemsets. The hot operations for the miners and the online plans are
// intersection, intersection cardinality, and population count, so those
// are implemented without allocation where possible.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset over the universe [0, Len()). The zero value is an
// empty set of capacity zero; use New to create a set that can hold ids.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty Set capable of holding ids in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIDs returns a Set of capacity n containing exactly the given ids.
// Ids outside [0, n) are ignored.
func FromIDs(n int, ids ...int) *Set {
	s := New(n)
	for _, id := range ids {
		if id >= 0 && id < n {
			s.Add(id)
		}
	}
	return s
}

// Len returns the capacity (universe size) of the set in bits.
func (s *Set) Len() int { return s.n }

// Add inserts id into the set. Ids outside [0, Len()) panic, matching the
// out-of-range behaviour of slice indexing.
func (s *Set) Add(id int) {
	s.words[id/wordBits] |= 1 << (uint(id) % wordBits)
}

// Remove deletes id from the set.
func (s *Set) Remove(id int) {
	s.words[id/wordBits] &^= 1 << (uint(id) % wordBits)
}

// Contains reports whether id is in the set. Ids outside [0, Len()) are
// reported as absent.
func (s *Set) Contains(id int) bool {
	if id < 0 || id >= s.n {
		return false
	}
	return s.words[id/wordBits]&(1<<(uint(id)%wordBits)) != 0
}

// Count returns the number of ids in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set contains no ids.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CloneGrown returns an independent copy of s with capacity n >= Len().
// The new ids [Len(), n) start absent. Used by the delta layer to extend
// base tidsets over buffered record ids without rescanning the base.
func (s *Set) CloneGrown(n int) *Set {
	if n < s.n {
		panic("bitset: CloneGrown capacity below current")
	}
	c := New(n)
	copy(c.words, s.words)
	return c
}

// Clear removes all ids from the set, keeping its capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every id in [0, Len()) to the set.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits beyond capacity in the last word so Count and
// equality stay exact after Fill or Complement.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// And replaces s with s ∩ t. The sets must have equal capacity.
func (s *Set) And(t *Set) {
	s.checkCompat(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// Or replaces s with s ∪ t. The sets must have equal capacity.
func (s *Set) Or(t *Set) {
	s.checkCompat(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// AndNot replaces s with s \ t. The sets must have equal capacity.
func (s *Set) AndNot(t *Set) {
	s.checkCompat(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Complement replaces s with its complement within [0, Len()).
func (s *Set) Complement() {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
}

// Intersect returns a new set holding s ∩ t.
func Intersect(s, t *Set) *Set {
	s.checkCompat(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] & t.words[i]
	}
	return r
}

// Union returns a new set holding s ∪ t.
func Union(s, t *Set) *Set {
	s.checkCompat(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] | t.words[i]
	}
	return r
}

// Difference returns a new set holding s \ t.
func Difference(s, t *Set) *Set {
	s.checkCompat(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] &^ t.words[i]
	}
	return r
}

// AndCount returns |s ∩ t| without materializing the intersection. This is
// the record-level support check on the hot path of ELIMINATE and VERIFY.
func AndCount(s, t *Set) int {
	s.checkCompat(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// Equal reports whether s and t hold exactly the same ids and capacity.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every id of s is also in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.checkCompat(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one id.
func (s *Set) Intersects(t *Set) bool {
	s.checkCompat(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every id in ascending order. Iteration stops early
// if fn returns false.
func (s *Set) ForEach(fn func(id int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// IDs returns the ids in the set in ascending order.
func (s *Set) IDs() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Hash returns a cheap order-independent signature of the set contents.
// CHARM uses it to bucket candidate closed itemsets by tidset for
// subsumption checking; collisions are resolved with Equal.
func (s *Set) Hash() uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, w := range s.words {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// String renders the set as "{1, 5, 9}" for debugging and test failure
// messages.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) checkCompat(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}
