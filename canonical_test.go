package colarm

import (
	"errors"
	"strings"
	"testing"
)

func TestCanonicalOrderInvariance(t *testing.T) {
	base := Query{
		Range:          map[string][]string{"Location": {"Seattle", "Boston"}, "Gender": {"F"}},
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.70,
		MinConfidence:  0.95,
	}
	variants := []Query{
		{ // reversed item attributes
			Range:          map[string][]string{"Location": {"Seattle", "Boston"}, "Gender": {"F"}},
			ItemAttributes: []string{"Salary", "Age"},
			MinSupport:     0.70,
			MinConfidence:  0.95,
		},
		{ // reversed range selections, duplicated value
			Range:          map[string][]string{"Gender": {"F", "F"}, "Location": {"Boston", "Seattle"}},
			ItemAttributes: []string{"Age", "Salary", "Age"},
			MinSupport:     0.70,
			MinConfidence:  0.95,
		},
		{ // Trace is reporting, not computation
			Range:          map[string][]string{"Location": {"Seattle", "Boston"}, "Gender": {"F"}},
			ItemAttributes: []string{"Age", "Salary"},
			MinSupport:     0.70,
			MinConfidence:  0.95,
			Trace:          true,
		},
	}
	want := base.Canonical()
	for i, v := range variants {
		if got := v.Canonical(); got != want {
			t.Errorf("variant %d canonical form differs:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	base := Query{
		Range:         map[string][]string{"Location": {"Seattle"}},
		MinSupport:    0.5,
		MinConfidence: 0.5,
	}
	for name, other := range map[string]Query{
		"range value": {Range: map[string][]string{"Location": {"Boston"}}, MinSupport: 0.5, MinConfidence: 0.5},
		"minsupport":  {Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.6, MinConfidence: 0.5},
		"minconf":     {Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.5, MinConfidence: 0.6},
		"plan":        {Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.5, MinConfidence: 0.5, Plan: ARM},
		"maxcons":     {Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.5, MinConfidence: 0.5, MaxConsequent: 2},
		"items":       {Range: map[string][]string{"Location": {"Seattle"}}, ItemAttributes: []string{"Age"}, MinSupport: 0.5, MinConfidence: 0.5},
	} {
		if other.Canonical() == base.Canonical() {
			t.Errorf("%s: distinct queries share a canonical form %q", name, base.Canonical())
		}
	}
	// The form is self-describing enough to eyeball.
	c := base.Canonical()
	for _, frag := range []string{`"Location"=("Seattle")`, "minsupp=0.5", "plan=auto"} {
		if !strings.Contains(c, frag) {
			t.Errorf("canonical form %q missing %q", c, frag)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Query{MinSupport: 0.5, MinConfidence: 0.5}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	cases := map[string]struct {
		q    Query
		want error
	}{
		"zero minsupport": {Query{MinSupport: 0, MinConfidence: 0.5}, ErrBadThreshold},
		"minsupport > 1":  {Query{MinSupport: 1.5, MinConfidence: 0.5}, ErrBadThreshold},
		"negative conf":   {Query{MinSupport: 0.5, MinConfidence: -0.1}, ErrBadThreshold},
		"conf > 1":        {Query{MinSupport: 0.5, MinConfidence: 1.1}, ErrBadThreshold},
		"negative cap":    {Query{MinSupport: 0.5, MinConfidence: 0.5, MaxConsequent: -1}, ErrBadThreshold},
		"bogus plan":      {Query{MinSupport: 0.5, MinConfidence: 0.5, Plan: Plan(99)}, ErrUnknownPlan},
	}
	for name, tc := range cases {
		err := tc.q.Validate()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
	}
}

// TestTypedErrors pins the facade's error taxonomy: every rejection an
// API caller can trigger is classifiable with errors.Is.
func TestTypedErrors(t *testing.T) {
	eng := salaryEngine(t)
	cases := map[string]struct {
		q    Query
		want error
	}{
		"unknown range attribute": {
			Query{Range: map[string][]string{"Nope": {"x"}}, MinSupport: 0.5, MinConfidence: 0.5},
			ErrUnknownAttribute,
		},
		"unknown range value": {
			Query{Range: map[string][]string{"Location": {"Atlantis"}}, MinSupport: 0.5, MinConfidence: 0.5},
			ErrUnknownValue,
		},
		"unknown item attribute": {
			Query{Range: map[string][]string{"Location": {"Seattle"}}, ItemAttributes: []string{"Nope"}, MinSupport: 0.5, MinConfidence: 0.5},
			ErrUnknownAttribute,
		},
		"bad threshold": {
			Query{Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0, MinConfidence: 0.5},
			ErrBadThreshold,
		},
	}
	for name, tc := range cases {
		_, err := eng.Mine(tc.q)
		if !errors.Is(err, tc.want) {
			t.Errorf("Mine %s: err = %v, want errors.Is(%v)", name, err, tc.want)
		}
		_, err = eng.Explain(tc.q)
		if !errors.Is(err, tc.want) {
			t.Errorf("Explain %s: err = %v, want errors.Is(%v)", name, err, tc.want)
		}
	}
	if _, err := ParsePlan("X-Y-Z"); !errors.Is(err, ErrUnknownPlan) {
		t.Errorf("ParsePlan: err = %v, want ErrUnknownPlan", err)
	}
}
