// Package colarm is a library for cost-based optimized localized
// association rule mining, reproducing the COLARM system of Mukherji,
// Rundensteiner and Ward (EDBT 2014).
//
// Classical rule miners discover global rules valid across an entire
// dataset. COLARM answers localized mining queries online: the analyst
// selects, at query time, a focal subset of the data (per-attribute
// value selections), the attributes allowed in rule bodies, and
// minimum support/confidence thresholds within that subset; the system
// returns the rules that hold locally — rules that are often invisible
// globally (Simpson's paradox).
//
// The library follows the preprocess-once-query-many paradigm. Open
// runs the offline phase: it mines the closed frequent itemsets at a
// primary support threshold (CHARM), stores them in a two-level
// MIP-index — a packed, support-annotated R-tree over the itemsets'
// multidimensional bounding boxes plus a closed IT-tree over the
// itemsets and their tidsets — and precomputes the statistics the cost
// model needs. Mine then answers each query with one of six execution
// plans (S-E-V, S-VS, SS-E-V, SS-VS, SS-E-U-V, or a from-scratch ARM
// baseline), chosen per query by the cost-based optimizer.
//
// Quickstart:
//
//	ds, _ := colarm.Salary()            // the paper's Table 1 dataset
//	eng, _ := colarm.Open(ds, colarm.Options{PrimarySupport: 0.18})
//	res, _ := eng.Mine(colarm.Query{
//	    Range:          map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
//	    ItemAttributes: []string{"Age", "Salary"},
//	    MinSupport:     0.70,
//	    MinConfidence:  0.95,
//	})
//	for _, r := range res.Rules {
//	    fmt.Println(r)
//	}
package colarm

import (
	"context"
	"fmt"
	"strings"

	"colarm/internal/colarmql"
	"colarm/internal/core"
	"colarm/internal/mip"
	"colarm/internal/obs"
	"colarm/internal/plans"
	"colarm/internal/rtree"
	"colarm/internal/rules"
)

// Packing selects the R-tree bulk-loading scheme for the MIP-index.
type Packing int

const (
	// STR packs with Sort-Tile-Recursive order (default).
	STR Packing = iota
	// Morton packs with Z-order curve order.
	Morton
)

// Plan identifies one of the six execution plans of the paper.
type Plan int

const (
	// Auto lets the cost-based optimizer choose (default).
	Auto Plan = iota
	// SEV is the basic SEARCH→ELIMINATE→VERIFY pipeline.
	SEV
	// SVS applies selection push-up (merged SUPPORTED-VERIFY).
	SVS
	// SSEV adds the supported R-tree filter.
	SSEV
	// SSVS combines the supported filter with selection push-up.
	SSVS
	// SSEUV adds differential treatment of contained vs partially
	// overlapped partitions.
	SSEUV
	// ARM is the traditional from-scratch mining baseline.
	ARM
)

// String returns the paper's plan name.
func (p Plan) String() string {
	if p == Auto {
		return "auto"
	}
	return kindOf(p).String()
}

// ParseLayout resolves a layout name ("flat", "pointer", or "" for the
// default flat layout).
func ParseLayout(s string) (mip.Layout, error) {
	switch strings.ToLower(s) {
	case "", "flat":
		return mip.FlatLayout, nil
	case "pointer":
		return mip.PointerLayout, nil
	}
	return 0, fmt.Errorf("colarm: unknown layout %q (want \"flat\" or \"pointer\")", s)
}

// ParsePlan resolves a plan name ("S-E-V", "ARM", "auto", ...).
func ParsePlan(s string) (Plan, error) {
	if strings.EqualFold(s, "auto") || s == "" {
		return Auto, nil
	}
	k, err := plans.ParseKind(s)
	if err != nil {
		return 0, err
	}
	return planOf(k), nil
}

func kindOf(p Plan) plans.Kind {
	switch p {
	case SEV:
		return plans.SEV
	case SVS:
		return plans.SVS
	case SSEV:
		return plans.SSEV
	case SSVS:
		return plans.SSVS
	case SSEUV:
		return plans.SSEUV
	case ARM:
		return plans.ARM
	}
	panic("colarm: no plan kind for Auto")
}

func planOf(k plans.Kind) Plan {
	switch k {
	case plans.SEV:
		return SEV
	case plans.SVS:
		return SVS
	case plans.SSEV:
		return SSEV
	case plans.SSVS:
		return SSVS
	case plans.SSEUV:
		return SSEUV
	case plans.ARM:
		return ARM
	}
	return Auto
}

// Options configures the offline preprocessing phase.
type Options struct {
	// PrimarySupport is the offline primary support threshold in
	// (0,1]: itemsets below it are not prestored and thus invisible to
	// queries (the POQM assumption).
	PrimarySupport float64
	// Fanout is the R-tree node capacity; 0 selects the default (16).
	Fanout int
	// Packing selects the R-tree bulk-loading scheme.
	Packing Packing
	// Layout selects the physical layout of the MIP-index layers:
	// "flat" (default: contiguous arena-packed struct-of-arrays slabs)
	// or "pointer" (one heap object per node — the differential
	// reference layout). Rules and statistics are identical for both;
	// only memory layout and speed change.
	Layout string
	// Calibrate micro-benchmarks the cost model's unit costs on this
	// machine; when false, hardware-typical defaults are used.
	Calibrate bool
	// CheckMode selects the record-level support check implementation:
	// "auto" (default: per-query cheaper choice), "scan" (proportional
	// to the focal subset size, the paper's cost structure) or
	// "bitmap" (proportional to the dataset size).
	CheckMode string
	// Workers bounds the goroutines a single query fans its parallel
	// operator sections (ELIMINATE support checks, VERIFY rule
	// generation) out to: 0 means one per logical CPU (GOMAXPROCS),
	// 1 forces serial execution. Rules and statistics are identical
	// for every setting; only wall-clock time changes.
	Workers int
	// TrackAccuracy makes every traced query (Query.Trace set)
	// additionally execute all six plans untraced and score the
	// optimizer's choice against the empirically cheapest plan,
	// feeding the running figure AccuracyReport returns. Expect
	// roughly 6x one query's cost per traced query.
	TrackAccuracy bool
	// AccuracyTolerance is the regret fraction under which a
	// mispredicted plan choice still counts as correct; <= 0 selects
	// the paper's 5% (§5.1 methodology).
	AccuracyTolerance float64
	// Metrics, when non-nil, registers this engine's cumulative metrics
	// in a shared registry instead of a private one. Every engine
	// metric carries a dataset label, so engines over different
	// datasets stay distinguishable in one exposition — the serving
	// layer opens all its engines against a single shared registry.
	Metrics *MetricsRegistry
	// Shards partitions the records into K hash-routed shards: queries
	// scatter to all shards in parallel and gather exactly recombined
	// results (summed supports, recomputed confidences, closure-merged
	// catalogs), ingested rows route by record id, and rebuilds
	// consolidate shard-by-shard while the engine keeps serving. 0 or 1
	// keeps the engine monolithic; answers are identical — rule for
	// rule, counter for counter — at every K.
	Shards int
}

// Query is one localized mining request.
type Query struct {
	// Range maps attribute names to the selected value labels,
	// defining the focal subset; attributes not listed span their
	// whole domain. Selections must align to the discretized values.
	Range map[string][]string
	// ItemAttributes lists the attributes allowed in rule bodies;
	// empty means all attributes.
	ItemAttributes []string
	// MinSupport is the minimum rule support as a fraction of the
	// focal subset, in (0,1].
	MinSupport float64
	// MinConfidence is the minimum rule confidence in [0,1].
	MinConfidence float64
	// MaxConsequent caps rule consequent length (0 = unlimited).
	MaxConsequent int
	// Plan forces a specific execution plan; Auto uses the optimizer.
	Plan Plan
	// Trace attaches a per-operator execution trace to the result
	// (Result.Trace). Tracing adds a few timestamp reads and one small
	// allocation per operator; untraced queries pay nothing.
	Trace bool
}

// Rule is one localized association rule with its interestingness
// measures. Counts are absolute within the focal subset.
type Rule struct {
	Antecedent []string // item labels "Attr=value"
	Consequent []string

	Support    float64 // fraction of the focal subset
	Confidence float64
	Lift       float64
	Cosine     float64
	Kulczynski float64

	SupportCount    int
	AntecedentCount int
	SubsetSize      int
}

// String renders the rule as "(A=a, B=b) => (C=c) [supp=75.0% conf=100.0%]".
func (r Rule) String() string {
	return fmt.Sprintf("(%s) => (%s)  [supp=%.1f%% conf=%.1f%%]",
		strings.Join(r.Antecedent, ", "), strings.Join(r.Consequent, ", "),
		100*r.Support, 100*r.Confidence)
}

// PlanEstimate is the optimizer's cost prediction for one plan.
type PlanEstimate struct {
	Plan       Plan
	Cost       float64 // model cost (nanosecond scale)
	Candidates float64 // estimated candidate itemsets
	Qualified  float64 // estimated itemsets reaching rule generation
}

// Stats reports what one query execution did, mirroring the executor's
// operator-level counters so callers can see where a query's work went.
type Stats struct {
	Plan            Plan
	SubsetSize      int
	MinSupportCount int

	// SEARCH / SUPPORTED-SEARCH.
	RNodesVisited   int // R-tree nodes touched
	REntriesChecked int // R-tree leaf entries tested
	Candidates      int
	Contained       int
	PartialOverlap  int

	// ELIMINATE.
	ItemFiltered  int // candidates dropped by the item-attribute filter
	SupportChecks int // record-level tidset∩D^Q counts performed
	Eliminated    int // candidates failing local minsupport
	Qualified     int // itemsets reaching rule generation

	// VERIFY.
	OracleCalls  int // antecedent/consequent support lookups
	OracleMisses int // lookups needing a fresh tidset intersection
	RulesEmitted int

	DurationNanos int64
}

// Result is the answer to a localized mining query.
type Result struct {
	Rules     []Rule
	Stats     Stats
	Estimates []PlanEstimate // present when the optimizer ran (Plan == Auto)
	Trace     *Trace         // present when the query requested tracing
}

// Engine is a ready-to-query COLARM instance over one dataset.
type Engine struct {
	eng           *core.Engine
	ds            *Dataset
	trackAccuracy bool
	opts          Options
	gen           uint64
}

// Open runs the offline preprocessing phase over the dataset and
// returns a query-ready engine.
func Open(ds *Dataset, opts Options) (*Engine, error) {
	if ds == nil || ds.rel == nil {
		return nil, fmt.Errorf("colarm: nil dataset")
	}
	packing := rtree.STRPacking
	if opts.Packing == Morton {
		packing = rtree.MortonPacking
	}
	mode, err := plans.ParseCheckMode(opts.CheckMode)
	if err != nil {
		return nil, err
	}
	layout, err := ParseLayout(opts.Layout)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ds.rel, core.Options{
		PrimarySupport: opts.PrimarySupport,
		Fanout:         opts.Fanout,
		Packing:        packing,
		Layout:         layout,
		CalibrateUnits: opts.Calibrate,
		CheckMode:      mode,
		Workers:        opts.Workers,
		AccuracyTol:    opts.AccuracyTolerance,
		Metrics:        opts.Metrics.registry(),
		Shards:         opts.Shards,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, ds: ds, trackAccuracy: opts.TrackAccuracy, opts: opts}, nil
}

// NumShards returns the engine's shard count (1 for a monolithic
// engine).
func (e *Engine) NumShards() int {
	if c := e.eng.Coll; c != nil {
		return c.NumShards()
	}
	return 1
}

// NumPartitions returns the number of prestored multidimensional
// itemset partitions (closed frequent itemsets).
func (e *Engine) NumPartitions() int { return e.eng.Index.NumMIPs() }

// Dataset returns the engine's dataset.
func (e *Engine) Dataset() *Dataset { return e.ds }

// buildQuery resolves the public query against the engine's dataset
// vocabulary into an executable plans.Query.
func (e *Engine) buildQuery(q Query) (*plans.Query, error) {
	return e.eng.BuildQuery(&core.QuerySpec{
		Range:         q.Range,
		ItemAttrs:     q.ItemAttributes,
		MinSupport:    q.MinSupport,
		MinConfidence: q.MinConfidence,
		MaxConsequent: q.MaxConsequent,
	})
}

// Mine answers a localized mining query.
func (e *Engine) Mine(q Query) (*Result, error) {
	return e.MineContext(context.Background(), q)
}

// MineContext is Mine under a context: a cancelled or timed-out context
// aborts the query inside the executing operators — including the ARM
// plan's from-scratch CHARM run — and returns ctx.Err() (context.Canceled
// or context.DeadlineExceeded) instead of running to completion. An
// aborted query produces no partial result.
func (e *Engine) MineContext(ctx context.Context, q Query) (*Result, error) {
	pq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	if q.Trace {
		pq.Trace = &obs.Trace{}
	}
	var out *Result
	if q.Plan != Auto {
		res, err := e.eng.MineWithContext(ctx, kindOf(q.Plan), pq)
		if err != nil {
			return nil, err
		}
		out = e.wrap(res)
	} else {
		res, ests, err := e.eng.MineContext(ctx, pq)
		if err != nil {
			return nil, err
		}
		out = e.wrap(res)
		for _, est := range ests {
			out.Estimates = append(out.Estimates, PlanEstimate{
				Plan:       planOf(est.Plan),
				Cost:       est.Total,
				Candidates: est.Candidates,
				Qualified:  est.Qualified,
			})
		}
	}
	out.Trace = newTrace(pq.Trace)
	if q.Trace && e.trackAccuracy {
		if _, err := e.eng.EvaluatePlans(pq); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Explain returns the optimizer's per-plan cost estimates for a query
// without executing it. The first estimate in the returned slice is not
// necessarily the chosen one; the minimum cost wins.
func (e *Engine) Explain(q Query) ([]PlanEstimate, error) {
	return e.ExplainContext(context.Background(), q)
}

// ExplainContext is Explain under a context; estimation is cheap, so
// the context is only consulted at entry (an expired deadline fails
// fast, matching MineContext).
func (e *Engine) ExplainContext(ctx context.Context, q Query) ([]PlanEstimate, error) {
	pq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	_, ests, err := e.eng.ExplainContext(ctx, pq)
	if err != nil {
		return nil, err
	}
	out := make([]PlanEstimate, 0, len(ests))
	for _, est := range ests {
		out = append(out, PlanEstimate{
			Plan:       planOf(est.Plan),
			Cost:       est.Total,
			Candidates: est.Candidates,
			Qualified:  est.Qualified,
		})
	}
	return out, nil
}

// MineQL parses and executes a query written in the paper's query
// language:
//
//	REPORT LOCALIZED ASSOCIATION RULES
//	FROM salary
//	WHERE RANGE Location = (Seattle), Gender = (F)
//	AND ITEM ATTRIBUTES Age, Salary
//	HAVING minsupport = 70% AND minconfidence = 95%;
//
// The FROM clause must name this engine's dataset. An optional
// "USING PLAN <name>" clause forces a plan.
func (e *Engine) MineQL(src string) (*Result, error) {
	return e.MineQLContext(context.Background(), src)
}

// MineQLContext is MineQL under a context (see MineContext).
func (e *Engine) MineQLContext(ctx context.Context, src string) (*Result, error) {
	q, err := e.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.MineContext(ctx, q)
}

// ParseQuery parses a query-language statement (see MineQL) into a
// Query without executing it, so callers can adjust fields the language
// does not cover — Trace, MaxConsequent — before mining.
func (e *Engine) ParseQuery(src string) (Query, error) {
	st, err := colarmql.Parse(src)
	if err != nil {
		return Query{}, err
	}
	if !strings.EqualFold(st.Dataset, e.ds.rel.Name) {
		return Query{}, fmt.Errorf("colarm: query targets dataset %q, engine holds %q", st.Dataset, e.ds.rel.Name)
	}
	q := Query{
		Range:          map[string][]string{},
		ItemAttributes: st.ItemAttrs,
		MinSupport:     st.MinSupport,
		MinConfidence:  st.MinConfidence,
	}
	for _, rc := range st.Range {
		q.Range[rc.Attr] = rc.Values
	}
	if st.Plan != "" {
		p, err := ParsePlan(st.Plan)
		if err != nil {
			return Query{}, err
		}
		q.Plan = p
	}
	return q, nil
}

func (e *Engine) wrap(res *plans.Result) *Result {
	out := &Result{
		Stats: Stats{
			Plan:            planOf(res.Stats.Plan),
			SubsetSize:      res.Stats.SubsetSize,
			MinSupportCount: res.Stats.MinCount,
			RNodesVisited:   res.Stats.RNodesVisited,
			REntriesChecked: res.Stats.REntriesChecked,
			Candidates:      res.Stats.Candidates,
			Contained:       res.Stats.Contained,
			PartialOverlap:  res.Stats.PartialOverlap,
			ItemFiltered:    res.Stats.ItemFiltered,
			SupportChecks:   res.Stats.SupportChecks,
			Eliminated:      res.Stats.Eliminated,
			Qualified:       res.Stats.Qualified,
			OracleCalls:     res.Stats.OracleCalls,
			OracleMisses:    res.Stats.OracleMisses,
			RulesEmitted:    res.Stats.RulesEmitted,
			DurationNanos:   res.Stats.Duration.Nanoseconds(),
		},
	}
	sp := e.eng.Index.Space
	for _, r := range res.Rules {
		out.Rules = append(out.Rules, wrapRule(r, sp.Labels(r.Antecedent), sp.Labels(r.Consequent)))
	}
	return out
}

func wrapRule(r rules.Rule, ant, cons []string) Rule {
	return Rule{
		Antecedent:      ant,
		Consequent:      cons,
		Support:         r.Support,
		Confidence:      r.Confidence,
		Lift:            r.Lift(),
		Cosine:          r.Cosine(),
		Kulczynski:      r.Kulczynski(),
		SupportCount:    r.SupportCount,
		AntecedentCount: r.AntecedentCount,
		SubsetSize:      r.SubsetSize,
	}
}
