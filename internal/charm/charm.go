// Package charm implements the CHARM algorithm of Zaki & Hsiao (SDM 2002)
// for mining closed frequent itemsets (CFIs) over vertical tidsets. COLARM
// runs CHARM once, offline, at the primary support threshold to populate
// the MIP-index (paper Section 3.2); the ARM baseline plan re-runs it at
// query time over the extracted focal subset.
package charm

import (
	"context"
	"fmt"
	"sort"

	"colarm/internal/bitset"
	"colarm/internal/itemset"
	"colarm/internal/relation"
)

// ClosedSet is one closed frequent itemset together with its tidset. The
// tidset always refers to record ids of the dataset the miner ran on.
type ClosedSet struct {
	Items   itemset.Set
	Tids    *bitset.Set
	Support int // == Tids.Count(), cached
}

// Result is the output of a mining run in a deterministic order (by
// itemset length, then by item ids).
type Result struct {
	Closed     []*ClosedSet
	NumRecords int
	MinCount   int
}

// Mine runs CHARM over the dataset at the given minimum support count
// (absolute number of records; use MineSupport for a fraction). The
// returned CFIs are deterministic for a given dataset.
func Mine(d *relation.Dataset, sp *itemset.Space, minCount int) (*Result, error) {
	tidsets := itemset.ItemTidsets(d, sp)
	return MineTidsets(tidsets, d.NumRecords(), minCount)
}

// MineSupport runs CHARM at a relative minimum support in (0, 1].
func MineSupport(d *relation.Dataset, sp *itemset.Space, minSupport float64) (*Result, error) {
	if minSupport <= 0 || minSupport > 1 {
		return nil, fmt.Errorf("charm: minimum support %v outside (0,1]", minSupport)
	}
	return Mine(d, sp, CountFor(minSupport, d.NumRecords()))
}

// CountFor converts a relative support threshold to the smallest absolute
// record count that satisfies it (ceiling, at least 1).
func CountFor(minSupport float64, numRecords int) int {
	c := int(minSupport * float64(numRecords))
	if float64(c) < minSupport*float64(numRecords) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// MineTidsets runs CHARM directly over per-item tidsets. Items whose
// tidset is nil are skipped, which lets callers mine a restricted item
// universe (the ARM plan restricts to the query's item attributes).
func MineTidsets(tidsets []*bitset.Set, numRecords, minCount int) (*Result, error) {
	return MineTidsetsContext(context.Background(), tidsets, numRecords, minCount)
}

// MineTidsetsContext is MineTidsets under a context: CHARM-EXTEND polls
// the context between branch explorations, so a cancelled or timed-out
// context aborts the (potentially exponential) enumeration promptly and
// returns ctx.Err() instead of a result.
func MineTidsetsContext(ctx context.Context, tidsets []*bitset.Set, numRecords, minCount int) (*Result, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("charm: minimum support count %d < 1", minCount)
	}
	m := &miner{minCount: minCount, byHash: make(map[uint64][]*ClosedSet), ctx: ctx, done: ctx.Done()}

	var roots []*node
	for it, tids := range tidsets {
		if tids == nil {
			continue
		}
		if tids.Count() >= minCount {
			roots = append(roots, &node{
				items: itemset.Set{itemset.Item(it)},
				tids:  tids.Clone(),
			})
		}
	}
	sortNodes(roots)
	if err := m.extend(roots); err != nil {
		return nil, err
	}

	sort.Slice(m.closed, func(i, j int) bool {
		a, b := m.closed[i].Items, m.closed[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return &Result{Closed: m.closed, NumRecords: numRecords, MinCount: minCount}, nil
}

type node struct {
	items itemset.Set
	tids  *bitset.Set
}

type miner struct {
	minCount int
	closed   []*ClosedSet
	byHash   map[uint64][]*ClosedSet

	ctx   context.Context
	done  <-chan struct{} // ctx.Done(), nil for Background
	polls int
}

// cancelled polls the miner's context every few probes; nil done (a
// Background context) keeps the enumeration on the zero-cost path.
func (m *miner) cancelled() error {
	if m.done == nil {
		return nil
	}
	m.polls++
	if m.polls&63 != 0 {
		return nil
	}
	select {
	case <-m.done:
		return m.ctx.Err()
	default:
		return nil
	}
}

// sortNodes orders candidates by ascending support, the CHARM heuristic
// that maximizes the chance of tidset containment (properties 1-3),
// breaking ties by item id for determinism.
func sortNodes(ns []*node) {
	sort.Slice(ns, func(i, j int) bool {
		si, sj := ns[i].tids.Count(), ns[j].tids.Count()
		if si != sj {
			return si < sj
		}
		return ns[i].items[0] < ns[j].items[0]
	})
}

// extend is CHARM-EXTEND: it explores the IT-tree rooted at each node,
// applying the four tidset properties to skip non-closed branches. It
// aborts with ctx.Err() once the miner's context is done.
func (m *miner) extend(nodes []*node) error {
	for i := 0; i < len(nodes); i++ {
		ni := nodes[i]
		if ni == nil {
			continue
		}
		if err := m.cancelled(); err != nil {
			return err
		}
		var children []*node
		for j := i + 1; j < len(nodes); j++ {
			nj := nodes[j]
			if nj == nil {
				continue
			}
			if err := m.cancelled(); err != nil {
				return err
			}
			inter := bitset.Intersect(ni.tids, nj.tids)
			supp := inter.Count()
			iSub := supp == ni.tids.Count() // t(Xi) ⊆ t(Xj) ?
			jSub := supp == nj.tids.Count() // t(Xj) ⊆ t(Xi) ?
			switch {
			case iSub && jSub:
				// Property 1: identical tidsets. Absorb Xj into Xi (and
				// into every child generated so far, whose closures all
				// include Xj's items) and drop Xj's branch.
				ni.items = ni.items.Union(nj.items)
				for _, c := range children {
					c.items = c.items.Union(nj.items)
				}
				nodes[j] = nil
			case iSub:
				// Property 2: t(Xi) ⊂ t(Xj). Xi's closure includes Xj's
				// items; Xj's own branch may still yield other CFIs.
				ni.items = ni.items.Union(nj.items)
				for _, c := range children {
					c.items = c.items.Union(nj.items)
				}
			case jSub:
				// Property 3: t(Xj) ⊂ t(Xi). Xj is not closed — its
				// closure includes Xi — so replace its branch by the
				// combined child under Xi.
				nodes[j] = nil
				if supp >= m.minCount {
					children = append(children, &node{items: ni.items.Union(nj.items), tids: inter})
				}
			default:
				// Property 4: incomparable tidsets; both survive and the
				// combination opens a new branch if frequent.
				if supp >= m.minCount {
					children = append(children, &node{items: ni.items.Union(nj.items), tids: inter})
				}
			}
		}
		if len(children) > 0 {
			sortNodes(children)
			if err := m.extend(children); err != nil {
				return err
			}
		}
		m.emit(ni)
	}
	return nil
}

// emit records ni as closed unless an already-emitted CFI subsumes it
// (same tidset, superset items). Children are emitted before their parent
// by the recursion order, so subsuming supersets are already present.
func (m *miner) emit(n *node) {
	h := n.tids.Hash()
	for _, c := range m.byHash[h] {
		if c.Support == n.tids.Count() && n.items.SubsetOf(c.Items) && c.Tids.Equal(n.tids) {
			return // subsumed
		}
	}
	cs := &ClosedSet{Items: n.items, Tids: n.tids, Support: n.tids.Count()}
	m.closed = append(m.closed, cs)
	m.byHash[h] = append(m.byHash[h], cs)
}
