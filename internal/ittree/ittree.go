// Package ittree implements the closed itemset-tidset tree of Zaki &
// Hsiao used as the second layer of the MIP-index (paper Section 3.3).
// It stores the closed frequent itemsets (CFIs) mined offline by CHARM,
// organized for the two online operations the mining plans need:
//
//   - exact lookup of a stored CFI;
//   - closure resolution of an arbitrary itemset X — the unique smallest
//     CFI containing X — which carries X's tidset and therefore its
//     support (global and, intersected with the focal subset bitmap,
//     local).
//
// Closure resolution is implemented with per-item inverted lists of CFI
// ids: the closure of X is the CFI of maximum support among those
// containing all of X's items.
//
// Two physical layouts exist behind one API. The default FlatLayout
// packs the CFIs into struct-of-arrays slabs (see flat.go): one item
// arena with per-CFI offsets, a dense support array, an inverted-list
// arena whose per-item runs are ordered by (support desc, id asc) so the
// closure scan can stop at the first containing CFI, and an
// open-addressed hash table for exact lookup that never materializes a
// string key. PointerLayout is the original per-CFI-struct layout with a
// map[string]int32 exact index; it is retained as the differential
// reference so tests can prove the slab layout answers identically.
package ittree

import (
	"fmt"
	"sort"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
)

// Layout selects the physical organization of a Tree.
type Layout int

const (
	// FlatLayout stores CFIs in contiguous struct-of-arrays slabs;
	// the production layout.
	FlatLayout Layout = iota
	// PointerLayout stores CFIs as pointer-chased structs with a
	// string-keyed exact-lookup map; the legacy/differential layout.
	PointerLayout
)

func (l Layout) String() string {
	switch l {
	case FlatLayout:
		return "flat"
	case PointerLayout:
		return "pointer"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Tree is an immutable store of closed frequent itemsets.
type Tree struct {
	layout     Layout
	sets       []*charm.ClosedSet // canonical CFIs in mining order (both layouts)
	numRecords int
	numItems   int
	maxLevel   int

	// PointerLayout internals.
	byItem [][]int32 // item id -> ascending CFI ids containing the item
	byKey  map[string]int32

	// FlatLayout slabs (see flat.go).
	itemArena []itemset.Item // all CFI items, concatenated in id order
	itemOff   []int32        // len Size()+1; CFI i items = itemArena[itemOff[i]:itemOff[i+1]]
	supports  []int32        // CFI i -> global support
	tids      []*bitset.Set  // CFI i -> tidset
	invArena  []int32        // per-item CFI-id runs, each ordered (support desc, id asc)
	invOff    []int32        // len numItems+1; item it run = invArena[invOff[it]:invOff[it+1]]
	htab      []int32        // open-addressed exact-lookup table over item hashes; -1 empty
}

// Build indexes the CFIs of a CHARM run under the default FlatLayout.
// numItems is the size of the item universe (Space.NumItems()).
func Build(res *charm.Result, numItems int) *Tree {
	return BuildLayout(res, numItems, FlatLayout)
}

// BuildLayout is Build with an explicit physical layout.
func BuildLayout(res *charm.Result, numItems int, layout Layout) *Tree {
	t := &Tree{
		layout:     layout,
		sets:       res.Closed,
		numRecords: res.NumRecords,
		numItems:   numItems,
	}
	for _, c := range res.Closed {
		if len(c.Items) > t.maxLevel {
			t.maxLevel = len(c.Items)
		}
	}
	if layout == PointerLayout {
		t.byItem = make([][]int32, numItems)
		t.byKey = make(map[string]int32, len(res.Closed))
		for id, c := range res.Closed {
			t.byKey[c.Items.Key()] = int32(id)
			for _, it := range c.Items {
				t.byItem[it] = append(t.byItem[it], int32(id))
			}
		}
		return t
	}
	t.buildFlat(res.Closed)
	return t
}

// Layout reports the tree's physical layout.
func (t *Tree) Layout() Layout { return t.layout }

// Size returns the number of stored CFIs.
func (t *Tree) Size() int { return len(t.sets) }

// NumRecords returns the record count of the dataset the tree was built
// over.
func (t *Tree) NumRecords() int { return t.numRecords }

// MaxLevel returns the length of the longest stored CFI — the depth of
// the IT-tree.
func (t *Tree) MaxLevel() int { return t.maxLevel }

// Set returns the CFI with the given id (its index in mining order).
func (t *Tree) Set(id int) *charm.ClosedSet { return t.sets[id] }

// Sets returns all stored CFIs in mining order. Callers must not mutate.
func (t *Tree) Sets() []*charm.ClosedSet { return t.sets }

// Support returns the global support count of the CFI with the given id.
// On the flat layout this is a dense-array read, the hot-path form the
// plans use instead of Set(id).Support.
func (t *Tree) Support(id int) int {
	if t.layout == FlatLayout {
		return int(t.supports[id])
	}
	return t.sets[id].Support
}

// Items returns the itemset of the CFI with the given id. On the flat
// layout the returned slice aliases the item arena; callers must not
// mutate it.
func (t *Tree) Items(id int) itemset.Set {
	if t.layout == FlatLayout {
		return t.itemArena[t.itemOff[id]:t.itemOff[id+1]]
	}
	return t.sets[id].Items
}

// Tids returns the tidset of the CFI with the given id. Callers must not
// mutate it.
func (t *Tree) Tids(id int) *bitset.Set {
	if t.layout == FlatLayout {
		return t.tids[id]
	}
	return t.sets[id].Tids
}

// Lookup finds the CFI whose itemset is exactly x.
func (t *Tree) Lookup(x itemset.Set) (*charm.ClosedSet, bool) {
	id, ok := t.LookupID(x)
	if !ok {
		return nil, false
	}
	return t.sets[id], true
}

// LookupID finds the id of the CFI whose itemset is exactly x. On the
// flat layout this probes the open-addressed hash table with collision
// verification against the item arena — no string key is built.
func (t *Tree) LookupID(x itemset.Set) (int, bool) {
	if t.layout == FlatLayout {
		return t.probeFlat(x)
	}
	if id, ok := t.byKey[x.Key()]; ok {
		return int(id), true
	}
	return 0, false
}

// Closure returns the closure of x: the unique CFI c with
// tidset(c) == tidset(x), which is the maximum-support CFI whose itemset
// contains x. The boolean is false when x is contained in no stored CFI,
// i.e. x was not frequent at the primary support threshold.
func (t *Tree) Closure(x itemset.Set) (*charm.ClosedSet, bool) {
	id, ok := t.ClosureID(x)
	if !ok {
		return nil, false
	}
	return t.sets[id], true
}

// ClosureID is Closure returning the CFI's id instead of the set; plans
// key their per-query local-support caches on the id.
func (t *Tree) ClosureID(x itemset.Set) (int, bool) {
	if len(x) == 0 {
		return 0, false
	}
	if t.layout == FlatLayout {
		return t.closureFlat(x)
	}
	// Exact hit short-circuits the list intersection.
	if id, ok := t.byKey[x.Key()]; ok {
		return int(id), true
	}
	// Scan the shortest inverted list for the max-support superset.
	shortest := -1
	for _, it := range x {
		l := t.byItem[it]
		if len(l) == 0 {
			return 0, false
		}
		if shortest < 0 || len(l) < len(t.byItem[x[shortest]]) {
			// remember position within x of the item with the shortest list
			shortest = indexOf(x, it)
		}
	}
	best := -1
	for _, id := range t.byItem[x[shortest]] {
		c := t.sets[id]
		if best >= 0 && c.Support <= t.sets[best].Support {
			continue
		}
		if x.SubsetOf(c.Items) {
			best = int(id)
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func indexOf(x itemset.Set, it itemset.Item) int {
	for i, v := range x {
		if v == it {
			return i
		}
	}
	return -1
}

// GlobalSupport returns the dataset-wide support count of an arbitrary
// itemset x, resolved through its closure, or -1 when x is not covered by
// the stored CFIs.
func (t *Tree) GlobalSupport(x itemset.Set) int {
	id, ok := t.ClosureID(x)
	if !ok {
		return -1
	}
	return t.Support(id)
}

// Validate checks internal invariants: closure of every stored itemset is
// itself, every exact lookup finds its own id, and the flat slabs agree
// with the canonical CFIs. Used by index-construction tests.
func (t *Tree) Validate() error {
	for id, c := range t.sets {
		got, ok := t.Closure(c.Items)
		if !ok {
			return fmt.Errorf("ittree: CFI %d not found via Closure", id)
		}
		if !got.Items.Equal(c.Items) {
			return fmt.Errorf("ittree: Closure(%v) = %v, want identity", c.Items, got.Items)
		}
		if lid, ok := t.LookupID(c.Items); !ok || lid != id {
			return fmt.Errorf("ittree: LookupID(%v) = (%d,%v), want (%d,true)", c.Items, lid, ok, id)
		}
		if t.Support(id) != c.Support {
			return fmt.Errorf("ittree: Support(%d) = %d, want %d", id, t.Support(id), c.Support)
		}
		if !t.Items(id).Equal(c.Items) {
			return fmt.Errorf("ittree: Items(%d) = %v, want %v", id, t.Items(id), c.Items)
		}
	}
	return nil
}

// ContainingIDs returns the ids of CFIs containing every item of x, in
// ascending id order. Used by diagnostics and tests.
func (t *Tree) ContainingIDs(x itemset.Set) []int32 {
	if len(x) == 0 {
		return nil
	}
	if t.layout == FlatLayout {
		return t.containingFlat(x)
	}
	cur := append([]int32(nil), t.byItem[x[0]]...)
	for _, it := range x[1:] {
		cur = intersectSorted(cur, t.byItem[it])
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func intersectSorted(a, b []int32) []int32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// LevelCounts returns, per itemset length, how many CFIs the tree stores
// (index 0 unused). The distribution of CFIs by length drives the paper's
// discussion of dataset character (symmetric for chess/PUMSB, bi-modal
// for mushroom).
func (t *Tree) LevelCounts() []int {
	counts := make([]int, t.maxLevel+1)
	for _, c := range t.sets {
		counts[len(c.Items)]++
	}
	return counts
}

// SortedBySupport returns CFI ids in descending global support order;
// diagnostic helper for the Simpson's-paradox experiment output.
func (t *Tree) SortedBySupport() []int32 {
	ids := make([]int32, len(t.sets))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := t.Support(int(ids[a])), t.Support(int(ids[b]))
		if sa != sb {
			return sa > sb
		}
		return ids[a] < ids[b]
	})
	return ids
}
