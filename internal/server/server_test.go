package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"colarm"
	"colarm/internal/obs"
)

func salaryEngine(t testing.TB, metrics *colarm.MetricsRegistry) *colarm.Engine {
	t.Helper()
	ds, err := colarm.Salary()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := colarm.Open(ds, colarm.Options{PrimarySupport: 0.18, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func newTestServer(t testing.TB, cfg Config) (*Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	reg.Register(salaryEngine(t, cfg.EngineMetrics))
	s := New(reg, cfg)
	t.Cleanup(s.Close)
	return s, reg
}

func postJSON(t testing.TB, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeMine(t testing.TB, w *httptest.ResponseRecorder) mineResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body: %s", w.Code, w.Body.String())
	}
	var resp mineResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

var seattleQuery = map[string]any{
	"dataset":        "salary",
	"range":          map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
	"itemAttributes": []string{"Age", "Salary"},
	"minSupport":     0.70,
	"minConfidence":  0.95,
}

func TestMineJSONAndCacheHit(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	first := decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery))
	if first.Cached {
		t.Fatal("first query must not be a cache hit")
	}
	if len(first.Rules) == 0 {
		t.Fatal("no rules mined")
	}
	if first.Stats.DurationNanos == 0 {
		t.Error("fresh execution should report a nonzero duration")
	}

	second := decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery))
	if !second.Cached {
		t.Fatal("identical query must be served from cache")
	}
	// Cache hits return the same rules and estimates...
	r1, _ := json.Marshal(first.Rules)
	r2, _ := json.Marshal(second.Rules)
	if !bytes.Equal(r1, r2) {
		t.Errorf("cached rules differ:\n%s\n%s", r1, r2)
	}
	e1, _ := json.Marshal(first.Estimates)
	e2, _ := json.Marshal(second.Estimates)
	if !bytes.Equal(e1, e2) {
		t.Errorf("cached estimates differ:\n%s\n%s", e1, e2)
	}
	// ...under an identity-only Stats: every operator counter zero.
	st := second.Stats
	if st.Plan != first.Stats.Plan || st.SubsetSize != first.Stats.SubsetSize ||
		st.MinSupportCount != first.Stats.MinSupportCount {
		t.Errorf("cache hit lost execution identity: %+v", st)
	}
	for name, v := range map[string]int{
		"rNodesVisited": st.RNodesVisited, "rEntriesChecked": st.REntriesChecked,
		"candidates": st.Candidates, "supportChecks": st.SupportChecks,
		"eliminated": st.Eliminated, "qualified": st.Qualified,
		"rulesEmitted": st.RulesEmitted,
	} {
		if v != 0 {
			t.Errorf("cache hit %s = %d, want 0", name, v)
		}
	}
	if st.DurationNanos != 0 {
		t.Errorf("cache hit durationNanos = %d, want 0", st.DurationNanos)
	}
	if got := s.cache.hits.Value(); got != 1 {
		t.Errorf("cache hits counter = %d, want 1", got)
	}
	if got := s.cache.misses.Value(); got != 1 {
		t.Errorf("cache misses counter = %d, want 1", got)
	}
}

// TestCanonicalOrderSharesCache is the latent-bug regression: queries
// differing only in item-attribute (or range-value) order must share a
// cache entry.
func TestCanonicalOrderSharesCache(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery))
	reordered := map[string]any{
		"dataset":        "salary",
		"range":          map[string][]string{"Gender": {"F"}, "Location": {"Seattle"}},
		"itemAttributes": []string{"Salary", "Age"}, // reversed
		"minSupport":     0.70,
		"minConfidence":  0.95,
	}
	resp := decodeMine(t, postJSON(t, h, "/v1/mine", reordered))
	if !resp.Cached {
		t.Error("reordered-but-equivalent query missed the cache")
	}
}

func TestQLBodyAndRouting(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	ql := `REPORT LOCALIZED ASSOCIATION RULES FROM salary
		WHERE RANGE Location = (Seattle), Gender = (F)
		AND ITEM ATTRIBUTES Age, Salary
		HAVING minsupport = 70% AND minconfidence = 95%;`

	// Raw text/plain QL body.
	req := httptest.NewRequest("POST", "/v1/mine", strings.NewReader(ql))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	resp := decodeMine(t, w)
	if resp.Dataset != "salary" {
		t.Errorf("dataset = %q, want salary (routed by FROM clause)", resp.Dataset)
	}
	if len(resp.Rules) == 0 {
		t.Error("QL query found no rules")
	}

	// The equivalent JSON-embedded QL shares the cache with the raw form.
	resp2 := decodeMine(t, postJSON(t, h, "/v1/mine", map[string]any{"ql": ql}))
	if !resp2.Cached {
		t.Error("same QL via JSON body missed the cache")
	}

	// Dataset field disagreeing with the FROM clause is a 400.
	w = postJSON(t, h, "/v1/mine", map[string]any{"dataset": "other", "ql": ql})
	if w.Code != http.StatusBadRequest {
		t.Errorf("disagreeing dataset: status = %d, want 400", w.Code)
	}
}

func TestErrorStatuses(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown dataset", map[string]any{"dataset": "nope", "minSupport": 0.5, "minConfidence": 0.5}, http.StatusNotFound},
		{"bad threshold", map[string]any{"dataset": "salary", "minSupport": 0.0, "minConfidence": 0.5}, http.StatusBadRequest},
		{"unknown range attribute", map[string]any{"dataset": "salary", "range": map[string][]string{"Nope": {"x"}}, "minSupport": 0.5, "minConfidence": 0.5}, http.StatusBadRequest},
		{"unknown range value", map[string]any{"dataset": "salary", "range": map[string][]string{"Location": {"Atlantis"}}, "minSupport": 0.5, "minConfidence": 0.5}, http.StatusBadRequest},
		{"unknown plan", map[string]any{"dataset": "salary", "minSupport": 0.5, "minConfidence": 0.5, "plan": "X-Y-Z"}, http.StatusBadRequest},
		{"unknown item attribute", map[string]any{"dataset": "salary", "itemAttributes": []string{"Nope"}, "minSupport": 0.5, "minConfidence": 0.5}, http.StatusBadRequest},
		{"bad timeout", map[string]any{"dataset": "salary", "minSupport": 0.5, "minConfidence": 0.5, "timeout": "soon"}, http.StatusBadRequest},
		{"unknown JSON field", map[string]any{"dataset": "salary", "minSupport": 0.5, "minConfidence": 0.5, "bogus": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := postJSON(t, h, "/v1/mine", tc.body)
		if w.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (body: %s)", tc.name, w.Code, tc.want, w.Body.String())
		}
		var e errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error.Code == "" {
			t.Errorf("%s: error body not JSON with message: %s", tc.name, w.Body.String())
		}
	}

	// Empty body.
	req := httptest.NewRequest("POST", "/v1/mine", strings.NewReader("  "))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("empty body: status = %d, want 400", w.Code)
	}
}

func TestDeadlineExceededIs504(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	body := map[string]any{}
	for k, v := range seattleQuery {
		body[k] = v
	}
	body["timeout"] = "1ns"
	w := postJSON(t, h, "/v1/mine", body)
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504 (body: %s)", w.Code, w.Body.String())
	}
}

func TestTraceBypassesCache(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	traced := map[string]any{}
	for k, v := range seattleQuery {
		traced[k] = v
	}
	traced["trace"] = true
	resp := decodeMine(t, postJSON(t, h, "/v1/mine", traced))
	if resp.Trace == "" {
		t.Error("traced query returned no trace tree")
	}
	if resp.Cached {
		t.Error("traced query must not hit the cache")
	}
	resp = decodeMine(t, postJSON(t, h, "/v1/mine", traced))
	if resp.Cached {
		t.Error("traced query must not fill the cache either")
	}
	if s.uncached.Value() < 2 {
		t.Errorf("uncacheable counter = %d, want >= 2", s.uncached.Value())
	}

	// noCache likewise skips lookup and fill.
	noCache := map[string]any{}
	for k, v := range seattleQuery {
		noCache[k] = v
	}
	noCache["noCache"] = true
	decodeMine(t, postJSON(t, h, "/v1/mine", noCache))
	if resp := decodeMine(t, postJSON(t, h, "/v1/mine", noCache)); resp.Cached {
		t.Error("noCache query hit the cache")
	}
}

func TestGenerationBumpInvalidates(t *testing.T) {
	cfg := Config{}
	s, reg := newTestServer(t, cfg)
	h := s.Handler()

	decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery))
	if resp := decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery)); !resp.Cached {
		t.Fatal("warm-up: second query should hit")
	}

	// Re-register (a reload): the generation bump retires cached keys.
	if gen := reg.Register(salaryEngine(t, nil)); gen != 2 {
		t.Fatalf("re-register generation = %d, want 2", gen)
	}
	if resp := decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery)); resp.Cached {
		t.Error("query after engine reload served a stale generation")
	}
}

func TestCacheDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{CacheEntries: -1})
	h := s.Handler()
	if s.cache != nil {
		t.Fatal("CacheEntries < 0 should disable the cache")
	}
	decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery))
	if resp := decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery)); resp.Cached {
		t.Error("cache disabled but query reported a hit")
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	w := postJSON(t, h, "/v1/explain", seattleQuery)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body: %s", w.Code, w.Body.String())
	}
	var resp explainResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Estimates) != 6 {
		t.Errorf("estimates = %d, want 6", len(resp.Estimates))
	}
	w = postJSON(t, h, "/v1/explain", map[string]any{"dataset": "nope", "minSupport": 0.5, "minConfidence": 0.5})
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown dataset: status = %d, want 404", w.Code)
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	_ = reg
	h := s.Handler()
	req := httptest.NewRequest("GET", "/v1/datasets", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Datasets) != 1 || resp.Datasets[0].Name != "salary" {
		t.Fatalf("datasets = %+v", resp.Datasets)
	}
	d := resp.Datasets[0]
	if d.Records == 0 || len(d.Attributes) == 0 || d.Partitions == 0 || d.Generation != 1 {
		t.Errorf("dataset info incomplete: %+v", d)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	metrics := colarm.NewMetricsRegistry()
	s, _ := newTestServer(t, Config{EngineMetrics: metrics})
	h := s.Handler()

	decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery))
	decodeMine(t, postJSON(t, h, "/v1/mine", seattleQuery))

	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"colarm_cache_hits_total 1",
		"colarm_cache_misses_total 1",
		"colarm_http_requests_total",
		"colarm_admission_admitted_total 1",
		"colarm_queries_total", // engine-side metric from the shared registry
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestOverloadReturns429 fills every slot and the whole queue, then
// checks the next request is turned away immediately.
func TestOverloadReturns429(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, QueueWait: 50 * time.Millisecond})
	h := s.Handler()

	// Occupy the only slot from outside a request.
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release()

	body := map[string]any{}
	for k, v := range seattleQuery {
		body[k] = v
	}
	body["noCache"] = true
	w := postJSON(t, h, "/v1/mine", body)
	if w.Code != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429 (body: %s)", w.Code, w.Body.String())
	}
	if s.adm.rejected.Value() == 0 {
		t.Error("rejected counter not incremented")
	}
}

func TestAdmissionQueueing(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(1, 4, time.Second, reg)

	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A queued waiter gets the slot when it frees.
	got := make(chan error, 1)
	go func() { got <- a.acquire(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	a.release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.release()
	if a.queued.Value() != 1 {
		t.Errorf("queued counter = %d, want 1", a.queued.Value())
	}

	// Queue-wait expiry is errOverloaded, not a context error.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := newAdmission(1, 4, 20*time.Millisecond, reg)
	if err := b.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.acquire(context.Background()); !errors.Is(err, errOverloaded) {
		t.Errorf("queue-wait expiry = %v, want errOverloaded", err)
	}
	// The caller's own cancellation propagates as ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.acquire(ctx) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled acquire = %v, want context.Canceled", err)
	}
	a.release()
	b.release()
}

func TestAdmissionConcurrentBound(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(2, 64, time.Second, reg)
	var (
		mu      sync.Mutex
		cur, mx int
		wg      sync.WaitGroup
	)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			cur++
			if cur > mx {
				mx = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			a.release()
		}()
	}
	wg.Wait()
	if mx > 2 {
		t.Errorf("max concurrency = %d, want <= 2", mx)
	}
}

func TestRegistryUnknown(t *testing.T) {
	reg := NewRegistry()
	if _, _, err := reg.Get("nope"); err == nil {
		t.Error("unknown dataset must error")
	}
}

func mineResult(rules int) *colarm.Result {
	res := &colarm.Result{
		Stats: colarm.Stats{Plan: colarm.SEV, SubsetSize: 7, MinSupportCount: 3, SupportChecks: 99},
	}
	for i := 0; i < rules; i++ {
		res.Rules = append(res.Rules, colarm.Rule{
			Antecedent: []string{fmt.Sprintf("A=%d", i)},
			Consequent: []string{"B=1"},
			Support:    0.5,
		})
	}
	return res
}

func TestCacheCopiesAndCounters(t *testing.T) {
	c := newResultCache(64, 0, obs.NewRegistry())
	c.put("k", mineResult(2))

	got := c.get("k")
	if got == nil {
		t.Fatal("miss after put")
	}
	if got.Stats.SupportChecks != 0 {
		t.Errorf("cached stats kept operator counter %d", got.Stats.SupportChecks)
	}
	if got.Stats.Plan != colarm.SEV || got.Stats.SubsetSize != 7 || got.Stats.MinSupportCount != 3 {
		t.Errorf("cache lost execution identity: %+v", got.Stats)
	}
	// Mutating a hit must not corrupt the stored copy.
	got.Rules[0].Antecedent[0] = "corrupted"
	again := c.get("k")
	if again.Rules[0].Antecedent[0] != "A=0" {
		t.Error("cache handed out shared rule storage")
	}
	if c.hits.Value() != 2 || c.misses.Value() != 0 {
		t.Errorf("hits=%d misses=%d, want 2/0", c.hits.Value(), c.misses.Value())
	}
	if c.get("absent") != nil {
		t.Error("absent key returned a result")
	}
	if c.misses.Value() != 1 {
		t.Errorf("misses = %d, want 1", c.misses.Value())
	}
}

func TestCacheTTL(t *testing.T) {
	c := newResultCache(64, 10*time.Millisecond, obs.NewRegistry())
	c.put("k", mineResult(1))
	if c.get("k") == nil {
		t.Fatal("entry expired immediately")
	}
	time.Sleep(20 * time.Millisecond)
	if c.get("k") != nil {
		t.Error("entry outlived its TTL")
	}
	if c.evictions.Value() != 1 {
		t.Errorf("evictions = %d, want 1 (TTL drop)", c.evictions.Value())
	}
	if c.len() != 0 {
		t.Errorf("len = %d after TTL eviction, want 0", c.len())
	}
}

func TestCacheEviction(t *testing.T) {
	// Capacity 16 = one entry per shard: a second entry in any shard
	// evicts that shard's older one.
	c := newResultCache(16, 0, obs.NewRegistry())
	for i := 0; i < 64; i++ {
		c.put(fmt.Sprintf("key-%d", i), mineResult(1))
	}
	if c.len() > 16 {
		t.Errorf("len = %d, want <= 16", c.len())
	}
	if c.evictions.Value() != int64(64-c.len()) {
		t.Errorf("evictions = %d, want %d", c.evictions.Value(), 64-c.len())
	}

	// LRU order: touch a key, add a colliding one, the touched key stays.
	d := newResultCache(cacheShardCount*2, 0, obs.NewRegistry())
	shard0 := []string{}
	for i := 0; len(shard0) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if d.shard(k) == &d.shards[0] {
			shard0 = append(shard0, k)
		}
	}
	d.put(shard0[0], mineResult(1))
	d.put(shard0[1], mineResult(1))
	d.get(shard0[0]) // now most recently used
	d.put(shard0[2], mineResult(1))
	if d.get(shard0[0]) == nil {
		t.Error("recently used entry was evicted")
	}
	if d.get(shard0[1]) != nil {
		t.Error("least recently used entry survived eviction")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(128, time.Minute, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", i%32)
				if i%3 == 0 {
					c.put(k, mineResult(2))
				} else if res := c.get(k); res != nil {
					res.Rules[0].Antecedent[0] = "scribble" // must not race with the stored copy
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentMineRequests(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInFlight: 4, MaxQueue: 64, QueueWait: 10 * time.Second})
	h := s.Handler()
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := map[string]any{
				"dataset":       "salary",
				"range":         map[string][]string{"Location": {"Seattle"}},
				"minSupport":    0.5,
				"minConfidence": 0.5,
				"noCache":       g%2 == 0, // mix cached and uncached paths
			}
			w := postJSON(t, h, "/v1/mine", body)
			if w.Code != http.StatusOK {
				t.Errorf("status = %d: %s", w.Code, w.Body.String())
			}
		}(g)
	}
	wg.Wait()
}
