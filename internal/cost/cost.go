// Package cost implements COLARM's cost model and cost-based optimizer
// (paper Section 4, Equations 1–6, and the plan-selection study of
// Section 5.1). For each of the six mining plans the model produces a
// constant-time cost estimate from
//
//   - precomputed index statistics: per-level R-tree node counts and
//     average extents (Table 3's N_j and DP_{j,i}avg), the global
//     support distribution of the stored MIPs, per-attribute CFI
//     participation fractions, and the average CFI length;
//   - the query parameters: the focal subset's per-dimension extents
//     and size (DQ_i_avg and |D^Q|), minsupport and minconfidence;
//   - machine-calibrated unit costs for the primitive operations the
//     operators are built from (tidset word operations, box relation
//     tests, hash lookups, rule-generation steps).
//
// The optimizer simply evaluates the six closed-form estimates and picks
// the argmin — the paper's COLARM plan selection.
package cost

import (
	"math"
	"time"

	"colarm/internal/bitset"
	"colarm/internal/itemset"
	"colarm/internal/mip"
	"colarm/internal/plans"
	"colarm/internal/rtree"
)

// Units are the calibrated primitive operation costs, in nanoseconds.
type Units struct {
	// WordOp is the cost of one 64-bit word step of a tidset
	// intersection (the unit of ELIMINATE/VERIFY record-level checks).
	WordOp float64
	// BoxRel is the per-dimension cost of classifying one box against
	// the query region (the unit of R-tree traversal).
	BoxRel float64
	// IDProbe is the cost of probing one record id against a tidset
	// (the unit of the ScanCheck record-level checks).
	IDProbe float64
	// MapOp is the cost of one hash-map probe (closure caches, dedup).
	MapOp float64
	// GenOp is the bookkeeping cost of one rule-generation step.
	GenOp float64
}

// DefaultUnits are conservative defaults used when calibration is
// skipped; they reflect typical modern hardware ratios for the flat
// slab layout's primitives: packed-arena box classification and
// open-addressed integer hashing, which are markedly cheaper than the
// pointer layout's Box views and string-keyed maps they replaced.
func DefaultUnits() Units {
	return Units{WordOp: 0.6, BoxRel: 2.0, IDProbe: 1.5, MapOp: 8, GenOp: 16}
}

// MeasureUnits micro-benchmarks the primitive operations on this
// machine. m is the dataset's record count (tidset width); dims the
// dimensionality.
func MeasureUnits(m, dims int) Units {
	if m < 64 {
		m = 64
	}
	if dims < 1 {
		dims = 1
	}
	u := Units{}

	// WordOp and IDProbe are defined against the dense layout — the
	// model's operator estimates multiply them by dense word counts —
	// so the micro-benchmark sets must be bitmap-backed. Under the
	// hybrid policy these small strided sets would pack into array
	// containers, whose element-at-a-time kernels make a per-word
	// normalization meaningless.
	prevHybrid := bitset.SetHybrid(false)
	defer bitset.SetHybrid(prevHybrid)

	// Tidset word ops.
	a, b := bitset.New(m), bitset.New(m)
	for i := 0; i < m; i += 3 {
		a.Add(i)
	}
	for i := 0; i < m; i += 2 {
		b.Add(i)
	}
	words := float64((m + 63) / 64)
	const wreps = 2000
	start := time.Now()
	sink := 0
	for i := 0; i < wreps; i++ {
		sink += bitset.AndCount(a, b)
	}
	u.WordOp = float64(time.Since(start).Nanoseconds()) / (wreps * words)

	// Per-record-id probes.
	ids := a.IDs()
	if len(ids) == 0 {
		ids = []int{0}
	}
	start = time.Now()
	const preps = 300
	for i := 0; i < preps; i++ {
		for _, id := range ids {
			if b.Contains(id) {
				sink++
			}
		}
	}
	u.IDProbe = float64(time.Since(start).Nanoseconds()) / float64(preps*len(ids))

	// Box relation tests, against the packed-arena form the flat
	// R-tree search actually classifies (Lo run then Hi run per box).
	cards := make([]int, dims)
	for d := range cards {
		cards[d] = 8
	}
	reg := itemset.NewRegion(cards)
	_ = reg.Restrict(0, []int{1, 2, 3})
	arena := make([]int32, 2*dims)
	for d := 0; d < dims; d++ {
		arena[d], arena[dims+d] = 1, 4
	}
	const breps = 20000
	start = time.Now()
	rel := itemset.Disjoint
	for i := 0; i < breps; i++ {
		rel = reg.RelationPacked(arena, 0, dims)
	}
	u.BoxRel = float64(time.Since(start).Nanoseconds()) / (breps * float64(dims))
	_ = rel

	// Hash probes, against an open-addressed integer table mirroring
	// the flat IT-tree's exact-lookup hash (the layout replaced the
	// string-keyed map the pointer index used for closure caches and
	// dedup, so the unit tracks the cheaper primitive).
	const tbits = 11
	table := make([]uint64, 1<<tbits)
	for i := uint64(1); i <= 1024; i++ {
		h := i * 0x9e3779b97f4a7c15
		s := h >> (64 - tbits)
		for table[s] != 0 {
			s = (s + 1) & (1<<tbits - 1)
		}
		table[s] = i
	}
	const mreps = 100000
	start = time.Now()
	for i := 0; i < mreps; i++ {
		k := uint64(i&1023) + 1
		s := (k * 0x9e3779b97f4a7c15) >> (64 - tbits)
		for table[s] != 0 && table[s] != k {
			s = (s + 1) & (1<<tbits - 1)
		}
		sink += int(table[s])
	}
	u.MapOp = float64(time.Since(start).Nanoseconds()) / mreps

	// Rule-generation bookkeeping: approximate with slice+map work.
	u.GenOp = u.MapOp * 2
	if sink == -1 {
		panic("unreachable")
	}
	return u
}

// Estimate is one plan's cost prediction with its term breakdown, so the
// CLI can explain optimizer decisions.
type Estimate struct {
	Plan  plans.Kind
	Total float64 // nanoseconds (model scale)

	Search    float64 // SEARCH / SUPPORTED-SEARCH / SELECT term
	Eliminate float64 // record-level support checking term
	Verify    float64 // rule generation + confidence term
	Mine      float64 // ARM's from-scratch mining term

	// Intermediate cardinality estimates (paper Lemmas 4.1–4.2).
	Candidates float64 // |{I^Q_S}| or |{I^Q_SS}|
	Contained  float64 // estimated contained MIPs
	Qualified  float64 // |{I^Q_E}|
}

// EstimateTerm is one named cost component of an estimate, labeled with
// the operator the query trace records for it, so predicted and
// measured per-operator costs line up.
type EstimateTerm struct {
	Operator string
	Cost     float64
}

// Terms returns the estimate's cost components in pipeline order,
// labeled with the trace's operator names. Zero-cost components are
// included so the breakdown is positionally stable per plan.
func (e Estimate) Terms() []EstimateTerm {
	if e.Plan == plans.ARM {
		return []EstimateTerm{
			{Operator: "SELECT", Cost: e.Search},
			{Operator: "ARM", Cost: e.Mine},
			{Operator: "VERIFY", Cost: e.Verify},
		}
	}
	search := "SEARCH"
	if e.Plan == plans.SSEV || e.Plan == plans.SSVS || e.Plan == plans.SSEUV {
		search = "SUPPORTED-SEARCH"
	}
	return []EstimateTerm{
		{Operator: search, Cost: e.Search},
		{Operator: "ELIMINATE", Cost: e.Eliminate},
		{Operator: "VERIFY", Cost: e.Verify},
	}
}

// Model evaluates the six plan estimates for queries against one index.
type Model struct {
	Idx *mip.Index
	U   Units
	// Mode mirrors the executor's record-level check implementation so
	// the estimates track what will actually run.
	Mode plans.CheckMode
	// Shards is the engine's shard count K. Values above 1 add the
	// scatter-gather overhead terms — per-query fan-out setup and
	// per-check dispatch bookkeeping — to every estimate; at K <= 1 the
	// estimates are exactly the monolithic model's.
	Shards int

	// attrFrac[a] is the fraction of stored CFIs containing an item of
	// attribute a — the selectivity of the item-attribute filter.
	attrFrac []float64
	// avgLen is the mean stored CFI length (C_I in Lemma 4.3).
	avgLen float64
}

// NewModel precomputes the model's index-side statistics. units may be
// zero-valued to select DefaultUnits.
func NewModel(idx *mip.Index, units Units) *Model {
	if units == (Units{}) {
		units = DefaultUnits()
	}
	m := &Model{Idx: idx, U: units}
	n := idx.Space.NumAttrs()
	m.attrFrac = make([]float64, n)
	total := idx.ITTree.Size()
	if total > 0 {
		counts := make([]int, n)
		sumLen := 0
		for id := 0; id < total; id++ {
			items := idx.ITTree.Items(id)
			sumLen += len(items)
			seen := make(map[int]bool, len(items))
			for _, it := range items {
				a := idx.Space.AttrOf(it)
				if !seen[a] {
					seen[a] = true
					counts[a]++
				}
			}
		}
		for a := 0; a < n; a++ {
			m.attrFrac[a] = float64(counts[a]) / float64(total)
		}
		m.avgLen = float64(sumLen) / float64(total)
	}
	return m
}

// queryShape holds the per-query quantities shared by all six estimates,
// including the results of two constant-size probes (see probe): a
// sample of stored MIPs classified against the focal subset, and a
// sample of focal-subset records scanned for locally frequent items.
// The probes cost microseconds and replace pure-statistics guesses that
// cannot see subset homogeneity — focal subsets are selected by
// attribute values and are therefore far from uniform samples.
type queryShape struct {
	dqSize   int
	dqFrac   float64 // |D^Q| / m
	minCount int
	dqExt    []float64 // DQ_i_avg per dimension
	maskKeep float64   // P(candidate passes the item filter unchanged)
	words    float64   // tidset width in 64-bit words

	// MIP-sample fractions (of all stored MIPs).
	overlapFrac     float64 // box overlaps the region
	overlapSSFrac   float64 // overlaps and global support >= minCount
	containedFrac   float64 // box contained in the region
	containedSSFrac float64 // contained and global support >= minCount
	qualFrac        float64 // locally frequent (implies overlapping)

	// Record-sample results.
	freqItems    float64 // estimated count of locally frequent items
	pairDens     float64 // fraction of frequent-item pairs locally frequent
	sampleRows   int     // records sampled from D^Q
	distinctRows int     // distinct rows among the sampled records
}

func (mo *Model) shape(q *plans.Query) queryShape {
	idx := mo.Idx
	m := idx.Dataset.NumRecords()
	dq := idx.SubsetBitmap(q.Region)
	size := dq.Count()
	s := queryShape{
		dqSize: size,
		dqFrac: float64(size) / float64(m),
		dqExt:  make([]float64, q.Region.Dims()),
		words:  float64((m + 63) / 64),
	}
	s.minCount = minCountFor(q.MinSupport, size)
	for d := 0; d < q.Region.Dims(); d++ {
		s.dqExt[d] = q.Region.AvgExtent(d)
	}
	// Item-filter selectivity: a candidate survives unprojected when it
	// has no item in any excluded attribute (independence assumption).
	s.maskKeep = 1
	if q.ItemAttrs != nil {
		for a, keep := range q.ItemAttrs {
			if !keep {
				s.maskKeep *= 1 - mo.attrFrac[a]
			}
		}
	}
	mo.probe(q, dq, &s)
	return s
}

// probeMIPs and probeRecords bound the constant-size query-time probes.
const (
	probeMIPs    = 128
	probeRecords = 48
)

// probe runs the two query-time samples populating the shape.
func (mo *Model) probe(q *plans.Query, dq *bitset.Set, s *queryShape) {
	idx := mo.Idx
	n := idx.ITTree.Size()
	if n == 0 || s.dqSize == 0 {
		return
	}
	// Sample stored MIPs with a fixed stride for determinism.
	step := n / probeMIPs
	if step < 1 {
		step = 1
	}
	var sampled, overlap, overlapSS, contained, containedSS, qual int
	for id := 0; id < n; id += step {
		sampled++
		rel := q.Region.Relation(idx.Boxes[id])
		if rel == itemset.Disjoint {
			continue
		}
		passSS := idx.ITTree.Support(id) >= s.minCount
		overlap++
		if passSS {
			overlapSS++
		}
		if rel == itemset.Contained {
			contained++
			if passSS {
				containedSS++
			}
		}
		if bitset.AndCount(idx.ITTree.Tids(id), dq) >= s.minCount {
			qual++
		}
	}
	fs := float64(sampled)
	s.overlapFrac = float64(overlap) / fs
	s.overlapSSFrac = float64(overlapSS) / fs
	s.containedFrac = float64(contained) / fs
	s.containedSSFrac = float64(containedSS) / fs
	s.qualFrac = float64(qual) / fs

	// Sample focal-subset records and count locally frequent items and
	// item pairs (restricted to item attributes). This feeds the ARM
	// plan's mining-lattice estimate.
	ids := sampleIDs(dq, probeRecords)
	if len(ids) == 0 {
		return
	}
	d := idx.Dataset
	nAttrs := d.NumAttrs()
	mask := q.ItemAttrs
	counts := make(map[int32]int)
	rows := make([][]int32, 0, len(ids))
	rowKeys := make(map[string]bool, len(ids))
	var keyBuf []byte
	for _, r := range ids {
		row := make([]int32, 0, nAttrs)
		keyBuf = keyBuf[:0]
		for a := 0; a < nAttrs; a++ {
			if mask != nil && !mask[a] {
				continue
			}
			it := int32(idx.Space.ItemOf(a, d.Value(r, a)))
			counts[it]++
			row = append(row, it)
			keyBuf = append(keyBuf, byte(it), byte(it>>8), byte(it>>16))
		}
		rowKeys[string(keyBuf)] = true
		rows = append(rows, row)
	}
	s.sampleRows = len(ids)
	s.distinctRows = len(rowKeys)
	need := int(math.Ceil(q.MinSupport * float64(len(ids))))
	if need < 1 {
		need = 1
	}
	freq := make(map[int32]bool)
	for it, c := range counts {
		if c >= need {
			freq[it] = true
		}
	}
	s.freqItems = float64(len(freq))
	if len(freq) >= 2 {
		// Pair co-occurrence among frequent items.
		pairCounts := make(map[int64]int)
		for _, row := range rows {
			fr := row[:0:0]
			for _, it := range row {
				if freq[it] {
					fr = append(fr, it)
				}
			}
			for i := 0; i < len(fr); i++ {
				for j := i + 1; j < len(fr); j++ {
					pairCounts[int64(fr[i])<<32|int64(fr[j])]++
				}
			}
		}
		freqPairs := 0
		for _, c := range pairCounts {
			if c >= need {
				freqPairs++
			}
		}
		total := float64(len(freq)) * float64(len(freq)-1) / 2
		s.pairDens = float64(freqPairs) / total
	}
}

// sampleIDs draws up to k evenly spaced record ids from the bitmap.
func sampleIDs(dq *bitset.Set, k int) []int {
	total := dq.Count()
	if total == 0 {
		return nil
	}
	step := total / k
	if step < 1 {
		step = 1
	}
	out := make([]int, 0, k+1)
	i := 0
	dq.ForEach(func(id int) bool {
		if i%step == 0 {
			out = append(out, id)
		}
		i++
		return len(out) <= k
	})
	return out
}

func minCountFor(minSupport float64, size int) int {
	c := int(minSupport * float64(size))
	if float64(c) < minSupport*float64(size) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// searchCost returns the expected R-tree traversal cost (Lemma 4.1 /
// Equation 3): per level, the expected number of visited nodes times
// the per-node classification work, with the supported filter's
// selectivity estimated from the per-level support distributions.
func (mo *Model) searchCost(s queryShape, supported bool) (cost float64) {
	idx := mo.Idx
	dims := idx.Space.NumAttrs()
	fanout := float64(idx.RTree.Fanout())
	for _, ls := range idx.LevelStats {
		// Expected fraction of level nodes whose box intersects D^Q:
		// Π_k min(1, DP_{j,k}avg + DQ_k_avg)  (Theodoridis–Sellis).
		p := 1.0
		for d := 0; d < dims; d++ {
			p *= math.Min(1, ls.AvgExtent[d]+s.dqExt[d])
		}
		visited := float64(ls.Nodes) * p
		if supported {
			visited *= rtree.FractionAtLeast(ls.Supports, s.minCount)
		}
		// Each visited node classifies its children boxes.
		cost += visited * fanout * float64(dims) * mo.U.BoxRel
	}
	return cost
}

// supportCheckCost is the cost of one record-level support check under
// the executor's check mode: a |D^Q|-record scan (the paper's COST(E)
// unit), a whole-bitmap intersection, or the cheaper of the two when
// the executor decides per query.
func (mo *Model) supportCheckCost(s queryShape) float64 {
	scanCost := float64(s.dqSize) * mo.U.IDProbe
	bitmapCost := s.words * mo.U.WordOp
	switch mo.Mode {
	case plans.ScanCheck:
		return scanCost
	case plans.BitmapCheck:
		return bitmapCost
	default:
		// AutoCheck mirrors the executor's threshold (|D^Q| <= m/32).
		if s.dqSize <= mo.Idx.Dataset.NumRecords()/32 {
			return scanCost
		}
		return bitmapCost
	}
}

// verifyCost estimates the VERIFY operator over nQual qualified
// itemsets: level-wise rule generation with closure-oracle lookups.
// Low minconfidence admits more consequent levels, which the
// (2 - minconf) factor captures coarsely.
func (mo *Model) verifyCost(s queryShape, nQual float64, minConf float64) float64 {
	perLevel1 := mo.avgLen * (mo.U.GenOp + 2*mo.U.MapOp)
	missCost := mo.avgLen * 0.5 * mo.supportCheckCost(s) // some oracle misses
	depth := 2 - minConf
	return nQual * depth * (perLevel1 + missCost)
}

// EstimateKind computes the estimate of a single plan for a query —
// the per-plan replay the plan-choice accuracy tracker compares against
// measured execution times.
func (mo *Model) EstimateKind(k plans.Kind, q *plans.Query) Estimate {
	return mo.estimateOne(k, q, mo.shape(q))
}

// Estimate computes the six plan estimates for a query. The returned
// slice is ordered as plans.Kinds().
func (mo *Model) Estimate(q *plans.Query) []Estimate {
	s := mo.shape(q)
	out := make([]Estimate, 0, 6)
	for _, k := range plans.Kinds() {
		out = append(out, mo.estimateOne(k, q, s))
	}
	return out
}

func (mo *Model) estimateOne(k plans.Kind, q *plans.Query, s queryShape) Estimate {
	e := Estimate{Plan: k}
	if s.dqSize == 0 {
		return e
	}
	nMIPs := float64(mo.Idx.ITTree.Size())
	switch k {
	case plans.SEV, plans.SVS, plans.SSEV, plans.SSVS, plans.SSEUV:
		supported := k == plans.SSEV || k == plans.SSVS || k == plans.SSEUV
		e.Search = mo.searchCost(s, supported)
		if supported {
			e.Candidates = nMIPs * s.overlapSSFrac
			e.Contained = nMIPs * s.containedSSFrac
		} else {
			e.Candidates = nMIPs * s.overlapFrac
			e.Contained = nMIPs * s.containedFrac
		}

		// Item filter applies to every candidate (map + scan, cheap);
		// candidates that survive need the record-level support check —
		// except, for SS-E-U-V, the contained ones (Lemma 4.5).
		checks := e.Candidates
		if k == plans.SSEUV {
			checks = math.Max(0, e.Candidates-e.Contained)
		}
		e.Eliminate = e.Candidates*2*mo.U.MapOp + checks*mo.supportCheckCost(s)
		// The separate ELIMINATE pass of the E-plans materializes the
		// intermediate candidate list; VS merges it away (selection
		// push-up) for a small constant saving per candidate.
		if k == plans.SEV || k == plans.SSEV || k == plans.SSEUV {
			e.Eliminate += e.Candidates * mo.U.MapOp
		}
		// Locally frequent MIPs qualify under every search variant (a
		// positive local support implies overlap, and local support is
		// bounded by global support, so the SS filter is lossless).
		e.Qualified = nMIPs * s.qualFrac * s.maskKeep
		e.Verify = mo.verifyCost(s, e.Qualified, q.MinConfidence)
		if mo.Shards > 1 {
			// Scatter-gather overhead: the focal-subset bitmap scatters
			// to K per-shard computations, and each record-level support
			// check fans into K partial counts that are summed back. The
			// counting work itself is conserved (the slices partition the
			// records), so only the dispatch bookkeeping is extra.
			kf := float64(mo.Shards)
			e.Search += kf * mo.U.MapOp
			e.Eliminate += checks * (kf - 1) * mo.U.MapOp
		}
		e.Total = e.Search + e.Eliminate + e.Verify

	case plans.ARM:
		idx := mo.Idx
		m := float64(idx.Dataset.NumRecords())
		n := float64(idx.Space.NumAttrs())
		// SELECT: one raw-table pass (m·n cell touches) plus building
		// the subset's vertical representation (|D^Q|·n inserts).
		e.Search = m*n*mo.U.IDProbe + float64(s.dqSize)*n*mo.U.IDProbe

		// Mining: CHARM over the extracted subset. The explored lattice
		// is estimated from the record sample: with f locally frequent
		// items and pair density d, the expected number of frequent
		// k-itemsets is roughly C(f,k)·d^C(k,2) (random-intersection
		// model); each lattice node costs one tidset intersection over
		// the subset's width.
		lattice := latticeSize(s.freqItems, s.pairDens)
		// Duplicate-heavy subsets (strong functional dependencies, as
		// in mushroom-like data) collapse CHARM's closed lattice: when
		// the record sample shows duplicate rows, bound the estimate by
		// the intersection structure of the distinct rows observed.
		if s.distinctRows < s.sampleRows {
			d := float64(s.distinctRows)
			cap := d*d*8 + s.freqItems
			if lattice > cap {
				lattice = cap
			}
		}
		dqWords := float64(s.dqSize)/64 + 1
		e.Mine = lattice * dqWords * mo.U.WordOp * 2

		e.Qualified = lattice / math.Max(1, s.freqItems) // closed ~ flattened
		e.Verify = mo.verifyCost(s, e.Qualified, q.MinConfidence)
		if mo.Shards > 1 {
			// Scattered SELECT: per-shard fan-out setup plus the gather
			// pass ORing K per-shard vertical representations together.
			kf := float64(mo.Shards)
			e.Search += kf*mo.U.MapOp + (kf-1)*float64(idx.Space.NumItems())*dqWords*mo.U.WordOp
		}
		e.Total = e.Search + e.Mine + e.Verify
	}
	return e
}

// latticeSize estimates Σ_k C(f,k)·d^C(k,2), the expected number of
// frequent itemsets over f frequent items with pair density d, capped to
// keep the estimate finite on degenerate (fully homogeneous) subsets.
func latticeSize(f, d float64) float64 {
	if f < 1 {
		return 0
	}
	if d <= 0 {
		return f
	}
	const cap = 1e10
	total := f
	logC := 0.0 // log C(f,k) accumulated incrementally
	for k := 2.0; k <= f; k++ {
		logC += math.Log((f - k + 1) / k)
		logTerm := logC + (k*(k-1)/2)*math.Log(d)
		term := math.Exp(logTerm)
		total += term
		if total > cap {
			return cap
		}
		if term < 1e-3 && k > 4 {
			break
		}
	}
	return total
}

// Choose returns the plan with the lowest estimated cost — the COLARM
// optimizer's decision — together with all six estimates.
func (mo *Model) Choose(q *plans.Query) (plans.Kind, []Estimate) {
	ests := mo.Estimate(q)
	best := ests[0]
	for _, e := range ests[1:] {
		if e.Total < best.Total {
			best = e
		}
	}
	return best.Plan, ests
}
