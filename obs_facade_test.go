package colarm

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func obsSalaryEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	if opts.PrimarySupport == 0 {
		opts.PrimarySupport = 0.18
	}
	eng, err := Open(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func salaryQuery() Query {
	return Query{
		Range:          map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.70,
		MinConfidence:  0.95,
	}
}

func spanOps(tr *Trace) []string {
	var ops []string
	for _, s := range tr.Spans {
		ops = append(ops, s.Operator)
	}
	return ops
}

func TestTraceAttachment(t *testing.T) {
	eng := obsSalaryEngine(t, Options{})

	q := salaryQuery()
	plain, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatalf("untraced query carries a trace: %+v", plain.Trace)
	}

	q.Trace = true
	traced, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatal("traced query returned no trace")
	}
	if got, want := traced.Trace.Plan, traced.Stats.Plan.String(); got != want {
		t.Errorf("trace plan %q, stats plan %q", got, want)
	}
	if traced.Trace.Total <= 0 {
		t.Errorf("trace total %v, want > 0", traced.Trace.Total)
	}
	if !reflect.DeepEqual(traced.Rules, plain.Rules) {
		t.Errorf("tracing changed the rules:\ntraced:   %v\nuntraced: %v", traced.Rules, plain.Rules)
	}

	// Per-plan operator pipelines (paper Figures 4-7).
	wantOps := map[Plan][]string{
		SEV:   {"SEARCH", "ELIMINATE", "VERIFY"},
		SVS:   {"SEARCH", "ELIMINATE", "VERIFY"},
		SSEV:  {"SUPPORTED-SEARCH", "ELIMINATE", "VERIFY"},
		SSVS:  {"SUPPORTED-SEARCH", "ELIMINATE", "VERIFY"},
		SSEUV: {"SUPPORTED-SEARCH", "ELIMINATE", "UNION", "VERIFY"},
		ARM:   {"SELECT", "ARM", "VERIFY"},
	}
	for plan, want := range wantOps {
		pq := q
		pq.Plan = plan
		res, err := eng.Mine(pq)
		if err != nil {
			t.Fatalf("plan %s: %v", plan, err)
		}
		if res.Trace == nil {
			t.Fatalf("plan %s: no trace on forced-plan query", plan)
		}
		if got := spanOps(res.Trace); !reflect.DeepEqual(got, want) {
			t.Errorf("plan %s: operators %v, want %v", plan, got, want)
		}
		for _, s := range res.Trace.Spans {
			if s.Duration < 0 {
				t.Errorf("plan %s: span %s has negative duration", plan, s.Operator)
			}
			if s.Workers < 1 {
				t.Errorf("plan %s: span %s fanned out to %d workers", plan, s.Operator, s.Workers)
			}
		}
		tree := res.Trace.Tree()
		if !strings.HasPrefix(tree, plan.String()+"  ") {
			t.Errorf("plan %s: tree does not lead with the plan name:\n%s", plan, tree)
		}
		for _, op := range want {
			if !strings.Contains(tree, op) {
				t.Errorf("plan %s: tree misses operator %s:\n%s", plan, op, tree)
			}
		}
		if !strings.Contains(tree, "├─") || !strings.Contains(tree, "└─") {
			t.Errorf("plan %s: tree misses branch glyphs:\n%s", plan, tree)
		}
	}
	if (*Trace)(nil).Tree() != "" {
		t.Error("nil trace should render empty")
	}
}

func TestWriteMetricsFacade(t *testing.T) {
	eng := obsSalaryEngine(t, Options{})
	if _, err := eng.Mine(salaryQuery()); err != nil {
		t.Fatal(err)
	}
	bad := salaryQuery()
	bad.MinSupport = 1.5
	if _, err := eng.Mine(bad); err == nil {
		t.Fatal("query with minsupport > 1 should fail")
	}

	var b strings.Builder
	if err := eng.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`colarm_queries_total{dataset="salary"} 2`,
		`colarm_query_errors_total{dataset="salary"} 1`,
		`colarm_plan_chosen_total{dataset="salary",plan="ARM"} 1`,
		`colarm_query_seconds_count{dataset="salary"} 1`,
		`colarm_query_seconds_bucket{dataset="salary",le="+Inf"} 1`,
		"# TYPE colarm_query_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output misses %q:\n%s", want, out)
		}
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	eng.MetricsHandler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("metrics handler status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "colarm_queries_total") {
		t.Errorf("handler body misses counters:\n%s", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("handler content type %q", ct)
	}
}

// TestShardIndexMetrics pins the per-shard physical-index
// observability: on a sharded engine whose merged view runs the
// scatter catalog, the first post-ingest query builds every shard's
// index, which must surface as one rebuild counter tick per shard and
// K observations in the build-duration histogram.
func TestShardIndexMetrics(t *testing.T) {
	const k = 3
	eng := obsSalaryEngine(t, Options{Shards: k})
	if _, err := eng.Ingest([]map[string]string{{
		"Company": "Google", "Title": "Sw Engg", "Location": "Seattle",
		"Gender": "F", "Age": "30-40", "Salary": "90K-120K",
	}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Mine(salaryQuery()); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := eng.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# TYPE colarm_shard_index_build_seconds histogram",
		`colarm_shard_index_build_seconds_count{dataset="salary"} 3`,
	}
	for s := 0; s < k; s++ {
		wants = append(wants,
			`colarm_shard_index_rebuilds_total{dataset="salary",shard="`+
				string(rune('0'+s))+`"} 1`)
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output misses %q:\n%s", want, out)
		}
	}
}

func TestTrackAccuracy(t *testing.T) {
	eng := obsSalaryEngine(t, Options{TrackAccuracy: true})

	// Untraced queries are never scored.
	if _, err := eng.Mine(salaryQuery()); err != nil {
		t.Fatal(err)
	}
	if rep := eng.AccuracyReport(); rep.Queries != 0 {
		t.Fatalf("untraced query was scored: %+v", rep)
	}

	const n = 5
	for i := 0; i < n; i++ {
		q := salaryQuery()
		q.Trace = true
		if _, err := eng.Mine(q); err != nil {
			t.Fatal(err)
		}
	}
	rep := eng.AccuracyReport()
	if rep.Queries != n {
		t.Fatalf("scored %d queries, want %d", rep.Queries, n)
	}
	if rep.Tolerance != 0.05 {
		t.Errorf("default tolerance %v, want the paper's 0.05", rep.Tolerance)
	}
	if acc := rep.Accuracy(); acc < 0 || acc > 1 {
		t.Errorf("accuracy %v outside [0,1]", acc)
	}
	if rep.Correct < 0 || rep.Correct > rep.Queries {
		t.Errorf("correct %d outside [0,%d]", rep.Correct, rep.Queries)
	}
	if (AccuracyReport{}).Accuracy() != 0 {
		t.Error("empty report accuracy should be 0")
	}

	var b strings.Builder
	if err := eng.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `colarm_plan_evaluations_total{dataset="salary"} 5`) {
		t.Errorf("metrics miss the evaluation counter:\n%s", b.String())
	}
}

func TestParsePlanSpellings(t *testing.T) {
	cases := map[string]Plan{
		"":         Auto,
		"auto":     Auto,
		"AUTO":     Auto,
		"S-E-V":    SEV,
		"s-e-v":    SEV,
		"sev":      SEV,
		"SS_VS":    SSVS,
		"ss-vs":    SSVS,
		"SS-E-U-V": SSEUV,
		"sseuv":    SSEUV,
		"arm":      ARM,
		"ARM":      ARM,
	}
	for in, want := range cases {
		got, err := ParsePlan(in)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParsePlan(%q) = %v, want %v", in, got, want)
		}
	}
	_, err := ParsePlan("bogus")
	if err == nil {
		t.Fatal("ParsePlan accepted a bogus name")
	}
	msg := err.Error()
	if !strings.Contains(msg, "valid plans:") || !strings.Contains(msg, "S-E-V") || !strings.Contains(msg, "ARM") {
		t.Errorf("error %q does not list the valid plan names", msg)
	}
}

func TestParseQueryStandalone(t *testing.T) {
	eng := obsSalaryEngine(t, Options{})
	src := `REPORT LOCALIZED ASSOCIATION RULES FROM salary
WHERE RANGE Location = (Seattle), Gender = (F)
AND ITEM ATTRIBUTES Age, Salary
HAVING minsupport = 70% AND minconfidence = 95%
USING PLAN ss-e-v;`
	q, err := eng.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.Plan != SSEV {
		t.Errorf("parsed plan %v, want SSEV", q.Plan)
	}
	if q.MinSupport != 0.70 || q.MinConfidence != 0.95 {
		t.Errorf("parsed thresholds %v/%v", q.MinSupport, q.MinConfidence)
	}
	q.Trace = true
	res, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plan != SSEV {
		t.Errorf("executed %v, want forced SSEV", res.Stats.Plan)
	}
	if res.Trace == nil || res.Trace.Plan != "SS-E-V" {
		t.Errorf("trace %+v, want SS-E-V", res.Trace)
	}
	if _, err := eng.ParseQuery("REPORT NONSENSE"); err == nil {
		t.Error("ParseQuery accepted garbage")
	}
	if _, err := eng.ParseQuery(`REPORT LOCALIZED ASSOCIATION RULES FROM other HAVING minsupport = 0.5 AND minconfidence = 0.5`); err == nil {
		t.Error("ParseQuery accepted a query for another dataset")
	}
}
