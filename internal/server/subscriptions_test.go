package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// seattleSub subscribes to the Seattle focal region; the canonical
// affecting insert for it is seattleRow.
var seattleSub = map[string]any{
	"dataset":       "salary",
	"range":         map[string][]string{"Location": {"Seattle"}},
	"minSupport":    0.3,
	"minConfidence": 0.5,
}

var seattleRow = map[string]string{
	"Company": "Microsoft", "Title": "Sw Engg", "Location": "Seattle",
	"Gender": "F", "Age": "30-40", "Salary": "90K-120K",
}

var bostonRow = map[string]string{
	"Company": "IBM", "Title": "QA Lead", "Location": "Boston",
	"Gender": "M", "Age": "30-40", "Salary": "60K-90K",
}

func createSub(t testing.TB, h http.Handler, body map[string]any) subscriptionJSON {
	t.Helper()
	w := postJSON(t, h, "/v1/subscriptions", body)
	if w.Code != http.StatusCreated {
		t.Fatalf("create subscription: status %d, body %s", w.Code, w.Body.String())
	}
	var sub subscriptionJSON
	if err := json.Unmarshal(w.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if want := "/v1/subscriptions/" + sub.ID; w.Header().Get("Location") != want {
		t.Fatalf("Location %q, want %q", w.Header().Get("Location"), want)
	}
	return sub
}

// poll long-polls the subscription's event stream once.
func poll(t testing.TB, h http.Handler, id string, after uint64, wait string) []eventJSON {
	t.Helper()
	req := httptest.NewRequest("GET",
		fmt.Sprintf("/v1/subscriptions/%s/events?after=%d&wait=%s", id, after, wait), nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("poll: status %d, body %s", w.Code, w.Body.String())
	}
	var resp struct {
		Events []eventJSON `json:"events"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Events
}

func ingestRows(t testing.TB, h http.Handler, rows []map[string]string, rebuild string) *httptest.ResponseRecorder {
	t.Helper()
	body := map[string]any{"dataset": "salary", "inserts": rows}
	if rebuild != "" {
		body["rebuild"] = rebuild
	}
	w := postJSON(t, h, "/v1/ingest", body)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest: status %d, body %s", w.Code, w.Body.String())
	}
	return w
}

func quiesceServer(t testing.TB, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.standing.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSubscriptionLifecycle walks the resource surface: create (201 +
// Location), read, list, long-poll the snapshot and a diff, delete
// (204), then 404s.
func TestSubscriptionLifecycle(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	sub := createSub(t, h, seattleSub)
	if sub.Dataset != "salary" || sub.Query == "" || sub.Events == "" {
		t.Fatalf("incomplete subscription resource: %+v", sub)
	}

	// Same query again: second resource, shared tracker.
	sub2 := createSub(t, h, seattleSub)
	if sub2.ID == sub.ID {
		t.Fatal("subscriptions must get distinct ids")
	}

	// Read and list.
	req := httptest.NewRequest("GET", "/v1/subscriptions/"+sub.ID, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("get: status %d", w.Code)
	}
	req = httptest.NewRequest("GET", "/v1/subscriptions", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var list struct {
		Subscriptions []subscriptionJSON `json:"subscriptions"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil || len(list.Subscriptions) != 2 {
		t.Fatalf("list: %s (err %v)", w.Body.String(), err)
	}

	// The first event is the snapshot at sequence 1.
	evs := poll(t, h, sub.ID, 0, "2s")
	if len(evs) != 1 || evs[0].Type != "snapshot" || evs[0].Seq != 1 {
		t.Fatalf("first poll: %+v", evs)
	}
	if len(evs[0].Rules) == 0 {
		t.Fatal("snapshot carries no rules")
	}

	// An affecting ingest produces a diff event with the version
	// interval it covers.
	ingestRows(t, h, []map[string]string{seattleRow}, "never")
	quiesceServer(t, s)
	evs = poll(t, h, sub.ID, 1, "2s")
	if len(evs) != 1 || evs[0].Type != "diff" {
		t.Fatalf("diff poll: %+v", evs)
	}
	if evs[0].FromVersion != 0 || evs[0].ToVersion != 1 {
		t.Fatalf("diff interval [%d,%d], want [0,1]", evs[0].FromVersion, evs[0].ToVersion)
	}
	if len(evs[0].Appeared)+len(evs[0].Disappeared)+len(evs[0].Updated) == 0 {
		t.Fatal("affecting ingest produced an empty diff")
	}

	// An unaffecting ingest produces nothing: the long-poll times out
	// with an empty batch.
	ingestRows(t, h, []map[string]string{bostonRow}, "never")
	quiesceServer(t, s)
	if evs := poll(t, h, sub.ID, 2, "50ms"); len(evs) != 0 {
		t.Fatalf("unaffecting ingest produced events: %+v", evs)
	}

	// Delete: 204, then 404 everywhere.
	req = httptest.NewRequest("DELETE", "/v1/subscriptions/"+sub.ID, nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	for _, path := range []string{
		"/v1/subscriptions/" + sub.ID,
		"/v1/subscriptions/" + sub.ID + "/events?wait=1ms",
	} {
		req = httptest.NewRequest("GET", path, nil)
		w = httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusNotFound {
			t.Fatalf("GET %s after delete: status %d", path, w.Code)
		}
		var er errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Code != CodeNotFound {
			t.Fatalf("GET %s: error code %q, want %q", path, er.Error.Code, CodeNotFound)
		}
	}
	req = httptest.NewRequest("DELETE", "/v1/subscriptions/"+sub.ID, nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", w.Code)
	}
}

// sseClient reads SSE frames from a live connection.
type sseClient struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func dialSSE(t testing.TB, baseURL, id string, lastEventID uint64) *sseClient {
	t.Helper()
	req, err := http.NewRequest("GET", baseURL+"/v1/subscriptions/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE dial: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("SSE content type %q", ct)
	}
	return &sseClient{resp: resp, sc: bufio.NewScanner(resp.Body)}
}

func (c *sseClient) close() { c.resp.Body.Close() }

// next reads one SSE event frame (skipping heartbeat comments), or
// reports stream end.
func (c *sseClient) next(t testing.TB) (eventJSON, bool) {
	t.Helper()
	var ev eventJSON
	var data []byte
	seen := false
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case strings.HasPrefix(line, ":"):
			continue
		case strings.HasPrefix(line, "id: "), strings.HasPrefix(line, "event: "):
			seen = true
		case strings.HasPrefix(line, "data: "):
			seen = true
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && seen:
			if err := json.Unmarshal(data, &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			return ev, true
		}
	}
	return ev, false
}

// TestSSEStreamAndResume drives the full SSE lifecycle over a real
// connection: snapshot on connect, diff on ingest, client disconnect
// mid-stream, then a Last-Event-ID resume that carries the stream
// across a background rebuild and registry swap — and the resumed
// stream's replay matches /v1/mine at the final version.
func TestSSEStreamAndResume(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	h := s.Handler()
	ts := httptest.NewServer(h)
	defer ts.Close()

	sub := createSub(t, h, seattleSub)

	c := dialSSE(t, ts.URL, sub.ID, 0)
	ev, ok := c.next(t)
	if !ok || ev.Type != "snapshot" || ev.Seq != 1 {
		t.Fatalf("first SSE frame: %+v ok=%v", ev, ok)
	}

	ingestRows(t, h, []map[string]string{seattleRow}, "never")
	ev, ok = c.next(t)
	if !ok || ev.Type != "diff" || ev.Seq != 2 {
		t.Fatalf("second SSE frame: %+v ok=%v", ev, ok)
	}
	lastSeen := ev.Seq

	// Disconnect mid-stream; the subscription itself survives.
	c.close()

	// Background rebuild + registry swap while disconnected.
	_, gen0, err := reg.Get("salary")
	if err != nil {
		t.Fatal(err)
	}
	ingestRows(t, h, []map[string]string{seattleRow}, "force")
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, gen, err := reg.Get("salary")
		if err != nil {
			t.Fatal(err)
		}
		if gen > gen0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rebuild never swapped the registry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	quiesceServer(t, s)
	// One more post-swap ingest through the fresh engine.
	ingestRows(t, h, []map[string]string{seattleRow}, "never")
	quiesceServer(t, s)

	// Resume from the last seen sequence: the replayed tail must cover
	// the pre-swap diff, the epoch, and the post-swap diff, and fold to
	// exactly the current /v1/mine answer.
	c = dialSSE(t, ts.URL, sub.ID, lastSeen)
	state := make(map[string]ruleJSON)
	res := decodeMine(t, postJSON(t, h, "/v1/mine", seattleSub))
	for _, r := range res.Rules {
		state[ruleKeyJSON(r)] = r
	}
	got := make(map[string]ruleJSON)
	// Seed from the pre-disconnect state (snapshot + first diff).
	seedEvs := poll(t, h, sub.ID, 0, "1s")
	if len(seedEvs) < 2 {
		t.Fatalf("expected at least snapshot+diff buffered, got %+v", seedEvs)
	}
	sawEpoch := false
	for _, ev := range seedEvs[:2] {
		applyEvent(got, ev)
	}
	for len(got) == 0 || !sawEpoch || !mapsEqualJSON(got, state) {
		ev, ok := c.next(t)
		if !ok {
			t.Fatalf("stream ended before replay converged\nreplayed: %v\nwant: %v", got, state)
		}
		if ev.Seq <= lastSeen {
			t.Fatalf("resume re-delivered seq %d <= %d", ev.Seq, lastSeen)
		}
		if ev.Type == "epoch" {
			sawEpoch = true
		}
		applyEvent(got, ev)
	}
	c.close()
}

func ruleKeyJSON(r ruleJSON) string {
	return strings.Join(r.Antecedent, "\x1f") + "\x1e" + strings.Join(r.Consequent, "\x1f")
}

func applyEvent(state map[string]ruleJSON, ev eventJSON) {
	switch ev.Type {
	case "snapshot":
		for k := range state {
			delete(state, k)
		}
		for _, r := range ev.Rules {
			state[ruleKeyJSON(r)] = r
		}
	case "diff", "epoch":
		for _, r := range ev.Disappeared {
			delete(state, ruleKeyJSON(r))
		}
		for _, r := range ev.Appeared {
			state[ruleKeyJSON(r)] = r
		}
		for _, r := range ev.Updated {
			state[ruleKeyJSON(r)] = r
		}
	}
}

func mapsEqualJSON(a, b map[string]ruleJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			return false
		}
		aj, _ := json.Marshal(av)
		bj, _ := json.Marshal(bv)
		if !bytes.Equal(aj, bj) {
			return false
		}
	}
	return true
}

// TestSSESlowConsumerEviction keeps a throttled SSE consumer connected
// while affecting ingests wrap its tiny event ring: the stream must
// end with a terminal "evicted" event, never silently.
func TestSSESlowConsumerEviction(t *testing.T) {
	s, _ := newTestServer(t, Config{SubscriptionBuffer: 2})
	s.sseDelay = 40 * time.Millisecond
	h := s.Handler()
	ts := httptest.NewServer(h)
	defer ts.Close()

	sub := createSub(t, h, seattleSub)
	c := dialSSE(t, ts.URL, sub.ID, 0)
	defer c.close()

	// Flood: each affecting ingest appends one diff; the consumer reads
	// at 40ms/event, so the 2-slot ring wraps past it.
	for i := 0; i < 12; i++ {
		ingestRows(t, h, []map[string]string{seattleRow}, "never")
		quiesceServer(t, s)
	}

	sawEvicted := false
	for {
		ev, ok := c.next(t)
		if !ok {
			break
		}
		if ev.Type == "evicted" {
			sawEvicted = true
			if ev.Reason == "" {
				t.Fatal("evicted event carries no reason")
			}
		}
	}
	if !sawEvicted {
		t.Fatal("stream closed without a terminal evicted event")
	}

	// A fresh connection resyncs with a snapshot reflecting the current
	// rule set.
	c2 := dialSSE(t, ts.URL, sub.ID, 1)
	defer c2.close()
	ev, ok := c2.next(t)
	if !ok || ev.Type != "snapshot" {
		t.Fatalf("resync frame: %+v ok=%v", ev, ok)
	}
	res := decodeMine(t, postJSON(t, h, "/v1/mine", seattleSub))
	if len(ev.Rules) != len(res.Rules) {
		t.Fatalf("resync snapshot has %d rules, mine has %d", len(ev.Rules), len(res.Rules))
	}
}

// TestMineNotServedStaleAfterIngest pins the version-keyed cache: an
// ingest bumps the version clock, so the next identical query must
// re-execute instead of serving the pre-ingest cached rules.
func TestMineNotServedStaleAfterIngest(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	first := decodeMine(t, postJSON(t, h, "/v1/mine", seattleSub))
	if first.Cached || first.Version != 0 {
		t.Fatalf("first mine: cached=%v version=%d", first.Cached, first.Version)
	}
	hit := decodeMine(t, postJSON(t, h, "/v1/mine", seattleSub))
	if !hit.Cached {
		t.Fatal("identical query at the same version must hit the cache")
	}

	ingestRows(t, h, []map[string]string{seattleRow}, "never")

	after := decodeMine(t, postJSON(t, h, "/v1/mine", seattleSub))
	if after.Cached {
		t.Fatal("post-ingest query served a stale pre-ingest cache entry")
	}
	if after.Version != 1 {
		t.Fatalf("post-ingest version %d, want 1", after.Version)
	}
	if after.Generation != first.Generation {
		t.Fatalf("generation moved without a rebuild: %d -> %d", first.Generation, after.Generation)
	}
	b1, _ := json.Marshal(first.Rules)
	b2, _ := json.Marshal(after.Rules)
	if bytes.Equal(b1, b2) {
		t.Fatal("affecting ingest left the mined rules unchanged (diluted supports expected)")
	}
}

// TestSubscribeIngestRebuildRace is the -race soak: concurrent
// subscribers, ingesters (tolerating 409s from rebuild races), forced
// rebuilds, SSE consumers and deleters against one server.
func TestSubscribeIngestRebuildRace(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	ts := httptest.NewServer(h)
	defer ts.Close()

	stop := time.After(1500 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		<-stop
		close(done)
	}()
	running := func() bool {
		select {
		case <-done:
			return false
		default:
			return true
		}
	}

	var wg sync.WaitGroup
	// Subscribers create, poll and delete.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for running() {
				w := postJSON(t, h, "/v1/subscriptions", seattleSub)
				if w.Code != http.StatusCreated {
					t.Errorf("subscribe: %d %s", w.Code, w.Body.String())
					return
				}
				var sub subscriptionJSON
				if err := json.Unmarshal(w.Body.Bytes(), &sub); err != nil {
					t.Error(err)
					return
				}
				req := httptest.NewRequest("GET",
					"/v1/subscriptions/"+sub.ID+"/events?wait=20ms", nil)
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, req)
				req = httptest.NewRequest("DELETE", "/v1/subscriptions/"+sub.ID, nil)
				rw = httptest.NewRecorder()
				h.ServeHTTP(rw, req)
			}
		}()
	}
	// Ingesters, sometimes forcing rebuilds.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 0
			for running() {
				n++
				rebuild := "never"
				if i == 0 && n%5 == 0 {
					rebuild = "force"
				}
				body := map[string]any{
					"dataset": "salary",
					"inserts": []map[string]string{seattleRow},
					"rebuild": rebuild,
				}
				w := postJSON(t, h, "/v1/ingest", body)
				if w.Code != http.StatusOK && w.Code != http.StatusConflict {
					t.Errorf("ingest: %d %s", w.Code, w.Body.String())
					return
				}
			}
		}(i)
	}
	// One persistent SSE consumer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub := createSub(t, h, map[string]any{
			"dataset":       "salary",
			"range":         map[string][]string{"Location": {"Boston"}},
			"minSupport":    0.3,
			"minConfidence": 0.5,
		})
		c := dialSSE(t, ts.URL, sub.ID, 0)
		go func() {
			<-done
			c.close()
		}()
		for {
			if _, ok := c.next(t); !ok {
				return
			}
		}
	}()
	wg.Wait()
	quiesceServer(t, s)
}
