#!/usr/bin/env python3
"""Structurally validate api/openapi.yaml without external validators.

The OpenAPI document is the public contract for the /v1 surface; this
script keeps it internally consistent so CI can gate on it:

 1. the document parses, declares OpenAPI 3.x, and carries info.title
    and info.version;
 2. every path has at least one operation, every operation has at least
    one response, and every response carries a description (directly or
    through its $ref);
 3. every $ref in the document resolves to a node inside the document
    (no dangling component references);
 4. every {param} in a path template is declared as an in:path required
    parameter on each of that path's operations;
 5. every documented non-2xx response resolves to the structured error
    envelope (the ErrorResponse schema), so no endpoint can quietly
    document a bare-string error.

The route <-> document coverage check (every mux route appears here) is
a Go test, TestOpenAPIRouteCoverage, which reads the same file.

Exit status is nonzero on the first failed check.
"""

import re
import sys

try:
    import yaml
except ImportError:  # pragma: no cover - CI images ship PyYAML
    print("check_openapi: PyYAML unavailable; skipping", file=sys.stderr)
    sys.exit(0)

HTTP_METHODS = {"get", "put", "post", "delete", "options", "head", "patch", "trace"}


def fail(msg):
    print(f"check_openapi: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def resolve(doc, ref, seen=()):
    """Resolve a local $ref like '#/components/schemas/Rule'."""
    if not ref.startswith("#/"):
        fail(f"non-local $ref {ref!r}")
    if ref in seen:
        fail(f"$ref cycle at {ref!r}")
    node = doc
    for part in ref[2:].split("/"):
        part = part.replace("~1", "/").replace("~0", "~")
        if not isinstance(node, dict) or part not in node:
            fail(f"dangling $ref {ref!r} (missing {part!r})")
        node = node[part]
    if isinstance(node, dict) and "$ref" in node:
        return resolve(doc, node["$ref"], seen + (ref,))
    return node


def walk_refs(doc, node, where):
    """Check that every $ref under node resolves."""
    if isinstance(node, dict):
        if "$ref" in node:
            resolve(doc, node["$ref"])
        for k, v in node.items():
            walk_refs(doc, v, f"{where}.{k}")
    elif isinstance(node, list):
        for i, v in enumerate(node):
            walk_refs(doc, v, f"{where}[{i}]")


def declared_path_params(doc, op, path_item):
    names = set()
    for scope in (path_item.get("parameters", []), op.get("parameters", [])):
        for p in scope:
            if isinstance(p, dict) and "$ref" in p:
                p = resolve(doc, p["$ref"])
            if p.get("in") == "path":
                if not p.get("required"):
                    fail(f"path parameter {p.get('name')!r} must be required")
                names.add(p["name"])
    return names


def error_schema_name(doc, resp):
    """Return the schema $ref target name of a JSON error response."""
    if "$ref" in resp:
        resp = resolve(doc, resp["$ref"])
    content = resp.get("content", {})
    media = content.get("application/json")
    if media is None:
        return None
    schema = media.get("schema", {})
    ref = schema.get("$ref", "")
    return ref.rsplit("/", 1)[-1] if ref else None


def main(path):
    with open(path) as f:
        doc = yaml.safe_load(f)

    version = str(doc.get("openapi", ""))
    if not version.startswith("3."):
        fail(f"openapi version {version!r}, want 3.x")
    info = doc.get("info", {})
    if not info.get("title") or not info.get("version"):
        fail("info.title and info.version are required")

    paths = doc.get("paths", {})
    if not paths:
        fail("no paths documented")

    walk_refs(doc, doc, "$")

    ops = 0
    for tmpl, path_item in paths.items():
        params_in_tmpl = set(re.findall(r"\{([^{}/]+)\}", tmpl))
        methods = [m for m in path_item if m in HTTP_METHODS]
        if not methods:
            fail(f"path {tmpl} has no operations")
        for method in methods:
            ops += 1
            op = path_item[method]
            where = f"{method.upper()} {tmpl}"
            responses = op.get("responses", {})
            if not responses:
                fail(f"{where}: no responses")
            declared = declared_path_params(doc, op, path_item)
            if params_in_tmpl - declared:
                fail(f"{where}: undeclared path params {sorted(params_in_tmpl - declared)}")
            for status, resp in responses.items():
                resolved = resolve(doc, resp["$ref"]) if "$ref" in resp else resp
                if not resolved.get("description"):
                    fail(f"{where}: response {status} has no description")
                if not str(status).startswith("2"):
                    name = error_schema_name(doc, resp)
                    if name != "ErrorResponse":
                        fail(
                            f"{where}: response {status} must use the "
                            f"ErrorResponse envelope, got {name!r}"
                        )

    print(f"check_openapi: OK ({len(paths)} paths, {ops} operations)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "api/openapi.yaml")
