package colarm

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	eng := salaryEngine(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPartitions() != eng.NumPartitions() {
		t.Fatalf("partitions %d != %d", loaded.NumPartitions(), eng.NumPartitions())
	}
	// Identical query answers.
	q := Query{
		Range:          map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.70,
		MinConfidence:  0.95,
		Plan:           SSEUV,
	}
	a, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rules %d != %d after reload", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		if a.Rules[i].String() != b.Rules[i].String() {
			t.Fatalf("rule %d differs after reload", i)
		}
	}
	// The query language works on the restored engine too.
	if _, err := loaded.MineQL(`REPORT LOCALIZED ASSOCIATION RULES FROM salary
		HAVING minsupport = 0.45 AND minconfidence = 0.8`); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	eng := salaryEngine(t)
	path := filepath.Join(t.TempDir(), "salary.colarm")
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngineFile(path, Options{CheckMode: "scan"})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPartitions() != eng.NumPartitions() {
		t.Error("partitions lost through file round trip")
	}
	if _, err := LoadEngineFile(filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Error("missing file must error")
	}
}

func TestLoadEngineErrors(t *testing.T) {
	if _, err := LoadEngine(strings.NewReader("junk"), Options{}); err == nil {
		t.Error("junk stream must error")
	}
	eng := salaryEngine(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(&buf, Options{CheckMode: "bogus"}); err == nil {
		t.Error("bogus check mode must error")
	}
}

// TestSaveLoadWithDelta proves a snapshot taken mid-ingest restores to
// the exact same answers: the buffered delta and the generation ride
// along in the v2 format's metadata.
func TestSaveLoadWithDelta(t *testing.T) {
	eng := salaryEngine(t)
	rec := map[string]string{}
	for _, a := range eng.Dataset().Attributes() {
		vals, _ := eng.Dataset().Values(a)
		rec[a] = vals[len(vals)-1]
	}
	if _, err := eng.Ingest([]map[string]string{rec, rec}, []int{1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := eng.Staleness(), loaded.Staleness()
	if a.BufferedRows != b.BufferedRows || a.Tombstones != b.Tombstones || a.Generation != b.Generation {
		t.Fatalf("staleness lost in round trip: saved %+v, loaded %+v", a, b)
	}
	q := Query{MinSupport: 0.3, MinConfidence: 0.8}
	ra, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := loaded.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Rules) != len(rb.Rules) {
		t.Fatalf("rules %d != %d after mid-ingest reload", len(ra.Rules), len(rb.Rules))
	}
	for i := range ra.Rules {
		if ra.Rules[i].String() != rb.Rules[i].String() {
			t.Fatalf("rule %d differs after mid-ingest reload", i)
		}
	}
	// The restored engine keeps the rebuild lineage: generation survives
	// a rebuild → save → load cycle.
	rebuilt, err := loaded.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := rebuilt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := LoadEngine(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Generation() != rebuilt.Generation() || again.Generation() != 1 {
		t.Fatalf("generation %d after rebuild round trip, want 1", again.Generation())
	}
}

// TestSnapshotVersionMismatch pins the typed rejection of streams that
// are not this build's snapshot format: foreign bytes and old-format
// streams fail with ErrSnapshotVersion before any payload decode.
func TestSnapshotVersionMismatch(t *testing.T) {
	if _, err := LoadEngine(strings.NewReader("COLARM-MIP-v1 but not really"), Options{}); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("foreign stream: got %v, want ErrSnapshotVersion", err)
	}
	// A well-formed gob stream carrying the wrong magic string.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode("COLARM-MIP-v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(&buf, Options{}); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("old magic: got %v, want ErrSnapshotVersion", err)
	}
}

func TestOpenCheckModeValidation(t *testing.T) {
	ds, _ := Salary()
	if _, err := Open(ds, Options{PrimarySupport: 0.18, CheckMode: "bogus"}); err == nil {
		t.Error("bogus check mode must error at Open")
	}
	if _, err := Open(ds, Options{PrimarySupport: 0.18, CheckMode: "scan"}); err != nil {
		t.Errorf("scan mode: %v", err)
	}
}
