package server

import (
	"context"
	"net/http"
	"time"

	"colarm"
)

// unitCostsJSON is the five-unit cost vector as it appears on the wire.
type unitCostsJSON struct {
	WordOp  float64 `json:"wordOp"`
	BoxRel  float64 `json:"boxRel"`
	IDProbe float64 `json:"idProbe"`
	MapOp   float64 `json:"mapOp"`
	GenOp   float64 `json:"genOp"`
}

func toUnitCostsJSON(u colarm.UnitCosts) unitCostsJSON {
	return unitCostsJSON{WordOp: u.WordOp, BoxRel: u.BoxRel, IDProbe: u.IDProbe, MapOp: u.MapOp, GenOp: u.GenOp}
}

type unitDriftJSON struct {
	Unit   string  `json:"unit"`
	Static float64 `json:"static"`
	Live   float64 `json:"live"`
	Bias   float64 `json:"bias"`
	Weight float64 `json:"weight"`
}

type guardrailJSON struct {
	Evaluated   bool    `json:"evaluated"`
	Window      int     `json:"window"`
	WorstRegret float64 `json:"worstRegret"`
	Tolerance   float64 `json:"tolerance"`
	Passed      bool    `json:"passed"`
}

type calibrationJSON struct {
	StaticUnits    unitCostsJSON   `json:"staticUnits"`
	LiveUnits      unitCostsJSON   `json:"liveUnits"`
	CandidateUnits unitCostsJSON   `json:"candidateUnits"`
	DriftScore     float64         `json:"driftScore"`
	Samples        int             `json:"samples"`
	Streak         int             `json:"streak"`
	Swapped        bool            `json:"swapped"`
	Swaps          uint64          `json:"swaps"`
	LastSwap       string          `json:"lastSwap,omitempty"`
	Units          []unitDriftJSON `json:"units,omitempty"`
	Guardrail      guardrailJSON   `json:"guardrail"`
}

func toCalibrationJSON(c colarm.CalibrationReport) calibrationJSON {
	out := calibrationJSON{
		StaticUnits:    toUnitCostsJSON(c.StaticUnits),
		LiveUnits:      toUnitCostsJSON(c.LiveUnits),
		CandidateUnits: toUnitCostsJSON(c.CandidateUnits),
		DriftScore:     c.DriftScore,
		Samples:        c.Samples,
		Streak:         c.Streak,
		Swapped:        c.Swapped,
		Swaps:          c.Swaps,
		Guardrail: guardrailJSON{
			Evaluated:   c.Guardrail.Evaluated,
			Window:      c.Guardrail.Window,
			WorstRegret: c.Guardrail.WorstRegret,
			Tolerance:   c.Guardrail.Tolerance,
			Passed:      c.Guardrail.Passed,
		},
	}
	if !c.LastSwap.IsZero() {
		out.LastSwap = c.LastSwap.UTC().Format(time.RFC3339Nano)
	}
	for _, u := range c.Units {
		out.Units = append(out.Units, unitDriftJSON{Unit: u.Unit, Static: u.Static, Live: u.Live, Bias: u.Bias, Weight: u.Weight})
	}
	return out
}

type recommendationJSON struct {
	Action         string  `json:"action"`
	PrimarySupport float64 `json:"primarySupport"`
	PrimaryCount   int     `json:"primaryCount"`
	BenefitNanos   int64   `json:"benefitNanos"`
	BuildCostNanos int64   `json:"buildCostNanos"`
	Queries        int     `json:"queries"`
	Reason         string  `json:"reason"`
}

func toRecommendationsJSON(recs []colarm.IndexRecommendation) []recommendationJSON {
	out := make([]recommendationJSON, 0, len(recs))
	for _, r := range recs {
		out = append(out, recommendationJSON{
			Action:         r.Action,
			PrimarySupport: r.PrimarySupport,
			PrimaryCount:   r.PrimaryCount,
			BenefitNanos:   r.BenefitNanos,
			BuildCostNanos: r.BuildCostNanos,
			Queries:        r.Queries,
			Reason:         r.Reason,
		})
	}
	return out
}

type secondaryIndexJSON struct {
	PrimarySupport     float64 `json:"primarySupport"`
	PrimaryCount       int     `json:"primaryCount"`
	CFIs               int     `json:"cfis"`
	Fresh              bool    `json:"fresh"`
	BuildDurationNanos int64   `json:"buildDurationNanos"`
}

func toSecondariesJSON(secs []colarm.SecondaryIndexInfo) []secondaryIndexJSON {
	out := make([]secondaryIndexJSON, 0, len(secs))
	for _, s := range secs {
		out = append(out, secondaryIndexJSON{
			PrimarySupport:     s.PrimarySupport,
			PrimaryCount:       s.PrimaryCount,
			CFIs:               s.CFIs,
			Fresh:              s.Fresh,
			BuildDurationNanos: s.BuildDuration.Nanoseconds(),
		})
	}
	return out
}

type workloadJSON struct {
	Window        int `json:"window"`
	ForcedARM     int `json:"forcedARM"`
	SecondaryWins int `json:"secondaryWins"`
}

// advisorResponse is GET /v1/datasets/{name}/advisor: the self-tuning
// optimizer's full state for one dataset.
type advisorResponse struct {
	Dataset         string               `json:"dataset"`
	Generation      uint64               `json:"generation"`
	Version         uint64               `json:"version"`
	Calibration     calibrationJSON      `json:"calibration"`
	Workload        workloadJSON         `json:"workload"`
	Recommendations []recommendationJSON `json:"recommendations"`
	Secondaries     []secondaryIndexJSON `json:"secondaries"`
}

func (s *Server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	s.requests["advisor"].Inc()
	name := r.PathValue("name")
	eng, gen, err := s.reg.Get(name)
	if err != nil {
		s.fail(w, "advisor", notFoundError{err})
		return
	}
	rep := eng.Advisor()
	s.writeJSON(w, http.StatusOK, advisorResponse{
		Dataset:     name,
		Generation:  gen,
		Version:     eng.Version(),
		Calibration: toCalibrationJSON(rep.Calibration),
		Workload: workloadJSON{
			Window:        rep.Workload.Window,
			ForcedARM:     rep.Workload.ForcedARM,
			SecondaryWins: rep.Workload.SecondaryWins,
		},
		Recommendations: toRecommendationsJSON(rep.Recommendations),
		Secondaries:     toSecondariesJSON(rep.Secondaries),
	})
}

// advisorApplyResponse is POST /v1/datasets/{name}/advisor/apply: one
// explicit self-tuning step — a recalibration evaluation plus the index
// recommendations that were applied.
type advisorApplyResponse struct {
	Dataset     string               `json:"dataset"`
	Generation  uint64               `json:"generation"`
	Version     uint64               `json:"version"`
	Calibration calibrationJSON      `json:"calibration"`
	Applied     []recommendationJSON `json:"applied"`
	Secondaries []secondaryIndexJSON `json:"secondaries"`
}

func (s *Server) handleAdvisorApply(w http.ResponseWriter, r *http.Request) {
	s.requests["advisor"].Inc()
	name := r.PathValue("name")
	eng, gen, err := s.reg.Get(name)
	if err != nil {
		s.fail(w, "advisor", notFoundError{err})
		return
	}
	// One explicit self-tuning step, synchronously: recalibrate (the
	// guardrail replay still gates any unit swap), then build/drop the
	// secondary indexes the workload pays for. Index builds mine the
	// merged surface under the request's deadline; the engine keeps
	// serving queries throughout — each install is an atomic swap.
	cal := eng.Recalibrate()
	applied, err := eng.ApplyRecommendations(r.Context())
	if err != nil {
		s.fail(w, "advisor", err)
		return
	}
	if len(applied) > 0 {
		s.advisorApplies.Inc()
	}
	s.writeJSON(w, http.StatusOK, advisorApplyResponse{
		Dataset:     name,
		Generation:  gen,
		Version:     eng.Version(),
		Calibration: toCalibrationJSON(cal),
		Applied:     toRecommendationsJSON(applied),
		Secondaries: toSecondariesJSON(eng.SecondaryIndexes()),
	})
}

// advisorLoop is the self-tuning policy loop: every AdvisorInterval each
// registered engine gets one Recalibrate evaluation, and — with
// AdvisorAutoApply — the index advisor's recommendations are applied.
func (s *Server) advisorLoop() {
	defer close(s.advisorDone)
	t := time.NewTicker(s.cfg.AdvisorInterval)
	defer t.Stop()
	for {
		select {
		case <-s.advisorStop:
			return
		case <-t.C:
			s.advisorTick()
		}
	}
}

func (s *Server) advisorTick() {
	s.advisorTicks.Inc()
	for _, info := range s.reg.List() {
		eng, _, err := s.reg.Get(info.Name)
		if err != nil {
			continue
		}
		eng.Recalibrate()
		if s.cfg.AdvisorAutoApply {
			if applied, err := eng.ApplyRecommendations(context.Background()); err == nil && len(applied) > 0 {
				s.advisorApplies.Inc()
			}
		}
	}
}

// advisorSummaryJSON is the dataset-detail view's self-tuning summary:
// the units the optimizer is pricing with right now and how far the
// evidence says they have drifted.
type advisorSummaryJSON struct {
	LiveUnits         unitCostsJSON `json:"liveUnits"`
	DriftScore        float64       `json:"driftScore"`
	Recalibrations    uint64        `json:"recalibrations"`
	LastRecalibration string        `json:"lastRecalibration,omitempty"`
	SecondaryIndexes  int           `json:"secondaryIndexes"`
}

func toAdvisorSummaryJSON(eng *colarm.Engine) advisorSummaryJSON {
	rep := eng.Advisor()
	out := advisorSummaryJSON{
		LiveUnits:        toUnitCostsJSON(rep.Calibration.LiveUnits),
		DriftScore:       rep.Calibration.DriftScore,
		Recalibrations:   rep.Calibration.Swaps,
		SecondaryIndexes: len(rep.Secondaries),
	}
	if !rep.Calibration.LastSwap.IsZero() {
		out.LastRecalibration = rep.Calibration.LastSwap.UTC().Format(time.RFC3339Nano)
	}
	return out
}
