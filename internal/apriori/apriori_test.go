package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/relation"
)

func toyDataset(t testing.TB) (*relation.Dataset, *itemset.Space) {
	t.Helper()
	b := relation.NewBuilder("toy", "X", "Y", "Z")
	rows := [][]string{
		{"x0", "y0", "z0"},
		{"x0", "y0", "z1"},
		{"x0", "y1", "z0"},
		{"x1", "y0", "z0"},
		{"x0", "y0", "z0"},
		{"x1", "y1", "z1"},
	}
	for _, r := range rows {
		if err := b.AddRecord(r...); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	return d, itemset.NewSpace(d)
}

func TestMineValidation(t *testing.T) {
	d, sp := toyDataset(t)
	if _, err := Mine(d, sp, 0, 0); err == nil {
		t.Error("minCount 0 must error")
	}
	if _, err := Mine(d, sp, 1, -1); err == nil {
		t.Error("negative maxLen must error")
	}
}

func TestSupportsAgainstHandCount(t *testing.T) {
	d, sp := toyDataset(t)
	res, err := Mine(d, sp, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	x0, _ := sp.ParseItem("X=x0")
	y0, _ := sp.ParseItem("Y=y0")
	z0, _ := sp.ParseItem("Z=z0")
	cases := []struct {
		set  itemset.Set
		want int
	}{
		{itemset.NewSet(x0), 4},
		{itemset.NewSet(y0), 4},
		{itemset.NewSet(z0), 4},
		{itemset.NewSet(x0, y0), 3},
		{itemset.NewSet(x0, z0), 3},
		{itemset.NewSet(x0, y0, z0), 2},
	}
	for _, c := range cases {
		if got := res.Support(c.set); got != c.want {
			t.Errorf("Support(%s) = %d, want %d", c.set.Format(sp), got, c.want)
		}
	}
	if res.Support(itemset.NewSet()) != -1 {
		t.Error("empty set support must be -1")
	}
	if res.Support(itemset.NewSet(x0, y0, z0, 99)) != -1 {
		t.Error("overlong set support must be -1")
	}
}

func TestMaxLenCapsLevels(t *testing.T) {
	d, sp := toyDataset(t)
	res, err := Mine(d, sp, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(res.Levels))
	}
	for _, f := range res.All() {
		if len(f.Items) > 2 {
			t.Errorf("itemset %v exceeds maxLen", f.Items)
		}
	}
}

func TestDownwardClosureHolds(t *testing.T) {
	d, sp := toyDataset(t)
	res, err := Mine(d, sp, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for li := 1; li < len(res.Levels); li++ {
		for _, f := range res.Levels[li] {
			// Every (k-1)-subset must be frequent with >= support.
			for drop := range f.Items {
				sub := make(itemset.Set, 0, len(f.Items)-1)
				for i, it := range f.Items {
					if i != drop {
						sub = append(sub, it)
					}
				}
				s := res.Support(sub)
				if s < f.Support {
					t.Errorf("subset %v support %d < superset %v support %d", sub, s, f.Items, f.Support)
				}
			}
		}
	}
}

func randomTidsets(r *rand.Rand) ([]*bitset.Set, int) {
	m := 5 + r.Intn(20)
	nItems := 4 + r.Intn(8)
	ts := make([]*bitset.Set, nItems)
	for i := range ts {
		s := bitset.New(m)
		for rec := 0; rec < m; rec++ {
			if r.Intn(3) == 0 {
				s.Add(rec)
			}
		}
		ts[i] = s
	}
	return ts, m
}

// Property: Apriori supports equal brute-force tidset intersections for
// every reported itemset, and its closed subset equals CHARM's output.
func TestQuickAprioriCrossChecksCharm(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts, m := randomTidsets(r)
		minCount := 1 + r.Intn(4)
		res, err := MineTidsets(ts, m, minCount, 0)
		if err != nil {
			return false
		}
		// Each reported support equals the true intersection count.
		for _, f := range res.All() {
			inter := bitset.New(m)
			inter.Fill()
			for _, it := range f.Items {
				inter.And(ts[it])
			}
			if inter.Count() != f.Support || !inter.Equal(f.Tids) {
				return false
			}
		}
		// Closed filter matches CHARM.
		ch, err := charm.MineTidsets(ts, m, minCount)
		if err != nil {
			return false
		}
		closed := res.ClosedOnly()
		if len(closed) != len(ch.Closed) {
			return false
		}
		cm := map[string]int{}
		for _, c := range ch.Closed {
			cm[c.Items.Key()] = c.Support
		}
		for _, f := range closed {
			if s, ok := cm[f.Items.Key()]; !ok || s != f.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every frequent itemset found by exhaustive enumeration is
// found by Apriori (completeness) and vice versa (soundness).
func TestQuickAprioriCompleteness(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts, m := randomTidsets(r)
		minCount := 1 + r.Intn(4)
		res, err := MineTidsets(ts, m, minCount, 0)
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, f := range res.All() {
			got[f.Items.Key()] = f.Support
		}
		// Exhaustive DFS enumeration.
		want := map[string]int{}
		var dfs func(start int, cur itemset.Set, tids *bitset.Set)
		dfs = func(start int, cur itemset.Set, tids *bitset.Set) {
			if len(cur) > 0 {
				want[cur.Key()] = tids.Count()
			}
			for k := start; k < len(ts); k++ {
				nt := bitset.Intersect(tids, ts[k])
				if nt.Count() < minCount {
					continue
				}
				dfs(k+1, append(cur.Clone(), itemset.Item(k)), nt)
			}
		}
		full := bitset.New(m)
		full.Fill()
		dfs(0, nil, full)
		if len(got) != len(want) {
			return false
		}
		for k, s := range want {
			if got[k] != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
