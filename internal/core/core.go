// Package core assembles the COLARM framework (paper Figure 2): the
// offline preprocessing phase that builds the MIP-index and its
// statistics, and the online phase in which the cost-based optimizer
// picks one of the six mining plans and the executor runs it.
package core

import (
	"fmt"

	"colarm/internal/cost"
	"colarm/internal/mip"
	"colarm/internal/plans"
	"colarm/internal/relation"
	"colarm/internal/rtree"
)

// Options configures engine construction.
type Options struct {
	// PrimarySupport is the offline primary support threshold in (0,1].
	PrimarySupport float64
	// Fanout is the R-tree node capacity (<= 0 selects the default).
	Fanout int
	// Packing selects the R-tree bulk-loading scheme.
	Packing rtree.Packing
	// CalibrateUnits micro-benchmarks the cost model's unit costs on
	// this machine instead of using defaults.
	CalibrateUnits bool
	// CheckMode selects the record-level support check implementation
	// (AutoCheck, ScanCheck or BitmapCheck). ScanCheck costs are
	// proportional to the focal subset size, matching the paper's cost
	// model; AutoCheck (default) picks the cheaper implementation per
	// query.
	CheckMode plans.CheckMode
	// Workers bounds the goroutines one query fans its parallel
	// operator sections out to: 0 means one per logical CPU, 1 forces
	// serial execution. Results are identical for every setting.
	Workers int
}

// Engine is a ready-to-query COLARM instance over one dataset.
//
// An Engine is safe for concurrent use: Mine, MineWith, Explain and
// BuildQuery may be called from any number of goroutines. The index is
// immutable after construction, the executor keeps all query state
// per-call, and the cost model's statistics are precomputed; the only
// unsynchronized state is the configuration on the exported fields,
// which must not be mutated while queries are in flight.
type Engine struct {
	Index    *mip.Index
	Executor *plans.Executor
	Model    *cost.Model
}

// NewEngine runs the offline phase over the dataset and wires up the
// online executor and optimizer.
func NewEngine(d *relation.Dataset, opts Options) (*Engine, error) {
	idx, err := mip.Build(d, mip.Options{
		PrimarySupport: opts.PrimarySupport,
		Fanout:         opts.Fanout,
		Packing:        opts.Packing,
	})
	if err != nil {
		return nil, err
	}
	units := cost.Units{}
	if opts.CalibrateUnits {
		units = cost.MeasureUnits(d.NumRecords(), d.NumAttrs())
	}
	ex := plans.NewExecutor(idx)
	ex.Mode = opts.CheckMode
	ex.Workers = opts.Workers
	model := cost.NewModel(idx, units)
	model.Mode = opts.CheckMode
	return &Engine{
		Index:    idx,
		Executor: ex,
		Model:    model,
	}, nil
}

// Mine answers a localized mining query with the plan the COLARM
// optimizer selects; the estimates for all six plans are returned for
// inspection.
func (e *Engine) Mine(q *plans.Query) (*plans.Result, []cost.Estimate, error) {
	if err := q.Validate(e.Index); err != nil {
		return nil, nil, err
	}
	kind, ests := e.Model.Choose(q)
	res, err := e.Executor.Run(kind, q)
	if err != nil {
		return nil, ests, err
	}
	return res, ests, nil
}

// MineWith bypasses the optimizer and executes a specific plan.
func (e *Engine) MineWith(kind plans.Kind, q *plans.Query) (*plans.Result, error) {
	return e.Executor.Run(kind, q)
}

// Explain returns the optimizer's choice and per-plan estimates without
// executing anything.
func (e *Engine) Explain(q *plans.Query) (plans.Kind, []cost.Estimate, error) {
	if err := q.Validate(e.Index); err != nil {
		return 0, nil, err
	}
	kind, ests := e.Model.Choose(q)
	return kind, ests, nil
}

// QuerySpec is a plan-agnostic description of a mining request using
// dataset vocabulary (attribute names and value labels), as produced by
// the query-language parser or constructed directly by library users.
type QuerySpec struct {
	// Range maps attribute names to selected value labels (the WHERE
	// RANGE clause); attributes absent from the map span their domain.
	Range map[string][]string
	// ItemAttrs lists the attributes allowed in rule bodies (the ITEM
	// ATTRIBUTES clause); empty means all.
	ItemAttrs []string
	// MinSupport and MinConfidence are the HAVING thresholds.
	MinSupport    float64
	MinConfidence float64
	// MaxConsequent caps rule consequent length (0 = unlimited).
	MaxConsequent int
}

// BuildQuery resolves a QuerySpec against the engine's dataset into an
// executable query.
func (e *Engine) BuildQuery(spec *QuerySpec) (*plans.Query, error) {
	reg, err := e.Index.RegionFromSelections(spec.Range)
	if err != nil {
		return nil, err
	}
	var mask []bool
	if len(spec.ItemAttrs) > 0 {
		mask = make([]bool, e.Index.Space.NumAttrs())
		for _, name := range spec.ItemAttrs {
			ai := e.Index.Dataset.AttrIndex(name)
			if ai < 0 {
				return nil, fmt.Errorf("core: unknown item attribute %q", name)
			}
			mask[ai] = true
		}
	}
	return &plans.Query{
		Region:        reg,
		ItemAttrs:     mask,
		MinSupport:    spec.MinSupport,
		MinConfidence: spec.MinConfidence,
		MaxConsequent: spec.MaxConsequent,
	}, nil
}
