// CSV mining: bring-your-own-data workflow. The example writes a small
// employee CSV with a numeric age column, loads it, discretizes the
// numeric column into intervals (the offline step the paper treats as
// orthogonal), builds the index, and mines a localized query.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"colarm"
)

const employeeCSV = `department,seniority,age,remote
engineering,senior,41,yes
engineering,junior,24,no
engineering,junior,26,no
engineering,senior,38,yes
engineering,mid,31,yes
sales,junior,23,no
sales,mid,29,no
sales,senior,45,no
sales,mid,33,no
support,junior,22,yes
support,junior,25,yes
support,mid,30,yes
support,senior,47,yes
engineering,mid,34,yes
engineering,senior,44,yes
sales,junior,27,no
support,mid,32,yes
engineering,junior,25,yes
sales,senior,42,no
support,junior,24,yes
`

func main() {
	// Write and load the CSV (stand-in for your own file).
	path := filepath.Join(os.TempDir(), "colarm-employees.csv")
	if err := os.WriteFile(path, []byte(employeeCSV), 0o644); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	ds, err := colarm.LoadCSV(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records x %d attributes from %s\n", ds.NumRecords(), ds.NumAttributes(), path)

	// Discretize the numeric age column into 3 equal-width intervals;
	// mining operates on nominal cells only.
	ds, err = ds.Discretize("age", 3, "width")
	if err != nil {
		log.Fatal(err)
	}
	ages, _ := ds.Values("age")
	fmt.Printf("age discretized into: %s\n\n", strings.Join(ages, ", "))

	eng, err := colarm.Open(ds, colarm.Options{PrimarySupport: 0.10})
	if err != nil {
		log.Fatal(err)
	}

	// Global picture.
	global, err := eng.Mine(colarm.Query{MinSupport: 0.4, MinConfidence: 0.8, MaxConsequent: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("global rules (minsupp 40%, minconf 80%):")
	for _, r := range global.Rules {
		fmt.Println(" ", r)
	}

	// Zoom into the support department. Excluding the range attribute
	// from the item attributes keeps the constant department=support
	// item out of the rule bodies.
	local, err := eng.Mine(colarm.Query{
		Range:          map[string][]string{"department": {"support"}},
		ItemAttributes: []string{"seniority", "age", "remote"},
		MinSupport:     0.6,
		MinConfidence:  0.9,
		MaxConsequent:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocalized rules for department=support (%d records, plan %s):\n",
		local.Stats.SubsetSize, local.Stats.Plan)
	for _, r := range local.Rules {
		fmt.Println(" ", r)
	}
}
