package colarm

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"colarm/internal/datagen"
)

// TestShardSoak interleaves concurrent mining, ingestion and
// consolidation on a sharded engine — the workload the collection's
// locking exists for — and checks no reader ever observes a torn
// generation. The writer swaps rebuilt engines through an atomic
// pointer while readers keep mining whichever engine they loaded; a
// full-domain query's SubsetSize equals the engine's live record
// count, so every observed size must be a count that was valid at some
// point of the (single-writer) history. A half-applied ingest, a
// consolidation serving a partially swapped index, or a catalog from a
// stale shard clock would all surface as a count outside that set, as
// a query error, or as a race-detector report. Run it with -race; the
// op budget (readers × mines + writer ops) exceeds 10k interleavings.
func TestShardSoak(t *testing.T) {
	cfg := randomDiffConfig(rand.New(rand.NewSource(20260810)), 0)
	cfg.Name = "soak"
	cfg.Records = 40
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{rel: d}
	eng, err := Open(ds, Options{PrimarySupport: 0.2, Workers: 2, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	var cur atomic.Pointer[Engine]
	cur.Store(eng)

	// Every live-record count that has ever been (or is about to
	// become) valid. The writer registers the post-op count before
	// applying the op, and ops are atomic with respect to views, so a
	// reader racing a write legitimately sees either side — both are
	// in the set. The set only grows; sizes outside it are torn reads.
	var mu sync.Mutex
	valid := map[int]bool{d.NumRecords(): true}
	sizeValid := func(n int) bool {
		mu.Lock()
		defer mu.Unlock()
		return valid[n]
	}

	const (
		readers        = 4
		minesPerReader = 2300
		writerOps      = 1000
		rebuildEvery   = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			planPool := []Plan{SEV, SSVS, SSEUV, ARM, Auto}
			for j := 0; j < minesPerReader; j++ {
				q := Query{
					MinSupport:    0.25,
					MinConfidence: 0.5,
					Plan:          planPool[rng.Intn(len(planPool))],
				}
				res, err := cur.Load().Mine(q)
				if err != nil {
					errs <- fmt.Errorf("reader %d mine %d: %w", seed, j, err)
					return
				}
				if !sizeValid(res.Stats.SubsetSize) {
					errs <- fmt.Errorf("reader %d mine %d (plan %s): torn read, subset size %d was never a live record count",
						seed, j, res.Stats.Plan, res.Stats.SubsetSize)
					return
				}
			}
		}(int64(i))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		w := eng
		totalIDs := d.NumRecords()
		deleted := make(map[int]bool)
		lastGen := w.Generation()
		for op := 0; op < writerOps; op++ {
			if op%rebuildEvery == rebuildEvery-1 {
				fresh, err := w.Rebuild(context.Background())
				if err != nil {
					errs <- fmt.Errorf("writer rebuild at op %d: %w", op, err)
					return
				}
				if g := fresh.Generation(); g != lastGen+1 {
					errs <- fmt.Errorf("writer rebuild at op %d: generation %d after %d", op, g, lastGen)
					return
				}
				lastGen = fresh.Generation()
				w = fresh
				cur.Store(fresh)
				continue
			}
			ins, _ := randomIngestBatch(rng, ds, 0, false)
			var dels []int
			for n := rng.Intn(3); n > 0; n-- {
				dels = append(dels, rng.Intn(totalIDs))
			}
			live := totalIDs - len(deleted) + len(ins)
			for _, id := range dels {
				if !deleted[id] {
					live--
				}
			}
			mu.Lock()
			valid[live] = true
			mu.Unlock()
			if _, err := w.Ingest(ins, dels); err != nil {
				errs <- fmt.Errorf("writer ingest at op %d: %w", op, err)
				return
			}
			totalIDs += len(ins)
			for _, id := range dels {
				deleted[id] = true
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
