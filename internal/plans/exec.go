package plans

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
	"colarm/internal/mip"
	"colarm/internal/obs"
	"colarm/internal/qerr"
	"colarm/internal/rtree"
	"colarm/internal/rules"
)

// CheckMode selects how the record-level support checks of ELIMINATE
// and VERIFY are executed.
type CheckMode int

const (
	// AutoCheck picks per query whichever of the two implementations
	// is cheaper for the focal subset size (default).
	AutoCheck CheckMode = iota
	// ScanCheck probes each record id of D^Q against the itemset's
	// tidset — cost proportional to |D^Q|, exactly the record-level
	// scan the paper's cost model describes (COST(E) = |{I^Q_S}|·|D^Q|).
	ScanCheck
	// BitmapCheck intersects whole tidset bitmaps — cost proportional
	// to the dataset size in words, independent of |D^Q|.
	BitmapCheck
)

func (m CheckMode) String() string {
	switch m {
	case AutoCheck:
		return "auto"
	case ScanCheck:
		return "scan"
	case BitmapCheck:
		return "bitmap"
	default:
		return fmt.Sprintf("CheckMode(%d)", int(m))
	}
}

// ParseCheckMode resolves a mode name.
func ParseCheckMode(s string) (CheckMode, error) {
	switch s {
	case "auto", "":
		return AutoCheck, nil
	case "scan":
		return ScanCheck, nil
	case "bitmap":
		return BitmapCheck, nil
	}
	return 0, fmt.Errorf("plans: unknown check mode %q (want auto, scan or bitmap)", s)
}

// Executor runs mining plans against a MIP-index.
//
// An Executor is safe for concurrent use by multiple goroutines: Run
// keeps all per-query state in a fresh context, and the index layers
// (R-tree, IT-tree, tidsets) are immutable after Build. The exported
// fields are configuration — set them before serving queries and do not
// modify them while calls are in flight.
type Executor struct {
	Idx *mip.Index
	// Mode selects the record-level support check implementation.
	Mode CheckMode
	// Workers bounds the goroutines one query fans its ELIMINATE
	// support checks and VERIFY rule generation out to: 0 means one per
	// logical CPU (GOMAXPROCS), 1 forces the serial path. Results —
	// rules and operator counters alike — are identical for every
	// worker count.
	Workers int
	// ViewSource, when non-nil, is consulted once per query for a merged
	// delta view; a nil view (no buffered transactions) keeps the query
	// on the frozen-index fast path. The source must be safe for
	// concurrent calls.
	ViewSource func() *View
	// Coll, when non-nil, is the sharded record layout behind the index.
	// Queries scatter their record-level work (SELECT, the ELIMINATE and
	// VERIFY support counts, ARM's table scan) across the shards and
	// gather by summing the per-shard counts, which is exact because the
	// slices partition the live records. With nil Coll — or a 1-shard
	// collection — execution takes the monolithic path unchanged.
	Coll Collection
}

// view resolves the per-query delta view, if any.
func (ex *Executor) view() *View {
	if ex.ViewSource == nil {
		return nil
	}
	return ex.ViewSource()
}

// Applicable reports whether the prestored CFIs can answer the query
// completely: the localized support-count threshold — minsupport over
// the focal subset of the current surface (frozen index, or merged
// delta view) — must reach the primary-support count the surface's
// CFIs were mined at. Below that bound an itemset can clear the query
// threshold inside D^Q while staying infrequent at the primary support
// globally, so no CFI records it and only ARM — mining the focal
// subset from scratch — returns the full localized answer. The
// optimizer consults this before honoring its argmin.
func (ex *Executor) Applicable(q *Query) bool {
	_, localCount, primaryCount := ex.Localized(q)
	return localCount >= primaryCount
}

// Localized exposes the applicability condition's inputs: the focal
// subset's record count over the executor's current surface, the
// localized support-count threshold it implies, and the surface's
// primary-support count. Applicable(q) is localCount >= primaryCount;
// the index advisor mines the gap between the two to size a secondary
// index that would reclaim the query.
func (ex *Executor) Localized(q *Query) (subset, localCount, primaryCount int) {
	var dq *bitset.Set
	primaryCount = ex.Idx.PrimaryCount
	if v := ex.view(); v != nil {
		dq = itemset.RegionTidset(q.Region, ex.Idx.Space, v.Tidsets, v.NumRecords)
		dq.And(v.Live)
		primaryCount = v.PrimaryCount
	} else {
		dq = ex.Idx.SubsetBitmap(q.Region)
	}
	subset = dq.Count()
	return subset, charm.CountFor(q.MinSupport, subset), primaryCount
}

// NewExecutor creates an executor over the given index.
func NewExecutor(idx *mip.Index) *Executor { return &Executor{Idx: idx} }

// Run executes the query with the chosen plan.
func (ex *Executor) Run(kind Kind, q *Query) (*Result, error) {
	return ex.RunContext(context.Background(), kind, q)
}

// RunContext executes the query with the chosen plan under a context.
// Cancellation is checked between operators and inside every operator's
// per-candidate loop (serial and parallel alike), so a cancelled or
// timed-out context aborts the query mid-ELIMINATE/VERIFY — including
// the ARM plan's from-scratch CHARM run — and returns ctx.Err() instead
// of running to completion. A query aborted by its context produces no
// partial result.
func (ex *Executor) RunContext(ctx context.Context, kind Kind, q *Query) (*Result, error) {
	if err := q.Validate(ex.Idx); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	var res *Result
	var err error
	switch kind {
	case SEV, SVS, SSEV, SSVS, SSEUV:
		res, err = ex.runMIPPlan(ctx, kind, q)
	case ARM:
		res, err = ex.runARM(ctx, q)
	default:
		return nil, errUnknownKind(kind)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.Plan = kind
	res.Stats.Duration = time.Since(start)
	rules.SortCanonical(res.Rules)
	if q.Trace != nil {
		q.Trace.Label = kind.String()
		q.Trace.Total = res.Stats.Duration
	}
	return res, nil
}

type unknownKindError Kind

func (e unknownKindError) Error() string {
	name := Kind(e).String()
	if strings.HasPrefix(name, "Kind(") {
		// Out-of-range value with no printable name.
		return fmt.Sprintf("plans: unknown plan kind %d", int(e))
	}
	return fmt.Sprintf("plans: unknown plan kind %d (%s)", int(e), name)
}

// Unwrap makes errors.Is(err, qerr.ErrUnknownPlan) recognize the error.
func (e unknownKindError) Unwrap() error { return qerr.ErrUnknownPlan }

func errUnknownKind(k Kind) error { return unknownKindError(k) }

// qctx carries the per-query state shared by the operators. One qctx
// belongs to one Run call and is never shared across queries, so its
// maps need no locking; the parallel operator sections only share the
// immutable index state and write to disjoint, pre-indexed slots.
type qctx struct {
	ex       *Executor
	q        *Query
	ctx      context.Context // the query's cancellation context
	done     <-chan struct{} // ctx.Done(), captured once (nil for Background)
	polls    int             // cancellation poll cadence counter
	mask     []bool          // item-attribute mask
	dq       *bitset.Set     // focal subset bitmap
	dqIDs    []int           // focal subset record ids (ScanCheck path)
	scan     bool            // resolved check mode for this query
	workers  int             // resolved worker count for this query
	minCount int
	st       *Stats

	// The index surface the query executes against: the frozen index, or
	// the merged delta view resolved once at query start. All counting
	// state (dq, tidsets, CFI tidsets) shares one record-id capacity.
	view    *View // nil on the frozen-index fast path
	tree    *ittree.Tree
	boxes   []itemset.Box
	tidsets []*bitset.Set
	records int // record-id capacity

	// Scatter-gather state (nil on the monolithic path). slices
	// partition the live records across K>1 shards; dqs[s] is the focal
	// subset restricted to shard s (their union is dq), and dqsIDs[s]
	// its id list in scan mode. Per-shard support counts gathered by
	// summation equal the monolithic counts exactly.
	slices []ShardSlice
	dqs    []*bitset.Set
	dqsIDs [][]int

	// localSupp caches CFI id → local support count (record-level check
	// memoization across ELIMINATE's candidate occurrences).
	localSupp map[int]int
}

// cancelled polls the query context every cancelPollStride calls (a
// non-blocking channel probe, cheap enough for the operators' serial
// per-candidate loops) and returns ctx.Err() once the context is done.
// With a Background context done is nil and the probe never fires.
func (c *qctx) cancelled() error {
	if c.done == nil {
		return nil
	}
	c.polls++
	if c.polls%cancelPollStride != 0 {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

func (ex *Executor) newCtx(ctx context.Context, q *Query) *qctx {
	c := &qctx{
		ex:        ex,
		q:         q,
		ctx:       ctx,
		done:      ctx.Done(),
		mask:      q.itemMask(ex.Idx.Space.NumAttrs()),
		workers:   ex.workers(),
		localSupp: make(map[int]int),
	}
	if v := ex.view(); v != nil {
		// Merged delta view: the same surfaces, extended over the
		// buffered record ids with tombstoned records cleared.
		c.view = v
		c.tree, c.boxes, c.tidsets, c.records = v.Tree, v.Boxes, v.Tidsets, v.NumRecords
		if len(v.Slices) > 1 {
			c.slices = v.Slices
		}
	} else {
		c.tree, c.boxes, c.tidsets = ex.Idx.ITTree, ex.Idx.Boxes, ex.Idx.Tidsets
		c.records = ex.Idx.Dataset.NumRecords()
		if ex.Coll != nil {
			if slices := ex.Coll.Slices(); len(slices) > 1 {
				c.slices = slices
			}
		}
	}
	if c.slices != nil {
		// Scattered SELECT: build the focal subset per shard from the
		// shard's own tidset slice, in parallel across the worker pool,
		// then gather by union. The slices partition the live records,
		// so the union equals the monolithic D^Q exactly.
		c.dqs = make([]*bitset.Set, len(c.slices))
		parallelFor(len(c.slices), c.workers, func(s int) {
			sl := c.slices[s]
			dq := itemset.RegionTidset(q.Region, ex.Idx.Space, sl.Items, c.records)
			dq.And(sl.Records)
			c.dqs[s] = dq
		})
		c.dq = bitset.New(c.records)
		for _, dq := range c.dqs {
			c.dq.Or(dq)
		}
	} else if c.view != nil {
		c.dq = itemset.RegionTidset(q.Region, ex.Idx.Space, c.view.Tidsets, c.records)
		// Unrestricted dimensions contribute a full bitmap; intersect
		// with the live set so tombstoned records stay out of D^Q.
		c.dq.And(c.view.Live)
	} else {
		c.dq = ex.Idx.SubsetBitmap(q.Region)
	}
	size := c.dq.Count()
	c.minCount = charm.CountFor(q.MinSupport, size)
	c.st = &Stats{SubsetSize: size, MinCount: c.minCount}
	switch ex.Mode {
	case ScanCheck:
		c.scan = true
	case BitmapCheck:
		c.scan = false
	default:
		// A scan touches one word per subset record; a bitmap
		// intersection touches every word of the universe once.
		c.scan = size <= c.records/32
	}
	if c.scan {
		c.dqIDs = c.dq.IDs()
		if c.slices != nil {
			c.dqsIDs = make([][]int, len(c.dqs))
			for s, dq := range c.dqs {
				c.dqsIDs[s] = dq.IDs()
			}
		}
	}
	return c
}

// countLocal is the record-level support check: how many records of the
// focal subset the tidset covers. In scan mode it probes each D^Q
// record id (cost ∝ |D^Q|, the paper's record-level scan); in bitmap
// mode it intersects whole bitmaps (cost ∝ dataset words).
func (c *qctx) countLocal(tids *bitset.Set) int {
	if c.scan {
		n := 0
		for _, id := range c.dqIDs {
			if tids.Contains(id) {
				n++
			}
		}
		return n
	}
	return bitset.AndCount(tids, c.dq)
}

// countLocalShard is countLocal restricted to shard s's share of the
// focal subset. The per-shard subsets partition D^Q, so summing the
// results over all shards equals countLocal exactly.
func (c *qctx) countLocalShard(tids *bitset.Set, s int) int {
	if c.scan {
		n := 0
		for _, id := range c.dqsIDs[s] {
			if tids.Contains(id) {
				n++
			}
		}
		return n
	}
	return bitset.AndCount(tids, c.dqs[s])
}

// candidate is one MIP emitted by (SUPPORTED-)SEARCH.
type candidate struct {
	id  int32
	rel itemset.Rel
}

// search runs the SEARCH (supported=false) or SUPPORTED-SEARCH
// (supported=true) operator and classifies the overlapping MIPs.
func (c *qctx) search(supported bool) ([]candidate, error) {
	tr := c.q.Trace
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	var out []candidate
	var cancelErr error
	visit := func(e rtree.Entry, rel itemset.Rel) bool {
		if err := c.cancelled(); err != nil {
			cancelErr = err
			return false
		}
		out = append(out, candidate{id: e.ID, rel: rel})
		if rel == itemset.Contained {
			c.st.Contained++
		} else {
			c.st.PartialOverlap++
		}
		return true
	}
	var st rtree.SearchStats
	if c.view != nil {
		// The R-tree indexes the pre-ingest boxes, so while a delta is
		// live SEARCH degrades to a linear classification of the merged
		// boxes. The emitted candidate set is identical to what a packed
		// R-tree over the merged boxes would emit (both are exact); only
		// the traversal cost differs, which is exactly the staleness
		// overhead the refresh policy charges per query.
		st.EntriesChecked = len(c.boxes)
		for id, box := range c.boxes {
			if err := c.cancelled(); err != nil {
				return nil, err
			}
			if supported && c.tree.Support(id) < c.minCount {
				continue
			}
			rel := c.q.Region.Relation(box)
			if rel == itemset.Disjoint {
				continue
			}
			if !visit(rtree.Entry{Box: box, ID: int32(id), Support: int32(c.tree.Support(id))}, rel) {
				break
			}
		}
	} else if supported {
		st = c.ex.Idx.RTree.SupportedSearch(c.q.Region, c.minCount, visit)
	} else {
		st = c.ex.Idx.RTree.Search(c.q.Region, visit)
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	c.st.RNodesVisited += st.NodesVisited
	c.st.REntriesChecked += st.EntriesChecked
	c.st.Candidates = len(out)
	if tr != nil {
		op := obs.OpSearch
		if supported {
			op = obs.OpSupportedSearch
		}
		tr.Record(op, time.Since(t0), -1, len(out), 1,
			fmt.Sprintf("nodes=%d entries=%d contained=%d partial=%d",
				st.NodesVisited, st.EntriesChecked, c.st.Contained, c.st.PartialOverlap))
	}
	return out, nil
}

// qualified is a candidate rule body that passed the item-attribute
// filter and the local minsupport check. body is the candidate itemset
// projected onto the item attributes and normalized to its closure's
// projection; id is the CFI acting as that body's closure (carrying its
// tidset).
type qualified struct {
	id    int32
	body  itemset.Set
	local int
}

// eliminate is the ELIMINATE operator: item-attribute filtering plus the
// record-level minsupport check for every candidate.
//
// Item-attribute semantics: a candidate CFI is projected onto the item
// attributes; the projection is normalized to the projection of its own
// closure (the "Aitem-closure"), so that the emitted rule bodies are
// exactly the closed itemsets of the item-attribute subspace that the
// index covers. When the ITEM ATTRIBUTES clause is absent the projection
// is the identity and candidates pass through unchanged. Projections of
// fewer than two items cannot form rules; they are dropped, and their
// Aitem-closures are still discovered through the closure CFI itself,
// which the search also emits (its box covers the projection's records).
//
// When containedShortcut is set (SS-E-U-V), MIPs whose bounding box is
// contained in D^Q take their global support as the local one
// (Lemma 4.5) without a record-level check.
//
// The operator runs in three phases so the expensive middle one can fan
// out across the query's workers while the result stays byte-identical
// to a serial run: (1) a serial classification pass — item-attribute
// filtering, closure normalization, dedup — that schedules each CFI
// needing a record-level check exactly once; (2) the record-level
// support checks, executed in parallel into pre-indexed slots; (3) a
// serial minsupport filter in candidate order.
func (c *qctx) eliminate(cands []candidate, containedShortcut bool) ([]qualified, error) {
	tr := c.q.Trace
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	shortcuts := 0 // contained MIPs resolved via Lemma 4.5, traced only
	sp := c.ex.Idx.Space
	seen := make(map[string]bool)
	type entry struct {
		id   int32
		body itemset.Set
	}
	entries := make([]entry, 0, len(cands))
	var checkIDs []int32 // CFI ids needing a record-level check, first-need order
	scheduled := make(map[int32]bool)
	for _, cd := range cands {
		if err := c.cancelled(); err != nil {
			return nil, err
		}
		body, all := c.tree.Items(int(cd.id)).RestrictedTo(sp, c.mask)
		if len(body) < 2 {
			c.st.ItemFiltered++
			continue
		}
		cid := cd.id
		rel := cd.rel
		if !all {
			// Normalize the projection to its Aitem-closure.
			id, ok := c.tree.ClosureID(body)
			if !ok {
				// Unreachable: a subset of a stored CFI is globally
				// frequent at the primary support by monotonicity.
				c.st.ItemFiltered++
				continue
			}
			cid = int32(id)
			body, _ = c.tree.Items(id).RestrictedTo(sp, c.mask)
			if len(body) < 2 {
				c.st.ItemFiltered++
				continue
			}
			rel = c.q.Region.Relation(c.boxes[id])
		}
		if !all {
			// Distinct CFIs are distinct bodies on the identity path;
			// only projections can collide.
			k := body.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		if containedShortcut && rel == itemset.Contained {
			// Lemma 4.5: contained box ⇒ every supporting record lies in
			// D^Q, so the global support IS the local one. (A cid already
			// scheduled for a check keeps the check; both produce the
			// same value, so the counters stay order-faithful.)
			c.localSupp[int(cid)] = c.tree.Support(int(cid))
			shortcuts++
		} else if _, done := c.localSupp[int(cid)]; !done && !scheduled[cid] {
			scheduled[cid] = true
			checkIDs = append(checkIDs, cid)
		}
		entries = append(entries, entry{id: cid, body: body})
	}

	// Record-level checks, fanned out. Each distinct CFI is checked once
	// (the serial path's memoization), so SupportChecks is identical for
	// every worker count. On a sharded engine the fan-out is finer —
	// one work item per (CFI, shard) pair — and the gather sums the
	// per-shard partial counts, which equals the monolithic check
	// because the shard subsets partition D^Q; SupportChecks still
	// counts logical checks (one per CFI), keeping the counters
	// byte-identical to the monolithic run.
	c.st.SupportChecks += len(checkIDs)
	counts := make([]int, len(checkIDs))
	var used int
	var err error
	if c.slices != nil {
		k := len(c.slices)
		partial := make([]int, len(checkIDs)*k)
		used, err = parallelForCtx(c.ctx, len(partial), c.workers, func(j int) {
			partial[j] = c.countLocalShard(c.tree.Tids(int(checkIDs[j/k])), j%k)
		})
		if err != nil {
			return nil, err
		}
		for i := range counts {
			n := 0
			for s := 0; s < k; s++ {
				n += partial[i*k+s]
			}
			counts[i] = n
		}
	} else {
		used, err = parallelForCtx(c.ctx, len(checkIDs), c.workers, func(i int) {
			counts[i] = c.countLocal(c.tree.Tids(int(checkIDs[i])))
		})
		if err != nil {
			return nil, err
		}
	}
	for i, id := range checkIDs {
		c.localSupp[int(id)] = counts[i]
	}

	// For SS-E-U-V the minsupport filter below is the UNION operator:
	// the stream of contained MIPs (resolved without a check) merges
	// with the checked partially-overlapped survivors. Trace it as its
	// own span there; otherwise it is part of ELIMINATE.
	var t1 time.Time
	if tr != nil && containedShortcut {
		t1 = time.Now()
		tr.Record(obs.OpEliminate, t1.Sub(t0), len(cands), len(entries), used,
			fmt.Sprintf("filtered=%d checks=%d shortcut=%d", c.st.ItemFiltered, len(checkIDs), shortcuts))
	}

	// Minsupport filter, in candidate order.
	var out []qualified
	for _, e := range entries {
		local := c.localSupp[int(e.id)]
		if local < c.minCount {
			c.st.Eliminated++
			continue
		}
		out = append(out, qualified{id: e.id, body: e.body, local: local})
	}
	c.st.Qualified = len(out)
	if tr != nil {
		if containedShortcut {
			tr.Record(obs.OpUnion, time.Since(t1), len(entries), len(out), 1,
				fmt.Sprintf("eliminated=%d", c.st.Eliminated))
		} else {
			tr.Record(obs.OpEliminate, time.Since(t0), len(cands), len(out), used,
				fmt.Sprintf("filtered=%d checks=%d eliminated=%d",
					c.st.ItemFiltered, len(checkIDs), c.st.Eliminated))
		}
	}
	return out, nil
}

// countItems is the record-level support check of an arbitrary itemset
// within D^Q — the VERIFY oracle's compute step. The count runs
// directly against the per-item tidsets: in scan mode, |D^Q| record
// probes with at most C_X tidset tests each, which is exactly the
// paper's COST(V) record-level term (Σ C_i · |D^Q|); in bitmap mode, a
// whole-bitmap intersection. Reads only immutable index state plus the
// query's frozen dqIDs/dq, so it is safe from concurrent workers.
func (c *qctx) countItems(x itemset.Set) int {
	tidsets := c.tidsets
	if c.scan {
		s := 0
		for _, id := range c.dqIDs {
			hit := true
			for _, it := range x {
				if !tidsets[it].Contains(id) {
					hit = false
					break
				}
			}
			if hit {
				s++
			}
		}
		return s
	}
	if c.slices != nil {
		// Scatter-gather: intersect within each shard's slice and sum.
		// The sum equals the monolithic intersection count because the
		// shard subsets partition D^Q — this is the summed-counts form
		// VERIFY's confidence ratios are recomputed from on a sharded
		// engine.
		total := 0
		for s, sl := range c.slices {
			acc := bitset.Intersect(c.dqs[s], sl.Items[x[0]])
			for _, it := range x[1:] {
				acc.And(sl.Items[it])
			}
			total += acc.Count()
		}
		return total
	}
	acc := bitset.Intersect(c.dq, tidsets[x[0]])
	for _, it := range x[1:] {
		acc.And(tidsets[it])
	}
	return acc.Count()
}

// oracle returns the serial local-support oracle VERIFY hands to the
// rule generator, memoized per itemset so repeated antecedents and
// singleton consequents are free.
func (c *qctx) oracle() rules.SupportOracle {
	cache := make(map[string]int)
	return func(x itemset.Set) int {
		c.st.OracleCalls++
		if len(x) == 0 {
			return -1
		}
		key := x.Key()
		if s, ok := cache[key]; ok {
			return s
		}
		c.st.OracleMisses++
		c.st.SupportChecks++
		s := c.countItems(x)
		cache[key] = s
		return s
	}
}

// sharedOracle is oracle's concurrent counterpart: the memo is sharded,
// each shard computes under its lock so every distinct itemset key is
// counted as exactly one miss/check — the same totals the serial memo
// reports — and the counters accumulate in the tally for a
// deterministic post-join fold into Stats.
func (c *qctx) sharedOracle(cache *shardedCounts, t *counterTally) rules.SupportOracle {
	return func(x itemset.Set) int {
		atomic.AddInt64(&t.oracleCalls, 1)
		if len(x) == 0 {
			return -1
		}
		s, fresh := cache.get(x.Key(), func() int { return c.countItems(x) })
		if fresh {
			atomic.AddInt64(&t.oracleMisses, 1)
			atomic.AddInt64(&t.supportChecks, 1)
		}
		return s
	}
}

// verify is the VERIFY operator: rule generation plus minconfidence
// checks for every qualified itemset. Itemsets are independent — the
// only coupling is the oracle memo — so generation fans out across the
// query's workers, each itemset's rules landing in its own slot; the
// slots are concatenated in qualification order, making the output
// (after the dedup that serial verify performs anyway) byte-identical
// to a serial run.
func (c *qctx) verify(quals []qualified) ([]rules.Rule, error) {
	tr := c.q.Trace
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	oc0, om0 := c.st.OracleCalls, c.st.OracleMisses
	used := 1
	var out []rules.Rule
	if c.workers <= 1 || len(quals) < 2 {
		oracle := c.oracle()
		for _, ql := range quals {
			if err := c.cancelled(); err != nil {
				return nil, err
			}
			rs := rules.Generate(ql.body, ql.local, c.st.SubsetSize, c.q.MinConfidence,
				oracle, rules.Options{MaxConsequent: c.q.MaxConsequent})
			out = append(out, rs...)
		}
	} else {
		var tally counterTally
		oracle := c.sharedOracle(newShardedCounts(), &tally)
		per := make([][]rules.Rule, len(quals))
		var err error
		used, err = parallelForCtx(c.ctx, len(quals), c.workers, func(i int) {
			per[i] = rules.Generate(quals[i].body, quals[i].local, c.st.SubsetSize,
				c.q.MinConfidence, oracle, rules.Options{MaxConsequent: c.q.MaxConsequent})
		})
		if err != nil {
			return nil, err
		}
		tally.addTo(c.st)
		for _, rs := range per {
			out = append(out, rs...)
		}
	}
	out = rules.Dedupe(out)
	c.st.RulesEmitted = len(out)
	if tr != nil {
		tr.Record(obs.OpVerify, time.Since(t0), len(quals), len(out), used,
			fmt.Sprintf("oracle=%d misses=%d", c.st.OracleCalls-oc0, c.st.OracleMisses-om0))
	}
	return out, nil
}

// runMIPPlan executes the five MIP-index-based plans, which share the
// operator skeleton and differ in the SEARCH variant, the batching of
// the support check, and the contained-MIP shortcut.
func (ex *Executor) runMIPPlan(ctx context.Context, kind Kind, q *Query) (*Result, error) {
	c := ex.newCtx(ctx, q)
	if c.st.SubsetSize == 0 {
		return &Result{Stats: *c.st}, nil
	}
	supported := kind == SSEV || kind == SSVS || kind == SSEUV
	cands, err := c.search(supported)
	if err != nil {
		return nil, err
	}

	var quals []qualified
	switch kind {
	case SEV, SSEV:
		// Separate ELIMINATE pass, then VERIFY.
		quals, err = c.eliminate(cands, false)
	case SVS, SSVS:
		// SUPPORTED-VERIFY: the support check is interleaved with rule
		// generation; in this in-memory realization the work is the
		// same as ELIMINATE's, only unbatched (no separate candidate
		// list materialization).
		quals, err = c.eliminate(cands, false)
	case SSEUV:
		// Differential treatment: contained MIPs skip the record-level
		// check entirely and meet the partially overlapped survivors at
		// the UNION operator.
		quals, err = c.eliminate(cands, true)
	}
	if err != nil {
		return nil, err
	}
	rs, err := c.verify(quals)
	if err != nil {
		return nil, err
	}
	res := &Result{Rules: rs, Stats: *c.st}
	return res, nil
}
