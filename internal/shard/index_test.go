package shard

import (
	"testing"

	"colarm/internal/datagen"
	"colarm/internal/mip"
)

// TestShardIndexLifecycle pins the per-shard physical index cache: the
// first scatter-mode view builds every shard's index and fires the
// rebuild hook once per shard; a later ingest touching one shard
// invalidates only that shard's cache, so the next view rebuilds the
// drifted shard and keeps serving the clean shards' published indexes
// unchanged (same pointers). Stats and hook timings must agree with
// the cached indexes, and every index must pass physical validation.
func TestShardIndexLifecycle(t *testing.T) {
	d := datagen.Salary()
	idx, err := mip.Build(d, mip.Options{PrimarySupport: 0.18, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	c := New(idx, Config{
		Shards:  k,
		Catalog: CatalogScatter,
		Primary: 0.18,
		MIP:     mip.Options{PrimarySupport: 0.18, Fanout: 4},
		Workers: 1,
	})

	type rebuild struct {
		shard int
		nanos int64
	}
	var fired []rebuild
	c.SetRebuildHook(func(shard int, buildNanos int64) {
		fired = append(fired, rebuild{shard, buildNanos})
	})

	// Age the collection so a merged view exists, then force it.
	row := make([]int32, d.NumAttrs())
	for a := range row {
		row[a] = int32(d.Value(0, a))
	}
	if _, err := c.Ingest([][]int32{row}, nil); err != nil {
		t.Fatal(err)
	}
	if v := c.View(); v == nil {
		t.Fatal("aged collection returned no merged view")
	}

	if len(fired) != k {
		t.Fatalf("first view fired the rebuild hook %d times, want once per shard (%d)", len(fired), k)
	}
	first := c.Indexes()
	if len(first) != k {
		t.Fatalf("Indexes() returned %d entries, want %d", len(first), k)
	}
	stats := c.ShardStats()
	for s, si := range first {
		if si == nil {
			t.Fatalf("shard %d has no cached index after a scatter view", s)
		}
		if si.BuildNanos <= 0 {
			t.Errorf("shard %d index reports non-positive build time %d", s, si.BuildNanos)
		}
		if err := si.Validate(idx.Space, func(r, a int) int {
			if r < d.NumRecords() {
				return d.Value(r, a)
			}
			return int(row[a])
		}); err != nil {
			t.Errorf("shard %d index fails validation: %v", s, err)
		}
		if stats[s].IndexedCFIs != si.Tree.Size() {
			t.Errorf("shard %d stat reports %d indexed CFIs, cached index holds %d",
				s, stats[s].IndexedCFIs, si.Tree.Size())
		}
		if stats[s].IndexBuildNanos != si.BuildNanos {
			t.Errorf("shard %d stat reports build time %d, cached index %d",
				s, stats[s].IndexBuildNanos, si.BuildNanos)
		}
	}

	// Tombstone one base record: exactly one shard clock ticks. The
	// next view must rebuild only shards whose cache key moved — the
	// drifted shard always, a clean shard only if the frequent-item
	// universe shifted under it (then its key changed too).
	victim := 3
	drifted := c.Router().Of(victim)
	fired = nil
	if _, err := c.Ingest(nil, []int{victim}); err != nil {
		t.Fatal(err)
	}
	if v := c.View(); v == nil {
		t.Fatal("collection lost its merged view after the delete")
	}
	rebuiltShards := map[int]bool{}
	for _, rb := range fired {
		rebuiltShards[rb.shard] = true
	}
	if !rebuiltShards[drifted] {
		t.Errorf("shard %d drifted (delete of record %d) but was not rebuilt", drifted, victim)
	}
	second := c.Indexes()
	for s := range second {
		if rebuiltShards[s] {
			if second[s] == first[s] {
				t.Errorf("shard %d fired the rebuild hook but still serves the old index", s)
			}
			continue
		}
		if second[s] != first[s] {
			t.Errorf("clean shard %d was silently re-indexed (pointer changed without the hook firing)", s)
		}
		if second[s].UKey != second[drifted].UKey {
			t.Errorf("shard %d cache kept universe %q while the drifted shard moved to %q",
				s, second[s].UKey, second[drifted].UKey)
		}
	}
}
