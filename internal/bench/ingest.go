package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"colarm/internal/core"
	"colarm/internal/plans"
)

// IngestResult summarizes one mixed read/write run: a read workload
// replayed against a fresh engine, then replayed again while a writer
// streams ingest batches into the delta store (the stale regime the
// refresh policy prices), and once more after the cost-based rebuild.
// The three read-latency columns make the staleness tax and the rebuild
// payoff directly visible next to the policy's own overhead estimate.
type IngestResult struct {
	Dataset string
	Clients int

	Reads   int // read queries per phase
	Batches int // ingest batches applied in the mixed phase
	Rows    int // rows ingested
	Deletes int // tombstones written

	// Read latencies per phase: fresh index, index+delta, rebuilt index.
	FreshP50, FreshP99     time.Duration
	StaleP50, StaleP99     time.Duration
	RebuiltP50, RebuiltP99 time.Duration
	// Write (ingest batch) latencies during the mixed phase.
	WriteP50, WriteP99 time.Duration

	// Refresh-policy state after the mixed phase, and the measured cost
	// of the rebuild it prices.
	BufferedRows       int
	Tombstones         int
	Overhead           time.Duration
	RebuildCost        time.Duration
	RebuildRecommended bool
	RebuildDuration    time.Duration
}

// RunIngestMix measures the live-ingestion regime end to end. Three
// phases over one engine:
//
//  1. baseline — clients goroutines replay a pre-generated read
//     workload against the fresh index;
//  2. mixed — the identical read workload replays while one writer
//     applies `batches` ingest batches of `batchRows` rows (sampled
//     from the base dataset, with occasional tombstone deletes), so
//     reads pay the merged base+delta view;
//  3. rebuilt — the delta is folded into a fresh index (timed) and the
//     read workload replays once more against it.
//
// Regions are built against the frozen item space, which ingestion
// preserves, so the same queries are valid in every phase.
func (e *Env) RunIngestMix(clients, perClient, batches, batchRows int, minSupp, minConf float64, seed int64) (IngestResult, error) {
	if clients < 1 || perClient < 1 || batches < 1 || batchRows < 1 {
		return IngestResult{}, fmt.Errorf("bench: clients (%d), reads per client (%d), batches (%d) and batch rows (%d) must be positive",
			clients, perClient, batches, batchRows)
	}
	rng := rand.New(rand.NewSource(seed))
	total := clients * perClient
	queries := make([]*plans.Query, total)
	for i := range queries {
		frac := e.Spec.DQFracs[i%len(e.Spec.DQFracs)]
		queries[i] = e.QueryFor(e.RandomFocalSubset(rng, frac), minSupp, minConf)
	}
	// Untimed warm-up, as in the concurrent-clients benchmark.
	if _, _, err := e.Engine.Mine(queries[0]); err != nil {
		return IngestResult{}, err
	}

	res := IngestResult{Dataset: e.Spec.Name, Clients: clients, Reads: total, Batches: batches}

	fresh, err := replayReads(e.Engine, queries, clients, nil)
	if err != nil {
		return IngestResult{}, err
	}
	res.FreshP50, res.FreshP99 = percentile(fresh, 50), percentile(fresh, 99)

	// Mixed phase: the writer streams batches while readers replay. The
	// writer samples rows from the base dataset (the frozen vocabulary
	// guarantees they are valid) and tombstones a few base records.
	wrng := rand.New(rand.NewSource(seed + 1))
	writer := func() error {
		writeLat := make([]time.Duration, 0, batches)
		deleted := make(map[int]bool)
		for b := 0; b < batches; b++ {
			rows := make([][]int32, batchRows)
			for i := range rows {
				r := wrng.Intn(e.Dataset.NumRecords())
				row := make([]int32, e.Dataset.NumAttrs())
				for a := range row {
					row[a] = int32(e.Dataset.Value(r, a))
				}
				rows[i] = row
			}
			var dels []int
			if wrng.Intn(2) == 0 {
				id := wrng.Intn(e.Dataset.NumRecords())
				if !deleted[id] {
					deleted[id] = true
					dels = append(dels, id)
				}
			}
			t0 := time.Now()
			if _, err := e.Engine.Ingest(rows, dels); err != nil {
				return err
			}
			writeLat = append(writeLat, time.Since(t0))
			res.Rows += batchRows
			res.Deletes += len(dels)
		}
		sort.Slice(writeLat, func(i, j int) bool { return writeLat[i] < writeLat[j] })
		res.WriteP50, res.WriteP99 = percentile(writeLat, 50), percentile(writeLat, 99)
		return nil
	}
	stale, err := replayReads(e.Engine, queries, clients, writer)
	if err != nil {
		return IngestResult{}, err
	}
	res.StaleP50, res.StaleP99 = percentile(stale, 50), percentile(stale, 99)

	st := e.Engine.Staleness()
	res.BufferedRows, res.Tombstones = st.BufferedRows, st.Tombstones
	res.Overhead = st.Overhead
	res.RebuildCost = st.RebuildCost
	res.RebuildRecommended = st.RebuildRecommended

	t0 := time.Now()
	rebuilt, err := e.Engine.Rebuild(context.Background())
	if err != nil {
		return IngestResult{}, err
	}
	res.RebuildDuration = time.Since(t0)

	after, err := replayReads(rebuilt, queries, clients, nil)
	if err != nil {
		return IngestResult{}, err
	}
	res.RebuiltP50, res.RebuiltP99 = percentile(after, 50), percentile(after, 99)
	return res, nil
}

// replayReads runs the read workload from `clients` goroutines against
// eng, optionally racing a writer goroutine, and returns the sorted
// read latencies.
func replayReads(eng *core.Engine, queries []*plans.Query, clients int, writer func() error) ([]time.Duration, error) {
	perClient := len(queries) / clients
	latencies := make([]time.Duration, len(queries))
	errs := make([]error, clients+1)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				i := cl*perClient + j
				t0 := time.Now()
				if _, _, err := eng.Mine(queries[i]); err != nil {
					errs[cl] = err
					return
				}
				latencies[i] = time.Since(t0)
			}
		}(cl)
	}
	if writer != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[clients] = writer()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return latencies, nil
}

// PrintIngest renders one dataset's mixed read/write run.
func PrintIngest(w io.Writer, res IngestResult) {
	fmt.Fprintf(w, "\nIngest mix — %s (%d readers, %d reads/phase; %d batches, %d rows, %d deletes):\n",
		res.Dataset, res.Clients, res.Reads, res.Batches, res.Rows, res.Deletes)
	fmt.Fprintf(w, "  %-22s %12s %12s\n", "phase", "read p50", "read p99")
	fmt.Fprintf(w, "  %-22s %12s %12s\n", "fresh index", res.FreshP50.Round(time.Microsecond), res.FreshP99.Round(time.Microsecond))
	fmt.Fprintf(w, "  %-22s %12s %12s\n", "stale (base+delta)", res.StaleP50.Round(time.Microsecond), res.StaleP99.Round(time.Microsecond))
	fmt.Fprintf(w, "  %-22s %12s %12s\n", "rebuilt", res.RebuiltP50.Round(time.Microsecond), res.RebuiltP99.Round(time.Microsecond))
	fmt.Fprintf(w, "  ingest batch latency p50 %s, p99 %s\n",
		res.WriteP50.Round(time.Microsecond), res.WriteP99.Round(time.Microsecond))
	verdict := "below break-even"
	if res.RebuildRecommended {
		verdict = "rebuild recommended"
	}
	fmt.Fprintf(w, "  refresh policy: %d buffered rows, %d tombstones; overhead %s vs rebuild cost %s (%s)\n",
		res.BufferedRows, res.Tombstones, res.Overhead.Round(time.Microsecond), res.RebuildCost.Round(time.Microsecond), verdict)
	fmt.Fprintf(w, "  offline rebuild took %s\n", res.RebuildDuration.Round(time.Millisecond))
}
