package obs

import "sync/atomic"

// Gauge is a metric that can go up and down — the current size of
// something (active subscriptions, open streams) rather than a
// cumulative total. A single atomic word, safe for any number of
// concurrent movers.
type Gauge struct {
	name   string
	labels string
	help   string
	v      atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, "", help)
}

// GaugeWith registers (or returns) a gauge with rendered label pairs.
func (r *Registry) GaugeWith(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "{" + labels + "}"
	if m, ok := r.byKey[key]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic("obs: metric " + key + " already registered as a different type")
		}
		return g
	}
	g := &Gauge{name: name, labels: labels, help: help}
	r.byKey[key] = g
	r.order = append(r.order, g)
	return g
}
