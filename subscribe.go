package colarm

import (
	"colarm/internal/delta"
)

// ApplyNotice reports one accepted ingest batch to apply observers
// registered with Engine.Subscribe: the version-clock interval the
// batch covered and — through Affects — whether the batch can have
// changed a given localized query's rule set.
type ApplyNotice struct {
	// Generation is the engine generation the batch applied to.
	Generation uint64
	// FromVersion and ToVersion delimit the delta version-clock
	// interval the batch covers (ToVersion = FromVersion + 1).
	FromVersion, ToVersion uint64

	rows [][]int32
	eng  *Engine
}

// NumRows reports how many record tuples the batch changed (inserted
// rows plus deleted rows).
func (n ApplyNotice) NumRows() int { return len(n.rows) }

// Affects reports whether the batch can have changed q's localized
// rule set: whether any inserted or deleted record lies inside q's
// focal region. Localized rules are computed entirely within the focal
// subset, so a batch that neither adds a record to the subset nor
// removes one from it leaves the rule set — supports, confidences and
// all derived measures — bit-for-bit unchanged; callers use this as
// the incremental gate that skips re-mining for untouched regions.
// The error mirrors Mine's validation (unknown attributes or values).
func (n ApplyNotice) Affects(q Query) (bool, error) {
	pq, err := n.eng.buildQuery(q)
	if err != nil {
		return false, err
	}
	point := make([]int, n.eng.ds.rel.NumAttrs())
	for _, row := range n.rows {
		for a, v := range row {
			point[a] = int(v)
		}
		if pq.Region.ContainsPoint(point) {
			return true, nil
		}
	}
	return false, nil
}

// Subscribe registers fn to observe every subsequently accepted ingest
// batch on this engine. The callback runs synchronously on the
// ingesting goroutine immediately after the batch applies — it must
// return quickly and must not call back into the engine (Mine,
// RuleDiff, Ingest) directly; hand the notice to a worker goroutine
// that does the mining, as the standing-query subscription manager
// does. The returned cancel removes the observer; notices never arrive
// after cancel returns on the registering goroutine's side of the
// usual memory-model caveats. A rebuilt engine starts with no
// observers — re-subscribe after swapping engines.
func (e *Engine) Subscribe(fn func(ApplyNotice)) (cancel func()) {
	return e.eng.Delta.Observe(func(ap delta.Applied) {
		fn(ApplyNotice{
			Generation:  e.gen,
			FromVersion: ap.FromVersion,
			ToVersion:   ap.ToVersion,
			rows:        ap.Rows,
			eng:         e,
		})
	})
}

// Version returns the engine's current delta version-clock reading
// (0 when no post-build batch has applied). Together with Generation
// it locates the engine's state on the (generation, version) timeline
// that standing-query diff events are tagged with.
func (e *Engine) Version() uint64 { return e.eng.Staleness().Version }
