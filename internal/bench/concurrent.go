package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"colarm/internal/plans"
)

// ConcurrentResult summarizes one concurrent-clients run: a fixed
// workload of localized mining queries replayed from `Clients`
// goroutines against a shared engine, with the executor's intra-query
// worker pool set to `Workers`. It is the serving-side measurement the
// paper's per-query figures do not cover: throughput and tail latency
// under the many-users regime COLARM targets.
type ConcurrentResult struct {
	Dataset string
	Clients int
	Workers int // executor Workers setting (0 = GOMAXPROCS)
	Queries int // total queries executed

	Wall       time.Duration
	Throughput float64 // queries per second
	P50        time.Duration
	P99        time.Duration
	Max        time.Duration
}

// RunConcurrentClients replays clients×perClient queries — pre-generated
// serially from rng so every configuration sees the identical workload —
// from `clients` goroutines against the shared engine, with the
// executor's worker pool set to `workers`. Each query runs through the
// cost-based optimizer exactly as a production caller would. Latencies
// are recorded per query; the result reports wall-clock throughput and
// the p50/p99/max latency of the run.
func (e *Env) RunConcurrentClients(clients, perClient, workers int, minSupp, minConf float64, rng *rand.Rand) (ConcurrentResult, error) {
	if clients < 1 || perClient < 1 {
		return ConcurrentResult{}, fmt.Errorf("bench: clients (%d) and queries per client (%d) must be positive", clients, perClient)
	}
	total := clients * perClient
	queries := make([]*plans.Query, total)
	for i := range queries {
		frac := e.Spec.DQFracs[i%len(e.Spec.DQFracs)]
		queries[i] = e.QueryFor(e.RandomFocalSubset(rng, frac), minSupp, minConf)
	}

	prev := e.Engine.Executor.Workers
	e.Engine.Executor.Workers = workers
	defer func() { e.Engine.Executor.Workers = prev }()

	// Untimed warm-up so the first configuration measured is not
	// penalized for faulting in the index and allocator arenas.
	if _, _, err := e.Engine.Mine(queries[0]); err != nil {
		return ConcurrentResult{}, err
	}

	latencies := make([]time.Duration, total)
	errors := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				i := cl*perClient + j
				t0 := time.Now()
				if _, _, err := e.Engine.Mine(queries[i]); err != nil {
					errors[cl] = err
					return
				}
				latencies[i] = time.Since(t0)
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errors {
		if err != nil {
			return ConcurrentResult{}, err
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return ConcurrentResult{
		Dataset:    e.Spec.Name,
		Clients:    clients,
		Workers:    workers,
		Queries:    total,
		Wall:       wall,
		Throughput: float64(total) / wall.Seconds(),
		P50:        percentile(latencies, 50),
		P99:        percentile(latencies, 99),
		Max:        latencies[len(latencies)-1],
	}, nil
}

// percentile returns the p-th percentile of sorted latencies
// (nearest-rank method).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i < 1 {
		i = 1
	}
	return sorted[i-1]
}

// ConcurrencyMatrix runs the standard serving-mode comparison for one
// environment: a serial baseline (one client, one worker), intra-query
// parallelism alone (one client, full worker pool), inter-query
// concurrency alone (many clients, serial executor), and both combined.
// perClient fixes the per-configuration query count so all rows replay
// equally sized workloads; seed fixes the workload generator.
func (e *Env) ConcurrencyMatrix(clients, perClient int, minSupp, minConf float64, seed int64) ([]ConcurrentResult, error) {
	configs := []struct{ clients, workers int }{
		{1, 1},
		{1, 0},
		{clients, 1},
		{clients, 0},
	}
	var out []ConcurrentResult
	for _, cfg := range configs {
		// Fresh rng per row: identical workload for every configuration.
		rng := rand.New(rand.NewSource(seed))
		per := clients * perClient / cfg.clients // equal total per row
		res, err := e.RunConcurrentClients(cfg.clients, per, cfg.workers, minSupp, minConf, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
