package colarm_test

// Benchmarks regenerating the paper's evaluation artifacts (see
// DESIGN.md §5 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured discussion):
//
//	BenchmarkFig8*            E1: CFI mining across primary thresholds
//	BenchmarkFig9Chess        E2: plan costs on chess
//	BenchmarkFig10Mushroom    E3: plan costs on mushroom
//	BenchmarkFig11PUMSB       E4: plan costs on PUMSB
//	BenchmarkOptimizerChoose  E5: plan-selection latency
//	BenchmarkFig13*           E7: local-vs-global CFI classification
//	BenchmarkRTree*           A1: packing-scheme ablation
//	BenchmarkCheckMode*       A2: scan vs bitmap record checks
//	BenchmarkIndexBuild       offline phase
//
// Each benchmark uses the reduced-profile datasets so the suite
// completes in minutes; `cmd/colarm-bench -full` runs the paper-scale
// configuration.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"colarm"
	"colarm/internal/bench"
	"colarm/internal/charm"
	"colarm/internal/datagen"
	"colarm/internal/itemset"
	"colarm/internal/plans"
	"colarm/internal/rtree"
)

var (
	envOnce  sync.Once
	envCache map[string]*bench.Env
)

func benchEnv(b *testing.B, name string) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		envCache = map[string]*bench.Env{}
		for _, spec := range bench.Specs(false, 1) {
			env, err := bench.Setup(spec)
			if err != nil {
				panic(err)
			}
			envCache[spec.Name] = env
		}
	})
	env, ok := envCache[name]
	if !ok {
		b.Fatalf("no benchmark environment %q", name)
	}
	return env
}

// BenchmarkFig8 mines the closed frequent itemsets at each dataset's
// lowest swept primary threshold — the expensive end of the Figure 8
// curve (E1).
func BenchmarkFig8(b *testing.B) {
	for _, name := range []string{"chess", "mushroom", "pumsb"} {
		b.Run(name, func(b *testing.B) {
			env := benchEnv(b, name)
			th := env.Spec.Fig8Sweep[len(env.Spec.Fig8Sweep)-1]
			sp := env.Engine.Index.Space
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := charm.MineSupport(env.Dataset, sp, th)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Closed) == 0 {
					b.Fatal("no CFIs")
				}
			}
		})
	}
}

// planGrid benchmarks one dataset's Figures 9-11 grid: every plan at
// every focal-subset size, at the dataset's middle minsupport.
func planGrid(b *testing.B, dataset string) {
	env := benchEnv(b, dataset)
	minSupp := env.Spec.MinSupps[len(env.Spec.MinSupps)/2]
	for _, frac := range env.Spec.DQFracs {
		for _, kind := range plans.Kinds() {
			b.Run(fmt.Sprintf("dq=%.0f%%/plan=%s", 100*frac, kind), func(b *testing.B) {
				rng := rand.New(rand.NewSource(7))
				regions := make([]*itemset.Region, 4)
				for i := range regions {
					regions[i] = env.RandomFocalSubset(rng, frac)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := env.QueryFor(regions[i%len(regions)], minSupp, 0.85)
					if _, err := env.Engine.Executor.Run(kind, q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig9Chess(b *testing.B)     { planGrid(b, "chess") }
func BenchmarkFig10Mushroom(b *testing.B) { planGrid(b, "mushroom") }
func BenchmarkFig11PUMSB(b *testing.B)    { planGrid(b, "pumsb") }

// BenchmarkOptimizerChoose measures the cost of a COLARM plan-selection
// decision — the constant-time estimation the paper's online optimizer
// performs per query (E5's mechanism).
func BenchmarkOptimizerChoose(b *testing.B) {
	for _, name := range []string{"chess", "pumsb"} {
		b.Run(name, func(b *testing.B) {
			env := benchEnv(b, name)
			rng := rand.New(rand.NewSource(11))
			regions := make([]*itemset.Region, 8)
			for i := range regions {
				regions[i] = env.RandomFocalSubset(rng, 0.2)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := env.QueryFor(regions[i%len(regions)], env.Spec.MinSupps[0], 0.85)
				env.Engine.Model.Choose(q)
			}
		})
	}
}

// BenchmarkFig13 measures the local-vs-global CFI classification pass
// (E7) at the 10% focal-subset size.
func BenchmarkFig13(b *testing.B) {
	for _, name := range []string{"chess", "mushroom"} {
		b.Run(name, func(b *testing.B) {
			env := benchEnv(b, name)
			saved := env.Spec.DQFracs
			env.Spec.DQFracs = []float64{0.10}
			defer func() { env.Spec.DQFracs = saved }()
			rng := rand.New(rand.NewSource(13))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows := env.RunLocalVsGlobal(1, rng)
				if len(rows) != 1 {
					b.Fatal("unexpected row count")
				}
			}
		})
	}
}

// BenchmarkIndexBuild measures the one-time offline preprocessing phase
// (CHARM + MIP boxes + packed supported R-tree).
func BenchmarkIndexBuild(b *testing.B) {
	for _, name := range []string{"chess", "mushroom"} {
		b.Run(name, func(b *testing.B) {
			spec, err := bench.SpecByName(bench.Specs(false, 1), name)
			if err != nil {
				b.Fatal(err)
			}
			d, err := datagen.Generate(spec.Config)
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			if err := d.WriteCSV(&buf); err != nil {
				b.Fatal(err)
			}
			ds, err := colarm.ReadCSV(name, bytes.NewReader(buf.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env, err := colarm.Open(ds, colarm.Options{PrimarySupport: spec.Primary})
				if err != nil {
					b.Fatal(err)
				}
				if env.NumPartitions() == 0 {
					b.Fatal("empty index")
				}
			}
		})
	}
}

// BenchmarkRTreePacking is ablation A1: build and search cost of the
// MIP R-tree under STR packing, Morton packing, and dynamic insertion.
func BenchmarkRTreePacking(b *testing.B) {
	env := benchEnv(b, "chess")
	idx := env.Engine.Index
	entries := make([]rtree.Entry, idx.NumMIPs())
	for id := range entries {
		entries[id] = rtree.Entry{
			Box:     idx.Boxes[id],
			ID:      int32(id),
			Support: int32(idx.ITTree.Set(id).Support),
		}
	}
	dims := idx.Space.NumAttrs()

	build := func(b *testing.B, f func() *rtree.Tree) {
		var tr *rtree.Tree
		for i := 0; i < b.N; i++ {
			tr = f()
		}
		if tr.Size() != len(entries) {
			b.Fatal("bad tree size")
		}
	}
	b.Run("build/str", func(b *testing.B) {
		build(b, func() *rtree.Tree {
			tr, err := rtree.Bulk(append([]rtree.Entry(nil), entries...), dims, 0, rtree.STRPacking, idx.Cards)
			if err != nil {
				b.Fatal(err)
			}
			return tr
		})
	})
	b.Run("build/morton", func(b *testing.B) {
		build(b, func() *rtree.Tree {
			tr, err := rtree.Bulk(append([]rtree.Entry(nil), entries...), dims, 0, rtree.MortonPacking, idx.Cards)
			if err != nil {
				b.Fatal(err)
			}
			return tr
		})
	})
	b.Run("build/insert", func(b *testing.B) {
		build(b, func() *rtree.Tree {
			tr, err := rtree.New(dims, 0, rtree.QuadraticSplit)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range entries {
				if err := tr.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
			return tr
		})
	})

	// Search latency per packing.
	rng := rand.New(rand.NewSource(17))
	regions := make([]*itemset.Region, 8)
	for i := range regions {
		regions[i] = env.RandomFocalSubset(rng, 0.2)
	}
	for _, packing := range []rtree.Packing{rtree.STRPacking, rtree.MortonPacking} {
		tr, err := rtree.Bulk(append([]rtree.Entry(nil), entries...), dims, 0, packing, idx.Cards)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("search/"+packing.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				tr.Search(regions[i%len(regions)], func(rtree.Entry, itemset.Rel) bool {
					n++
					return true
				})
			}
		})
	}
}

// BenchmarkCheckMode is ablation A2: the record-level support check as
// a |D^Q| record scan vs a whole-bitmap intersection, across subset
// sizes — the tradeoff AutoCheck arbitrates.
func BenchmarkCheckMode(b *testing.B) {
	env := benchEnv(b, "mushroom")
	rng := rand.New(rand.NewSource(19))
	for _, frac := range []float64{0.5, 0.05} {
		reg := env.RandomFocalSubset(rng, frac)
		for _, mode := range []plans.CheckMode{plans.ScanCheck, plans.BitmapCheck} {
			b.Run(fmt.Sprintf("dq=%.0f%%/%s", 100*frac, mode), func(b *testing.B) {
				ex := plans.NewExecutor(env.Engine.Index)
				ex.Mode = mode
				q := env.QueryFor(reg, env.Spec.MinSupps[0], 0.85)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ex.Run(plans.SEV, q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMine measures the facade's end-to-end query path — the
// observability hot path. The "plain" variant is the tracing-disabled
// baseline the instrumentation must not slow down; "traced" shows the
// per-query cost of span recording.
func BenchmarkMine(b *testing.B) {
	ds, err := colarm.Salary()
	if err != nil {
		b.Fatal(err)
	}
	eng, err := colarm.Open(ds, colarm.Options{PrimarySupport: 0.18})
	if err != nil {
		b.Fatal(err)
	}
	q := colarm.Query{
		Range:          map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.70,
		MinConfidence:  0.95,
	}
	for _, traced := range []bool{false, true} {
		name := "plain"
		if traced {
			name = "traced"
		}
		b.Run(name, func(b *testing.B) {
			bq := q
			bq.Trace = traced
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Mine(bq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
