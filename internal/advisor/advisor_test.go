package advisor

import (
	"math"
	"testing"
	"time"

	"colarm/internal/cost"
	"colarm/internal/plans"
)

// terms fabricates an operator observation whose measured time is the
// prediction under `actual` units while the advisor's static reference
// predicts under its own units — the controlled drift the recalibrator
// must recover.
func term(op string, coeff [cost.NumUnits]float64, actual cost.Units) TermObservation {
	av := actual.Vec()
	ns := 0.0
	for i, c := range coeff {
		ns += c * av[i]
	}
	return TermObservation{Operator: op, Coeff: coeff, Measured: time.Duration(ns)}
}

func choiceObs(coeffs [][cost.NumUnits]float64, measured []time.Duration, applicable bool) ChoiceObservation {
	return ChoiceObservation{Coeffs: coeffs, Measured: measured, ARMIndex: len(coeffs) - 1, MIPApplicable: applicable}
}

func TestRecalibrationSwapsOnPersistentBias(t *testing.T) {
	static := cost.DefaultUnits()
	// The machine is uniformly 2x slower than the static units claim.
	actual := static
	actual.WordOp *= 2
	actual.BoxRel *= 2
	actual.IDProbe *= 2
	actual.MapOp *= 2
	actual.GenOp *= 2

	a := New(static, Config{MinSamples: 8, BiasStreak: 2})
	coeff := [cost.NumUnits]float64{1000, 500, 800, 200, 100}
	for i := 0; i < 40; i++ {
		a.ObserveTerms([]TermObservation{term("ELIMINATE", coeff, actual)})
	}
	// A replay window where the plan ordering is units-independent, so
	// the guardrail trivially passes: one plan strictly dominates.
	cheap := [cost.NumUnits]float64{10, 10, 10, 10, 10}
	dear := [cost.NumUnits]float64{1000, 1000, 1000, 1000, 1000}
	for i := 0; i < 4; i++ {
		a.ObserveChoice(choiceObs(
			[][cost.NumUnits]float64{cheap, dear},
			[]time.Duration{time.Millisecond, 5 * time.Millisecond}, true))
	}

	rep := a.Recalibrate()
	if rep.Swapped {
		t.Fatal("swap before the bias streak completed")
	}
	if rep.DriftScore < 0.2 {
		t.Fatalf("drift score %v, want substantial", rep.DriftScore)
	}
	rep = a.Recalibrate()
	if !rep.Swapped {
		t.Fatalf("no swap after persistent bias: %+v", rep)
	}
	live := a.LiveUnits()
	// The recovered units should be markedly above static, approaching
	// the 2x truth (EWMA convergence, not exactness).
	if live.WordOp < static.WordOp*1.5 {
		t.Errorf("live WordOp %v did not move toward 2x static %v", live.WordOp, static.WordOp)
	}
	if got := a.Calibration(); got.Swaps != 1 || got.LastSwap.IsZero() {
		t.Errorf("calibration after swap: swaps=%d lastSwap=%v", got.Swaps, got.LastSwap)
	}
	// Drift collapses after the swap.
	if sc := a.Calibration().DriftScore; sc > 1e-9 {
		t.Errorf("drift score after swap = %v, want 0", sc)
	}
}

func TestRecalibrationGuardrailBlocksRegression(t *testing.T) {
	static := cost.DefaultUnits()
	// Evidence says WordOp is 4x dearer...
	actual := static
	actual.WordOp *= 4

	a := New(static, Config{MinSamples: 4, BiasStreak: 1})
	coeff := [cost.NumUnits]float64{1000, 0, 0, 0, 0} // pure WordOp operator
	for i := 0; i < 20; i++ {
		a.ObserveTerms([]TermObservation{term("ELIMINATE", coeff, actual)})
	}
	// ...but the replay log shows that under candidate units the argmin
	// flips to a plan that measures 10x worse. The guardrail must
	// refuse the swap.
	wordHeavy := [cost.NumUnits]float64{1000, 0, 0, 0, 0} // cheap under static, dear under candidate
	mapHeavy := [cost.NumUnits]float64{0, 0, 0, 200, 0}   // dear under static, cheap under candidate
	a.ObserveChoice(choiceObs(
		[][cost.NumUnits]float64{wordHeavy, mapHeavy},
		[]time.Duration{time.Millisecond, 10 * time.Millisecond}, true))

	rep := a.Recalibrate()
	if rep.Swapped {
		t.Fatal("guardrail let a regressing swap through")
	}
	if !rep.Guardrail.Evaluated || rep.Guardrail.Passed {
		t.Fatalf("guardrail should have evaluated and failed: %+v", rep.Guardrail)
	}
	if rep.Guardrail.WorstRegret < 1 {
		t.Errorf("worst regret %v, want the 9x regression visible", rep.Guardrail.WorstRegret)
	}
	if a.LiveUnits() != static {
		t.Error("live units moved despite guardrail failure")
	}
}

func TestRecalibrationRefusesSwapWithoutReplayEvidence(t *testing.T) {
	static := cost.DefaultUnits()
	actual := static
	actual.MapOp *= 3
	a := New(static, Config{MinSamples: 4, BiasStreak: 1})
	coeff := [cost.NumUnits]float64{0, 0, 0, 500, 0}
	for i := 0; i < 20; i++ {
		a.ObserveTerms([]TermObservation{term("VERIFY", coeff, actual)})
	}
	rep := a.Recalibrate()
	if rep.Swapped || !rep.Guardrail.Evaluated || rep.Guardrail.Passed {
		t.Fatalf("swap without replay evidence must be refused: %+v", rep)
	}
}

func TestReplayChoiceHonorsApplicabilityGate(t *testing.T) {
	// MIP plan is cheaper by coefficients, but the gate forced ARM; the
	// replay must return ARM's measured time under any units.
	obs := choiceObs(
		[][cost.NumUnits]float64{{1, 1, 1, 1, 1}, {100, 100, 100, 100, 100}},
		[]time.Duration{time.Millisecond, 7 * time.Millisecond}, false)
	if got := replayChoice(obs, cost.DefaultUnits()); got != 7*time.Millisecond {
		t.Fatalf("gated replay returned %v, want ARM's 7ms", got)
	}
	obs.MIPApplicable = true
	if got := replayChoice(obs, cost.DefaultUnits()); got != time.Millisecond {
		t.Fatalf("ungated replay returned %v, want the MIP plan's 1ms", got)
	}
}

func TestObservationClampAndRings(t *testing.T) {
	a := New(cost.Units{}, Config{ReplayWindow: 3, LogWindow: 2})
	if a.StaticUnits() != cost.DefaultUnits() {
		t.Fatal("zero static units must select defaults")
	}
	// Degenerate observations are ignored.
	a.ObserveTerms([]TermObservation{
		{Operator: "X", Coeff: [cost.NumUnits]float64{}, Measured: time.Second},
		{Operator: "Y", Coeff: [cost.NumUnits]float64{1, 0, 0, 0, 0}, Measured: 0},
	})
	a.ObserveChoice(ChoiceObservation{}) // mismatched/empty: dropped
	if rep := a.Calibration(); rep.Samples != 0 {
		t.Fatalf("degenerate observations counted: %d", rep.Samples)
	}
	// A wildly off span is clamped, not absorbed raw.
	coeff := [cost.NumUnits]float64{1000, 0, 0, 0, 0}
	a.ObserveTerms([]TermObservation{{Operator: "E", Coeff: coeff, Measured: time.Hour}})
	for _, u := range a.Calibration().Units {
		if math.Abs(u.Bias) > math.Log(8)+1e-9 {
			t.Errorf("bias %v exceeds the per-observation clamp", u.Bias)
		}
	}
	// Rings stay bounded.
	for i := 0; i < 10; i++ {
		a.ObserveChoice(choiceObs([][cost.NumUnits]float64{coeff}, []time.Duration{time.Millisecond}, true))
		a.ObserveQuery(QueryObservation{Plan: plans.ARM})
	}
	if got := a.WorkloadStats().Window; got != 2 {
		t.Errorf("log window %d, want 2", got)
	}
}

func TestBuildRecommendationPaysForItself(t *testing.T) {
	a := New(cost.DefaultUnits(), Config{})
	// 50 forced-ARM queries, each 2ms measured vs 0.1ms estimated MIP:
	// ~95ms accumulated benefit.
	for i := 0; i < 50; i++ {
		a.ObserveQuery(QueryObservation{
			SubsetSize:  100,
			LocalCount:  20 + i%10,
			Plan:        plans.ARM,
			ForcedARM:   true,
			Measured:    2 * time.Millisecond,
			BestMIPCost: 1e5,
			ARMCost:     2e6,
		})
	}
	recs := a.Recommendations(1000, nil, 50*time.Millisecond)
	if len(recs) != 1 || recs[0].Action != "build" {
		t.Fatalf("want one build recommendation, got %+v", recs)
	}
	r := recs[0]
	if r.PrimaryCount < 20 || r.PrimaryCount > 29 {
		t.Errorf("target primary count %d outside the observed local counts", r.PrimaryCount)
	}
	if r.Primary <= 0 || r.Primary > 0.03 {
		t.Errorf("primary fraction %v implausible for count %d over 1000 records", r.Primary, r.PrimaryCount)
	}
	if r.BenefitNanos < r.BuildCostNanos {
		t.Errorf("recommended despite benefit %d < build cost %d", r.BenefitNanos, r.BuildCostNanos)
	}

	// Too expensive a build: no recommendation.
	if recs := a.Recommendations(1000, nil, time.Hour); len(recs) != 0 {
		t.Errorf("build recommended despite prohibitive cost: %+v", recs)
	}

	// Already covered by a fresh secondary: no recommendation (the
	// covered queries stop accumulating).
	sec := []SecondaryState{{ID: 1, Primary: 0.01, PrimaryCount: 10}}
	recs = a.Recommendations(1000, sec, 50*time.Millisecond)
	for _, r := range recs {
		if r.Action == "build" {
			t.Errorf("build recommended despite coverage: %+v", r)
		}
	}
}

func TestDropRecommendationForIdleSecondary(t *testing.T) {
	a := New(cost.DefaultUnits(), Config{MinDropWindow: 10})
	for i := 0; i < 40; i++ {
		a.ObserveQuery(QueryObservation{Plan: plans.SEV, IndexUsed: 0, Measured: time.Millisecond})
	}
	sec := []SecondaryState{{ID: 1, Primary: 0.02, PrimaryCount: 20}}
	recs := a.Recommendations(1000, sec, time.Millisecond)
	found := false
	for _, r := range recs {
		if r.Action == "drop" && r.Primary == 0.02 {
			found = true
		}
	}
	if !found {
		t.Fatalf("idle secondary not recommended for drop: %+v", recs)
	}

	// A winning secondary stays.
	b := New(cost.DefaultUnits(), Config{MinDropWindow: 10})
	for i := 0; i < 40; i++ {
		b.ObserveQuery(QueryObservation{Plan: plans.SEV, IndexUsed: 1, Measured: time.Millisecond})
	}
	for _, r := range b.Recommendations(1000, sec, time.Millisecond) {
		if r.Action == "drop" {
			t.Errorf("winning secondary recommended for drop: %+v", r)
		}
	}
	if st := b.WorkloadStats(); st.SecondaryWins != 40 {
		t.Errorf("secondary wins = %d, want 40", st.SecondaryWins)
	}
}
