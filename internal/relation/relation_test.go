package relation

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildSalary(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder("salary", "Company", "Title", "Location", "Gender", "Age", "Salary")
	rows := [][]string{
		{"IBM", "QA Lead", "Boston", "M", "30-40", "60K-90K"},
		{"IBM", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"IBM", "Engg Mgr", "SFO", "M", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "SFO", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "M", "20-30", "90K-120K"},
		{"Google", "Tech Arch", "Boston", "M", "40-50", "120K-150K"},
		{"Microsoft", "Engg Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Microsoft", "Sw Engg", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Engg", "Seattle", "F", "20-30", "30K-60K"},
	}
	for _, r := range rows {
		if err := b.AddRecord(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderAndAccessors(t *testing.T) {
	d := buildSalary(t)
	if d.NumRecords() != 11 {
		t.Fatalf("NumRecords = %d, want 11", d.NumRecords())
	}
	if d.NumAttrs() != 6 {
		t.Fatalf("NumAttrs = %d, want 6", d.NumAttrs())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := d.ValueString(0, 0); got != "IBM" {
		t.Errorf("ValueString(0,0) = %q", got)
	}
	if got := d.ValueString(10, 5); got != "30K-60K" {
		t.Errorf("ValueString(10,5) = %q", got)
	}
	if ai := d.AttrIndex("Gender"); ai != 3 {
		t.Errorf("AttrIndex(Gender) = %d", ai)
	}
	if ai := d.AttrIndex("nope"); ai != -1 {
		t.Errorf("AttrIndex(nope) = %d, want -1", ai)
	}
	// Company dictionary interned in first-seen order.
	comp := d.Attrs[0]
	want := []string{"IBM", "Google", "Microsoft", "Facebook"}
	for i, v := range want {
		if comp.Values[i] != v {
			t.Errorf("Company dict[%d] = %q, want %q", i, comp.Values[i], v)
		}
		if comp.ValueIndex(v) != i {
			t.Errorf("ValueIndex(%q) = %d, want %d", v, comp.ValueIndex(v), i)
		}
	}
	if comp.ValueIndex("Apple") != -1 {
		t.Error("ValueIndex of unknown value must be -1")
	}
	// NumItems = sum of cardinalities.
	wantItems := 4 + 6 + 3 + 2 + 3 + 4
	if got := d.NumItems(); got != wantItems {
		t.Errorf("NumItems = %d, want %d", got, wantItems)
	}
}

func TestAddRecordArityError(t *testing.T) {
	b := NewBuilder("x", "a", "b")
	if err := b.AddRecord("1"); err == nil {
		t.Error("short record must error")
	}
	if err := b.AddRecord("1", "2", "3"); err == nil {
		t.Error("long record must error")
	}
}

func TestAddRecordIdx(t *testing.T) {
	b := NewBuilder("x", "a", "b")
	b.AddValue(0, "a0")
	b.AddValue(0, "a1")
	b.AddValue(1, "b0")
	if err := b.AddRecordIdx(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRecordIdx(2, 0); err == nil {
		t.Error("out-of-range value index must error")
	}
	if err := b.AddRecordIdx(0); err == nil {
		t.Error("wrong arity must error")
	}
	d := b.Build()
	if d.ValueString(0, 0) != "a1" || d.ValueString(0, 1) != "b0" {
		t.Errorf("record mismatch: %v", d.Record(0))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := buildSalary(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCSV("salary", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumRecords() != d.NumRecords() || d2.NumAttrs() != d.NumAttrs() {
		t.Fatalf("round trip shape mismatch: %dx%d vs %dx%d",
			d2.NumRecords(), d2.NumAttrs(), d.NumRecords(), d.NumAttrs())
	}
	for r := 0; r < d.NumRecords(); r++ {
		for a := 0; a < d.NumAttrs(); a++ {
			if d.ValueString(r, a) != d2.ValueString(r, a) {
				t.Fatalf("cell (%d,%d) mismatch: %q vs %q", r, a, d.ValueString(r, a), d2.ValueString(r, a))
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("empty", strings.NewReader("")); err == nil {
		t.Error("empty csv must error")
	}
	if _, err := ReadCSV("ragged", strings.NewReader("a,b\n1,2\n3\n")); err == nil {
		t.Error("ragged csv must error")
	}
	if _, err := LoadCSV("/nonexistent/definitely-missing.csv"); err == nil {
		t.Error("missing file must error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := buildSalary(t)
	d.rows[0] = 99 // out of dictionary range
	if err := d.Validate(); err == nil {
		t.Error("Validate must catch out-of-range value index")
	}

	dup := &Dataset{Name: "dup", Attrs: []*Attribute{{Name: "a"}, {Name: "a"}}}
	if err := dup.Validate(); err == nil {
		t.Error("Validate must catch duplicate attribute names")
	}
	empty := &Dataset{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("Validate must catch zero attributes")
	}
}

func TestCutPointsEqualWidth(t *testing.T) {
	cuts, err := CutPoints([]float64{0, 10}, 5, EqualWidth)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 4, 6, 8, 10}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v", cuts)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
	if BinOf(0, cuts) != 0 || BinOf(1.99, cuts) != 0 || BinOf(2, cuts) != 1 {
		t.Error("BinOf boundaries wrong at low end")
	}
	if BinOf(10, cuts) != 4 {
		t.Errorf("BinOf(max) = %d, want last bin", BinOf(10, cuts))
	}
}

func TestCutPointsEqualFrequency(t *testing.T) {
	vals := []float64{1, 1, 1, 2, 3, 4, 5, 6, 100, 200}
	cuts, err := CutPoints(vals, 2, EqualFrequency)
	if err != nil {
		t.Fatal(err)
	}
	// Two bins should split near the median.
	n0, n1 := 0, 0
	for _, v := range vals {
		if BinOf(v, cuts) == 0 {
			n0++
		} else {
			n1++
		}
	}
	if n0 == 0 || n1 == 0 {
		t.Fatalf("degenerate split: %d/%d (cuts %v)", n0, n1, cuts)
	}
}

func TestCutPointsErrors(t *testing.T) {
	if _, err := CutPoints([]float64{1, 2}, 0, EqualWidth); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := CutPoints(nil, 3, EqualWidth); err == nil {
		t.Error("empty values must error")
	}
	if _, err := CutPoints([]float64{5, 5, 5}, 3, EqualWidth); err == nil {
		t.Error("constant values must error")
	}
	if _, err := CutPoints([]float64{1, 2, 3}, 2, BinningMethod(99)); err == nil {
		t.Error("unknown method must error")
	}
}

func TestDiscretizeColumn(t *testing.T) {
	b := NewBuilder("ages", "age", "label")
	for _, row := range [][]string{{"21", "x"}, {"25", "x"}, {"34", "y"}, {"45", "y"}, {"29", "x"}} {
		if err := b.AddRecord(row...); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	dd, err := DiscretizeColumn(d, 0, 3, EqualWidth)
	if err != nil {
		t.Fatal(err)
	}
	if dd.Attrs[0].Cardinality() != 3 {
		t.Fatalf("discretized cardinality = %d, want 3", dd.Attrs[0].Cardinality())
	}
	// Value order must follow numeric order of intervals.
	if dd.Attrs[0].Values[0] != "21-29" {
		t.Errorf("first interval = %q, want 21-29", dd.Attrs[0].Values[0])
	}
	if dd.ValueString(3, 0) != "37-45" {
		t.Errorf("record 3 bin = %q, want 37-45", dd.ValueString(3, 0))
	}
	if dd.ValueString(0, 1) != "x" {
		t.Error("non-discretized column must be preserved")
	}
	// Non-numeric column errors.
	if _, err := DiscretizeColumn(d, 1, 2, EqualWidth); err == nil {
		t.Error("discretizing a non-numeric column must error")
	}
	if _, err := DiscretizeColumn(d, 7, 2, EqualWidth); err == nil {
		t.Error("attribute index out of range must error")
	}
}

func TestQuickBinOfCoversAllValues(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()*1000 - 500
		}
		vals[0], vals[1] = -500.5, 500.5 // guarantee spread
		for _, method := range []BinningMethod{EqualWidth, EqualFrequency} {
			k := 1 + r.Intn(10)
			cuts, err := CutPoints(vals, k, method)
			if err != nil {
				return false
			}
			nb := len(cuts) - 1
			for _, v := range vals {
				b := BinOf(v, cuts)
				if b < 0 || b >= nb {
					return false
				}
				// v must lie within its bin (last bin closed above).
				if v < cuts[b] || (v > cuts[b+1] && b != nb-1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
