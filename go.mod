module colarm

go 1.22
