package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"colarm/internal/obs"
)

// errOverloaded reports that admission control turned a request away:
// every execution slot was busy and either the wait queue was full or
// the queue-wait deadline passed first. The HTTP layer maps it to
// 429 Too Many Requests.
var errOverloaded = errors.New("server: overloaded, try again later")

// admission bounds the mining work a server runs at once: at most
// maxInFlight queries execute concurrently, at most maxQueue more wait
// for a slot, and no request waits longer than maxWait. Everything
// beyond those bounds is rejected immediately — the overload signal
// clients need for backoff, instead of a convoy of slow responses.
type admission struct {
	slots    chan struct{} // capacity = maxInFlight; a token in the channel is a running query
	waiting  atomic.Int64
	maxQueue int
	maxWait  time.Duration

	admitted *obs.Counter
	queued   *obs.Counter
	rejected *obs.Counter
}

func newAdmission(maxInFlight, maxQueue int, maxWait time.Duration, reg *obs.Registry) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: maxQueue,
		maxWait:  maxWait,
		admitted: reg.Counter("colarm_admission_admitted_total", "Queries granted an execution slot."),
		queued:   reg.Counter("colarm_admission_queued_total", "Queries that waited in the admission queue before a slot freed."),
		rejected: reg.Counter("colarm_admission_rejected_total", "Queries turned away by admission control (queue full or wait deadline)."),
	}
}

// acquire claims an execution slot, waiting in the bounded queue if
// none is free. It returns errOverloaded when the queue is full or the
// queue-wait deadline fires, and ctx.Err() when the caller's own
// context ends the wait. Pair every nil return with release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.admitted.Inc()
		return nil
	default:
	}
	if int(a.waiting.Add(1)) > a.maxQueue {
		a.waiting.Add(-1)
		a.rejected.Inc()
		return errOverloaded
	}
	defer a.waiting.Add(-1)
	a.queued.Inc()

	wait := ctx
	if a.maxWait > 0 {
		var cancel context.CancelFunc
		wait, cancel = context.WithTimeout(ctx, a.maxWait)
		defer cancel()
	}
	select {
	case a.slots <- struct{}{}:
		a.admitted.Inc()
		return nil
	case <-wait.Done():
		if err := ctx.Err(); err != nil {
			return err // the caller's own deadline/cancel, not our queue limit
		}
		a.rejected.Inc()
		return errOverloaded
	}
}

// release returns an execution slot.
func (a *admission) release() { <-a.slots }
