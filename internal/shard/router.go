// Package shard partitions a dataset's records into K hash-partitioned
// shards, each with its own version clock and record slice over the
// shared MIP-index, and recombines per-shard partial results exactly:
// tidsets OR across shards (the slices partition the live records),
// support counts sum, confidences recompute from summed counts, and the
// closed-itemset catalog is re-established by a cross-shard closure
// merge (DESIGN §13). The layout hides behind the plans.Collection seam
// so query plans stay layout-agnostic; K=1 reproduces the monolithic
// engine byte-for-byte.
package shard

// Router assigns record ids to shards by hash. Record ids are stable
// for the lifetime of an engine (base records keep their build-time
// ids, ingested rows extend the id space, and ids are never reused or
// renumbered — consolidation keeps deleted rows as ghosts), so a
// record's shard never changes.
type Router struct {
	k int
}

// NewRouter returns a router over k shards; k < 1 is clamped to 1.
func NewRouter(k int) *Router {
	if k < 1 {
		k = 1
	}
	return &Router{k: k}
}

// Shards returns the number of shards K.
func (r *Router) Shards() int { return r.k }

// Of returns the shard owning record id. The id is mixed through
// splitmix64 before the modulus so sequential ids spread evenly across
// shards regardless of K.
func (r *Router) Of(id int) int {
	return int(splitmix64(uint64(id)) % uint64(r.k))
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
