package server

import (
	"container/list"
	"sync"
	"time"

	"colarm"
	"colarm/internal/obs"
)

// resultCache is a sharded LRU cache of query results, keyed by
// "<dataset>@g<generation>|<Query.Canonical()>". Sharding keeps lock
// contention off the serving hot path; each shard holds its own LRU
// list under its own mutex. Entries are bounded two ways: a per-shard
// capacity (evicting least-recently-used) and a TTL (entries past it
// are misses and are dropped on sight). Engine reloads invalidate by
// key construction — a bumped generation never matches old keys, and
// the orphaned entries age out through LRU pressure or TTL.
//
// Hits return a fresh Result whose Rules (and Estimates) are deep
// copies of the stored ones — callers may mutate what they get — and
// whose Stats carries only the identity of the execution (plan, subset
// size, minsupport count) with every operator counter zero: a cache hit
// did no mining work, and the counters say so.
type resultCache struct {
	shards      []cacheShard
	perShardCap int
	ttl         time.Duration

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type cacheShard struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	lru list.List // front = most recently used
}

type cacheEntry struct {
	key     string
	res     *colarm.Result // stored copy; never handed out directly
	expires time.Time      // zero when the cache has no TTL
}

const cacheShardCount = 16

// newResultCache sizes a cache for about maxEntries entries total with
// the given TTL (0 disables expiry) and registers hit/miss/eviction
// counters in reg.
func newResultCache(maxEntries int, ttl time.Duration, reg *obs.Registry) *resultCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	per := (maxEntries + cacheShardCount - 1) / cacheShardCount
	if per < 1 {
		per = 1
	}
	c := &resultCache{
		shards:      make([]cacheShard, cacheShardCount),
		perShardCap: per,
		ttl:         ttl,
		hits:        reg.Counter("colarm_cache_hits_total", "Query results served from the result cache."),
		misses:      reg.Counter("colarm_cache_misses_total", "Result-cache lookups that found no live entry."),
		evictions:   reg.Counter("colarm_cache_evictions_total", "Result-cache entries evicted by capacity or TTL."),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element)
	}
	return c
}

func (c *resultCache) shard(key string) *cacheShard {
	return &c.shards[fnv32a(key)%cacheShardCount]
}

// get returns a copy of the cached result for key, or nil on a miss
// (absent or expired).
func (c *resultCache) get(key string) *colarm.Result {
	sh := c.shard(key)
	sh.mu.Lock()
	el, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Inc()
		return nil
	}
	ent := el.Value.(*cacheEntry)
	if !ent.expires.IsZero() && time.Now().After(ent.expires) {
		sh.lru.Remove(el)
		delete(sh.m, key)
		sh.mu.Unlock()
		c.misses.Inc()
		c.evictions.Inc()
		return nil
	}
	sh.lru.MoveToFront(el)
	res := hitResult(ent.res)
	sh.mu.Unlock()
	c.hits.Inc()
	return res
}

// put stores a copy of res under key, evicting the shard's LRU tail
// when over capacity.
func (c *resultCache) put(key string, res *colarm.Result) {
	stored := storedResult(res)
	var expires time.Time
	if c.ttl > 0 {
		expires = time.Now().Add(c.ttl)
	}
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		el.Value = &cacheEntry{key: key, res: stored, expires: expires}
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	sh.m[key] = sh.lru.PushFront(&cacheEntry{key: key, res: stored, expires: expires})
	evicted := 0
	for sh.lru.Len() > c.perShardCap {
		tail := sh.lru.Back()
		sh.lru.Remove(tail)
		delete(sh.m, tail.Value.(*cacheEntry).key)
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// len returns the live entry count across all shards (expired entries
// still resident are counted; they leave on next touch).
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// storedResult deep-copies what the cache keeps: rules, estimates and
// the execution identity. The trace is dropped — traced queries bypass
// the cache entirely — and operator counters are not kept because hits
// must report zeros.
func storedResult(res *colarm.Result) *colarm.Result {
	return &colarm.Result{
		Rules: copyRules(res.Rules),
		Stats: colarm.Stats{
			Plan:            res.Stats.Plan,
			SubsetSize:      res.Stats.SubsetSize,
			MinSupportCount: res.Stats.MinSupportCount,
		},
		Estimates: append([]colarm.PlanEstimate(nil), res.Estimates...),
	}
}

// hitResult builds the Result a cache hit returns: fresh copies of the
// stored rules and estimates under zeroed operator counters.
func hitResult(stored *colarm.Result) *colarm.Result {
	return &colarm.Result{
		Rules:     copyRules(stored.Rules),
		Stats:     stored.Stats,
		Estimates: append([]colarm.PlanEstimate(nil), stored.Estimates...),
	}
}

func copyRules(rs []colarm.Rule) []colarm.Rule {
	if rs == nil {
		return nil
	}
	out := make([]colarm.Rule, len(rs))
	for i, r := range rs {
		out[i] = r
		out[i].Antecedent = append([]string(nil), r.Antecedent...)
		out[i].Consequent = append([]string(nil), r.Consequent...)
	}
	return out
}

// fnv32a is the 32-bit FNV-1a hash used to pick a shard.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
