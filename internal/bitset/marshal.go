package bitset

import (
	"encoding/binary"
	"fmt"
)

// MarshalBinary encodes the set as an 8-byte little-endian capacity
// followed by its words. It implements encoding.BinaryMarshaler so sets
// can be embedded in serialized index snapshots.
func (s *Set) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8+8*len(s.words))
	binary.LittleEndian.PutUint64(buf, uint64(s.n))
	for i, w := range s.words {
		binary.LittleEndian.PutUint64(buf[8+8*i:], w)
	}
	return buf, nil
}

// UnmarshalBinary decodes a set written by MarshalBinary.
func (s *Set) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitset: truncated header (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	const maxBits = 1 << 40 // sanity bound against corrupted input
	if n > maxBits {
		return fmt.Errorf("bitset: implausible capacity %d", n)
	}
	words := (int(n) + wordBits - 1) / wordBits
	if len(data) != 8+8*words {
		return fmt.Errorf("bitset: capacity %d needs %d payload bytes, have %d", n, 8*words, len(data)-8)
	}
	s.n = int(n)
	s.words = make([]uint64, words)
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	s.trim()
	return nil
}
