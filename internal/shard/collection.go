package shard

import (
	"sync"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/cost"
	"colarm/internal/delta"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
	"colarm/internal/mip"
	"colarm/internal/plans"
	"colarm/internal/pool"
	"colarm/internal/relation"
)

// CatalogMode selects how a sharded engine re-establishes the merged
// closed-itemset catalog when the delta is live (and at consolidation).
type CatalogMode int

const (
	// CatalogAuto scatters on small item spaces and mines globally on
	// large ones (threshold-1 per-shard enumeration can blow up there).
	CatalogAuto CatalogMode = iota
	// CatalogScatter always uses per-shard mining + closure merge.
	CatalogScatter
	// CatalogGlobal always mines the merged tidsets globally.
	CatalogGlobal
)

// Config configures a Collection.
type Config struct {
	// Shards is K; values < 1 are clamped to 1.
	Shards int
	// Catalog selects the closure-merge policy (default CatalogAuto).
	Catalog CatalogMode
	// Primary is the engine's primary-support fraction.
	Primary float64
	// Units are the engine's calibrated cost units (delta refresh policy).
	Units cost.Units
	// MIP carries the index build options used at consolidation and for
	// the per-shard physical indexes (layout, fanout, packing).
	MIP mip.Options
	// Workers bounds the fan-out of the collection's parallel sections —
	// partition restriction, per-shard mining + indexing, global box
	// computation: 0 means one worker per CPU, 1 forces serial. Every
	// parallel section writes pre-indexed slots, so results are
	// worker-count-invariant.
	Workers int
}

// ShardStat is one shard's slice of the engine's staleness surface,
// served per shard by /v1/datasets so operators see which partitions
// are drifting.
type ShardStat struct {
	// Shard is the shard number in [0, K).
	Shard int `json:"shard"`
	// Records counts the live records the shard currently owns
	// (base minus tombstones plus buffered inserts routed here).
	Records int `json:"records"`
	// BufferedRows counts live buffered inserts routed to this shard.
	BufferedRows int `json:"buffered_rows"`
	// Tombstones counts deletions of records this shard owns.
	Tombstones int `json:"tombstones"`
	// Version is the shard's clock: it ticks on every ingest batch that
	// touches the shard, so an untouched shard keeps serving its cached
	// per-shard mining across consolidations of its siblings.
	Version uint64 `json:"version"`
	// IndexedCFIs counts the local CFIs of the shard's cached physical
	// index; 0 when the shard has never been indexed (no scatter-mode
	// view or consolidation touched it yet).
	IndexedCFIs int `json:"indexed_cfis"`
	// IndexBuildNanos is the wall-clock cost of the last physical index
	// build for this shard (mining + IT-tree + boxes + R-tree).
	IndexBuildNanos int64 `json:"index_build_nanos"`
}

// Collection partitions one engine's records into K hash-routed shards
// behind the plans.Collection seam. It wraps a single delta.Store — the
// store's validation, merged-view construction and refresh policy are
// layout-independent, so the collection only adds the partition: frozen
// and merged slices, per-shard version clocks, the scatter catalog
// (per-shard mining + closure merge), and ghost-preserving
// consolidation. Lock order is Collection.mu, then Store.mu (the store
// never calls back out).
type Collection struct {
	idx     *mip.Index
	store   *delta.Store
	router  *Router
	primary float64
	catalog CatalogMode
	mipOpts mip.Options
	workers int

	mu         sync.Mutex
	appended   int      // rows routed so far; derives buffered record ids
	versions   []uint64 // per-shard ingest clocks
	baseSlices []plans.ShardSlice

	// viewSrc/viewDec cache the decorated merged view per store view
	// (the store already caches one view per delta version).
	viewSrc *plans.View
	viewDec *plans.View

	// indexes caches each shard's physical MIP-index, keyed by the
	// shard's version clock and the frequent-item universe it was built
	// over. A clean shard (version unchanged) reuses its mining AND its
	// physical layers across sibling ingests and consolidations — the
	// "rebuild one shard while the others serve" half of the sharded
	// refresh story, now covering the index build too.
	indexes []*ShardIndex

	// onRebuild, when set, fires under the collection lock after a
	// shard's physical index is (re)built, with the shard number and
	// the build's wall-clock nanoseconds. The serving layer wires it to
	// the /metrics rebuild counters and build-duration histogram.
	onRebuild func(shard int, buildNanos int64)
}

// New builds a collection over a freshly built or loaded index,
// partitioning its live records by hash.
func New(idx *mip.Index, cfg Config) *Collection {
	r := NewRouter(cfg.Shards)
	c := &Collection{
		idx:      idx,
		store:    delta.NewStore(idx, cfg.Primary, cfg.Units),
		router:   r,
		primary:  cfg.Primary,
		catalog:  cfg.Catalog,
		mipOpts:  cfg.MIP,
		workers:  cfg.Workers,
		versions: make([]uint64, r.Shards()),
		indexes:  make([]*ShardIndex, r.Shards()),
	}
	if c.mipOpts.Workers == 0 {
		c.mipOpts.Workers = cfg.Workers
	}
	c.store.SetWorkers(cfg.Workers)
	n := idx.Dataset.NumRecords()
	live := idx.Live
	if live == nil {
		live = bitset.New(n)
		live.Fill()
	}
	c.baseSlices = c.partition(live, idx.Tidsets, n)
	return c
}

// NumShards returns K. Part of the plans.Collection seam.
func (c *Collection) NumShards() int { return c.router.Shards() }

// Slices returns the frozen-index partition. Part of the
// plans.Collection seam; the executor consults it only when no delta
// view is live.
func (c *Collection) Slices() []plans.ShardSlice {
	return c.baseSlices
}

// Router returns the record-to-shard router.
func (c *Collection) Router() *Router { return c.router }

// Store exposes the wrapped delta store; the engine's staleness,
// refresh-policy and snapshot surfaces read through it unchanged.
func (c *Collection) Store() *delta.Store { return c.store }

// Ingest routes one transaction batch: the wrapped store validates and
// buffers it (all-or-nothing), then the clocks of every shard the batch
// touches tick. Inserted rows take ids baseN, baseN+1, ... in arrival
// order — the same ids the store assigns — and the router maps ids to
// shards, so the partition key is the record id itself.
func (c *Collection) Ingest(rows [][]int32, deletes []int) (delta.Staleness, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, err := c.store.Ingest(rows, deletes)
	if err != nil {
		return st, err
	}
	baseN := c.idx.Dataset.NumRecords()
	touched := make(map[int]bool, len(rows)+len(deletes))
	for i := range rows {
		touched[c.router.Of(baseN+c.appended+i)] = true
	}
	for _, id := range deletes {
		touched[c.router.Of(id)] = true
	}
	c.appended += len(rows)
	for s := range touched {
		c.versions[s]++
	}
	return st, nil
}

// View returns the merged execution view decorated with the shard
// partition, or nil when the delta is empty. The store's view is built
// (and cached) per delta version; the decoration — merged slices, and
// in scatter mode the closure-merged catalog — is cached alongside it,
// so concurrent queries share one immutable view per version.
func (c *Collection) View() *plans.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	sv := c.store.View()
	if sv == nil {
		return nil
	}
	if c.viewSrc == sv {
		return c.viewDec
	}
	v := *sv
	v.Slices = c.partition(sv.Live, sv.Tidsets, sv.NumRecords)
	if c.scatterCatalog() {
		// Re-establish the merged catalog by cross-shard closure merge
		// instead of the store's global re-mine: per-shard threshold-1
		// mining (cached while a shard's clock is unchanged), then
		// MergeClosed. The result is byte-identical to the global mine
		// (see merge.go), so replacing Tree and Boxes changes nothing a
		// plan can observe.
		minCount := charm.CountFor(c.primary, sv.Live.Count())
		if minCount < 1 {
			minCount = 1
		}
		res := c.mergedCatalogLocked(v.Slices, sv.Tidsets, sv.NumRecords, minCount)
		v.Tree = ittree.BuildLayout(res, c.idx.Space.NumItems(), c.mipOpts.Layout.ITTreeLayout())
		v.Boxes = make([]itemset.Box, len(res.Closed))
		closed := res.Closed
		// Merged boxes are independent reads into pre-indexed slots.
		pool.For(len(closed), pool.Workers(c.workers), func(id int) {
			v.Boxes[id] = mip.BoundingBox(c.idx.Space, c.idx.Cards, sv.Tidsets, closed[id])
		})
	}
	c.viewSrc, c.viewDec = sv, &v
	return c.viewDec
}

// scatterCatalog reports whether the closure-merge catalog path is
// active: always under CatalogScatter, never under CatalogGlobal, and
// under CatalogAuto only on small item spaces, where the per-shard
// threshold-1 enumeration is safely bounded.
func (c *Collection) scatterCatalog() bool {
	switch c.catalog {
	case CatalogScatter:
		return true
	case CatalogGlobal:
		return false
	}
	sp := c.idx.Space
	return sp.NumAttrs() <= 8 && sp.NumItems() <= 48
}

// mergedCatalogLocked computes the merged closed-itemset catalog via
// the cross-shard closure merge. Per-shard physical indexes (mining +
// IT-tree + boxes + R-tree) are cached on the shard clocks: only shards
// an ingest touched since the last call are re-mined and re-indexed,
// and the drifted shards rebuild in parallel through the worker pool.
func (c *Collection) mergedCatalogLocked(slices []plans.ShardSlice, tidsets []*bitset.Set, capN, minCount int) *charm.Result {
	// Universe of globally frequent items; per-shard mining restricts
	// to it (nil tidsets are skipped by the miner).
	var u itemset.Set
	for it, t := range tidsets {
		if t != nil && t.Count() >= minCount {
			u = append(u, itemset.Item(it))
		}
	}
	ukey := u.Key()
	inU := make([]bool, len(tidsets))
	for _, it := range u {
		inU[it] = true
	}
	per := make([]*charm.Result, len(slices))
	rebuilt := make([]*ShardIndex, len(slices)) // nil where the cache held
	pool.For(len(slices), pool.Workers(c.workers), func(s int) {
		if si := c.indexes[s]; si != nil && si.Version == c.versions[s] && si.UKey == ukey {
			per[s] = si.Mine
			return
		}
		si := buildShardIndex(s, c.versions[s], ukey, slices[s], inU, capN,
			c.idx.Space, c.idx.Cards, c.mipOpts.Fanout, c.mipOpts.Packing, c.mipOpts.Layout)
		rebuilt[s] = si
		per[s] = si.Mine
	})
	// Publish the rebuilt indexes and fire the metrics hook serially,
	// under the already-held collection lock.
	for s, si := range rebuilt {
		if si == nil {
			continue
		}
		c.indexes[s] = si
		if c.onRebuild != nil {
			c.onRebuild(s, si.BuildNanos)
		}
	}
	return MergeClosed(per, tidsets, capN, minCount)
}

// SetRebuildHook installs fn, fired with the shard number and build
// duration whenever a shard's physical index is (re)built. Install
// before the first ingest; the hook runs under the collection lock and
// must not call back into the collection.
func (c *Collection) SetRebuildHook(fn func(shard int, buildNanos int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onRebuild = fn
}

// Indexes returns the per-shard physical indexes currently cached (nil
// entries for shards never built). The slice is a copy; the indexes
// themselves are immutable once published.
func (c *Collection) Indexes() []*ShardIndex {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*ShardIndex, len(c.indexes))
	copy(out, c.indexes)
	return out
}

// partition splits the live records across the shards and restricts the
// per-item tidsets to each slice. Slices are immutable once returned.
func (c *Collection) partition(live *bitset.Set, tidsets []*bitset.Set, capN int) []plans.ShardSlice {
	k := c.router.Shards()
	sl := make([]plans.ShardSlice, k)
	for s := range sl {
		sl[s].Records = bitset.New(capN)
	}
	live.ForEach(func(r int) bool {
		sl[c.router.Of(r)].Records.Add(r)
		return true
	})
	// Restricting the per-item tidsets to each slice dominates the
	// partition cost and is independent per shard: workers intersect
	// immutable tidsets and write their own slice only.
	pool.For(k, pool.Workers(c.workers), func(s int) {
		sl[s].Records.Optimize()
		items := make([]*bitset.Set, len(tidsets))
		for i, t := range tidsets {
			if t == nil {
				continue
			}
			x := bitset.Intersect(t, sl[s].Records)
			x.Optimize()
			items[i] = x
		}
		sl[s].Items = items
	})
	return sl
}

// ShardStats reports per-shard staleness: live record counts, buffered
// inserts and tombstones routed to each shard, and the shard clocks.
// The totals across shards equal the store's global Staleness counters.
func (c *Collection) ShardStats() []ShardStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows, deletes := c.store.Snapshot()
	baseN := c.idx.Dataset.NumRecords()
	stats := make([]ShardStat, c.router.Shards())
	for s := range stats {
		stats[s] = ShardStat{
			Shard:   s,
			Records: c.baseSlices[s].Records.Count(),
			Version: c.versions[s],
		}
		if si := c.indexes[s]; si != nil {
			stats[s].IndexedCFIs = si.Tree.Size()
			stats[s].IndexBuildNanos = si.BuildNanos
		}
	}
	for i := range rows {
		s := c.router.Of(baseN + i)
		stats[s].Records++
		stats[s].BufferedRows++
	}
	for _, id := range deletes {
		s := c.router.Of(id)
		stats[s].Tombstones++
		if id >= baseN {
			stats[s].Records--
			stats[s].BufferedRows--
		} else if c.baseSlices[s].Records.Contains(id) {
			stats[s].Records--
		}
	}
	return stats
}

// Consolidate folds the buffered delta into a fresh ghost-preserving
// index: every record — live, tombstoned, ghost — keeps its id (hash
// routing must stay stable), deleted rows become ghosts outside the new
// index's Live mask, and the catalog is re-mined over the live records
// only (via the closure merge when the scatter catalog is active, so
// clean shards reuse their cached minings). The returned index answers
// byte-identically to a compacted monolithic rebuild over the same live
// data — identical CFIs, supports, boxes and R-tree — differing only in
// the record-id space. The caller swaps it in as a new engine
// generation; this collection keeps serving unchanged until then.
func (c *Collection) Consolidate() (*mip.Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows, deletes := c.store.Snapshot()
	d := c.idx.Dataset
	attrs := d.NumAttrs()
	baseN := d.NumRecords()
	capN := baseN + len(rows)

	names := make([]string, attrs)
	for a := 0; a < attrs; a++ {
		names[a] = d.Attrs[a].Name
	}
	b := relation.NewBuilder(d.Name, names...)
	for a := 0; a < attrs; a++ {
		for _, label := range d.Attrs[a].Values {
			b.AddValue(a, label)
		}
	}
	vi := make([]int, attrs)
	for r := 0; r < baseN; r++ {
		for a := 0; a < attrs; a++ {
			vi[a] = d.Value(r, a)
		}
		if err := b.AddRecordIdx(vi...); err != nil {
			return nil, err
		}
	}
	for _, row := range rows {
		for a := 0; a < attrs; a++ {
			vi[a] = int(row[a])
		}
		if err := b.AddRecordIdx(vi...); err != nil {
			return nil, err
		}
	}
	nd := b.Build()

	live := bitset.New(capN)
	live.Fill()
	if gl := c.idx.Live; gl != nil {
		for r := 0; r < baseN; r++ {
			if !gl.Contains(r) {
				live.Remove(r)
			}
		}
	}
	for _, id := range deletes {
		live.Remove(id)
	}

	sp := itemset.NewSpace(nd)
	tids := itemset.ItemTidsets(nd, sp)
	for _, t := range tids {
		t.And(live)
		t.Optimize()
	}
	minCount := charm.CountFor(c.primary, live.Count())
	if minCount < 1 {
		minCount = 1
	}
	var res *charm.Result
	if c.scatterCatalog() {
		res = c.mergedCatalogLocked(c.partition(live, tids, capN), tids, capN, minCount)
	} else {
		var err error
		res, err = charm.MineTidsets(tids, capN, minCount)
		if err != nil {
			return nil, err
		}
	}
	idx, err := mip.Assemble(nd, sp, tids, res, minCount, c.mipOpts)
	if err != nil {
		return nil, err
	}
	if live.Count() < capN {
		idx.Live = live
	}
	return idx, nil
}
