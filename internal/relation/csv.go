package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV loads a dataset from CSV. The first row must be a header of
// attribute names. Every subsequent row becomes one record; all columns
// are treated as nominal strings (discretize numeric columns first with
// DiscretizeColumn or load through LoadCSVWithSpec).
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate lengths ourselves for better errors
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("relation: csv %q is empty", name)
	}
	if err != nil {
		return nil, fmt.Errorf("relation: csv %q header: %w", name, err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relation: csv %q has an empty header", name)
	}
	b := NewBuilder(name, header...)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: csv %q line %d: %w", name, line+1, err)
		}
		line++
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: csv %q line %d has %d fields, header has %d", name, line, len(rec), len(header))
		}
		if err := b.AddRecord(rec...); err != nil {
			return nil, fmt.Errorf("relation: csv %q line %d: %w", name, line, err)
		}
	}
	d := b.Build()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadCSV opens path and reads it with ReadCSV, naming the dataset after
// the file path.
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(path, f)
}

// WriteCSV writes the dataset (header plus one row per record) to w.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(d.Attrs))
	for r := 0; r < d.m; r++ {
		for a := range d.Attrs {
			row[a] = d.ValueString(r, a)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
