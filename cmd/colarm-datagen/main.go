// Command colarm-datagen emits the synthetic benchmark datasets (the
// stand-ins for UCI chess, mushroom and PUMSB — see DESIGN.md §4) or the
// paper's Table 1 salary example as CSV.
//
// Usage:
//
//	colarm-datagen -dataset mushroom -seed 7 > mushroom.csv
//	colarm-datagen -dataset chess -scale 0.25 -o chess-small.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"colarm/internal/datagen"
	"colarm/internal/relation"
)

func main() {
	var (
		dataset = flag.String("dataset", "salary", "dataset: salary, chess, mushroom, pumsb")
		seed    = flag.Int64("seed", 1, "generator seed")
		scale   = flag.Float64("scale", 1.0, "record-count scale factor")
		out     = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()
	if err := run(*dataset, *seed, *scale, *out); err != nil {
		fmt.Fprintln(os.Stderr, "colarm-datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, seed int64, scale float64, out string) error {
	var (
		d   *relation.Dataset
		err error
	)
	start := time.Now()
	switch dataset {
	case "salary":
		d = datagen.Salary()
	case "chess":
		d, err = datagen.Generate(datagen.Scaled(datagen.ChessConfig(seed), scale))
	case "mushroom":
		d, err = datagen.Generate(datagen.Scaled(datagen.MushroomConfig(seed), scale))
	case "pumsb":
		d, err = datagen.Generate(datagen.Scaled(datagen.PUMSBConfig(seed), scale))
	default:
		return fmt.Errorf("unknown dataset %q (want salary, chess, mushroom or pumsb)", dataset)
	}
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	genTime := time.Since(start)
	start = time.Now()
	if err := d.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d records, %d attributes (generated in %s, written in %s)\n",
		dataset, d.NumRecords(), d.NumAttrs(),
		genTime.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	return nil
}
