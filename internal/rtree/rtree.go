// Package rtree implements an n-dimensional R-tree over integer
// coordinate boxes, the first layer of COLARM's MIP-index (paper Section
// 3.3). Leaf entries are the bounding boxes of closed frequent itemsets
// (MIPs) tagged with their global support counts; the SUPPORTED-SEARCH
// operator exploits a per-node max-support aggregate to prune subtrees
// that cannot satisfy the query's minimum support (Lemma 4.4).
//
// Trees are built either by bulk packing (STR or Morton order, see
// build.go — the offline default, following Kamel & Faloutsos' packed
// R-trees) or by dynamic insertion with Guttman's linear or quadratic
// node splits (insert.go).
package rtree

import (
	"fmt"

	"colarm/internal/itemset"
)

// DefaultFanout is the default maximum number of entries per node.
const DefaultFanout = 16

// Entry is one leaf record: the MIP bounding box of a closed frequent
// itemset, the itemset's id in the IT-tree, and its global support count.
type Entry struct {
	Box     itemset.Box
	ID      int32
	Support int32
}

type node struct {
	box        itemset.Box
	maxSupport int32
	leaf       bool
	children   []*node
	entries    []Entry
}

// Layout selects the physical organization of a Tree.
type Layout int

const (
	// FlatLayout packs nodes into contiguous slabs (see flat.go); the
	// production layout for bulk-built trees.
	FlatLayout Layout = iota
	// PointerLayout stores one heap node per tree node; the
	// legacy/differential layout, and the layout of New() dynamic trees.
	PointerLayout
)

func (l Layout) String() string {
	switch l {
	case FlatLayout:
		return "flat"
	case PointerLayout:
		return "pointer"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Tree is an n-dimensional R-tree. The zero value is not usable; create
// trees with Bulk, BulkLayout or New.
type Tree struct {
	root   *node
	dims   int
	fanout int
	minFil int
	size   int
	split  SplitAlgorithm

	// Flat slab layout (see flat.go). When flat is true, root is nil and
	// the tree lives in the arenas below.
	flat     bool
	froot    int32
	fnodes   []fnode
	nboxes   []int32 // per-node boxes: dims Lo then dims Hi at i*2*dims
	kidArena []int32 // interior child-index runs
	entBoxes []int32 // per-entry boxes, same inline layout as nboxes
	entIDs   []int32
	entSups  []int32
}

// Layout reports the tree's physical layout.
func (t *Tree) Layout() Layout {
	if t.flat {
		return FlatLayout
	}
	return PointerLayout
}

// SplitAlgorithm selects the node split used by dynamic insertion.
type SplitAlgorithm int

const (
	// QuadraticSplit is Guttman's quadratic-cost split (default).
	QuadraticSplit SplitAlgorithm = iota
	// LinearSplit is Guttman's linear-cost split.
	LinearSplit
)

func (s SplitAlgorithm) String() string {
	switch s {
	case QuadraticSplit:
		return "quadratic"
	case LinearSplit:
		return "linear"
	default:
		return fmt.Sprintf("SplitAlgorithm(%d)", int(s))
	}
}

// New creates an empty dynamic R-tree of the given dimensionality.
// fanout <= 0 selects DefaultFanout.
func New(dims, fanout int, split SplitAlgorithm) (*Tree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("rtree: dimensionality %d < 1", dims)
	}
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: fanout %d < 2", fanout)
	}
	return &Tree{
		root:   &node{leaf: true, box: itemset.NewBox(dims)},
		dims:   dims,
		fanout: fanout,
		minFil: max(1, fanout*2/5), // Guttman's 40% minimum fill
		split:  split,
	}, nil
}

// Size returns the number of stored entries.
func (t *Tree) Size() int { return t.size }

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Fanout returns the maximum node capacity.
func (t *Tree) Fanout() int { return t.fanout }

// Height returns the number of levels (1 for a single leaf root, 0 for
// an empty tree with no entries but a leaf root — we report 1 there too
// to keep cost formulae simple).
func (t *Tree) Height() int {
	if t.flat {
		return t.heightFlat()
	}
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// SearchStats counts the work a traversal performed; the cost model
// calibrates its unit costs against these.
type SearchStats struct {
	NodesVisited   int
	EntriesChecked int
	EntriesEmitted int
}

// Visit receives each matching entry with its classification against the
// query region (Contained or Partial — Disjoint entries are never
// emitted). Returning false stops the traversal early.
type Visit func(e Entry, rel itemset.Rel) bool

// Search visits every entry whose box intersects the region. It
// implements the paper's SEARCH operator.
func (t *Tree) Search(reg *itemset.Region, visit Visit) SearchStats {
	var st SearchStats
	if t.flat {
		t.searchFlat(t.froot, reg, false, -1, visit, &st)
		return st
	}
	t.search(t.root, reg, false, -1, visit, &st)
	return st
}

// SupportedSearch additionally prunes nodes and entries whose (max)
// support is below minCount — the paper's SUPPORTED-SEARCH operator over
// the supported R-tree. minCount is an absolute record count.
func (t *Tree) SupportedSearch(reg *itemset.Region, minCount int, visit Visit) SearchStats {
	var st SearchStats
	if t.flat {
		t.searchFlat(t.froot, reg, false, int32(minCount), visit, &st)
		return st
	}
	t.search(t.root, reg, false, int32(minCount), visit, &st)
	return st
}

// search walks the tree. containedAbove short-circuits region tests once
// an ancestor node box was classified Contained (every descendant box is
// then Contained as well). minCount < 0 disables support pruning.
func (t *Tree) search(n *node, reg *itemset.Region, containedAbove bool, minCount int32, visit Visit, st *SearchStats) bool {
	st.NodesVisited++
	if n.leaf {
		for _, e := range n.entries {
			st.EntriesChecked++
			if minCount >= 0 && e.Support < minCount {
				continue
			}
			rel := itemset.Contained
			if !containedAbove {
				rel = reg.Relation(e.Box)
				if rel == itemset.Disjoint {
					continue
				}
			}
			st.EntriesEmitted++
			if !visit(e, rel) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if minCount >= 0 && c.maxSupport < minCount {
			continue
		}
		childContained := containedAbove
		if !childContained {
			switch reg.Relation(c.box) {
			case itemset.Disjoint:
				continue
			case itemset.Contained:
				childContained = true
			}
		}
		if !t.search(c, reg, childContained, minCount, visit, st) {
			return false
		}
	}
	return true
}

// SearchBox visits every entry whose box intersects the query box q;
// plain geometric search used by tests and tools.
func (t *Tree) SearchBox(q itemset.Box, visit func(e Entry) bool) SearchStats {
	var st SearchStats
	if t.flat {
		t.searchBoxFlat(t.froot, q, visit, &st)
		return st
	}
	t.searchBox(t.root, q, visit, &st)
	return st
}

func (t *Tree) searchBox(n *node, q itemset.Box, visit func(e Entry) bool, st *SearchStats) bool {
	st.NodesVisited++
	if n.leaf {
		for _, e := range n.entries {
			st.EntriesChecked++
			if q.Intersects(e.Box) {
				st.EntriesEmitted++
				if !visit(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if q.Intersects(c.box) {
			if !t.searchBox(c, q, visit, st) {
				return false
			}
		}
	}
	return true
}

// All visits every entry in the tree.
func (t *Tree) All(visit func(e Entry) bool) {
	if t.flat {
		t.allFlat(t.froot, visit)
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.leaf {
			for _, e := range n.entries {
				if !visit(e) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Validate checks structural invariants: node boxes cover children,
// max-support aggregates are correct, leaf depth is uniform, and node
// occupancy respects the fanout. Violations indicate construction bugs.
func (t *Tree) Validate() error {
	if t.flat {
		return t.validateFlat()
	}
	leafDepth := -1
	var walk func(n *node, depth int) (itemset.Box, int32, error)
	walk = func(n *node, depth int) (itemset.Box, int32, error) {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return itemset.Box{}, 0, fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			if len(n.entries) > t.fanout {
				return itemset.Box{}, 0, fmt.Errorf("rtree: leaf with %d entries exceeds fanout %d", len(n.entries), t.fanout)
			}
			b := itemset.NewBox(t.dims)
			var ms int32
			for _, e := range n.entries {
				b.ExtendBox(e.Box)
				if e.Support > ms {
					ms = e.Support
				}
			}
			if len(n.entries) > 0 && !n.box.ContainsBox(b) {
				return itemset.Box{}, 0, fmt.Errorf("rtree: leaf box %v does not cover entries %v", n.box, b)
			}
			if n.maxSupport < ms {
				return itemset.Box{}, 0, fmt.Errorf("rtree: leaf maxSupport %d < entry max %d", n.maxSupport, ms)
			}
			return n.box, n.maxSupport, nil
		}
		if len(n.children) == 0 {
			return itemset.Box{}, 0, fmt.Errorf("rtree: interior node with no children")
		}
		if len(n.children) > t.fanout {
			return itemset.Box{}, 0, fmt.Errorf("rtree: interior node with %d children exceeds fanout %d", len(n.children), t.fanout)
		}
		b := itemset.NewBox(t.dims)
		var ms int32
		for _, c := range n.children {
			cb, cms, err := walk(c, depth+1)
			if err != nil {
				return itemset.Box{}, 0, err
			}
			b.ExtendBox(cb)
			if cms > ms {
				ms = cms
			}
		}
		if !n.box.ContainsBox(b) {
			return itemset.Box{}, 0, fmt.Errorf("rtree: node box %v does not cover children %v", n.box, b)
		}
		if n.maxSupport < ms {
			return itemset.Box{}, 0, fmt.Errorf("rtree: node maxSupport %d < children max %d", n.maxSupport, ms)
		}
		return n.box, n.maxSupport, nil
	}
	_, _, err := walk(t.root, 0)
	return err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
