// Package delta implements the live-ingestion subsystem: an
// append-oriented store buffering transactions that arrive after the
// MIP-index build (inserts plus tombstone deletes), the merged execution
// view that keeps query answers exact while the base index ages, and the
// cost-based refresh policy that decides when buffering has become more
// expensive than rebuilding.
//
// # Exactness
//
// The frozen MIP-index cannot answer queries over the merged dataset by
// itself: inserting or deleting records moves the primary-support
// threshold (it is a fraction of the record count), can create closed
// frequent itemsets the index never stored, can drop stored ones below
// the threshold, shifts closure structure, and staleness the bounding
// boxes that Lemma 4.5's contained-box shortcut relies on. No
// per-query patching of base results is sound in general.
//
// The store therefore materializes, lazily and at most once per delta
// version, a merged View built exactly the way a from-scratch rebuild
// would build its index surface:
//
//  1. every per-item base tidset is copied and grown to the merged
//     record-id capacity, tombstoned bits cleared, buffered bits added
//     (this is the delta-side count pass, amortized over the version);
//  2. CHARM re-mines the closed frequent itemsets over the merged
//     tidsets at the merged primary-support count;
//  3. the closed IT-tree and the MIP bounding boxes are rebuilt from
//     the mining result with the same code the offline build uses.
//
// Record ids are stable: base records keep ids 0..N-1 (a tombstoned id
// is never reused) and buffered inserts take N, N+1, ... in arrival
// order. Every structure a plan consults — CFIs, supports, closures,
// boxes, item tidsets, the raw-value accessor — is thus byte-equal in
// content to the rebuild's, so all six plans return identical rules.
// The only degradation is structural: the packed R-tree is not rebuilt,
// so SEARCH falls back to a linear scan over the merged boxes. That
// per-query overhead is precisely what the refresh policy charges.
//
// # Refresh policy
//
// Each query executed against a non-empty delta accrues an estimated
// overhead, priced with the engine's calibrated cost units: a linear
// box scan (BoxRel x CFIs x dims, replacing the logarithmic R-tree
// descent) plus the delta-side counting work (IDProbe x buffered rows x
// attributes touched). When the accumulated overhead crosses the
// amortized cost of one rebuild — measured from the last build when
// available, estimated from the dataset shape otherwise — the store
// recommends a rebuild; the serving layer then rebuilds in the
// background and atomically swaps the new engine generation in.
package delta

import (
	"fmt"
	"sync"
	"time"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/cost"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
	"colarm/internal/mip"
	"colarm/internal/plans"
	"colarm/internal/pool"
	"colarm/internal/qerr"
	"colarm/internal/relation"
)

// Staleness describes how far an engine's base index has drifted from
// the merged dataset, and what the drift is costing.
type Staleness struct {
	// BufferedRows counts live buffered inserts (dead ones excluded).
	BufferedRows int
	// Tombstones counts deleted records (base and buffered).
	Tombstones int
	// Version increments on every ingest batch; 0 means the index is
	// fresh.
	Version uint64
	// Overhead is the accumulated estimated extra query cost paid to
	// the delta since the last build.
	Overhead time.Duration
	// RebuildCost is the amortized cost of one index rebuild the
	// overhead is weighed against.
	RebuildCost time.Duration
	// RebuildRecommended reports Overhead >= RebuildCost with a
	// non-empty delta: buffering now costs more than rebuilding.
	RebuildRecommended bool
}

// Applied describes one accepted ingest batch to apply observers: the
// version-clock interval the batch covers and the value-index tuples of
// every record the batch changed — inserted rows plus the (pre-delete)
// values of deleted rows. A standing query whose focal region contains
// none of these tuples provably kept its exact rule set across the
// interval: rule supports and measures are computed entirely within the
// focal subset, and a batch that neither adds a record to the subset
// nor removes one from it leaves every count the plans consult
// untouched.
type Applied struct {
	// FromVersion is the delta version before the batch applied,
	// ToVersion the version after (ToVersion = FromVersion + 1).
	FromVersion, ToVersion uint64
	// Rows holds the changed tuples (value indices, one per attribute).
	// Deletes of records that were already dead contribute nothing.
	Rows [][]int32
}

// Store buffers post-build transactions for one engine and serves the
// merged execution view. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	idx     *mip.Index
	primary float64
	units   cost.Units
	workers int

	obsMu     sync.Mutex
	observers map[int]func(Applied)
	nextObs   int

	rows  [][]int32   // buffered inserts (value indices, one per attr)
	dead  []bool      // dead[k]: buffered row k was later deleted
	tombs *bitset.Set // tombstoned base record ids
	ndead int

	version  uint64
	viewVer  uint64
	view     *plans.View
	overhead float64 // accumulated estimated delta overhead, nanos

	// rebuildNanos is the measured duration of the last index build;
	// when never measured, a shape-based estimate stands in.
	rebuildNanos float64
}

// NewStore creates an empty delta store over a freshly built (or
// loaded) index. primary is the index's primary-support fraction and
// units the engine's calibrated cost units.
func NewStore(idx *mip.Index, primary float64, units cost.Units) *Store {
	return &Store{
		idx:     idx,
		primary: primary,
		units:   units,
		tombs:   bitset.New(idx.Dataset.NumRecords()),
	}
}

// SetWorkers bounds the fan-out of the merged view's parallel box
// computation: 0 means one worker per CPU, 1 forces serial. Boxes are
// independent reads into pre-indexed slots, so the view is
// worker-count-invariant.
func (s *Store) SetWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers = n
}

// SetRebuildCost records the measured duration of the last full index
// build, sharpening the refresh policy's break-even point.
func (s *Store) SetRebuildCost(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d > 0 {
		s.rebuildNanos = float64(d.Nanoseconds())
	}
}

// Observe registers fn to be called after every accepted Ingest batch
// with the interval it covered and the tuples it changed. The callback
// runs synchronously on the ingesting goroutine, after the store's lock
// is released but possibly under locks of wrappers routing the ingest
// (a sharded collection) — it must return quickly and must not call
// back into the store or the engine; hand the notice to a worker
// instead. Under concurrent ingestion, callbacks for different batches
// may arrive out of order; the intervals themselves always tile.
// The returned cancel removes the observer.
func (s *Store) Observe(fn func(Applied)) (cancel func()) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if s.observers == nil {
		s.observers = make(map[int]func(Applied))
	}
	id := s.nextObs
	s.nextObs++
	s.observers[id] = fn
	return func() {
		s.obsMu.Lock()
		defer s.obsMu.Unlock()
		delete(s.observers, id)
	}
}

// notifyApplied fans one accepted batch out to the registered apply
// observers (no-op when there are none).
func (s *Store) notifyApplied(ap Applied) {
	s.obsMu.Lock()
	fns := make([]func(Applied), 0, len(s.observers))
	for _, fn := range s.observers {
		fns = append(fns, fn)
	}
	s.obsMu.Unlock()
	for _, fn := range fns {
		fn(ap)
	}
}

// Ingest appends a batch of inserts and applies a batch of deletes,
// atomically bumping the delta version. Rows carry value indices (the
// caller resolves labels against the frozen vocabulary); deletes name
// record ids in the current id space. The batch is validated before any
// mutation, so a rejected batch leaves the store unchanged. Accepted
// batches are reported to the registered apply observers.
func (s *Store) Ingest(rows [][]int32, deletes []int) (Staleness, error) {
	s.mu.Lock()
	d := s.idx.Dataset
	baseN, attrs := d.NumRecords(), d.NumAttrs()
	for _, row := range rows {
		if len(row) != attrs {
			defer s.mu.Unlock()
			return s.stalenessLocked(), fmt.Errorf("delta: row has %d values, dataset has %d attributes", len(row), attrs)
		}
		for a, v := range row {
			if int(v) < 0 || int(v) >= s.idx.Cards[a] {
				defer s.mu.Unlock()
				return s.stalenessLocked(), fmt.Errorf("delta: %w: attribute %q value index %d outside [0,%d)",
					qerr.ErrUnknownValue, d.Attrs[a].Name, v, s.idx.Cards[a])
			}
		}
	}
	limit := baseN + len(s.rows) + len(rows)
	for _, id := range deletes {
		if id < 0 || id >= limit {
			defer s.mu.Unlock()
			return s.stalenessLocked(), fmt.Errorf("delta: %w: %d outside [0,%d)", qerr.ErrBadRecordID, id, limit)
		}
	}
	ap := Applied{FromVersion: s.version, ToVersion: s.version + 1}
	for _, row := range rows {
		cp := make([]int32, attrs)
		copy(cp, row)
		s.rows = append(s.rows, cp)
		s.dead = append(s.dead, false)
		ap.Rows = append(ap.Rows, cp)
	}
	for _, id := range deletes {
		if id < baseN {
			if !s.tombs.Contains(id) {
				s.tombs.Add(id)
				ap.Rows = append(ap.Rows, baseRow(d, id))
			}
		} else if k := id - baseN; !s.dead[k] {
			s.dead[k] = true
			s.ndead++
			ap.Rows = append(ap.Rows, s.rows[k])
		}
	}
	s.version++
	st := s.stalenessLocked()
	s.mu.Unlock()
	s.notifyApplied(ap)
	return st, nil
}

// baseRow materializes one base record's value-index tuple.
func baseRow(d *relation.Dataset, r int) []int32 {
	row := make([]int32, d.NumAttrs())
	for a := range row {
		row[a] = int32(d.Value(r, a))
	}
	return row
}

// Staleness reports the store's current drift.
func (s *Store) Staleness() Staleness {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalenessLocked()
}

func (s *Store) stalenessLocked() Staleness {
	st := Staleness{
		BufferedRows: len(s.rows) - s.ndead,
		Tombstones:   s.tombs.Count() + s.ndead,
		Version:      s.version,
		Overhead:     time.Duration(s.overhead),
		RebuildCost:  time.Duration(s.rebuildCostLocked()),
	}
	st.RebuildRecommended = s.version > 0 && s.overhead >= s.rebuildCostLocked()
	return st
}

// Empty reports whether the store holds no buffered changes.
func (s *Store) Empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version == 0
}

// View returns the merged execution view for the current delta version,
// or nil when the store is empty (queries then run against the frozen
// index directly). The view is built lazily, at most once per version,
// and is immutable once returned.
func (s *Store) View() *plans.View {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version == 0 {
		return nil
	}
	if s.view == nil || s.viewVer != s.version {
		s.view = s.buildViewLocked()
		s.viewVer = s.version
	}
	return s.view
}

// buildViewLocked materializes the merged index surface. See the
// package comment for the exactness argument.
func (s *Store) buildViewLocked() *plans.View {
	d, sp := s.idx.Dataset, s.idx.Space
	baseN := d.NumRecords()
	capN := baseN + len(s.rows)

	live := bitset.New(capN)
	live.Fill()
	if gl := s.idx.Live; gl != nil {
		// A consolidated sharded index keeps deleted records as ghost
		// rows; they stay dead in every merged view.
		for r := 0; r < baseN; r++ {
			if !gl.Contains(r) {
				live.Remove(r)
			}
		}
	}
	s.tombs.ForEach(func(r int) bool {
		live.Remove(r)
		return true
	})
	for k, gone := range s.dead {
		if gone {
			live.Remove(baseN + k)
		}
	}

	// Merged per-item tidsets: the delta-side count pass, amortized
	// over the delta version.
	tids := make([]*bitset.Set, sp.NumItems())
	for i, t := range s.idx.Tidsets {
		g := t.CloneGrown(capN)
		s.tombs.ForEach(func(r int) bool {
			g.Remove(r)
			return true
		})
		tids[i] = g
	}
	for k, row := range s.rows {
		if s.dead[k] {
			continue
		}
		r := baseN + k
		for a, v := range row {
			tids[sp.ItemOf(a, int(v))].Add(r)
		}
	}
	for _, t := range tids {
		// Tombstone removal and buffered appends fragment the cloned
		// containers; re-pack before the view serves reads.
		t.Optimize()
	}

	// Re-mine at the merged primary-support count. A rebuild over the
	// merged data would do exactly this, so the CFIs, supports and
	// closure structure match it by construction.
	minCount := charm.CountFor(s.primary, live.Count())
	if minCount < 1 {
		minCount = 1
	}
	res, err := charm.MineTidsets(tids, capN, minCount)
	if err != nil {
		// Unreachable with the validated inputs above (the only error
		// path is minCount < 1, guarded).
		panic(fmt.Sprintf("delta: merged mining failed: %v", err))
	}
	tree := ittree.BuildLayout(res, sp.NumItems(), s.idx.Layout.ITTreeLayout())
	boxes := make([]itemset.Box, len(res.Closed))
	closed := res.Closed
	pool.For(len(closed), pool.Workers(s.workers), func(id int) {
		boxes[id] = mip.BoundingBox(sp, s.idx.Cards, tids, closed[id])
	})

	rows := s.rows // append-only; elements are never mutated
	return &plans.View{
		Tree:         tree,
		Boxes:        boxes,
		Tidsets:      tids,
		PrimaryCount: minCount,
		NumRecords:   capN,
		Live:         live,
		Skip:         func(r int) bool { return !live.Contains(r) },
		Value: func(r, a int) int {
			if r < baseN {
				return d.Value(r, a)
			}
			return int(rows[r-baseN][a])
		},
	}
}

// NoteQuery charges one query's estimated delta overhead to the refresh
// accumulator: the linear box scan that replaces the R-tree descent
// plus the buffered-row counting work, priced with the calibrated
// units. attrsTouched is the number of attributes the query's region
// and item set reference (<=0 defaults to the full schema).
func (s *Store) NoteQuery(attrsTouched int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version == 0 {
		return
	}
	dims := s.idx.Space.NumAttrs()
	if attrsTouched <= 0 || attrsTouched > dims {
		attrsTouched = dims
	}
	cfis := s.idx.ITTree.Size()
	if s.view != nil {
		cfis = s.view.Tree.Size()
	}
	buffered := len(s.rows) - s.ndead
	s.overhead += s.units.BoxRel*float64(cfis)*float64(dims) +
		s.units.IDProbe*float64(buffered)*float64(attrsTouched)
}

// ShouldRebuild reports whether the accumulated delta overhead has
// reached the amortized rebuild cost.
func (s *Store) ShouldRebuild() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version > 0 && s.overhead >= s.rebuildCostLocked()
}

// rebuildCostLocked returns the break-even threshold in nanos: the
// measured last build when known, otherwise a shape-based estimate
// (mining work grows with records x items; the constant is deliberately
// coarse — it only sets the scale at which buffering stops paying).
func (s *Store) rebuildCostLocked() float64 {
	if s.rebuildNanos > 0 {
		return s.rebuildNanos
	}
	d := s.idx.Dataset
	est := s.units.WordOp * float64(d.NumRecords()) * float64(s.idx.Space.NumItems())
	const floorNanos = 10e6 // never recommend rebuilding cheaper than 10ms
	if est < floorNanos {
		est = floorNanos
	}
	return est
}

// MergedDataset materializes the merged relation — base records minus
// tombstones plus buffered inserts — for a full rebuild. Value
// dictionaries are seeded from the frozen vocabulary in order, so the
// rebuilt dataset keeps the same item space (ingest cannot introduce
// new values; that always requires an offline rebuild from raw data).
func (s *Store) MergedDataset() (*relation.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.idx.Dataset
	attrs := d.NumAttrs()
	names := make([]string, attrs)
	for a := 0; a < attrs; a++ {
		names[a] = d.Attrs[a].Name
	}
	b := relation.NewBuilder(d.Name, names...)
	for a := 0; a < attrs; a++ {
		for _, label := range d.Attrs[a].Values {
			b.AddValue(a, label)
		}
	}
	idx := make([]int, attrs)
	ghosts := s.idx.Live
	for r := 0; r < d.NumRecords(); r++ {
		if s.tombs.Contains(r) {
			continue
		}
		if ghosts != nil && !ghosts.Contains(r) {
			continue // consolidated deletion; never resurrected
		}
		for a := 0; a < attrs; a++ {
			idx[a] = d.Value(r, a)
		}
		if err := b.AddRecordIdx(idx...); err != nil {
			return nil, err
		}
	}
	for k, row := range s.rows {
		if s.dead[k] {
			continue
		}
		for a := 0; a < attrs; a++ {
			idx[a] = int(row[a])
		}
		if err := b.AddRecordIdx(idx...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Snapshot returns deep copies of the buffered rows and the tombstoned
// record ids, for persistence. Restoring them through Ingest on a
// freshly loaded engine reproduces the store's state exactly.
func (s *Store) Snapshot() (rows [][]int32, deletes []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rows = make([][]int32, 0, len(s.rows))
	for _, row := range s.rows {
		cp := make([]int32, len(row))
		copy(cp, row)
		rows = append(rows, cp)
	}
	deletes = s.tombs.IDs()
	baseN := s.idx.Dataset.NumRecords()
	for k, gone := range s.dead {
		if gone {
			deletes = append(deletes, baseN+k)
		}
	}
	return rows, deletes
}
