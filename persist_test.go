package colarm

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	eng := salaryEngine(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPartitions() != eng.NumPartitions() {
		t.Fatalf("partitions %d != %d", loaded.NumPartitions(), eng.NumPartitions())
	}
	// Identical query answers.
	q := Query{
		Range:          map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.70,
		MinConfidence:  0.95,
		Plan:           SSEUV,
	}
	a, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rules %d != %d after reload", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		if a.Rules[i].String() != b.Rules[i].String() {
			t.Fatalf("rule %d differs after reload", i)
		}
	}
	// The query language works on the restored engine too.
	if _, err := loaded.MineQL(`REPORT LOCALIZED ASSOCIATION RULES FROM salary
		HAVING minsupport = 0.45 AND minconfidence = 0.8`); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	eng := salaryEngine(t)
	path := filepath.Join(t.TempDir(), "salary.colarm")
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngineFile(path, Options{CheckMode: "scan"})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPartitions() != eng.NumPartitions() {
		t.Error("partitions lost through file round trip")
	}
	if _, err := LoadEngineFile(filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Error("missing file must error")
	}
}

func TestLoadEngineErrors(t *testing.T) {
	if _, err := LoadEngine(strings.NewReader("junk"), Options{}); err == nil {
		t.Error("junk stream must error")
	}
	eng := salaryEngine(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(&buf, Options{CheckMode: "bogus"}); err == nil {
		t.Error("bogus check mode must error")
	}
}

func TestOpenCheckModeValidation(t *testing.T) {
	ds, _ := Salary()
	if _, err := Open(ds, Options{PrimarySupport: 0.18, CheckMode: "bogus"}); err == nil {
		t.Error("bogus check mode must error at Open")
	}
	if _, err := Open(ds, Options{PrimarySupport: 0.18, CheckMode: "scan"}); err != nil {
		t.Errorf("scan mode: %v", err)
	}
}
