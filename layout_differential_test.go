package colarm

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"colarm/internal/datagen"
)

// TestLayoutDifferential checks that the physical layout of the
// MIP-index is unobservable: for the monolith and K in {2, 3, 7}, a
// flat (arena-packed) engine and a pointer-layout engine must return
// byte-identical rules AND statistics on every plan (all six forced
// plus the optimizer's choice) over randomized datasets — fresh, with a
// live delta, after a rebuild/consolidation, and after post-rebuild
// ingestion. Both engines must also serialize to byte-identical
// snapshots: the layout is a physical choice, never logical state.
func TestLayoutDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	totalRules := 0
	for _, k := range []int{0, 2, 3, 7} {
		totalRules += runLayoutDifferential(t, rng, k)
	}
	if totalRules == 0 {
		t.Fatal("no layout trial produced any rules; the differential comparison is vacuous")
	}
}

func runLayoutDifferential(t *testing.T, rng *rand.Rand, k int) int {
	t.Helper()
	cfg := randomDiffConfig(rng, 200+k)
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatalf("K=%d: generate: %v", k, err)
	}
	ds := &Dataset{rel: d}
	primary := 0.15 + 0.2*rng.Float64()
	open := func(layout string) *Engine {
		e, err := Open(ds, Options{PrimarySupport: primary, Workers: 4, Shards: k, Layout: layout})
		if err != nil {
			t.Fatalf("K=%d: open %s: %v", k, layout, err)
		}
		return e
	}
	flat, ptr := open("flat"), open("pointer")

	queries := make([]Query, 2)
	for i := range queries {
		queries[i] = randomDiffQuery(rng, ds)
	}
	allPlans := []Plan{SEV, SVS, SSEV, SSVS, SSEUV, ARM, Auto}

	totalRules := 0
	compare := func(stage string) {
		t.Helper()
		for qi, q := range queries {
			for _, plan := range allPlans {
				pq := q
				pq.Plan = plan
				label := fmt.Sprintf("K=%d %s query %d plan %s", k, stage, qi, plan)
				resF, err := flat.Mine(pq)
				if err != nil {
					t.Fatalf("%s: flat: %v", label, err)
				}
				resP, err := ptr.Mine(pq)
				if err != nil {
					t.Fatalf("%s: pointer: %v", label, err)
				}
				if !reflect.DeepEqual(resF.Rules, resP.Rules) {
					t.Fatalf("%s: layouts disagree on rules\nflat:    %v\npointer: %v",
						label, resF.Rules, resP.Rules)
				}
				sf, sp := resF.Stats, resP.Stats
				sf.DurationNanos, sp.DurationNanos = 0, 0
				if sf != sp {
					// Both layouts pack the identical R-tree shape, so
					// even traversal counters must match.
					t.Fatalf("%s: layouts disagree on stats\nflat:    %+v\npointer: %+v",
						label, sf, sp)
				}
				totalRules += len(resF.Rules)
			}
		}
	}

	compare("fresh")

	ins, dels := randomIngestBatch(rng, ds, d.NumRecords(), true)
	for name, e := range map[string]*Engine{"flat": flat, "pointer": ptr} {
		if _, err := e.Ingest(ins, dels); err != nil {
			t.Fatalf("K=%d: ingest into %s: %v", k, name, err)
		}
	}
	compare("delta")

	ctx := context.Background()
	flat2, err := flat.Rebuild(ctx)
	if err != nil {
		t.Fatalf("K=%d: rebuild flat: %v", k, err)
	}
	ptr2, err := ptr.Rebuild(ctx)
	if err != nil {
		t.Fatalf("K=%d: rebuild pointer: %v", k, err)
	}
	flat, ptr = flat2, ptr2
	compare("rebuilt")

	// The snapshot carries logical state only; a flat engine and a
	// pointer engine over the same data must write identical bytes.
	var bufF, bufP bytes.Buffer
	if err := flat.Save(&bufF); err != nil {
		t.Fatalf("K=%d: save flat: %v", k, err)
	}
	if err := ptr.Save(&bufP); err != nil {
		t.Fatalf("K=%d: save pointer: %v", k, err)
	}
	if !bytes.Equal(bufF.Bytes(), bufP.Bytes()) {
		t.Fatalf("K=%d: snapshot bytes differ between layouts (%d vs %d bytes)",
			k, bufF.Len(), bufP.Len())
	}

	ins2, _ := randomIngestBatch(rng, ds, 0, false)
	for name, e := range map[string]*Engine{"flat": flat, "pointer": ptr} {
		if _, err := e.Ingest(ins2, nil); err != nil {
			t.Fatalf("K=%d: post-rebuild ingest into %s: %v", k, name, err)
		}
	}
	compare("post-rebuild delta")

	return totalRules
}
