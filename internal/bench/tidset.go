package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"colarm/internal/bitset"
)

// The tidset benchmark compares the two tidset representations — dense
// (one bitmap word per 64 records, the pre-hybrid layout) and hybrid
// (roaring-style array/bitmap/run containers) — on the three operator
// kernels every plan is built from:
//
//	SELECT     build the focal subset dq from a region: Fill, then per
//	           restricted attribute an Or of value tidsets And-ed in.
//	ELIMINATE  AndCount(item tidset, dq) per item: the support-counting
//	           pass that discards items below the local threshold.
//	VERIFY     Intersect + AndCount over candidate pairs: the
//	           record-level check of composed candidates.
//
// Each cell is measured at several tidset densities, in both scattered
// and clustered (storage-order run-friendly) layouts, together with the
// resident bytes of the tidsets plus dq. The result is the repository's
// perf trajectory format: BENCH_<pr>.json.

// TidsetRow is one (density, layout, mode) measurement.
type TidsetRow struct {
	Density   float64 `json:"density"`
	Clustered bool    `json:"clustered"`
	Mode      string  `json:"mode"` // "dense" or "hybrid"
	// Bytes is the logical container footprint (sum of Set.Bytes), an
	// exact but allocator-blind number. HeapBytes is what the sets
	// actually cost the process: the live-heap delta of building them,
	// measured after a forced GC on each side and averaged over three
	// builds so one stray allocation or background sweep cannot skew
	// the committed BENCH_*.json numbers.
	Bytes       int64 `json:"bytes"`
	HeapBytes   int64 `json:"heap_bytes"`
	SelectNs    int64 `json:"select_ns"`
	EliminateNs int64 `json:"eliminate_ns"`
	VerifyNs    int64 `json:"verify_ns"`
}

// TidsetReport is the serialized benchmark artifact (BENCH_<pr>.json).
type TidsetReport struct {
	Bench     string      `json:"bench"`
	PR        int         `json:"pr"`
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	CPUs      int         `json:"cpus"`
	Records   int         `json:"records"`
	Items     int         `json:"items"`
	Rows      []TidsetRow `json:"rows"`
}

// TidsetDensities are the sparsity levels the benchmark sweeps: from a
// rare attribute value (0.05% of records) to one present in half of
// them.
func TidsetDensities() []float64 { return []float64{0.0005, 0.005, 0.05, 0.5} }

// RunTidset measures both representations over records×items universes
// at every density in TidsetDensities, in scattered and clustered
// layouts. iters controls how many times each kernel runs; the minimum
// is reported (the usual noise floor estimator for short kernels).
func RunTidset(records, items, iters int, seed int64) *TidsetReport {
	rep := &TidsetReport{
		Bench:     "tidset",
		PR:        CurrentPR,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Records:   records,
		Items:     items,
	}
	for _, density := range TidsetDensities() {
		for _, clustered := range []bool{false, true} {
			// Same logical ids for both modes: generate once, build twice.
			ids := tidsetIDs(rand.New(rand.NewSource(seed)), records, items, density, clustered)
			for _, mode := range []string{"dense", "hybrid"} {
				prev := bitset.SetHybrid(mode == "hybrid")
				row := measureTidset(records, ids, iters)
				bitset.SetHybrid(prev)
				row.Density, row.Clustered, row.Mode = density, clustered, mode
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep
}

// tidsetIDs generates the per-item record id lists. Clustered layouts
// draw contiguous blocks (records arriving in storage order cluster an
// attribute value's tids into runs); scattered layouts draw points.
func tidsetIDs(rng *rand.Rand, records, items int, density float64, clustered bool) [][]int {
	out := make([][]int, items)
	for i := range out {
		want := int(density * float64(records))
		if want < 1 {
			want = 1
		}
		var ids []int
		if clustered {
			for len(ids) < want {
				start := rng.Intn(records)
				blk := 1 + rng.Intn(256)
				for r := start; r < records && r < start+blk && len(ids) < want; r++ {
					ids = append(ids, r)
				}
			}
		} else {
			for len(ids) < want {
				ids = append(ids, rng.Intn(records))
			}
		}
		out[i] = ids
	}
	return out
}

// measureTidset builds the tidsets under the current representation
// policy and times the three kernels.
func measureTidset(records int, ids [][]int, iters int) TidsetRow {
	build := func() []*bitset.Set {
		out := make([]*bitset.Set, len(ids))
		for i, list := range ids {
			out[i] = bitset.FromIDs(records, list...)
			out[i].Optimize()
		}
		return out
	}
	heap := heapBytesOf(func() any { return build() })
	tids := build()

	// SELECT: region build — three restricted attributes, each the union
	// of a sixth of the item vocabulary, intersected into a full set.
	sel := func() *bitset.Set {
		cur := bitset.New(records)
		cur.Fill()
		for a := 0; a < 3; a++ {
			dim := bitset.New(records)
			for v := a; v < len(tids); v += 6 {
				dim.Or(tids[v])
			}
			cur.And(dim)
		}
		return cur
	}
	var dq *bitset.Set
	selectNs := timeKernel(iters, func() { dq = sel() })

	// ELIMINATE: one AndCount per item against dq.
	minCount := dq.Count() / 10
	var survivors []int
	eliminateNs := timeKernel(iters, func() {
		survivors = survivors[:0]
		for i, t := range tids {
			if bitset.AndCount(t, dq) >= minCount {
				survivors = append(survivors, i)
			}
		}
	})

	// VERIFY: pairwise candidate checks over the surviving items
	// (bounded so the cell stays comparable across densities).
	cand := survivors
	if len(cand) < 2 {
		cand = []int{0, 1 % len(tids)}
	}
	if len(cand) > 12 {
		cand = cand[:12]
	}
	sink := 0
	verifyNs := timeKernel(iters, func() {
		for i := 0; i < len(cand); i++ {
			for j := i + 1; j < len(cand); j++ {
				x := bitset.Intersect(tids[cand[i]], tids[cand[j]])
				sink += bitset.AndCount(x, dq)
			}
		}
	})
	_ = sink

	var bytes int64
	for _, t := range tids {
		bytes += int64(t.Bytes())
	}
	bytes += int64(dq.Bytes())
	return TidsetRow{
		Bytes:       bytes,
		HeapBytes:   heap,
		SelectNs:    selectNs,
		EliminateNs: eliminateNs,
		VerifyNs:    verifyNs,
	}
}

// heapBytesOf measures the live-heap cost of whatever build allocates:
// force a full GC, read the heap watermark, build, force another GC (so
// only what build keeps alive remains), read again. The delta is
// averaged over three builds — single-shot ReadMemStats deltas swing
// with allocator slack and whatever the background sweeper was up to,
// which made earlier BENCH_*.json memory columns unstable.
func heapBytesOf(build func() any) int64 {
	const runs = 3
	var total int64
	for i := 0; i < runs; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		obj := build()
		runtime.GC()
		runtime.ReadMemStats(&after)
		if d := int64(after.HeapAlloc) - int64(before.HeapAlloc); d > 0 {
			total += d
		}
		runtime.KeepAlive(obj)
	}
	return total / runs
}

// timeKernel reports the minimum wall time of iters runs.
func timeKernel(iters int, f func()) int64 {
	if iters < 1 {
		iters = 1
	}
	best := int64(math.MaxInt64)
	for i := 0; i < iters; i++ {
		start := time.Now()
		f()
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
	}
	return best
}

// WriteJSON serializes the report as indented JSON.
func (r *TidsetReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintTidset renders the report as a side-by-side table with the
// hybrid/dense ratios that the benchmark exists to surface.
func PrintTidset(w io.Writer, rep *TidsetReport) {
	fmt.Fprintf(w, "Tidset representation benchmark — %d records × %d item tidsets (%s/%s, %d CPUs)\n",
		rep.Records, rep.Items, rep.GOOS, rep.GOARCH, rep.CPUs)
	fmt.Fprintf(w, "%-9s %-9s %-7s %12s %12s %12s %12s %12s\n",
		"density", "layout", "mode", "bytes", "heap", "select", "eliminate", "verify")

	// Pair dense/hybrid rows per (density, layout) to print ratios.
	type key struct {
		d float64
		c bool
	}
	byKey := map[key]map[string]TidsetRow{}
	var keys []key
	for _, row := range rep.Rows {
		k := key{row.Density, row.Clustered}
		if byKey[k] == nil {
			byKey[k] = map[string]TidsetRow{}
			keys = append(keys, k)
		}
		byKey[k][row.Mode] = row
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].d != keys[j].d {
			return keys[i].d < keys[j].d
		}
		return !keys[i].c && keys[j].c
	})
	layout := func(c bool) string {
		if c {
			return "clustered"
		}
		return "scattered"
	}
	for _, k := range keys {
		pair := byKey[k]
		for _, mode := range []string{"dense", "hybrid"} {
			row, ok := pair[mode]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-9.4f %-9s %-7s %12d %12d %12d %12d %12d\n",
				row.Density, layout(row.Clustered), row.Mode,
				row.Bytes, row.HeapBytes, row.SelectNs, row.EliminateNs, row.VerifyNs)
		}
		d, okD := pair["dense"]
		h, okH := pair["hybrid"]
		if okD && okH && d.Bytes > 0 {
			fmt.Fprintf(w, "%-9s %-9s %-7s %11.2fx %11.2fx %11.2fx %11.2fx %11.2fx\n",
				"", "", "ratio",
				ratio(h.Bytes, d.Bytes), ratio(h.HeapBytes, d.HeapBytes),
				ratio(h.SelectNs, d.SelectNs),
				ratio(h.EliminateNs, d.EliminateNs), ratio(h.VerifyNs, d.VerifyNs))
		}
	}
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return float64(a) / float64(b)
}
