package colarm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Canonical renders the query in a canonical string form: range
// attributes sorted by name with their selections sorted and
// deduplicated, item attributes sorted and deduplicated, thresholds
// normalized to shortest-round-trip decimals, and the plan by name.
// Two queries have equal canonical forms exactly when they request the
// same mining computation, regardless of map iteration order, slice
// order or duplicate selections — so the canonical form is the correct
// cache key for query results. (Keying on the raw field values instead
// is a subtle trap: two queries differing only in the order of their
// item attributes would miss each other's cached results.) Trace is
// excluded — tracing changes what is reported, not what is computed.
func (q Query) Canonical() string {
	var b strings.Builder
	b.WriteString("range{")
	attrs := make([]string, 0, len(q.Range))
	for a := range q.Range {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q=(", a)
		for j, v := range sortedUnique(q.Range[a]) {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q", v)
		}
		b.WriteByte(')')
	}
	b.WriteString("}|items{")
	for i, a := range sortedUnique(q.ItemAttributes) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q", a)
	}
	b.WriteString("}|minsupp=")
	b.WriteString(strconv.FormatFloat(q.MinSupport, 'g', -1, 64))
	b.WriteString("|minconf=")
	b.WriteString(strconv.FormatFloat(q.MinConfidence, 'g', -1, 64))
	b.WriteString("|maxcons=")
	b.WriteString(strconv.Itoa(q.MaxConsequent))
	b.WriteString("|plan=")
	b.WriteString(q.Plan.String())
	return b.String()
}

// sortedUnique returns a sorted copy of vs with duplicates removed.
func sortedUnique(vs []string) []string {
	if len(vs) == 0 {
		return nil
	}
	out := append([]string(nil), vs...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Validate checks the dataset-independent query parameters — the
// thresholds, the consequent cap and the plan — without an engine.
// Failures wrap ErrBadThreshold or ErrUnknownPlan. Dataset-dependent
// checks (attribute names, value labels) happen when the query reaches
// an engine, wrapping ErrUnknownAttribute/ErrUnknownValue.
func (q Query) Validate() error {
	if q.MinSupport <= 0 || q.MinSupport > 1 {
		return fmt.Errorf("colarm: %w: minsupport %v outside (0,1]", ErrBadThreshold, q.MinSupport)
	}
	if q.MinConfidence < 0 || q.MinConfidence > 1 {
		return fmt.Errorf("colarm: %w: minconfidence %v outside [0,1]", ErrBadThreshold, q.MinConfidence)
	}
	if q.MaxConsequent < 0 {
		return fmt.Errorf("colarm: %w: max consequent %d negative", ErrBadThreshold, q.MaxConsequent)
	}
	if q.Plan < Auto || q.Plan > ARM {
		return fmt.Errorf("colarm: %w: plan value %d", ErrUnknownPlan, int(q.Plan))
	}
	return nil
}
