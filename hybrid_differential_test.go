package colarm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"colarm/internal/bitset"
	"colarm/internal/datagen"
)

// TestHybridDifferential proves the tidset representation is invisible
// to the engine: for randomized datasets, an engine built entirely on
// dense (all-bitmap) tidsets and one built on hybrid containers return
// byte-identical rules and identical Stats — candidate and check
// counters included — for all six plans and Auto. Together with the
// per-operation equivalence tests in internal/bitset, this pins that
// the hybrid representation changes memory and speed, never answers.
func TestHybridDifferential(t *testing.T) {
	prev := bitset.SetHybrid(true)
	defer bitset.SetHybrid(prev)

	rng := rand.New(rand.NewSource(20260808))
	totalRules := 0
	for trial := 0; trial < 8; trial++ {
		cfg := randomDiffConfig(rng, trial)
		d, err := datagen.Generate(cfg)
		if err != nil {
			t.Fatalf("trial %d: generate: %v", trial, err)
		}
		primary := 0.15 + 0.2*rng.Float64()

		// Build one engine per representation policy. The policy is
		// captured per Set at construction, so everything each engine
		// allocates (item tidsets, CHARM intersections, MIP snapshots,
		// focal-subset bitmaps) carries its mode throughout the run.
		var engDense, engHybrid *Engine
		withHybrid(false, func() {
			engDense, err = Open(&Dataset{rel: d}, Options{PrimarySupport: primary})
		})
		if err != nil {
			t.Fatalf("trial %d: open dense: %v", trial, err)
		}
		withHybrid(true, func() {
			engHybrid, err = Open(&Dataset{rel: d}, Options{PrimarySupport: primary})
		})
		if err != nil {
			t.Fatalf("trial %d: open hybrid: %v", trial, err)
		}

		for qi := 0; qi < 2; qi++ {
			q := randomDiffQuery(rng, &Dataset{rel: d})
			for _, plan := range []Plan{SEV, SVS, SSEV, SSVS, SSEUV, ARM, Auto} {
				pq := q
				pq.Plan = plan
				label := fmt.Sprintf("trial %d query %d plan %s", trial, qi, plan)

				var resD, resH *Result
				var errD, errH error
				withHybrid(false, func() { resD, errD = engDense.Mine(pq) })
				withHybrid(true, func() { resH, errH = engHybrid.Mine(pq) })
				if (errD == nil) != (errH == nil) {
					t.Fatalf("%s: error divergence: dense %v, hybrid %v", label, errD, errH)
				}
				if errD != nil {
					continue
				}
				if !reflect.DeepEqual(resD.Rules, resH.Rules) {
					t.Fatalf("%s: rules diverge across representations\ndense:  %v\nhybrid: %v",
						label, resD.Rules, resH.Rules)
				}
				sd, sh := resD.Stats, resH.Stats
				sd.DurationNanos, sh.DurationNanos = 0, 0
				if sd != sh {
					t.Fatalf("%s: stats diverge across representations\ndense:  %+v\nhybrid: %+v",
						label, sd, sh)
				}
				totalRules += len(resD.Rules)
			}
		}
	}
	if totalRules == 0 {
		t.Fatal("no trial produced any rules; the differential comparison is vacuous")
	}
}

func withHybrid(on bool, fn func()) {
	prev := bitset.SetHybrid(on)
	defer bitset.SetHybrid(prev)
	fn()
}
