// Parallel execution layer for the mining operators.
//
// COLARM's online phase is embarrassingly parallel at two points: the
// per-candidate record-level support checks of ELIMINATE and the
// per-itemset rule generation of VERIFY. Both fan out across a bounded
// worker pool here. The design constraint is determinism: the parallel
// paths must produce byte-identical rule sets AND identical operator
// counters to the serial path, for every schedule, so that plan
// equivalence tests (and the cost model's calibration against the
// counters) are oblivious to the worker count.
//
// Determinism is achieved by structure, not by locking the serial
// algorithm:
//
//   - work items are indexed up front and results land in pre-sized
//     slices, so merge order equals submission order;
//   - the VERIFY oracle memo becomes a sharded map whose shards compute
//     under their lock, so each distinct itemset key is computed exactly
//     once — the OracleMisses/SupportChecks counters then equal the
//     number of distinct keys, exactly as the serial memo counts them;
//   - counters touched inside workers accumulate in atomics and are
//     folded into the query's Stats after the join.
package plans

import (
	"context"
	"sync"
	"sync/atomic"

	"colarm/internal/pool"
)

// cancelPollStride is the cadence of the cancellation probes in the
// operators' serial loops: one non-blocking channel read every this many
// iterations. Small enough that a cancelled query aborts within a few
// candidates' worth of work, large enough to be invisible in profiles.
const cancelPollStride = 16

// parallelForCtx is parallelFor with cooperative cancellation: every
// worker (and the serial path) polls ctx between items and stops
// claiming work once the context is done. It returns ctx.Err() when the
// context fired before all n items completed; items already started
// still finish (fn is never interrupted mid-call), so callers must
// discard partial output on error. The worker count returned is the
// fan-out actually used, as with parallelFor.
func parallelForCtx(ctx context.Context, n, workers int, fn func(i int)) (int, error) {
	return pool.ForCtx(ctx, n, workers, fn)
}

// parallelFor runs fn(i) for every i in [0,n) across at most workers
// goroutines. With workers <= 1 (or nothing to parallelize) it degrades
// to the plain serial loop, in index order. Work is distributed
// dynamically via an atomic cursor, so uneven item costs — common when
// candidate tidsets differ wildly in density — cannot idle a worker.
// It returns the number of goroutines actually used (1 for the serial
// path), which query traces record as the operator's fan-out.
func parallelFor(n, workers int, fn func(i int)) int {
	return pool.For(n, workers, fn)
}

// counterTally accumulates the Stats counters workers touch; the sums
// are schedule-independent, keeping the reported counters identical to
// a serial run.
type counterTally struct {
	oracleCalls   int64
	oracleMisses  int64
	supportChecks int64
}

func (t *counterTally) addTo(st *Stats) {
	st.OracleCalls += int(atomic.LoadInt64(&t.oracleCalls))
	st.OracleMisses += int(atomic.LoadInt64(&t.oracleMisses))
	st.SupportChecks += int(atomic.LoadInt64(&t.supportChecks))
}

// cacheShards sizes the sharded support memo. Shard collisions only
// serialize the (rare) concurrent computes of colliding keys; 64 shards
// keep that negligible at any realistic GOMAXPROCS.
const cacheShards = 64

type countShard struct {
	mu sync.Mutex
	m  map[string]int
}

// shardedCounts is the concurrent counterpart of the serial oracle's
// map[string]int memo.
type shardedCounts struct {
	shards [cacheShards]countShard
}

func newShardedCounts() *shardedCounts {
	sc := &shardedCounts{}
	for i := range sc.shards {
		sc.shards[i].m = make(map[string]int)
	}
	return sc
}

// get returns the memoized count for key, computing and storing it on a
// miss. The shard lock is held across compute, so every distinct key is
// computed exactly once and reports fresh=true to exactly one caller —
// the property that keeps the miss counters deterministic.
func (sc *shardedCounts) get(key string, compute func() int) (v int, fresh bool) {
	sh := &sc.shards[fnv32a(key)%cacheShards]
	sh.mu.Lock()
	if v, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return v, false
	}
	v = compute()
	sh.m[key] = v
	sh.mu.Unlock()
	return v, true
}

// fnv32a is the 32-bit FNV-1a hash, inlined to avoid a hash.Hash32
// allocation per oracle probe.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// workers resolves the executor's worker-count knob: 0 (or negative)
// means one worker per logical CPU, 1 forces the serial path.
func (ex *Executor) workers() int {
	return pool.Workers(ex.Workers)
}
