package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a cumulative metric: a single atomic word, safe for any
// number of concurrent incrementers.
type Counter struct {
	name   string // metric family name
	labels string // rendered label pairs (`plan="S-E-V"`) or ""
	help   string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry holds a process's (or engine's) metrics and renders them in
// the Prometheus text exposition format. Registration is idempotent:
// asking for an existing name+labels pair returns the existing metric,
// so engines sharing a registry aggregate naturally (distinguish them
// with labels). Registration takes the registry lock; recording on the
// returned metrics never does.
type Registry struct {
	mu    sync.Mutex
	order []any // *Counter | *Gauge | *Histogram, in registration order
	byKey map[string]any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]any)}
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, "", help)
}

// CounterWith registers (or returns) a counter with rendered label
// pairs, e.g. `dataset="chess",plan="S-E-V"`.
func (r *Registry) CounterWith(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "{" + labels + "}"
	if m, ok := r.byKey[key]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %s already registered as a different type", key))
		}
		return c
	}
	c := &Counter{name: name, labels: labels, help: help}
	r.byKey[key] = c
	r.order = append(r.order, c)
	return c
}

// Histogram registers (or returns) a histogram with the given bucket
// upper bounds in seconds (nil selects DefaultLatencyBounds).
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "{" + labels + "}"
	if m, ok := r.byKey[key]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %s already registered as a different type", key))
		}
		return h
	}
	if bounds == nil {
		bounds = DefaultLatencyBounds()
	}
	h := newHistogram(name, labels, help, bounds)
	r.byKey[key] = h
	r.order = append(r.order, h)
	return h
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), in registration order, with
// HELP/TYPE headers emitted once per metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]any(nil), r.order...)
	r.mu.Unlock()

	headered := make(map[string]bool)
	header := func(name, help, typ string) error {
		if headered[name] {
			return nil
		}
		headered[name] = true
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		return err
	}
	for _, m := range order {
		switch m := m.(type) {
		case *Counter:
			if err := header(m.name, m.help, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, renderLabels(m.labels, ""), m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if err := header(m.name, m.help, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, renderLabels(m.labels, ""), m.Value()); err != nil {
				return err
			}
		case *Histogram:
			if err := header(m.name, m.help, "histogram"); err != nil {
				return err
			}
			// Snapshot every bucket slot (including the implicit +Inf
			// slot) once, and derive the +Inf series and _count from
			// that same snapshot. Observe adds to the bucket before the
			// count, so reading m.Count() after the finite buckets could
			// see a count below the last cumulative bucket — rendering a
			// non-monotone histogram that Prometheus rejects as corrupt.
			counts := make([]int64, len(m.buckets))
			total := int64(0)
			for i := range m.buckets {
				counts[i] = m.buckets[i].Load()
				total += counts[i]
			}
			cum := int64(0)
			for i, b := range m.bounds {
				cum += counts[i]
				le := strconv.FormatFloat(b, 'g', -1, 64)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, renderLabels(m.labels, `le="`+le+`"`), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, renderLabels(m.labels, `le="+Inf"`), total); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", m.name, renderLabels(m.labels, ""), m.Sum().Seconds()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, renderLabels(m.labels, ""), total); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels joins base label pairs with an extra pair into the
// exposition's {...} block, or returns "" when both are empty.
func renderLabels(base, extra string) string {
	switch {
	case base == "" && extra == "":
		return ""
	case base == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + base + "}"
	default:
		return "{" + base + "," + extra + "}"
	}
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it on /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
