package colarm

import (
	"fmt"
	"strings"
	"time"

	"colarm/internal/obs"
)

// TraceSpan is one operator's execution record inside a query trace.
type TraceSpan struct {
	// Operator is the paper's operator name: SEARCH, SUPPORTED-SEARCH,
	// ELIMINATE, UNION, VERIFY, SELECT or ARM.
	Operator string
	Duration time.Duration
	// In and Out count the items entering and leaving the operator
	// (candidate itemsets, records, rules — whatever the operator
	// consumes/produces); -1 means not applicable.
	In  int
	Out int
	// Workers is the number of goroutines the operator fanned out to
	// (1 for serial sections).
	Workers int
	// Detail carries operator-specific counters, e.g.
	// "filtered=3 checks=42 eliminated=23".
	Detail string
}

// Trace is the per-operator execution trace of one mined query,
// attached to Result when Query.Trace is set.
type Trace struct {
	Plan  string // executed plan name, e.g. "SS-E-V"
	Total time.Duration
	Spans []TraceSpan
}

// newTrace converts the executor's internal trace; nil in, nil out.
func newTrace(tr *obs.Trace) *Trace {
	if tr == nil {
		return nil
	}
	out := &Trace{Plan: tr.Label, Total: tr.Total}
	for _, s := range tr.Spans {
		out.Spans = append(out.Spans, TraceSpan{
			Operator: s.Op.String(),
			Duration: s.Duration,
			In:       s.In,
			Out:      s.Out,
			Workers:  s.Workers,
			Detail:   s.Detail,
		})
	}
	return out
}

// Tree renders the trace as an operator tree, one line per span:
//
//	SS-E-V  1.234ms
//	├─ SUPPORTED-SEARCH      312µs  out=57  (nodes=9 entries=57 contained=12 partial=45)
//	├─ ELIMINATE             501µs  in=57 out=31  ×4  (filtered=3 checks=42 eliminated=23)
//	└─ VERIFY                401µs  in=31 out=18  ×4  (oracle=120 misses=14)
func (t *Trace) Tree() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %s\n", t.Plan, t.Total.Round(time.Microsecond))
	for i, s := range t.Spans {
		branch := "├─"
		if i == len(t.Spans)-1 {
			branch = "└─"
		}
		fmt.Fprintf(&b, "%s %-16s %10s", branch, s.Operator, s.Duration.Round(time.Microsecond))
		if s.In >= 0 {
			fmt.Fprintf(&b, "  in=%d", s.In)
		}
		if s.Out >= 0 {
			fmt.Fprintf(&b, " out=%d", s.Out)
		}
		if s.Workers > 1 {
			fmt.Fprintf(&b, "  ×%d", s.Workers)
		}
		if s.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", s.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
