package cost

import (
	"math/rand"
	"testing"

	"colarm/internal/itemset"
	"colarm/internal/mip"
	"colarm/internal/plans"
	"colarm/internal/relation"
)

// skewedDataset builds a dataset with correlated blocks so CFIs exist.
func skewedDataset(t testing.TB, seed int64, m int) *relation.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	nAttrs := 4
	b := relation.NewBuilder("skewed", "A", "B", "C", "D")
	for a := 0; a < nAttrs; a++ {
		for v := 0; v < 4; v++ {
			b.AddValue(a, string(rune('a'+a))+string(rune('0'+v)))
		}
	}
	for i := 0; i < m; i++ {
		row := make([]int, nAttrs)
		base := r.Intn(2)
		for a := range row {
			if r.Intn(4) > 0 {
				row[a] = base
			} else {
				row[a] = r.Intn(4)
			}
		}
		if err := b.AddRecordIdx(row...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func buildModel(t testing.TB, m int) (*Model, *plans.Executor) {
	t.Helper()
	d := skewedDataset(t, 42, m)
	idx, err := mip.Build(d, mip.Options{PrimarySupport: 0.1, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	return NewModel(idx, DefaultUnits()), plans.NewExecutor(idx)
}

func TestMeasureUnitsSane(t *testing.T) {
	// The micro-benchmark windows are tens of microseconds; one
	// scheduler stall while the rest of the suite shares the CPU can
	// inflate a unit a thousand-fold, so judge plausibility on the
	// best of a few attempts.
	u := MeasureUnits(1000, 4)
	if u.WordOp <= 0 || u.BoxRel <= 0 || u.MapOp <= 0 || u.GenOp <= 0 {
		t.Fatalf("units must be positive: %+v", u)
	}
	for try := 0; try < 4 && (u.WordOp > 1000 || u.MapOp > 10000); try++ {
		v := MeasureUnits(1000, 4)
		if v.WordOp < u.WordOp {
			u.WordOp = v.WordOp
		}
		if v.MapOp < u.MapOp {
			u.MapOp = v.MapOp
		}
	}
	if u.WordOp > 1000 || u.MapOp > 10000 {
		t.Errorf("units implausibly large: %+v", u)
	}
	// Degenerate args are clamped.
	u2 := MeasureUnits(0, 0)
	if u2.WordOp <= 0 {
		t.Error("clamped measure failed")
	}
}

func TestNewModelStats(t *testing.T) {
	mo, _ := buildModel(t, 300)
	if mo.avgLen <= 1 {
		t.Errorf("avgLen = %v, want > 1", mo.avgLen)
	}
	for a, f := range mo.attrFrac {
		if f < 0 || f > 1 {
			t.Errorf("attrFrac[%d] = %v", a, f)
		}
	}
	// Zero-valued units select defaults.
	mo2 := NewModel(mo.Idx, Units{})
	if mo2.U != DefaultUnits() {
		t.Error("zero units must select defaults")
	}
}

func TestEstimateShapes(t *testing.T) {
	mo, _ := buildModel(t, 300)
	reg := itemset.RegionFor(mo.Idx.Space)
	if err := reg.Restrict(0, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	q := &plans.Query{Region: reg, MinSupport: 0.3, MinConfidence: 0.8}
	ests := mo.Estimate(q)
	if len(ests) != 6 {
		t.Fatalf("estimates = %d", len(ests))
	}
	byPlan := map[plans.Kind]Estimate{}
	for _, e := range ests {
		if e.Total < 0 {
			t.Errorf("%v total negative: %v", e.Plan, e.Total)
		}
		byPlan[e.Plan] = e
	}
	// The supported search must never expect more candidates than the
	// plain search.
	if byPlan[plans.SSEV].Candidates > byPlan[plans.SEV].Candidates+1e-9 {
		t.Errorf("SS candidates %v > S candidates %v",
			byPlan[plans.SSEV].Candidates, byPlan[plans.SEV].Candidates)
	}
	// SS-E-U-V must not cost more in ELIMINATE than SS-E-V (the
	// contained shortcut removes checks).
	if byPlan[plans.SSEUV].Eliminate > byPlan[plans.SSEV].Eliminate+1e-9 {
		t.Errorf("SSEUV eliminate %v > SSEV eliminate %v",
			byPlan[plans.SSEUV].Eliminate, byPlan[plans.SSEV].Eliminate)
	}
	// Contained estimate bounded by candidates.
	for _, e := range ests {
		if e.Contained > e.Candidates+1e-9 {
			t.Errorf("%v contained %v > candidates %v", e.Plan, e.Contained, e.Candidates)
		}
	}
}

func TestEmptyRegionEstimatesZero(t *testing.T) {
	mo, _ := buildModel(t, 100)
	reg := itemset.RegionFor(mo.Idx.Space)
	// Make an empty region: restrict to a value then to nothing.
	if err := reg.Restrict(0, nil); err != nil {
		t.Fatal(err)
	}
	q := &plans.Query{Region: reg, MinSupport: 0.3, MinConfidence: 0.8}
	for _, e := range mo.Estimate(q) {
		if e.Total != 0 {
			t.Errorf("%v estimate on empty region = %v", e.Plan, e.Total)
		}
	}
}

func TestChooseReturnsArgmin(t *testing.T) {
	mo, _ := buildModel(t, 300)
	reg := itemset.RegionFor(mo.Idx.Space)
	q := &plans.Query{Region: reg, MinSupport: 0.5, MinConfidence: 0.9}
	best, ests := mo.Choose(q)
	for _, e := range ests {
		if e.Plan == best {
			continue
		}
		var bt float64
		for _, x := range ests {
			if x.Plan == best {
				bt = x.Total
			}
		}
		if e.Total < bt {
			t.Errorf("Choose picked %v (%v) but %v is cheaper (%v)", best, bt, e.Plan, e.Total)
		}
	}
}

// TestCostTracksMeasuredOrdering checks the model's key fitness-for-
// purpose property on a moderate dataset: across a spread of queries,
// the plan the model picks should rarely be much worse than the best
// measured plan (the paper reports <=5% regret on mispicks; we allow a
// generous factor on this small synthetic workload).
func TestCostTracksMeasuredOrdering(t *testing.T) {
	mo, ex := buildModel(t, 600)
	r := rand.New(rand.NewSource(7))
	queries := 0
	regressions := 0
	for trial := 0; trial < 12; trial++ {
		reg := itemset.RegionFor(mo.Idx.Space)
		for a := 0; a < mo.Idx.Space.NumAttrs(); a++ {
			if r.Intn(2) == 0 {
				continue
			}
			card := mo.Idx.Space.Cardinality(a)
			var vals []int
			for v := 0; v < card; v++ {
				if r.Intn(2) == 0 {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				vals = []int{r.Intn(card)}
			}
			if err := reg.Restrict(a, vals); err != nil {
				t.Fatal(err)
			}
		}
		q := &plans.Query{Region: reg, MinSupport: 0.2 + r.Float64()*0.6, MinConfidence: 0.8}
		chosen, _ := mo.Choose(q)

		// Measure all plans by operation counts (deterministic proxy
		// for time: support checks dominate).
		work := map[plans.Kind]int{}
		for _, k := range plans.Kinds() {
			res, err := ex.Run(k, q)
			if err != nil {
				t.Fatal(err)
			}
			w := res.Stats.SupportChecks*10 + res.Stats.REntriesChecked +
				res.Stats.RNodesVisited + res.Stats.ARMFrequentItemsets*12 +
				res.Stats.OracleCalls
			work[k] = w
		}
		best := chosen
		for k, w := range work {
			if w < work[best] {
				best = k
			}
		}
		queries++
		if work[chosen] > 4*work[best]+400 {
			regressions++
			t.Logf("trial %d: chose %v (work %d) vs best %v/%d", trial, chosen, work[chosen], best, work[best])
		}
	}
	if regressions > queries/3 {
		t.Errorf("optimizer badly mispredicted %d/%d queries", regressions, queries)
	}
}
