package standing

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"colarm"
)

func salaryEngine(t testing.TB, shards, workers int) *colarm.Engine {
	t.Helper()
	ds, err := colarm.Salary()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := colarm.Open(ds, colarm.Options{
		PrimarySupport: 0.18,
		Shards:         shards,
		Workers:        workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func quiesce(t testing.TB, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
}

// drain returns every event currently buffered past the cursor without
// blocking for more.
func drain(t testing.TB, c *Cursor) []Event {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out []Event
	for {
		evs, err := c.Next(ctx)
		out = append(out, evs...)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, ErrClosed) {
				return out
			}
			t.Fatalf("drain: %v", err)
		}
	}
}

// replay folds an event stream into the rule set it describes: a
// snapshot resets the state, a diff or epoch drops Disappeared and
// upserts Appeared and Updated.
func replay(evs []Event) map[string]colarm.Rule {
	state := map[string]colarm.Rule{}
	for _, ev := range evs {
		switch ev.Type {
		case EventSnapshot:
			state = make(map[string]colarm.Rule, len(ev.Rules))
			for _, r := range ev.Rules {
				state[colarm.RuleKey(r)] = r
			}
		case EventDiff, EventEpoch:
			for _, r := range ev.Disappeared {
				delete(state, colarm.RuleKey(r))
			}
			for _, r := range ev.Appeared {
				state[colarm.RuleKey(r)] = r
			}
			for _, r := range ev.Updated {
				state[colarm.RuleKey(r)] = r
			}
		}
	}
	return state
}

func ruleMap(rules []colarm.Rule) map[string]colarm.Rule {
	out := make(map[string]colarm.Rule, len(rules))
	for _, r := range rules {
		out[colarm.RuleKey(r)] = r
	}
	return out
}

// TestReplayDifferential is the tentpole's correctness bar: for every
// plan, sharded and monolithic, serial and parallel, replaying a
// subscription's event stream over a randomized ingest interleaving
// reconstructs exactly the rule set /v1/mine would return at the final
// version.
func TestReplayDifferential(t *testing.T) {
	plans := []colarm.Plan{colarm.SEV, colarm.SVS, colarm.SSEV, colarm.SSVS, colarm.SSEUV, colarm.ARM}
	for _, tc := range []struct{ shards, workers int }{
		{1, 1}, {4, 1}, {1, 0}, {4, 0},
	} {
		t.Run(fmt.Sprintf("K%d_workers%d", tc.shards, tc.workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(20260808 + tc.shards*10 + tc.workers)))
			eng := salaryEngine(t, tc.shards, tc.workers)
			ds := eng.Dataset()
			m := NewManager(Config{EventBuffer: 4096})
			defer m.Close()
			m.Attach("salary", eng)

			// One subscription per plan: the forced plan is part of the
			// canonical form, so each gets its own tracker.
			base := colarm.Query{
				Range:          map[string][]string{"Location": {"Boston", "Seattle"}},
				ItemAttributes: []string{"Company", "Gender", "Age", "Salary"},
				MinSupport:     0.25,
				MinConfidence:  0.5,
			}
			cursors := make(map[colarm.Plan]*Cursor, len(plans))
			for _, p := range plans {
				q := base
				q.Plan = p
				s, err := m.Create(context.Background(), "salary", q, nil)
				if err != nil {
					t.Fatalf("create plan %s: %v", p, err)
				}
				cursors[p] = s.Cursor(0)
			}

			attrs := ds.Attributes()
			vocab := make(map[string][]string, len(attrs))
			for _, a := range attrs {
				vocab[a], _ = ds.Values(a)
			}
			live := make([]int, ds.NumRecords())
			for i := range live {
				live[i] = i
			}
			nextID := ds.NumRecords()
			for step := 0; step < 8; step++ {
				var inserts []map[string]string
				for i := 0; i < 1+rng.Intn(4); i++ {
					rec := make(map[string]string, len(attrs))
					for _, a := range attrs {
						rec[a] = vocab[a][rng.Intn(len(vocab[a]))]
					}
					inserts = append(inserts, rec)
				}
				var deletes []int
				if rng.Intn(2) == 0 && len(live) > 6 {
					j := rng.Intn(len(live))
					deletes = append(deletes, live[j])
					live = append(live[:j], live[j+1:]...)
				}
				if _, err := eng.Ingest(inserts, deletes); err != nil {
					t.Fatalf("step %d: ingest: %v", step, err)
				}
				for range inserts {
					live = append(live, nextID)
					nextID++
				}
			}
			quiesce(t, m)

			for _, p := range plans {
				q := base
				q.Plan = p
				res, err := eng.Mine(q)
				if err != nil {
					t.Fatalf("final mine plan %s: %v", p, err)
				}
				evs := drain(t, cursors[p])
				if len(evs) == 0 || evs[0].Type != EventSnapshot || evs[0].Seq != 1 {
					t.Fatalf("plan %s: stream must open with snapshot seq 1, got %+v", p, evs)
				}
				// Diff intervals must tile: each event starts where the
				// previous ended, and sequence numbers are contiguous.
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq != evs[i-1].Seq+1 {
						t.Fatalf("plan %s: sequence gap: %d then %d", p, evs[i-1].Seq, evs[i].Seq)
					}
					if evs[i].FromVersion != evs[i-1].ToVersion {
						t.Fatalf("plan %s: interval gap: [..%d] then [%d..]",
							p, evs[i-1].ToVersion, evs[i].FromVersion)
					}
				}
				got := replay(evs)
				want := ruleMap(res.Rules)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("plan %s: replayed rule set diverges from final mine\nreplayed %d rules, mined %d\nevents: %d",
						p, len(got), len(want), len(evs))
				}
			}
		})
	}
}

// TestConcurrentIngestReplay races concurrent ingesters against the
// diff worker and checks the stream still replays to the final mine.
func TestConcurrentIngestReplay(t *testing.T) {
	eng := salaryEngine(t, 4, 0)
	m := NewManager(Config{EventBuffer: 4096})
	defer m.Close()
	m.Attach("salary", eng)

	q := colarm.Query{
		Range:         map[string][]string{"Location": {"Seattle"}},
		MinSupport:    0.3,
		MinConfidence: 0.5,
	}
	s, err := m.Create(context.Background(), "salary", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cursor(0)

	rows := []map[string]string{
		{"Company": "IBM", "Title": "Sw Engg", "Location": "Seattle", "Gender": "M", "Age": "20-30", "Salary": "60K-90K"},
		{"Company": "Google", "Title": "QA Lead", "Location": "Boston", "Gender": "F", "Age": "30-40", "Salary": "90K-120K"},
		{"Company": "Facebook", "Title": "Engg Mgr", "Location": "Seattle", "Gender": "F", "Age": "40-50", "Salary": "120K-150K"},
	}
	done := make(chan error, 3)
	for g := 0; g < 3; g++ {
		go func(g int) {
			for i := 0; i < 5; i++ {
				if _, err := eng.Ingest([]map[string]string{rows[(g+i)%len(rows)]}, nil); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 3; g++ {
		if err := <-done; err != nil {
			t.Fatalf("ingester: %v", err)
		}
	}
	quiesce(t, m)

	res, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := replay(drain(t, c)), ruleMap(res.Rules); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %d rules, final mine has %d", len(got), len(want))
	}
}

// TestCanonicalDedup shares one tracker across same-query subscribers
// and splits trackers when the canonical form differs.
func TestCanonicalDedup(t *testing.T) {
	eng := salaryEngine(t, 1, 1)
	m := NewManager(Config{})
	defer m.Close()
	m.Attach("salary", eng)

	q := colarm.Query{Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.3, MinConfidence: 0.5}
	s1, err := m.Create(context.Background(), "salary", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Create(context.Background(), "salary", q, &Track{Measure: "support", Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID() == s2.ID() {
		t.Fatalf("distinct subscriptions share id %s", s1.ID())
	}
	qf := q
	qf.Plan = colarm.SEV
	if _, err := m.Create(context.Background(), "salary", qf, nil); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	trackers := len(m.trackers)
	m.mu.Unlock()
	if trackers != 2 {
		t.Fatalf("got %d trackers, want 2 (same canonical dedupes, forced plan splits)", trackers)
	}
	if g := m.active.Value(); g != 3 {
		t.Fatalf("active gauge %d, want 3", g)
	}
	if !m.Delete(s1.ID()) || !m.Delete(s2.ID()) {
		t.Fatal("delete returned false for live subscription")
	}
	m.mu.Lock()
	trackers = len(m.trackers)
	m.mu.Unlock()
	if trackers != 1 {
		t.Fatalf("got %d trackers after deletes, want 1 (empty tracker retires)", trackers)
	}
	if m.Delete(s1.ID()) {
		t.Fatal("double delete reported true")
	}
}

// TestAffectednessGate proves unaffected batches skip mining: rows
// outside every focal region produce no events and count as skips.
func TestAffectednessGate(t *testing.T) {
	eng := salaryEngine(t, 1, 1)
	m := NewManager(Config{})
	defer m.Close()
	m.Attach("salary", eng)

	q := colarm.Query{Range: map[string][]string{"Location": {"SFO"}}, MinSupport: 0.3, MinConfidence: 0.5}
	s, err := m.Create(context.Background(), "salary", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cursor(0)
	quiesce(t, m) // settle the creation-race verify pass
	skipsBefore := m.skips.Value()

	boston := map[string]string{
		"Company": "IBM", "Title": "QA Lead", "Location": "Boston",
		"Gender": "M", "Age": "30-40", "Salary": "60K-90K",
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Ingest([]map[string]string{boston}, nil); err != nil {
			t.Fatal(err)
		}
		quiesce(t, m)
	}
	evs := drain(t, c)
	if len(evs) != 1 || evs[0].Type != EventSnapshot {
		t.Fatalf("expected only the initial snapshot for unaffected ingests, got %+v", evs)
	}
	if m.skips.Value() <= skipsBefore {
		t.Fatal("affectedness gate never skipped")
	}

	// A row inside the region must produce a diff.
	sfo := map[string]string{
		"Company": "IBM", "Title": "QA Lead", "Location": "SFO",
		"Gender": "M", "Age": "30-40", "Salary": "60K-90K",
	}
	if _, err := eng.Ingest([]map[string]string{sfo}, nil); err != nil {
		t.Fatal(err)
	}
	quiesce(t, m)
	evs = drain(t, c)
	if len(evs) != 1 || evs[0].Type != EventDiff {
		t.Fatalf("expected one diff for affecting ingest, got %+v", evs)
	}
	if evs[0].FromVersion != 0 || evs[0].ToVersion != 4 {
		t.Fatalf("diff interval [%d,%d], want [0,4] (skipped batches covered)",
			evs[0].FromVersion, evs[0].ToVersion)
	}
}

// TestSlowConsumerEviction wraps the ring past a live consumer and
// checks it receives a terminal evicted event, not silence.
func TestSlowConsumerEviction(t *testing.T) {
	eng := salaryEngine(t, 1, 1)
	m := NewManager(Config{EventBuffer: 2})
	defer m.Close()
	m.Attach("salary", eng)

	q := colarm.Query{Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.2, MinConfidence: 0.5}
	s, err := m.Create(context.Background(), "salary", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cursor(0)
	if evs := drain(t, c); len(evs) != 1 || evs[0].Type != EventSnapshot {
		t.Fatalf("want initial snapshot, got %+v", evs)
	}

	seattle := map[string]string{
		"Company": "IBM", "Title": "Sw Engg", "Location": "Seattle",
		"Gender": "M", "Age": "20-30", "Salary": "60K-90K",
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.Ingest([]map[string]string{seattle}, nil); err != nil {
			t.Fatal(err)
		}
		quiesce(t, m)
	}
	evs, err := c.Next(context.Background())
	if !errors.Is(err, ErrEvicted) {
		t.Fatalf("want ErrEvicted, got evs=%+v err=%v", evs, err)
	}
	if len(evs) != 1 || evs[0].Type != EventEvicted || evs[0].Reason == "" {
		t.Fatalf("want one terminal evicted event with reason, got %+v", evs)
	}
	if m.evictions.Value() == 0 || m.drops.Value() == 0 {
		t.Fatalf("eviction/drop counters not advanced: evictions=%d drops=%d",
			m.evictions.Value(), m.drops.Value())
	}

	// A fresh cursor resuming from the aged-out position resyncs with a
	// synthesized snapshot that replays to the current rule set.
	c2 := s.Cursor(0)
	evs, err = c2.Next(context.Background())
	if err != nil || len(evs) != 1 || evs[0].Type != EventSnapshot {
		t.Fatalf("want resync snapshot, got evs=%+v err=%v", evs, err)
	}
	res, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := replay(evs), ruleMap(res.Rules); !reflect.DeepEqual(got, want) {
		t.Fatalf("resync snapshot replays to %d rules, mine has %d", len(got), len(want))
	}
}

// TestThresholdCrossing tracks a measure across a boundary: inserting
// a non-matching Seattle record dilutes every Seattle rule's support,
// pushing the 0.75-support rules below 0.7.
func TestThresholdCrossing(t *testing.T) {
	eng := salaryEngine(t, 1, 1)
	m := NewManager(Config{})
	defer m.Close()
	m.Attach("salary", eng)

	q := colarm.Query{Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.3, MinConfidence: 0.5}
	s, err := m.Create(context.Background(), "salary", q, &Track{Measure: "support", Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cursor(0)

	// Seattle has 4 records; Age=30-40 and Salary=90K-120K each cover 3
	// (support 0.75). One more Seattle record matching neither dilutes
	// them to 3/5 = 0.6 < 0.7.
	odd := map[string]string{
		"Company": "Google", "Title": "Tech Arch", "Location": "Seattle",
		"Gender": "M", "Age": "40-50", "Salary": "120K-150K",
	}
	if _, err := eng.Ingest([]map[string]string{odd}, nil); err != nil {
		t.Fatal(err)
	}
	quiesce(t, m)

	evs := drain(t, c)
	var crossed []Crossing
	for _, ev := range evs {
		crossed = append(crossed, ev.Crossed...)
	}
	if len(crossed) == 0 {
		t.Fatalf("no crossings reported; events: %+v", evs)
	}
	for _, cr := range crossed {
		if cr.Measure != "support" || cr.Threshold != 0.7 {
			t.Fatalf("crossing carries wrong track: %+v", cr)
		}
		if cr.Direction != "below" || cr.Previous < 0.7 || cr.Current >= 0.7 {
			t.Fatalf("crossing direction/values inconsistent: %+v", cr)
		}
	}
}

// TestEpochOnRebuildSwap re-attaches a rebuilt engine: trackers emit an
// epoch event re-anchoring the version clock with an empty diff (the
// rebuild preserves exactness), and the stream still replays correctly
// across the swap.
func TestEpochOnRebuildSwap(t *testing.T) {
	eng := salaryEngine(t, 1, 1)
	m := NewManager(Config{})
	defer m.Close()
	m.Attach("salary", eng)

	q := colarm.Query{Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.3, MinConfidence: 0.5}
	s, err := m.Create(context.Background(), "salary", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cursor(0)

	seattle := map[string]string{
		"Company": "Microsoft", "Title": "Sw Engg", "Location": "Seattle",
		"Gender": "F", "Age": "30-40", "Salary": "90K-120K",
	}
	if _, err := eng.Ingest([]map[string]string{seattle}, nil); err != nil {
		t.Fatal(err)
	}
	quiesce(t, m)

	rebuilt, err := eng.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m.Attach("salary", rebuilt)
	quiesce(t, m)

	evs := drain(t, c)
	last := evs[len(evs)-1]
	if last.Type != EventEpoch {
		t.Fatalf("last event after swap is %q, want epoch; events %+v", last.Type, evs)
	}
	if last.Generation != rebuilt.Generation() {
		t.Fatalf("epoch generation %d, want %d", last.Generation, rebuilt.Generation())
	}
	if len(last.Appeared)+len(last.Disappeared)+len(last.Updated) != 0 {
		t.Fatalf("exactness-preserving rebuild produced a non-empty epoch diff: %+v", last)
	}

	res, err := rebuilt.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := replay(evs), ruleMap(res.Rules); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay across epoch has %d rules, rebuilt mine has %d", len(got), len(want))
	}

	// Post-swap ingestion flows through the new attachment.
	if _, err := rebuilt.Ingest([]map[string]string{seattle}, nil); err != nil {
		t.Fatal(err)
	}
	quiesce(t, m)
	evs2 := drain(t, c)
	if len(evs2) != 1 || evs2[0].Type != EventDiff {
		t.Fatalf("post-swap ingest: want one diff, got %+v", evs2)
	}
}

// TestCreateValidation covers the error surface of Create.
func TestCreateValidation(t *testing.T) {
	eng := salaryEngine(t, 1, 1)
	m := NewManager(Config{MaxSubscriptions: 1})
	defer m.Close()
	m.Attach("salary", eng)

	q := colarm.Query{Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.3, MinConfidence: 0.5}
	if _, err := m.Create(context.Background(), "nope", q, nil); !errors.Is(err, ErrNoDataset) {
		t.Fatalf("unknown dataset: got %v", err)
	}
	if _, err := m.Create(context.Background(), "salary", q, &Track{Measure: "zeal", Threshold: 1}); !errors.Is(err, ErrBadTrack) {
		t.Fatalf("bad track measure: got %v", err)
	}
	if _, err := m.Create(context.Background(), "salary", q, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), "salary", q, nil); !errors.Is(err, ErrLimit) {
		t.Fatalf("limit: got %v", err)
	}
	bad := q
	bad.MinSupport = 4
	m2 := NewManager(Config{})
	defer m2.Close()
	m2.Attach("salary", eng)
	if _, err := m2.Create(context.Background(), "salary", bad, nil); err == nil {
		t.Fatal("invalid query accepted")
	}
}

// TestDeleteWakesConsumer checks a blocked consumer observes ErrClosed
// when its subscription is deleted.
func TestDeleteWakesConsumer(t *testing.T) {
	eng := salaryEngine(t, 1, 1)
	m := NewManager(Config{})
	defer m.Close()
	m.Attach("salary", eng)

	q := colarm.Query{Range: map[string][]string{"Location": {"Seattle"}}, MinSupport: 0.3, MinConfidence: 0.5}
	s, err := m.Create(context.Background(), "salary", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cursor(0)
	drain(t, c)

	errc := make(chan error, 1)
	go func() {
		_, err := c.Next(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	m.Delete(s.ID())
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer not woken by delete")
	}
	if m.Get(s.ID()) != nil {
		t.Fatal("deleted subscription still resolvable")
	}
}
