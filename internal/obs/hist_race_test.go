package obs

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestObserveNegativeClamped pins the clamp: a negative duration must
// count as a zero observation (first bucket, zero sum), not poison the
// histogram's sum and quantiles.
func TestObserveNegativeClamped(t *testing.T) {
	h := newHistogram("neg_seconds", "", "h", DefaultLatencyBounds())
	h.Observe(-5 * time.Second)
	if h.Count() != 1 {
		t.Fatalf("Count() = %d, want 1", h.Count())
	}
	if h.Sum() != 0 {
		t.Fatalf("Sum() = %v, want 0", h.Sum())
	}
	if got := h.buckets[0].Load(); got != 1 {
		t.Fatalf("first bucket = %d, want 1 (clamped observation)", got)
	}
	if q := h.Quantile(0.99); q < 0 {
		t.Fatalf("Quantile(0.99) = %v, want >= 0", q)
	}
	h.Observe(-time.Nanosecond)
	h.Observe(3 * time.Millisecond)
	if h.Sum() != 3*time.Millisecond {
		t.Fatalf("Sum() = %v, want 3ms", h.Sum())
	}
}

// TestWritePrometheusMonotoneUnderConcurrentObserve scrapes a histogram
// while writer goroutines hammer Observe, and asserts every rendered
// exposition is internally consistent: cumulative buckets non-decreasing,
// the +Inf series at least the last finite bucket, and _count equal to
// +Inf. Before the fix, WritePrometheus rendered +Inf from a count
// loaded after the finite buckets, so a racing observation (which bumps
// its bucket before the count) could make +Inf read below the last
// finite cumulative bucket. Run under -race in CI.
func TestWritePrometheusMonotoneUnderConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono_seconds", "", "h", nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Mix in-range and off-scale (+Inf bucket) observations.
				d := time.Duration(rng.Intn(1000)) * time.Microsecond
				if rng.Intn(10) == 0 {
					d = time.Hour
				}
				h.Observe(d)
			}
		}(int64(g) + 1)
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	for scrape := 0; scrape < 200; scrape++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("scrape %d: %v", scrape, err)
		}
		var cums []int64
		inf, count := int64(-1), int64(-1)
		for _, line := range strings.Split(buf.String(), "\n") {
			switch {
			case strings.HasPrefix(line, "mono_seconds_bucket{le=\"+Inf\"}"):
				inf = lastField(t, line)
			case strings.HasPrefix(line, "mono_seconds_bucket"):
				cums = append(cums, lastField(t, line))
			case strings.HasPrefix(line, "mono_seconds_count"):
				count = lastField(t, line)
			}
		}
		if len(cums) == 0 || inf < 0 || count < 0 {
			t.Fatalf("scrape %d: incomplete exposition:\n%s", scrape, buf.String())
		}
		for i := 1; i < len(cums); i++ {
			if cums[i] < cums[i-1] {
				t.Fatalf("scrape %d: bucket %d cumulative %d < previous %d", scrape, i, cums[i], cums[i-1])
			}
		}
		if inf < cums[len(cums)-1] {
			t.Fatalf("scrape %d: le=\"+Inf\" %d below last finite bucket %d", scrape, inf, cums[len(cums)-1])
		}
		if count != inf {
			t.Fatalf("scrape %d: _count %d != le=\"+Inf\" %d", scrape, count, inf)
		}
	}
}

func lastField(t *testing.T, line string) int64 {
	t.Helper()
	fields := strings.Fields(line)
	v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", line, err)
	}
	return v
}
