package rules

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"colarm/internal/bitset"
	"colarm/internal/itemset"
)

// oracleFromTidsets builds a SupportOracle from per-item tidsets
// restricted to a subset bitmap.
func oracleFromTidsets(tidsets []*bitset.Set, subset *bitset.Set) SupportOracle {
	return func(s itemset.Set) int {
		if len(s) == 0 {
			return -1
		}
		acc := subset.Clone()
		for _, it := range s {
			acc.And(tidsets[it])
		}
		return acc.Count()
	}
}

// bruteRules enumerates every rule X⇒Y with X∪Y=items by exhaustive
// subset enumeration — the oracle for Generate.
func bruteRules(items itemset.Set, suppCount, subsetSize int, minConf float64, oracle SupportOracle, maxCons int) []Rule {
	n := len(items)
	var out []Rule
	for mask := 1; mask < (1<<n)-1; mask++ {
		var y itemset.Set
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				y = append(y, items[i])
			}
		}
		if maxCons > 0 && len(y) > maxCons {
			continue
		}
		x := items.Minus(y)
		xc := oracle(x)
		if xc <= 0 {
			continue
		}
		conf := float64(suppCount) / float64(xc)
		if conf >= minConf {
			out = append(out, Rule{Antecedent: x, Consequent: y, SupportCount: suppCount,
				AntecedentCount: xc, ConsequentCount: oracle(y), SubsetSize: subsetSize,
				Support: float64(suppCount) / float64(subsetSize), Confidence: conf})
		}
	}
	return out
}

func TestGenerateSimple(t *testing.T) {
	// 10 records; items 0,1,2. tidsets chosen so {0,1,2} has supp 4.
	ts := []*bitset.Set{
		bitset.FromIDs(10, 0, 1, 2, 3, 4, 5), // item 0: 6
		bitset.FromIDs(10, 0, 1, 2, 3, 6, 7), // item 1: 6
		bitset.FromIDs(10, 0, 1, 2, 3, 8),    // item 2: 5
	}
	full := bitset.New(10)
	full.Fill()
	oracle := oracleFromTidsets(ts, full)
	items := itemset.NewSet(0, 1, 2)
	got := Generate(items, 4, 10, 0.6, oracle, Options{})
	// supp({0,1})=4, supp({0,2})=4, supp({1,2})=4, supp({0})=6 ...
	// conf({0,1}⇒{2}) = 4/4 = 1.0, conf({0}⇒{1,2}) = 4/6 ≈ .67, etc.
	want := bruteRules(items, 4, 10, 0.6, oracle, 0)
	if len(got) != len(want) {
		t.Fatalf("got %d rules, want %d", len(got), len(want))
	}
	gm := map[string]Rule{}
	for _, r := range got {
		gm[r.Key()] = r
	}
	for _, w := range want {
		g, ok := gm[w.Key()]
		if !ok {
			t.Errorf("missing rule %s", w.Key())
			continue
		}
		if g.AntecedentCount != w.AntecedentCount || math.Abs(g.Confidence-w.Confidence) > 1e-12 {
			t.Errorf("rule %s mismatch: %+v vs %+v", w.Key(), g, w)
		}
	}
	// Sorted by descending confidence.
	for i := 1; i < len(got); i++ {
		if got[i-1].Confidence < got[i].Confidence {
			t.Error("rules not sorted by confidence")
		}
	}
}

func TestGenerateDegenerate(t *testing.T) {
	oracle := func(itemset.Set) int { return 5 }
	if rs := Generate(itemset.NewSet(1), 3, 10, 0.5, oracle, Options{}); rs != nil {
		t.Error("single-item itemset yields no rules")
	}
	if rs := Generate(itemset.NewSet(1, 2), 0, 10, 0.5, oracle, Options{}); rs != nil {
		t.Error("zero support yields no rules")
	}
	if rs := Generate(itemset.NewSet(1, 2), 3, 0, 0.5, oracle, Options{}); rs != nil {
		t.Error("zero subset yields no rules")
	}
}

func TestGenerateMaxConsequent(t *testing.T) {
	ts := []*bitset.Set{
		bitset.FromIDs(8, 0, 1, 2, 3, 4),
		bitset.FromIDs(8, 0, 1, 2, 3, 5),
		bitset.FromIDs(8, 0, 1, 2, 3, 6),
	}
	full := bitset.New(8)
	full.Fill()
	oracle := oracleFromTidsets(ts, full)
	items := itemset.NewSet(0, 1, 2)
	rs := Generate(items, 4, 8, 0.0, oracle, Options{MaxConsequent: 1})
	for _, r := range rs {
		if len(r.Consequent) > 1 {
			t.Errorf("consequent %v exceeds cap", r.Consequent)
		}
	}
	if len(rs) != 3 {
		t.Errorf("got %d rules with 1-item consequents, want 3", len(rs))
	}
}

func TestMeasures(t *testing.T) {
	r := Rule{
		SupportCount:    4,
		AntecedentCount: 5,
		ConsequentCount: 8,
		SubsetSize:      10,
		Support:         0.4,
		Confidence:      0.8,
	}
	if lift := r.Lift(); math.Abs(lift-1.0) > 1e-12 {
		t.Errorf("Lift = %v, want 1.0", lift)
	}
	if cos := r.Cosine(); math.Abs(cos-4/math.Sqrt(40)) > 1e-12 {
		t.Errorf("Cosine = %v", cos)
	}
	if k := r.Kulczynski(); math.Abs(k-0.5*(0.8+0.5)) > 1e-12 {
		t.Errorf("Kulczynski = %v", k)
	}
	if mc := r.MaxConf(); math.Abs(mc-0.8) > 1e-12 {
		t.Errorf("MaxConf = %v", mc)
	}
	// Zero-division safety.
	z := Rule{}
	if z.Lift() != 0 || z.Cosine() != 0 || z.Kulczynski() != 0 || z.MaxConf() != 0 {
		t.Error("zero rule measures must be 0")
	}
}

func TestDedupeAndSort(t *testing.T) {
	a := Rule{Antecedent: itemset.NewSet(1), Consequent: itemset.NewSet(2), Confidence: 0.9, SupportCount: 4}
	b := Rule{Antecedent: itemset.NewSet(1), Consequent: itemset.NewSet(2), Confidence: 0.9, SupportCount: 4}
	c := Rule{Antecedent: itemset.NewSet(2), Consequent: itemset.NewSet(1), Confidence: 0.95, SupportCount: 4}
	rs := Dedupe([]Rule{a, b, c})
	if len(rs) != 2 {
		t.Fatalf("Dedupe left %d rules", len(rs))
	}
	SortCanonical(rs)
	if rs[0].Confidence != 0.95 {
		t.Error("SortCanonical order wrong")
	}
}

// Property: Generate equals brute-force enumeration for random oracles.
// This validates the ap-genrules consequent pruning (anti-monotonicity).
func TestQuickGenerateEqualsBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 6 + r.Intn(20)
		nItems := 2 + r.Intn(4)
		ts := make([]*bitset.Set, nItems)
		for i := range ts {
			s := bitset.New(m)
			for rec := 0; rec < m; rec++ {
				if r.Intn(4) != 0 { // dense-ish so intersections stay nonzero
					s.Add(rec)
				}
			}
			ts[i] = s
		}
		subset := bitset.New(m)
		for rec := 0; rec < m; rec++ {
			if r.Intn(2) == 0 {
				subset.Add(rec)
			}
		}
		if subset.IsEmpty() {
			subset.Add(0)
		}
		oracle := oracleFromTidsets(ts, subset)
		var items itemset.Set
		for i := 0; i < nItems; i++ {
			items = append(items, itemset.Item(i))
		}
		suppCount := oracle(items)
		if suppCount <= 0 {
			return true // nothing to generate; trivially consistent
		}
		minConf := float64(r.Intn(11)) / 10
		maxCons := r.Intn(nItems)
		got := Generate(items, suppCount, subset.Count(), minConf, oracle, Options{MaxConsequent: maxCons})
		want := bruteRules(items, suppCount, subset.Count(), minConf, oracle, maxCons)
		if len(got) != len(want) {
			return false
		}
		gm := map[string]Rule{}
		for _, g := range got {
			gm[g.Key()] = g
		}
		for _, w := range want {
			g, ok := gm[w.Key()]
			if !ok || g.AntecedentCount != w.AntecedentCount ||
				g.ConsequentCount != w.ConsequentCount ||
				math.Abs(g.Confidence-w.Confidence) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
