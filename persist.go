package colarm

import (
	"bytes"
	"io"
	"os"

	"colarm/internal/core"
	"colarm/internal/mip"
	"colarm/internal/plans"
)

// Save serializes the engine's MIP-index (dataset, closed frequent
// itemsets, bounding boxes) plus its live-ingestion state — generation
// and any buffered delta transactions — to w. The offline mining phase
// is the expensive part of Open; a saved index restores in milliseconds
// with LoadEngine, so indexes can be built once and shipped to
// query-serving processes — the preprocess-once-query-many contract
// made durable. A snapshot taken mid-ingest restores to the exact same
// answers: the delta rides along and is replayed on load.
func (e *Engine) Save(w io.Writer) error {
	rows, dels := e.eng.Delta.Snapshot()
	meta := mip.SnapshotMeta{
		Primary:    e.opts.PrimarySupport,
		Generation: e.gen,
		DeltaRows:  rows,
	}
	for _, id := range dels {
		meta.DeltaDels = append(meta.DeltaDels, int32(id))
	}
	// Advisor-built secondary indexes ride along as nested snapshots —
	// fresh ones only, since a stale secondary can never be consulted.
	// On load they restore fresh against the replayed delta, because the
	// merged surface they were mined over is byte-identical.
	primaries, indexes := e.eng.FreshSecondaryIndexes()
	for i, idx := range indexes {
		var buf bytes.Buffer
		if _, err := idx.WriteSnapshot(&buf, mip.SnapshotMeta{Primary: primaries[i]}); err != nil {
			return err
		}
		meta.Secondaries = append(meta.Secondaries, mip.SecondarySnapshot{Primary: primaries[i], Blob: buf.Bytes()})
	}
	_, err := e.eng.Index.WriteSnapshot(w, meta)
	return err
}

// SaveFile writes the index snapshot to a file.
func (e *Engine) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEngine restores an engine from a snapshot written by Save. opts
// controls the runtime knobs only (calibration, check mode); the index
// parameters (primary support, fanout, packing), the engine generation
// and any buffered delta come from the snapshot. A snapshot of a
// different format version fails with ErrSnapshotVersion.
func LoadEngine(r io.Reader, opts Options) (*Engine, error) {
	idx, meta, err := mip.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return engineFromIndex(idx, meta, opts)
}

// LoadEngineFile restores an engine from a snapshot file.
func LoadEngineFile(path string, opts Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEngine(f, opts)
}

func engineFromIndex(idx *mip.Index, meta mip.SnapshotMeta, opts Options) (*Engine, error) {
	mode, err := plans.ParseCheckMode(opts.CheckMode)
	if err != nil {
		return nil, err
	}
	opts.PrimarySupport = meta.Primary
	eng := core.Assemble(idx, core.Options{
		PrimarySupport: meta.Primary,
		CalibrateUnits: opts.Calibrate,
		CheckMode:      mode,
		Workers:        opts.Workers,
		AccuracyTol:    opts.AccuracyTolerance,
		Metrics:        opts.Metrics.registry(),
		Shards:         opts.Shards,
	})
	if len(meta.DeltaRows) > 0 || len(meta.DeltaDels) > 0 {
		dels := make([]int, len(meta.DeltaDels))
		for i, id := range meta.DeltaDels {
			dels[i] = int(id)
		}
		// Replay straight into the store (through the collection on a
		// sharded engine, so the shard clocks tick): restoring persisted
		// state is not a fresh ingest, so ingest metrics stay untouched.
		if eng.Coll != nil {
			if _, err := eng.Coll.Ingest(meta.DeltaRows, dels); err != nil {
				return nil, err
			}
		} else if _, err := eng.Delta.Ingest(meta.DeltaRows, dels); err != nil {
			return nil, err
		}
	}
	// Reinstall the secondary indexes after the delta replay: they were
	// saved fresh, and the replayed store reproduces the exact merged
	// surface they were mined over, so they restore fresh too.
	for _, sec := range meta.Secondaries {
		sidx, _, err := mip.ReadSnapshot(bytes.NewReader(sec.Blob))
		if err != nil {
			return nil, err
		}
		eng.RestoreSecondary(sidx, sec.Primary)
	}
	return &Engine{
		eng:           eng,
		ds:            &Dataset{rel: idx.Dataset},
		trackAccuracy: opts.TrackAccuracy,
		opts:          opts,
		gen:           meta.Generation,
	}, nil
}
