package ittree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/relation"
)

func buildTree(t testing.TB, minCount int) (*Tree, *relation.Dataset, *itemset.Space, []*bitset.Set) {
	t.Helper()
	b := relation.NewBuilder("salary", "Company", "Title", "Location", "Gender", "Age", "Salary")
	rows := [][]string{
		{"IBM", "QA Lead", "Boston", "M", "30-40", "60K-90K"},
		{"IBM", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"IBM", "Engg Mgr", "SFO", "M", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "SFO", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "M", "20-30", "90K-120K"},
		{"Google", "Tech Arch", "Boston", "M", "40-50", "120K-150K"},
		{"Microsoft", "Engg Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Microsoft", "Sw Engg", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Engg", "Seattle", "F", "20-30", "30K-60K"},
	}
	for _, r := range rows {
		if err := b.AddRecord(r...); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	sp := itemset.NewSpace(d)
	res, err := charm.Mine(d, sp, minCount)
	if err != nil {
		t.Fatal(err)
	}
	return Build(res, sp.NumItems()), d, sp, itemset.ItemTidsets(d, sp)
}

func TestBuildAndLookup(t *testing.T) {
	tr, _, _, _ := buildTree(t, 2)
	if tr.Size() == 0 {
		t.Fatal("empty tree")
	}
	if tr.NumRecords() != 11 {
		t.Errorf("NumRecords = %d", tr.NumRecords())
	}
	for id := 0; id < tr.Size(); id++ {
		c := tr.Set(id)
		got, ok := tr.Lookup(c.Items)
		if !ok || got != c {
			t.Errorf("Lookup of stored CFI %d failed", id)
		}
	}
	if _, ok := tr.Lookup(itemset.NewSet(0, 1)); ok {
		// items 0 and 1 are Company=IBM and Company=Google — mutually
		// exclusive, never co-stored.
		t.Error("Lookup of impossible itemset succeeded")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClosureResolvesSubsets(t *testing.T) {
	tr, d, sp, tidsets := buildTree(t, 2)
	_ = d
	// Closure of (Age=20-30) should carry its exact global support 6.
	a0, err := sp.ParseItem("Age=20-30")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.GlobalSupport(itemset.NewSet(a0)); got != 6 {
		t.Errorf("GlobalSupport(Age=20-30) = %d, want 6", got)
	}
	s2, _ := sp.ParseItem("Salary=90K-120K")
	if got := tr.GlobalSupport(itemset.NewSet(a0, s2)); got != 5 {
		t.Errorf("GlobalSupport(A0,S2) = %d, want 5", got)
	}
	// The closure's tidset must equal the raw intersection.
	c, ok := tr.Closure(itemset.NewSet(a0, s2))
	if !ok {
		t.Fatal("closure of (A0,S2) missing")
	}
	want := bitset.Intersect(tidsets[a0], tidsets[s2])
	if !c.Tids.Equal(want) {
		t.Errorf("closure tidset %v != item intersection %v", c.Tids, want)
	}
	// Empty set has no closure.
	if _, ok := tr.Closure(nil); ok {
		t.Error("closure of empty set must fail")
	}
	// An infrequent itemset (below primary support) resolves to nothing.
	if tr.GlobalSupport(itemset.NewSet(0, sp.ItemOf(5, 0))) != -1 {
		// Company=IBM & Salary=60K-90K co-occurs once only (record 0).
		t.Error("infrequent itemset must return -1")
	}
}

func TestContainingIDs(t *testing.T) {
	tr, _, sp, _ := buildTree(t, 2)
	a0, _ := sp.ParseItem("Age=20-30")
	ids := tr.ContainingIDs(itemset.NewSet(a0))
	if len(ids) == 0 {
		t.Fatal("no CFIs contain Age=20-30")
	}
	for _, id := range ids {
		if !tr.Set(int(id)).Items.Contains(a0) {
			t.Errorf("CFI %d does not contain item", id)
		}
	}
	// Ascending and unique.
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("ids not ascending")
		}
	}
	if got := tr.ContainingIDs(nil); got != nil {
		t.Errorf("ContainingIDs(nil) = %v", got)
	}
}

func TestLevelCountsAndMaxLevel(t *testing.T) {
	tr, _, _, _ := buildTree(t, 2)
	counts := tr.LevelCounts()
	total := 0
	for l, c := range counts {
		if l == 0 && c != 0 {
			t.Error("level 0 must be empty")
		}
		total += c
	}
	if total != tr.Size() {
		t.Errorf("level counts sum %d != size %d", total, tr.Size())
	}
	if counts[tr.MaxLevel()] == 0 {
		t.Error("max level must be populated")
	}
}

func TestSortedBySupport(t *testing.T) {
	tr, _, _, _ := buildTree(t, 2)
	ids := tr.SortedBySupport()
	if len(ids) != tr.Size() {
		t.Fatal("wrong length")
	}
	for i := 1; i < len(ids); i++ {
		if tr.Set(int(ids[i-1])).Support < tr.Set(int(ids[i])).Support {
			t.Fatal("not descending by support")
		}
	}
}

// Property: for random datasets, Closure(X) of any subset X of a stored
// CFI has tidset equal to the intersection of X's item tidsets.
func TestQuickClosureMatchesTidsetIntersection(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nAttrs := 2 + r.Intn(3)
		names := make([]string, nAttrs)
		cards := make([]int, nAttrs)
		for i := range names {
			names[i] = string(rune('A' + i))
			cards[i] = 2 + r.Intn(3)
		}
		b := relation.NewBuilder("rand", names...)
		for a := 0; a < nAttrs; a++ {
			for v := 0; v < cards[a]; v++ {
				b.AddValue(a, string(rune('a'+a))+string(rune('0'+v)))
			}
		}
		m := 6 + r.Intn(20)
		for i := 0; i < m; i++ {
			row := make([]int, nAttrs)
			for a := range row {
				row[a] = r.Intn(cards[a])
			}
			if err := b.AddRecordIdx(row...); err != nil {
				return false
			}
		}
		d := b.Build()
		sp := itemset.NewSpace(d)
		minCount := 1 + r.Intn(3)
		res, err := charm.Mine(d, sp, minCount)
		if err != nil {
			return false
		}
		tr := Build(res, sp.NumItems())
		if err := tr.Validate(); err != nil {
			return false
		}
		tidsets := itemset.ItemTidsets(d, sp)
		for _, c := range res.Closed {
			// Random subset of the CFI.
			var sub itemset.Set
			for _, it := range c.Items {
				if r.Intn(2) == 0 {
					sub = append(sub, it)
				}
			}
			if len(sub) == 0 {
				continue
			}
			cl, ok := tr.Closure(sub)
			if !ok {
				return false
			}
			inter := bitset.New(m)
			inter.Fill()
			for _, it := range sub {
				inter.And(tidsets[it])
			}
			if !cl.Tids.Equal(inter) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
