package datagen

import (
	"fmt"

	"colarm/internal/relation"
)

// Salary returns the paper's Table 1 example dataset verbatim.
func Salary() *relation.Dataset {
	b := relation.NewBuilder("salary", "Company", "Title", "Location", "Gender", "Age", "Salary")
	rows := [][]string{
		{"IBM", "QA Lead", "Boston", "M", "30-40", "60K-90K"},
		{"IBM", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"IBM", "Engg Mgr", "SFO", "M", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "SFO", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "M", "20-30", "90K-120K"},
		{"Google", "Tech Arch", "Boston", "M", "40-50", "120K-150K"},
		{"Microsoft", "Engg Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Microsoft", "Sw Engg", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Engg", "Seattle", "F", "20-30", "30K-60K"},
	}
	for _, r := range rows {
		if err := b.AddRecord(r...); err != nil {
			panic(err) // fixed data: cannot fail
		}
	}
	return b.Build()
}

// ChessConfig mirrors UCI chess (kr-vs-kp): 3196 records, 37 mostly
// binary attributes, 76 items, fully dense, a single population with a
// symmetric CFI-length distribution and an exploding CFI count as the
// primary threshold drops (paper Figure 8). The paper builds the chess
// MIP-index at primary support 60%.
func ChessConfig(seed int64) Config {
	attrs := make([]AttrSpec, 37)
	for i := range attrs {
		card := 2
		if i == 36 {
			card = 4 // the "class-like" wider attribute: 36*2+4 = 76 items
		}
		// Alignment decays across attributes: a handful of strongly
		// aligned attributes drive long closed itemsets; the tail adds
		// breadth at lower thresholds.
		align := 0.97 - 0.019*float64(i)
		if align < 0.30 {
			align = 0.30
		}
		attrs[i] = AttrSpec{
			Name:        fmt.Sprintf("f%02d", i),
			Cardinality: card,
			Align:       []float64{align},
		}
	}
	return Config{
		Name:     "chess",
		Records:  3196,
		Attrs:    attrs,
		Clusters: []float64{1},
		Skew:     0.4,
		Seed:     seed,
		LocalPatterns: []LocalPattern{
			// Globally ~65% (just above the 60% primary), locally ~95%
			// for records with f00 = 1 — hidden local structure.
			{RangeAttr: 0, RangeValues: []int{1}, InsideProb: 0.95, OutsideProb: 0.62,
				Items: map[int]int{30: 1, 31: 1, 32: 1}},
			{RangeAttr: 36, RangeValues: []int{2, 3}, InsideProb: 0.92, OutsideProb: 0.60,
				Items: map[int]int{33: 1, 34: 1}},
		},
	}
}

// MushroomConfig mirrors UCI mushroom: 8124 records, 23 attributes of
// mixed cardinality (~120 items), two latent populations of different
// signature breadth producing the bi-modal CFI-length distribution the
// paper highlights, and a gradual CFI-count curve. The paper builds the
// mushroom MIP-index at primary support 5%.
func MushroomConfig(seed int64) Config {
	cards := []int{2, 6, 4, 10, 2, 9, 4, 3, 2, 12, 2, 5, 4, 4, 9, 9, 2, 4, 3, 5, 9, 6, 4}
	attrs := make([]AttrSpec, len(cards))
	for i, card := range cards {
		// Cluster 0 (55%): broad signature — long CFIs. Cluster 1
		// (45%): narrow 7-attribute signature — short CFIs. The two
		// humps of the bi-modal length distribution come from this
		// split. Row diversity is capped by the prototype pool below,
		// which is what keeps the CFI count moderate and its growth
		// gradual (real mushroom's strong functional dependencies).
		a0 := 0.92 - 0.018*float64(i)
		a1 := 0.02
		if i < 7 {
			a1 = 0.92
		}
		attrs[i] = AttrSpec{
			Name:        fmt.Sprintf("m%02d", i),
			Cardinality: card,
			Align:       []float64{a0, a1},
		}
	}
	return Config{
		Name:       "mushroom",
		Records:    8124,
		Attrs:      attrs,
		Clusters:   []float64{0.55, 0.45},
		Skew:       0.8,
		Prototypes: 24,
		Seed:       seed,
		LocalPatterns: []LocalPattern{
			// The Section 5.3 anecdote: the subpopulation selected by
			// m01 = m011 (about 45% of records, like the paper's
			// stalk-shape=tapering subset) carries co-occurrences that
			// hold at ~72-80% locally but only ~35-40% globally.
			{RangeAttr: 1, RangeValues: []int{1}, InsideProb: 0.80, OutsideProb: 0.06,
				Items: map[int]int{10: 1, 16: 1}},
			{RangeAttr: 1, RangeValues: []int{1}, InsideProb: 0.72, OutsideProb: 0.05,
				Items: map[int]int{12: 2, 17: 2, 19: 3}},
			{RangeAttr: 4, RangeValues: []int{1}, InsideProb: 0.75, OutsideProb: 0.10,
				Items: map[int]int{20: 4, 21: 3}},
		},
	}
}

// PUMSBConfig mirrors UCI PUMSB census data: 49046 records, 74
// high-cardinality attributes (~7100 items), very dense and skewed,
// with a symmetric CFI-length distribution. The paper builds the PUMSB
// MIP-index at primary support 80%.
func PUMSBConfig(seed int64) Config {
	attrs := make([]AttrSpec, 74)
	for i := range attrs {
		card := 96
		// A 17-attribute high-alignment core drives the large CFI
		// population at high thresholds; the tail adds breadth lower.
		align := 0.982
		if i >= 17 {
			align = 0.72 - 0.009*float64(i-17)
			if align < 0.20 {
				align = 0.20
			}
		}
		attrs[i] = AttrSpec{
			Name:        fmt.Sprintf("p%02d", i),
			Cardinality: card,
			Align:       []float64{align},
		}
	}
	return Config{
		Name:     "pumsb",
		Records:  49046,
		Attrs:    attrs,
		Clusters: []float64{1},
		Skew:     1.3,
		Seed:     seed,
		LocalPatterns: []LocalPattern{
			{RangeAttr: 0, RangeValues: []int{1, 2}, InsideProb: 0.96, OutsideProb: 0.80,
				Items: map[int]int{60: 1, 61: 1, 62: 1}},
			{RangeAttr: 73, RangeValues: []int{0}, InsideProb: 0.95, OutsideProb: 0.78,
				Items: map[int]int{63: 2, 64: 2}},
		},
	}
}

// Scaled returns a copy of cfg with the record count scaled by frac
// (clamped to at least 64 records) — the quick-profile knob for tests
// and default benchmarks.
func Scaled(cfg Config, frac float64) Config {
	out := cfg
	out.Records = int(float64(cfg.Records) * frac)
	if out.Records < 64 {
		out.Records = 64
	}
	return out
}

// PaperPrimary returns the primary support threshold the paper uses for
// each benchmark dataset's MIP-index.
func PaperPrimary(name string) float64 {
	switch name {
	case "chess":
		return 0.60
	case "mushroom":
		return 0.05
	case "pumsb":
		return 0.80
	default:
		return 0.5
	}
}
