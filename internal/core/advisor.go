package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"colarm/internal/advisor"
	"colarm/internal/cost"
	"colarm/internal/mip"
	"colarm/internal/plans"
)

// secondaryIndex is one extra physical MIP-index the engine holds
// beside the base index: same merged records, mined at a lower primary
// support, so it answers queries whose localized thresholds the base
// index's applicability gate forces to ARM. A secondary is always a
// monolithic frozen index (no delta view of its own); it participates
// in the optimizer's argmin only while fresh — built at exactly the
// current delta version — because any later ingest would make its
// prestored CFIs silently incomplete.
type secondaryIndex struct {
	Index    *mip.Index
	Executor *plans.Executor
	Model    *cost.Model
	Primary  float64
	// BuiltVersion is the delta version of the merged surface the index
	// was mined over; it is fresh only while the engine's delta version
	// still equals it.
	BuiltVersion  uint64
	BuildDuration time.Duration
}

// SecondaryInfo describes one installed secondary index.
type SecondaryInfo struct {
	Primary       float64
	PrimaryCount  int
	CFIs          int
	BuiltVersion  uint64
	Fresh         bool
	BuildDuration time.Duration
}

// planChoice is one resolved optimizer decision across every physical
// index: the plan, the index that executes it (nil sec = base), and the
// evidence the advisor logs about it.
type planChoice struct {
	kind plans.Kind
	ests []cost.Estimate
	// sec is the secondary index that won the argmin, nil for the base
	// index; secID its 1-based position (0 = base).
	sec   *secondaryIndex
	secID int
	// model is the cost model of the executing index, under the units
	// the decision was priced with — the decomposition source for
	// recalibration evidence.
	model *cost.Model

	subset, localCount int
	// forcedARM reports the applicability gate overrode a MIP argmin
	// and no secondary index reclaimed the query.
	forcedARM bool
	// applicable is the base surface's gate verdict (secondaries aside).
	applicable bool
	bestMIP    float64
	armCost    float64
}

// liveModel returns the cost model priced with the advisor's live
// units: the model itself when nothing was recalibrated, a shallow
// per-query copy otherwise (statistics shared read-only, units
// swapped) so concurrent queries never race on Model.U.
func (e *Engine) liveModel() *cost.Model {
	if e.Advisor == nil {
		return e.Model
	}
	live := e.Advisor.LiveUnits()
	if live == e.Model.U {
		return e.Model
	}
	mo := *e.Model
	mo.U = live
	return &mo
}

// choose runs the cost-based optimizer across every physical index:
// the base argmin with the paper's applicability override, then each
// fresh secondary index's argmin, keeping whichever (plan, index) pair
// estimates cheapest. A secondary competes only when its own — lower —
// primary count clears the query's localized threshold, so every pair
// the argmin may pick returns the complete localized answer.
func (e *Engine) choose(q *plans.Query) planChoice {
	mo := e.liveModel()
	kind, ests := mo.Choose(q)
	ch := planChoice{kind: kind, ests: ests, model: mo}
	for _, est := range ests {
		if est.Plan == plans.ARM {
			ch.armCost = est.Total
		} else if ch.bestMIP == 0 || est.Total < ch.bestMIP {
			ch.bestMIP = est.Total
		}
	}
	var primaryCount int
	ch.subset, ch.localCount, primaryCount = e.Executor.Localized(q)
	ch.applicable = ch.localCount >= primaryCount
	if ch.kind != plans.ARM && !ch.applicable {
		ch.kind = plans.ARM
		ch.forcedARM = true
	}
	baseCost := math.Inf(1)
	for _, est := range ests {
		if est.Plan == ch.kind {
			baseCost = est.Total
		}
	}

	// Secondary indexes: every fresh one whose primary count the
	// localized threshold reaches joins the argmin. A fresh secondary
	// covers exactly the same merged records as the base surface, so
	// the focal subset — and with it the localized threshold — is
	// identical and needs no recomputation.
	version := e.Delta.Staleness().Version
	e.secMu.RLock()
	for i, s := range e.secondaries {
		if s.BuiltVersion != version || s.Index.PrimaryCount > ch.localCount {
			continue
		}
		smo := *s.Model
		smo.U = mo.U
		sk, sests := smo.Choose(q)
		if sk == plans.ARM {
			// ARM ignores the index layers; running it on a secondary
			// buys nothing over the base.
			continue
		}
		var scost float64
		for _, est := range sests {
			if est.Plan == sk {
				scost = est.Total
			}
		}
		if scost < baseCost {
			baseCost = scost
			ch.kind, ch.sec, ch.secID = sk, s, i+1
			ch.forcedARM = false
			m := smo
			ch.model = &m
		}
		if ch.bestMIP == 0 || scost < ch.bestMIP {
			ch.bestMIP = scost
		}
	}
	e.secMu.RUnlock()
	return ch
}

// executor returns the executor of the index the choice runs on.
func (ch planChoice) executor(e *Engine) *plans.Executor {
	if ch.sec != nil {
		return ch.sec.Executor
	}
	return e.Executor
}

// noteAdvisor feeds one successfully executed query into the advisor:
// the workload-log entry always, the per-operator recalibration
// evidence when the query was traced.
func (e *Engine) noteAdvisor(q *plans.Query, ch planChoice, res *plans.Result) {
	if e.Advisor == nil || res == nil {
		return
	}
	if ch.secID > 0 {
		e.secChosen.Inc()
	}
	e.Advisor.ObserveQuery(advisor.QueryObservation{
		SubsetSize:  ch.subset,
		LocalCount:  ch.localCount,
		Plan:        res.Stats.Plan,
		IndexUsed:   ch.secID,
		ForcedARM:   ch.forcedARM,
		Measured:    res.Stats.Duration,
		BestMIPCost: ch.bestMIP,
		ARMCost:     ch.armCost,
	})
	if q.Trace == nil {
		return
	}
	// Match the executed plan's traced operator spans to its cost
	// decomposition by operator label; each matched pair is one
	// measured-vs-predicted sample for the recalibrator.
	var pc *cost.PlanCoeffs
	coeffs := ch.model.Decompose(q)
	for i := range coeffs {
		if coeffs[i].Plan == ch.kind {
			pc = &coeffs[i]
		}
	}
	if pc == nil {
		return
	}
	durs := make(map[string]time.Duration, len(q.Trace.Spans))
	for _, sp := range q.Trace.Spans {
		durs[sp.Op.String()] += sp.Duration
	}
	var terms []advisor.TermObservation
	for _, t := range pc.Terms {
		if d := durs[t.Operator]; d > 0 {
			terms = append(terms, advisor.TermObservation{Operator: t.Operator, Coeff: t.Coeff, Measured: d})
		}
	}
	e.Advisor.ObserveTerms(terms)
}

// noteChoiceEvaluation feeds one all-plans evaluation into the
// guardrail replay window: per plan the unit-independent total-cost
// coefficient vector and the measured time, plus the applicability
// verdict, so the advisor can replay the argmin under any candidate
// units.
func (e *Engine) noteChoiceEvaluation(q *plans.Query, ch planChoice, measured []time.Duration) {
	if e.Advisor == nil || len(measured) != len(ch.ests) {
		return
	}
	coeffs := e.Model.Decompose(q)
	if len(coeffs) != len(ch.ests) {
		return
	}
	obs := advisor.ChoiceObservation{MIPApplicable: ch.applicable, ARMIndex: -1}
	for i, pc := range coeffs {
		obs.Coeffs = append(obs.Coeffs, pc.TotalCoeff())
		obs.Measured = append(obs.Measured, measured[i])
		if pc.Plan == plans.ARM {
			obs.ARMIndex = i
		}
	}
	if obs.ARMIndex < 0 {
		return
	}
	e.Advisor.ObserveChoice(obs)
}

// Recalibrate runs one advisor drift evaluation and mirrors the
// outcome into the engine's metrics. Serving layers call it
// periodically; it is cheap when nothing drifted.
func (e *Engine) Recalibrate() advisor.CalibrationReport {
	if e.Advisor == nil {
		return advisor.CalibrationReport{}
	}
	rep := e.Advisor.Recalibrate()
	if rep.Swapped {
		e.recalSwaps.Inc()
	}
	e.driftMicro.Set(int64(rep.DriftScore * 1e6))
	return rep
}

// BuildSecondary mines a secondary MIP-index over the current merged
// records at the given primary support and installs it atomically. The
// engine serves queries throughout; the new index joins the argmin from
// the moment it is installed (replacing any existing secondary at the
// same primary count).
func (e *Engine) BuildSecondary(ctx context.Context, primary float64) (SecondaryInfo, error) {
	if err := ctx.Err(); err != nil {
		return SecondaryInfo{}, err
	}
	if primary <= 0 || primary > 1 {
		return SecondaryInfo{}, fmt.Errorf("core: secondary primary support %v outside (0,1]", primary)
	}
	version := e.Delta.Staleness().Version
	merged, err := e.Delta.MergedDataset()
	if err != nil {
		return SecondaryInfo{}, err
	}
	start := time.Now()
	idx, err := mip.Build(merged, mip.Options{
		PrimarySupport: primary,
		Fanout:         e.opts.Fanout,
		Packing:        e.opts.Packing,
		Layout:         e.opts.Layout,
		Workers:        e.opts.Workers,
	})
	if err != nil {
		return SecondaryInfo{}, err
	}
	return e.installSecondary(idx, primary, version, time.Since(start)), nil
}

// installSecondary wires the executor and model around a mined
// secondary index and swaps it into the engine's index set.
func (e *Engine) installSecondary(idx *mip.Index, primary float64, version uint64, dur time.Duration) SecondaryInfo {
	ex := plans.NewExecutor(idx)
	ex.Mode = e.opts.CheckMode
	ex.Workers = e.opts.Workers
	smo := cost.NewModel(idx, e.Model.U)
	smo.Mode = e.opts.CheckMode
	s := &secondaryIndex{
		Index:         idx,
		Executor:      ex,
		Model:         smo,
		Primary:       primary,
		BuiltVersion:  version,
		BuildDuration: dur,
	}
	e.secMu.Lock()
	replaced := false
	for i, old := range e.secondaries {
		// Same primary fraction = same logical index; a rebuild at the
		// same fraction over a moved surface replaces the stale copy even
		// when the absolute count shifted with the record count.
		if math.Abs(old.Primary-primary) <= 1e-9 || old.Index.PrimaryCount == idx.PrimaryCount {
			e.secondaries[i] = s
			replaced = true
			break
		}
	}
	if !replaced {
		e.secondaries = append(e.secondaries, s)
	}
	e.secMu.Unlock()
	e.secBuilds.Inc()
	return secondaryInfo(s, version)
}

// DropSecondary removes the secondary index installed at the given
// primary support; it reports whether one matched.
func (e *Engine) DropSecondary(primary float64) bool {
	e.secMu.Lock()
	defer e.secMu.Unlock()
	for i, s := range e.secondaries {
		if math.Abs(s.Primary-primary) <= 1e-9 {
			e.secondaries = append(e.secondaries[:i], e.secondaries[i+1:]...)
			e.secDrops.Inc()
			return true
		}
	}
	return false
}

func secondaryInfo(s *secondaryIndex, version uint64) SecondaryInfo {
	return SecondaryInfo{
		Primary:       s.Primary,
		PrimaryCount:  s.Index.PrimaryCount,
		CFIs:          len(s.Index.Boxes),
		BuiltVersion:  s.BuiltVersion,
		Fresh:         s.BuiltVersion == version,
		BuildDuration: s.BuildDuration,
	}
}

// FreshSecondaryIndexes returns the primary fraction and index of each
// currently fresh secondary, for persistence. Stale secondaries are
// skipped: they can never be consulted again and are not worth the
// bytes.
func (e *Engine) FreshSecondaryIndexes() (primaries []float64, indexes []*mip.Index) {
	version := e.Delta.Staleness().Version
	e.secMu.RLock()
	defer e.secMu.RUnlock()
	for _, s := range e.secondaries {
		if s.BuiltVersion == version {
			primaries = append(primaries, s.Primary)
			indexes = append(indexes, s.Index)
		}
	}
	return primaries, indexes
}

// RestoreSecondary reinstalls a deserialized secondary index as fresh
// against the engine's current delta version. Valid only when the
// engine's merged surface is identical to the one the secondary was
// mined over — the persistence path guarantees it by saving only fresh
// secondaries and restoring them after the delta replay.
func (e *Engine) RestoreSecondary(idx *mip.Index, primary float64) SecondaryInfo {
	return e.installSecondary(idx, primary, e.Delta.Staleness().Version, 0)
}

// Secondaries lists the installed secondary indexes.
func (e *Engine) Secondaries() []SecondaryInfo {
	version := e.Delta.Staleness().Version
	e.secMu.RLock()
	defer e.secMu.RUnlock()
	out := make([]SecondaryInfo, 0, len(e.secondaries))
	for _, s := range e.secondaries {
		out = append(out, secondaryInfo(s, version))
	}
	return out
}

// secondaryStates snapshots the installed secondaries in the advisor's
// vocabulary (1-based ids matching the workload log's IndexUsed).
func (e *Engine) secondaryStates() []advisor.SecondaryState {
	version := e.Delta.Staleness().Version
	e.secMu.RLock()
	defer e.secMu.RUnlock()
	out := make([]advisor.SecondaryState, 0, len(e.secondaries))
	for i, s := range e.secondaries {
		out = append(out, advisor.SecondaryState{
			ID:           i + 1,
			Primary:      s.Primary,
			PrimaryCount: s.Index.PrimaryCount,
			Stale:        s.BuiltVersion != version,
		})
	}
	return out
}

// mergedRecords approximates the current merged record count (live
// base records minus tombstones plus buffered inserts) for converting
// support counts to fractions.
func (e *Engine) mergedRecords() int {
	n := e.Index.Dataset.NumRecords()
	if e.Index.Live != nil {
		n = e.Index.Live.Count()
	}
	st := e.Delta.Staleness()
	n += st.BufferedRows - st.Tombstones
	if n < 1 {
		n = 1
	}
	return n
}

// Recommendations mines the advisor's workload log against the
// currently installed secondary indexes: which index to build, which
// to drop, and why.
func (e *Engine) Recommendations() []advisor.Recommendation {
	if e.Advisor == nil {
		return nil
	}
	buildCost := e.Delta.Staleness().RebuildCost
	return e.Advisor.Recommendations(e.mergedRecords(), e.secondaryStates(), buildCost)
}

// ApplyRecommendations executes the advisor's current recommendations —
// building and dropping secondary indexes — and returns the ones
// applied. The engine serves queries throughout; each build or drop is
// an atomic swap of the index set.
func (e *Engine) ApplyRecommendations(ctx context.Context) ([]advisor.Recommendation, error) {
	var applied []advisor.Recommendation
	for _, rec := range e.Recommendations() {
		switch rec.Action {
		case "build":
			if _, err := e.BuildSecondary(ctx, rec.Primary); err != nil {
				return applied, err
			}
		case "drop":
			if !e.DropSecondary(rec.Primary) {
				continue
			}
		default:
			continue
		}
		e.recsApplied.Inc()
		applied = append(applied, rec)
	}
	return applied, nil
}
