package plans

import (
	"colarm/internal/bitset"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
)

// ShardSlice is one shard's projection of the record space: the records
// the shard owns and the per-item tidsets restricted to those records.
// Slices partition the live record ids — every live record belongs to
// exactly one shard — so per-shard support counts sum to the global
// count exactly (tidset supports are additive across a partition), which
// is what makes scatter-gather recombination exact rather than
// approximate. A ShardSlice is immutable once published.
type ShardSlice struct {
	// Records is the set of live record ids owned by the shard, in the
	// global id space (ids are never renumbered per shard).
	Records *bitset.Set
	// Items maps each item to its tidset restricted to Records.
	Items []*bitset.Set
}

// Collection abstracts a sharded record layout behind the executor: the
// plans package sees only the number of shards and their slices, never
// the hashing, delta routing or version clocks. A monolithic engine has
// no Collection (nil field) and a 1-shard collection is executed on the
// monolithic path, so K=1 is byte-identical to no sharding at all.
type Collection interface {
	// NumShards returns K.
	NumShards() int
	// Slices returns the frozen-index partition, one slice per shard.
	// The returned slices are immutable.
	Slices() []ShardSlice
}

// View is the index surface one query executes against when the engine
// holds buffered post-build transactions (a live delta). It presents the
// merged dataset — base records minus tombstones plus buffered inserts —
// through the same shapes the frozen index exposes, so every plan
// computes the exact answer a from-scratch rebuild over the merged data
// would produce:
//
//   - Tree holds the closed frequent itemsets of the MERGED data at the
//     merged primary-support count, with merged global supports and
//     tidsets extending over the buffered record ids;
//   - Boxes are the MIP bounding boxes recomputed over merged positions
//     (so Lemma 4.5's contained-box shortcut remains sound);
//   - Tidsets are the per-item tidsets with tombstoned records cleared
//     and buffered records added.
//
// Only the packed R-tree is missing: (SUPPORTED-)SEARCH degrades to a
// linear scan of the merged boxes — the per-query overhead the
// cost-based refresh policy weighs against a rebuild. A View is an
// immutable snapshot of one delta version; concurrent queries may share
// it freely.
type View struct {
	// Tree is the merged closed IT-tree (CFIs of the merged data).
	Tree *ittree.Tree
	// Boxes[i] is the merged bounding box of CFI i (Tree ids).
	Boxes []itemset.Box
	// Tidsets maps each item to its merged tidset.
	Tidsets []*bitset.Set
	// PrimaryCount is the support-count threshold the merged CFIs were
	// mined at — a rebuild over the merged data would use exactly this
	// count, so it is the view's applicability bound (see
	// Executor.Applicable).
	PrimaryCount int
	// NumRecords is the record-id capacity: base records (including
	// tombstoned ones, whose ids are never reused) plus buffered rows.
	NumRecords int
	// Live flags the records that exist in the merged dataset; AND-ing
	// it into a region bitmap drops tombstoned rows from unrestricted
	// dimensions.
	Live *bitset.Set
	// Skip reports whether record id r is tombstoned (ARM's SELECT scan
	// must pass over it).
	Skip func(r int) bool
	// Value returns the value index of record r at attribute a,
	// resolving base ids against the base table and buffered ids
	// against the delta store.
	Value func(r, a int) int
	// Slices, when the engine is sharded, partitions the merged live
	// records across the shards (buffered inserts routed by partition
	// key). Nil or a single slice keeps queries on the monolithic path.
	Slices []ShardSlice
}
