package rtree

import (
	"fmt"
	"math"
	"sort"

	"colarm/internal/itemset"
)

// Packing selects the bulk-loading order. Packed trees reach ~100% leaf
// utilization, the property the paper adopts from Kamel & Faloutsos for
// the one-time offline MIP-index build.
type Packing int

const (
	// STRPacking is Sort-Tile-Recursive packing generalized to n
	// dimensions (the default).
	STRPacking Packing = iota
	// MortonPacking sorts entries by the Morton (Z-order) code of their
	// box centers before packing; a space-filling-curve alternative in
	// the spirit of Kamel & Faloutsos' Hilbert packing.
	MortonPacking
)

func (p Packing) String() string {
	switch p {
	case STRPacking:
		return "str"
	case MortonPacking:
		return "morton"
	default:
		return fmt.Sprintf("Packing(%d)", int(p))
	}
}

// Bulk builds a packed R-tree from the given entries under the default
// FlatLayout. cards gives the per-dimension domain cardinalities (used
// to normalize Morton keys; STR ignores it but validates
// dimensionality). fanout <= 0 selects DefaultFanout. The entries slice
// is reordered in place.
func Bulk(entries []Entry, dims, fanout int, packing Packing, cards []int) (*Tree, error) {
	return BulkLayout(entries, dims, fanout, packing, cards, FlatLayout)
}

// BulkLayout is Bulk with an explicit physical layout. Both layouts pack
// the identical tree shape (same packing order, same per-node runs), so
// traversal statistics and emission order are layout-independent.
func BulkLayout(entries []Entry, dims, fanout int, packing Packing, cards []int, layout Layout) (*Tree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("rtree: dimensionality %d < 1", dims)
	}
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: fanout %d < 2", fanout)
	}
	for i := range entries {
		if entries[i].Box.Dims() != dims {
			return nil, fmt.Errorf("rtree: entry %d has %d dims, want %d", i, entries[i].Box.Dims(), dims)
		}
	}
	switch packing {
	case STRPacking:
	case MortonPacking:
		if len(cards) != dims {
			return nil, fmt.Errorf("rtree: morton packing needs %d cardinalities, got %d", dims, len(cards))
		}
	default:
		return nil, fmt.Errorf("rtree: unknown packing %v", packing)
	}
	t := &Tree{dims: dims, fanout: fanout, minFil: max(1, fanout*2/5), split: QuadraticSplit}
	if len(entries) == 0 {
		if layout == FlatLayout {
			t.packFlat(nil)
			return t, nil
		}
		t.root = &node{leaf: true, box: itemset.NewBox(dims)}
		return t, nil
	}
	if packing == STRPacking {
		strSort(entries, dims, fanout, 0)
	} else {
		mortonSort(entries, cards)
	}
	if layout == FlatLayout {
		t.packFlat(entries)
		return t, nil
	}

	// Pack leaves.
	var level []*node
	for i := 0; i < len(entries); i += fanout {
		end := min(i+fanout, len(entries))
		n := &node{leaf: true, entries: append([]Entry(nil), entries[i:end]...), box: itemset.NewBox(dims)}
		for _, e := range n.entries {
			n.box.ExtendBox(e.Box)
			if e.Support > n.maxSupport {
				n.maxSupport = e.Support
			}
		}
		level = append(level, n)
	}
	// Pack upper levels until a single root remains.
	for len(level) > 1 {
		var next []*node
		for i := 0; i < len(level); i += fanout {
			end := min(i+fanout, len(level))
			n := &node{children: append([]*node(nil), level[i:end]...), box: itemset.NewBox(dims)}
			for _, c := range n.children {
				n.box.ExtendBox(c.box)
				if c.maxSupport > n.maxSupport {
					n.maxSupport = c.maxSupport
				}
			}
			next = append(next, n)
		}
		level = next
	}
	t.root = level[0]
	t.size = len(entries)
	return t, nil
}

// strSort recursively tiles the entries: sort by the center of dimension
// dim, cut into slabs sized so that each slab recursively tiles the
// remaining dimensions, ending with runs of `fanout` entries that become
// leaves.
func strSort(entries []Entry, dims, fanout, dim int) {
	if len(entries) <= fanout || dim >= dims {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		ci := center(entries[i].Box, dim)
		cj := center(entries[j].Box, dim)
		if ci != cj {
			return ci < cj
		}
		return entries[i].ID < entries[j].ID
	})
	// Number of leaves needed and slab size along this dimension:
	// classic STR uses P = ceil(N/M) leaves and S = ceil(P^(1/k)) slabs
	// over the k remaining dimensions.
	leaves := (len(entries) + fanout - 1) / fanout
	remaining := dims - dim
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(remaining))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := ((leaves+slabs-1)/slabs)*fanout + 0
	if slabSize < fanout {
		slabSize = fanout
	}
	for i := 0; i < len(entries); i += slabSize {
		end := min(i+slabSize, len(entries))
		strSort(entries[i:end], dims, fanout, dim+1)
	}
}

func center(b itemset.Box, dim int) int32 {
	return b.Lo[dim] + b.Hi[dim] // 2×center; ordering is what matters
}

// mortonSort orders entries by the Z-order code of their box centers.
// Coordinates are normalized per dimension to a fixed bit budget so the
// interleaved key fits attributes of any cardinality; keys can exceed 64
// bits for high dimensionality, so they are materialized as byte strings
// and compared lexicographically.
func mortonSort(entries []Entry, cards []int) {
	bitsPer := make([]int, len(cards))
	total := 0
	for d, c := range cards {
		b := 1
		for (1 << b) < c {
			b++
		}
		bitsPer[d] = b
		total += b
	}
	keys := make([]string, len(entries))
	buf := make([]byte, (total+7)/8)
	for i := range entries {
		for j := range buf {
			buf[j] = 0
		}
		// Interleave bits round-robin from the most significant bit of
		// each dimension.
		pos := 0
		maxBits := 0
		for _, b := range bitsPer {
			if b > maxBits {
				maxBits = b
			}
		}
		for bit := maxBits - 1; bit >= 0; bit-- {
			for d := range cards {
				if bit >= bitsPer[d] {
					continue
				}
				c := uint32(center(entries[i].Box, d)) / 2
				if c>>uint(bit)&1 == 1 {
					buf[pos/8] |= 1 << uint(7-pos%8)
				}
				pos++
			}
		}
		keys[i] = string(buf)
	}
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if keys[idx[a]] != keys[idx[b]] {
			return keys[idx[a]] < keys[idx[b]]
		}
		return entries[idx[a]].ID < entries[idx[b]].ID
	})
	sorted := make([]Entry, len(entries))
	for i, j := range idx {
		sorted[i] = entries[j]
	}
	copy(entries, sorted)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
