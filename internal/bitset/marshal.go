package bitset

import (
	"encoding/binary"
	"fmt"
)

// Binary formats.
//
// v2 (pre-hybrid, read-only compatibility): an 8-byte little-endian
// capacity followed by ceil(n/64) dense words. Decoding a v2 stream
// converts it to the hybrid representation on load (and Optimize-packs
// it when the hybrid policy is active), so old MIP-index snapshots keep
// loading byte-for-byte.
//
// v3 (written by MarshalBinary): an 8-byte magic, the capacity, then one
// record per container carrying its encoding — so snapshots persist the
// compressed form instead of re-inflating to dense words. The magic is
// chosen above the v2 decoder's capacity sanity bound (2^40), so a
// pre-hybrid build rejects a v3 stream with a clean "implausible
// capacity" error instead of misreading it.
const (
	// hybridMagic spells "COLARMV3" as a big-endian uint64; any value
	// above maxBits works, the mnemonic is for hex dumps.
	hybridMagic uint64 = 0x434F4C41524D5633
	// maxBits bounds the decoded capacity against corrupted input.
	maxBits = 1 << 40
)

// MarshalBinary encodes the set in the v3 container format. It
// implements encoding.BinaryMarshaler so sets can be embedded in
// serialized index snapshots.
func (s *Set) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 16+len(s.ctrs))
	buf = binary.LittleEndian.AppendUint64(buf, hybridMagic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.n))
	for i := range s.ctrs {
		c := &s.ctrs[i]
		buf = append(buf, c.kind)
		switch c.kind {
		case emptyCtr:
		case arrayCtr:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.a)))
			for _, v := range c.a {
				buf = binary.LittleEndian.AppendUint16(buf, v)
			}
		case bitmapCtr:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.b)))
			for _, w := range c.b {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		case runCtr:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.a)/2))
			for _, v := range c.a {
				buf = binary.LittleEndian.AppendUint16(buf, v)
			}
		default:
			return nil, fmt.Errorf("bitset: unknown container kind %d", c.kind)
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a set written by MarshalBinary (v3) or by the
// pre-hybrid dense encoder (v2), sniffing the format from the first
// 8 bytes. The decoded set adopts the current representation policy.
func (s *Set) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitset: truncated header (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint64(data) == hybridMagic {
		return s.unmarshalV3(data[8:])
	}
	return s.unmarshalV2(data)
}

// unmarshalV2 decodes the pre-hybrid dense format: capacity + words.
func (s *Set) unmarshalV2(data []byte) error {
	n := binary.LittleEndian.Uint64(data)
	if n > maxBits {
		return fmt.Errorf("bitset: implausible capacity %d", n)
	}
	words := (int(n) + wordBits - 1) / wordBits
	if len(data) != 8+8*words {
		return fmt.Errorf("bitset: capacity %d needs %d payload bytes, have %d", n, 8*words, len(data)-8)
	}
	hybrid := defaultHybrid.Load()
	s.n = int(n)
	s.hybrid = hybrid
	s.ctrs = make([]container, numCtrs(s.n))
	for ci := range s.ctrs {
		c := &s.ctrs[ci]
		c.toBitmap()
		base := ci * ctrWords
		nw := (s.span(ci) + wordBits - 1) / wordBits
		for w := 0; w < nw; w++ {
			c.b[w] = binary.LittleEndian.Uint64(data[8+8*(base+w):])
		}
		trimBitmap(c.b, s.span(ci))
		c.card = bitmapCard(c.b)
		// Dense → hybrid conversion on load: pick the cheapest encoding
		// per chunk instead of keeping the inflated words.
		c.optimize(hybrid)
	}
	return nil
}

// unmarshalV3 decodes the container format (after the magic).
func (s *Set) unmarshalV3(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitset: truncated v3 header (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	if n > maxBits {
		return fmt.Errorf("bitset: implausible capacity %d", n)
	}
	hybrid := defaultHybrid.Load()
	s.n = int(n)
	s.hybrid = hybrid
	s.ctrs = make([]container, numCtrs(s.n))
	off := 8
	for ci := range s.ctrs {
		if off >= len(data) {
			return fmt.Errorf("bitset: truncated at container %d", ci)
		}
		c := &s.ctrs[ci]
		kind := data[off]
		off++
		switch kind {
		case emptyCtr:
			// zero value already empty
		case arrayCtr, runCtr:
			cnt, rest, err := readCount(data, off, ci)
			if err != nil {
				return err
			}
			off = rest
			elems := cnt
			if kind == runCtr {
				elems = 2 * cnt
			}
			if elems > ctrBits {
				return fmt.Errorf("bitset: container %d has %d elements", ci, elems)
			}
			if len(data)-off < 2*elems {
				return fmt.Errorf("bitset: truncated at container %d payload", ci)
			}
			a := make([]uint16, elems)
			for i := range a {
				a[i] = binary.LittleEndian.Uint16(data[off+2*i:])
			}
			off += 2 * elems
			c.kind, c.a = kind, a
			if kind == arrayCtr {
				c.card = int32(len(a))
			} else {
				for i := 0; i < len(a); i += 2 {
					if a[i] > a[i+1] {
						return fmt.Errorf("bitset: container %d run %d inverted", ci, i/2)
					}
					c.card += int32(a[i+1]-a[i]) + 1
				}
			}
		case bitmapCtr:
			cnt, rest, err := readCount(data, off, ci)
			if err != nil {
				return err
			}
			off = rest
			if cnt != ctrWords {
				return fmt.Errorf("bitset: container %d bitmap has %d words, want %d", ci, cnt, ctrWords)
			}
			if len(data)-off < 8*cnt {
				return fmt.Errorf("bitset: truncated at container %d payload", ci)
			}
			b := make([]uint64, cnt)
			for i := range b {
				b[i] = binary.LittleEndian.Uint64(data[off+8*i:])
			}
			off += 8 * cnt
			c.kind, c.b, c.card = bitmapCtr, b, bitmapCard(b)
		default:
			return fmt.Errorf("bitset: container %d has unknown kind %d", ci, kind)
		}
		if err := c.validate(s.span(ci)); err != nil {
			return fmt.Errorf("bitset: container %d: %w", ci, err)
		}
		if !hybrid {
			c.toBitmap()
		}
	}
	if off != len(data) {
		return fmt.Errorf("bitset: %d trailing bytes after last container", len(data)-off)
	}
	return nil
}

func readCount(data []byte, off, ci int) (int, int, error) {
	if len(data)-off < 4 {
		return 0, 0, fmt.Errorf("bitset: truncated at container %d header", ci)
	}
	return int(binary.LittleEndian.Uint32(data[off:])), off + 4, nil
}
