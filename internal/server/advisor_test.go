package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestAdvisorEndpoint exercises GET /v1/datasets/{name}/advisor: the
// full self-tuning report with the calibration state, workload summary
// and (initially empty) recommendation and secondary-index lists.
func TestAdvisorEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	req := httptest.NewRequest("GET", "/v1/datasets/salary/advisor", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body: %s", w.Code, w.Body.String())
	}
	var resp advisorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dataset != "salary" {
		t.Fatalf("dataset = %q, want salary", resp.Dataset)
	}
	if resp.Calibration.StaticUnits.WordOp <= 0 {
		t.Fatalf("staticUnits.wordOp = %v, want > 0", resp.Calibration.StaticUnits.WordOp)
	}
	if resp.Calibration.LiveUnits != resp.Calibration.StaticUnits {
		t.Fatalf("fresh engine: live units %+v should equal static %+v", resp.Calibration.LiveUnits, resp.Calibration.StaticUnits)
	}
	if len(resp.Secondaries) != 0 {
		t.Fatalf("fresh engine reports secondaries: %+v", resp.Secondaries)
	}
	// The lists serialize as [] rather than null so clients can range
	// without a nil check.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"recommendations", "secondaries"} {
		if string(raw[field]) == "null" {
			t.Errorf("%s serialized as null, want []", field)
		}
	}
}

// TestAdvisorApplyEndpoint exercises POST .../advisor/apply: one
// synchronous self-tuning step. On a fresh engine with no workload it
// is a no-op that still reports the calibration state.
func TestAdvisorApplyEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	// Build a little workload first so the endpoint has observations.
	for i := 0; i < 3; i++ {
		if w := postJSON(t, h, "/v1/mine", seattleQuery); w.Code != http.StatusOK {
			t.Fatalf("mine: %d %s", w.Code, w.Body.String())
		}
	}

	req := httptest.NewRequest("POST", "/v1/datasets/salary/advisor/apply", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body: %s", w.Code, w.Body.String())
	}
	var resp advisorApplyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dataset != "salary" {
		t.Fatalf("dataset = %q, want salary", resp.Dataset)
	}
	if resp.Calibration.StaticUnits.WordOp <= 0 {
		t.Fatalf("apply response missing calibration: %+v", resp.Calibration)
	}
	// The tiny salary dataset gives the advisor nothing worth building;
	// the step must be an honest no-op, not an error.
	if len(resp.Applied) != 0 {
		t.Fatalf("applied on a no-benefit workload: %+v", resp.Applied)
	}
}

// TestDatasetDetailAdvisorSummary checks the dataset detail view carries
// the self-tuning summary: live units, drift score, recalibration count.
func TestDatasetDetailAdvisorSummary(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	req := httptest.NewRequest("GET", "/v1/datasets/salary", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body: %s", w.Code, w.Body.String())
	}
	var detail struct {
		Advisor advisorSummaryJSON `json:"advisor"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Advisor.LiveUnits.WordOp <= 0 {
		t.Fatalf("detail advisor summary missing live units: %+v", detail.Advisor)
	}
	if detail.Advisor.Recalibrations != 0 || detail.Advisor.LastRecalibration != "" {
		t.Fatalf("fresh engine reports recalibrations: %+v", detail.Advisor)
	}
}

// TestAdvisorPolicyLoop proves the background loop ticks engines through
// Recalibrate (and auto-apply) and that Close stops it cleanly.
func TestAdvisorPolicyLoop(t *testing.T) {
	s, _ := newTestServer(t, Config{
		AdvisorInterval:  2 * time.Millisecond,
		AdvisorAutoApply: true,
	})
	deadline := time.Now().Add(5 * time.Second)
	for s.advisorTicks.Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("policy loop never ticked (ticks=%d)", s.advisorTicks.Value())
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	ticks := s.advisorTicks.Value()
	time.Sleep(10 * time.Millisecond)
	if got := s.advisorTicks.Value(); got != ticks {
		t.Fatalf("policy loop still ticking after Close: %d -> %d", ticks, got)
	}
	// Close is idempotent with the loop already stopped.
	s.Close()
}
