package relation

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Discretization of quantitative attributes into disjoint intervals is an
// offline, orthogonal step in the paper (Section 2, footnote 3): the
// MIP-index is built over already-discretized nominal cells. The helpers
// here provide the two classic schemes so CSV datasets with numeric
// columns can be prepared for mining.

// BinningMethod selects how numeric values are cut into intervals.
type BinningMethod int

const (
	// EqualWidth splits [min,max] into k intervals of equal length.
	EqualWidth BinningMethod = iota
	// EqualFrequency splits the sorted values into k intervals holding
	// (approximately) the same number of records.
	EqualFrequency
)

func (m BinningMethod) String() string {
	switch m {
	case EqualWidth:
		return "equal-width"
	case EqualFrequency:
		return "equal-frequency"
	default:
		return fmt.Sprintf("BinningMethod(%d)", int(m))
	}
}

// Interval is one discretization bucket [Lo, Hi). The last interval of an
// attribute is closed on both ends so max values are covered.
type Interval struct {
	Lo, Hi float64
}

// Label renders the interval the way the paper writes discretized cells,
// e.g. "20-30".
func (iv Interval) Label() string {
	return trimFloat(iv.Lo) + "-" + trimFloat(iv.Hi)
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', 6, 64)
}

// CutPoints computes the k+1 boundaries for the chosen method over the
// given values. It returns an error when the values cannot support k bins
// (fewer than two distinct values, or k < 1).
func CutPoints(values []float64, k int, method BinningMethod) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("relation: bin count %d < 1", k)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("relation: no values to discretize")
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("relation: non-finite value %v", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		return nil, fmt.Errorf("relation: all values equal (%v); nothing to discretize", lo)
	}
	cuts := make([]float64, 0, k+1)
	switch method {
	case EqualWidth:
		w := (hi - lo) / float64(k)
		for i := 0; i <= k; i++ {
			cuts = append(cuts, lo+float64(i)*w)
		}
		cuts[k] = hi // avoid float drift on the top edge
	case EqualFrequency:
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		cuts = append(cuts, lo)
		for i := 1; i < k; i++ {
			q := sorted[i*len(sorted)/k]
			if q > cuts[len(cuts)-1] {
				cuts = append(cuts, q)
			}
		}
		cuts = append(cuts, hi)
	default:
		return nil, fmt.Errorf("relation: unknown binning method %v", method)
	}
	return cuts, nil
}

// BinOf returns the interval index of v for the given ascending cut
// points (len(cuts)-1 bins). Values at the top edge fall into the last
// bin.
func BinOf(v float64, cuts []float64) int {
	n := len(cuts) - 1
	// binary search for the first cut > v
	i := sort.SearchFloat64s(cuts[1:], math.Nextafter(v, math.Inf(1)))
	if i >= n {
		i = n - 1
	}
	return i
}

// DiscretizeColumn rewrites attribute ai of d (whose dictionary values
// must all parse as floats) into k interval labels, returning a new
// Dataset. The original dataset is not modified.
func DiscretizeColumn(d *Dataset, ai int, k int, method BinningMethod) (*Dataset, error) {
	if ai < 0 || ai >= len(d.Attrs) {
		return nil, fmt.Errorf("relation: attribute index %d out of range", ai)
	}
	vals := make([]float64, d.NumRecords())
	for r := 0; r < d.NumRecords(); r++ {
		f, err := strconv.ParseFloat(d.ValueString(r, ai), 64)
		if err != nil {
			return nil, fmt.Errorf("relation: attribute %q record %d: %w", d.Attrs[ai].Name, r, err)
		}
		vals[r] = f
	}
	cuts, err := CutPoints(vals, k, method)
	if err != nil {
		return nil, fmt.Errorf("relation: attribute %q: %w", d.Attrs[ai].Name, err)
	}
	names := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		names[i] = a.Name
	}
	b := NewBuilder(d.Name, names...)
	// Pre-register interval labels in ascending order so value indices
	// preserve the numeric order (the R-tree axis must be ordered).
	for i := 0; i+1 < len(cuts); i++ {
		b.AddValue(ai, Interval{Lo: cuts[i], Hi: cuts[i+1]}.Label())
	}
	row := make([]string, len(d.Attrs))
	for r := 0; r < d.NumRecords(); r++ {
		for a := range d.Attrs {
			if a == ai {
				bin := BinOf(vals[r], cuts)
				row[a] = Interval{Lo: cuts[bin], Hi: cuts[bin+1]}.Label()
			} else {
				row[a] = d.ValueString(r, a)
			}
		}
		if err := b.AddRecord(row...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
