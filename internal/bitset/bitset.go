// Package bitset provides the tidsets used throughout COLARM: sets of
// record identifiers attached to items and itemsets. The hot operations
// for the miners and the online plans are intersection, intersection
// cardinality, and population count, so those are implemented without
// allocation where possible.
//
// Storage is hybrid (see container.go): the universe is chunked into
// aligned 2^16-id containers, each independently encoded as a sorted
// array, a dense bitmap, or a run list, with automatic promotion and
// demotion on mutation. SetHybrid(false) pins every container to the
// dense bitmap encoding, which reproduces the pre-hybrid dense layout
// word for word — the benchmark harness uses that to compare the two
// representations on identical workloads.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

const wordBits = 64

// defaultHybrid selects the representation policy for newly constructed
// sets: compressed containers (true, the default) or dense bitmaps only.
var defaultHybrid atomic.Bool

func init() { defaultHybrid.Store(true) }

// SetHybrid sets the package-wide representation policy for sets created
// afterwards and returns the previous policy. Existing sets keep the
// policy they were created with; sets of different policies interoperate
// freely (every operation is defined on logical content, not encoding).
// Intended for benchmarks and differential tests.
func SetHybrid(on bool) bool { return defaultHybrid.Swap(on) }

// HybridEnabled reports the current construction policy.
func HybridEnabled() bool { return defaultHybrid.Load() }

// Set is a fixed-capacity set over the universe [0, Len()). The zero
// value is an empty set of capacity zero; use New to create a set that
// can hold ids.
type Set struct {
	n      int  // capacity in bits
	hybrid bool // representation policy this set was created under
	ctrs   []container
}

func numCtrs(n int) int { return (n + ctrBits - 1) / ctrBits }

// span returns the number of valid ids in container ci.
func (s *Set) span(ci int) int {
	if sp := s.n - ci*ctrBits; sp < ctrBits {
		return sp
	}
	return ctrBits
}

// New returns an empty Set capable of holding ids in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	s := &Set{n: n, hybrid: defaultHybrid.Load(), ctrs: make([]container, numCtrs(n))}
	if !s.hybrid {
		// Dense policy allocates eagerly, like the pre-hybrid layout.
		for i := range s.ctrs {
			s.ctrs[i].toBitmap()
		}
	}
	return s
}

// FromIDs returns a Set of capacity n containing exactly the given ids.
// It is the filtering constructor: ids outside [0, n) are silently
// dropped (unlike Add, which panics on them), so callers can build a set
// from an unvalidated id stream in one call.
func FromIDs(n int, ids ...int) *Set {
	s := New(n)
	for _, id := range ids {
		if id >= 0 && id < n {
			s.Add(id)
		}
	}
	return s
}

// Len returns the capacity (universe size) of the set in bits.
func (s *Set) Len() int { return s.n }

// Add inserts id into the set. An id outside [0, Len()) — including any
// negative id — panics: tidset ids are record ids, and an out-of-range
// one is always a caller bug. Use FromIDs to build from unvalidated ids.
func (s *Set) Add(id int) {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("bitset: Add(%d) outside capacity [0,%d)", id, s.n))
	}
	s.ctrs[id>>16].add(uint16(id&(ctrBits-1)), s.hybrid)
}

// Remove deletes id from the set. Like Add, an id outside [0, Len())
// panics.
func (s *Set) Remove(id int) {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("bitset: Remove(%d) outside capacity [0,%d)", id, s.n))
	}
	s.ctrs[id>>16].remove(uint16(id&(ctrBits-1)), s.hybrid)
}

// Contains reports whether id is in the set. Ids outside [0, Len()) are
// reported as absent (membership is a query, not a mutation, so the
// strict contract of Add/Remove does not apply).
func (s *Set) Contains(id int) bool {
	if id < 0 || id >= s.n {
		return false
	}
	return s.ctrs[id>>16].contains(uint16(id & (ctrBits - 1)))
}

// Count returns the number of ids in the set.
func (s *Set) Count() int {
	c := 0
	for i := range s.ctrs {
		c += int(s.ctrs[i].card)
	}
	return c
}

// IsEmpty reports whether the set contains no ids.
func (s *Set) IsEmpty() bool {
	for i := range s.ctrs {
		if s.ctrs[i].card != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, hybrid: s.hybrid, ctrs: make([]container, len(s.ctrs))}
	for i := range s.ctrs {
		c.ctrs[i] = s.ctrs[i].clone()
	}
	return c
}

// CloneGrown returns an independent copy of s with capacity n >= Len().
// The new ids [Len(), n) start absent. Used by the delta layer to extend
// base tidsets over buffered record ids without rescanning the base.
func (s *Set) CloneGrown(n int) *Set {
	if n < s.n {
		panic("bitset: CloneGrown capacity below current")
	}
	c := &Set{n: n, hybrid: s.hybrid, ctrs: make([]container, numCtrs(n))}
	for i := range s.ctrs {
		c.ctrs[i] = s.ctrs[i].clone()
	}
	if !c.hybrid {
		for i := range c.ctrs {
			c.ctrs[i].toBitmap()
		}
	}
	return c
}

// Clear removes all ids from the set, keeping its capacity.
func (s *Set) Clear() {
	for i := range s.ctrs {
		if s.hybrid {
			s.ctrs[i].setEmpty()
		} else {
			s.ctrs[i].toBitmap()
			clear(s.ctrs[i].b)
			s.ctrs[i].card = 0
		}
	}
}

// Fill adds every id in [0, Len()) to the set.
func (s *Set) Fill() {
	for i := range s.ctrs {
		fillCtr(&s.ctrs[i], s.span(i), s.hybrid)
	}
}

// And replaces s with s ∩ t. The sets must have equal capacity.
func (s *Set) And(t *Set) {
	s.checkCompat(t)
	for i := range s.ctrs {
		andInPlace(&s.ctrs[i], &t.ctrs[i], s.hybrid)
	}
}

// Or replaces s with s ∪ t. The sets must have equal capacity.
func (s *Set) Or(t *Set) {
	s.checkCompat(t)
	for i := range s.ctrs {
		orInPlace(&s.ctrs[i], &t.ctrs[i], s.hybrid)
	}
}

// AndNot replaces s with s \ t. The sets must have equal capacity.
func (s *Set) AndNot(t *Set) {
	s.checkCompat(t)
	for i := range s.ctrs {
		andNotInPlace(&s.ctrs[i], &t.ctrs[i], s.hybrid)
	}
}

// Complement replaces s with its complement within [0, Len()).
func (s *Set) Complement() {
	for i := range s.ctrs {
		complementCtr(&s.ctrs[i], s.span(i), s.hybrid)
	}
}

// Intersect returns a new set holding s ∩ t.
func Intersect(s, t *Set) *Set {
	s.checkCompat(t)
	r := &Set{n: s.n, hybrid: s.hybrid, ctrs: make([]container, len(s.ctrs))}
	for i := range s.ctrs {
		x, y := &s.ctrs[i], &t.ctrs[i]
		if x.kind == bitmapCtr && y.kind == bitmapCtr {
			// One-pass kernel for the dense pair: intersect into a stack
			// buffer while counting, then allocate only what the result
			// actually needs — an array payload for sparse results, a
			// copied bitmap otherwise. A bitmap×bitmap intersection is
			// usually much smaller than its operands, so allocating the
			// full 8 KiB up front just to demote it would put every
			// VERIFY check's scratch on the heap.
			var buf [ctrWords]uint64
			n := 0
			for w := range buf {
				buf[w] = x.b[w] & y.b[w]
				n += bits.OnesCount64(buf[w])
			}
			c := container{kind: bitmapCtr, card: int32(n), b: buf[:]}
			switch {
			case n == 0 && r.hybrid:
				r.ctrs[i] = container{}
			case int32(n) <= arrayOptCard && r.hybrid:
				c.toArray()
				r.ctrs[i] = c
			default:
				b := make([]uint64, ctrWords)
				copy(b, buf[:])
				c.b = b
				r.ctrs[i] = c
			}
			continue
		}
		r.ctrs[i] = x.clone()
		andInPlace(&r.ctrs[i], y, r.hybrid)
	}
	return r
}

// Union returns a new set holding s ∪ t.
func Union(s, t *Set) *Set {
	r := s.Clone()
	r.Or(t)
	return r
}

// Difference returns a new set holding s \ t.
func Difference(s, t *Set) *Set {
	r := s.Clone()
	r.AndNot(t)
	return r
}

// AndCount returns |s ∩ t| without materializing the intersection. This
// is the record-level support check on the hot path of ELIMINATE and
// VERIFY.
func AndCount(s, t *Set) int {
	s.checkCompat(t)
	c := 0
	for i := range s.ctrs {
		c += andCount(&s.ctrs[i], &t.ctrs[i])
	}
	return c
}

// Equal reports whether s and t hold exactly the same ids and capacity.
// Equality is over logical content: sets holding the same ids compare
// equal regardless of their container encodings.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.ctrs {
		if !equalCtr(&s.ctrs[i], &t.ctrs[i]) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every id of s is also in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.checkCompat(t)
	for i := range s.ctrs {
		x := &s.ctrs[i]
		if x.card == 0 {
			continue
		}
		if andCount(x, &t.ctrs[i]) != int(x.card) {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one id.
func (s *Set) Intersects(t *Set) bool {
	s.checkCompat(t)
	for i := range s.ctrs {
		if intersectsCtr(&s.ctrs[i], &t.ctrs[i]) {
			return true
		}
	}
	return false
}

// ForEach calls fn for every id in ascending order. Iteration stops
// early if fn returns false.
func (s *Set) ForEach(fn func(id int) bool) {
	for i := range s.ctrs {
		if !forEachCtr(&s.ctrs[i], i<<16, fn) {
			return
		}
	}
}

// IDs returns the ids in the set in ascending order.
func (s *Set) IDs() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Optimize re-encodes every container in its cheapest form (array, run
// or bitmap) given its current content. Call it after bulk construction
// of a read-mostly set — per-item tidsets, merged delta views, loaded
// snapshots — so clustered chunks collapse into runs; mutation after
// Optimize is still valid (runs fall back to array/bitmap in place).
// Under the dense policy it is a no-op beyond re-pinning bitmaps.
func (s *Set) Optimize() {
	for i := range s.ctrs {
		s.ctrs[i].optimize(s.hybrid)
	}
}

// Bytes reports the approximate heap footprint of the set's payload in
// bytes (container payloads plus per-container overhead). This is what
// the tidset benchmark compares across representations.
func (s *Set) Bytes() int {
	b := 0
	for i := range s.ctrs {
		b += s.ctrs[i].bytes()
	}
	return b
}

// Hash returns a cheap order-independent signature of the set contents.
// CHARM uses it to bucket candidate closed itemsets by tidset for
// subsumption checking; collisions are resolved with Equal. The value
// depends only on logical content (it folds the logical dense words),
// so equal sets hash equally across container encodings.
func (s *Set) Hash() uint64 {
	var h uint64 = fnvOffset
	for i := range s.ctrs {
		h = hashCtr(&s.ctrs[i], (s.span(i)+wordBits-1)/wordBits, h)
	}
	return h
}

// String renders the set as "{1, 5, 9}" for debugging and test failure
// messages.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) checkCompat(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}
