// Package qerr defines the sentinel errors of query validation, shared
// by every layer that rejects a malformed mining request (the mip
// vocabulary resolver, the plans validator, the plan-name parsers) and
// re-exported by the public facade. Callers classify failures with
// errors.Is — in particular the HTTP serving layer, which maps these
// four to 400 Bad Request and everything else to 500.
package qerr

import "errors"

var (
	// ErrUnknownAttribute marks a range or item-attribute name absent
	// from the dataset schema.
	ErrUnknownAttribute = errors.New("unknown attribute")
	// ErrUnknownValue marks a range selection label absent from its
	// attribute's value dictionary.
	ErrUnknownValue = errors.New("unknown value")
	// ErrBadThreshold marks a minsupport/minconfidence (or consequent
	// cap) outside its legal domain.
	ErrBadThreshold = errors.New("bad threshold")
	// ErrUnknownPlan marks an unresolvable execution-plan name or kind.
	ErrUnknownPlan = errors.New("unknown plan")
	// ErrBadRecordID marks a delete targeting a record id outside the
	// engine's current id space (base records plus buffered inserts).
	ErrBadRecordID = errors.New("bad record id")
	// ErrSnapshotVersion marks an index snapshot whose format version
	// does not match this build — an older/newer COLARM snapshot or a
	// foreign file — detected before any payload decoding.
	ErrSnapshotVersion = errors.New("unsupported snapshot version")
)
