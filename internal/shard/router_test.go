package shard

import "testing"

// TestRouterCoverageAndBalance checks the seeded properties fuzzing
// cannot: over a dense id range every shard receives records (full
// id-space coverage) and the splitmix64 mix keeps the load near
// uniform for sequential ids.
func TestRouterCoverageAndBalance(t *testing.T) {
	const n = 10000
	for _, k := range []int{2, 3, 7, 16} {
		r := NewRouter(k)
		counts := make([]int, k)
		for id := 0; id < n; id++ {
			s := r.Of(id)
			if s < 0 || s >= k {
				t.Fatalf("K=%d: Of(%d) = %d out of range", k, id, s)
			}
			counts[s]++
		}
		mean := float64(n) / float64(k)
		for s, c := range counts {
			if c == 0 {
				t.Fatalf("K=%d: shard %d received no ids", k, s)
			}
			if f := float64(c); f < 0.5*mean || f > 1.5*mean {
				t.Fatalf("K=%d: shard %d holds %d of %d ids (mean %.0f); routing is skewed", k, s, c, n, mean)
			}
		}
	}
	if r := NewRouter(0); r.Shards() != 1 || r.Of(12345) != 0 {
		t.Fatal("K<1 must clamp to a single shard owning everything")
	}
}

// FuzzShardRouter fuzzes the routing invariants: the shard is always
// in range, K=1 owns everything, and the assignment is a pure function
// of (id, K) — stable across calls and router instances, which is what
// keeps a record on its shard for the lifetime of an engine.
func FuzzShardRouter(f *testing.F) {
	f.Add(0, 1)
	f.Add(1, 2)
	f.Add(41, 3)
	f.Add(1<<31, 7)
	f.Add(-17, 4)
	f.Add(1<<62, 1000)
	f.Fuzz(func(t *testing.T, id, k int) {
		r := NewRouter(k)
		want := k
		if want < 1 {
			want = 1
		}
		if r.Shards() != want {
			t.Fatalf("NewRouter(%d).Shards() = %d, want %d", k, r.Shards(), want)
		}
		s := r.Of(id)
		if s < 0 || s >= want {
			t.Fatalf("Of(%d) = %d with K=%d: out of range", id, s, want)
		}
		if want == 1 && s != 0 {
			t.Fatalf("K=1 must route every id to shard 0, got %d", s)
		}
		if r.Of(id) != s || NewRouter(k).Of(id) != s {
			t.Fatalf("Of(%d) unstable with K=%d: partition keys must never move", id, want)
		}
	})
}
