package colarm

import (
	"context"
	"time"

	"colarm/internal/advisor"
	"colarm/internal/core"
	"colarm/internal/cost"
)

// UnitCosts are the cost model's five primitive unit costs in
// nanoseconds: the knobs the online recalibrator tunes.
type UnitCosts struct {
	WordOp  float64 // one 64-bit bitmap word operation
	BoxRel  float64 // one box/region relation test (R-tree traversal)
	IDProbe float64 // one record-id membership probe
	MapOp   float64 // one hash-map operation (closure bookkeeping)
	GenOp   float64 // one candidate-generation step (ARM lattice)
}

func unitCosts(u cost.Units) UnitCosts {
	return UnitCosts{WordOp: u.WordOp, BoxRel: u.BoxRel, IDProbe: u.IDProbe, MapOp: u.MapOp, GenOp: u.GenOp}
}

// UnitDrift is one unit's recalibration state: the static reference,
// the live value, and the evidence behind the gap.
type UnitDrift struct {
	Unit   string
	Static float64
	Live   float64
	// Bias is the EWMA of log(measured/predicted) attributed to this
	// unit; exp(Bias) is the correction the evidence asks for.
	Bias float64
	// Weight is the accumulated attribution weight (effective samples).
	Weight float64
}

// GuardrailReport describes the replay differential guarding a unit
// swap: every logged all-plans evaluation is replayed under the
// candidate units, and the swap is refused if any replayed choice's
// measured cost exceeds the static-units choice's by more than the
// tolerance.
type GuardrailReport struct {
	Evaluated   bool
	Window      int
	WorstRegret float64
	Tolerance   float64
	Passed      bool
}

// CalibrationReport is the online recalibrator's state: the static
// reference units, the live units the optimizer prices with, the
// candidate the evidence asks for, and the swap bookkeeping.
type CalibrationReport struct {
	StaticUnits    UnitCosts
	LiveUnits      UnitCosts
	CandidateUnits UnitCosts
	// DriftScore is the largest per-unit |log(candidate/live)|; 0 means
	// predictions are unbiased (or freshly swapped).
	DriftScore float64
	Samples    int
	Streak     int
	Swapped    bool
	Swaps      uint64
	LastSwap   time.Time
	Units      []UnitDrift
	Guardrail  GuardrailReport
}

func calibrationReport(r advisor.CalibrationReport) CalibrationReport {
	rep := CalibrationReport{
		StaticUnits:    unitCosts(r.Static),
		LiveUnits:      unitCosts(r.Live),
		CandidateUnits: unitCosts(r.Candidate),
		DriftScore:     r.DriftScore,
		Samples:        r.Samples,
		Streak:         r.Streak,
		Swapped:        r.Swapped,
		Swaps:          r.Swaps,
		LastSwap:       r.LastSwap,
		Guardrail: GuardrailReport{
			Evaluated:   r.Guardrail.Evaluated,
			Window:      r.Guardrail.Window,
			WorstRegret: r.Guardrail.WorstRegret,
			Tolerance:   r.Guardrail.Tolerance,
			Passed:      r.Guardrail.Passed,
		},
	}
	for _, u := range r.Units {
		rep.Units = append(rep.Units, UnitDrift{Unit: u.Unit, Static: u.Static, Live: u.Live, Bias: u.Bias, Weight: u.Weight})
	}
	return rep
}

// IndexRecommendation is one index action the advisor's workload
// analysis pays for: "build" a secondary MIP-index at a lower primary
// support, or "drop" one that stopped winning queries.
type IndexRecommendation struct {
	Action         string
	PrimarySupport float64
	PrimaryCount   int
	BenefitNanos   int64
	BuildCostNanos int64
	Queries        int
	Reason         string
}

func indexRecommendations(recs []advisor.Recommendation) []IndexRecommendation {
	out := make([]IndexRecommendation, 0, len(recs))
	for _, r := range recs {
		out = append(out, IndexRecommendation{
			Action:         r.Action,
			PrimarySupport: r.Primary,
			PrimaryCount:   r.PrimaryCount,
			BenefitNanos:   r.BenefitNanos,
			BuildCostNanos: r.BuildCostNanos,
			Queries:        r.Queries,
			Reason:         r.Reason,
		})
	}
	return out
}

// SecondaryIndexInfo describes one installed secondary MIP-index.
type SecondaryIndexInfo struct {
	PrimarySupport float64
	PrimaryCount   int
	CFIs           int
	// Fresh reports the index covers exactly the current merged
	// records; only fresh secondaries join the optimizer's argmin.
	Fresh         bool
	BuildDuration time.Duration
}

func secondaryInfos(secs []core.SecondaryInfo) []SecondaryIndexInfo {
	out := make([]SecondaryIndexInfo, 0, len(secs))
	for _, s := range secs {
		out = append(out, SecondaryIndexInfo{
			PrimarySupport: s.Primary,
			PrimaryCount:   s.PrimaryCount,
			CFIs:           s.CFIs,
			Fresh:          s.Fresh,
			BuildDuration:  s.BuildDuration,
		})
	}
	return out
}

// WorkloadStats summarizes the advisor's query-log window.
type WorkloadStats struct {
	Window        int
	ForcedARM     int
	SecondaryWins int
}

// AdvisorReport is the self-tuning optimizer's full state: calibration,
// workload summary, pending recommendations, and the installed
// secondary indexes.
type AdvisorReport struct {
	Calibration     CalibrationReport
	Workload        WorkloadStats
	Recommendations []IndexRecommendation
	Secondaries     []SecondaryIndexInfo
}

// Advisor returns the self-tuning optimizer's current state without
// changing anything: a read-only calibration snapshot, the workload
// summary, and what the advisor would build or drop right now.
func (e *Engine) Advisor() AdvisorReport {
	st := e.eng.Advisor.WorkloadStats()
	return AdvisorReport{
		Calibration:     calibrationReport(e.eng.Advisor.Calibration()),
		Workload:        WorkloadStats{Window: st.Window, ForcedARM: st.ForcedARM, SecondaryWins: st.SecondaryWins},
		Recommendations: indexRecommendations(e.eng.Recommendations()),
		Secondaries:     secondaryInfos(e.eng.Secondaries()),
	}
}

// Recalibrate runs one drift evaluation: when operator mispredictions
// have persisted past the configured streak, the advisor replays the
// logged plan choices under the candidate units and — only if the
// guardrail differential passes — swaps them in as the optimizer's live
// units. Serving layers call this periodically.
func (e *Engine) Recalibrate() CalibrationReport {
	return calibrationReport(e.eng.Recalibrate())
}

// Recommendations returns the index actions the advisor's workload
// analysis currently pays for, without applying them.
func (e *Engine) Recommendations() []IndexRecommendation {
	return indexRecommendations(e.eng.Recommendations())
}

// ApplyRecommendations executes the advisor's current recommendations —
// building and dropping secondary indexes — and returns the ones
// applied. The engine serves queries throughout; each build or drop is
// an atomic swap of the index set.
func (e *Engine) ApplyRecommendations(ctx context.Context) ([]IndexRecommendation, error) {
	applied, err := e.eng.ApplyRecommendations(ctx)
	return indexRecommendations(applied), err
}

// BuildSecondaryIndex mines a secondary MIP-index over the current
// merged records at the given primary support and installs it. Queries
// whose localized thresholds the base index's applicability gate forces
// to ARM are reclaimed by a secondary with a low enough primary count.
func (e *Engine) BuildSecondaryIndex(ctx context.Context, primarySupport float64) (SecondaryIndexInfo, error) {
	info, err := e.eng.BuildSecondary(ctx, primarySupport)
	if err != nil {
		return SecondaryIndexInfo{}, err
	}
	return SecondaryIndexInfo{
		PrimarySupport: info.Primary,
		PrimaryCount:   info.PrimaryCount,
		CFIs:           info.CFIs,
		Fresh:          info.Fresh,
		BuildDuration:  info.BuildDuration,
	}, nil
}

// DropSecondaryIndex removes the secondary index installed at the given
// primary support, reporting whether one matched.
func (e *Engine) DropSecondaryIndex(primarySupport float64) bool {
	return e.eng.DropSecondary(primarySupport)
}

// SecondaryIndexes lists the installed secondary indexes.
func (e *Engine) SecondaryIndexes() []SecondaryIndexInfo {
	return secondaryInfos(e.eng.Secondaries())
}
