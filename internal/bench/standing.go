package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"colarm"
	"colarm/internal/obs"
	"colarm/internal/standing"
)

// StandingRow is one subscription-count configuration of the standing
// query benchmark: S standing queries watching one dataset while a
// writer streams delta batches into it.
type StandingRow struct {
	Subscriptions int `json:"subscriptions"`
	Batches       int `json:"batches"`
	BatchRows     int `json:"batch_rows"`

	// Events is the number of diff events delivered to consumers;
	// DiffsComputed / DiffsSkipped split the per-(tracker, batch)
	// decisions of the affectedness gate. BaselineRemines is the work a
	// naive standing-query engine would do instead: one full re-mine
	// per subscription per batch.
	Events          int   `json:"events"`
	DiffsComputed   int64 `json:"diffs_computed"`
	DiffsSkipped    int64 `json:"diffs_skipped"`
	BaselineRemines int   `json:"baseline_remines"`

	// NotifyP50Ns/NotifyP99Ns measure ingest-to-notify latency: from
	// the Ingest call that produced a version to the moment a consumer
	// goroutine received the diff event covering that version.
	NotifyP50Ns int64 `json:"notify_p50_ns"`
	NotifyP99Ns int64 `json:"notify_p99_ns"`

	// DiffP50Ns is the steady-state cost of one incremental RuleDiff
	// (merged-view mine + set diff against the previous rules);
	// RemineP50Ns is the full re-mine baseline for the same queries.
	DiffP50Ns   int64 `json:"diff_p50_ns"`
	RemineP50Ns int64 `json:"remine_p50_ns"`
}

// StandingReport is the JSON perf-trajectory artifact of the standing
// query benchmark (bench kind "standing" in BENCH_<pr>.json).
type StandingReport struct {
	Bench     string        `json:"bench"`
	PR        int           `json:"pr"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Dataset   string        `json:"dataset"`
	Records   int           `json:"records"`
	Rows      []StandingRow `json:"rows"`
}

// WriteJSON writes the report in the BENCH_<pr>.json artifact format.
func (r *StandingReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// standingQuery builds a random localized query: a focal region over
// two attributes (roughly half of each domain) with the remaining
// attributes as item attributes.
func standingQuery(ds *colarm.Dataset, rng *rand.Rand, minSupp, minConf float64) (colarm.Query, error) {
	attrs := ds.Attributes()
	if len(attrs) < 3 {
		return colarm.Query{}, fmt.Errorf("dataset %s: need at least 3 attributes", ds.Name())
	}
	perm := rng.Perm(len(attrs))
	focal := []string{attrs[perm[0]], attrs[perm[1]]}
	q := colarm.Query{
		Range:         map[string][]string{},
		MinSupport:    minSupp,
		MinConfidence: minConf,
	}
	for _, a := range focal {
		vals, err := ds.Values(a)
		if err != nil {
			return colarm.Query{}, err
		}
		k := (len(vals) + 1) / 2
		vperm := rng.Perm(len(vals))
		sel := make([]string, 0, k)
		for _, i := range vperm[:k] {
			sel = append(sel, vals[i])
		}
		sort.Strings(sel)
		q.Range[a] = sel
	}
	for _, i := range perm[2:] {
		q.ItemAttributes = append(q.ItemAttributes, attrs[i])
	}
	sort.Strings(q.ItemAttributes)
	return q, nil
}

// randomRows draws batchRows uniform random records from the dataset's
// attribute domains.
func randomRows(ds *colarm.Dataset, rng *rand.Rand, n int) ([]map[string]string, error) {
	attrs := ds.Attributes()
	domains := make(map[string][]string, len(attrs))
	for _, a := range attrs {
		vals, err := ds.Values(a)
		if err != nil {
			return nil, err
		}
		domains[a] = vals
	}
	rows := make([]map[string]string, n)
	for i := range rows {
		row := make(map[string]string, len(attrs))
		for _, a := range attrs {
			vals := domains[a]
			row[a] = vals[rng.Intn(len(vals))]
		}
		rows[i] = row
	}
	return rows, nil
}

// standingDataset builds the benchmark dataset with its default
// primary support and the mining thresholds the repo's other benches
// use for it (mushroom at low support explodes combinatorially).
func standingDataset(name string, seed int64) (ds *colarm.Dataset, primary, minSupp, minConf float64, err error) {
	switch name {
	case "salary":
		ds, err = colarm.Salary()
		return ds, 0.18, 0.30, 0.60, err
	case "mushroom":
		ds, err = colarm.GenerateMushroom(seed)
		return ds, 0.05, 0.70, 0.85, err
	default:
		return nil, 0, 0, 0, fmt.Errorf("unknown standing-bench dataset %q", name)
	}
}

// RunStanding benchmarks the standing-query subsystem: for each
// subscription count S it registers S random localized standing
// queries over a fresh engine, streams delta batches through Ingest,
// and measures ingest-to-notify latency at the consumers plus the
// per-diff incremental cost against the full re-mine baseline.
func RunStanding(dataset string, subCounts []int, batches, batchRows int, seed int64) (*StandingReport, error) {
	rep := &StandingReport{
		Bench:     "standing",
		PR:        CurrentPR,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Dataset:   dataset,
	}
	for _, s := range subCounts {
		row, records, err := runStandingRow(dataset, s, batches, batchRows, seed)
		if err != nil {
			return nil, err
		}
		rep.Records = records
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func runStandingRow(dataset string, subs, batches, batchRows int, seed int64) (StandingRow, int, error) {
	row := StandingRow{
		Subscriptions:   subs,
		Batches:         batches,
		BatchRows:       batchRows,
		BaselineRemines: subs * batches,
	}
	ds, primary, minSupp, minConf, err := standingDataset(dataset, seed)
	if err != nil {
		return row, 0, err
	}
	eng, err := colarm.Open(ds, colarm.Options{PrimarySupport: primary})
	if err != nil {
		return row, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	metrics := obs.NewRegistry()
	mgr := standing.NewManager(standing.Config{Metrics: metrics})
	defer mgr.Close()
	mgr.Attach(ds.Name(), eng)

	queries := make([]colarm.Query, subs)
	for i := range queries {
		q, err := standingQuery(ds, rng, minSupp, minConf)
		if err != nil {
			return row, 0, err
		}
		// Distinct thresholds keep canonical forms distinct, so the
		// benchmark measures S trackers, not dedup of identical queries.
		q.MinSupport += float64(i%7) / 1000
		queries[i] = q
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Minute)
	defer cancel()

	// batchStart maps the version produced by each Ingest call to its
	// start time; consumers compute notify latency from it.
	var mu sync.Mutex
	batchStart := map[uint64]time.Time{}
	var notify []time.Duration
	events := 0

	var wg sync.WaitGroup
	for i := range queries {
		sub, err := mgr.Create(ctx, ds.Name(), queries[i], nil)
		if err != nil {
			return row, 0, err
		}
		// The seeded snapshot's ToVersion predates every batch, so the
		// consumer naturally skips it (no batchStart entry).
		cur := sub.Cursor(0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				evs, err := cur.Next(ctx)
				if err != nil {
					return
				}
				now := time.Now()
				mu.Lock()
				for _, ev := range evs {
					if start, ok := batchStart[ev.ToVersion]; ok {
						notify = append(notify, now.Sub(start))
						events++
					}
				}
				mu.Unlock()
			}
		}()
	}

	// Creation-time baseline mines (and their verify re-diffs) land in
	// the same histogram; count only batch-driven diffs from here on.
	if err := mgr.Quiesce(ctx); err != nil {
		return row, 0, err
	}
	hist := metrics.Histogram("colarm_rule_diff_seconds", "", "", nil)
	skips := metrics.Counter("colarm_rule_diff_skipped_total", "")
	diffs0, skips0 := hist.Count(), skips.Value()

	for b := 0; b < batches; b++ {
		rows, err := randomRows(ds, rng, batchRows)
		if err != nil {
			return row, 0, err
		}
		start := time.Now()
		mu.Lock()
		// The apply bumps the version clock by one; record the start
		// under the version the batch will produce.
		batchStart[eng.Version()+1] = start
		mu.Unlock()
		st, err := eng.Ingest(rows, nil)
		if err != nil {
			return row, 0, err
		}
		mu.Lock()
		// Keep the actual post-apply version covered in case the clock
		// advanced differently than predicted (sharded layouts).
		if _, ok := batchStart[st.Version]; !ok {
			batchStart[st.Version] = start
		}
		mu.Unlock()
		// Let each batch notify before the next one lands, so the
		// measurement is per-batch latency, not coalescing throughput.
		if err := mgr.Quiesce(ctx); err != nil {
			return row, 0, err
		}
	}
	cancel()
	wg.Wait()

	mu.Lock()
	row.Events = events
	sort.Slice(notify, func(i, j int) bool { return notify[i] < notify[j] })
	if len(notify) > 0 {
		row.NotifyP50Ns = notify[len(notify)/2].Nanoseconds()
		row.NotifyP99Ns = notify[(len(notify)*99)/100].Nanoseconds()
	}
	mu.Unlock()

	row.DiffsSkipped = skips.Value() - skips0
	row.DiffsComputed = hist.Count() - diffs0

	// Steady-state per-diff cost vs the full re-mine baseline, over the
	// final (aged) state: RuleDiff pays the merged-view mine plus the
	// set diff; Mine is what a naive standing-query engine would run
	// per subscription per batch.
	var diffNs, remineNs []int64
	for _, q := range queries {
		res, err := eng.Mine(q)
		if err != nil {
			return row, 0, err
		}
		for it := 0; it < 3; it++ {
			t0 := time.Now()
			if _, err := eng.Mine(q); err != nil {
				return row, 0, err
			}
			remineNs = append(remineNs, time.Since(t0).Nanoseconds())
			t0 = time.Now()
			if _, err := eng.RuleDiff(context.Background(), q, res.Rules); err != nil {
				return row, 0, err
			}
			diffNs = append(diffNs, time.Since(t0).Nanoseconds())
		}
	}
	sort.Slice(diffNs, func(i, j int) bool { return diffNs[i] < diffNs[j] })
	sort.Slice(remineNs, func(i, j int) bool { return remineNs[i] < remineNs[j] })
	row.DiffP50Ns = diffNs[len(diffNs)/2]
	row.RemineP50Ns = remineNs[len(remineNs)/2]
	return row, ds.NumRecords(), nil
}

// PrintStanding renders the report as a table.
func PrintStanding(w io.Writer, rep *StandingReport) {
	fmt.Fprintf(w, "standing queries: %s (%d records), %s/%s %d CPUs\n\n",
		rep.Dataset, rep.Records, rep.GOOS, rep.GOARCH, rep.CPUs)
	fmt.Fprintf(w, "%6s %8s %8s %8s %10s %12s %12s %12s %12s\n",
		"subs", "batches", "events", "diffs", "skipped", "notify p50", "notify p99", "diff p50", "remine p50")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%6d %8d %8d %8d %10d %12s %12s %12s %12s\n",
			r.Subscriptions, r.Batches, r.Events, r.DiffsComputed, r.DiffsSkipped,
			time.Duration(r.NotifyP50Ns), time.Duration(r.NotifyP99Ns),
			time.Duration(r.DiffP50Ns), time.Duration(r.RemineP50Ns))
	}
	for _, r := range rep.Rows {
		if r.BaselineRemines > 0 {
			fmt.Fprintf(w, "\nS=%d: %d incremental diffs instead of %d full re-mines (gate skipped %d)\n",
				r.Subscriptions, r.DiffsComputed, r.BaselineRemines, r.DiffsSkipped)
		}
	}
}
