// Package server is COLARM's serving layer: an HTTP service that
// answers localized mining queries for a registry of named engines,
// with per-request deadlines propagated into the executing operators,
// admission control bounding concurrent mining work, and a sharded LRU
// result cache keyed by the canonical query form.
//
// Endpoints (the route table in routes.go is authoritative, and
// api/openapi.yaml documents every route on it):
//
//	POST   /v1/mine                     execute a query (JSON body, or a
//	                                    COLARM-QL statement as text/plain)
//	POST   /v1/explain                  optimizer cost estimates without
//	                                    executing
//	POST   /v1/ingest                   buffer live inserts/deletes into a
//	                                    dataset's delta store; may trigger
//	                                    a background rebuild
//	GET    /v1/datasets                 registered datasets, their metadata
//	                                    and ingestion staleness
//	GET    /v1/datasets/{name}          one dataset's detail view: value
//	                                    domains, staleness, version, and
//	                                    the self-tuning summary (live unit
//	                                    costs, drift, last recalibration)
//	GET    /v1/datasets/{name}/advisor  the self-tuning optimizer's full
//	                                    state: calibration, workload
//	                                    summary, index recommendations,
//	                                    installed secondary indexes
//	POST   /v1/datasets/{name}/advisor/apply
//	                                    run one explicit self-tuning step:
//	                                    a recalibration evaluation plus
//	                                    the index builds/drops the
//	                                    workload pays for
//	POST   /v1/subscriptions            register a standing query (201 +
//	                                    Location)
//	GET    /v1/subscriptions            list standing subscriptions
//	GET    /v1/subscriptions/{id}       one subscription
//	DELETE /v1/subscriptions/{id}       cancel a subscription
//	GET    /v1/subscriptions/{id}/events
//	                                    the subscription's rule-diff event
//	                                    stream: SSE by default (resumable
//	                                    via Last-Event-ID), one-shot JSON
//	                                    long-poll with ?wait=
//	GET    /metrics                     Prometheus exposition: server +
//	                                    engine metrics
//	GET    /debug/pprof                 the standard Go profiling handlers
//
// A request with a wrong method on any /v1 route is answered with a
// JSON 405 carrying an Allow header. Every /v1 error response is the
// structured envelope {"error": {"code", "message", "details"}} with a
// machine-readable code.
//
// Ingested transactions are merged into every subsequent answer, so
// queries stay exact while the base index ages; when the accumulated
// per-query delta overhead crosses the amortized rebuild cost (or the
// client forces it), the server rebuilds the index in the background —
// the old engine keeps serving throughout — and atomically swaps the
// new engine into the registry. The swap bumps the dataset's
// generation, which retires every cached result keyed under the old
// one. While a dataset is rebuilding, further ingests for it are
// rejected with 409 Conflict (they could land after the rebuild's
// snapshot and be lost in the swap); queries are never blocked.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"colarm"
	"colarm/internal/colarmql"
	"colarm/internal/obs"
	"colarm/internal/standing"
)

// Config tunes one Server. Zero values select the defaults noted on
// each field.
type Config struct {
	// MaxInFlight caps concurrently executing mining queries
	// (default 8). Cache hits, explains and listings don't consume
	// slots.
	MaxInFlight int
	// MaxQueue caps queries waiting for a slot (default 32; 0 keeps a
	// strict no-queue policy where busy means 429).
	MaxQueue int
	// QueueWait caps the time a query waits for a slot before a 429
	// (default 2s).
	QueueWait time.Duration
	// QueryTimeout is the server-imposed deadline on each mining
	// request (default 30s; <0 disables). Clients may ask for less via
	// the request's "timeout" field, never more.
	QueryTimeout time.Duration
	// CacheEntries bounds the result cache (total entries, default
	// 4096; <0 disables caching).
	CacheEntries int
	// CacheTTL expires cached results (default 5m; 0 keeps entries
	// until evicted).
	CacheTTL time.Duration
	// EngineMetrics, when non-nil, is the shared registry the server's
	// engines were opened with; /metrics appends its exposition after
	// the server's own metrics.
	EngineMetrics *colarm.MetricsRegistry
	// MaxSubscriptions caps live standing-query subscriptions
	// (default 1024).
	MaxSubscriptions int
	// SubscriptionBuffer is each subscription's bounded event-ring
	// capacity (default 256); a consumer that falls this far behind is
	// evicted with a terminal event.
	SubscriptionBuffer int
	// SSEHeartbeat is the keep-alive comment interval on idle event
	// streams (default 15s).
	SSEHeartbeat time.Duration
	// AdvisorInterval, when positive, runs the self-tuning policy loop:
	// every interval each registered engine gets one Recalibrate
	// evaluation (unit swaps still gated by the guardrail replay).
	// 0 disables the loop; the advisor endpoints work either way.
	AdvisorInterval time.Duration
	// AdvisorAutoApply additionally applies the index advisor's
	// recommendations (secondary index builds and drops) on each policy
	// tick. Ignored without AdvisorInterval.
	AdvisorAutoApply bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 8
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 32
	}
	if c.QueueWait == 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 5 * time.Minute
	}
	if c.SSEHeartbeat == 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	return c
}

// Server serves mining queries over HTTP for a registry of engines.
type Server struct {
	cfg      Config
	reg      *Registry
	cache    *resultCache // nil when caching is disabled
	adm      *admission
	metrics  *obs.Registry
	standing *standing.Manager
	// sseDelay is a test knob: a per-event write delay simulating a
	// slow SSE consumer, so eviction is deterministic under test.
	sseDelay time.Duration

	requests map[string]*obs.Counter
	errors   map[string]*obs.Counter
	uncached *obs.Counter

	rebuildsStarted *obs.Counter
	rebuildsFailed  *obs.Counter

	advisorTicks   *obs.Counter
	advisorApplies *obs.Counter
	advisorStop    chan struct{}
	advisorDone    chan struct{}

	// ing serializes delta mutations against engine swaps: an ingest
	// applies, and a rebuild starts or registers its result, only under
	// this lock, so no accepted transaction can slip into an engine
	// after its rebuild snapshot was taken. Ingestion is cheap (no
	// mining), so one lock across datasets is fine at this scale; the
	// expensive rebuild itself runs outside the lock.
	ing struct {
		sync.Mutex
		rebuilding map[string]bool
	}
}

// New assembles a server over the given engine registry.
func New(reg *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait, m),
		metrics:  m,
		requests: make(map[string]*obs.Counter),
		errors:   make(map[string]*obs.Counter),
		uncached: m.Counter("colarm_uncacheable_queries_total",
			"Mined queries not stored in the result cache (traced or no-cache requests)."),
	}
	s.rebuildsStarted = m.Counter("colarm_server_rebuilds_started_total",
		"Background index rebuilds started by the refresh policy or forced by clients.")
	s.rebuildsFailed = m.Counter("colarm_server_rebuilds_failed_total",
		"Background index rebuilds that failed (the old engine keeps serving).")
	s.ing.rebuilding = make(map[string]bool)
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries, cfg.CacheTTL, m)
	}
	for _, ep := range []string{"mine", "explain", "ingest", "datasets", "metrics", "subscriptions", "events", "advisor"} {
		labels := fmt.Sprintf("endpoint=%q", ep)
		s.requests[ep] = m.CounterWith("colarm_http_requests_total", labels, "HTTP requests served, by endpoint.")
		s.errors[ep] = m.CounterWith("colarm_http_request_errors_total", labels, "HTTP requests answered with a non-2xx status, by endpoint.")
	}
	// The standing-query manager shares the server's metrics registry
	// and hooks every registered engine's apply-notice stream; rebuild
	// swaps re-attach the fresh engine (see rebuild).
	s.standing = standing.NewManager(standing.Config{
		MaxSubscriptions: cfg.MaxSubscriptions,
		EventBuffer:      cfg.SubscriptionBuffer,
		Metrics:          m,
	})
	for _, info := range reg.List() {
		if eng, _, err := reg.Get(info.Name); err == nil {
			s.standing.Attach(info.Name, eng)
		}
	}
	s.advisorTicks = m.Counter("colarm_server_advisor_ticks_total",
		"Self-tuning policy loop ticks (one Recalibrate evaluation per engine each).")
	s.advisorApplies = m.Counter("colarm_server_advisor_applies_total",
		"Index-advisor recommendation batches applied (by the policy loop or POST .../advisor/apply).")
	if cfg.AdvisorInterval > 0 {
		s.advisorStop = make(chan struct{})
		s.advisorDone = make(chan struct{})
		go s.advisorLoop()
	}
	return s
}

// Close stops the standing-query manager (terminating every
// subscription) and the advisor policy loop, releasing the server's
// background resources. The HTTP handler must not be used after Close.
func (s *Server) Close() {
	if s.advisorStop != nil {
		close(s.advisorStop)
		<-s.advisorDone
		s.advisorStop = nil
	}
	s.standing.Close()
}

// mineRequest is the JSON body of /v1/mine and /v1/explain. Exactly one
// of QL (a COLARM-QL statement, also accepted as a raw text/plain body)
// or the structured fields describes the query; Dataset routes the
// structured form and is implied by QL's FROM clause.
type mineRequest struct {
	Dataset        string              `json:"dataset"`
	QL             string              `json:"ql,omitempty"`
	Range          map[string][]string `json:"range,omitempty"`
	ItemAttributes []string            `json:"itemAttributes,omitempty"`
	MinSupport     float64             `json:"minSupport,omitempty"`
	MinConfidence  float64             `json:"minConfidence,omitempty"`
	MaxConsequent  int                 `json:"maxConsequent,omitempty"`
	Plan           string              `json:"plan,omitempty"`
	// Timeout is a Go duration string ("250ms", "5s") lowering the
	// server's per-query deadline for this request.
	Timeout string `json:"timeout,omitempty"`
	// Trace attaches the per-operator execution trace to the response.
	// Traced queries bypass the result cache.
	Trace bool `json:"trace,omitempty"`
	// NoCache skips the result cache for this request (both lookup and
	// fill).
	NoCache bool `json:"noCache,omitempty"`
}

type ruleJSON struct {
	Antecedent      []string `json:"antecedent"`
	Consequent      []string `json:"consequent"`
	Support         float64  `json:"support"`
	Confidence      float64  `json:"confidence"`
	Lift            float64  `json:"lift"`
	Cosine          float64  `json:"cosine"`
	Kulczynski      float64  `json:"kulczynski"`
	SupportCount    int      `json:"supportCount"`
	AntecedentCount int      `json:"antecedentCount"`
	SubsetSize      int      `json:"subsetSize"`
}

type statsJSON struct {
	Plan            string `json:"plan"`
	SubsetSize      int    `json:"subsetSize"`
	MinSupportCount int    `json:"minSupportCount"`
	RNodesVisited   int    `json:"rNodesVisited"`
	REntriesChecked int    `json:"rEntriesChecked"`
	Candidates      int    `json:"candidates"`
	Contained       int    `json:"contained"`
	PartialOverlap  int    `json:"partialOverlap"`
	ItemFiltered    int    `json:"itemFiltered"`
	SupportChecks   int    `json:"supportChecks"`
	Eliminated      int    `json:"eliminated"`
	Qualified       int    `json:"qualified"`
	OracleCalls     int    `json:"oracleCalls"`
	OracleMisses    int    `json:"oracleMisses"`
	RulesEmitted    int    `json:"rulesEmitted"`
	DurationNanos   int64  `json:"durationNanos"`
}

type estimateJSON struct {
	Plan       string  `json:"plan"`
	Cost       float64 `json:"cost"`
	Candidates float64 `json:"candidates"`
	Qualified  float64 `json:"qualified"`
}

type mineResponse struct {
	Dataset string `json:"dataset"`
	// Generation and Version locate the answer on the dataset's
	// (registry generation, delta version-clock) timeline, correlating
	// it with ingest responses and standing-query events.
	Generation uint64         `json:"generation"`
	Version    uint64         `json:"version"`
	Cached     bool           `json:"cached"`
	Rules      []ruleJSON     `json:"rules"`
	Stats      statsJSON      `json:"stats"`
	Estimates  []estimateJSON `json:"estimates,omitempty"`
	Trace      string         `json:"trace,omitempty"`
}

type explainResponse struct {
	Dataset    string         `json:"dataset"`
	Generation uint64         `json:"generation"`
	Version    uint64         `json:"version"`
	Estimates  []estimateJSON `json:"estimates"`
}

// parseRequest decodes the request body into the engine-independent
// parts of a mine request: JSON bodies directly, raw COLARM-QL bodies
// (text/plain, or any body not starting with '{') into the QL field.
func parseRequest(r *http.Request) (*mineRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	trimmed := strings.TrimSpace(string(body))
	if trimmed == "" {
		return nil, fmt.Errorf("empty request body")
	}
	if strings.HasPrefix(trimmed, "{") {
		var req mineRequest
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("decoding JSON body: %w", err)
		}
		return &req, nil
	}
	// A raw COLARM-QL statement.
	return &mineRequest{QL: trimmed}, nil
}

// resolve turns a parsed request into the engine, its generation and
// the query to run. QL requests route by their FROM clause.
func (s *Server) resolve(req *mineRequest) (*colarm.Engine, uint64, colarm.Query, error) {
	var q colarm.Query
	name := req.Dataset
	if req.QL != "" {
		st, err := colarmql.Parse(req.QL)
		if err != nil {
			return nil, 0, q, badRequestError{err}
		}
		if name != "" && !strings.EqualFold(name, st.Dataset) {
			return nil, 0, q, badRequestError{fmt.Errorf("dataset field %q disagrees with FROM clause %q", name, st.Dataset)}
		}
		name = st.Dataset
	}
	eng, gen, err := s.reg.Get(name)
	if err != nil {
		return nil, 0, q, notFoundError{err}
	}
	if req.QL != "" {
		q, err = eng.ParseQuery(req.QL)
		if err != nil {
			return nil, 0, q, err
		}
	} else {
		plan, err := colarm.ParsePlan(req.Plan)
		if err != nil {
			return nil, 0, q, err
		}
		q = colarm.Query{
			Range:          req.Range,
			ItemAttributes: req.ItemAttributes,
			MinSupport:     req.MinSupport,
			MinConfidence:  req.MinConfidence,
			MaxConsequent:  req.MaxConsequent,
			Plan:           plan,
		}
	}
	q.Trace = req.Trace
	if err := q.Validate(); err != nil {
		return nil, 0, q, err
	}
	return eng, gen, q, nil
}

// requestContext derives the query's execution context: the server's
// QueryTimeout, tightened (never loosened) by the request's own
// timeout field.
func (s *Server) requestContext(ctx context.Context, req *mineRequest) (context.Context, context.CancelFunc, error) {
	limit := s.cfg.QueryTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil {
			return nil, nil, badRequestError{fmt.Errorf("bad timeout %q: %w", req.Timeout, err)}
		}
		if d > 0 && (limit <= 0 || d < limit) {
			limit = d
		}
	}
	if limit > 0 {
		ctx, cancel := context.WithTimeout(ctx, limit)
		return ctx, cancel, nil
	}
	return ctx, func() {}, nil
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	s.requests["mine"].Inc()
	req, err := parseRequest(r)
	if err != nil {
		s.fail(w, "mine", badRequestError{err})
		return
	}
	eng, gen, q, err := s.resolve(req)
	if err != nil {
		s.fail(w, "mine", err)
		return
	}
	name := eng.Dataset().Name()
	ver := eng.Version()

	cacheable := s.cache != nil && !q.Trace && !req.NoCache
	// The key carries generation AND delta version: an ingest bumps the
	// version, so post-ingest queries can never be served a stale
	// pre-ingest cached result (rules are a pure function of the
	// version clock).
	key := fmt.Sprintf("%s@g%d.v%d|%s", name, gen, ver, q.Canonical())
	if cacheable {
		if res := s.cache.get(key); res != nil {
			s.writeJSON(w, http.StatusOK, mineResponse{
				Dataset:    name,
				Generation: gen,
				Version:    ver,
				Cached:     true,
				Rules:      rulesJSON(res.Rules),
				Stats:      toStatsJSON(res.Stats),
				Estimates:  estimatesJSON(res.Estimates),
			})
			return
		}
	} else if s.cache != nil {
		s.uncached.Inc()
	}

	ctx, cancel, err := s.requestContext(r.Context(), req)
	if err != nil {
		s.fail(w, "mine", err)
		return
	}
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		s.fail(w, "mine", err)
		return
	}
	res, err := eng.MineContext(ctx, q)
	s.adm.release()
	if err != nil {
		s.fail(w, "mine", err)
		return
	}
	if cacheable && eng.Version() == ver {
		// Skip the fill when an ingest landed mid-mine: the result may
		// reflect the newer version and must not be pinned to this key.
		s.cache.put(key, res)
	}
	resp := mineResponse{
		Dataset:    name,
		Generation: gen,
		Version:    eng.Version(),
		Rules:      rulesJSON(res.Rules),
		Stats:      toStatsJSON(res.Stats),
		Estimates:  estimatesJSON(res.Estimates),
	}
	if res.Trace != nil {
		resp.Trace = res.Trace.Tree()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.requests["explain"].Inc()
	req, err := parseRequest(r)
	if err != nil {
		s.fail(w, "explain", badRequestError{err})
		return
	}
	eng, gen, q, err := s.resolve(req)
	if err != nil {
		s.fail(w, "explain", err)
		return
	}
	ctx, cancel, err := s.requestContext(r.Context(), req)
	if err != nil {
		s.fail(w, "explain", err)
		return
	}
	defer cancel()
	ests, err := eng.ExplainContext(ctx, q)
	if err != nil {
		s.fail(w, "explain", err)
		return
	}
	s.writeJSON(w, http.StatusOK, explainResponse{
		Dataset:    eng.Dataset().Name(),
		Generation: gen,
		Version:    eng.Version(),
		Estimates:  estimatesJSON(ests),
	})
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	s.requests["datasets"].Inc()
	s.writeJSON(w, http.StatusOK, struct {
		Datasets []DatasetInfo `json:"datasets"`
	}{s.reg.List()})
}

// datasetDetail is the GET /v1/datasets/{name} view: the listing entry
// plus the delta version clock, the full staleness report and each
// attribute's value domain (the vocabulary ingest inserts must use).
type datasetDetail struct {
	DatasetInfo
	Version       uint64              `json:"version"`
	Staleness     stalenessJSON       `json:"staleness"`
	Domains       map[string][]string `json:"domains"`
	Subscriptions int                 `json:"subscriptions"`
	// Advisor summarizes the self-tuning optimizer: the live-calibrated
	// unit costs, the drift score and the last recalibration time (the
	// full state lives at /v1/datasets/{name}/advisor).
	Advisor advisorSummaryJSON `json:"advisor"`
}

func (s *Server) handleDatasetDetail(w http.ResponseWriter, r *http.Request) {
	s.requests["datasets"].Inc()
	name := r.PathValue("name")
	eng, gen, err := s.reg.Get(name)
	if err != nil {
		s.fail(w, "datasets", notFoundError{err})
		return
	}
	ds := eng.Dataset()
	st := eng.Staleness()
	detail := datasetDetail{
		DatasetInfo: DatasetInfo{
			Name:               name,
			Records:            ds.NumRecords(),
			Attributes:         ds.Attributes(),
			Partitions:         eng.NumPartitions(),
			Generation:         gen,
			BufferedRows:       st.BufferedRows,
			Tombstones:         st.Tombstones,
			RebuildRecommended: st.RebuildRecommended,
		},
		Version:   st.Version,
		Staleness: toStalenessJSON(st),
		Domains:   make(map[string][]string, len(ds.Attributes())),
	}
	for _, ss := range st.Shards {
		detail.Shards = append(detail.Shards, ShardInfo{
			Shard:        ss.Shard,
			Records:      ss.Records,
			BufferedRows: ss.BufferedRows,
			Tombstones:   ss.Tombstones,
			Version:      ss.Version,
		})
	}
	for _, a := range ds.Attributes() {
		vals, _ := ds.Values(a)
		detail.Domains[a] = vals
	}
	for _, sub := range s.standing.List() {
		if sub.Dataset() == name {
			detail.Subscriptions++
		}
	}
	detail.Advisor = toAdvisorSummaryJSON(eng)
	s.writeJSON(w, http.StatusOK, detail)
}

// ingestRequest is the JSON body of /v1/ingest. Each insert maps every
// attribute name to a value label from the dataset's frozen vocabulary;
// deletes name record ids (base records first, then inserts in arrival
// order). Rebuild selects the refresh policy for this request: "auto"
// (default) rebuilds in the background when the cost model's break-even
// point is reached, "force" always rebuilds, "never" only buffers.
type ingestRequest struct {
	Dataset string              `json:"dataset"`
	Inserts []map[string]string `json:"inserts,omitempty"`
	Deletes []int               `json:"deletes,omitempty"`
	Rebuild string              `json:"rebuild,omitempty"`
}

type stalenessJSON struct {
	BufferedRows       int    `json:"bufferedRows"`
	Tombstones         int    `json:"tombstones"`
	Version            uint64 `json:"version"`
	OverheadNanos      int64  `json:"overheadNanos"`
	RebuildCostNanos   int64  `json:"rebuildCostNanos"`
	RebuildRecommended bool   `json:"rebuildRecommended"`
	// Shards breaks the drift down per shard on a sharded engine;
	// absent on monolithic ones.
	Shards []shardStalenessJSON `json:"shards,omitempty"`
}

type shardStalenessJSON struct {
	Shard        int    `json:"shard"`
	Records      int    `json:"records"`
	BufferedRows int    `json:"bufferedRows"`
	Tombstones   int    `json:"tombstones"`
	Version      uint64 `json:"version"`
}

type ingestResponse struct {
	Dataset    string        `json:"dataset"`
	Inserted   int           `json:"inserted"`
	Deleted    int           `json:"deleted"`
	Generation uint64        `json:"generation"`
	Version    uint64        `json:"version"`
	Staleness  stalenessJSON `json:"staleness"`
	// RebuildStarted reports that this request kicked off a background
	// rebuild; the dataset's generation bumps when it swaps in.
	RebuildStarted bool `json:"rebuildStarted"`
}

func toStalenessJSON(st colarm.Staleness) stalenessJSON {
	out := stalenessJSON{
		BufferedRows:       st.BufferedRows,
		Tombstones:         st.Tombstones,
		Version:            st.Version,
		OverheadNanos:      st.Overhead.Nanoseconds(),
		RebuildCostNanos:   st.RebuildCost.Nanoseconds(),
		RebuildRecommended: st.RebuildRecommended,
	}
	for _, ss := range st.Shards {
		out.Shards = append(out.Shards, shardStalenessJSON{
			Shard:        ss.Shard,
			Records:      ss.Records,
			BufferedRows: ss.BufferedRows,
			Tombstones:   ss.Tombstones,
			Version:      ss.Version,
		})
	}
	return out
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.requests["ingest"].Inc()
	var req ingestRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		s.fail(w, "ingest", badRequestError{fmt.Errorf("reading body: %w", err)})
		return
	}
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, "ingest", badRequestError{fmt.Errorf("decoding JSON body: %w", err)})
		return
	}
	switch req.Rebuild {
	case "", "auto", "force", "never":
	default:
		s.fail(w, "ingest", badRequestError{fmt.Errorf("bad rebuild policy %q (want auto, force or never)", req.Rebuild)})
		return
	}

	s.ing.Lock()
	eng, gen, err := s.reg.Get(req.Dataset)
	if err != nil {
		s.ing.Unlock()
		s.fail(w, "ingest", notFoundError{err})
		return
	}
	name := eng.Dataset().Name()
	if s.ing.rebuilding[name] {
		s.ing.Unlock()
		s.fail(w, "ingest", conflictError{
			err:     fmt.Errorf("dataset %q is rebuilding; retry when the generation bumps", name),
			dataset: name,
		})
		return
	}
	st, err := eng.IngestContext(r.Context(), req.Inserts, req.Deletes)
	if err != nil {
		s.ing.Unlock()
		s.fail(w, "ingest", err)
		return
	}
	started := false
	if req.Rebuild == "force" || (req.Rebuild != "never" && st.RebuildRecommended) {
		s.ing.rebuilding[name] = true
		started = true
		s.rebuildsStarted.Inc()
		go s.rebuild(name, eng)
	}
	s.ing.Unlock()

	s.writeJSON(w, http.StatusOK, ingestResponse{
		Dataset:        name,
		Inserted:       len(req.Inserts),
		Deleted:        len(req.Deletes),
		Generation:     gen,
		Version:        st.Version,
		Staleness:      toStalenessJSON(st),
		RebuildStarted: started,
	})
}

// rebuild runs one background index rebuild and swaps the fresh engine
// into the registry. The old engine serves queries (and stays reachable
// for in-flight ones) for the whole duration; the registry swap bumps
// the generation, retiring every cached result keyed under the old one.
// Failures leave the old engine in place.
func (s *Server) rebuild(name string, eng *colarm.Engine) {
	fresh, err := eng.Rebuild(context.Background())
	s.ing.Lock()
	if err != nil {
		s.rebuildsFailed.Inc()
	} else {
		s.reg.Register(fresh)
	}
	delete(s.ing.rebuilding, name)
	s.ing.Unlock()
	if err == nil {
		// Re-hook standing queries onto the fresh engine: trackers
		// re-baseline and emit an epoch event re-anchoring the version
		// clock, so event streams survive the swap.
		s.standing.Attach(name, fresh)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests["metrics"].Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
	if s.cfg.EngineMetrics != nil {
		_ = s.cfg.EngineMetrics.WritePrometheus(w)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func rulesJSON(rs []colarm.Rule) []ruleJSON {
	out := make([]ruleJSON, len(rs))
	for i, r := range rs {
		out[i] = ruleJSON{
			Antecedent:      r.Antecedent,
			Consequent:      r.Consequent,
			Support:         r.Support,
			Confidence:      r.Confidence,
			Lift:            r.Lift,
			Cosine:          r.Cosine,
			Kulczynski:      r.Kulczynski,
			SupportCount:    r.SupportCount,
			AntecedentCount: r.AntecedentCount,
			SubsetSize:      r.SubsetSize,
		}
	}
	return out
}

func toStatsJSON(st colarm.Stats) statsJSON {
	return statsJSON{
		Plan:            st.Plan.String(),
		SubsetSize:      st.SubsetSize,
		MinSupportCount: st.MinSupportCount,
		RNodesVisited:   st.RNodesVisited,
		REntriesChecked: st.REntriesChecked,
		Candidates:      st.Candidates,
		Contained:       st.Contained,
		PartialOverlap:  st.PartialOverlap,
		ItemFiltered:    st.ItemFiltered,
		SupportChecks:   st.SupportChecks,
		Eliminated:      st.Eliminated,
		Qualified:       st.Qualified,
		OracleCalls:     st.OracleCalls,
		OracleMisses:    st.OracleMisses,
		RulesEmitted:    st.RulesEmitted,
		DurationNanos:   st.DurationNanos,
	}
}

func estimatesJSON(ests []colarm.PlanEstimate) []estimateJSON {
	if len(ests) == 0 {
		return nil
	}
	out := make([]estimateJSON, len(ests))
	for i, e := range ests {
		out[i] = estimateJSON{
			Plan:       e.Plan.String(),
			Cost:       e.Cost,
			Candidates: e.Candidates,
			Qualified:  e.Qualified,
		}
	}
	return out
}
