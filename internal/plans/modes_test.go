package plans

import (
	"testing"

	"colarm/internal/itemset"
)

func TestCheckModeStrings(t *testing.T) {
	cases := []struct {
		mode CheckMode
		want string
	}{{AutoCheck, "auto"}, {ScanCheck, "scan"}, {BitmapCheck, "bitmap"}}
	for _, c := range cases {
		if c.mode.String() != c.want {
			t.Errorf("%v.String() = %q", c.mode, c.mode.String())
		}
		got, err := ParseCheckMode(c.want)
		if err != nil || got != c.mode {
			t.Errorf("ParseCheckMode(%q) = %v, %v", c.want, got, err)
		}
	}
	if m, err := ParseCheckMode(""); err != nil || m != AutoCheck {
		t.Error("empty mode must parse to auto")
	}
	if _, err := ParseCheckMode("bogus"); err == nil {
		t.Error("bogus mode must error")
	}
	if CheckMode(99).String() == "" {
		t.Error("unknown mode must still render")
	}
}

// TestCheckModesAgree runs the same query under all three modes and
// asserts identical answers — the modes are pure implementation
// variants of the record-level check.
func TestCheckModesAgree(t *testing.T) {
	idx := salaryIndex(t, 0.18)
	reg, err := idx.RegionFromSelections(map[string][]string{"Location": {"Boston", "SFO"}})
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Region: reg, MinSupport: 0.4, MinConfidence: 0.7}
	var ref *Result
	for _, mode := range []CheckMode{AutoCheck, ScanCheck, BitmapCheck} {
		ex := NewExecutor(idx)
		ex.Mode = mode
		for _, k := range Kinds() {
			res, err := ex.Run(k, q)
			if err != nil {
				t.Fatalf("%v/%v: %v", mode, k, err)
			}
			if k != SSEUV {
				continue
			}
			if ref == nil {
				ref = res
				continue
			}
			if len(res.Rules) != len(ref.Rules) {
				t.Fatalf("%v: %d rules, want %d", mode, len(res.Rules), len(ref.Rules))
			}
			for i := range res.Rules {
				if res.Rules[i].Key() != ref.Rules[i].Key() ||
					res.Rules[i].SupportCount != ref.Rules[i].SupportCount {
					t.Fatalf("%v rule %d differs", mode, i)
				}
			}
		}
	}
}

// TestStatsCounters sanity-checks the operator instrumentation the cost
// model is calibrated against.
func TestStatsCounters(t *testing.T) {
	idx := salaryIndex(t, 0.18)
	ex := NewExecutor(idx)
	ex.Mode = ScanCheck
	reg := itemset.RegionFor(idx.Space)
	q := &Query{Region: reg, MinSupport: 0.3, MinConfidence: 0.5}
	res, err := ex.Run(SEV, q)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SubsetSize != 11 {
		t.Errorf("SubsetSize = %d", st.SubsetSize)
	}
	if st.Candidates != st.Contained+st.PartialOverlap {
		t.Errorf("candidates %d != contained %d + partial %d", st.Candidates, st.Contained, st.PartialOverlap)
	}
	if st.RNodesVisited == 0 || st.REntriesChecked == 0 {
		t.Error("search counters empty")
	}
	if st.Qualified > st.Candidates {
		t.Error("qualified exceeds candidates")
	}
	if st.RulesEmitted != len(res.Rules) {
		t.Errorf("RulesEmitted %d != %d", st.RulesEmitted, len(res.Rules))
	}
	if st.Duration <= 0 {
		t.Error("duration not recorded")
	}
	// Full-domain region: every candidate contained.
	if st.PartialOverlap != 0 {
		t.Errorf("full-domain query saw %d partial MIPs", st.PartialOverlap)
	}
	// ARM stats.
	resARM, err := ex.Run(ARM, q)
	if err != nil {
		t.Fatal(err)
	}
	if resARM.Stats.ARMRecordsScanned != 11 {
		t.Errorf("ARM scanned %d records", resARM.Stats.ARMRecordsScanned)
	}
	if resARM.Stats.ARMFrequentItemsets == 0 {
		t.Error("ARM mined nothing")
	}
}

func TestUnknownKindError(t *testing.T) {
	idx := salaryIndex(t, 0.18)
	ex := NewExecutor(idx)
	reg := itemset.RegionFor(idx.Space)
	q := &Query{Region: reg, MinSupport: 0.3, MinConfidence: 0.5}
	if _, err := ex.Run(Kind(42), q); err == nil {
		t.Error("unknown kind must error")
	}
}
