package colarm

import (
	"context"
	"errors"
	"testing"
	"time"

	"colarm/internal/datagen"
)

// quarterChessEngine builds the engine cancellation tests race against:
// quarter-scale chess (dense, closed-itemset-heavy) at a primary
// support high enough to leave real mining work per query.
func quarterChessEngine(t testing.TB) *Engine {
	t.Helper()
	d, err := datagen.Generate(datagen.Scaled(datagen.ChessConfig(1), 0.25))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(&Dataset{rel: d}, Options{PrimarySupport: 0.70})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestPreCancelledContext checks every plan, serial and parallel,
// returns context.Canceled without mining when its context is already
// dead on entry.
func TestPreCancelledContext(t *testing.T) {
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		eng, err := Open(ds, Options{PrimarySupport: 0.18, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Plan{Auto, SEV, SVS, SSEV, SSVS, SSEUV, ARM} {
			q := Query{
				Range:         map[string][]string{"Location": {"Seattle"}},
				MinSupport:    0.5,
				MinConfidence: 0.5,
				Plan:          p,
			}
			res, err := eng.MineContext(ctx, q)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d plan=%v: err = %v, want context.Canceled", workers, p, err)
			}
			if res != nil {
				t.Errorf("workers=%d plan=%v: got a result from a cancelled query", workers, p)
			}
		}
		if _, err := eng.MineQLContext(ctx, `REPORT LOCALIZED ASSOCIATION RULES FROM salary
			WHERE RANGE Location = (Seattle)
			HAVING minsupport = 50% AND minconfidence = 50%;`); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d MineQLContext: err = %v, want context.Canceled", workers, err)
		}
		if _, err := eng.ExplainContext(ctx, Query{
			Range:         map[string][]string{"Location": {"Seattle"}},
			MinSupport:    0.5,
			MinConfidence: 0.5,
		}); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d ExplainContext: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestDeadlineMidQuery runs a deliberately heavy query under a 1ms
// deadline: it must abort mid-execution with context.DeadlineExceeded
// instead of running to completion.
func TestDeadlineMidQuery(t *testing.T) {
	eng := quarterChessEngine(t)
	q := Query{
		Range:         map[string][]string{"f00": {"f001"}},
		MinConfidence: 0.5,
	}
	// Thresholds picked so each plan's baseline run is comfortably
	// slower than the deadline (the dense subset's rule population
	// explodes as minsupport drops; ARM explodes fastest).
	for p, minSupp := range map[Plan]float64{ARM: 0.85, SEV: 0.80} {
		q.Plan, q.MinSupport = p, minSupp
		// Baseline: the query is genuinely slower than the deadline.
		start := time.Now()
		if _, err := eng.Mine(q); err != nil {
			t.Fatalf("%v baseline: %v", p, err)
		}
		baseline := time.Since(start)
		if baseline < 5*time.Millisecond {
			t.Skipf("%v baseline %v too fast to outrun a 1ms deadline", p, baseline)
		}

		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		start = time.Now()
		res, err := eng.MineContext(ctx, q)
		aborted := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v: err = %v, want context.DeadlineExceeded", p, err)
		}
		if res != nil {
			t.Fatalf("%v: got a result despite the deadline", p)
		}
		if aborted >= baseline {
			t.Errorf("%v: aborted run took %v, no faster than the %v baseline", p, aborted, baseline)
		}
	}
}

// TestCancelMidQuery fires the cancellation while the query is running
// (serial and parallel) and checks it surfaces promptly as
// context.Canceled.
func TestCancelMidQuery(t *testing.T) {
	d, err := datagen.Generate(datagen.Scaled(datagen.ChessConfig(1), 0.25))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Range:         map[string][]string{"f00": {"f001"}},
		MinSupport:    0.85,
		MinConfidence: 0.5,
		Plan:          ARM,
	}
	for _, workers := range []int{1, 4} {
		eng, err := Open(&Dataset{rel: d}, Options{PrimarySupport: 0.70, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(500 * time.Microsecond)
			cancel()
		}()
		res, err := eng.MineContext(ctx, q)
		if err == nil {
			// The query finished before the cancel landed; nothing to
			// assert beyond a sane result.
			if res == nil {
				t.Errorf("workers=%d: nil result without error", workers)
			}
			cancel()
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Errorf("workers=%d: partial result leaked from a cancelled query", workers)
		}
	}
}

// TestBackgroundWrappersStillWork pins the compatibility contract: the
// context-free methods are Background wrappers and keep working.
func TestBackgroundWrappersStillWork(t *testing.T) {
	eng := salaryEngine(t)
	q := Query{
		Range:         map[string][]string{"Location": {"Seattle"}},
		MinSupport:    0.5,
		MinConfidence: 0.5,
	}
	res, err := eng.Mine(q)
	if err != nil || len(res.Rules) == 0 {
		t.Fatalf("Mine: %v (%d rules)", err, len(res.Rules))
	}
	ctxRes, err := eng.MineContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctxRes.Rules) != len(res.Rules) {
		t.Errorf("MineContext found %d rules, Mine found %d", len(ctxRes.Rules), len(res.Rules))
	}
}
