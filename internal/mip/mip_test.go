package mip

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colarm/internal/itemset"
	"colarm/internal/relation"
	"colarm/internal/rtree"
)

func salary(t testing.TB) *relation.Dataset {
	t.Helper()
	b := relation.NewBuilder("salary", "Company", "Title", "Location", "Gender", "Age", "Salary")
	rows := [][]string{
		{"IBM", "QA Lead", "Boston", "M", "30-40", "60K-90K"},
		{"IBM", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"IBM", "Engg Mgr", "SFO", "M", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "SFO", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "M", "20-30", "90K-120K"},
		{"Google", "Tech Arch", "Boston", "M", "40-50", "120K-150K"},
		{"Microsoft", "Engg Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Microsoft", "Sw Engg", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Engg", "Seattle", "F", "20-30", "30K-60K"},
	}
	for _, r := range rows {
		if err := b.AddRecord(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuildValidation(t *testing.T) {
	d := salary(t)
	if _, err := Build(d, Options{PrimarySupport: 0}); err == nil {
		t.Error("primary support 0 must error")
	}
	if _, err := Build(d, Options{PrimarySupport: 1.5}); err == nil {
		t.Error("primary support > 1 must error")
	}
}

func TestBuildSalaryIndex(t *testing.T) {
	d := salary(t)
	idx, err := Build(d, Options{PrimarySupport: 0.18, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
	if idx.NumMIPs() == 0 {
		t.Fatal("no MIPs")
	}
	if idx.PrimaryCount != 2 {
		t.Errorf("primary count = %d, want 2 (0.18 of 11)", idx.PrimaryCount)
	}
	// Every constrained dimension of every box must be a point at the
	// item's value.
	for id := 0; id < idx.NumMIPs(); id++ {
		c := idx.ITTree.Set(id)
		box := idx.Boxes[id]
		for _, it := range c.Items {
			a := idx.Space.AttrOf(it)
			v := int32(idx.Space.ValueOf(it))
			if box.Lo[a] != v || box.Hi[a] != v {
				t.Errorf("CFI %d dim %d not a point at %d: [%d,%d]", id, a, v, box.Lo[a], box.Hi[a])
			}
		}
	}
	// Statistics were produced.
	if len(idx.LevelStats) != idx.RTree.Height() {
		t.Errorf("level stats %d != height %d", len(idx.LevelStats), idx.RTree.Height())
	}
	if idx.EntryStats.Count != idx.NumMIPs() {
		t.Errorf("entry stats count %d != MIPs %d", idx.EntryStats.Count, idx.NumMIPs())
	}
}

func TestBoxesAreTight(t *testing.T) {
	d := salary(t)
	idx, err := Build(d, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	// For each CFI and each unconstrained dimension, the box edges must
	// touch actual supporting records (tightness).
	n := d.NumAttrs()
	for id := 0; id < idx.NumMIPs(); id++ {
		c := idx.ITTree.Set(id)
		box := idx.Boxes[id]
		constrained := make([]bool, n)
		for _, it := range c.Items {
			constrained[idx.Space.AttrOf(it)] = true
		}
		for a := 0; a < n; a++ {
			if constrained[a] {
				continue
			}
			loTouched, hiTouched := false, false
			c.Tids.ForEach(func(r int) bool {
				v := int32(d.Value(r, a))
				if v == box.Lo[a] {
					loTouched = true
				}
				if v == box.Hi[a] {
					hiTouched = true
				}
				return !(loTouched && hiTouched)
			})
			if !loTouched || !hiTouched {
				t.Errorf("CFI %d dim %d box [%d,%d] edge untouched", id, a, box.Lo[a], box.Hi[a])
			}
		}
	}
}

func TestSubsetBitmapMatchesScan(t *testing.T) {
	d := salary(t)
	idx, err := Build(d, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	// Female employees in Seattle — the paper's running example: the
	// last four records.
	reg, err := idx.RegionFromSelections(map[string][]string{
		"Location": {"Seattle"},
		"Gender":   {"F"},
	})
	if err != nil {
		t.Fatal(err)
	}
	bm := idx.SubsetBitmap(reg)
	if got := bm.IDs(); len(got) != 4 || got[0] != 7 || got[3] != 10 {
		t.Fatalf("Seattle+F bitmap = %v, want records 7-10", got)
	}
	// Cross-check against a record scan.
	for r := 0; r < d.NumRecords(); r++ {
		want := reg.ContainsPoint(d.Record(r))
		if bm.Contains(r) != want {
			t.Errorf("record %d membership mismatch", r)
		}
	}
}

func TestRegionFromSelectionsErrors(t *testing.T) {
	d := salary(t)
	idx, err := Build(d, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.RegionFromSelections(map[string][]string{"Nope": {"x"}}); err == nil {
		t.Error("unknown attribute must error")
	}
	if _, err := idx.RegionFromSelections(map[string][]string{"Gender": {"X"}}); err == nil {
		t.Error("unknown value must error")
	}
}

func TestRTreeSearchFindsOverlappingMIPs(t *testing.T) {
	d := salary(t)
	idx, err := Build(d, Options{PrimarySupport: 0.18, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := idx.RegionFromSelections(map[string][]string{
		"Location": {"Seattle"}, "Gender": {"F"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// R-tree search must agree with linear classification over all MIPs.
	got := map[int32]itemset.Rel{}
	idx.RTree.Search(reg, func(e rtree.Entry, rel itemset.Rel) bool {
		got[e.ID] = rel
		return true
	})
	for id := 0; id < idx.NumMIPs(); id++ {
		want := reg.Relation(idx.Boxes[id])
		if want == itemset.Disjoint {
			if _, ok := got[int32(id)]; ok {
				t.Errorf("disjoint MIP %d emitted", id)
			}
			continue
		}
		if got[int32(id)] != want {
			t.Errorf("MIP %d rel = %v, want %v", id, got[int32(id)], want)
		}
	}
}

// Property: on random datasets the full index validates, and the subset
// bitmap always equals a brute-force record scan.
func TestQuickIndexConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nAttrs := 2 + r.Intn(3)
		names := make([]string, nAttrs)
		cards := make([]int, nAttrs)
		for i := range names {
			names[i] = string(rune('A' + i))
			cards[i] = 2 + r.Intn(4)
		}
		b := relation.NewBuilder("rand", names...)
		for a := 0; a < nAttrs; a++ {
			for v := 0; v < cards[a]; v++ {
				b.AddValue(a, string(rune('a'+a))+string(rune('0'+v)))
			}
		}
		m := 8 + r.Intn(30)
		for i := 0; i < m; i++ {
			row := make([]int, nAttrs)
			for a := range row {
				row[a] = r.Intn(cards[a])
			}
			if err := b.AddRecordIdx(row...); err != nil {
				return false
			}
		}
		d := b.Build()
		packing := rtree.STRPacking
		if r.Intn(2) == 0 {
			packing = rtree.MortonPacking
		}
		idx, err := Build(d, Options{
			PrimarySupport: 0.05 + r.Float64()*0.4,
			Fanout:         2 + r.Intn(8),
			Packing:        packing,
		})
		if err != nil {
			return false
		}
		if err := idx.Validate(); err != nil {
			return false
		}
		// Random region; bitmap equals scan.
		reg := itemset.RegionFor(idx.Space)
		for a := 0; a < nAttrs; a++ {
			if r.Intn(2) == 0 {
				continue
			}
			var vals []int
			for v := 0; v < cards[a]; v++ {
				if r.Intn(2) == 0 {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				vals = []int{r.Intn(cards[a])}
			}
			if err := reg.Restrict(a, vals); err != nil {
				return false
			}
		}
		bm := idx.SubsetBitmap(reg)
		for rec := 0; rec < m; rec++ {
			if bm.Contains(rec) != reg.ContainsPoint(d.Record(rec)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
