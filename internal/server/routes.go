package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// RouteInfo describes one registered API route. The table below is the
// single source of truth for the mux: Handler registers exactly these
// patterns, the OpenAPI coverage test asserts every one of them is
// documented in api/openapi.yaml, and wrong-method fallbacks are
// derived per path.
type RouteInfo struct {
	// Method is the HTTP method; Pattern the Go 1.22 mux path pattern
	// ("/v1/datasets/{name}").
	Method  string
	Pattern string
	// Endpoint is the metrics label the route's requests count under.
	Endpoint string
}

// apiRoute pairs a RouteInfo with its handler.
type apiRoute struct {
	RouteInfo
	handler http.HandlerFunc
}

// apiRoutes is the server's full /v1 + /metrics surface.
func (s *Server) apiRoutes() []apiRoute {
	rt := func(method, pattern, endpoint string, h http.HandlerFunc) apiRoute {
		return apiRoute{RouteInfo{Method: method, Pattern: pattern, Endpoint: endpoint}, h}
	}
	return []apiRoute{
		rt("POST", "/v1/mine", "mine", s.handleMine),
		rt("POST", "/v1/explain", "explain", s.handleExplain),
		rt("POST", "/v1/ingest", "ingest", s.handleIngest),
		rt("GET", "/v1/datasets", "datasets", s.handleDatasets),
		rt("GET", "/v1/datasets/{name}", "datasets", s.handleDatasetDetail),
		rt("GET", "/v1/datasets/{name}/advisor", "advisor", s.handleAdvisor),
		rt("POST", "/v1/datasets/{name}/advisor/apply", "advisor", s.handleAdvisorApply),
		rt("POST", "/v1/subscriptions", "subscriptions", s.handleSubscribe),
		rt("GET", "/v1/subscriptions", "subscriptions", s.handleSubscriptions),
		rt("GET", "/v1/subscriptions/{id}", "subscriptions", s.handleSubscriptionGet),
		rt("DELETE", "/v1/subscriptions/{id}", "subscriptions", s.handleSubscriptionDelete),
		rt("GET", "/v1/subscriptions/{id}/events", "events", s.handleSubscriptionEvents),
		rt("GET", "/metrics", "metrics", s.handleMetrics),
	}
}

// Routes returns the registered API surface (method + pattern), sorted
// by pattern then method — the contract the OpenAPI document must
// cover.
func (s *Server) Routes() []RouteInfo {
	var out []RouteInfo
	for _, rt := range s.apiRoutes() {
		out = append(out, rt.RouteInfo)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// Handler returns the server's routing handler: every route from the
// table, a JSON 405 + Allow fallback for wrong methods on known paths,
// and the standard pprof handlers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	allow := make(map[string][]string)
	for _, rt := range s.apiRoutes() {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.handler)
		allow[rt.Pattern] = append(allow[rt.Pattern], rt.Method)
	}
	// Method-less fallbacks catch wrong-method requests on the API
	// routes with a JSON 405 + Allow instead of the mux's plain-text
	// default (the method patterns above are more specific and win for
	// the allowed methods).
	for pattern, methods := range allow {
		sort.Strings(methods)
		mux.HandleFunc(pattern, s.methodNotAllowed(strings.Join(methods, ", ")))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// methodNotAllowed answers wrong-method requests on an API route with a
// JSON 405 envelope and the route's Allow header.
func (s *Server) methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		msg := fmt.Sprintf("method %s not allowed on %s; use %s", r.Method, r.URL.Path, allow)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{
			Error: errorBody{
				Code:    CodeMethodNotAllowed,
				Message: msg,
				Details: map[string]any{"allow": allow},
			},
		})
	}
}
