package delta

import (
	"errors"
	"testing"
	"time"

	"colarm/internal/cost"
	"colarm/internal/mip"
	"colarm/internal/qerr"
	"colarm/internal/relation"
)

func testIndex(t *testing.T) *mip.Index {
	t.Helper()
	b := relation.NewBuilder("t", "A", "B")
	rows := [][]string{
		{"a0", "b0"}, {"a0", "b1"}, {"a1", "b0"}, {"a1", "b1"},
		{"a0", "b0"}, {"a0", "b0"}, {"a1", "b0"}, {"a0", "b1"},
	}
	for _, r := range rows {
		if err := b.AddRecord(r...); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := mip.Build(b.Build(), mip.Options{PrimarySupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestStoreViewMergesRows(t *testing.T) {
	idx := testIndex(t)
	s := NewStore(idx, 0.2, cost.DefaultUnits())
	if s.View() != nil {
		t.Fatal("empty store must serve a nil view (frozen-index path)")
	}
	if _, err := s.Ingest([][]int32{{0, 0}, {1, 1}}, []int{2}); err != nil {
		t.Fatal(err)
	}
	v := s.View()
	if v == nil {
		t.Fatal("non-empty store must serve a view")
	}
	baseN := idx.Dataset.NumRecords()
	if v.NumRecords != baseN+2 {
		t.Fatalf("view capacity %d, want %d", v.NumRecords, baseN+2)
	}
	if got := v.Live.Count(); got != baseN+2-1 {
		t.Fatalf("live count %d, want %d", got, baseN+1)
	}
	if !v.Skip(2) || v.Skip(0) || v.Skip(baseN) {
		t.Fatal("Skip does not reflect tombstones")
	}
	if v.Value(baseN, 0) != 0 || v.Value(baseN+1, 1) != 1 {
		t.Fatal("Value does not resolve buffered rows")
	}
	// Tombstoned record 2 ("a1","b0") must be cleared from item tidsets;
	// buffered rows must appear.
	sp := idx.Space
	if v.Tidsets[sp.ItemOf(0, 1)].Contains(2) {
		t.Fatal("tombstoned record still in merged tidset")
	}
	if !v.Tidsets[sp.ItemOf(0, 0)].Contains(baseN) {
		t.Fatal("buffered row missing from merged tidset")
	}
	// Same version → same cached view; new version → new view.
	if s.View() != v {
		t.Fatal("view not cached per version")
	}
	if _, err := s.Ingest(nil, []int{3}); err != nil {
		t.Fatal(err)
	}
	if s.View() == v {
		t.Fatal("view not invalidated on ingest")
	}
}

func TestStoreValidation(t *testing.T) {
	idx := testIndex(t)
	s := NewStore(idx, 0.2, cost.DefaultUnits())
	if _, err := s.Ingest([][]int32{{0}}, nil); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := s.Ingest([][]int32{{0, 9}}, nil); !errors.Is(err, qerr.ErrUnknownValue) {
		t.Fatalf("out-of-range value: got %v", err)
	}
	if _, err := s.Ingest(nil, []int{idx.Dataset.NumRecords()}); !errors.Is(err, qerr.ErrBadRecordID) {
		t.Fatalf("delete past id space: got %v", err)
	}
	if !s.Empty() {
		t.Fatal("rejected batches must leave the store empty")
	}
}

func TestRefreshPolicyBreakEven(t *testing.T) {
	idx := testIndex(t)
	s := NewStore(idx, 0.2, cost.DefaultUnits())
	s.SetRebuildCost(time.Microsecond)
	// Fresh store never recommends a rebuild, whatever the accumulator
	// would say.
	s.NoteQuery(0)
	if s.ShouldRebuild() {
		t.Fatal("fresh store recommends rebuild")
	}
	if _, err := s.Ingest([][]int32{{0, 0}}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64 && !s.ShouldRebuild(); i++ {
		s.NoteQuery(2)
	}
	st := s.Staleness()
	if !st.RebuildRecommended {
		t.Fatalf("overhead never reached the 1µs break-even: %+v", st)
	}
	if st.Overhead < st.RebuildCost {
		t.Fatalf("recommended rebuild with overhead %v < cost %v", st.Overhead, st.RebuildCost)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	idx := testIndex(t)
	s := NewStore(idx, 0.2, cost.DefaultUnits())
	if _, err := s.Ingest([][]int32{{0, 1}, {1, 0}}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(nil, []int{idx.Dataset.NumRecords()}); err != nil {
		t.Fatal(err)
	}
	rows, dels := s.Snapshot()
	r := NewStore(idx, 0.2, cost.DefaultUnits())
	if _, err := r.Ingest(rows, dels); err != nil {
		t.Fatal(err)
	}
	a, b := s.Staleness(), r.Staleness()
	if a.BufferedRows != b.BufferedRows || a.Tombstones != b.Tombstones {
		t.Fatalf("snapshot round trip drifted: %+v vs %+v", a, b)
	}
	md, err := r.MergedDataset()
	if err != nil {
		t.Fatal(err)
	}
	want := idx.Dataset.NumRecords() - 1 + 2 - 1
	if md.NumRecords() != want {
		t.Fatalf("merged dataset has %d records, want %d", md.NumRecords(), want)
	}
	// Dictionaries are preserved verbatim, so the item space is stable.
	for ai, attr := range idx.Dataset.Attrs {
		if got := md.Attrs[ai].Cardinality(); got != attr.Cardinality() {
			t.Fatalf("attribute %q cardinality %d, want %d", attr.Name, got, attr.Cardinality())
		}
	}
}
