// Package datagen generates the datasets of the experimental study.
//
// The paper evaluates on three UCI benchmarks — chess (3196 records, 76
// items), mushroom (8124 records, 120 items) and PUMSB (49046 records,
// 7117 items) — which are not redistributable inside this repository.
// The generators here produce synthetic datasets matched to the
// characteristics the paper's cost behaviour depends on: record count,
// attribute count and cardinalities, density (relational data is fully
// dense: one item per attribute per record), the shape of the
// closed-frequent-itemset count as the primary threshold drops (Figure
// 8), and the CFI length distribution (symmetric for chess and PUMSB,
// bi-modal for mushroom). Each dataset also carries injected
// subpopulation patterns so the Simpson's-paradox experiments (Figure 13
// and Section 5.3) have local structure to find.
//
// The generative model: each record draws a latent cluster; each
// attribute then copies the cluster's signature value with an
// attribute-specific alignment probability, or otherwise draws from a
// skewed background distribution. Overlapping alignment sets across
// attributes produce rich families of closed itemsets whose supports
// track the alignment products. Local patterns overwrite attribute
// values inside a chosen region (a value range of a partition attribute)
// with high probability and outside it with low probability, creating
// itemsets that are locally prominent yet globally near the primary
// threshold — precisely the "hidden in the global context" rules the
// paper mines.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"colarm/internal/relation"
)

// AttrSpec describes one generated attribute.
type AttrSpec struct {
	Name        string
	Cardinality int
	// Align is the probability a record copies its cluster's signature
	// value for this attribute (per cluster).
	Align []float64
}

// LocalPattern plants a subpopulation rule: inside the region (records
// whose RangeAttr takes a value in RangeValues), each (attr → value)
// assignment in Items is applied with probability InsideProb; outside,
// with probability OutsideProb.
type LocalPattern struct {
	RangeAttr   int
	RangeValues []int
	Items       map[int]int
	InsideProb  float64
	OutsideProb float64
}

// Config drives Generate.
type Config struct {
	Name     string
	Records  int
	Attrs    []AttrSpec
	Clusters []float64 // cluster probabilities, sum ~1
	// Skew shapes the background value distribution: value v is drawn
	// with weight 1/(v+1)^Skew (Zipf-like). 0 = uniform.
	Skew          float64
	LocalPatterns []LocalPattern
	Seed          int64
	// Prototypes, when positive, generates that many prototype rows
	// from the cluster model and then draws each record as a
	// (Zipf-skewed) copy of a prototype before applying local patterns. Low row
	// diversity with strong functional dependencies is what keeps the
	// closed-itemset count of datasets like mushroom moderate and its
	// growth curve gradual.
	Prototypes int
}

// Validate checks a configuration for structural errors.
func (c *Config) Validate() error {
	if c.Records <= 0 {
		return fmt.Errorf("datagen: %q: records %d <= 0", c.Name, c.Records)
	}
	if len(c.Attrs) == 0 {
		return fmt.Errorf("datagen: %q: no attributes", c.Name)
	}
	if len(c.Clusters) == 0 {
		return fmt.Errorf("datagen: %q: no clusters", c.Name)
	}
	for i, a := range c.Attrs {
		if a.Cardinality < 2 {
			return fmt.Errorf("datagen: %q: attribute %d cardinality %d < 2", c.Name, i, a.Cardinality)
		}
		if len(a.Align) != len(c.Clusters) {
			return fmt.Errorf("datagen: %q: attribute %d has %d alignments, %d clusters", c.Name, i, len(a.Align), len(c.Clusters))
		}
	}
	for i, lp := range c.LocalPatterns {
		if lp.RangeAttr < 0 || lp.RangeAttr >= len(c.Attrs) {
			return fmt.Errorf("datagen: %q: pattern %d range attribute out of range", c.Name, i)
		}
		for a, v := range lp.Items {
			if a < 0 || a >= len(c.Attrs) {
				return fmt.Errorf("datagen: %q: pattern %d item attribute %d out of range", c.Name, i, a)
			}
			if v < 0 || v >= c.Attrs[a].Cardinality {
				return fmt.Errorf("datagen: %q: pattern %d value %d out of range for attribute %d", c.Name, i, v, a)
			}
		}
	}
	return nil
}

// Generate builds the dataset for a configuration. Generation is
// deterministic for a given Config (including Seed).
func Generate(cfg Config) (*relation.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(cfg.Attrs)

	names := make([]string, n)
	for i, a := range cfg.Attrs {
		names[i] = a.Name
	}
	b := relation.NewBuilder(cfg.Name, names...)
	for ai, a := range cfg.Attrs {
		for v := 0; v < a.Cardinality; v++ {
			b.AddValue(ai, fmt.Sprintf("%s%d", attrPrefix(a.Name), v))
		}
	}

	// Cluster signatures: the dominant value per attribute per cluster.
	// Cluster 0 prefers value 0; later clusters shift so their signature
	// items differ where cardinality allows.
	sig := make([][]int, len(cfg.Clusters))
	for c := range sig {
		sig[c] = make([]int, n)
		for a := range sig[c] {
			sig[c][a] = c % cfg.Attrs[a].Cardinality
		}
	}
	// Cumulative cluster distribution.
	cum := make([]float64, len(cfg.Clusters))
	total := 0.0
	for i, p := range cfg.Clusters {
		total += p
		cum[i] = total
	}

	// Zipf-like background sampler per cardinality.
	bg := newBackground(cfg.Skew, rng)

	// drawRow fills row with a fresh sample from the cluster model.
	drawRow := func(row []int) {
		u := rng.Float64() * total
		c := 0
		for c < len(cum)-1 && u > cum[c] {
			c++
		}
		for a := 0; a < n; a++ {
			if rng.Float64() < cfg.Attrs[a].Align[c] {
				row[a] = sig[c][a]
			} else {
				row[a] = bg.draw(cfg.Attrs[a].Cardinality)
			}
		}
	}

	// Prototype mode: pre-draw the row pool and a skewed popularity
	// distribution over it.
	var protos [][]int
	if cfg.Prototypes > 0 {
		protos = make([][]int, cfg.Prototypes)
		for i := range protos {
			protos[i] = make([]int, n)
			drawRow(protos[i])
		}
	}

	row := make([]int, n)
	for r := 0; r < cfg.Records; r++ {
		if protos != nil {
			copy(row, protos[bg.draw(len(protos))])
		} else {
			drawRow(row)
		}
		// Apply local patterns.
		for _, lp := range cfg.LocalPatterns {
			p := lp.OutsideProb
			if containsInt(lp.RangeValues, row[lp.RangeAttr]) {
				p = lp.InsideProb
			}
			if rng.Float64() < p {
				for a, v := range lp.Items {
					row[a] = v
				}
			}
		}
		if err := b.AddRecordIdx(row...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

func attrPrefix(name string) string {
	if len(name) > 3 {
		return name[:3]
	}
	return name
}

func containsInt(vs []int, v int) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// background draws Zipf-like values with a small alias cache per
// cardinality.
type background struct {
	skew float64
	rng  *rand.Rand
	cum  map[int][]float64
}

func newBackground(skew float64, rng *rand.Rand) *background {
	return &background{skew: skew, rng: rng, cum: make(map[int][]float64)}
}

func (b *background) draw(card int) int {
	if b.skew == 0 {
		return b.rng.Intn(card)
	}
	cum, ok := b.cum[card]
	if !ok {
		cum = make([]float64, card)
		total := 0.0
		for v := 0; v < card; v++ {
			total += 1 / pow(float64(v+1), b.skew)
			cum[v] = total
		}
		b.cum[card] = cum
	}
	u := b.rng.Float64() * cum[card-1]
	for v, c := range cum {
		if u <= c {
			return v
		}
	}
	return card - 1
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
