// Package ittree implements the closed itemset-tidset tree of Zaki &
// Hsiao used as the second layer of the MIP-index (paper Section 3.3).
// It stores the closed frequent itemsets (CFIs) mined offline by CHARM,
// organized for the two online operations the mining plans need:
//
//   - exact lookup of a stored CFI;
//   - closure resolution of an arbitrary itemset X — the unique smallest
//     CFI containing X — which carries X's tidset and therefore its
//     support (global and, intersected with the focal subset bitmap,
//     local).
//
// Closure resolution is implemented with per-item inverted lists of CFI
// ids: the closure of X is the CFI of maximum support among those
// containing all of X's items.
package ittree

import (
	"fmt"
	"sort"

	"colarm/internal/charm"
	"colarm/internal/itemset"
)

// Tree is an immutable store of closed frequent itemsets.
type Tree struct {
	sets       []*charm.ClosedSet
	byItem     [][]int32 // item id -> ascending CFI ids containing the item
	byKey      map[string]int32
	numRecords int
	numItems   int
	maxLevel   int
}

// Build indexes the CFIs of a CHARM run. numItems is the size of the item
// universe (Space.NumItems()).
func Build(res *charm.Result, numItems int) *Tree {
	t := &Tree{
		sets:       res.Closed,
		byItem:     make([][]int32, numItems),
		byKey:      make(map[string]int32, len(res.Closed)),
		numRecords: res.NumRecords,
		numItems:   numItems,
	}
	for id, c := range res.Closed {
		t.byKey[c.Items.Key()] = int32(id)
		for _, it := range c.Items {
			t.byItem[it] = append(t.byItem[it], int32(id))
		}
		if len(c.Items) > t.maxLevel {
			t.maxLevel = len(c.Items)
		}
	}
	return t
}

// Size returns the number of stored CFIs.
func (t *Tree) Size() int { return len(t.sets) }

// NumRecords returns the record count of the dataset the tree was built
// over.
func (t *Tree) NumRecords() int { return t.numRecords }

// MaxLevel returns the length of the longest stored CFI — the depth of
// the IT-tree.
func (t *Tree) MaxLevel() int { return t.maxLevel }

// Set returns the CFI with the given id (its index in mining order).
func (t *Tree) Set(id int) *charm.ClosedSet { return t.sets[id] }

// Sets returns all stored CFIs in mining order. Callers must not mutate.
func (t *Tree) Sets() []*charm.ClosedSet { return t.sets }

// Lookup finds the CFI whose itemset is exactly x.
func (t *Tree) Lookup(x itemset.Set) (*charm.ClosedSet, bool) {
	if id, ok := t.byKey[x.Key()]; ok {
		return t.sets[id], true
	}
	return nil, false
}

// Closure returns the closure of x: the unique CFI c with
// tidset(c) == tidset(x), which is the maximum-support CFI whose itemset
// contains x. The boolean is false when x is contained in no stored CFI,
// i.e. x was not frequent at the primary support threshold.
func (t *Tree) Closure(x itemset.Set) (*charm.ClosedSet, bool) {
	id, ok := t.ClosureID(x)
	if !ok {
		return nil, false
	}
	return t.sets[id], true
}

// ClosureID is Closure returning the CFI's id instead of the set; plans
// key their per-query local-support caches on the id.
func (t *Tree) ClosureID(x itemset.Set) (int, bool) {
	if len(x) == 0 {
		return 0, false
	}
	// Exact hit short-circuits the list intersection.
	if id, ok := t.byKey[x.Key()]; ok {
		return int(id), true
	}
	// Scan the shortest inverted list for the max-support superset.
	shortest := -1
	for _, it := range x {
		l := t.byItem[it]
		if len(l) == 0 {
			return 0, false
		}
		if shortest < 0 || len(l) < len(t.byItem[x[shortest]]) {
			// remember position within x of the item with the shortest list
			shortest = indexOf(x, it)
		}
	}
	best := -1
	for _, id := range t.byItem[x[shortest]] {
		c := t.sets[id]
		if best >= 0 && c.Support <= t.sets[best].Support {
			continue
		}
		if x.SubsetOf(c.Items) {
			best = int(id)
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func indexOf(x itemset.Set, it itemset.Item) int {
	for i, v := range x {
		if v == it {
			return i
		}
	}
	return -1
}

// GlobalSupport returns the dataset-wide support count of an arbitrary
// itemset x, resolved through its closure, or -1 when x is not covered by
// the stored CFIs.
func (t *Tree) GlobalSupport(x itemset.Set) int {
	c, ok := t.Closure(x)
	if !ok {
		return -1
	}
	return c.Support
}

// Validate checks internal invariants: closure of every stored itemset is
// itself, and every subset of a stored CFI resolves to a closure with at
// least its support. Used by index-construction tests.
func (t *Tree) Validate() error {
	for id, c := range t.sets {
		got, ok := t.Closure(c.Items)
		if !ok {
			return fmt.Errorf("ittree: CFI %d not found via Closure", id)
		}
		if !got.Items.Equal(c.Items) {
			return fmt.Errorf("ittree: Closure(%v) = %v, want identity", c.Items, got.Items)
		}
	}
	return nil
}

// ContainingIDs returns the ids of CFIs containing every item of x, in
// ascending id order. Used by diagnostics and tests.
func (t *Tree) ContainingIDs(x itemset.Set) []int32 {
	if len(x) == 0 {
		return nil
	}
	cur := append([]int32(nil), t.byItem[x[0]]...)
	for _, it := range x[1:] {
		cur = intersectSorted(cur, t.byItem[it])
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func intersectSorted(a, b []int32) []int32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// LevelCounts returns, per itemset length, how many CFIs the tree stores
// (index 0 unused). The distribution of CFIs by length drives the paper's
// discussion of dataset character (symmetric for chess/PUMSB, bi-modal
// for mushroom).
func (t *Tree) LevelCounts() []int {
	counts := make([]int, t.maxLevel+1)
	for _, c := range t.sets {
		counts[len(c.Items)]++
	}
	return counts
}

// SortedBySupport returns CFI ids in descending global support order;
// diagnostic helper for the Simpson's-paradox experiment output.
func (t *Tree) SortedBySupport() []int32 {
	ids := make([]int32, len(t.sets))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := t.sets[ids[a]].Support, t.sets[ids[b]].Support
		if sa != sb {
			return sa > sb
		}
		return ids[a] < ids[b]
	})
	return ids
}
