package shard

import (
	"fmt"
	"time"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
	"colarm/internal/mip"
	"colarm/internal/plans"
	"colarm/internal/rtree"
)

// ShardIndex is one shard's physical MIP-index: the shard's threshold-1
// closed-set catalog (the input to the cross-shard closure merge) plus
// the two physical layers built over it — a closed IT-tree and a
// supported R-tree over the shard-local bounding boxes, both in the
// engine's configured layout. Caching the physical layers alongside the
// mining, keyed by the shard's version clock and the frequent-item
// universe, is what lets consolidation re-mine AND re-index only the
// drifted shards while clean shards keep serving their cached index
// unchanged.
//
// A ShardIndex is immutable once published.
type ShardIndex struct {
	// Shard is the shard number in [0, K).
	Shard int
	// Version is the shard clock value the index was built at.
	Version uint64
	// UKey identifies the frequent-item universe the mining restricted
	// to (itemset.Set.Key of the universe).
	UKey string
	// Slice is the shard's record/tidset projection the index covers.
	Slice plans.ShardSlice
	// Mine is the shard's threshold-1 closed-set catalog over the
	// universe — the closure-merge input.
	Mine *charm.Result
	// Tree is the closed IT-tree over the shard-local CFIs; supports
	// are shard-local.
	Tree *ittree.Tree
	// Boxes[i] is the shard-local bounding box of CFI i (Tree ids):
	// the extent of the shard's supporting records only.
	Boxes []itemset.Box
	// RTree indexes the shard-local boxes with shard-local supports.
	RTree *rtree.Tree
	// BuildNanos is the wall-clock cost of mining + indexing this
	// shard, for the consolidation-pause accounting and /metrics.
	BuildNanos int64
}

// buildShardIndex mines one shard at threshold 1 over the universe and
// packs the physical layers. sl.Items carries the shard-restricted
// per-item tidsets; items outside the universe (inU false) are masked
// off so the threshold-1 enumeration stays bounded by 2^U.
func buildShardIndex(shard int, version uint64, ukey string, sl plans.ShardSlice, inU []bool, capN int, sp *itemset.Space, cards []int, fanout int, packing rtree.Packing, layout mip.Layout) *ShardIndex {
	start := time.Now()
	tids := make([]*bitset.Set, len(sl.Items))
	for i, t := range sl.Items {
		if t != nil && inU[i] {
			tids[i] = t
		}
	}
	res, err := charm.MineTidsets(tids, capN, 1)
	if err != nil {
		// Unreachable: minCount 1 is the only error path.
		panic(fmt.Sprintf("shard: per-shard mining failed: %v", err))
	}
	si := &ShardIndex{
		Shard:   shard,
		Version: version,
		UKey:    ukey,
		Slice:   sl,
		Mine:    res,
		Tree:    ittree.BuildLayout(res, sp.NumItems(), layout.ITTreeLayout()),
		Boxes:   make([]itemset.Box, len(res.Closed)),
	}
	entries := make([]rtree.Entry, len(res.Closed))
	for id, c := range res.Closed {
		si.Boxes[id] = mip.BoundingBox(sp, cards, sl.Items, c)
		entries[id] = rtree.Entry{Box: si.Boxes[id], ID: int32(id), Support: int32(c.Support)}
	}
	rt, err := rtree.BulkLayout(entries, sp.NumAttrs(), fanout, packing, cards, layout.RTreeLayout())
	if err != nil {
		// Unreachable: entries are well-formed by construction (every
		// CFI has support >= 1, so no empty boxes).
		panic(fmt.Sprintf("shard: per-shard R-tree build failed: %v", err))
	}
	si.RTree = rt
	si.BuildNanos = time.Since(start).Nanoseconds()
	return si
}

// Validate cross-checks the shard index's physical layers: the R-tree
// must be structurally valid with one entry per local CFI, and every
// local box must cover the shard's supporting records.
func (si *ShardIndex) Validate(sp *itemset.Space, value func(r, a int) int) error {
	if err := si.Tree.Validate(); err != nil {
		return fmt.Errorf("shard %d: %w", si.Shard, err)
	}
	if err := si.RTree.Validate(); err != nil {
		return fmt.Errorf("shard %d: %w", si.Shard, err)
	}
	if si.RTree.Size() != si.Tree.Size() {
		return fmt.Errorf("shard %d: R-tree has %d entries, IT-tree %d", si.Shard, si.RTree.Size(), si.Tree.Size())
	}
	n := sp.NumAttrs()
	point := make([]int, n)
	for id := 0; id < si.Tree.Size(); id++ {
		box := si.Boxes[id]
		ok := true
		si.Tree.Tids(id).ForEach(func(r int) bool {
			for a := 0; a < n; a++ {
				point[a] = value(r, a)
			}
			if !box.ContainsPoint(point) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return fmt.Errorf("shard %d: box of local CFI %d does not cover its records", si.Shard, id)
		}
	}
	return nil
}
