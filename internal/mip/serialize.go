package mip

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
	"colarm/internal/qerr"
	"colarm/internal/relation"
	"colarm/internal/rtree"
)

// The MIP-index is built offline once (the POQM contract), so persisting
// it is the natural deployment shape: mine with CHARM on a build
// machine, ship the snapshot, and serve queries anywhere. The snapshot
// stores the dataset, the closed frequent itemsets with their tidsets,
// and the MIP bounding boxes; the cheap derived structures (per-item
// tidsets, the packed R-tree, statistics) are rebuilt on load in
// milliseconds, skipping the mining phase entirely.

// snapshotMagic versions the serialization format. It is written as a
// standalone gob string ahead of the payload, so a reader rejects
// foreign files and other format versions from the first value alone —
// a typed qerr.ErrSnapshotVersion instead of a garbled payload decode.
//
// v2 moved the magic out of the payload struct and added engine-level
// metadata: the primary-support fraction, the engine generation, and
// the live-ingestion delta (buffered rows and deletes), so a snapshot
// taken mid-ingest restores to the exact same answers.
//
// v3 carries CFI tidsets in the hybrid container encoding (bitset v3)
// instead of dense words, so sparse and clustered tidsets persist
// compressed. The payload struct is unchanged — only the bytes inside
// each snapCFI.Tids differ — and the bitset decoder sniffs the
// per-tidset format, so v2 snapshots still load: their dense tidsets
// are converted to the hybrid representation on read.
//
// v4 is the sharded layout: when the index carries a Live mask (a
// consolidated sharded engine keeps deleted records as ghost rows so
// hash partitioning stays stable), the mask is appended as one extra
// gob value after the unchanged v3 payload. An index without ghosts —
// every fresh build, and every sharded engine that has absorbed no
// deletions, K=1 included — still writes the exact v3 stream, so v3
// readers round-trip those snapshots unchanged; only ghost-carrying
// snapshots get the v4 magic, which v3 readers reject with a typed
// version error instead of silently resurrecting deleted rows.
//
// v5 is the slab format matching the flat in-memory layout: CFI
// itemsets are one offset-indexed item arena instead of a slice per
// CFI, tidset encodings are one offset-indexed byte arena, and boxes
// are one inline Lo/Hi arena — a handful of large gob values instead of
// tens of thousands of small ones, decoded straight into the arenas the
// flat index is built from. The ghost mask is a payload field (empty
// means none) rather than a trailing value. v4, v3 and v2 streams are
// accepted read-only; the golden-bytes compat test pins crafted streams
// of all three as testdata.
const snapshotMagic = "COLARM-MIP-v5"

// snapshotMagicV4 is the sharded ghost-mask format (see above),
// accepted read-only.
const snapshotMagicV4 = "COLARM-MIP-v4"

// snapshotMagicV3 is the hybrid-tidset format, accepted read-only.
const snapshotMagicV3 = "COLARM-MIP-v3"

// snapshotMagicV2 is the dense-tidset format, accepted read-only.
const snapshotMagicV2 = "COLARM-MIP-v2"

// SnapshotMeta is the engine-level state a snapshot carries alongside
// the index itself.
type SnapshotMeta struct {
	// Primary is the primary-support fraction the index was mined at;
	// the delta store re-mines merged views at this same fraction.
	Primary float64
	// Generation counts the engine's rebuilds since the original build.
	Generation uint64
	// DeltaRows are the buffered post-build inserts (value indices).
	DeltaRows [][]int32
	// DeltaDels are the deleted record ids (base or buffered id space).
	DeltaDels []int32
	// Secondaries carry the advisor-built secondary MIP-indexes that
	// were fresh at save time. The field is gob-optional: older readers
	// silently drop it, which is benign — a secondary is a rebuildable
	// performance cache, never a correctness dependency.
	Secondaries []SecondarySnapshot
}

// SecondarySnapshot is one secondary index riding inside a snapshot:
// the primary-support fraction it was mined at and its own full
// snapshot stream (a nested WriteSnapshot payload).
type SecondarySnapshot struct {
	Primary float64
	Blob    []byte
}

// snapshot is the legacy v2/v3/v4 payload, retained for reading old
// streams (and for crafting golden compat testdata).
type snapshot struct {
	// Dataset.
	Name  string
	Attrs []snapAttr
	Rows  []int32 // row-major value indices, m*n entries

	// Index.
	PrimaryCount int
	Fanout       int
	Packing      int
	CFIs         []snapCFI
	Boxes        []snapBox

	Meta SnapshotMeta
}

// snapshotV5 is the slab payload: per-CFI data lives in offset-indexed
// arenas mirroring the flat in-memory layout.
type snapshotV5 struct {
	// Dataset.
	Name  string
	Attrs []snapAttr
	Rows  []int32 // row-major value indices, m*n entries

	// Index parameters.
	PrimaryCount int
	Fanout       int
	Packing      int

	// CFI slabs. CFI i owns ItemArena[ItemOff[i]:ItemOff[i+1]],
	// TidArena[TidOff[i]:TidOff[i+1]] (a bitset.Set binary encoding) and
	// BoxArena[i*2n : (i+1)*2n] (n Lo values then n Hi values).
	ItemArena []int32
	ItemOff   []int32
	Supports  []int32
	TidArena  []byte
	TidOff    []int64
	BoxArena  []int32

	// Live is the ghost mask of a consolidated sharded engine (bitset
	// binary encoding); empty means every record is live.
	Live []byte

	Meta SnapshotMeta
}

type snapAttr struct {
	Name   string
	Values []string
}

type snapCFI struct {
	Items   []int32
	Tids    []byte // bitset.Set binary encoding
	Support int
}

type snapBox struct {
	Lo, Hi []int32
}

// WriteTo serializes the index with empty engine metadata. The stream
// is self-contained: ReadIndex restores a fully functional index
// without re-mining.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	return x.WriteSnapshot(w, SnapshotMeta{})
}

// WriteSnapshot serializes the index plus engine-level metadata (see
// SnapshotMeta); ReadSnapshot restores both.
func (x *Index) WriteSnapshot(w io.Writer, meta SnapshotMeta) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriter(w)}
	snap := snapshotV5{
		Name:         x.Dataset.Name,
		PrimaryCount: x.PrimaryCount,
		Fanout:       x.RTree.Fanout(),
		Meta:         meta,
	}
	for _, a := range x.Dataset.Attrs {
		snap.Attrs = append(snap.Attrs, snapAttr{Name: a.Name, Values: a.Values})
	}
	m, n := x.Dataset.NumRecords(), x.Dataset.NumAttrs()
	snap.Rows = make([]int32, 0, m*n)
	for r := 0; r < m; r++ {
		for a := 0; a < n; a++ {
			snap.Rows = append(snap.Rows, int32(x.Dataset.Value(r, a)))
		}
	}
	k := x.ITTree.Size()
	snap.ItemOff = make([]int32, k+1)
	snap.TidOff = make([]int64, k+1)
	snap.Supports = make([]int32, k)
	snap.BoxArena = make([]int32, 0, k*2*n)
	for id := 0; id < k; id++ {
		for _, it := range x.ITTree.Items(id) {
			snap.ItemArena = append(snap.ItemArena, int32(it))
		}
		snap.ItemOff[id+1] = int32(len(snap.ItemArena))
		// Marshal a canonical container form: the bytes written must
		// depend only on the tidset's content, not on the container
		// history its construction happened to leave behind, so equal
		// indexes always snapshot to equal bytes.
		canon := x.ITTree.Tids(id).Clone()
		canon.Optimize()
		tids, err := canon.MarshalBinary()
		if err != nil {
			return bw.n, err
		}
		snap.TidArena = append(snap.TidArena, tids...)
		snap.TidOff[id+1] = int64(len(snap.TidArena))
		snap.Supports[id] = int32(x.ITTree.Support(id))
		snap.BoxArena = append(snap.BoxArena, x.Boxes[id].Lo...)
		snap.BoxArena = append(snap.BoxArena, x.Boxes[id].Hi...)
	}
	if x.Live != nil {
		canon := x.Live.Clone()
		canon.Optimize()
		live, err := canon.MarshalBinary()
		if err != nil {
			return bw.n, err
		}
		snap.Live = live
	}
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(snapshotMagic); err != nil {
		return bw.n, fmt.Errorf("mip: encoding snapshot magic: %w", err)
	}
	if err := enc.Encode(&snap); err != nil {
		return bw.n, fmt.Errorf("mip: encoding snapshot: %w", err)
	}
	if err := bw.w.(*bufio.Writer).Flush(); err != nil {
		return bw.n, err
	}
	return bw.n, nil
}

// ReadIndex restores an index written by WriteTo, rebuilding the
// derived structures (item tidsets, packed R-tree, statistics).
func ReadIndex(r io.Reader) (*Index, error) {
	idx, _, err := ReadSnapshot(r)
	return idx, err
}

// ReadSnapshot restores an index and its engine metadata. A stream that
// is not a snapshot of exactly this format version — an older or newer
// COLARM snapshot, or a foreign file — fails with
// qerr.ErrSnapshotVersion before any payload decoding.
func ReadSnapshot(r io.Reader) (*Index, SnapshotMeta, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var magic string
	if err := dec.Decode(&magic); err != nil {
		return nil, SnapshotMeta{}, fmt.Errorf("mip: %w: stream does not start with a snapshot version marker", qerr.ErrSnapshotVersion)
	}
	switch magic {
	case snapshotMagic:
		var snap snapshotV5
		if err := dec.Decode(&snap); err != nil {
			return nil, SnapshotMeta{}, fmt.Errorf("mip: decoding snapshot: %w", err)
		}
		idx, err := decodeSnapshotV5(&snap)
		if err != nil {
			return nil, SnapshotMeta{}, err
		}
		return idx, snap.Meta, nil
	case snapshotMagicV4, snapshotMagicV3, snapshotMagicV2:
		var snap snapshot
		if err := dec.Decode(&snap); err != nil {
			return nil, SnapshotMeta{}, fmt.Errorf("mip: decoding snapshot: %w", err)
		}
		var live *bitset.Set
		if magic == snapshotMagicV4 {
			var raw []byte
			if err := dec.Decode(&raw); err != nil {
				return nil, SnapshotMeta{}, fmt.Errorf("mip: decoding live mask: %w", err)
			}
			live = &bitset.Set{}
			if err := live.UnmarshalBinary(raw); err != nil {
				return nil, SnapshotMeta{}, fmt.Errorf("mip: live mask: %w", err)
			}
		}
		idx, err := decodeSnapshot(&snap, live)
		if err != nil {
			return nil, SnapshotMeta{}, err
		}
		return idx, snap.Meta, nil
	default:
		return nil, SnapshotMeta{}, fmt.Errorf("mip: %w: snapshot is %q, this build reads %q (and %q, %q, %q read-only)", qerr.ErrSnapshotVersion, magic, snapshotMagic, snapshotMagicV4, snapshotMagicV3, snapshotMagicV2)
	}
}

// decodeSnapshotV5 converts the slab payload into the legacy per-CFI
// shape and funnels through the same validation/assembly path, so both
// formats restore byte-identical indexes.
func decodeSnapshotV5(snap *snapshotV5) (*Index, error) {
	k := len(snap.Supports)
	if len(snap.ItemOff) != k+1 || len(snap.TidOff) != k+1 {
		return nil, fmt.Errorf("mip: snapshot slab offsets malformed: %d CFIs, %d item offsets, %d tid offsets", k, len(snap.ItemOff), len(snap.TidOff))
	}
	n := len(snap.Attrs)
	if len(snap.BoxArena) != k*2*n {
		return nil, fmt.Errorf("mip: snapshot box arena has %d values, want %d", len(snap.BoxArena), k*2*n)
	}
	legacy := &snapshot{
		Name:         snap.Name,
		Attrs:        snap.Attrs,
		Rows:         snap.Rows,
		PrimaryCount: snap.PrimaryCount,
		Fanout:       snap.Fanout,
		Packing:      snap.Packing,
		Meta:         snap.Meta,
	}
	for i := 0; i < k; i++ {
		io0, io1 := snap.ItemOff[i], snap.ItemOff[i+1]
		to0, to1 := snap.TidOff[i], snap.TidOff[i+1]
		if io0 < 0 || io1 < io0 || int(io1) > len(snap.ItemArena) || to0 < 0 || to1 < to0 || int(to1) > len(snap.TidArena) {
			return nil, fmt.Errorf("mip: snapshot CFI %d has out-of-range slab offsets", i)
		}
		o := i * 2 * n
		legacy.CFIs = append(legacy.CFIs, snapCFI{
			Items:   snap.ItemArena[io0:io1],
			Tids:    snap.TidArena[to0:to1],
			Support: int(snap.Supports[i]),
		})
		legacy.Boxes = append(legacy.Boxes, snapBox{Lo: snap.BoxArena[o : o+n], Hi: snap.BoxArena[o+n : o+2*n]})
	}
	var live *bitset.Set
	if len(snap.Live) > 0 {
		live = &bitset.Set{}
		if err := live.UnmarshalBinary(snap.Live); err != nil {
			return nil, fmt.Errorf("mip: live mask: %w", err)
		}
	}
	return decodeSnapshot(legacy, live)
}

func decodeSnapshot(snap *snapshot, live *bitset.Set) (*Index, error) {
	if len(snap.Attrs) == 0 {
		return nil, fmt.Errorf("mip: snapshot has no attributes")
	}
	n := len(snap.Attrs)
	if len(snap.Rows)%n != 0 {
		return nil, fmt.Errorf("mip: snapshot row data length %d not divisible by %d attributes", len(snap.Rows), n)
	}
	names := make([]string, n)
	for i, a := range snap.Attrs {
		names[i] = a.Name
	}
	b := relation.NewBuilder(snap.Name, names...)
	for ai, a := range snap.Attrs {
		for _, v := range a.Values {
			b.AddValue(ai, v)
		}
	}
	row := make([]int, n)
	for off := 0; off < len(snap.Rows); off += n {
		for a := 0; a < n; a++ {
			row[a] = int(snap.Rows[off+a])
		}
		if err := b.AddRecordIdx(row...); err != nil {
			return nil, fmt.Errorf("mip: snapshot record: %w", err)
		}
	}
	d := b.Build()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	sp := itemset.NewSpace(d)

	if len(snap.CFIs) != len(snap.Boxes) {
		return nil, fmt.Errorf("mip: snapshot has %d CFIs but %d boxes", len(snap.CFIs), len(snap.Boxes))
	}
	res := &charm.Result{NumRecords: d.NumRecords(), MinCount: snap.PrimaryCount}
	boxes := make([]itemset.Box, len(snap.CFIs))
	for i, sc := range snap.CFIs {
		tids := &bitset.Set{}
		if err := tids.UnmarshalBinary(sc.Tids); err != nil {
			return nil, fmt.Errorf("mip: CFI %d tidset: %w", i, err)
		}
		if tids.Len() != d.NumRecords() {
			return nil, fmt.Errorf("mip: CFI %d tidset capacity %d != %d records", i, tids.Len(), d.NumRecords())
		}
		// Normalize the container form: v2 streams carry dense words,
		// and a restored index must re-serialize identically to a fresh
		// build regardless of the source encoding.
		tids.Optimize()
		items := make(itemset.Set, len(sc.Items))
		for j, it := range sc.Items {
			if it < 0 || int(it) >= sp.NumItems() {
				return nil, fmt.Errorf("mip: CFI %d item %d out of range", i, it)
			}
			items[j] = itemset.Item(it)
		}
		if got := tids.Count(); got != sc.Support {
			return nil, fmt.Errorf("mip: CFI %d support %d != tidset count %d", i, sc.Support, got)
		}
		res.Closed = append(res.Closed, &charm.ClosedSet{Items: items, Tids: tids, Support: sc.Support})
		sb := snap.Boxes[i]
		if len(sb.Lo) != n || len(sb.Hi) != n {
			return nil, fmt.Errorf("mip: CFI %d box has wrong dimensionality", i)
		}
		boxes[i] = itemset.Box{Lo: sb.Lo, Hi: sb.Hi}
	}

	idx, err := assembleFromBoxes(d, sp, res, boxes, snap.PrimaryCount, Options{
		Fanout:  snap.Fanout,
		Packing: rtree.Packing(snap.Packing),
	})
	if err != nil {
		return nil, err
	}
	if live != nil {
		if live.Len() != d.NumRecords() {
			return nil, fmt.Errorf("mip: live mask capacity %d != %d records", live.Len(), d.NumRecords())
		}
		// The rebuilt per-item tidsets scanned the raw rows, ghosts
		// included; clear the ghost bits so every query surface covers
		// live records only, exactly as the consolidating engine left it.
		for _, t := range idx.Tidsets {
			t.And(live)
			t.Optimize()
		}
		idx.Live = live
	}
	return idx, nil
}

// assembleFromBoxes mirrors assemble but reuses precomputed boxes.
func assembleFromBoxes(d *relation.Dataset, sp *itemset.Space, res *charm.Result, boxes []itemset.Box, primaryCount int, opts Options) (*Index, error) {
	idx := &Index{
		Dataset:      d,
		Space:        sp,
		Tidsets:      itemset.ItemTidsets(d, sp),
		PrimaryCount: primaryCount,
		Boxes:        boxes,
		Layout:       opts.Layout,
	}
	idx.ITTree = ittree.BuildLayout(res, sp.NumItems(), opts.Layout.ITTreeLayout())
	idx.Cards = make([]int, sp.NumAttrs())
	for a := range idx.Cards {
		idx.Cards[a] = sp.Cardinality(a)
	}
	entries := make([]rtree.Entry, len(res.Closed))
	for id, c := range res.Closed {
		entries[id] = rtree.Entry{Box: boxes[id], ID: int32(id), Support: int32(c.Support)}
	}
	rt, err := rtree.BulkLayout(entries, sp.NumAttrs(), opts.Fanout, opts.Packing, idx.Cards, opts.Layout.RTreeLayout())
	if err != nil {
		return nil, err
	}
	idx.RTree = rt
	idx.LevelStats, idx.EntryStats = rt.Stats(idx.Cards)
	return idx, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
