// Package relation implements COLARM's relational data model: a dataset of
// m records over n nominal attributes. Quantitative attributes are
// discretized into disjoint intervals before mining (see discretize.go),
// after which every cell of the relation is a nominal value drawn from a
// per-attribute dictionary.
//
// Internally each record stores, for every attribute, the index of its
// value in that attribute's dictionary. Value indices are what the R-tree
// treats as coordinates, so the dictionary order of an attribute defines
// its axis in the multidimensional itemset space of the paper (Section
// 2.1).
package relation

import (
	"fmt"
	"sort"
)

// Attribute describes one column of the relation: its name and the ordered
// dictionary of nominal values it can take.
type Attribute struct {
	Name   string
	Values []string // dictionary; index in this slice is the coordinate

	index map[string]int
}

// Cardinality returns the number of distinct values of the attribute.
func (a *Attribute) Cardinality() int { return len(a.Values) }

// ValueIndex returns the coordinate of value v along this attribute's
// axis, or -1 if v is not in the dictionary.
func (a *Attribute) ValueIndex(v string) int {
	if a.index == nil {
		return -1
	}
	if i, ok := a.index[v]; ok {
		return i
	}
	return -1
}

func (a *Attribute) buildIndex() {
	a.index = make(map[string]int, len(a.Values))
	for i, v := range a.Values {
		a.index[v] = i
	}
}

// Dataset is an immutable relational dataset. Records are stored
// row-major: record r's value for attribute a is rows[r*n+a], an index
// into Attrs[a].Values.
type Dataset struct {
	Name  string
	Attrs []*Attribute

	rows []int32
	m    int // number of records
}

// Builder accumulates records and value dictionaries to construct a
// Dataset. Values are interned in first-seen order per attribute.
type Builder struct {
	name  string
	attrs []*Attribute
	rows  []int32
	m     int
}

// NewBuilder starts a dataset with the given attribute names.
func NewBuilder(name string, attrNames ...string) *Builder {
	b := &Builder{name: name}
	for _, an := range attrNames {
		a := &Attribute{Name: an}
		a.buildIndex()
		b.attrs = append(b.attrs, a)
	}
	return b
}

// AddRecord appends one record given as attribute value strings, in the
// attribute order passed to NewBuilder. New values extend the attribute's
// dictionary.
func (b *Builder) AddRecord(values ...string) error {
	if len(values) != len(b.attrs) {
		return fmt.Errorf("relation: record has %d values, dataset has %d attributes", len(values), len(b.attrs))
	}
	for i, v := range values {
		a := b.attrs[i]
		idx, ok := a.index[v]
		if !ok {
			idx = len(a.Values)
			a.Values = append(a.Values, v)
			a.index[v] = idx
		}
		b.rows = append(b.rows, int32(idx))
	}
	b.m++
	return nil
}

// AddRecordIdx appends one record given directly as value indices. Indices
// must already exist in the dictionaries (use AddValue to pre-register).
func (b *Builder) AddRecordIdx(indices ...int) error {
	if len(indices) != len(b.attrs) {
		return fmt.Errorf("relation: record has %d values, dataset has %d attributes", len(indices), len(b.attrs))
	}
	for i, idx := range indices {
		if idx < 0 || idx >= len(b.attrs[i].Values) {
			return fmt.Errorf("relation: value index %d out of range for attribute %q (cardinality %d)",
				idx, b.attrs[i].Name, len(b.attrs[i].Values))
		}
		b.rows = append(b.rows, int32(idx))
	}
	b.m++
	return nil
}

// AddValue pre-registers a dictionary value for attribute ai and returns
// its index, interning it if already present.
func (b *Builder) AddValue(ai int, v string) int {
	a := b.attrs[ai]
	if idx, ok := a.index[v]; ok {
		return idx
	}
	idx := len(a.Values)
	a.Values = append(a.Values, v)
	a.index[v] = idx
	return idx
}

// Build freezes the builder into a Dataset.
func (b *Builder) Build() *Dataset {
	return &Dataset{Name: b.name, Attrs: b.attrs, rows: b.rows, m: b.m}
}

// NumRecords returns m, the number of records.
func (d *Dataset) NumRecords() int { return d.m }

// NumAttrs returns n, the number of attributes.
func (d *Dataset) NumAttrs() int { return len(d.Attrs) }

// Value returns the value index of record r for attribute a.
func (d *Dataset) Value(r, a int) int {
	return int(d.rows[r*len(d.Attrs)+a])
}

// ValueString returns the dictionary string of record r for attribute a.
func (d *Dataset) ValueString(r, a int) string {
	return d.Attrs[a].Values[d.Value(r, a)]
}

// Record returns record r's value indices as a fresh slice.
func (d *Dataset) Record(r int) []int {
	n := len(d.Attrs)
	out := make([]int, n)
	for a := 0; a < n; a++ {
		out[a] = int(d.rows[r*n+a])
	}
	return out
}

// AttrIndex returns the position of the attribute named name, or -1.
func (d *Dataset) AttrIndex(name string) int {
	for i, a := range d.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// NumItems returns the total number of distinct items, i.e. the sum of
// attribute cardinalities. Items are (attribute, value) pairs.
func (d *Dataset) NumItems() int {
	t := 0
	for _, a := range d.Attrs {
		t += a.Cardinality()
	}
	return t
}

// Validate performs internal consistency checks and returns the first
// problem found, if any. It is used by loaders and tests.
func (d *Dataset) Validate() error {
	n := len(d.Attrs)
	if n == 0 {
		return fmt.Errorf("relation: dataset %q has no attributes", d.Name)
	}
	if len(d.rows) != d.m*n {
		return fmt.Errorf("relation: dataset %q row storage length %d != m*n = %d", d.Name, len(d.rows), d.m*n)
	}
	names := make(map[string]bool, n)
	for ai, a := range d.Attrs {
		if names[a.Name] {
			return fmt.Errorf("relation: duplicate attribute name %q", a.Name)
		}
		names[a.Name] = true
		if a.Cardinality() == 0 && d.m > 0 {
			return fmt.Errorf("relation: attribute %q has empty dictionary but dataset has records", a.Name)
		}
		card := int32(a.Cardinality())
		for r := 0; r < d.m; r++ {
			if v := d.rows[r*n+ai]; v < 0 || v >= card {
				return fmt.Errorf("relation: record %d attribute %q value index %d out of range [0,%d)", r, a.Name, v, card)
			}
		}
	}
	return nil
}

// SortedAttrNames returns the attribute names in sorted order; used by
// deterministic printers.
func (d *Dataset) SortedAttrNames() []string {
	out := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		out[i] = a.Name
	}
	sort.Strings(out)
	return out
}
