package shard

import (
	"math/rand"
	"testing"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
)

// TestMergeClosedProperty is the property test for the cross-shard
// closure merge: over random tidsets split into random shards, the
// merge of the per-shard threshold-1 CHARM catalogs must reproduce the
// from-scratch global CHARM catalog exactly — same itemsets, same
// tidsets, same supports, same canonical order — and agree with the
// independent brute-force enumerator. It also asserts the corollary
// from the MergeClosed contract on every per-shard closed set: an
// itemset closed in every shard it touches is globally closed.
func TestMergeClosedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	crossShardWitnesses, totalClosed := 0, 0
	for trial := 0; trial < 60; trial++ {
		numRecords := 20 + rng.Intn(41)
		numItems := 4 + rng.Intn(9)
		tidsets := make([]*bitset.Set, numItems)
		for i := range tidsets {
			s := bitset.New(numRecords)
			p := 0.2 + 0.6*rng.Float64()
			for r := 0; r < numRecords; r++ {
				if rng.Float64() < p {
					s.Add(r)
				}
			}
			tidsets[i] = s
		}
		k := 2 + rng.Intn(4)
		assign := make([]int, numRecords)
		for r := range assign {
			assign[r] = rng.Intn(k)
		}
		minCount := 1 + rng.Intn(numRecords/4+1)

		// Mimic the collection: per-shard mining sees only the globally
		// frequent items (non-U tidsets nil) at threshold 1.
		inU := make([]bool, numItems)
		for i, ts := range tidsets {
			inU[i] = ts.Count() >= minCount
		}
		shardRecs := make([]*bitset.Set, k)
		for s := range shardRecs {
			shardRecs[s] = bitset.New(numRecords)
		}
		for r, a := range assign {
			shardRecs[a].Add(r)
		}
		perShard := make([]*charm.Result, k)
		for s := 0; s < k; s++ {
			st := make([]*bitset.Set, numItems)
			for i, ts := range tidsets {
				if inU[i] {
					st[i] = bitset.Intersect(ts, shardRecs[s])
				}
			}
			res, err := charm.MineTidsets(st, numRecords, 1)
			if err != nil {
				t.Fatalf("trial %d shard %d: mine: %v", trial, s, err)
			}
			perShard[s] = res
		}

		got := MergeClosed(perShard, tidsets, numRecords, minCount)
		want, err := charm.MineTidsets(tidsets, numRecords, minCount)
		if err != nil {
			t.Fatalf("trial %d: global mine: %v", trial, err)
		}
		if len(got.Closed) != len(want.Closed) {
			t.Fatalf("trial %d (K=%d, minCount=%d): merge found %d closed sets, global CHARM %d",
				trial, k, minCount, len(got.Closed), len(want.Closed))
		}
		for i, w := range want.Closed {
			g := got.Closed[i]
			if g.Items.Key() != w.Items.Key() || g.Support != w.Support || !g.Tids.Equal(w.Tids) {
				t.Fatalf("trial %d (K=%d, minCount=%d): closed set %d differs: merge %v/%d, global %v/%d",
					trial, k, minCount, i, g.Items, g.Support, w.Items, w.Support)
			}
		}
		// Independent oracle: brute-force closed enumeration.
		bf := charm.BruteForceClosed(tidsets, numRecords, minCount)
		if len(bf) != len(got.Closed) {
			t.Fatalf("trial %d: merge found %d closed sets, brute force %d", trial, len(got.Closed), len(bf))
		}
		bfKeys := make(map[string]int, len(bf))
		for _, c := range bf {
			bfKeys[c.Items.Key()] = c.Support
		}
		for _, g := range got.Closed {
			if supp, ok := bfKeys[g.Items.Key()]; !ok || supp != g.Support {
				t.Fatalf("trial %d: merged set %v/%d not confirmed by brute force", trial, g.Items, g.Support)
			}
		}
		totalClosed += len(got.Closed)

		// Corollary: a set closed in every shard it touches is globally
		// closed. Check it on every per-shard closed set directly
		// against the definition (no item of U outside the set is in
		// every supporting record).
		shardClosed := make([]map[string]bool, k)
		for s, res := range perShard {
			m := make(map[string]bool, len(res.Closed))
			for _, c := range res.Closed {
				m[c.Items.Key()] = true
			}
			shardClosed[s] = m
		}
		globallyClosed := func(c *charm.ClosedSet) bool {
			tids := tidsets[c.Items[0]].Clone()
			for _, it := range c.Items[1:] {
				tids.And(tidsets[it])
			}
			supp := tids.Count()
			for i := range tidsets {
				if !inU[i] || c.Items.Contains(itemset.Item(i)) {
					continue
				}
				if bitset.AndCount(tids, tidsets[i]) == supp {
					return false
				}
			}
			return true
		}
		for s, res := range perShard {
			for _, c := range res.Closed {
				unanimous := true
				for s2 := 0; s2 < k && unanimous; s2++ {
					if s2 == s {
						continue
					}
					// Touching means the set's own tidset reaches the
					// shard, i.e. the intersection over its items there
					// is nonempty.
					st := bitset.Intersect(tidsets[c.Items[0]], shardRecs[s2])
					for _, it := range c.Items[1:] {
						st.And(tidsets[it])
					}
					if !st.IsEmpty() && !shardClosed[s2][c.Items.Key()] {
						unanimous = false
					}
				}
				if unanimous && !globallyClosed(c) {
					t.Fatalf("trial %d: %v is closed in every shard it touches but not globally closed", trial, c.Items)
				}
			}
		}

		// Count the interesting direction: globally closed sets that are
		// shard-closed nowhere, so only the pairwise-intersection worklist
		// can produce them.
		for _, w := range want.Closed {
			anywhere := false
			for s := 0; s < k; s++ {
				if shardClosed[s][w.Items.Key()] {
					anywhere = true
					break
				}
			}
			if !anywhere {
				crossShardWitnesses++
			}
		}
	}
	if totalClosed == 0 {
		t.Fatal("no trial produced any closed itemsets; the property test is vacuous")
	}
	if crossShardWitnesses == 0 {
		t.Error("no globally-closed-but-nowhere-shard-closed witness occurred; the intersection worklist went unexercised")
	}
}

// TestMergeClosedCrossShardWitness pins the deterministic example from
// DESIGN §13: shard 0 holds two AB records, shard 1 two AC records.
// {A} is globally closed (support 4) but closed in neither shard —
// clos₀(A)=AB, clos₁(A)=AC — so only their intersection recovers it.
func TestMergeClosedCrossShardWitness(t *testing.T) {
	const numRecords = 4
	tidsets := []*bitset.Set{
		bitset.FromIDs(numRecords, 0, 1, 2, 3), // A
		bitset.FromIDs(numRecords, 0, 1),       // B
		bitset.FromIDs(numRecords, 2, 3),       // C
	}
	shards := []*bitset.Set{
		bitset.FromIDs(numRecords, 0, 1),
		bitset.FromIDs(numRecords, 2, 3),
	}
	perShard := make([]*charm.Result, len(shards))
	for s, recs := range shards {
		st := make([]*bitset.Set, len(tidsets))
		for i, ts := range tidsets {
			st[i] = bitset.Intersect(ts, recs)
		}
		res, err := charm.MineTidsets(st, numRecords, 1)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		perShard[s] = res
		for _, c := range res.Closed {
			if c.Items.Key() == "0" {
				t.Fatalf("shard %d claims {A} closed locally; the witness is broken", s)
			}
		}
	}
	got := MergeClosed(perShard, tidsets, numRecords, 1)
	foundA := false
	for _, c := range got.Closed {
		if c.Items.Key() == "0" {
			foundA = true
			if c.Support != 4 {
				t.Fatalf("{A} merged with support %d, want 4", c.Support)
			}
		}
	}
	if !foundA {
		t.Fatal("closure merge lost the globally closed set {A}")
	}
	want, err := charm.MineTidsets(tidsets, numRecords, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Closed) != len(want.Closed) {
		t.Fatalf("merge found %d closed sets, global CHARM %d", len(got.Closed), len(want.Closed))
	}
}
