package colarm

import (
	"context"
	"fmt"
	"time"

	"colarm/internal/delta"
)

// Staleness reports how far an engine's base index has drifted from the
// dataset it answers queries over. Queries remain exact at any
// staleness — buffered transactions are merged into every answer — but
// each one pays a delta overhead, and once that accumulated overhead
// crosses the amortized cost of a rebuild, Rebuild is the cheaper path.
type Staleness struct {
	// BufferedRows counts records inserted since the index was built
	// (minus any that were deleted again).
	BufferedRows int
	// Tombstones counts records deleted since the index was built.
	Tombstones int
	// Version increments on every accepted Ingest batch; 0 means the
	// index is fresh.
	Version uint64
	// Generation counts full rebuilds since the engine was opened.
	Generation uint64
	// Overhead is the accumulated estimated extra query cost paid to
	// the delta since the last build.
	Overhead time.Duration
	// RebuildCost is the amortized one-rebuild cost the overhead is
	// weighed against (measured from the last build).
	RebuildCost time.Duration
	// RebuildRecommended reports that buffering now costs more than
	// rebuilding: the cost-based refresh policy's break-even point.
	RebuildRecommended bool
	// Shards breaks the drift down per shard on a sharded engine
	// (Options.Shards >= 2); nil on a monolithic one. The per-shard
	// BufferedRows and Tombstones sum to the global counters above.
	Shards []ShardStaleness
}

// ShardStaleness is one shard's slice of a sharded engine's drift.
type ShardStaleness struct {
	// Shard is the shard number in [0, K).
	Shard int
	// Records counts the live records the shard currently owns.
	Records int
	// BufferedRows counts live buffered inserts routed to this shard.
	BufferedRows int
	// Tombstones counts deletions of records this shard owns.
	Tombstones int
	// Version ticks on every ingest batch touching the shard.
	Version uint64
}

// Ingest buffers live transactions — inserts and deletes — without
// rebuilding the index. Each insert maps every attribute name to a
// value label from the frozen vocabulary (ingest cannot introduce new
// attributes or values; that requires building a new engine from raw
// data). Deletes name record ids: 0..NumRecords()-1 for base records,
// then ids assigned to inserts in arrival order; a deleted id is never
// reused. The batch is atomic — it is validated in full and either
// applied entirely or rejected without effect.
//
// Subsequent queries answer over the merged dataset exactly, at a small
// per-query overhead; the returned Staleness reports the accumulated
// drift and whether a Rebuild now pays for itself.
func (e *Engine) Ingest(inserts []map[string]string, deletes []int) (Staleness, error) {
	return e.IngestContext(context.Background(), inserts, deletes)
}

// IngestContext is Ingest under a context. Buffering is cheap (no
// mining happens), so the context is only consulted at entry.
func (e *Engine) IngestContext(ctx context.Context, inserts []map[string]string, deletes []int) (Staleness, error) {
	if err := ctx.Err(); err != nil {
		return e.Staleness(), err
	}
	rows, err := e.resolveRows(inserts)
	if err != nil {
		return e.Staleness(), err
	}
	st, err := e.eng.Ingest(rows, deletes)
	return e.wrapStaleness(st), err
}

// resolveRows maps label-form records onto value-index rows, rejecting
// anything outside the engine's frozen vocabulary.
func (e *Engine) resolveRows(inserts []map[string]string) ([][]int32, error) {
	rel := e.ds.rel
	n := rel.NumAttrs()
	rows := make([][]int32, 0, len(inserts))
	for i, rec := range inserts {
		row := make([]int32, n)
		seen := make([]bool, n)
		for name, label := range rec {
			ai := rel.AttrIndex(name)
			if ai < 0 {
				return nil, fmt.Errorf("colarm: insert %d: %w: %q", i, ErrUnknownAttribute, name)
			}
			v := rel.Attrs[ai].ValueIndex(label)
			if v < 0 {
				return nil, fmt.Errorf("colarm: insert %d: %w: attribute %q has no value %q", i, ErrUnknownValue, name, label)
			}
			row[ai], seen[ai] = int32(v), true
		}
		for ai := 0; ai < n; ai++ {
			if !seen[ai] {
				return nil, fmt.Errorf("colarm: insert %d: missing attribute %q", i, rel.Attrs[ai].Name)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Staleness reports the engine's current drift from its merged dataset.
func (e *Engine) Staleness() Staleness {
	return e.wrapStaleness(e.eng.Staleness())
}

func (e *Engine) wrapStaleness(st delta.Staleness) Staleness {
	out := Staleness{
		BufferedRows:       st.BufferedRows,
		Tombstones:         st.Tombstones,
		Version:            st.Version,
		Generation:         e.gen,
		Overhead:           st.Overhead,
		RebuildCost:        st.RebuildCost,
		RebuildRecommended: st.RebuildRecommended,
	}
	for _, ss := range e.eng.ShardStats() {
		out.Shards = append(out.Shards, ShardStaleness{
			Shard:        ss.Shard,
			Records:      ss.Records,
			BufferedRows: ss.BufferedRows,
			Tombstones:   ss.Tombstones,
			Version:      ss.Version,
		})
	}
	return out
}

// Generation counts full rebuilds since the engine was opened (0 for a
// freshly opened engine).
func (e *Engine) Generation() uint64 { return e.gen }

// Rebuild runs the offline phase over the merged dataset — base records
// minus deletions plus buffered inserts — and returns a fresh engine
// with an empty delta and an incremented generation. The receiver is
// left untouched and stays fully queryable, so callers can rebuild in
// the background and swap engines atomically when done.
func (e *Engine) Rebuild(ctx context.Context) (*Engine, error) {
	fresh, err := e.eng.Rebuild(ctx)
	if err != nil {
		return nil, err
	}
	return &Engine{
		eng:           fresh,
		ds:            &Dataset{rel: fresh.Index.Dataset},
		trackAccuracy: e.trackAccuracy,
		opts:          e.opts,
		gen:           e.gen + 1,
	}, nil
}
