// Plan explorer: run the same localized query through all six execution
// plans, compare the measured costs against the optimizer's estimates,
// and show which plan COLARM selects as the focal subset shrinks. This
// is a miniature of the paper's Figures 9-11 experiment.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"colarm"
)

func main() {
	fmt.Println("generating chess-like dataset (3196 records)...")
	ds, err := colarm.GenerateChess(1)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := colarm.Open(ds, colarm.Options{
		PrimarySupport: 0.70, // a notch above the paper's 60% keeps this demo snappy
		Calibrate:      true, // tune the cost model to this machine
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index holds %d partitions\n", eng.NumPartitions())

	// Three focal subsets of decreasing size, selected by restricting
	// more and more attributes.
	subsets := []struct {
		label string
		rng   map[string][]string
	}{
		{"~50% of D", map[string][]string{"f00": {"f000"}}},
		{"~25% of D", map[string][]string{"f00": {"f000"}, "f01": {"f010"}}},
		{"~6% of D", map[string][]string{
			"f00": {"f000"}, "f01": {"f010"}, "f02": {"f020"}, "f03": {"f030"}}},
	}
	allPlans := []colarm.Plan{colarm.SEV, colarm.SVS, colarm.SSEV, colarm.SSVS, colarm.SSEUV, colarm.ARM}

	for _, sub := range subsets {
		base := colarm.Query{
			Range:         sub.rng,
			MinSupport:    0.85,
			MinConfidence: 0.90,
			MaxConsequent: 1,
		}
		// Optimizer estimates first.
		ests, err := eng.Explain(base)
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(ests, func(i, j int) bool { return ests[i].Cost < ests[j].Cost })
		chosen := ests[0].Plan

		fmt.Printf("\nfocal subset %s, minsupp 85%%, minconf 90%% — COLARM picks %s\n", sub.label, chosen)
		fmt.Printf("  %-10s %12s %12s %10s\n", "plan", "estimated", "measured", "rules")
		for _, p := range allPlans {
			q := base
			q.Plan = p
			start := time.Now()
			res, err := eng.Mine(q)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			est := "-"
			for _, e := range ests {
				if e.Plan == p {
					est = fmt.Sprintf("%.2fms", e.Cost/1e6)
				}
			}
			marker := ""
			if p == chosen {
				marker = "  <-- chosen"
			}
			fmt.Printf("  %-10s %12s %12s %10d%s\n",
				p, est, fmt.Sprintf("%.2fms", float64(elapsed.Microseconds())/1000), len(res.Rules), marker)
		}
	}
}
