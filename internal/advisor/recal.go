package advisor

import (
	"math"
	"time"

	"colarm/internal/cost"
)

// TermObservation is one traced operator span paired with the executed
// plan's predicted-cost decomposition for that operator: the predicted
// cost under any units u is Coeff · u.
type TermObservation struct {
	Operator string
	Coeff    [cost.NumUnits]float64
	Measured time.Duration
}

// ChoiceObservation is one all-plans evaluation: per plan (in
// plans.Kinds order) the total-cost coefficient vector and the measured
// execution time, plus the applicability gate's verdict for the query.
// Coefficient vectors are unit-independent, so the same observation
// replays the optimizer's argmin under any candidate units.
type ChoiceObservation struct {
	Coeffs        [][cost.NumUnits]float64
	Measured      []time.Duration
	ARMIndex      int  // position of the ARM plan in the slices
	MIPApplicable bool // whether the gate allowed MIP-backed plans
}

// UnitDrift is one unit's calibration state.
type UnitDrift struct {
	Unit   string
	Static float64
	Live   float64
	// Bias is the EWMA of log(measured/predicted) attributed to this
	// unit against the static reference; exp(Bias) is the correction
	// factor the evidence asks for.
	Bias float64
	// Weight is the accumulated attribution weight — the effective
	// sample count behind the bias.
	Weight float64
}

// GuardrailReport describes one guardrail replay.
type GuardrailReport struct {
	// Evaluated is false when no replay ran (drift not persistent yet,
	// or no logged evaluations to replay).
	Evaluated bool
	// Window is the number of logged choice evaluations replayed.
	Window int
	// WorstRegret is the largest fraction by which a candidate-units
	// choice's measured cost exceeded the static-units choice's.
	WorstRegret float64
	Tolerance   float64
	Passed      bool
}

// CalibrationReport is the recalibrator's full state after one
// Recalibrate evaluation (or a read-only snapshot).
type CalibrationReport struct {
	Static    cost.Units
	Live      cost.Units
	Candidate cost.Units
	// DriftScore is the largest absolute log-gap between the live units
	// and the evidence's candidate units; 0 means predictions are
	// unbiased (or just swapped).
	DriftScore float64
	// Samples counts attributed operator observations so far.
	Samples int
	// Streak counts consecutive Recalibrate evaluations with the drift
	// above threshold.
	Streak int
	// Swapped reports that this evaluation swapped the live units.
	Swapped   bool
	Swaps     uint64
	LastSwap  time.Time // zero if never swapped
	Units     []UnitDrift
	Guardrail GuardrailReport
}

// recalibrator is the units side of the advisor. All methods are called
// under the advisor's lock.
type recalibrator struct {
	cfg    Config
	static cost.Units
	live   cost.Units

	bias    [cost.NumUnits]float64
	weight  [cost.NumUnits]float64
	samples int
	streak  int

	swaps    uint64
	lastSwap time.Time

	replay []ChoiceObservation // ring, newest last
}

func (r *recalibrator) init(static cost.Units, cfg Config) {
	if static == (cost.Units{}) {
		static = cost.DefaultUnits()
	}
	r.cfg = cfg
	r.static = static
	r.live = static
}

// observeTerm attributes one operator's measured-vs-predicted log-ratio
// to the units proportionally to each unit's share of the operator's
// predicted cost under the static reference.
func (r *recalibrator) observeTerm(t TermObservation) {
	predicted := 0.0
	sv := r.static.Vec()
	for i, c := range t.Coeff {
		predicted += c * sv[i]
	}
	if predicted <= 0 || t.Measured <= 0 {
		return
	}
	lr := math.Log(float64(t.Measured.Nanoseconds()) / predicted)
	// One pathological span (a scheduler stall, a cold cache) must not
	// yank the bias; clamp the per-observation ratio to 8x either way.
	const clamp = 2.0794415416798357 // ln 8
	if lr > clamp {
		lr = clamp
	} else if lr < -clamp {
		lr = -clamp
	}
	for i := range t.Coeff {
		share := t.Coeff[i] * sv[i] / predicted
		if share <= 0 {
			continue
		}
		a := r.cfg.Alpha * share
		r.bias[i] += a * (lr - r.bias[i])
		r.weight[i] += share
	}
	r.samples++
}

func (r *recalibrator) observeChoice(c ChoiceObservation) {
	if len(c.Coeffs) == 0 || len(c.Coeffs) != len(c.Measured) {
		return
	}
	r.replay = append(r.replay, c)
	if over := len(r.replay) - r.cfg.ReplayWindow; over > 0 {
		r.replay = append(r.replay[:0], r.replay[over:]...)
	}
}

// candidate derives the units the accumulated evidence asks for:
// static units corrected by each unit's bias factor, with units that
// have essentially no attribution weight left untouched.
func (r *recalibrator) candidate() cost.Units {
	v := r.static.Vec()
	for i := range v {
		if r.weight[i] >= 1 {
			v[i] *= math.Exp(r.bias[i])
		}
	}
	return cost.UnitsFromVec(v)
}

// driftScore measures how far the live units sit from the candidate:
// the largest absolute per-unit log-gap, over units with evidence.
func (r *recalibrator) driftScore() float64 {
	lv, cv := r.live.Vec(), r.candidate().Vec()
	score := 0.0
	for i := range lv {
		if r.weight[i] < 1 || lv[i] <= 0 || cv[i] <= 0 {
			continue
		}
		if g := math.Abs(math.Log(cv[i] / lv[i])); g > score {
			score = g
		}
	}
	return score
}

// replayChoice returns the measured duration of the plan the argmin
// over the coefficient vectors picks under the given units, honoring
// the applicability gate exactly as choosePlan does.
func replayChoice(c ChoiceObservation, u cost.Units) time.Duration {
	uv := u.Vec()
	best, bestCost := 0, math.Inf(1)
	for p, coeff := range c.Coeffs {
		total := 0.0
		for i, x := range coeff {
			total += x * uv[i]
		}
		if total < bestCost {
			best, bestCost = p, total
		}
	}
	if !c.MIPApplicable && best != c.ARMIndex {
		best = c.ARMIndex
	}
	return c.Measured[best]
}

// guardrail replays every logged choice under the candidate units and
// verifies no choice's measured cost regresses beyond the tolerance
// against the static-units choice — the differential that keeps
// recalibration from ever trading the accuracy baseline away.
func (r *recalibrator) guardrail(cand cost.Units) GuardrailReport {
	rep := GuardrailReport{Evaluated: true, Tolerance: r.cfg.GuardrailTolerance, Window: len(r.replay)}
	if len(r.replay) == 0 {
		// No evidence to clear the candidate on: refuse the swap rather
		// than swap blind.
		return rep
	}
	rep.Passed = true
	for _, c := range r.replay {
		staticT := replayChoice(c, r.static)
		candT := replayChoice(c, cand)
		if staticT <= 0 {
			continue
		}
		regret := float64(candT-staticT) / float64(staticT)
		if regret > rep.WorstRegret {
			rep.WorstRegret = regret
		}
		if regret > rep.Tolerance {
			rep.Passed = false
		}
	}
	return rep
}

func (r *recalibrator) recalibrate(now time.Time) CalibrationReport {
	drift := r.driftScore()
	if drift >= r.cfg.DriftThreshold && r.samples >= r.cfg.MinSamples {
		r.streak++
	} else {
		r.streak = 0
	}
	rep := r.report(false)
	if r.streak < r.cfg.BiasStreak {
		return rep
	}
	cand := r.candidate()
	rep.Guardrail = r.guardrail(cand)
	if !rep.Guardrail.Passed {
		return rep
	}
	r.live = cand
	r.swaps++
	r.lastSwap = now
	r.streak = 0
	rep = r.report(true)
	rep.Guardrail = GuardrailReport{Evaluated: true, Tolerance: r.cfg.GuardrailTolerance, Window: len(r.replay), Passed: true}
	return rep
}

func (r *recalibrator) report(swapped bool) CalibrationReport {
	rep := CalibrationReport{
		Static:     r.static,
		Live:       r.live,
		Candidate:  r.candidate(),
		DriftScore: r.driftScore(),
		Samples:    r.samples,
		Streak:     r.streak,
		Swapped:    swapped,
		Swaps:      r.swaps,
		LastSwap:   r.lastSwap,
	}
	names := cost.UnitNames()
	sv, lv := r.static.Vec(), r.live.Vec()
	for i := range names {
		rep.Units = append(rep.Units, UnitDrift{
			Unit:   names[i],
			Static: sv[i],
			Live:   lv[i],
			Bias:   r.bias[i],
			Weight: r.weight[i],
		})
	}
	return rep
}
