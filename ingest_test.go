package colarm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"colarm/internal/datagen"
)

// TestIngestDifferentialRebuild is the exactness proof for live
// ingestion: after every ingest batch (random inserts and tombstone
// deletes), each of the six plans executed against the stale engine —
// base index plus delta view — must return rules byte-identical to a
// from-scratch rebuild over the merged dataset. Interleavings are
// randomized; across trials this exercises well over a hundred distinct
// ingest/query interleavings.
func TestIngestDifferentialRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	interleavings, totalRules := 0, 0
	for trial := 0; trial < 6; trial++ {
		cfg := randomDiffConfig(rng, 100+trial)
		d, err := datagen.Generate(cfg)
		if err != nil {
			t.Fatalf("trial %d: generate: %v", trial, err)
		}
		ds := &Dataset{rel: d}
		primary := 0.15 + 0.2*rng.Float64()
		eng, err := Open(ds, Options{PrimarySupport: primary})
		if err != nil {
			t.Fatalf("trial %d: open: %v", trial, err)
		}

		attrs := ds.Attributes()
		vocab := make(map[string][]string, len(attrs))
		for _, a := range attrs {
			vocab[a], _ = ds.Values(a)
		}
		liveIDs := make([]int, d.NumRecords())
		for i := range liveIDs {
			liveIDs[i] = i
		}
		nextID := d.NumRecords()

		for step := 0; step < 4; step++ {
			// Random ingest batch: a few inserts drawn from the frozen
			// vocabulary, sometimes a few deletes of currently live ids.
			var inserts []map[string]string
			for i := 0; i < 1+rng.Intn(6); i++ {
				rec := make(map[string]string, len(attrs))
				for _, a := range attrs {
					rec[a] = vocab[a][rng.Intn(len(vocab[a]))]
				}
				inserts = append(inserts, rec)
			}
			var deletes []int
			if rng.Intn(2) == 0 && len(liveIDs) > 10 {
				for i := 0; i < 1+rng.Intn(3); i++ {
					j := rng.Intn(len(liveIDs))
					deletes = append(deletes, liveIDs[j])
					liveIDs = append(liveIDs[:j], liveIDs[j+1:]...)
				}
			}
			st, err := eng.Ingest(inserts, deletes)
			if err != nil {
				t.Fatalf("trial %d step %d: ingest: %v", trial, step, err)
			}
			for range inserts {
				liveIDs = append(liveIDs, nextID)
				nextID++
			}
			if st.Version != uint64(step+1) {
				t.Fatalf("trial %d step %d: staleness version %d, want %d", trial, step, st.Version, step+1)
			}

			// The independent ground truth: a full offline rebuild over
			// the merged dataset.
			rebuilt, err := eng.Rebuild(context.Background())
			if err != nil {
				t.Fatalf("trial %d step %d: rebuild: %v", trial, step, err)
			}
			if got, want := rebuilt.Dataset().NumRecords(), len(liveIDs); got != want {
				t.Fatalf("trial %d step %d: rebuilt dataset has %d records, want %d live", trial, step, got, want)
			}
			if rebuilt.Generation() != eng.Generation()+1 {
				t.Fatalf("trial %d step %d: rebuild generation %d, want %d", trial, step, rebuilt.Generation(), eng.Generation()+1)
			}
			if rst := rebuilt.Staleness(); rst.BufferedRows != 0 || rst.Tombstones != 0 || rst.Version != 0 {
				t.Fatalf("trial %d step %d: rebuilt engine not fresh: %+v", trial, step, rst)
			}

			for qi := 0; qi < 2; qi++ {
				q := randomDiffQuery(rng, ds)
				interleavings++
				for _, plan := range []Plan{SEV, SVS, SSEV, SSVS, SSEUV, ARM, Auto} {
					pq := q
					pq.Plan = plan
					label := fmt.Sprintf("trial %d step %d query %d plan %s (%+v, primary %.3f)",
						trial, step, qi, plan, q, primary)
					stale, err := eng.Mine(pq)
					if err != nil {
						t.Fatalf("%s: stale engine: %v", label, err)
					}
					fresh, err := rebuilt.Mine(pq)
					if err != nil {
						t.Fatalf("%s: rebuilt engine: %v", label, err)
					}
					if !reflect.DeepEqual(stale.Rules, fresh.Rules) {
						t.Fatalf("%s: base+delta rules diverge from rebuild\nstale: %v\nfresh: %v",
							label, stale.Rules, fresh.Rules)
					}
					totalRules += len(stale.Rules)
				}
			}
		}
		if st := eng.Staleness(); st.Overhead <= 0 {
			t.Fatalf("trial %d: no delta overhead accumulated after queries on a stale engine", trial)
		}
	}
	if interleavings*7 < 100 {
		t.Fatalf("only %d plan comparisons ran; the interleaving coverage is too thin", interleavings*7)
	}
	if totalRules == 0 {
		t.Fatal("no comparison produced any rules; the differential is vacuous")
	}
}

// TestIngestValidation checks the vocabulary freeze and id-space
// validation, and that a rejected batch leaves the store untouched.
func TestIngestValidation(t *testing.T) {
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(ds, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	rec := func() map[string]string {
		m := make(map[string]string)
		for _, a := range ds.Attributes() {
			vals, _ := ds.Values(a)
			m[a] = vals[0]
		}
		return m
	}

	bad := rec()
	bad["Location"] = "Atlantis"
	if _, err := eng.Ingest([]map[string]string{bad}, nil); !errors.Is(err, ErrUnknownValue) {
		t.Fatalf("unknown value: got %v, want ErrUnknownValue", err)
	}
	bad = rec()
	bad["Nonexistent"] = "x"
	if _, err := eng.Ingest([]map[string]string{bad}, nil); !errors.Is(err, ErrUnknownAttribute) {
		t.Fatalf("unknown attribute: got %v, want ErrUnknownAttribute", err)
	}
	incomplete := rec()
	delete(incomplete, "Location")
	if _, err := eng.Ingest([]map[string]string{incomplete}, nil); err == nil {
		t.Fatal("missing attribute accepted")
	}
	if _, err := eng.Ingest(nil, []int{ds.NumRecords() + 5}); !errors.Is(err, ErrBadRecordID) {
		t.Fatalf("out-of-range delete: got %v, want ErrBadRecordID", err)
	}
	if st := eng.Staleness(); st.Version != 0 || st.BufferedRows != 0 || st.Tombstones != 0 {
		t.Fatalf("rejected batches mutated the store: %+v", st)
	}

	// A valid batch: one insert, one delete, atomically versioned.
	st, err := eng.Ingest([]map[string]string{rec()}, []int{0})
	if err != nil {
		t.Fatalf("valid batch: %v", err)
	}
	if st.Version != 1 || st.BufferedRows != 1 || st.Tombstones != 1 {
		t.Fatalf("staleness after one batch: %+v", st)
	}
	// Deleting the buffered insert (id = base record count) works too.
	st, err = eng.Ingest(nil, []int{ds.NumRecords()})
	if err != nil {
		t.Fatalf("delete buffered row: %v", err)
	}
	if st.BufferedRows != 0 || st.Tombstones != 2 {
		t.Fatalf("staleness after deleting the buffered row: %+v", st)
	}
}
