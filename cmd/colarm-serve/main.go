// Command colarm-serve is the COLARM query service: it builds (or
// loads) MIP-indexes for a set of named datasets at startup, then
// serves localized mining queries over HTTP with per-request deadlines,
// admission control and a canonical-form result cache.
//
// Usage:
//
//	colarm-serve -datasets salary,chess [flags]
//	colarm-serve -snapshot sales=/data/sales.idx -snapshot web=/data/web.idx
//
//	-addr ADDR        listen address (default :8080)
//	-datasets LIST    comma-separated builtin datasets to build at
//	                  startup: salary, chess, mushroom, pumsb
//	-snapshot N=P     load the index snapshot at path P as dataset N
//	                  (repeatable; written by Engine.SaveFile)
//	-csv PATH         build an index over a headed CSV file (repeatable;
//	                  dataset name = file base name)
//	-primary P        primary support for -csv datasets (default 0.1;
//	                  builtins use their per-dataset defaults)
//	-seed N           generator seed for builtin synthetic datasets
//	-workers N        per-query worker pool bound (0 = GOMAXPROCS)
//	-calibrate        micro-benchmark the cost model's unit costs
//	-shards K         hash-partition each dataset into K shards; queries
//	                  scatter-gather with exact recombination and
//	                  /v1/datasets reports per-shard staleness (0 or 1 =
//	                  monolithic)
//	-max-inflight N   concurrent mining queries (default 8)
//	-max-queue N      admission wait-queue length (default 32)
//	-queue-wait D     max time in the admission queue (default 2s)
//	-query-timeout D  per-query deadline (default 30s)
//	-cache-entries N  result-cache capacity (default 4096, -1 disables)
//	-cache-ttl D      result-cache entry lifetime (default 5m)
//
//	-max-subscriptions N  standing-query subscriptions served at once
//	                      (default 1024)
//	-sub-buffer N         buffered events per subscription before a slow
//	                      consumer is evicted (default 256)
//	-sse-heartbeat D      idle-stream SSE heartbeat interval (default 15s)
//
//	-advisor-interval D   run the self-tuning policy loop: every D each
//	                      engine gets one cost-recalibration evaluation
//	                      (unit swaps stay guardrail-gated); 0 disables
//	                      the loop, the advisor endpoints work regardless
//	-advisor-auto-apply   additionally let the loop apply the index
//	                      advisor's recommendations, building/dropping
//	                      secondary indexes the workload pays for
//
// Endpoints: POST /v1/mine, POST /v1/explain, POST /v1/ingest,
// GET /v1/datasets, GET /v1/datasets/{name},
// GET /v1/datasets/{name}/advisor, POST /v1/datasets/{name}/advisor/apply,
// POST/GET /v1/subscriptions, GET/DELETE /v1/subscriptions/{id},
// GET /v1/subscriptions/{id}/events (SSE or long-poll), GET /metrics,
// GET /debug/pprof/. The full surface is documented in api/openapi.yaml. Ingested transactions are buffered
// in each engine's delta store and merged into every subsequent answer
// (queries stay exact while the index ages); when the accumulated delta
// overhead crosses the rebuild cost, the server rebuilds the index in
// the background and swaps it in, bumping the dataset's generation.
// Standing subscriptions receive incremental rule diffs as batches
// land. Wrong-method requests on /v1 routes get a JSON 405 with an
// Allow header; every error response carries the structured envelope.
// See the README's Serving, Ingestion and Standing queries sections for
// request examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"colarm"
	"colarm/internal/server"
)

// listFlag collects a repeatable string flag.
type listFlag []string

func (f *listFlag) String() string     { return strings.Join(*f, ",") }
func (f *listFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		datasets = flag.String("datasets", "", "comma-separated builtin datasets (salary, chess, mushroom, pumsb)")
		primary  = flag.Float64("primary", 0.1, "primary support for -csv datasets")
		seed     = flag.Int64("seed", 1, "generator seed for builtin synthetic datasets")
		workers  = flag.Int("workers", 0, "per-query worker pool bound (0 = GOMAXPROCS)")
		calib    = flag.Bool("calibrate", false, "micro-benchmark the cost model's unit costs")
		shards   = flag.Int("shards", 0, "hash-partition each dataset into K shards (0 or 1 = monolithic)")

		maxInFlight  = flag.Int("max-inflight", 0, "concurrent mining queries (0 = default 8)")
		maxQueue     = flag.Int("max-queue", 0, "admission wait-queue length (0 = default 32)")
		queueWait    = flag.Duration("queue-wait", 0, "max time in the admission queue (0 = default 2s)")
		queryTimeout = flag.Duration("query-timeout", 0, "per-query deadline (0 = default 30s, negative disables)")
		cacheEntries = flag.Int("cache-entries", 0, "result-cache capacity (0 = default 4096, negative disables)")
		cacheTTL     = flag.Duration("cache-ttl", 0, "result-cache entry lifetime (0 = default 5m)")

		maxSubs      = flag.Int("max-subscriptions", 0, "standing-query subscriptions served at once (0 = default 1024)")
		subBuffer    = flag.Int("sub-buffer", 0, "buffered events per subscription before slow-consumer eviction (0 = default 256)")
		sseHeartbeat = flag.Duration("sse-heartbeat", 0, "idle-stream SSE heartbeat interval (0 = default 15s)")

		advisorInterval  = flag.Duration("advisor-interval", 0, "self-tuning policy loop interval (0 disables; endpoints work regardless)")
		advisorAutoApply = flag.Bool("advisor-auto-apply", false, "let the policy loop build/drop the secondary indexes the workload pays for")
	)
	var snapshots, csvs listFlag
	flag.Var(&snapshots, "snapshot", "name=path of an index snapshot to load (repeatable)")
	flag.Var(&csvs, "csv", "headed CSV file to index (repeatable)")
	flag.Parse()

	if err := run(*addr, *datasets, snapshots, csvs, *primary, *seed, *workers, *calib, *shards, server.Config{
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		QueueWait:    *queueWait,
		QueryTimeout: *queryTimeout,
		CacheEntries: *cacheEntries,
		CacheTTL:     *cacheTTL,

		MaxSubscriptions:   *maxSubs,
		SubscriptionBuffer: *subBuffer,
		SSEHeartbeat:       *sseHeartbeat,

		AdvisorInterval:  *advisorInterval,
		AdvisorAutoApply: *advisorAutoApply,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "colarm-serve:", err)
		os.Exit(1)
	}
}

func run(addr, datasets string, snapshots, csvs []string, primary float64, seed int64, workers int, calibrate bool, shards int, cfg server.Config) error {
	metrics := colarm.NewMetricsRegistry()
	opts := colarm.Options{Workers: workers, Calibrate: calibrate, Metrics: metrics, Shards: shards}
	reg := server.NewRegistry()
	registered := 0

	for _, name := range strings.Split(datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		ds, defPrimary, err := builtinDataset(name, seed)
		if err != nil {
			return err
		}
		o := opts
		o.PrimarySupport = defPrimary
		if err := open(reg, ds, o); err != nil {
			return fmt.Errorf("dataset %s: %w", name, err)
		}
		registered++
	}
	for _, spec := range snapshots {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -snapshot %q (want name=path)", spec)
		}
		start := time.Now()
		eng, err := colarm.LoadEngineFile(path, opts)
		if err != nil {
			return fmt.Errorf("snapshot %s: %w", name, err)
		}
		if got := eng.Dataset().Name(); got != name {
			return fmt.Errorf("snapshot %s: holds dataset %q", path, got)
		}
		reg.Register(eng)
		fmt.Fprintf(os.Stderr, "loaded %q from %s: %d partitions in %s\n",
			name, path, eng.NumPartitions(), time.Since(start).Round(time.Millisecond))
		registered++
	}
	for _, path := range csvs {
		ds, err := colarm.LoadCSV(path)
		if err != nil {
			return fmt.Errorf("csv %s: %w", path, err)
		}
		o := opts
		o.PrimarySupport = primary
		if err := open(reg, ds, o); err != nil {
			return fmt.Errorf("csv %s: %w", filepath.Base(path), err)
		}
		registered++
	}
	if registered == 0 {
		return fmt.Errorf("nothing to serve: pass -datasets, -snapshot or -csv")
	}

	cfg.EngineMetrics = metrics
	srv := server.New(reg, cfg)
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving %d dataset(s) on %s\n", registered, addr)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}

func open(reg *server.Registry, ds *colarm.Dataset, opts colarm.Options) error {
	start := time.Now()
	eng, err := colarm.Open(ds, opts)
	if err != nil {
		return err
	}
	reg.Register(eng)
	fmt.Fprintf(os.Stderr, "built %q (%d records, %d attributes): %d partitions in %s\n",
		ds.Name(), ds.NumRecords(), ds.NumAttributes(), eng.NumPartitions(),
		time.Since(start).Round(time.Millisecond))
	return nil
}

func builtinDataset(name string, seed int64) (*colarm.Dataset, float64, error) {
	switch name {
	case "salary":
		ds, err := colarm.Salary()
		return ds, 0.18, err
	case "chess":
		ds, err := colarm.GenerateChess(seed)
		return ds, 0.60, err
	case "mushroom":
		ds, err := colarm.GenerateMushroom(seed)
		return ds, 0.05, err
	case "pumsb":
		ds, err := colarm.GeneratePUMSB(seed)
		return ds, 0.80, err
	default:
		return nil, 0, fmt.Errorf("unknown builtin dataset %q", name)
	}
}
