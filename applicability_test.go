package colarm

import (
	"reflect"
	"testing"

	"colarm/internal/relation"
)

// TestAutoFallsBackWhenInapplicable pins the optimizer's applicability
// gate. The dataset plants a pattern (a1=in, a2=in) that is frequent
// only inside the focal subset a0=grp: 4 of the subset's 5 records
// carry it, but 4 of 20 records globally sits below the 30% primary
// support, so no CFI records the pattern and every MIP-backed plan
// misses its rules. Auto must therefore execute ARM — the cost argmin
// is irrelevant when it names an incomplete plan — and return exactly
// ARM's answer.
func TestAutoFallsBackWhenInapplicable(t *testing.T) {
	b := relation.NewBuilder("localized", "a0", "a1", "a2")
	add := func(vals ...string) {
		t.Helper()
		if err := b.AddRecord(vals...); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		add("grp", "in", "in")
	}
	add("grp", "out", "out")
	// The background rows keep (in, in) globally infrequent while giving
	// the primary miner plenty of frequent structure elsewhere.
	for i := 0; i < 15; i++ {
		add("rest", "out", "out")
	}
	ds := &Dataset{rel: b.Build()}
	eng, err := Open(ds, Options{PrimarySupport: 0.30})
	if err != nil {
		t.Fatal(err)
	}

	q := Query{
		Range:         map[string][]string{"a0": {"grp"}},
		MinSupport:    0.5,
		MinConfidence: 0.5,
	}
	arm := q
	arm.Plan = ARM
	want, err := eng.Mine(arm)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rules) == 0 {
		t.Fatal("ARM found no rules; the localized pattern is missing and the scenario is vacuous")
	}

	got, err := eng.Mine(q) // Plan defaults to Auto
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Plan != ARM {
		t.Errorf("auto chose %s for an inapplicable query, want ARM", got.Stats.Plan)
	}
	if !reflect.DeepEqual(got.Rules, want.Rules) {
		t.Errorf("auto rules diverge from ARM\nauto: %v\narm:  %v", got.Rules, want.Rules)
	}

	// Sanity: the MIP plans really are blind to the localized pattern
	// here — that blindness is what the gate exists to route around.
	sev := q
	sev.Plan = SEV
	mip, err := eng.Mine(sev)
	if err != nil {
		t.Fatal(err)
	}
	if len(mip.Rules) != 0 {
		t.Errorf("S-E-V found %d rules for a pattern below primary support; the scenario no longer exercises the gate", len(mip.Rules))
	}

	// Widening the focal subset to the full dataset lifts the localized
	// threshold above the primary count, handing the choice back to the
	// cost model; whatever it picks, the answer must match ARM's (all
	// plans are complete in this regime).
	hi := q
	hi.Range = nil
	hiArm := hi
	hiArm.Plan = ARM
	wantHi, err := eng.Mine(hiArm)
	if err != nil {
		t.Fatal(err)
	}
	gotHi, err := eng.Mine(hi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHi.Rules, wantHi.Rules) {
		t.Errorf("applicable-regime auto rules diverge from ARM\nauto: %v\narm:  %v", gotHi.Rules, wantHi.Rules)
	}
}
