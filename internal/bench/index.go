package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"colarm/internal/core"
	"colarm/internal/datagen"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
	"colarm/internal/mip"
	"colarm/internal/plans"
	"colarm/internal/rtree"
)

// The index benchmark measures the physical layers of the MIP-index in
// isolation, flat (arena-packed slabs) against pointer (node-per-CFI)
// layout: closure resolution on the IT-tree, exact lookup (the flat
// layout's open-addressed item-word hash against the pointer layout's
// string-keyed map), supported R-tree region probes, per-shard physical
// index build cost, and the consolidation pause of a sharded engine.
// The consolidation rows share the shards benchmark's workload shape so
// BENCH_<pr>.json artifacts stay comparable across PRs.

// IndexKernelRow is one layout's timing for one kernel. The minimum
// total across rounds is reported, in the tidset benchmark's style.
type IndexKernelRow struct {
	Layout  string  `json:"layout"`
	Impl    string  `json:"impl"` // what the layout resolves with
	Ops     int     `json:"ops"`
	TotalNs int64   `json:"total_ns"`
	NsPerOp float64 `json:"ns_per_op"`
}

// ShardIndexRow aggregates the per-shard physical index builds a
// consolidation performed.
type ShardIndexRow struct {
	Shards int `json:"shards"`
	// IndexedCFIs sums the local CFIs over all shard indexes.
	IndexedCFIs int `json:"indexed_cfis"`
	// TotalBuildNs sums every shard's physical build (mining + IT-tree
	// + boxes + R-tree); MaxShardBuildNs is the slowest single shard —
	// the critical path when builds run on parallel workers.
	TotalBuildNs    int64 `json:"total_build_ns"`
	MaxShardBuildNs int64 `json:"max_shard_build_ns"`
}

// ConsolidationRow is the rebuild pause of one shard count, directly
// comparable to the shards benchmark's rebuild_pause_ns.
type ConsolidationRow struct {
	Shards         int   `json:"shards"`
	Workers        int   `json:"workers"`
	RebuildPauseNs int64 `json:"rebuild_pause_ns"`
}

// IndexReport is the serialized artifact (BENCH_<pr>.json).
type IndexReport struct {
	Bench     string `json:"bench"`
	PR        int    `json:"pr"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Dataset   string `json:"dataset"`
	Records   int    `json:"records"`
	MIPs      int    `json:"mips"`

	Closure    []IndexKernelRow `json:"closure"`
	Lookup     []IndexKernelRow `json:"lookup"`
	RTreeProbe []IndexKernelRow `json:"rtree_probe"`

	// ShardIndexBuild rows come from the scatter dataset — a small item
	// space where the closure-merge catalog engages, so consolidations
	// build per-shard physical indexes. Consolidation rows come from
	// the main dataset and stay comparable with the shards benchmark.
	ScatterDataset  string             `json:"scatter_dataset"`
	ScatterRecords  int                `json:"scatter_records"`
	ShardIndexBuild []ShardIndexRow    `json:"shard_index_build"`
	Consolidation   []ConsolidationRow `json:"consolidation"`
}

// scatterSpecConfig is the per-shard index-build workload: an item
// space small enough (6 attrs × 5 values = 30 items ≤ 48) that the
// collection's auto catalog picks the scatter path, with clustered
// records so per-shard threshold-1 mining stays bounded.
func scatterSpecConfig(seed int64) datagen.Config {
	attrs := make([]datagen.AttrSpec, 6)
	for a := range attrs {
		attrs[a] = datagen.AttrSpec{
			Name:        fmt.Sprintf("s%d", a),
			Cardinality: 5,
			Align:       []float64{0.85, 0.75, 0.65},
		}
	}
	return datagen.Config{
		Name:       "scatteridx",
		Records:    6000,
		Attrs:      attrs,
		Clusters:   []float64{0.4, 0.35, 0.25},
		Skew:       0.8,
		Prototypes: 64,
		Seed:       seed,
	}
}

// RunIndex builds the spec's dataset under both layouts and measures
// the physical kernels, then replays the shards benchmark's
// age-and-consolidate cycle for each K in ks.
func RunIndex(spec DatasetSpec, ks []int, probes, iters, batches, batchRows int, seed int64) (*IndexReport, error) {
	if probes < 1 || iters < 1 || batches < 1 || batchRows < 1 {
		return nil, fmt.Errorf("bench: probes (%d), iters (%d), batches (%d) and batch rows (%d) must be positive",
			probes, iters, batches, batchRows)
	}
	env, err := Setup(spec)
	if err != nil {
		return nil, err
	}
	d := env.Dataset
	flat := env.Engine.Index
	if flat.ITTree.Layout() != ittree.FlatLayout {
		return nil, fmt.Errorf("bench: default engine index layout is %v, want flat", flat.ITTree.Layout())
	}
	ptr, err := mip.Build(d, mip.Options{PrimarySupport: spec.Primary, Layout: mip.PointerLayout})
	if err != nil {
		return nil, err
	}

	rep := &IndexReport{
		Bench:     "index",
		PR:        CurrentPR,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Dataset:   spec.Name,
		Records:   d.NumRecords(),
		MIPs:      flat.NumMIPs(),
	}

	rng := rand.New(rand.NewSource(seed))
	closureProbes := closureProbeSets(rng, flat, probes)
	lookupProbes := lookupProbeSets(rng, flat, probes)
	regions := regionProbes(rng, flat.Space, probes)

	impls := map[string]string{"flat": "slab scan (support desc)", "pointer": "per-node child walk"}
	lookupImpls := map[string]string{"flat": "open-addressed item-word hash", "pointer": "string-keyed map"}
	for _, l := range []struct {
		name string
		idx  *mip.Index
	}{{"flat", flat}, {"pointer", ptr}} {
		rep.Closure = append(rep.Closure, timeIndexKernel(l.name, impls[l.name], iters, len(closureProbes), func() int {
			sink := 0
			for _, x := range closureProbes {
				if id, ok := l.idx.ITTree.ClosureID(x); ok {
					sink += id
				}
			}
			return sink
		}))
		rep.Lookup = append(rep.Lookup, timeIndexKernel(l.name, lookupImpls[l.name], iters, len(lookupProbes), func() int {
			sink := 0
			for _, x := range lookupProbes {
				if id, ok := l.idx.ITTree.LookupID(x); ok {
					sink += id
				}
			}
			return sink
		}))
		minCount := l.idx.PrimaryCount
		rep.RTreeProbe = append(rep.RTreeProbe, timeIndexKernel(l.name, "supported region search", iters, len(regions), func() int {
			sink := 0
			for _, reg := range regions {
				l.idx.RTree.SupportedSearch(reg, minCount, func(e rtree.Entry, rel itemset.Rel) bool {
					sink++
					return true
				})
			}
			return sink
		}))
	}

	// Consolidation cycle, the shards benchmark's aging replayed per K:
	// build sharded engine, age it with sampled rows plus occasional
	// tombstones, consolidate, and collect the per-shard physical index
	// builds the consolidation performed.
	for _, k := range ks {
		eng, err := core.NewEngine(d, core.Options{
			PrimarySupport: spec.Primary,
			CheckMode:      plans.ScanCheck,
			Shards:         k,
			Workers:        runtime.GOMAXPROCS(0),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: K=%d: %w", k, err)
		}
		wrng := rand.New(rand.NewSource(seed + int64(k)))
		for b := 0; b < batches; b++ {
			rows := make([][]int32, batchRows)
			for i := range rows {
				r := wrng.Intn(d.NumRecords())
				rec := make([]int32, d.NumAttrs())
				for a := range rec {
					rec[a] = int32(d.Value(r, a))
				}
				rows[i] = rec
			}
			var dels []int
			if wrng.Intn(2) == 0 {
				dels = append(dels, wrng.Intn(d.NumRecords()))
			}
			if _, err := eng.Ingest(rows, dels); err != nil {
				return nil, fmt.Errorf("bench: K=%d ingest: %w", k, err)
			}
		}
		t0 := time.Now()
		if _, err := eng.Rebuild(context.Background()); err != nil {
			return nil, fmt.Errorf("bench: K=%d rebuild: %w", k, err)
		}
		rep.Consolidation = append(rep.Consolidation, ConsolidationRow{
			Shards:         k,
			Workers:        runtime.GOMAXPROCS(0),
			RebuildPauseNs: time.Since(t0).Nanoseconds(),
		})
	}

	// Per-shard physical index builds, on the scatter dataset: the
	// consolidating (old) engine's collection holds the shard indexes
	// the consolidation's pause paid for.
	sd, err := datagen.Generate(scatterSpecConfig(seed))
	if err != nil {
		return nil, err
	}
	rep.ScatterDataset = sd.Name
	rep.ScatterRecords = sd.NumRecords()
	for _, k := range ks {
		if k < 2 {
			continue // monolith: no shards, no per-shard indexes
		}
		eng, err := core.NewEngine(sd, core.Options{
			PrimarySupport: 0.10,
			CheckMode:      plans.ScanCheck,
			Shards:         k,
			Workers:        runtime.GOMAXPROCS(0),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: scatter K=%d: %w", k, err)
		}
		wrng := rand.New(rand.NewSource(seed + 1000 + int64(k)))
		for b := 0; b < batches; b++ {
			rows := make([][]int32, batchRows)
			for i := range rows {
				r := wrng.Intn(sd.NumRecords())
				rec := make([]int32, sd.NumAttrs())
				for a := range rec {
					rec[a] = int32(sd.Value(r, a))
				}
				rows[i] = rec
			}
			if _, err := eng.Ingest(rows, nil); err != nil {
				return nil, fmt.Errorf("bench: scatter K=%d ingest: %w", k, err)
			}
		}
		if _, err := eng.Rebuild(context.Background()); err != nil {
			return nil, fmt.Errorf("bench: scatter K=%d rebuild: %w", k, err)
		}
		stats := eng.ShardStats()
		if stats == nil {
			return nil, fmt.Errorf("bench: scatter K=%d: no shard stats", k)
		}
		row := ShardIndexRow{Shards: k}
		for _, st := range stats {
			row.IndexedCFIs += st.IndexedCFIs
			row.TotalBuildNs += st.IndexBuildNanos
			if st.IndexBuildNanos > row.MaxShardBuildNs {
				row.MaxShardBuildNs = st.IndexBuildNanos
			}
		}
		rep.ShardIndexBuild = append(rep.ShardIndexBuild, row)
	}
	return rep, nil
}

// timeIndexKernel replays fn iters times and keeps the cheapest round.
func timeIndexKernel(layout, impl string, iters, ops int, fn func() int) IndexKernelRow {
	var best time.Duration
	sink := 0
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		sink += fn()
		el := time.Since(t0)
		if i == 0 || el < best {
			best = el
		}
	}
	_ = sink
	return IndexKernelRow{
		Layout:  layout,
		Impl:    impl,
		Ops:     ops,
		TotalNs: best.Nanoseconds(),
		NsPerOp: float64(best.Nanoseconds()) / float64(ops),
	}
}

// closureProbeSets draws itemsets the closure kernel resolves: stored
// CFIs (identity closures), random subsets of stored CFIs (proper
// closures) and random small combinations (often unsupported).
func closureProbeSets(rng *rand.Rand, idx *mip.Index, n int) []itemset.Set {
	out := make([]itemset.Set, 0, n)
	k := idx.ITTree.Size()
	for len(out) < n {
		switch rng.Intn(3) {
		case 0:
			out = append(out, idx.ITTree.Items(rng.Intn(k)))
		case 1:
			items := idx.ITTree.Items(rng.Intn(k))
			sub := append(itemset.Set(nil), items...)
			rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
			sub = sub[:1+rng.Intn(len(sub))]
			out = append(out, itemset.NewSet(sub...))
		default:
			raw := make([]itemset.Item, 1+rng.Intn(3))
			for j := range raw {
				raw[j] = itemset.Item(rng.Intn(idx.Space.NumItems()))
			}
			out = append(out, itemset.NewSet(raw...))
		}
	}
	return out
}

// lookupProbeSets mixes exact hits (stored CFIs) with near misses (one
// item of a stored CFI swapped), the workload the exact index serves
// during delta merges and scatter-gather closure stitching.
func lookupProbeSets(rng *rand.Rand, idx *mip.Index, n int) []itemset.Set {
	out := make([]itemset.Set, 0, n)
	k := idx.ITTree.Size()
	for len(out) < n {
		items := idx.ITTree.Items(rng.Intn(k))
		if rng.Intn(2) == 0 {
			out = append(out, items)
			continue
		}
		mut := append(itemset.Set(nil), items...)
		mut[rng.Intn(len(mut))] = itemset.Item(rng.Intn(idx.Space.NumItems()))
		out = append(out, itemset.NewSet(mut...))
	}
	return out
}

// regionProbes draws random focal regions — one or two attributes
// restricted to contiguous value windows — for the supported R-tree
// search kernel.
func regionProbes(rng *rand.Rand, sp *itemset.Space, n int) []*itemset.Region {
	out := make([]*itemset.Region, 0, n)
	for len(out) < n {
		reg := itemset.RegionFor(sp)
		dims := 1 + rng.Intn(2)
		for i := 0; i < dims; i++ {
			a := rng.Intn(sp.NumAttrs())
			card := sp.Cardinality(a)
			lo := rng.Intn(card)
			hi := lo + rng.Intn(card-lo)
			vals := make([]int, 0, hi-lo+1)
			for v := lo; v <= hi; v++ {
				vals = append(vals, v)
			}
			if err := reg.Restrict(a, vals); err != nil {
				continue // attribute already restricted; keep the region
			}
		}
		out = append(out, reg)
	}
	return out
}

// WriteJSON serializes the report as indented JSON.
func (r *IndexReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintIndex renders the report.
func PrintIndex(w io.Writer, rep *IndexReport) {
	fmt.Fprintf(w, "MIP-index physical-layer benchmark — %s, %d records, %d MIPs (%s/%s, %d CPUs)\n",
		rep.Dataset, rep.Records, rep.MIPs, rep.GOOS, rep.GOARCH, rep.CPUs)
	kernel := func(name string, rows []IndexKernelRow) {
		fmt.Fprintf(w, "%s (%d ops, best of rounds):\n", name, rows[0].Ops)
		for _, r := range rows {
			fmt.Fprintf(w, "  %-8s %10.1f ns/op  (%s)\n", r.Layout, r.NsPerOp, r.Impl)
		}
	}
	kernel("closure resolution", rep.Closure)
	kernel("exact lookup", rep.Lookup)
	kernel("supported R-tree probe", rep.RTreeProbe)
	if len(rep.Consolidation) > 0 {
		fmt.Fprintf(w, "consolidation pause (aged sharded engine, %d workers):\n", rep.Consolidation[0].Workers)
		for _, c := range rep.Consolidation {
			fmt.Fprintf(w, "  K=%-3d %12s\n", c.Shards,
				time.Duration(c.RebuildPauseNs).Round(time.Microsecond))
		}
	}
	if len(rep.ShardIndexBuild) > 0 {
		fmt.Fprintf(w, "per-shard physical index builds (%s, %d records, scatter catalog):\n",
			rep.ScatterDataset, rep.ScatterRecords)
		for _, sb := range rep.ShardIndexBuild {
			fmt.Fprintf(w, "  K=%-3d %12s total  %12s max shard  %6d local CFIs\n", sb.Shards,
				time.Duration(sb.TotalBuildNs).Round(time.Microsecond),
				time.Duration(sb.MaxShardBuildNs).Round(time.Microsecond), sb.IndexedCFIs)
		}
	}
}
