package bench

import (
	"bytes"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

func TestRunConcurrentClients(t *testing.T) {
	env := tinyEnv(t)
	spec := env.Spec

	if _, err := env.RunConcurrentClients(0, 4, 1, spec.MinSupps[0], spec.MinConfs[0], rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero clients must error")
	}
	if _, err := env.RunConcurrentClients(2, 0, 1, spec.MinSupps[0], spec.MinConfs[0], rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero queries per client must error")
	}

	prev := env.Engine.Executor.Workers
	res, err := env.RunConcurrentClients(3, 2, 1, spec.MinSupps[0], spec.MinConfs[0], rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if env.Engine.Executor.Workers != prev {
		t.Errorf("Workers not restored: got %d want %d", env.Engine.Executor.Workers, prev)
	}
	if res.Queries != 6 || res.Clients != 3 || res.Workers != 1 {
		t.Errorf("run shape wrong: %+v", res)
	}
	if res.Throughput <= 0 || res.Wall <= 0 {
		t.Errorf("degenerate timing: %+v", res)
	}
	if res.P50 > res.P99 || res.P99 > res.Max {
		t.Errorf("percentiles out of order: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
}

func TestConcurrencyMatrixShape(t *testing.T) {
	env := tinyEnv(t)
	spec := env.Spec
	clients := runtime.GOMAXPROCS(0)
	if clients < 2 {
		clients = 2
	}
	rows, err := env.ConcurrencyMatrix(clients, 2, spec.MinSupps[0], spec.MinConfs[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 configurations, got %d", len(rows))
	}
	total := rows[0].Queries
	for i, r := range rows {
		if r.Queries != total {
			t.Errorf("row %d: unequal workload %d vs %d", i, r.Queries, total)
		}
	}
	if rows[0].Clients != 1 || rows[0].Workers != 1 {
		t.Errorf("first row must be the serial baseline: %+v", rows[0])
	}
	if rows[3].Clients != clients || rows[3].Workers != 0 {
		t.Errorf("last row must combine clients and workers: %+v", rows[3])
	}

	var buf bytes.Buffer
	PrintConcurrent(&buf, spec.Name, rows)
	out := buf.String()
	for _, want := range []string{"clients", "qps", "p99", "speedup", "ncpu"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintConcurrent output missing %q:\n%s", want, out)
		}
	}
}
