package plans

import (
	"fmt"
	"time"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/mip"
	"colarm/internal/rtree"
	"colarm/internal/rules"
)

// CheckMode selects how the record-level support checks of ELIMINATE
// and VERIFY are executed.
type CheckMode int

const (
	// AutoCheck picks per query whichever of the two implementations
	// is cheaper for the focal subset size (default).
	AutoCheck CheckMode = iota
	// ScanCheck probes each record id of D^Q against the itemset's
	// tidset — cost proportional to |D^Q|, exactly the record-level
	// scan the paper's cost model describes (COST(E) = |{I^Q_S}|·|D^Q|).
	ScanCheck
	// BitmapCheck intersects whole tidset bitmaps — cost proportional
	// to the dataset size in words, independent of |D^Q|.
	BitmapCheck
)

func (m CheckMode) String() string {
	switch m {
	case AutoCheck:
		return "auto"
	case ScanCheck:
		return "scan"
	case BitmapCheck:
		return "bitmap"
	default:
		return fmt.Sprintf("CheckMode(%d)", int(m))
	}
}

// ParseCheckMode resolves a mode name.
func ParseCheckMode(s string) (CheckMode, error) {
	switch s {
	case "auto", "":
		return AutoCheck, nil
	case "scan":
		return ScanCheck, nil
	case "bitmap":
		return BitmapCheck, nil
	}
	return 0, fmt.Errorf("plans: unknown check mode %q (want auto, scan or bitmap)", s)
}

// Executor runs mining plans against a MIP-index.
type Executor struct {
	Idx *mip.Index
	// Mode selects the record-level support check implementation.
	Mode CheckMode
}

// NewExecutor creates an executor over the given index.
func NewExecutor(idx *mip.Index) *Executor { return &Executor{Idx: idx} }

// Run executes the query with the chosen plan.
func (ex *Executor) Run(kind Kind, q *Query) (*Result, error) {
	if err := q.Validate(ex.Idx); err != nil {
		return nil, err
	}
	start := time.Now()
	var res *Result
	var err error
	switch kind {
	case SEV, SVS, SSEV, SSVS, SSEUV:
		res, err = ex.runMIPPlan(kind, q)
	case ARM:
		res, err = ex.runARM(q)
	default:
		return nil, errUnknownKind(kind)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.Plan = kind
	res.Stats.Duration = time.Since(start)
	rules.SortCanonical(res.Rules)
	return res, nil
}

type unknownKindError Kind

func (e unknownKindError) Error() string { return "plans: unknown plan kind" }

func errUnknownKind(k Kind) error { return unknownKindError(k) }

// qctx carries the per-query state shared by the operators.
type qctx struct {
	ex       *Executor
	q        *Query
	mask     []bool      // item-attribute mask
	dq       *bitset.Set // focal subset bitmap
	dqIDs    []int       // focal subset record ids (ScanCheck path)
	scan     bool        // resolved check mode for this query
	minCount int
	st       *Stats

	// localSupp caches CFI id → local support count (record-level check
	// memoization shared between ELIMINATE and VERIFY).
	localSupp map[int]int
}

func (ex *Executor) newCtx(q *Query) *qctx {
	dq := ex.Idx.SubsetBitmap(q.Region)
	size := dq.Count()
	minCount := charm.CountFor(q.MinSupport, size)
	c := &qctx{
		ex:        ex,
		q:         q,
		mask:      q.itemMask(ex.Idx.Space.NumAttrs()),
		dq:        dq,
		minCount:  minCount,
		st:        &Stats{SubsetSize: size, MinCount: minCount},
		localSupp: make(map[int]int),
	}
	switch ex.Mode {
	case ScanCheck:
		c.scan = true
	case BitmapCheck:
		c.scan = false
	default:
		// A scan touches one word per subset record; a bitmap
		// intersection touches every word of the universe once.
		c.scan = size <= ex.Idx.Dataset.NumRecords()/32
	}
	if c.scan {
		c.dqIDs = dq.IDs()
	}
	return c
}

// countLocal is the record-level support check: how many records of the
// focal subset the tidset covers. In scan mode it probes each D^Q
// record id (cost ∝ |D^Q|, the paper's record-level scan); in bitmap
// mode it intersects whole bitmaps (cost ∝ dataset words).
func (c *qctx) countLocal(tids *bitset.Set) int {
	if c.scan {
		n := 0
		for _, id := range c.dqIDs {
			if tids.Contains(id) {
				n++
			}
		}
		return n
	}
	return bitset.AndCount(tids, c.dq)
}

// candidate is one MIP emitted by (SUPPORTED-)SEARCH.
type candidate struct {
	id  int32
	rel itemset.Rel
}

// search runs the SEARCH (supported=false) or SUPPORTED-SEARCH
// (supported=true) operator and classifies the overlapping MIPs.
func (c *qctx) search(supported bool) []candidate {
	var out []candidate
	visit := func(e rtree.Entry, rel itemset.Rel) bool {
		out = append(out, candidate{id: e.ID, rel: rel})
		if rel == itemset.Contained {
			c.st.Contained++
		} else {
			c.st.PartialOverlap++
		}
		return true
	}
	var st rtree.SearchStats
	if supported {
		st = c.ex.Idx.RTree.SupportedSearch(c.q.Region, c.minCount, visit)
	} else {
		st = c.ex.Idx.RTree.Search(c.q.Region, visit)
	}
	c.st.RNodesVisited += st.NodesVisited
	c.st.REntriesChecked += st.EntriesChecked
	c.st.Candidates = len(out)
	return out
}

// localSupport performs (or recalls) the record-level support check of
// CFI id against D^Q — the expensive operation ELIMINATE exists to
// batch and SS-E-U-V exists to avoid for contained MIPs.
func (c *qctx) localSupport(id int32) int {
	if s, ok := c.localSupp[int(id)]; ok {
		return s
	}
	c.st.SupportChecks++
	s := c.countLocal(c.ex.Idx.ITTree.Set(int(id)).Tids)
	c.localSupp[int(id)] = s
	return s
}

// qualified is a candidate rule body that passed the item-attribute
// filter and the local minsupport check. body is the candidate itemset
// projected onto the item attributes and normalized to its closure's
// projection; id is the CFI acting as that body's closure (carrying its
// tidset).
type qualified struct {
	id    int32
	body  itemset.Set
	local int
}

// eliminate is the ELIMINATE operator: item-attribute filtering plus the
// record-level minsupport check for every candidate.
//
// Item-attribute semantics: a candidate CFI is projected onto the item
// attributes; the projection is normalized to the projection of its own
// closure (the "Aitem-closure"), so that the emitted rule bodies are
// exactly the closed itemsets of the item-attribute subspace that the
// index covers. When the ITEM ATTRIBUTES clause is absent the projection
// is the identity and candidates pass through unchanged. Projections of
// fewer than two items cannot form rules; they are dropped, and their
// Aitem-closures are still discovered through the closure CFI itself,
// which the search also emits (its box covers the projection's records).
//
// When containedShortcut is set (SS-E-U-V), MIPs whose bounding box is
// contained in D^Q take their global support as the local one
// (Lemma 4.5) without a record-level check.
func (c *qctx) eliminate(cands []candidate, containedShortcut bool) []qualified {
	idx := c.ex.Idx
	seen := make(map[string]bool)
	var out []qualified
	for _, cd := range cands {
		full := idx.ITTree.Set(int(cd.id))
		body, all := full.Items.RestrictedTo(idx.Space, c.mask)
		if len(body) < 2 {
			c.st.ItemFiltered++
			continue
		}
		cid := cd.id
		rel := cd.rel
		if !all {
			// Normalize the projection to its Aitem-closure.
			id, ok := idx.ITTree.ClosureID(body)
			if !ok {
				// Unreachable: a subset of a stored CFI is globally
				// frequent at the primary support by monotonicity.
				c.st.ItemFiltered++
				continue
			}
			cid = int32(id)
			body, _ = idx.ITTree.Set(id).Items.RestrictedTo(idx.Space, c.mask)
			if len(body) < 2 {
				c.st.ItemFiltered++
				continue
			}
			rel = c.q.Region.Relation(idx.Boxes[id])
		}
		if !all {
			// Distinct CFIs are distinct bodies on the identity path;
			// only projections can collide.
			k := body.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		var local int
		if containedShortcut && rel == itemset.Contained {
			local = idx.ITTree.Set(int(cid)).Support
			c.localSupp[int(cid)] = local
		} else {
			local = c.localSupport(cid)
		}
		if local < c.minCount {
			c.st.Eliminated++
			continue
		}
		out = append(out, qualified{id: cid, body: body, local: local})
	}
	c.st.Qualified = len(out)
	return out
}

// oracle returns the local-support oracle VERIFY hands to the rule
// generator. The support of a rule part X within D^Q is counted
// directly against the per-item tidsets — in scan mode, |D^Q| record
// probes with at most C_X tidset tests each, which is exactly the
// paper's COST(V) record-level term (Σ C_i · |D^Q|) — memoized per
// itemset so repeated antecedents and singleton consequents are free.
func (c *qctx) oracle() rules.SupportOracle {
	cache := make(map[string]int)
	tidsets := c.ex.Idx.Tidsets
	return func(x itemset.Set) int {
		c.st.OracleCalls++
		if len(x) == 0 {
			return -1
		}
		key := x.Key()
		if s, ok := cache[key]; ok {
			return s
		}
		c.st.OracleMisses++
		c.st.SupportChecks++
		var s int
		if c.scan {
			for _, id := range c.dqIDs {
				hit := true
				for _, it := range x {
					if !tidsets[it].Contains(id) {
						hit = false
						break
					}
				}
				if hit {
					s++
				}
			}
		} else {
			acc := bitset.Intersect(c.dq, tidsets[x[0]])
			for _, it := range x[1:] {
				acc.And(tidsets[it])
			}
			s = acc.Count()
		}
		cache[key] = s
		return s
	}
}

// verify is the VERIFY operator: rule generation plus minconfidence
// checks for every qualified itemset.
func (c *qctx) verify(quals []qualified) []rules.Rule {
	oracle := c.oracle()
	var out []rules.Rule
	for _, ql := range quals {
		rs := rules.Generate(ql.body, ql.local, c.st.SubsetSize, c.q.MinConfidence,
			oracle, rules.Options{MaxConsequent: c.q.MaxConsequent})
		out = append(out, rs...)
	}
	out = rules.Dedupe(out)
	c.st.RulesEmitted = len(out)
	return out
}

// runMIPPlan executes the five MIP-index-based plans, which share the
// operator skeleton and differ in the SEARCH variant, the batching of
// the support check, and the contained-MIP shortcut.
func (ex *Executor) runMIPPlan(kind Kind, q *Query) (*Result, error) {
	c := ex.newCtx(q)
	if c.st.SubsetSize == 0 {
		return &Result{Stats: *c.st}, nil
	}
	supported := kind == SSEV || kind == SSVS || kind == SSEUV
	cands := c.search(supported)

	var quals []qualified
	switch kind {
	case SEV, SSEV:
		// Separate ELIMINATE pass, then VERIFY.
		quals = c.eliminate(cands, false)
	case SVS, SSVS:
		// SUPPORTED-VERIFY: the support check is interleaved with rule
		// generation; in this in-memory realization the work is the
		// same as ELIMINATE's, only unbatched (no separate candidate
		// list materialization).
		quals = c.eliminate(cands, false)
	case SSEUV:
		// Differential treatment: contained MIPs skip the record-level
		// check entirely and meet the partially overlapped survivors at
		// the UNION operator.
		quals = c.eliminate(cands, true)
	}
	rs := c.verify(quals)
	res := &Result{Rules: rs, Stats: *c.st}
	return res, nil
}
