package plans

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
	"colarm/internal/obs"
	"colarm/internal/rules"
)

// runARM executes the traditional from-scratch mining plan (paper
// Section 4.6): SELECT extracts the focal subset's records from the raw
// table, then the εAR operator runs CHARM over the extracted subset —
// restricted to the item attributes — and generates rules from the
// resulting locally closed frequent itemsets.
//
// ARM is the ground-truth baseline: it sees the focal subset directly,
// so unlike the MIP-index plans it is not limited to itemsets prestored
// at the primary support threshold. Its answer therefore covers the
// MIP plans' answer — every index-plan rule appears in ARM's output
// with the same antecedent, support and confidence (represented through
// its local closure, which may extend the consequent) — and can
// additionally contain locally frequent rules that fall below the
// primary support globally. This matches the paper's footnote-2
// contract: the POQM index answers only queries above the primary
// support; the from-scratch plan has no such floor.
func (ex *Executor) runARM(ctx context.Context, q *Query) (*Result, error) {
	c := ex.newCtx(ctx, q)
	if c.st.SubsetSize == 0 {
		return &Result{Stats: *c.st}, nil
	}
	idx := ex.Idx
	d := idx.Dataset
	sp := idx.Space
	m := c.records
	n := d.NumAttrs()
	// value resolves a record's raw value; with a live delta view it
	// reaches buffered rows past the base table, and skip passes over
	// tombstoned records (their ids are never reused).
	value := d.Value
	skip := func(int) bool { return false }
	if c.view != nil {
		value, skip = c.view.Value, c.view.Skip
	} else if live := idx.Live; live != nil {
		// A consolidated index keeps deleted records as ghost rows (ids
		// are never renumbered); the scan must pass over them exactly as
		// it passes over tombstones in a delta view.
		skip = func(r int) bool { return !live.Contains(r) }
	}
	tr := q.Trace
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}

	// SELECT (σ): one pass over the raw table building the vertical
	// representation of the focal subset, restricted to the item
	// attributes. No index structure is consulted.
	localTids := make([]*bitset.Set, sp.NumItems())
	for a := 0; a < n; a++ {
		if !c.mask[a] {
			continue
		}
		for v := 0; v < sp.Cardinality(a); v++ {
			localTids[sp.ItemOf(a, v)] = bitset.New(m)
		}
	}
	if c.slices != nil {
		// Scattered SELECT: each shard scans only the records it owns
		// (already live — ghost and tombstoned rows are outside every
		// slice), in parallel across the worker pool, into its own
		// vertical representation; the gather ORs the per-shard tidsets,
		// which reproduces the monolithic scan exactly because the
		// slices partition the live records. ARMRecordsScanned sums the
		// per-shard scan counts — the same total the monolithic loop
		// reports.
		k := len(c.slices)
		perTids := make([][]*bitset.Set, k)
		scanned := make([]int, k)
		_, err := parallelForCtx(ctx, k, c.workers, func(s int) {
			tids := make([]*bitset.Set, sp.NumItems())
			for a := 0; a < n; a++ {
				if !c.mask[a] {
					continue
				}
				for v := 0; v < sp.Cardinality(a); v++ {
					tids[sp.ItemOf(a, v)] = bitset.New(m)
				}
			}
			pt := make([]int, n)
			polls := 0
			c.slices[s].Records.ForEach(func(r int) bool {
				if c.done != nil {
					polls++
					if polls%cancelPollStride == 0 {
						select {
						case <-c.done:
							return false
						default:
						}
					}
				}
				scanned[s]++
				for a := 0; a < n; a++ {
					pt[a] = value(r, a)
				}
				if !q.Region.ContainsPoint(pt) {
					return true
				}
				for a := 0; a < n; a++ {
					if c.mask[a] {
						tids[sp.ItemOf(a, pt[a])].Add(r)
					}
				}
				return true
			})
			perTids[s] = tids
		})
		if err == nil {
			err = ctx.Err() // a shard scan may have aborted mid-iteration
		}
		if err != nil {
			return nil, err
		}
		for _, sc := range scanned {
			c.st.ARMRecordsScanned += sc
		}
		for it := range localTids {
			if localTids[it] == nil {
				continue
			}
			for s := 0; s < k; s++ {
				localTids[it].Or(perTids[s][it])
			}
		}
	} else {
		point := make([]int, n)
		for r := 0; r < m; r++ {
			if err := c.cancelled(); err != nil {
				return nil, err
			}
			if skip(r) {
				continue
			}
			c.st.ARMRecordsScanned++
			for a := 0; a < n; a++ {
				point[a] = value(r, a)
			}
			if !q.Region.ContainsPoint(point) {
				continue
			}
			for a := 0; a < n; a++ {
				if !c.mask[a] {
					continue
				}
				localTids[sp.ItemOf(a, point[a])].Add(r)
			}
		}
	}

	if tr != nil {
		tr.Record(obs.OpSelect, time.Since(t0), m, c.st.SubsetSize, 1,
			fmt.Sprintf("scanned=%d", c.st.ARMRecordsScanned))
		t0 = time.Now()
	}

	// εAR step 1: closed frequent itemset mining over the subset
	// (CHARM, as in the paper). The context threads into the miner so a
	// cancelled query aborts inside CHARM-EXTEND, the plan's dominant
	// cost on low-support queries.
	mined, err := charm.MineTidsetsContext(ctx, localTids, m, c.minCount)
	if err != nil {
		return nil, err
	}
	c.st.ARMFrequentItemsets = len(mined.Closed)

	// εAR step 2: rule generation. Local supports of rule antecedents
	// resolve through the subset's own closure structure. The oracle is
	// memoless (armTree lookups are cheap), so the per-itemset
	// generation fans out across the query's workers with no shared
	// mutable state beyond the tallied counters; per-itemset call and
	// miss counts are deterministic, keeping the totals schedule-free.
	armTree := ittree.Build(mined, sp.NumItems())
	if tr != nil {
		tr.Record(obs.OpARM, time.Since(t0), c.st.SubsetSize, len(mined.Closed), 1,
			fmt.Sprintf("cfis=%d", len(mined.Closed)))
		t0 = time.Now()
	}
	var tally counterTally
	oracle := func(x itemset.Set) int {
		atomic.AddInt64(&tally.oracleCalls, 1)
		if s := armTree.GlobalSupport(x); s >= 0 {
			return s
		}
		// Below the local threshold: count directly from the subset's
		// vertical representation.
		atomic.AddInt64(&tally.oracleMisses, 1)
		acc := localTids[x[0]].Clone()
		for _, it := range x[1:] {
			acc.And(localTids[it])
		}
		return acc.Count()
	}
	quals := make([]*charm.ClosedSet, 0, len(mined.Closed))
	for _, cl := range mined.Closed {
		if len(cl.Items) >= 2 {
			quals = append(quals, cl)
		}
	}
	c.st.Qualified = len(quals)
	per := make([][]rules.Rule, len(quals))
	used, err := parallelForCtx(ctx, len(quals), c.workers, func(i int) {
		per[i] = rules.Generate(quals[i].Items, quals[i].Support, c.st.SubsetSize,
			q.MinConfidence, oracle, rules.Options{MaxConsequent: q.MaxConsequent})
	})
	if err != nil {
		return nil, err
	}
	tally.addTo(c.st)
	var out []rules.Rule
	for _, rs := range per {
		out = append(out, rs...)
	}
	out = rules.Dedupe(out)
	c.st.RulesEmitted = len(out)
	if tr != nil {
		tr.Record(obs.OpVerify, time.Since(t0), len(quals), len(out), used,
			fmt.Sprintf("oracle=%d misses=%d", c.st.OracleCalls, c.st.OracleMisses))
	}
	return &Result{Rules: out, Stats: *c.st}, nil
}
