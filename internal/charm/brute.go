package charm

import (
	"sort"

	"colarm/internal/bitset"
	"colarm/internal/itemset"
)

// BruteForceClosed enumerates every closed frequent itemset by exhaustive
// depth-first search over the item lattice. It exists as the reference
// oracle for tests — exponential, only for small inputs.
func BruteForceClosed(tidsets []*bitset.Set, numRecords, minCount int) []*ClosedSet {
	var items []itemset.Item
	for it, t := range tidsets {
		if t != nil && t.Count() >= minCount {
			items = append(items, itemset.Item(it))
		}
	}
	var out []*ClosedSet
	var dfs func(start int, cur itemset.Set, tids *bitset.Set)
	dfs = func(start int, cur itemset.Set, tids *bitset.Set) {
		if len(cur) > 0 && isClosed(cur, tids, tidsets) {
			out = append(out, &ClosedSet{Items: cur.Clone(), Tids: tids.Clone(), Support: tids.Count()})
		}
		for k := start; k < len(items); k++ {
			it := items[k]
			nt := bitset.Intersect(tids, tidsets[it])
			if nt.Count() < minCount {
				continue
			}
			dfs(k+1, append(cur.Clone(), it), nt)
		}
	}
	full := bitset.New(numRecords)
	full.Fill()
	dfs(0, nil, full)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Items, out[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// isClosed reports whether no item outside cur preserves the tidset when
// added — the definition of closure.
func isClosed(cur itemset.Set, tids *bitset.Set, tidsets []*bitset.Set) bool {
	for it, t := range tidsets {
		if t == nil || cur.Contains(itemset.Item(it)) {
			continue
		}
		if tids.SubsetOf(t) {
			return false
		}
	}
	return true
}
