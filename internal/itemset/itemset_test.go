package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colarm/internal/relation"
)

func testSpace(t *testing.T) (*Space, *relation.Dataset) {
	t.Helper()
	b := relation.NewBuilder("t", "A", "B", "C")
	// A: 3 values, B: 2 values, C: 4 values.
	rows := [][]string{
		{"a0", "b0", "c0"},
		{"a1", "b1", "c1"},
		{"a2", "b0", "c2"},
		{"a0", "b1", "c3"},
	}
	for _, r := range rows {
		if err := b.AddRecord(r...); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	return NewSpace(d), d
}

func TestSpaceMapping(t *testing.T) {
	sp, _ := testSpace(t)
	if sp.NumItems() != 9 {
		t.Fatalf("NumItems = %d, want 9", sp.NumItems())
	}
	if sp.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d", sp.NumAttrs())
	}
	for a := 0; a < sp.NumAttrs(); a++ {
		for v := 0; v < sp.Cardinality(a); v++ {
			it := sp.ItemOf(a, v)
			if sp.AttrOf(it) != a {
				t.Errorf("AttrOf(ItemOf(%d,%d)) = %d", a, v, sp.AttrOf(it))
			}
			if sp.ValueOf(it) != v {
				t.Errorf("ValueOf(ItemOf(%d,%d)) = %d", a, v, sp.ValueOf(it))
			}
		}
	}
	if got := sp.Label(sp.ItemOf(1, 1)); got != "B=b1" {
		t.Errorf("Label = %q", got)
	}
}

func TestParseItem(t *testing.T) {
	sp, _ := testSpace(t)
	it, err := sp.ParseItem("C=c2")
	if err != nil {
		t.Fatal(err)
	}
	if sp.AttrOf(it) != 2 || sp.ValueOf(it) != 2 {
		t.Errorf("ParseItem(C=c2) = attr %d value %d", sp.AttrOf(it), sp.ValueOf(it))
	}
	for _, bad := range []string{"nope", "D=x", "A=zz"} {
		if _, err := sp.ParseItem(bad); err == nil {
			t.Errorf("ParseItem(%q) must error", bad)
		}
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet(5, 1, 3, 1)
	if !s.Equal(Set{1, 3, 5}) {
		t.Fatalf("NewSet dedup/sort = %v", s)
	}
	tt := NewSet(3, 7)
	if got := s.Union(tt); !got.Equal(Set{1, 3, 5, 7}) {
		t.Errorf("Union = %v", got)
	}
	if got := s.Minus(tt); !got.Equal(Set{1, 5}) {
		t.Errorf("Minus = %v", got)
	}
	if !NewSet(1, 3).SubsetOf(s) || NewSet(1, 9).SubsetOf(s) {
		t.Error("SubsetOf wrong")
	}
	if !NewSet().SubsetOf(s) {
		t.Error("empty set must be subset of all")
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Error("Contains wrong")
	}
	if s.Key() != "1,3,5" {
		t.Errorf("Key = %q", s.Key())
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSetFormatAndRestrict(t *testing.T) {
	sp, _ := testSpace(t)
	s := NewSet(sp.ItemOf(0, 1), sp.ItemOf(2, 3))
	if got := s.Format(sp); got != "(A=a1, C=c3)" {
		t.Errorf("Format = %q", got)
	}
	attrOK := []bool{true, true, false}
	got, all := s.RestrictedTo(sp, attrOK)
	if all {
		t.Error("restriction should have dropped an item")
	}
	if !got.Equal(Set{sp.ItemOf(0, 1)}) {
		t.Errorf("RestrictedTo = %v", got)
	}
	attrAll := []bool{true, true, true}
	got2, all2 := s.RestrictedTo(sp, attrAll)
	if !all2 || !got2.Equal(s) {
		t.Error("full restriction should be identity")
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(2)
	if !b.IsEmpty() {
		t.Error("fresh box must be empty")
	}
	b.Extend([]int{1, 4})
	b.Extend([]int{3, 2})
	if b.IsEmpty() {
		t.Error("extended box must not be empty")
	}
	if b.Lo[0] != 1 || b.Hi[0] != 3 || b.Lo[1] != 2 || b.Hi[1] != 4 {
		t.Fatalf("box = %v", b)
	}
	if b.Extent(0) != 3 || b.Extent(1) != 3 {
		t.Errorf("extents = %d,%d", b.Extent(0), b.Extent(1))
	}
	if !b.ContainsPoint([]int{2, 3}) || b.ContainsPoint([]int{0, 3}) {
		t.Error("ContainsPoint wrong")
	}
	o := NewBox(2)
	o.Extend([]int{2, 2})
	if !b.ContainsBox(o) || o.ContainsBox(b) {
		t.Error("ContainsBox wrong")
	}
	if !b.Intersects(o) {
		t.Error("Intersects wrong")
	}
	far := NewBox(2)
	far.Extend([]int{9, 9})
	if b.Intersects(far) {
		t.Error("disjoint boxes must not intersect")
	}
	c := b.Clone()
	c.Extend([]int{0, 0})
	if b.Lo[0] == 0 {
		t.Error("Clone must be independent")
	}
	b.ExtendBox(far)
	if b.Hi[0] != 9 || b.Hi[1] != 9 {
		t.Error("ExtendBox wrong")
	}
	if b.String() == "" {
		t.Error("String must render")
	}
}

func TestRegionRelation(t *testing.T) {
	// Dimensions with cardinalities 4, 3.
	r := NewRegion([]int{4, 3})
	// Full-domain region contains everything.
	b := NewBox(2)
	b.Extend([]int{0, 0})
	b.Extend([]int{3, 2})
	if got := r.Relation(b); got != Contained {
		t.Fatalf("full region relation = %v", got)
	}
	// Restrict dim 0 to {1,2}.
	if err := r.Restrict(0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	inside := NewBox(2)
	inside.Extend([]int{1, 0})
	inside.Extend([]int{2, 2})
	if got := r.Relation(inside); got != Contained {
		t.Errorf("inside relation = %v, want contained", got)
	}
	partial := NewBox(2)
	partial.Extend([]int{0, 0})
	partial.Extend([]int{2, 1})
	if got := r.Relation(partial); got != Partial {
		t.Errorf("partial relation = %v, want partial", got)
	}
	out := NewBox(2)
	out.Extend([]int{3, 1})
	if got := r.Relation(out); got != Disjoint {
		t.Errorf("disjoint relation = %v, want disjoint", got)
	}
	// Non-contiguous selection: {0, 3} — box [0..3] is partial because
	// 1,2 are unselected.
	r2 := NewRegion([]int{4, 3})
	if err := r2.Restrict(0, []int{0, 3}); err != nil {
		t.Fatal(err)
	}
	span := NewBox(2)
	span.Extend([]int{0, 0})
	span.Extend([]int{3, 2})
	if got := r2.Relation(span); got != Partial {
		t.Errorf("non-contiguous span = %v, want partial", got)
	}
	point := NewBox(2)
	point.Extend([]int{3, 1})
	if got := r2.Relation(point); got != Contained {
		t.Errorf("point at selected value = %v, want contained", got)
	}
}

func TestRegionMembershipAndStats(t *testing.T) {
	r := NewRegion([]int{4, 3})
	if err := r.Restrict(0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !r.ContainsPoint([]int{1, 0}) || r.ContainsPoint([]int{0, 0}) {
		t.Error("ContainsPoint wrong")
	}
	if r.SelectedCount(0) != 2 || r.SelectedCount(1) != 3 {
		t.Error("SelectedCount wrong")
	}
	if got := r.Selected(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Selected(0) = %v", got)
	}
	if r.AvgExtent(0) != 0.5 || r.AvgExtent(1) != 1.0 {
		t.Errorf("AvgExtent = %v, %v", r.AvgExtent(0), r.AvgExtent(1))
	}
	bb := r.BoundingBox()
	if bb.Lo[0] != 1 || bb.Hi[0] != 2 || bb.Lo[1] != 0 || bb.Hi[1] != 2 {
		t.Errorf("BoundingBox = %v", bb)
	}
	if r.IsEmpty() {
		t.Error("region not empty")
	}
	if err := r.Restrict(1, nil); err != nil {
		t.Fatal(err)
	}
	if !r.IsEmpty() {
		t.Error("empty selection must make region empty")
	}
	if err := r.Restrict(9, []int{0}); err == nil {
		t.Error("out-of-range dimension must error")
	}
	if err := r.Restrict(0, []int{99}); err == nil {
		t.Error("out-of-range value must error")
	}
}

func TestRelStringer(t *testing.T) {
	for _, tc := range []struct {
		r    Rel
		want string
	}{{Disjoint, "disjoint"}, {Partial, "partial"}, {Contained, "contained"}} {
		if tc.r.String() != tc.want {
			t.Errorf("%v.String() = %q", tc.r, tc.r.String())
		}
	}
}

// Property: Region.Relation agrees with a brute-force cell enumeration.
func TestQuickRegionRelationBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cards := []int{2 + r.Intn(5), 2 + r.Intn(5)}
		reg := NewRegion(cards)
		for d := 0; d < 2; d++ {
			if r.Intn(2) == 0 {
				continue // leave unrestricted
			}
			var vals []int
			for v := 0; v < cards[d]; v++ {
				if r.Intn(2) == 0 {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				vals = []int{r.Intn(cards[d])}
			}
			if err := reg.Restrict(d, vals); err != nil {
				return false
			}
		}
		// Random box.
		b := NewBox(2)
		for d := 0; d < 2; d++ {
			lo := r.Intn(cards[d])
			hi := lo + r.Intn(cards[d]-lo)
			b.Lo[d], b.Hi[d] = int32(lo), int32(hi)
		}
		// Brute force: enumerate cells of the box.
		all, any := true, false
		for x := b.Lo[0]; x <= b.Hi[0]; x++ {
			for y := b.Lo[1]; y <= b.Hi[1]; y++ {
				if reg.ContainsPoint([]int{int(x), int(y)}) {
					any = true
				} else {
					all = false
				}
			}
		}
		want := Partial
		switch {
		case !any:
			want = Disjoint
		case all:
			want = Contained
		}
		return reg.Relation(b) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: set algebra laws on random small itemsets.
func TestQuickSetAlgebra(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rnd := func() Set {
			var items []Item
			for i := 0; i < r.Intn(8); i++ {
				items = append(items, Item(r.Intn(20)))
			}
			return NewSet(items...)
		}
		a, b := rnd(), rnd()
		u := a.Union(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if !a.Minus(b).SubsetOf(a) {
			return false
		}
		// |a ∪ b| = |a| + |b| - |a ∩ b| where |a ∩ b| = |a| - |a \ b|.
		inter := len(a) - len(a.Minus(b))
		if len(u) != len(a)+len(b)-inter {
			return false
		}
		// Union is idempotent and commutative.
		if !a.Union(a).Equal(a) || !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
