package colarm

import (
	"context"
	"math"
	"path/filepath"
	"testing"
)

// TestAdvisorReport exercises the read-only self-tuning surface: after
// a handful of (traced) queries the report must show the optimizer
// pricing with its static units, a populated workload window, and a
// coherent guardrail configuration.
func TestAdvisorReport(t *testing.T) {
	eng := salaryEngine(t)
	q := Query{
		Range:         map[string][]string{"Location": {"Seattle"}},
		MinSupport:    0.5,
		MinConfidence: 0.7,
		Trace:         true,
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.Mine(q); err != nil {
			t.Fatal(err)
		}
	}
	rep := eng.Advisor()
	if rep.Calibration.LiveUnits != rep.Calibration.StaticUnits {
		t.Errorf("fresh engine prices with %+v, want the static units %+v",
			rep.Calibration.LiveUnits, rep.Calibration.StaticUnits)
	}
	if rep.Calibration.Swapped || rep.Calibration.Swaps != 0 {
		t.Error("fresh engine reports a recalibration swap")
	}
	if rep.Calibration.Samples <= 0 {
		t.Error("traced mines produced no timing samples")
	}
	if len(rep.Calibration.Units) == 0 {
		t.Error("calibration report carries no per-unit drift rows")
	}
	if rep.Calibration.Guardrail.Evaluated {
		t.Error("guardrail replay reported before any swap was attempted")
	}
	if rep.Workload.Window < 4 {
		t.Errorf("workload window = %d, want >= 4 logged queries", rep.Workload.Window)
	}
	if len(rep.Secondaries) != 0 {
		t.Errorf("fresh engine lists %d secondary indexes", len(rep.Secondaries))
	}
}

// TestRecalibrateFacade runs drift evaluations through the facade: the
// outcome must be internally consistent (a swap is only ever reported
// alongside a passing guardrail replay) whether or not the evidence
// asked for one.
func TestRecalibrateFacade(t *testing.T) {
	eng := salaryEngine(t)
	q := Query{
		Range:         map[string][]string{"Location": {"Boston"}},
		MinSupport:    0.4,
		MinConfidence: 0.6,
		Trace:         true,
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.Mine(q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		cal := eng.Recalibrate()
		if cal.DriftScore < 0 {
			t.Fatalf("drift score = %v, want >= 0", cal.DriftScore)
		}
		if cal.Swapped {
			if !cal.Guardrail.Passed {
				t.Fatal("units swapped without a passing guardrail replay")
			}
			if cal.Swaps == 0 || cal.LastSwap.IsZero() {
				t.Fatal("swap reported without bookkeeping")
			}
		}
	}
	// The interactive explain path reads the same report.
	if got := eng.Advisor().Calibration; got.Samples <= 0 {
		t.Errorf("calibration samples = %d after traced workload", got.Samples)
	}
}

// TestSecondaryIndexLifecycle drives build → list → argmin visibility →
// drop through the facade.
func TestSecondaryIndexLifecycle(t *testing.T) {
	eng := salaryEngine(t)
	ctx := context.Background()

	info, err := eng.BuildSecondaryIndex(ctx, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fresh {
		t.Error("freshly built secondary is not fresh")
	}
	if info.PrimarySupport != 0.05 || info.PrimaryCount <= 0 || info.CFIs <= 0 {
		t.Errorf("secondary info = %+v, want populated counts at primary 0.05", info)
	}
	if info.BuildDuration <= 0 {
		t.Error("build duration not recorded")
	}

	secs := eng.SecondaryIndexes()
	if len(secs) != 1 || secs[0].PrimarySupport != 0.05 {
		t.Fatalf("secondaries = %+v, want exactly the 0.05 index", secs)
	}
	if got := eng.Advisor().Secondaries; len(got) != 1 {
		t.Errorf("advisor report lists %d secondaries, want 1", len(got))
	}

	// Queries keep answering with the secondary installed.
	if _, err := eng.Mine(Query{
		Range:         map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
		MinSupport:    0.7,
		MinConfidence: 0.9,
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := eng.BuildSecondaryIndex(ctx, 0); err == nil {
		t.Error("primary support 0 must error")
	}
	if _, err := eng.BuildSecondaryIndex(ctx, 1.5); err == nil {
		t.Error("primary support > 1 must error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.BuildSecondaryIndex(cancelled, 0.05); err == nil {
		t.Error("cancelled context must abort the build")
	}

	if eng.DropSecondaryIndex(0.42) {
		t.Error("dropping an absent index reported success")
	}
	if !eng.DropSecondaryIndex(0.05) {
		t.Error("dropping the installed index failed")
	}
	if left := eng.SecondaryIndexes(); len(left) != 0 {
		t.Errorf("secondaries after drop = %+v, want none", left)
	}
}

// TestApplyRecommendationsFacade runs the advisor's act step. The tiny
// salary workload rarely pays for an index, so the assertion is on the
// contract: no error, and anything applied is a well-formed action that
// is reflected in the installed set.
func TestApplyRecommendationsFacade(t *testing.T) {
	eng := salaryEngine(t)
	q := Query{
		Range:         map[string][]string{"Location": {"Seattle"}},
		MinSupport:    0.6,
		MinConfidence: 0.8,
	}
	for i := 0; i < 6; i++ {
		if _, err := eng.Mine(q); err != nil {
			t.Fatal(err)
		}
	}
	for _, rec := range eng.Recommendations() {
		if rec.Action != "build" && rec.Action != "drop" {
			t.Errorf("recommendation action = %q", rec.Action)
		}
		if rec.Reason == "" {
			t.Error("recommendation carries no reason")
		}
	}
	applied, err := eng.ApplyRecommendations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range applied {
		if rec.Action == "build" {
			found := false
			for _, s := range eng.SecondaryIndexes() {
				if math.Abs(s.PrimarySupport-rec.PrimarySupport) <= 1e-9 {
					found = true
				}
			}
			if !found {
				t.Errorf("applied build at %v is not installed", rec.PrimarySupport)
			}
		}
	}
}

// TestSaveLoadSecondaryIndexes proves a fresh secondary index survives
// the snapshot round trip: the restored engine lists it, it is fresh,
// and queries answer identically.
func TestSaveLoadSecondaryIndexes(t *testing.T) {
	eng := salaryEngine(t)
	if _, err := eng.BuildSecondaryIndex(context.Background(), 0.05); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "salary.colarm")
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngineFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	secs := loaded.SecondaryIndexes()
	if len(secs) != 1 {
		t.Fatalf("restored engine lists %d secondaries, want 1", len(secs))
	}
	if secs[0].PrimarySupport != 0.05 || !secs[0].Fresh || secs[0].CFIs <= 0 {
		t.Errorf("restored secondary = %+v, want fresh 0.05 index", secs[0])
	}
	q := Query{
		Range:         map[string][]string{"Location": {"Seattle"}},
		MinSupport:    0.5,
		MinConfidence: 0.7,
	}
	a, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rules %d != %d after reload with secondary", len(a.Rules), len(b.Rules))
	}
}
