package colarm

import (
	"math"
	"strings"
	"testing"
)

func salaryEngine(t testing.TB) *Engine {
	t.Helper()
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(ds, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, Options{PrimarySupport: 0.5}); err == nil {
		t.Error("nil dataset must error")
	}
	ds, _ := Salary()
	if _, err := Open(ds, Options{PrimarySupport: 0}); err == nil {
		t.Error("zero primary support must error")
	}
}

// TestQuickstart runs the doc-comment example end to end: the paper's
// localized rule for female Seattle employees.
func TestQuickstart(t *testing.T) {
	eng := salaryEngine(t)
	res, err := eng.Mine(Query{
		Range:          map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.70,
		MinConfidence:  0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubsetSize != 4 {
		t.Fatalf("subset size = %d, want 4", res.Stats.SubsetSize)
	}
	found := false
	for _, r := range res.Rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "Age=30-40" &&
			len(r.Consequent) == 1 && r.Consequent[0] == "Salary=90K-120K" {
			found = true
			if math.Abs(r.Support-0.75) > 1e-9 || math.Abs(r.Confidence-1.0) > 1e-9 {
				t.Errorf("R_L measures: supp=%v conf=%v", r.Support, r.Confidence)
			}
			if r.Lift <= 1 {
				t.Errorf("R_L lift = %v, want > 1", r.Lift)
			}
			if !strings.Contains(r.String(), "=>") {
				t.Error("rule String missing arrow")
			}
		}
	}
	if !found {
		t.Fatalf("localized rule not found among %d rules", len(res.Rules))
	}
	if len(res.Estimates) != 6 {
		t.Errorf("estimates = %d, want 6 (optimizer ran)", len(res.Estimates))
	}
	if res.Stats.DurationNanos <= 0 {
		t.Error("duration not recorded")
	}
}

func TestForcedPlansAgree(t *testing.T) {
	eng := salaryEngine(t)
	q := Query{
		Range:         map[string][]string{"Location": {"Boston"}},
		MinSupport:    0.5,
		MinConfidence: 0.7,
	}
	var ref *Result
	for _, p := range []Plan{SEV, SVS, SSEV, SSVS, SSEUV} {
		q.Plan = p
		res, err := eng.Mine(q)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Stats.Plan != p {
			t.Errorf("stats plan = %v, want %v", res.Stats.Plan, p)
		}
		if len(res.Estimates) != 0 {
			t.Errorf("%v: forced plan should skip estimates", p)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Rules) != len(ref.Rules) {
			t.Fatalf("%v emitted %d rules, want %d", p, len(res.Rules), len(ref.Rules))
		}
		for i := range res.Rules {
			if res.Rules[i].String() != ref.Rules[i].String() {
				t.Fatalf("%v rule %d = %s, want %s", p, i, res.Rules[i], ref.Rules[i])
			}
		}
	}
	// The from-scratch ARM baseline must cover the index plans' answer:
	// same antecedent, support and confidence for every index rule.
	q.Plan = ARM
	arm, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, mr := range ref.Rules {
		covered := false
		for _, ar := range arm.Rules {
			if strings.Join(ar.Antecedent, ",") == strings.Join(mr.Antecedent, ",") &&
				ar.SupportCount == mr.SupportCount &&
				math.Abs(ar.Confidence-mr.Confidence) < 1e-9 {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("ARM does not cover index rule %s", mr)
		}
	}
}

func TestMineQL(t *testing.T) {
	eng := salaryEngine(t)
	res, err := eng.MineQL(`
		REPORT LOCALIZED ASSOCIATION RULES
		FROM salary
		WHERE RANGE Location = (Seattle), Gender = (F)
		AND ITEM ATTRIBUTES Age, Salary
		HAVING minsupport = 70% AND minconfidence = 95%;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("QL query found no rules")
	}
	// Forced plan via QL.
	res2, err := eng.MineQL(`REPORT LOCALIZED ASSOCIATION RULES FROM salary
		WHERE RANGE Location = (Seattle), Gender = (F)
		AND ITEM ATTRIBUTES Age, Salary
		HAVING minsupport = 70% AND minconfidence = 95% USING PLAN ARM;`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Plan != ARM {
		t.Errorf("plan = %v, want ARM", res2.Stats.Plan)
	}
	// Errors.
	if _, err := eng.MineQL("garbage"); err == nil {
		t.Error("garbage QL must error")
	}
	if _, err := eng.MineQL(`REPORT LOCALIZED ASSOCIATION RULES FROM other HAVING minsupport = 0.5 AND minconfidence = 0.5`); err == nil {
		t.Error("wrong dataset name must error")
	}
	if _, err := eng.MineQL(`REPORT LOCALIZED ASSOCIATION RULES FROM salary
		WHERE RANGE Nope = (x) HAVING minsupport = 0.5 AND minconfidence = 0.5`); err == nil {
		t.Error("unknown attribute must error")
	}
	if _, err := eng.MineQL(`REPORT LOCALIZED ASSOCIATION RULES FROM salary
		HAVING minsupport = 0.5 AND minconfidence = 0.5 USING PLAN NOPE`); err == nil {
		t.Error("unknown plan must error")
	}
}

func TestExplain(t *testing.T) {
	eng := salaryEngine(t)
	ests, err := eng.Explain(Query{
		Range:         map[string][]string{"Location": {"Seattle"}},
		MinSupport:    0.5,
		MinConfidence: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 6 {
		t.Fatalf("estimates = %d", len(ests))
	}
	for _, e := range ests {
		if e.Cost < 0 {
			t.Errorf("%v cost negative", e.Plan)
		}
	}
	if _, err := eng.Explain(Query{MinSupport: 0, MinConfidence: 0.5}); err == nil {
		t.Error("invalid query must error in Explain")
	}
}

func TestPlanParseAndString(t *testing.T) {
	for _, p := range []Plan{Auto, SEV, SVS, SSEV, SSVS, SSEUV, ARM} {
		got, err := ParsePlan(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePlan(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePlan(""); err != nil || p != Auto {
		t.Error("empty plan must parse to Auto")
	}
	if _, err := ParsePlan("nope"); err == nil {
		t.Error("bad plan must error")
	}
}

func TestDatasetAccessorsAndCSV(t *testing.T) {
	ds, _ := Salary()
	if ds.Name() != "salary" || ds.NumRecords() != 11 || ds.NumAttributes() != 6 {
		t.Fatal("salary shape wrong")
	}
	attrs := ds.Attributes()
	if attrs[0] != "Company" || attrs[5] != "Salary" {
		t.Errorf("attributes = %v", attrs)
	}
	vals, err := ds.Values("Gender")
	if err != nil || len(vals) != 2 {
		t.Errorf("Values(Gender) = %v, %v", vals, err)
	}
	if _, err := ds.Values("Nope"); err == nil {
		t.Error("unknown attribute must error")
	}
	rec := ds.Record(0)
	if rec[0] != "IBM" {
		t.Errorf("record 0 = %v", rec)
	}
	var sb strings.Builder
	if err := ds.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	ds2, err := ReadCSV("salary", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NumRecords() != 11 {
		t.Error("csv round trip lost records")
	}
}

func TestNewDatasetBuilderAndDiscretize(t *testing.T) {
	b := NewDataset("ages", "age", "group")
	for _, row := range [][]string{{"21", "x"}, {"35", "y"}, {"29", "x"}, {"44", "y"}} {
		if err := b.Add(row...); err != nil {
			t.Fatal(err)
		}
	}
	ds := b.Build()
	dd, err := ds.Discretize("age", 2, "width")
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := dd.Values("age")
	if len(vals) != 2 {
		t.Errorf("discretized values = %v", vals)
	}
	if _, err := ds.Discretize("age", 2, "frequency"); err != nil {
		t.Errorf("frequency binning: %v", err)
	}
	if _, err := ds.Discretize("nope", 2, "width"); err == nil {
		t.Error("unknown attr must error")
	}
	if _, err := ds.Discretize("age", 2, "bogus"); err == nil {
		t.Error("bogus method must error")
	}
	if _, err := ds.Discretize("group", 2, "width"); err == nil {
		t.Error("non-numeric column must error")
	}
}

func TestGeneratorsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generator smoke test skipped in -short mode")
	}
	ds, err := GenerateMushroom(1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRecords() != 8124 {
		t.Errorf("mushroom records = %d", ds.NumRecords())
	}
	ch, err := GenerateChess(1)
	if err != nil {
		t.Fatal(err)
	}
	if ch.NumRecords() != 3196 || ch.NumAttributes() != 37 {
		t.Error("chess shape wrong")
	}
	pu, err := GeneratePUMSB(1)
	if err != nil {
		t.Fatal(err)
	}
	if pu.NumRecords() != 49046 {
		t.Error("pumsb shape wrong")
	}
}
