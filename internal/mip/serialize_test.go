package mip

import (
	"bytes"
	"strings"
	"testing"

	"colarm/internal/datagen"
	"colarm/internal/itemset"
)

func TestSnapshotRoundTrip(t *testing.T) {
	d := datagen.Salary()
	idx, err := Build(d, Options{PrimarySupport: 0.18, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same shape.
	if got.NumMIPs() != idx.NumMIPs() {
		t.Fatalf("MIPs %d != %d", got.NumMIPs(), idx.NumMIPs())
	}
	if got.PrimaryCount != idx.PrimaryCount {
		t.Error("primary count lost")
	}
	if got.Dataset.NumRecords() != d.NumRecords() || got.Dataset.NumAttrs() != d.NumAttrs() {
		t.Fatal("dataset shape lost")
	}
	// Same content: every CFI with identical items, support and box.
	for id := 0; id < idx.NumMIPs(); id++ {
		a, b := idx.ITTree.Set(id), got.ITTree.Set(id)
		if !a.Items.Equal(b.Items) || a.Support != b.Support || !a.Tids.Equal(b.Tids) {
			t.Fatalf("CFI %d differs after round trip", id)
		}
		if !idx.Boxes[id].ContainsBox(got.Boxes[id]) || !got.Boxes[id].ContainsBox(idx.Boxes[id]) {
			t.Fatalf("box %d differs after round trip", id)
		}
	}
	// Same query behavior: identical R-tree search results.
	reg, err := got.RegionFromSelections(map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}})
	if err != nil {
		t.Fatal(err)
	}
	count := func(x *Index) int {
		n := 0
		for id := 0; id < x.NumMIPs(); id++ {
			if reg.Relation(x.Boxes[id]) != itemset.Disjoint {
				n++
			}
		}
		return n
	}
	if count(idx) != count(got) {
		t.Error("overlap structure differs after round trip")
	}
	// Dataset values preserved exactly.
	for r := 0; r < d.NumRecords(); r++ {
		for a := 0; a < d.NumAttrs(); a++ {
			if d.ValueString(r, a) != got.Dataset.ValueString(r, a) {
				t.Fatalf("cell (%d,%d) lost", r, a)
			}
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage must error")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream must error")
	}
}

func TestReadIndexRejectsCorruptedSnapshot(t *testing.T) {
	d := datagen.Salary()
	idx, err := Build(d, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the middle of the payload; the decoder or the
	// consistency checks must reject the result (never panic).
	for _, off := range []int{buf.Len() / 2, buf.Len() / 3, buf.Len() - 10} {
		data := append([]byte(nil), buf.Bytes()...)
		data[off] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("corruption at %d caused panic: %v", off, r)
				}
			}()
			if got, err := ReadIndex(bytes.NewReader(data)); err == nil {
				// Decoding may succeed by luck; the index must then at
				// least validate.
				if vErr := got.Validate(); vErr != nil {
					t.Logf("corruption at %d passed decode but failed validate (ok): %v", off, vErr)
				}
			}
		}()
	}
}
