package server

import (
	"context"
	"errors"
	"net/http"

	"colarm"
	"colarm/internal/standing"
)

// Machine-readable error codes carried by every non-2xx /v1 response
// in the envelope's error.code field. Clients branch on these, never
// on message text.
const (
	CodeBadRequest          = "bad_request"
	CodeUnknownAttribute    = "unknown_attribute"
	CodeUnknownValue        = "unknown_value"
	CodeBadThreshold        = "bad_threshold"
	CodeUnknownPlan         = "unknown_plan"
	CodeBadRecordID         = "bad_record_id"
	CodeBadTrack            = "bad_track"
	CodeNotFound            = "not_found"
	CodeRebuildInProgress   = "rebuild_in_progress"
	CodeSubscriptionLimit   = "subscription_limit"
	CodeOverloaded          = "overloaded"
	CodeDeadlineExceeded    = "deadline_exceeded"
	CodeClientClosedRequest = "client_closed_request"
	CodeMethodNotAllowed    = "method_not_allowed"
	CodeInternal            = "internal"
)

// errorBody is the structured error object in the /v1 envelope.
type errorBody struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

// errorResponse is the /v1 error envelope: a structured error object
// under error.code / error.message / error.details. The deprecated
// flat legacyError field that rode along during the /v1 redesign's
// migration window has been removed — clients branch on error.code.
type errorResponse struct {
	Error errorBody `json:"error"`
}

// badRequestError and notFoundError wrap errors whose status the
// handler decided at the point of failure.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

type notFoundError struct{ err error }

func (e notFoundError) Error() string { return e.err.Error() }
func (e notFoundError) Unwrap() error { return e.err }

// conflictError marks an ingest racing a background rebuild — 409,
// with the dataset in the error details.
type conflictError struct {
	err     error
	dataset string
}

func (e conflictError) Error() string { return e.err.Error() }
func (e conflictError) Unwrap() error { return e.err }

// detailedError lets an error carry structured fields into the
// envelope's error.details.
type detailedError interface{ errorDetails() map[string]any }

func (e conflictError) errorDetails() map[string]any {
	return map[string]any{"dataset": e.dataset}
}

// classify maps an error to its HTTP status and machine-readable code.
// The facade's typed validation errors (and explicitly tagged parse
// failures) are the caller's fault — 400, with the sentinel's specific
// code when one is in the chain; an unknown dataset or subscription is
// 404; an ingest racing a rebuild is 409; admission or subscription
// overflow is 429; a query that outran its deadline is 504; everything
// else is an engine fault — 500/internal.
func classify(err error) (status int, code string) {
	var bad badRequestError
	var missing notFoundError
	var conflict conflictError
	switch {
	case errors.Is(err, colarm.ErrUnknownAttribute):
		return http.StatusBadRequest, CodeUnknownAttribute
	case errors.Is(err, colarm.ErrUnknownValue):
		return http.StatusBadRequest, CodeUnknownValue
	case errors.Is(err, colarm.ErrBadThreshold):
		return http.StatusBadRequest, CodeBadThreshold
	case errors.Is(err, colarm.ErrUnknownPlan):
		return http.StatusBadRequest, CodeUnknownPlan
	case errors.Is(err, colarm.ErrBadRecordID):
		return http.StatusBadRequest, CodeBadRecordID
	case errors.Is(err, standing.ErrBadTrack):
		return http.StatusBadRequest, CodeBadTrack
	case errors.As(err, &bad):
		return http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, standing.ErrNoDataset), errors.As(err, &missing):
		return http.StatusNotFound, CodeNotFound
	case errors.As(err, &conflict):
		return http.StatusConflict, CodeRebuildInProgress
	case errors.Is(err, standing.ErrLimit):
		return http.StatusTooManyRequests, CodeSubscriptionLimit
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, CodeOverloaded
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		// The client went away; 499 is the de-facto (nginx) code for
		// "client closed request" — nobody reads it, but the access log
		// does.
		return 499, CodeClientClosedRequest
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// fail writes the /v1 error envelope for err and counts it against the
// endpoint's error metric.
func (s *Server) fail(w http.ResponseWriter, endpoint string, err error) {
	s.errors[endpoint].Inc()
	status, code := classify(err)
	body := errorBody{Code: code, Message: err.Error()}
	var det detailedError
	if errors.As(err, &det) {
		body.Details = det.errorDetails()
	}
	s.writeJSON(w, status, errorResponse{Error: body})
}
