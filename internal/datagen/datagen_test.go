package datagen

import (
	"testing"

	"colarm/internal/charm"
	"colarm/internal/itemset"
)

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := ChessConfig(1)
	cases := []func(c *Config){
		func(c *Config) { c.Records = 0 },
		func(c *Config) { c.Attrs = nil },
		func(c *Config) { c.Clusters = nil },
		func(c *Config) { c.Attrs[0].Cardinality = 1 },
		func(c *Config) { c.Attrs[0].Align = nil },
		func(c *Config) { c.LocalPatterns[0].RangeAttr = 99 },
		func(c *Config) { c.LocalPatterns[0].Items = map[int]int{99: 0} },
		func(c *Config) { c.LocalPatterns[0].Items = map[int]int{0: 99} },
	}
	for i, mut := range cases {
		c := ChessConfig(1)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config validated", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestSalaryMatchesPaperTable(t *testing.T) {
	d := Salary()
	if d.NumRecords() != 11 || d.NumAttrs() != 6 {
		t.Fatalf("salary shape %dx%d", d.NumRecords(), d.NumAttrs())
	}
	if d.ValueString(6, 1) != "Tech Arch" {
		t.Errorf("row 6 title = %q", d.ValueString(6, 1))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Scaled(MushroomConfig(7), 0.05)
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumRecords() != d2.NumRecords() {
		t.Fatal("record counts differ")
	}
	for r := 0; r < d1.NumRecords(); r++ {
		for a := 0; a < d1.NumAttrs(); a++ {
			if d1.Value(r, a) != d2.Value(r, a) {
				t.Fatalf("cell (%d,%d) differs", r, a)
			}
		}
	}
	// A different seed must differ somewhere.
	cfg2 := cfg
	cfg2.Seed = 8
	d3, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < d1.NumRecords() && same; r++ {
		for a := 0; a < d1.NumAttrs(); a++ {
			if d1.Value(r, a) != d3.Value(r, a) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestPresetShapes(t *testing.T) {
	cases := []struct {
		cfg     Config
		records int
		items   int
	}{
		{ChessConfig(1), 3196, 76},
		{MushroomConfig(1), 8124, 0},
		{PUMSBConfig(1), 49046, 74 * 96},
	}
	for _, c := range cases {
		if c.cfg.Records != c.records {
			t.Errorf("%s records = %d, want %d", c.cfg.Name, c.cfg.Records, c.records)
		}
		total := 0
		for _, a := range c.cfg.Attrs {
			total += a.Cardinality
		}
		if c.items > 0 && total != c.items {
			t.Errorf("%s items = %d, want %d", c.cfg.Name, total, c.items)
		}
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.cfg.Name, err)
		}
	}
	// Mushroom item total should be near 120 (cardinalities mirror UCI).
	m := 0
	for _, a := range MushroomConfig(1).Attrs {
		m += a.Cardinality
	}
	if m < 110 || m > 130 {
		t.Errorf("mushroom items = %d, want ~120", m)
	}
}

func TestScaledClamps(t *testing.T) {
	cfg := Scaled(ChessConfig(1), 0.001)
	if cfg.Records != 64 {
		t.Errorf("scaled records = %d, want clamp to 64", cfg.Records)
	}
	if Scaled(ChessConfig(1), 0.5).Records != 1598 {
		t.Error("half scale wrong")
	}
}

func TestPaperPrimary(t *testing.T) {
	if PaperPrimary("chess") != 0.60 || PaperPrimary("mushroom") != 0.05 ||
		PaperPrimary("pumsb") != 0.80 || PaperPrimary("x") != 0.5 {
		t.Error("paper primaries wrong")
	}
}

// TestCFICurveShape checks the Figure 8 characteristic on scaled-down
// data: the CFI count grows monotonically (weakly) as the primary
// threshold drops, and the datasets actually produce nontrivial CFI
// populations at their paper thresholds.
func TestCFICurveShape(t *testing.T) {
	for _, tc := range []struct {
		cfg    Config
		sweeps []float64 // descending thresholds
		floor  int       // min CFIs at the last (lowest) threshold
	}{
		{Scaled(ChessConfig(3), 0.15), []float64{0.9, 0.8, 0.7}, 50},
		{Scaled(MushroomConfig(3), 0.08), []float64{0.4, 0.3, 0.2}, 50},
	} {
		d, err := Generate(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp := itemset.NewSpace(d)
		prev := -1
		for _, th := range tc.sweeps {
			res, err := charm.MineSupport(d, sp, th)
			if err != nil {
				t.Fatal(err)
			}
			n := len(res.Closed)
			if prev >= 0 && n < prev {
				t.Errorf("%s: CFI count fell from %d to %d as threshold dropped to %v",
					tc.cfg.Name, prev, n, th)
			}
			prev = n
		}
		if prev < tc.floor {
			t.Errorf("%s: only %d CFIs at lowest threshold, want >= %d", tc.cfg.Name, prev, tc.floor)
		}
	}
}

// TestLocalPatternsCreateLocalStructure verifies the Simpson's-paradox
// setup: the planted itemsets are much more frequent inside their region
// than globally.
func TestLocalPatternsCreateLocalStructure(t *testing.T) {
	cfg := Scaled(MushroomConfig(11), 0.25)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lp := cfg.LocalPatterns[0]
	inRegion, inBoth, global := 0, 0, 0
	for r := 0; r < d.NumRecords(); r++ {
		match := true
		for a, v := range lp.Items {
			if d.Value(r, a) != v {
				match = false
				break
			}
		}
		if match {
			global++
		}
		if containsInt(lp.RangeValues, d.Value(r, lp.RangeAttr)) {
			inRegion++
			if match {
				inBoth++
			}
		}
	}
	if inRegion == 0 {
		t.Fatal("region empty")
	}
	localSupp := float64(inBoth) / float64(inRegion)
	globalSupp := float64(global) / float64(d.NumRecords())
	if localSupp < globalSupp+0.2 {
		t.Errorf("pattern not localized: local %.2f vs global %.2f", localSupp, globalSupp)
	}
	if localSupp < 0.6 {
		t.Errorf("local support %.2f too weak", localSupp)
	}
}
