package colarm

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/datagen"
	"colarm/internal/itemset"
	"colarm/internal/rules"
)

// TestDifferentialOracle checks every execution plan against an
// independent from-scratch oracle on randomized small datasets, and
// that parallel execution (Workers > 1) is byte-identical to serial.
//
// The oracle rebuilds both answer sets from first principles, sharing
// no code with the executor beyond the raw tidsets and the brute-force
// closed-itemset enumerator:
//
//   - MIP plans answer from the prestored closed frequent itemsets at
//     the primary support: each is projected onto the item attributes,
//     a proper projection is normalized to its global closure's
//     projection, and the body qualifies when its local support inside
//     the focal subset reaches the query threshold. (Dropping the
//     R-tree overlap condition is sound: a body with nonzero local
//     support always has an overlapping closure CFI that normalizes
//     back to it.)
//   - ARM answers from the closed frequent itemsets of the focal
//     subset itself, with no primary-support floor.
//
// Rules then follow by exhaustive antecedent/consequent split
// enumeration with exact local counting — valid because confidence is
// anti-monotone in the consequent, which makes the executor's
// level-wise pruning lossless.
func TestDifferentialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	totalRules := 0
	for trial := 0; trial < 12; trial++ {
		totalRules += runDifferentialTrial(t, rng, trial)
	}
	// Guard against a degenerate run where every comparison was of
	// empty rule sets.
	if totalRules == 0 {
		t.Fatal("no trial produced any rules; the differential comparison is vacuous")
	}
}

func runDifferentialTrial(t *testing.T, rng *rand.Rand, trial int) int {
	t.Helper()
	cfg := randomDiffConfig(rng, trial)
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatalf("trial %d: generate: %v", trial, err)
	}
	ds := &Dataset{rel: d}
	primary := 0.15 + 0.2*rng.Float64()
	eng1, err := Open(ds, Options{PrimarySupport: primary, Workers: 1})
	if err != nil {
		t.Fatalf("trial %d: open serial: %v", trial, err)
	}
	eng4, err := Open(ds, Options{PrimarySupport: primary, Workers: 4})
	if err != nil {
		t.Fatalf("trial %d: open parallel: %v", trial, err)
	}

	sp := itemset.NewSpace(d)
	tids := itemset.ItemTidsets(d, sp)
	m := d.NumRecords()

	totalRules := 0
	for qi := 0; qi < 2; qi++ {
		q := randomDiffQuery(rng, ds)
		label := fmt.Sprintf("trial %d query %d (%+v, primary %.3f)", trial, qi, q, primary)

		// Focal subset membership, from raw record labels only.
		restricted := make(map[int]map[string]bool)
		for attr, vals := range q.Range {
			ai := d.AttrIndex(attr)
			set := make(map[string]bool, len(vals))
			for _, v := range vals {
				set[v] = true
			}
			restricted[ai] = set
		}
		dq := bitset.New(m)
		for r := 0; r < m; r++ {
			rec := ds.Record(r)
			in := true
			for ai, set := range restricted {
				if !set[rec[ai]] {
					in = false
					break
				}
			}
			if in {
				dq.Add(r)
			}
		}
		size := dq.Count()

		mask := make([]bool, d.NumAttrs())
		if len(q.ItemAttributes) == 0 {
			for a := range mask {
				mask[a] = true
			}
		} else {
			for _, name := range q.ItemAttributes {
				mask[d.AttrIndex(name)] = true
			}
		}
		localCount := func(x itemset.Set) int {
			acc := bitset.Intersect(dq, tids[x[0]])
			for _, it := range x[1:] {
				acc.And(tids[it])
			}
			return acc.Count()
		}

		var expMIP, expARM []Rule
		if size > 0 {
			minCount := charm.CountFor(q.MinSupport, size)
			expMIP = wrapExpected(sp, oracleMIPRules(sp, tids, m, mask, primary, minCount, size,
				q.MinConfidence, q.MaxConsequent, localCount))
			expARM = wrapExpected(sp, oracleARMRules(sp, tids, dq, m, mask, minCount, size,
				q.MinConfidence, q.MaxConsequent, localCount))
		}

		for _, plan := range []Plan{SEV, SVS, SSEV, SSVS, SSEUV, ARM, Auto} {
			pq := q
			pq.Plan = plan
			res1, err := eng1.Mine(pq)
			if err != nil {
				t.Fatalf("%s: plan %s serial: %v", label, plan, err)
			}
			want := expMIP
			if res1.Stats.Plan == ARM {
				want = expARM
			}
			if !reflect.DeepEqual(res1.Rules, want) {
				t.Fatalf("%s: plan %s: %d rules, oracle expects %d\ngot:  %v\nwant: %v",
					label, plan, len(res1.Rules), len(want), res1.Rules, want)
			}
			res4, err := eng4.Mine(pq)
			if err != nil {
				t.Fatalf("%s: plan %s parallel: %v", label, plan, err)
			}
			if !reflect.DeepEqual(res4.Rules, res1.Rules) {
				t.Fatalf("%s: plan %s: parallel rules differ from serial", label, plan)
			}
			s1, s4 := res1.Stats, res4.Stats
			s1.DurationNanos, s4.DurationNanos = 0, 0
			if s1 != s4 {
				t.Fatalf("%s: plan %s: parallel stats differ from serial\nserial:   %+v\nparallel: %+v",
					label, plan, s1, s4)
			}
			totalRules += len(res1.Rules)
		}
	}
	return totalRules
}

// randomDiffConfig builds a small random generator configuration:
// 40-120 records over 3-5 attributes of cardinality 2-4.
func randomDiffConfig(rng *rand.Rand, trial int) datagen.Config {
	nAttrs := 3 + rng.Intn(3)
	nClusters := 2 + rng.Intn(2)
	clusters := make([]float64, nClusters)
	for i := range clusters {
		clusters[i] = 1 / float64(nClusters)
	}
	attrs := make([]datagen.AttrSpec, nAttrs)
	for a := range attrs {
		align := make([]float64, nClusters)
		for c := range align {
			align[c] = 0.3 + 0.6*rng.Float64()
		}
		attrs[a] = datagen.AttrSpec{
			Name:        fmt.Sprintf("a%d", a),
			Cardinality: 2 + rng.Intn(3),
			Align:       align,
		}
	}
	return datagen.Config{
		Name:     fmt.Sprintf("diff%d", trial),
		Records:  40 + rng.Intn(81),
		Attrs:    attrs,
		Clusters: clusters,
		Skew:     rng.Float64(),
		Seed:     rng.Int63(),
	}
}

// randomDiffQuery picks a random focal region, item-attribute set and
// thresholds over the dataset's vocabulary.
func randomDiffQuery(rng *rand.Rand, ds *Dataset) Query {
	attrs := ds.Attributes()
	q := Query{
		Range:         map[string][]string{},
		MinSupport:    0.2 + 0.4*rng.Float64(),
		MinConfidence: 0.4 + 0.5*rng.Float64(),
		MaxConsequent: rng.Intn(3),
	}
	for _, ai := range rng.Perm(len(attrs))[:rng.Intn(3)] {
		vals, _ := ds.Values(attrs[ai])
		keep := 1 + rng.Intn(len(vals))
		perm := rng.Perm(len(vals))[:keep]
		sel := make([]string, 0, keep)
		for _, vi := range perm {
			sel = append(sel, vals[vi])
		}
		q.Range[attrs[ai]] = sel
	}
	if rng.Intn(2) == 0 && len(attrs) > 2 {
		n := 2 + rng.Intn(len(attrs)-1)
		for _, ai := range rng.Perm(len(attrs))[:min(n, len(attrs))] {
			q.ItemAttributes = append(q.ItemAttributes, attrs[ai])
		}
	}
	return q
}

// oracleMIPRules derives the MIP-plan answer from scratch.
func oracleMIPRules(sp *itemset.Space, tids []*bitset.Set, m int, mask []bool,
	primary float64, minCount, size int, minConf float64, maxCons int,
	localCount func(itemset.Set) int) []rules.Rule {
	primaryCount := charm.CountFor(primary, m)
	closure := func(b itemset.Set) itemset.Set {
		tb := tids[b[0]].Clone()
		for _, it := range b[1:] {
			tb.And(tids[it])
		}
		var out itemset.Set
		for it := 0; it < sp.NumItems(); it++ {
			if tb.SubsetOf(tids[it]) {
				out = append(out, itemset.Item(it))
			}
		}
		return out
	}
	seen := make(map[string]bool)
	var bodies []itemset.Set
	for _, z := range charm.BruteForceClosed(tids, m, primaryCount) {
		body, all := z.Items.RestrictedTo(sp, mask)
		if len(body) < 2 {
			continue
		}
		if !all {
			body, _ = closure(body).RestrictedTo(sp, mask)
			if len(body) < 2 {
				continue
			}
		}
		if k := body.Key(); !seen[k] {
			seen[k] = true
			bodies = append(bodies, body)
		}
	}
	var out []rules.Rule
	for _, body := range bodies {
		if local := localCount(body); local >= minCount {
			out = append(out, enumerateSplits(body, local, size, maxCons, minConf, localCount)...)
		}
	}
	out = rules.Dedupe(out)
	rules.SortCanonical(out)
	return out
}

// oracleARMRules derives the from-scratch plan's answer independently.
func oracleARMRules(sp *itemset.Space, tids []*bitset.Set, dq *bitset.Set, m int,
	mask []bool, minCount, size int, minConf float64, maxCons int,
	localCount func(itemset.Set) int) []rules.Rule {
	localTids := make([]*bitset.Set, sp.NumItems())
	for a := 0; a < sp.NumAttrs(); a++ {
		if !mask[a] {
			continue
		}
		for v := 0; v < sp.Cardinality(a); v++ {
			it := sp.ItemOf(a, v)
			localTids[it] = bitset.Intersect(dq, tids[it])
		}
	}
	var out []rules.Rule
	for _, cl := range charm.BruteForceClosed(localTids, m, minCount) {
		if len(cl.Items) >= 2 {
			out = append(out, enumerateSplits(cl.Items, cl.Support, size, maxCons, minConf, localCount)...)
		}
	}
	out = rules.Dedupe(out)
	rules.SortCanonical(out)
	return out
}

// enumerateSplits emits every antecedent/consequent split of body whose
// confidence reaches minConf, by exhaustive enumeration.
func enumerateSplits(body itemset.Set, local, size, maxCons int, minConf float64,
	localCount func(itemset.Set) int) []rules.Rule {
	n := len(body)
	capY := maxCons
	if capY <= 0 || capY > n-1 {
		capY = n - 1
	}
	var out []rules.Rule
	for bits := 1; bits < 1<<n-1; bits++ {
		var x, y itemset.Set
		for i, it := range body {
			if bits&(1<<i) != 0 {
				y = append(y, it)
			} else {
				x = append(x, it)
			}
		}
		if len(y) > capY {
			continue
		}
		xc := localCount(x)
		if xc <= 0 {
			continue
		}
		conf := float64(local) / float64(xc)
		if conf < minConf {
			continue
		}
		out = append(out, rules.Rule{
			Antecedent:      x,
			Consequent:      y,
			SupportCount:    local,
			AntecedentCount: xc,
			ConsequentCount: localCount(y),
			SubsetSize:      size,
			Support:         float64(local) / float64(size),
			Confidence:      conf,
		})
	}
	return out
}

// wrapExpected converts oracle rules to the facade representation the
// engine returns.
func wrapExpected(sp *itemset.Space, rs []rules.Rule) []Rule {
	var out []Rule
	for _, r := range rs {
		out = append(out, wrapRule(r, sp.Labels(r.Antecedent), sp.Labels(r.Consequent)))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestShardDifferential checks that a sharded engine is indistinguishable
// from the monolithic one: for K in {1, 2, 3, 7}, serial and parallel,
// all six forced plans must return byte-identical rules AND statistics
// on randomized datasets — fresh, with a live delta (inserts and
// deletes), after a rebuild (compacting monolith vs ghost-preserving
// sharded consolidation), and after post-rebuild ingestion. The small
// random item spaces keep the scatter catalog (per-shard mining + cross-
// shard closure merge) active, so the merge path is what answers the
// delta-view and consolidation phases. K=1 additionally pins the Auto
// plan and byte-identical snapshots under the v5 magic; every K checks
// the sharded snapshot round-trips through save/load.
func TestShardDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	totalRules := 0
	for _, k := range []int{1, 2, 3, 7} {
		totalRules += runShardDifferential(t, rng, k)
	}
	if totalRules == 0 {
		t.Fatal("no shard trial produced any rules; the differential comparison is vacuous")
	}
}

func runShardDifferential(t *testing.T, rng *rand.Rand, k int) int {
	t.Helper()
	cfg := randomDiffConfig(rng, 100+k)
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatalf("K=%d: generate: %v", k, err)
	}
	ds := &Dataset{rel: d}
	primary := 0.15 + 0.2*rng.Float64()
	mono, err := Open(ds, Options{PrimarySupport: primary, Workers: 1})
	if err != nil {
		t.Fatalf("K=%d: open monolith: %v", k, err)
	}
	ser, err := Open(ds, Options{PrimarySupport: primary, Workers: 1, Shards: k})
	if err != nil {
		t.Fatalf("K=%d: open sharded serial: %v", k, err)
	}
	par, err := Open(ds, Options{PrimarySupport: primary, Workers: 4, Shards: k})
	if err != nil {
		t.Fatalf("K=%d: open sharded parallel: %v", k, err)
	}

	queries := make([]Query, 2)
	for i := range queries {
		queries[i] = randomDiffQuery(rng, ds)
	}
	forced := []Plan{SEV, SVS, SSEV, SSVS, SSEUV, ARM}

	totalRules := 0
	compare := func(stage string) {
		t.Helper()
		for qi, q := range queries {
			plansToRun := forced
			if k == 1 {
				// At K=1 the scatter cost terms vanish, so even the
				// optimizer's choice must match the monolith.
				plansToRun = append(plansToRun, Auto)
			}
			for _, plan := range plansToRun {
				pq := q
				pq.Plan = plan
				label := fmt.Sprintf("K=%d %s query %d plan %s", k, stage, qi, plan)
				resM, err := mono.Mine(pq)
				if err != nil {
					t.Fatalf("%s: monolith: %v", label, err)
				}
				resS, err := ser.Mine(pq)
				if err != nil {
					t.Fatalf("%s: sharded serial: %v", label, err)
				}
				resP, err := par.Mine(pq)
				if err != nil {
					t.Fatalf("%s: sharded parallel: %v", label, err)
				}
				if !reflect.DeepEqual(resS.Rules, resM.Rules) {
					t.Fatalf("%s: sharded rules differ from monolith\ngot:  %v\nwant: %v",
						label, resS.Rules, resM.Rules)
				}
				if !reflect.DeepEqual(resP.Rules, resM.Rules) {
					t.Fatalf("%s: parallel sharded rules differ from monolith", label)
				}
				sm, ss, sp := resM.Stats, resS.Stats, resP.Stats
				sm.DurationNanos, ss.DurationNanos, sp.DurationNanos = 0, 0, 0
				if ss != sm {
					t.Fatalf("%s: sharded stats differ from monolith\nmonolith: %+v\nsharded:  %+v",
						label, sm, ss)
				}
				if sp != sm {
					t.Fatalf("%s: parallel sharded stats differ from monolith\nmonolith: %+v\nsharded:  %+v",
						label, sm, sp)
				}
				totalRules += len(resM.Rules)
			}
			// The Auto choice may legitimately differ at K > 1 (the
			// model prices the scatter overhead), but serial and
			// parallel sharded engines share one model: their choices
			// and answers must agree with each other.
			if k > 1 {
				pq := q
				pq.Plan = Auto
				resS, err := ser.Mine(pq)
				if err != nil {
					t.Fatalf("K=%d %s query %d auto serial: %v", k, stage, qi, err)
				}
				resP, err := par.Mine(pq)
				if err != nil {
					t.Fatalf("K=%d %s query %d auto parallel: %v", k, stage, qi, err)
				}
				if resS.Stats.Plan != resP.Stats.Plan || !reflect.DeepEqual(resS.Rules, resP.Rules) {
					t.Fatalf("K=%d %s query %d: auto diverges between serial and parallel sharded engines", k, stage, qi)
				}
			}
		}
	}

	compare("fresh")

	// Live delta: one batch of inserts plus deletes, applied to all
	// three engines identically (the id spaces coincide until a
	// rebuild). The per-shard staleness must tile the global counters.
	ins, dels := randomIngestBatch(rng, ds, d.NumRecords(), true)
	for name, e := range map[string]*Engine{"monolith": mono, "sharded serial": ser, "sharded parallel": par} {
		if _, err := e.Ingest(ins, dels); err != nil {
			t.Fatalf("K=%d: ingest into %s: %v", k, name, err)
		}
	}
	if k > 1 {
		st := ser.Staleness()
		if len(st.Shards) != k {
			t.Fatalf("K=%d: staleness reports %d shards", k, len(st.Shards))
		}
		buf, tomb, recs := 0, 0, 0
		for _, ss := range st.Shards {
			buf += ss.BufferedRows
			tomb += ss.Tombstones
			recs += ss.Records
		}
		if buf != st.BufferedRows || tomb != st.Tombstones {
			t.Fatalf("K=%d: per-shard staleness does not tile the global counters: %+v", k, st)
		}
		if recs <= 0 {
			t.Fatalf("K=%d: per-shard record counts sum to %d", k, recs)
		}
	}
	compare("delta")

	// K=1 must also persist byte-for-byte like the monolith, under the
	// v5 snapshot magic (no sharded engine exists at K=1, so nothing
	// may leak into the stream).
	if k == 1 {
		var bufM, bufS bytes.Buffer
		if err := mono.Save(&bufM); err != nil {
			t.Fatalf("K=1: save monolith: %v", err)
		}
		if err := ser.Save(&bufS); err != nil {
			t.Fatalf("K=1: save sharded: %v", err)
		}
		if !bytes.Equal(bufM.Bytes(), bufS.Bytes()) {
			t.Fatalf("K=1: snapshot bytes differ from monolith (%d vs %d bytes)", bufM.Len(), bufS.Len())
		}
		if !bytes.Contains(bufS.Bytes()[:64], []byte("COLARM-MIP-v5")) {
			t.Fatalf("K=1: snapshot does not carry the v5 magic")
		}
	}

	// Rebuild: the monolith compacts record ids; the sharded engines
	// consolidate, keeping deleted rows as ghosts so the hash routing
	// stays stable. Every query surface must still agree exactly.
	ctx := context.Background()
	mono2, err := mono.Rebuild(ctx)
	if err != nil {
		t.Fatalf("K=%d: rebuild monolith: %v", k, err)
	}
	ser2, err := ser.Rebuild(ctx)
	if err != nil {
		t.Fatalf("K=%d: rebuild sharded serial: %v", k, err)
	}
	par2, err := par.Rebuild(ctx)
	if err != nil {
		t.Fatalf("K=%d: rebuild sharded parallel: %v", k, err)
	}
	mono, ser, par = mono2, ser2, par2
	compare("rebuilt")

	// The consolidated sharded snapshot (v4 when ghosts exist) must
	// round-trip through save/load and keep answering exactly.
	var snap bytes.Buffer
	if err := ser.Save(&snap); err != nil {
		t.Fatalf("K=%d: save consolidated: %v", k, err)
	}
	loaded, err := LoadEngine(bytes.NewReader(snap.Bytes()), Options{Workers: 1, Shards: k})
	if err != nil {
		t.Fatalf("K=%d: load consolidated: %v", k, err)
	}
	for qi, q := range queries {
		for _, plan := range forced {
			pq := q
			pq.Plan = plan
			resM, err := mono.Mine(pq)
			if err != nil {
				t.Fatalf("K=%d loaded query %d plan %s: monolith: %v", k, qi, plan, err)
			}
			resL, err := loaded.Mine(pq)
			if err != nil {
				t.Fatalf("K=%d loaded query %d plan %s: %v", k, qi, plan, err)
			}
			sm, sl := resM.Stats, resL.Stats
			sm.DurationNanos, sl.DurationNanos = 0, 0
			if !reflect.DeepEqual(resL.Rules, resM.Rules) || sl != sm {
				t.Fatalf("K=%d loaded query %d plan %s: loaded snapshot diverges from monolith", k, qi, plan)
			}
		}
	}

	// Post-rebuild ingestion: inserts only — after a rebuild the id
	// spaces legitimately diverge (the monolith renumbered, the shards
	// did not), so a delete id would name different records.
	ins2, _ := randomIngestBatch(rng, ds, 0, false)
	for name, e := range map[string]*Engine{"monolith": mono, "sharded serial": ser, "sharded parallel": par} {
		if _, err := e.Ingest(ins2, nil); err != nil {
			t.Fatalf("K=%d: post-rebuild ingest into %s: %v", k, name, err)
		}
	}
	compare("post-rebuild delta")

	return totalRules
}

// randomIngestBatch builds a random label-form insert batch over the
// dataset's vocabulary, plus (optionally) random deletes over the id
// space [0, idSpace).
func randomIngestBatch(rng *rand.Rand, ds *Dataset, idSpace int, withDeletes bool) ([]map[string]string, []int) {
	attrs := ds.Attributes()
	ins := make([]map[string]string, 3+rng.Intn(6))
	for i := range ins {
		rec := make(map[string]string, len(attrs))
		for _, a := range attrs {
			vals, _ := ds.Values(a)
			rec[a] = vals[rng.Intn(len(vals))]
		}
		ins[i] = rec
	}
	var dels []int
	if withDeletes {
		for n := 1 + rng.Intn(4); n > 0; n-- {
			dels = append(dels, rng.Intn(idSpace))
		}
	}
	return ins, dels
}
