package mip

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/datagen"
	"colarm/internal/itemset"
)

// The golden-bytes compat corpus pins the snapshot lineage: crafted v2,
// v3 and v4 streams (the formats of earlier releases) committed as
// testdata, plus v5 reference streams for the same indexes.
// TestGoldenSnapshotCompat asserts every legacy stream loads under the
// v5 reader and converges — bit for bit — to the same re-serialized v5
// bytes as the v5 reference, so a reader change that silently alters
// what old files restore to fails the suite.
//
// Byte comparisons are done between streams written in the SAME
// process: gob allocates wire type ids from a process-global registry,
// so the exact bytes of a stream depend on which gob types were
// encoded earlier in the process. Raw committed bytes are therefore
// only asserted to LOAD (self-describing streams), while equality is
// asserted between in-process re-serializations.
//
// Regenerate with:
//
//	COLARM_WRITE_GOLDEN=1 go test ./internal/mip/ -run TestWriteGoldenSnapshots
//
// Regeneration is only legitimate when introducing a new current
// format; the v2/v3/v4 files must then still byte-match their previous
// committed versions (they describe frozen formats).

// goldenPlainIndex builds the deterministic ghost-free index the v2/v3
// goldens describe: the paper's salary dataset at the usual thresholds.
func goldenPlainIndex(t testing.TB) *Index {
	t.Helper()
	idx, err := Build(datagen.Salary(), Options{PrimarySupport: 0.18, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// goldenPlainMeta carries a non-trivial engine state so the metadata
// fields are pinned too.
func goldenPlainMeta() SnapshotMeta {
	return SnapshotMeta{
		Primary:    0.18,
		Generation: 2,
		DeltaRows:  [][]int32{{0, 1, 0, 1, 0, 1}, {1, 0, 1, 0, 1, 0}},
		DeltaDels:  []int32{3},
	}
}

// goldenGhostIndex builds the deterministic ghost-carrying index the
// v4 golden describes: salary with two records consolidated away —
// exactly the layout a sharded consolidation produces (ids stable,
// deleted rows outside the Live mask, catalog mined over live records).
func goldenGhostIndex(t testing.TB) *Index {
	t.Helper()
	d := datagen.Salary()
	sp := itemset.NewSpace(d)
	live := bitset.New(d.NumRecords())
	live.Fill()
	live.Remove(3)
	live.Remove(7)
	tids := itemset.ItemTidsets(d, sp)
	for _, s := range tids {
		s.And(live)
		s.Optimize()
	}
	primaryCount := charm.CountFor(0.18, live.Count())
	res, err := charm.MineTidsets(tids, d.NumRecords(), primaryCount)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Assemble(d, sp, tids, res, primaryCount, Options{Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	idx.Live = live
	return idx
}

// legacySnapshotOf rebuilds the v2/v3/v4 payload struct for an index,
// with tidsets in the dense v2 encoding or the hybrid v3+ encoding.
func legacySnapshotOf(t testing.TB, idx *Index, dense bool, meta SnapshotMeta) *snapshot {
	t.Helper()
	snap := &snapshot{
		Name:         idx.Dataset.Name,
		PrimaryCount: idx.PrimaryCount,
		Fanout:       idx.RTree.Fanout(),
		Meta:         meta,
	}
	for _, a := range idx.Dataset.Attrs {
		snap.Attrs = append(snap.Attrs, snapAttr{Name: a.Name, Values: a.Values})
	}
	m, n := idx.Dataset.NumRecords(), idx.Dataset.NumAttrs()
	for r := 0; r < m; r++ {
		for a := 0; a < n; a++ {
			snap.Rows = append(snap.Rows, int32(idx.Dataset.Value(r, a)))
		}
	}
	for id := 0; id < idx.ITTree.Size(); id++ {
		items := make([]int32, 0, len(idx.ITTree.Items(id)))
		for _, it := range idx.ITTree.Items(id) {
			items = append(items, int32(it))
		}
		var tb []byte
		if dense {
			tb = denseV2Bytes(idx.ITTree.Tids(id))
		} else {
			var err error
			tb, err = idx.ITTree.Tids(id).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
		}
		snap.CFIs = append(snap.CFIs, snapCFI{Items: items, Tids: tb, Support: idx.ITTree.Support(id)})
		snap.Boxes = append(snap.Boxes, snapBox{Lo: idx.Boxes[id].Lo, Hi: idx.Boxes[id].Hi})
	}
	return snap
}

func encodeLegacy(t testing.TB, magic string, snap *snapshot, live *bitset.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(magic); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(snap); err != nil {
		t.Fatal(err)
	}
	if live != nil {
		raw, err := live.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(raw); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestWriteGoldenSnapshots regenerates the committed corpus; guarded so
// a normal test run never rewrites testdata.
func TestWriteGoldenSnapshots(t *testing.T) {
	if os.Getenv("COLARM_WRITE_GOLDEN") == "" {
		t.Skip("set COLARM_WRITE_GOLDEN=1 to regenerate the golden snapshot corpus")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		if err := os.WriteFile(filepath.Join("testdata", name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	plain := goldenPlainIndex(t)
	meta := goldenPlainMeta()
	write("golden_v2.snapshot", encodeLegacy(t, snapshotMagicV2, legacySnapshotOf(t, plain, true, meta), nil))
	write("golden_v3.snapshot", encodeLegacy(t, snapshotMagicV3, legacySnapshotOf(t, plain, false, meta), nil))
	var v5 bytes.Buffer
	if _, err := plain.WriteSnapshot(&v5, meta); err != nil {
		t.Fatal(err)
	}
	write("golden_v5.snapshot", v5.Bytes())

	ghost := goldenGhostIndex(t)
	write("golden_v4.snapshot", encodeLegacy(t, snapshotMagicV4, legacySnapshotOf(t, ghost, false, SnapshotMeta{Primary: 0.18, Generation: 1}), ghost.Live))
	var v5g bytes.Buffer
	if _, err := ghost.WriteSnapshot(&v5g, SnapshotMeta{Primary: 0.18, Generation: 1}); err != nil {
		t.Fatal(err)
	}
	write("golden_v5_ghost.snapshot", v5g.Bytes())
}

// loadGolden reads and restores one committed stream.
func loadGolden(t *testing.T, file string) (*Index, SnapshotMeta) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatalf("golden corpus missing (regenerate with COLARM_WRITE_GOLDEN=1): %v", err)
	}
	idx, meta, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("loading %s: %v", file, err)
	}
	if err := idx.Validate(); err != nil {
		t.Fatalf("%s restored an invalid index: %v", file, err)
	}
	return idx, meta
}

// reserialize writes an index back out with the current (v5) writer.
func reserialize(t *testing.T, idx *Index, meta SnapshotMeta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteSnapshot(&buf, meta); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenSnapshotCompat loads every committed legacy stream and
// asserts it restores to exactly the index its v5 reference stream
// describes: re-serializing the legacy load (with its loaded metadata)
// must match the re-serialized v5 reference load bit for bit, and the
// v5 reference must itself match a fresh deterministic build — so the
// whole lineage converges on one set of bytes.
func TestGoldenSnapshotCompat(t *testing.T) {
	groups := []struct {
		name   string
		ref    string   // committed v5 reference stream
		legacy []string // committed legacy streams of the same index
		fresh  func() []byte
	}{
		{
			name:   "plain",
			ref:    "golden_v5.snapshot",
			legacy: []string{"golden_v2.snapshot", "golden_v3.snapshot"},
			fresh: func() []byte {
				return reserialize(t, goldenPlainIndex(t), goldenPlainMeta())
			},
		},
		{
			name:   "ghost",
			ref:    "golden_v5_ghost.snapshot",
			legacy: []string{"golden_v4.snapshot"},
			fresh: func() []byte {
				return reserialize(t, goldenGhostIndex(t), SnapshotMeta{Primary: 0.18, Generation: 1})
			},
		},
	}
	for _, g := range groups {
		t.Run(g.name, func(t *testing.T) {
			refIdx, refMeta := loadGolden(t, g.ref)
			refBytes := reserialize(t, refIdx, refMeta)

			// The v5 reference round-trips: loading the re-serialized
			// bytes and writing again is a fixed point.
			againIdx, againMeta, err := ReadSnapshot(bytes.NewReader(refBytes))
			if err != nil {
				t.Fatalf("%s does not round-trip: %v", g.ref, err)
			}
			if !bytes.Equal(reserialize(t, againIdx, againMeta), refBytes) {
				t.Fatalf("%s: re-serialization is not a fixed point", g.ref)
			}

			for _, file := range g.legacy {
				idx, meta := loadGolden(t, file)
				got := reserialize(t, idx, meta)
				if !bytes.Equal(got, refBytes) {
					t.Fatalf("%s re-serializes to %d bytes differing from the %s load (%d bytes): the legacy stream does not restore identically",
						file, len(got), g.ref, len(refBytes))
				}
			}

			// The corpus must describe what the current builder
			// produces for the same deterministic inputs.
			if freshBytes := g.fresh(); !bytes.Equal(freshBytes, refBytes) {
				t.Fatalf("fresh deterministic build no longer matches the committed %s", g.ref)
			}
		})
	}
}
