package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"colarm/internal/advisor"
	"colarm/internal/core"
	"colarm/internal/datagen"
	"colarm/internal/obs"
	"colarm/internal/plans"
)

// AdvisorCalibration is the online-recalibration half of the advisor
// benchmark: the optimizer's plan-choice accuracy and mean query
// latency over the same workload, measured under the static units and
// again after the recalibrator has evaluated (and possibly swapped)
// against the observed operator timings.
type AdvisorCalibration struct {
	Dataset string `json:"dataset"`
	Records int    `json:"records"`
	Queries int    `json:"queries"`

	AccuracyBefore float64 `json:"accuracy_before"`
	AccuracyAfter  float64 `json:"accuracy_after"`
	MeanBeforeNs   int64   `json:"mean_before_ns"`
	MeanAfterNs    int64   `json:"mean_after_ns"`

	// Recalibrated reports whether the guardrail let a unit swap
	// through; DriftBefore/DriftAfter bracket the evidence (after a
	// swap the residual drift collapses toward 0).
	Recalibrated bool    `json:"recalibrated"`
	DriftBefore  float64 `json:"drift_before"`
	DriftAfter   float64 `json:"drift_after"`
	Samples      int     `json:"samples"`

	// The replay differential that admitted (or blocked) the swap: the
	// candidate units' choices replayed over the logged all-plan
	// evaluations must not exceed the static choices' measured cost by
	// more than the tolerance.
	GuardrailWindow      int     `json:"guardrail_window"`
	GuardrailWorstRegret float64 `json:"guardrail_worst_regret"`
	GuardrailTolerance   float64 `json:"guardrail_tolerance"`
	GuardrailPassed      bool    `json:"guardrail_passed"`
}

// AdvisorSkewed is the index-advisor half: a skewed workload of
// localized low-support queries the base index's applicability gate
// forces to ARM, before and after the advisor's recommended secondary
// MIP-index (at a lower primary support) is applied.
type AdvisorSkewed struct {
	Dataset string `json:"dataset"`
	Records int    `json:"records"`
	Queries int    `json:"queries"`

	// BasePrimary/SecondaryPrimary are the primary supports of the base
	// index and the advisor-recommended secondary.
	BasePrimary      float64 `json:"base_primary"`
	SecondaryPrimary float64 `json:"secondary_primary"`
	// MinBenefitFactor is the pay-for-itself bar the run used: a
	// seconds-long bench cannot amortize a real build against its tiny
	// workload, so the bar is scaled down and recorded here.
	MinBenefitFactor float64 `json:"min_benefit_factor"`

	ForcedARM     int `json:"forced_arm"`
	SecondaryWins int `json:"secondary_wins"`

	MeanBeforeNs int64 `json:"skewed_mean_before_ns"`
	MeanAfterNs  int64 `json:"skewed_mean_after_ns"`

	// The reclaim differential: mean latency of exactly the queries the
	// optimizer's argmin routed through the secondary index, before
	// (forced to ARM) and after (answered from prestored CFIs). Zero
	// when no query was reclaimed.
	ReclaimedMeanBeforeNs int64 `json:"reclaimed_mean_before_ns"`
	ReclaimedMeanAfterNs  int64 `json:"reclaimed_mean_after_ns"`
}

// AdvisorReport is the JSON perf-trajectory artifact of the self-tuning
// optimizer benchmark (bench kind "advisor" in BENCH_<pr>.json).
type AdvisorReport struct {
	Bench     string `json:"bench"`
	PR        int    `json:"pr"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	Calibration AdvisorCalibration `json:"calibration"`
	Skewed      AdvisorSkewed      `json:"skewed"`
}

// WriteJSON writes the report in the BENCH_<pr>.json artifact format.
func (r *AdvisorReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// RunAdvisor benchmarks the self-tuning optimizer end to end: the
// recalibration loop on a mixed mushroom workload (accuracy and latency
// under static vs live units), then the index advisor on a skewed
// workload of forced-ARM queries (latency before vs after the
// recommended secondary index).
func RunAdvisor(full bool, queries int, seed int64) (*AdvisorReport, error) {
	rep := &AdvisorReport{
		Bench:     "advisor",
		PR:        CurrentPR,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	cal, err := runAdvisorCalibration(full, queries, seed)
	if err != nil {
		return nil, err
	}
	rep.Calibration = cal
	sk, err := runAdvisorSkewed(full, queries, seed)
	if err != nil {
		return nil, err
	}
	rep.Skewed = sk
	return rep, nil
}

// runAdvisorCalibration measures plan-choice accuracy and mean latency
// over one workload before and after online recalibration. The engine
// starts on the hardware-typical default units (no microbenchmark
// calibration), so the observed-timing evidence has real bias to
// correct; whether a swap happens is the guardrail's call.
func runAdvisorCalibration(full bool, queries int, seed int64) (AdvisorCalibration, error) {
	cal := AdvisorCalibration{Queries: queries}
	spec, err := SpecByName(Specs(full, seed), "mushroom")
	if err != nil {
		return cal, err
	}
	d, err := datagen.Generate(spec.Config)
	if err != nil {
		return cal, err
	}
	eng, err := core.NewEngine(d, core.Options{
		PrimarySupport: spec.Primary,
		CheckMode:      plans.ScanCheck,
	})
	if err != nil {
		return cal, err
	}
	cal.Dataset, cal.Records = spec.Name, d.NumRecords()

	env := &Env{Spec: spec, Dataset: d, Engine: eng}
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*plans.Query, queries)
	for i := range qs {
		frac := spec.DQFracs[i%len(spec.DQFracs)]
		minSupp := spec.MinSupps[i%len(spec.MinSupps)]
		minConf := spec.MinConfs[i%len(spec.MinConfs)]
		qs[i] = env.QueryFor(env.RandomFocalSubset(rng, frac), minSupp, minConf)
	}

	// Before: each query is mined traced (feeding per-operator timing
	// evidence) and evaluated against all plans (feeding the guardrail
	// replay window and scoring the static-units choice).
	correct := 0
	for _, q := range qs {
		tq := *q
		tq.Trace = &obs.Trace{}
		if _, _, err := eng.Mine(&tq); err != nil {
			return cal, err
		}
		ev, err := eng.EvaluatePlans(q)
		if err != nil {
			return cal, err
		}
		if ev.Correct {
			correct++
		}
	}
	cal.AccuracyBefore = float64(correct) / float64(len(qs))
	before, err := meanMine(eng, qs)
	if err != nil {
		return cal, err
	}
	cal.MeanBeforeNs = before

	// Recalibrate until the streak gate resolves (a swap, or a stable
	// no-swap verdict).
	rep := eng.Recalibrate()
	cal.DriftBefore = rep.DriftScore
	for i := 0; i < 4 && !rep.Swapped; i++ {
		rep = eng.Recalibrate()
	}
	cal.Recalibrated = rep.Swaps > 0
	cal.Samples = rep.Samples
	cal.GuardrailWindow = rep.Guardrail.Window
	cal.GuardrailWorstRegret = rep.Guardrail.WorstRegret
	cal.GuardrailTolerance = rep.Guardrail.Tolerance
	cal.GuardrailPassed = rep.Guardrail.Passed

	// After: the same workload scored and timed under the live units.
	correct = 0
	for _, q := range qs {
		ev, err := eng.EvaluatePlans(q)
		if err != nil {
			return cal, err
		}
		if ev.Correct {
			correct++
		}
	}
	cal.AccuracyAfter = float64(correct) / float64(len(qs))
	after, err := meanMine(eng, qs)
	if err != nil {
		return cal, err
	}
	cal.MeanAfterNs = after
	cal.DriftAfter = eng.Advisor.Calibration().DriftScore
	return cal, nil
}

// runAdvisorSkewed replays a skewed workload against a mushroom index
// built at a deliberately high primary support (the index a DBA sized
// for a different workload): every query's localized threshold sits
// below the primary count, so the applicability gate forces them all to
// ARM. The advisor mines the logged forced-ARM evidence, recommends a
// secondary MIP-index at the workload's 10th-percentile localized
// count, and the benchmark measures the reclaim: the argmin now routes
// the dominant query shape through the secondary's prestored CFIs.
//
// The workload is skewed on purpose: most queries are large focal
// subsets (half the records) at high minsupport — the shape where
// prestored CFIs beat re-mining — with a minority of smaller subsets
// whose lower localized counts pull the advisor's percentile target
// down to an index that serves the large queries with room to spare.
func runAdvisorSkewed(full bool, queries int, seed int64) (AdvisorSkewed, error) {
	sk := AdvisorSkewed{
		Queries:     queries,
		BasePrimary: 0.5,
		// The workload runs for seconds; a real build cost amortizes over
		// hours. Scale the pay-for-itself bar accordingly (and honestly:
		// the factor is part of the committed artifact).
		MinBenefitFactor: 0.01,
	}
	spec, err := SpecByName(Specs(full, seed), "mushroom")
	if err != nil {
		return sk, err
	}
	d, err := datagen.Generate(spec.Config)
	if err != nil {
		return sk, err
	}
	eng, err := core.NewEngine(d, core.Options{
		PrimarySupport: sk.BasePrimary,
		CheckMode:      plans.ScanCheck,
		Advisor:        advisor.Config{MinBenefitFactor: sk.MinBenefitFactor},
	})
	if err != nil {
		return sk, err
	}
	sk.Dataset, sk.Records = spec.Name, d.NumRecords()

	env := &Env{Spec: spec, Dataset: d, Engine: eng}
	rng := rand.New(rand.NewSource(seed + 1))
	qs := make([]*plans.Query, 0, queries)
	for tries := 0; len(qs) < queries; tries++ {
		if tries > 50*queries {
			return sk, fmt.Errorf("bench: could not sample %d gate-forced queries (got %d)", queries, len(qs))
		}
		frac := 0.50
		if len(qs)%8 == 7 {
			frac = 0.20 // the minority shape that anchors the percentile target
		}
		q := env.QueryFor(env.RandomFocalSubset(rng, frac), 0.80, 0.90)
		_, localCount, primaryCount := eng.Executor.Localized(q)
		if localCount >= primaryCount {
			continue // the workload must consist of gate-forced queries
		}
		qs = append(qs, q)
	}

	// Before: every round replays the whole workload (feeding the query
	// log with measured ARM costs) until the advisor's benefit account
	// clears the build bar, then a timing pass takes the best of three
	// runs per query — the before-side of the differential (minimums
	// because single-shot timings on a busy host are too noisy to gate
	// a committed artifact on).
	stats0 := eng.Advisor.WorkloadStats()
	var rounds int
	recommended := false
	for rounds = 0; rounds < 30 && !recommended; rounds++ {
		for _, q := range qs {
			if _, _, err := eng.Mine(q); err != nil {
				return sk, err
			}
		}
		for _, r := range eng.Recommendations() {
			if r.Action == "build" {
				recommended = true
			}
		}
	}
	if !recommended {
		return sk, fmt.Errorf("bench: advisor never recommended a build after %d workload rounds", rounds)
	}
	before, err := timeQueries(eng, qs)
	if err != nil {
		return sk, err
	}
	sk.MeanBeforeNs = mean(before)
	sk.ForcedARM = eng.Advisor.WorkloadStats().ForcedARM - stats0.ForcedARM

	applied, err := eng.ApplyRecommendations(context.Background())
	if err != nil {
		return sk, err
	}
	for _, r := range applied {
		if r.Action == "build" {
			sk.SecondaryPrimary = r.Primary
		}
	}

	// After: the same workload, now eligible for the secondary's plans.
	// Plan choice is deterministic given the installed indexes, so one
	// extra replay decides which queries the secondary reclaimed.
	after, err := timeQueries(eng, qs)
	if err != nil {
		return sk, err
	}
	var recBefore, recAfter []int64
	for i, q := range qs {
		w0 := eng.Advisor.WorkloadStats().SecondaryWins
		if _, _, err := eng.Mine(q); err != nil {
			return sk, err
		}
		if eng.Advisor.WorkloadStats().SecondaryWins > w0 {
			sk.SecondaryWins++
			recBefore = append(recBefore, before[i])
			recAfter = append(recAfter, after[i])
		}
	}
	sk.MeanAfterNs = mean(after)
	if len(recBefore) > 0 {
		sk.ReclaimedMeanBeforeNs = mean(recBefore)
		sk.ReclaimedMeanAfterNs = mean(recAfter)
	}
	return sk, nil
}

// timeQueries times each query as the minimum of three mines (after
// the caller has already warmed the engine on the same workload).
func timeQueries(eng *core.Engine, qs []*plans.Query) ([]int64, error) {
	out := make([]int64, len(qs))
	for i, q := range qs {
		best := int64(0)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if _, _, err := eng.Mine(q); err != nil {
				return nil, err
			}
			if d := time.Since(t0).Nanoseconds(); best == 0 || d < best {
				best = d
			}
		}
		out[i] = best
	}
	return out, nil
}

// mean averages a slice of nanosecond samples.
func mean(ns []int64) int64 {
	var total int64
	for _, n := range ns {
		total += n
	}
	return total / int64(len(ns))
}

// meanMine times the workload (best of three per query) and returns
// the mean per-query latency in nanoseconds.
func meanMine(eng *core.Engine, qs []*plans.Query) (int64, error) {
	ns, err := timeQueries(eng, qs)
	if err != nil {
		return 0, err
	}
	return mean(ns), nil
}

// PrintAdvisor renders the report as text.
func PrintAdvisor(w io.Writer, rep *AdvisorReport) {
	c := rep.Calibration
	fmt.Fprintf(w, "self-tuning optimizer: %s/%s %d CPUs\n\n", rep.GOOS, rep.GOARCH, rep.CPUs)
	fmt.Fprintf(w, "recalibration (%s, %d records, %d queries):\n", c.Dataset, c.Records, c.Queries)
	fmt.Fprintf(w, "  accuracy  %5.1f%% -> %5.1f%%\n", 100*c.AccuracyBefore, 100*c.AccuracyAfter)
	fmt.Fprintf(w, "  mean mine %12s -> %12s\n", time.Duration(c.MeanBeforeNs), time.Duration(c.MeanAfterNs))
	fmt.Fprintf(w, "  drift     %.3f -> %.3f over %d samples (recalibrated: %v)\n",
		c.DriftBefore, c.DriftAfter, c.Samples, c.Recalibrated)
	if c.GuardrailWindow > 0 {
		fmt.Fprintf(w, "  guardrail replay: %d evaluations, worst regret %.3f (tolerance %.3f, passed: %v)\n",
			c.GuardrailWindow, c.GuardrailWorstRegret, c.GuardrailTolerance, c.GuardrailPassed)
	}
	s := rep.Skewed
	fmt.Fprintf(w, "\nindex advisor (%s, %d records, %d skewed queries, base primary %.2f):\n",
		s.Dataset, s.Records, s.Queries, s.BasePrimary)
	fmt.Fprintf(w, "  forced to ARM: %d queries; recommended secondary at primary %.4f\n",
		s.ForcedARM, s.SecondaryPrimary)
	fmt.Fprintf(w, "  mean mine %12s -> %12s\n",
		time.Duration(s.MeanBeforeNs), time.Duration(s.MeanAfterNs))
	fmt.Fprintf(w, "  reclaimed %d queries: %12s -> %12s\n",
		s.SecondaryWins, time.Duration(s.ReclaimedMeanBeforeNs), time.Duration(s.ReclaimedMeanAfterNs))
}
