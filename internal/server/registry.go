package server

import (
	"fmt"
	"sort"
	"sync"

	"colarm"
)

// Registry holds the named engines a server answers queries for, one
// per dataset. Engines are keyed by their dataset's name — the same
// name the query language's FROM clause and the HTTP API's "dataset"
// field use — and each registration carries a monotonically increasing
// generation: re-registering a name (a reloaded snapshot, a rebuilt
// index) bumps the generation, which retires every cached result keyed
// under the previous one without touching the cache itself.
//
// A Registry is safe for concurrent use; lookups are read-locked and
// engines themselves are safe for concurrent queries.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*engineEntry
}

type engineEntry struct {
	eng *colarm.Engine
	gen uint64
}

// NewRegistry creates an empty engine registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*engineEntry)}
}

// Register adds the engine under its dataset's name, replacing (and
// generation-bumping) any previous engine of the same name. It returns
// the new generation (1 for a first registration).
func (r *Registry) Register(eng *colarm.Engine) uint64 {
	name := eng.Dataset().Name()
	r.mu.Lock()
	defer r.mu.Unlock()
	gen := uint64(1)
	if prev, ok := r.byName[name]; ok {
		gen = prev.gen + 1
	}
	r.byName[name] = &engineEntry{eng: eng, gen: gen}
	return gen
}

// Get returns the engine registered under name and its generation.
func (r *Registry) Get(name string) (*colarm.Engine, uint64, error) {
	r.mu.RLock()
	e, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("server: no dataset %q registered", name)
	}
	return e.eng, e.gen, nil
}

// DatasetInfo describes one registered engine for the listing endpoint.
type DatasetInfo struct {
	Name       string   `json:"name"`
	Records    int      `json:"records"`
	Attributes []string `json:"attributes"`
	Partitions int      `json:"partitions"`
	Generation uint64   `json:"generation"`

	// Live-ingestion staleness: buffered post-build transactions and
	// whether the cost-based refresh policy has reached break-even.
	BufferedRows       int  `json:"bufferedRows"`
	Tombstones         int  `json:"tombstones"`
	RebuildRecommended bool `json:"rebuildRecommended"`

	// Shards lists per-shard record counts and drift on a sharded
	// engine (buffered inserts route by partition key); absent on a
	// monolithic one.
	Shards []ShardInfo `json:"shards,omitempty"`
}

// ShardInfo is one shard's slice of a dataset's staleness.
type ShardInfo struct {
	Shard        int    `json:"shard"`
	Records      int    `json:"records"`
	BufferedRows int    `json:"bufferedRows"`
	Tombstones   int    `json:"tombstones"`
	Version      uint64 `json:"version"`
}

// List describes every registered engine, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.byName))
	for name, e := range r.byName {
		ds := e.eng.Dataset()
		st := e.eng.Staleness()
		info := DatasetInfo{
			Name:               name,
			Records:            ds.NumRecords(),
			Attributes:         ds.Attributes(),
			Partitions:         e.eng.NumPartitions(),
			Generation:         e.gen,
			BufferedRows:       st.BufferedRows,
			Tombstones:         st.Tombstones,
			RebuildRecommended: st.RebuildRecommended,
		}
		for _, ss := range st.Shards {
			info.Shards = append(info.Shards, ShardInfo{
				Shard:        ss.Shard,
				Records:      ss.Records,
				BufferedRows: ss.BufferedRows,
				Tombstones:   ss.Tombstones,
				Version:      ss.Version,
			})
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
