// Package plans implements COLARM's online query processing phase
// (paper Section 4): the isolated mining operators — SEARCH,
// SUPPORTED-SEARCH, ELIMINATE, VERIFY, SUPPORTED-VERIFY, UNION, SELECT
// and ARM — and the six execution plans pipelined from them:
//
//	S-E-V      basic pipeline
//	S-VS       selection push-up (merge ELIMINATE into VERIFY)
//	SS-E-V     supported R-tree filter
//	SS-VS      supported filter + selection push-up
//	SS-E-U-V   supported filter + differential treatment of contained
//	           vs partially overlapped MIPs (Lemma 4.5)
//	ARM        traditional from-scratch rule mining over the focal subset
//
// The five MIP-index plans compute the identical canonical answer: the
// rules generated from the item-attribute projections (normalized to
// their closures) of every prestored closed frequent itemset that
// reaches minsupport within the focal subset, with every rule verified
// against minconfidence in the subset. They differ only in the work
// performed.
//
// The ARM plan is the from-scratch ground truth: it mines the extracted
// subset directly with CHARM, so it is not limited to itemsets above
// the index's primary support. Its answer covers the MIP plans' answer
// (every index rule reappears with the same antecedent, support count
// and confidence, represented through its local closure) and may
// additionally contain locally frequent rules the index cannot see.
package plans

import (
	"fmt"
	"strings"
	"time"

	"colarm/internal/itemset"
	"colarm/internal/mip"
	"colarm/internal/obs"
	"colarm/internal/qerr"
	"colarm/internal/rules"
)

// Kind identifies one of the six mining plans (paper Table 4).
type Kind int

const (
	SEV Kind = iota
	SVS
	SSEV
	SSVS
	SSEUV
	ARM
	numKinds
)

// Kinds lists every plan in display order.
func Kinds() []Kind { return []Kind{SEV, SVS, SSEV, SSVS, SSEUV, ARM} }

func (k Kind) String() string {
	switch k {
	case SEV:
		return "S-E-V"
	case SVS:
		return "S-VS"
	case SSEV:
		return "SS-E-V"
	case SSVS:
		return "SS-VS"
	case SSEUV:
		return "SS-E-U-V"
	case ARM:
		return "ARM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a plan name to its Kind. Matching ignores case and
// the "-"/"_" separators, so "S-E-V", "sev" and "SS_VS" all resolve.
func ParseKind(s string) (Kind, error) {
	want := normalizePlanName(s)
	if want != "" {
		for _, k := range Kinds() {
			if normalizePlanName(k.String()) == want {
				return k, nil
			}
		}
	}
	names := make([]string, 0, int(numKinds))
	for _, k := range Kinds() {
		names = append(names, k.String())
	}
	return 0, fmt.Errorf("plans: %w %q (valid plans: %s)", qerr.ErrUnknownPlan, s, strings.Join(names, ", "))
}

// normalizePlanName strips the separators plan names are written with
// and folds case, mapping every accepted spelling to one key.
func normalizePlanName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '-' || c == '_':
		case c >= 'a' && c <= 'z':
			b.WriteByte(c - 'a' + 'A')
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Query is one localized mining request (paper Section 2.2).
type Query struct {
	// Region is the focal subset D^Q selected by the RANGE clause.
	Region *itemset.Region
	// ItemAttrs flags, per attribute, whether it participates in rule
	// bodies (the ITEM ATTRIBUTES clause); nil means all attributes.
	ItemAttrs []bool
	// MinSupport is minsupp as a fraction of |D^Q|, in (0,1].
	MinSupport float64
	// MinConfidence is minconf in [0,1].
	MinConfidence float64
	// MaxConsequent caps rule consequent size (0 = unlimited).
	MaxConsequent int
	// Trace, when non-nil, receives one span per operator the plan
	// executes, plus the plan label and total duration. A Trace belongs
	// to one Run call — attach a fresh one per query. Nil (the default)
	// keeps execution on the untraced fast path.
	Trace *obs.Trace
}

// Validate checks the query parameters against an index.
func (q *Query) Validate(idx *mip.Index) error {
	if q.Region == nil {
		return fmt.Errorf("plans: query has no region")
	}
	if q.Region.Dims() != idx.Space.NumAttrs() {
		return fmt.Errorf("plans: region has %d dims, dataset has %d attributes", q.Region.Dims(), idx.Space.NumAttrs())
	}
	if q.MinSupport <= 0 || q.MinSupport > 1 {
		return fmt.Errorf("plans: %w: minsupport %v outside (0,1]", qerr.ErrBadThreshold, q.MinSupport)
	}
	if q.MinConfidence < 0 || q.MinConfidence > 1 {
		return fmt.Errorf("plans: %w: minconfidence %v outside [0,1]", qerr.ErrBadThreshold, q.MinConfidence)
	}
	if q.MaxConsequent < 0 {
		return fmt.Errorf("plans: %w: max consequent %d negative", qerr.ErrBadThreshold, q.MaxConsequent)
	}
	if q.ItemAttrs != nil && len(q.ItemAttrs) != idx.Space.NumAttrs() {
		return fmt.Errorf("plans: item attribute mask has %d entries, dataset has %d attributes", len(q.ItemAttrs), idx.Space.NumAttrs())
	}
	return nil
}

// itemMask returns the effective item-attribute mask (all-true when the
// clause was omitted).
func (q *Query) itemMask(n int) []bool {
	if q.ItemAttrs != nil {
		return q.ItemAttrs
	}
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	return mask
}

// Stats instruments one plan execution with the operator-level counters
// the cost model is calibrated against.
type Stats struct {
	Plan       Kind
	SubsetSize int // |D^Q|
	MinCount   int // minsupp as an absolute record count

	// SEARCH / SUPPORTED-SEARCH.
	RNodesVisited   int // R-tree nodes touched
	REntriesChecked int // leaf entries tested
	Candidates      int // |{I^Q_S}| or |{I^Q_SS}|
	Contained       int // candidates fully contained in D^Q
	PartialOverlap  int // candidates partially overlapping D^Q

	// ELIMINATE / SUPPORTED-VERIFY support checking.
	ItemFiltered  int // candidates dropped by the item-attribute filter
	SupportChecks int // record-level tidset∩D^Q counts performed
	Eliminated    int // candidates failing local minsupport
	Qualified     int // |{I^Q_E}| (or equivalent) reaching rule generation

	// VERIFY.
	OracleCalls  int // antecedent/consequent support lookups
	OracleMisses int // lookups that needed a fresh tidset intersection
	RulesEmitted int

	// ARM only.
	ARMRecordsScanned   int // SELECT pass over the dataset
	ARMFrequentItemsets int

	Duration time.Duration
}

// Result is the outcome of executing a plan: the localized rules in
// canonical order plus execution statistics.
type Result struct {
	Rules []rules.Rule
	Stats Stats
}
