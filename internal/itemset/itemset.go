// Package itemset defines the multidimensional itemset space of COLARM
// (paper Section 2.1): items are (attribute, value) pairs, itemsets are
// sorted collections of items with at most one item per attribute, and
// every itemset occupies an axis-aligned bounding box in the
// n-dimensional space whose axes are the attribute value dictionaries.
package itemset

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"colarm/internal/relation"
)

// Item identifies a single (attribute, value) pair. Ids are dense: the
// items of attribute 0 come first, then attribute 1, and so on, each in
// dictionary (axis) order. This layout lets the Space recover the
// attribute and value of an item with two array lookups.
type Item int32

// Space maps items to their (attribute, value) coordinates for one
// dataset. It is immutable after construction.
type Space struct {
	attrs []*relation.Attribute
	base  []int32 // base[a] = first item id of attribute a
	total int
}

// NewSpace builds the item space of a dataset.
func NewSpace(d *relation.Dataset) *Space {
	s := &Space{attrs: d.Attrs, base: make([]int32, len(d.Attrs))}
	var off int32
	for i, a := range d.Attrs {
		s.base[i] = off
		off += int32(a.Cardinality())
	}
	s.total = int(off)
	return s
}

// NumItems returns the total number of items across all attributes.
func (s *Space) NumItems() int { return s.total }

// NumAttrs returns the number of attributes (dimensions).
func (s *Space) NumAttrs() int { return len(s.attrs) }

// Cardinality returns the number of values of attribute a.
func (s *Space) Cardinality(a int) int { return s.attrs[a].Cardinality() }

// ItemOf returns the item for (attribute a, value index v).
func (s *Space) ItemOf(a, v int) Item { return Item(s.base[a] + int32(v)) }

// AttrOf returns the attribute index of it.
func (s *Space) AttrOf(it Item) int {
	// base is ascending; binary search the owning attribute.
	i := sort.Search(len(s.base), func(i int) bool { return s.base[i] > int32(it) })
	return i - 1
}

// ValueOf returns the value index of it along its attribute's axis.
func (s *Space) ValueOf(it Item) int {
	return int(int32(it) - s.base[s.AttrOf(it)])
}

// Label renders the item as "Attr=value".
func (s *Space) Label(it Item) string {
	a := s.AttrOf(it)
	return s.attrs[a].Name + "=" + s.attrs[a].Values[s.ValueOf(it)]
}

// Labels renders each item of set as "Attr=value".
func (s *Space) Labels(set Set) []string {
	out := make([]string, len(set))
	for i, it := range set {
		out[i] = s.Label(it)
	}
	return out
}

// ParseItem resolves "Attr=value" to an Item.
func (s *Space) ParseItem(label string) (Item, error) {
	eq := strings.IndexByte(label, '=')
	if eq < 0 {
		return 0, fmt.Errorf("itemset: item %q is not of the form Attr=value", label)
	}
	name, val := label[:eq], label[eq+1:]
	for a, attr := range s.attrs {
		if attr.Name == name {
			v := attr.ValueIndex(val)
			if v < 0 {
				return 0, fmt.Errorf("itemset: attribute %q has no value %q", name, val)
			}
			return s.ItemOf(a, v), nil
		}
	}
	return 0, fmt.Errorf("itemset: unknown attribute %q", name)
}

// Set is an itemset: items sorted ascending, no duplicates. By
// construction from relational records, a Set holds at most one item per
// attribute; the algebra does not depend on that property, but the MIP
// geometry does.
type Set []Item

// NewSet sorts and deduplicates the given items into a canonical Set.
func NewSet(items ...Item) Set {
	s := append(Set(nil), items...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// Len returns the number of singleton items in the set — C_I in the
// paper's cost notation (Lemma 4.3).
func (s Set) Len() int { return len(s) }

// Contains reports whether it is a member of s.
func (s Set) Contains(it Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= it })
	return i < len(s) && s[i] == it
}

// Equal reports item-for-item equality.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every item of s is in t.
func (s Set) SubsetOf(t Set) bool {
	if len(s) > len(t) {
		return false
	}
	i := 0
	for _, it := range s {
		for i < len(t) && t[i] < it {
			i++
		}
		if i >= len(t) || t[i] != it {
			return false
		}
	}
	return true
}

// Union returns the sorted union of s and t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	out := make(Set, 0, len(s))
	j := 0
	for _, it := range s {
		for j < len(t) && t[j] < it {
			j++
		}
		if j < len(t) && t[j] == it {
			continue
		}
		out = append(out, it)
	}
	return out
}

// Clone returns an independent copy.
func (s Set) Clone() Set { return append(Set(nil), s...) }

// Key returns a comparable map key for the set. Itemsets are short (a
// handful of items), so a delimited string is cheap and collision-free.
func (s Set) Key() string {
	buf := make([]byte, 0, len(s)*5)
	for i, it := range s {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(it), 10)
	}
	return string(buf)
}

// Format renders the set with item labels, e.g. "(Age=20-30, Salary=90K-120K)".
func (s Set) Format(sp *Space) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, it := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(sp.Label(it))
	}
	b.WriteByte(')')
	return b.String()
}

// RestrictedTo returns the subset of s whose items belong to attributes
// flagged true in attrOK (the ITEM-ATTRIBUTES filter of the paper's
// ELIMINATE operator). The second result reports whether all items
// survived.
func (s Set) RestrictedTo(sp *Space, attrOK []bool) (Set, bool) {
	for _, it := range s {
		if !attrOK[sp.AttrOf(it)] {
			out := make(Set, 0, len(s))
			for _, jt := range s {
				if attrOK[sp.AttrOf(jt)] {
					out = append(out, jt)
				}
			}
			return out, false
		}
	}
	return s, true
}
