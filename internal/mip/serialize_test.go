package mip

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"strings"
	"testing"

	"colarm/internal/bitset"
	"colarm/internal/datagen"
	"colarm/internal/itemset"
	"colarm/internal/qerr"
)

func TestSnapshotRoundTrip(t *testing.T) {
	d := datagen.Salary()
	idx, err := Build(d, Options{PrimarySupport: 0.18, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same shape.
	if got.NumMIPs() != idx.NumMIPs() {
		t.Fatalf("MIPs %d != %d", got.NumMIPs(), idx.NumMIPs())
	}
	if got.PrimaryCount != idx.PrimaryCount {
		t.Error("primary count lost")
	}
	if got.Dataset.NumRecords() != d.NumRecords() || got.Dataset.NumAttrs() != d.NumAttrs() {
		t.Fatal("dataset shape lost")
	}
	// Same content: every CFI with identical items, support and box.
	for id := 0; id < idx.NumMIPs(); id++ {
		a, b := idx.ITTree.Set(id), got.ITTree.Set(id)
		if !a.Items.Equal(b.Items) || a.Support != b.Support || !a.Tids.Equal(b.Tids) {
			t.Fatalf("CFI %d differs after round trip", id)
		}
		if !idx.Boxes[id].ContainsBox(got.Boxes[id]) || !got.Boxes[id].ContainsBox(idx.Boxes[id]) {
			t.Fatalf("box %d differs after round trip", id)
		}
	}
	// Same query behavior: identical R-tree search results.
	reg, err := got.RegionFromSelections(map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}})
	if err != nil {
		t.Fatal(err)
	}
	count := func(x *Index) int {
		n := 0
		for id := 0; id < x.NumMIPs(); id++ {
			if reg.Relation(x.Boxes[id]) != itemset.Disjoint {
				n++
			}
		}
		return n
	}
	if count(idx) != count(got) {
		t.Error("overlap structure differs after round trip")
	}
	// Dataset values preserved exactly.
	for r := 0; r < d.NumRecords(); r++ {
		for a := 0; a < d.NumAttrs(); a++ {
			if d.ValueString(r, a) != got.Dataset.ValueString(r, a) {
				t.Fatalf("cell (%d,%d) lost", r, a)
			}
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage must error")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream must error")
	}
}

func TestReadIndexRejectsCorruptedSnapshot(t *testing.T) {
	d := datagen.Salary()
	idx, err := Build(d, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the middle of the payload; the decoder or the
	// consistency checks must reject the result (never panic).
	for _, off := range []int{buf.Len() / 2, buf.Len() / 3, buf.Len() - 10} {
		data := append([]byte(nil), buf.Bytes()...)
		data[off] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("corruption at %d caused panic: %v", off, r)
				}
			}()
			if got, err := ReadIndex(bytes.NewReader(data)); err == nil {
				// Decoding may succeed by luck; the index must then at
				// least validate.
				if vErr := got.Validate(); vErr != nil {
					t.Logf("corruption at %d passed decode but failed validate (ok): %v", off, vErr)
				}
			}
		}()
	}
}

// TestReadSnapshotV2Compat loads a hand-built v2 snapshot — the previous
// magic string with every CFI tidset in the old dense bitset encoding —
// and checks it restores the exact same index as the current format.
// v2 files in the field must keep loading after the hybrid-tidset bump.
func TestReadSnapshotV2Compat(t *testing.T) {
	d := datagen.Salary()
	idx, err := Build(d, Options{PrimarySupport: 0.18, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Re-create what the v2 writer produced: same payload struct, dense
	// tidset bytes, v2 magic.
	snap := snapshot{
		Name:         idx.Dataset.Name,
		PrimaryCount: idx.PrimaryCount,
		Fanout:       idx.RTree.Fanout(),
	}
	for _, a := range idx.Dataset.Attrs {
		snap.Attrs = append(snap.Attrs, snapAttr{Name: a.Name, Values: a.Values})
	}
	m, n := d.NumRecords(), d.NumAttrs()
	for r := 0; r < m; r++ {
		for a := 0; a < n; a++ {
			snap.Rows = append(snap.Rows, int32(d.Value(r, a)))
		}
	}
	for id := 0; id < idx.ITTree.Size(); id++ {
		c := idx.ITTree.Set(id)
		items := make([]int32, len(c.Items))
		for i, it := range c.Items {
			items[i] = int32(it)
		}
		snap.CFIs = append(snap.CFIs, snapCFI{Items: items, Tids: denseV2Bytes(c.Tids), Support: c.Support})
		snap.Boxes = append(snap.Boxes, snapBox{Lo: idx.Boxes[id].Lo, Hi: idx.Boxes[id].Hi})
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(snapshotMagicV2); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&snap); err != nil {
		t.Fatal(err)
	}

	got, _, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.NumMIPs() != idx.NumMIPs() {
		t.Fatalf("MIPs %d != %d", got.NumMIPs(), idx.NumMIPs())
	}
	for id := 0; id < idx.NumMIPs(); id++ {
		a, b := idx.ITTree.Set(id), got.ITTree.Set(id)
		if !a.Items.Equal(b.Items) || a.Support != b.Support || !a.Tids.Equal(b.Tids) {
			t.Fatalf("CFI %d differs after v2 load", id)
		}
		if a.Tids.Hash() != b.Tids.Hash() {
			t.Fatalf("CFI %d tidset hash differs after v2 load", id)
		}
	}
}

// TestReadSnapshotRejectsUnknownVersion pins that only the current and
// previous magic strings are accepted.
func TestReadSnapshotRejectsUnknownVersion(t *testing.T) {
	for _, magic := range []string{"COLARM-MIP-v1", "COLARM-MIP-v6", "something else"} {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(magic); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&snapshot{}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadSnapshot(&buf); !errors.Is(err, qerr.ErrSnapshotVersion) {
			t.Errorf("magic %q: err = %v, want ErrSnapshotVersion", magic, err)
		}
	}
}

// denseV2Bytes encodes a tidset in the pre-hybrid dense binary format
// (LE capacity, then dense words), byte-identical to the old
// MarshalBinary output.
func denseV2Bytes(s *bitset.Set) []byte {
	n := s.Len()
	words := make([]uint64, (n+63)/64)
	s.ForEach(func(id int) bool {
		words[id/64] |= 1 << (uint(id) % 64)
		return true
	})
	buf := binary.LittleEndian.AppendUint64(nil, uint64(n))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}
