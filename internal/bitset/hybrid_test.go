package bitset

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// withMode runs fn with the construction policy pinned, restoring the
// previous policy afterwards.
func withMode(hybrid bool, fn func()) {
	prev := SetHybrid(hybrid)
	defer SetHybrid(prev)
	fn()
}

// --- Add/Remove/FromIDs range contract --------------------------------

func TestAddOutOfRangePanics(t *testing.T) {
	for _, id := range []int{-1, -1000, 10, 11, 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) on capacity 10 must panic", id)
				}
			}()
			New(10).Add(id)
		}()
	}
}

func TestRemoveOutOfRangePanics(t *testing.T) {
	for _, id := range []int{-1, -64, 10, 64, 1 << 18} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Remove(%d) on capacity 10 must panic", id)
				}
			}()
			New(10).Remove(id)
		}()
	}
}

// TestNegativeIDNeverAliases pins the nastiest part of the old contract:
// a negative id must never silently alias another record id (the dense
// layout's -1 used to index word 0 bit 63, i.e. Add(-1) added id 63).
func TestNegativeIDNeverAliases(t *testing.T) {
	s := New(128)
	func() {
		defer func() { _ = recover() }()
		s.Add(-1)
	}()
	if !s.IsEmpty() {
		t.Fatalf("Add(-1) mutated the set: %v", s)
	}
	if FromIDs(128, -1).Contains(63) {
		t.Fatal("FromIDs(-1) aliased id 63")
	}
}

func TestContractAgreesAcrossModes(t *testing.T) {
	for _, hybrid := range []bool{false, true} {
		withMode(hybrid, func() {
			// FromIDs filters; Add panics. Both in both modes.
			s := FromIDs(8, 1, 3, 9, -2, 7)
			if got := s.IDs(); len(got) != 3 {
				t.Errorf("hybrid=%v: FromIDs kept %v", hybrid, got)
			}
			defer func() {
				if recover() == nil {
					t.Errorf("hybrid=%v: Add(8) on capacity 8 must panic", hybrid)
				}
			}()
			s.Add(8)
		})
	}
}

// --- dense vs hybrid equivalence --------------------------------------

// buildBoth constructs the same logical set under both policies.
func buildBoth(n int, ids []int) (dense, hybrid *Set) {
	withMode(false, func() { dense = FromIDs(n, ids...) })
	withMode(true, func() { hybrid = FromIDs(n, ids...) })
	return dense, hybrid
}

// randomIDs draws ids at the given density; clustered draws contiguous
// blocks instead of points, exercising the run encoding.
func randomIDs(rng *rand.Rand, n int, density float64, clustered bool) []int {
	want := int(float64(n) * density)
	var ids []int
	if clustered {
		for len(ids) < want {
			start := rng.Intn(n)
			blk := 1 + rng.Intn(200)
			for i := start; i < n && i < start+blk; i++ {
				ids = append(ids, i)
			}
		}
	} else {
		for i := 0; i < want; i++ {
			ids = append(ids, rng.Intn(n))
		}
	}
	return ids
}

// checkSame asserts the two sets agree on every read-only operation.
func checkSame(t *testing.T, label string, d, h *Set) {
	t.Helper()
	if d.Count() != h.Count() {
		t.Fatalf("%s: Count %d vs %d", label, d.Count(), h.Count())
	}
	if d.Hash() != h.Hash() {
		t.Fatalf("%s: Hash mismatch across representations", label)
	}
	if !d.Equal(h) || !h.Equal(d) {
		t.Fatalf("%s: Equal(dense, hybrid) = false for same content", label)
	}
	di, hi := d.IDs(), h.IDs()
	if len(di) != len(hi) {
		t.Fatalf("%s: IDs len %d vs %d", label, len(di), len(hi))
	}
	for i := range di {
		if di[i] != hi[i] {
			t.Fatalf("%s: IDs[%d] = %d vs %d", label, i, di[i], hi[i])
		}
	}
}

func TestHybridDenseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	densities := []float64{0.0005, 0.01, 0.2, 0.8}
	for trial := 0; trial < 24; trial++ {
		n := 1 + rng.Intn(200_000) // spans multiple containers
		dens := densities[trial%len(densities)]
		clustered := trial%2 == 0
		idsA := randomIDs(rng, n, dens, clustered)
		idsB := randomIDs(rng, n, densities[(trial+1)%len(densities)], !clustered)
		label := fmt.Sprintf("trial %d (n=%d dens=%g clustered=%v)", trial, n, dens, clustered)

		da, ha := buildBoth(n, idsA)
		db, hb := buildBoth(n, idsB)
		if trial%3 == 0 {
			ha.Optimize()
			hb.Optimize()
		}
		checkSame(t, label+" a", da, ha)
		checkSame(t, label+" b", db, hb)

		// Binary set algebra, functional and in-place.
		checkSame(t, label+" and", Intersect(da, db), Intersect(ha, hb))
		checkSame(t, label+" or", Union(da, db), Union(ha, hb))
		checkSame(t, label+" andnot", Difference(da, db), Difference(ha, hb))
		for _, inplace := range []struct {
			name string
			run  func(s, t *Set)
		}{
			{"And", func(s, o *Set) { s.And(o) }},
			{"Or", func(s, o *Set) { s.Or(o) }},
			{"AndNot", func(s, o *Set) { s.AndNot(o) }},
		} {
			dc, hc := da.Clone(), ha.Clone()
			inplace.run(dc, db)
			inplace.run(hc, hb)
			checkSame(t, label+" inplace "+inplace.name, dc, hc)
			// Cross-mode operands must work too (a dense set produced
			// by an old caller intersected with a hybrid tidset).
			dx, hx := da.Clone(), ha.Clone()
			inplace.run(dx, hb)
			inplace.run(hx, db)
			checkSame(t, label+" crossmode "+inplace.name, dx, hx)
		}

		// Scalar queries.
		if got, want := AndCount(ha, hb), AndCount(da, db); got != want {
			t.Fatalf("%s: AndCount %d vs %d", label, got, want)
		}
		if AndCount(ha, db) != AndCount(da, db) || AndCount(da, hb) != AndCount(da, db) {
			t.Fatalf("%s: cross-mode AndCount diverges", label)
		}
		if da.SubsetOf(db) != ha.SubsetOf(hb) || db.SubsetOf(da) != hb.SubsetOf(ha) {
			t.Fatalf("%s: SubsetOf diverges", label)
		}
		inter := Intersect(da, db)
		if !inter.SubsetOf(ha) || !inter.SubsetOf(hb) {
			t.Fatalf("%s: intersection not subset of operands across modes", label)
		}
		if da.Intersects(db) != ha.Intersects(hb) {
			t.Fatalf("%s: Intersects diverges", label)
		}
		for i := 0; i < 50; i++ {
			id := rng.Intn(n)
			if da.Contains(id) != ha.Contains(id) {
				t.Fatalf("%s: Contains(%d) diverges", label, id)
			}
		}

		// ForEach order and early stop.
		var dseen, hseen []int
		da.ForEach(func(id int) bool { dseen = append(dseen, id); return len(dseen) < 7 })
		ha.ForEach(func(id int) bool { hseen = append(hseen, id); return len(hseen) < 7 })
		if fmt.Sprint(dseen) != fmt.Sprint(hseen) {
			t.Fatalf("%s: ForEach early-stop prefix %v vs %v", label, dseen, hseen)
		}

		// Complement / Fill / Clear.
		dc, hc := da.Clone(), ha.Clone()
		dc.Complement()
		hc.Complement()
		checkSame(t, label+" complement", dc, hc)
		dc.Fill()
		hc.Fill()
		checkSame(t, label+" fill", dc, hc)
		dc.Clear()
		hc.Clear()
		checkSame(t, label+" clear", dc, hc)

		// CloneGrown (the delta ingestion path).
		grown := n + 1 + rng.Intn(1000)
		dg, hg := da.CloneGrown(grown), ha.CloneGrown(grown)
		checkSame(t, label+" clonegrown", dg, hg)
		for i := 0; i < 20 && len(idsA) > 0; i++ {
			id := idsA[rng.Intn(len(idsA))]
			dg.Remove(id)
			hg.Remove(id)
			add := n + rng.Intn(grown-n)
			dg.Add(add)
			hg.Add(add)
		}
		checkSame(t, label+" clonegrown mutated", dg, hg)
	}
}

// TestHybridMutationSequence drives a long random Add/Remove/Optimize
// sequence through both representations, crossing the promotion and
// demotion thresholds repeatedly.
func TestHybridMutationSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 3 * ctrBits / 2 // one full container plus a partial one
	var d, h *Set
	withMode(false, func() { d = New(n) })
	withMode(true, func() { h = New(n) })
	for step := 0; step < 40_000; step++ {
		id := rng.Intn(n)
		switch rng.Intn(5) {
		case 0:
			d.Remove(id)
			h.Remove(id)
		case 4:
			if step%1000 == 0 {
				h.Optimize()
			}
		default:
			d.Add(id)
			h.Add(id)
		}
	}
	if d.Count() != h.Count() || d.Hash() != h.Hash() || !d.Equal(h) {
		t.Fatalf("after mutation sequence: count %d vs %d, equal=%v",
			d.Count(), h.Count(), d.Equal(h))
	}
}

// TestContainerPromotionDemotion inspects the internal kinds directly:
// arrays must promote past arrayMaxCard, bitmaps must demote back, Fill
// must produce runs, and Optimize must pick the cheapest encoding.
func TestContainerPromotionDemotion(t *testing.T) {
	withMode(true, func() {
		s := New(ctrBits)
		for i := 0; i < arrayMaxCard; i++ {
			s.Add(2 * i)
		}
		if got := s.ctrs[0].kind; got != arrayCtr {
			t.Fatalf("at %d ids kind = %d, want array", arrayMaxCard, got)
		}
		s.Add(2*arrayMaxCard + 1)
		if got := s.ctrs[0].kind; got != bitmapCtr {
			t.Fatalf("past %d ids kind = %d, want bitmap (promotion)", arrayMaxCard, got)
		}
		// Demotion is hysteretic and time-aware: dropping just below the
		// promotion bound keeps the bitmap; only at arrayOptCard does the
		// container fall back to array form.
		s.Remove(2*arrayMaxCard + 1)
		if got := s.ctrs[0].kind; got != bitmapCtr {
			t.Fatalf("just under promotion bound kind = %d, want bitmap (hysteresis)", got)
		}
		for i := arrayMaxCard - 1; i >= arrayOptCard; i-- {
			s.Remove(2 * i)
		}
		if got := s.ctrs[0].kind; got != arrayCtr {
			t.Fatalf("at %d ids kind = %d, want array (demotion)", arrayOptCard, s.ctrs[0].kind)
		}

		f := New(100_000)
		f.Fill()
		if got := f.ctrs[0].kind; got != runCtr {
			t.Fatalf("Fill kind = %d, want run", got)
		}
		if f.Count() != 100_000 {
			t.Fatalf("Fill count = %d", f.Count())
		}

		// Optimize picks runs for clustered content...
		c := New(ctrBits)
		for i := 10_000; i < 30_000; i++ {
			c.Add(i)
		}
		c.Optimize()
		if got := c.ctrs[0].kind; got != runCtr {
			t.Fatalf("clustered Optimize kind = %d, want run", got)
		}
		// ...and arrays for scattered sparse content.
		p := New(ctrBits)
		for i := 0; i < 100; i++ {
			p.Add(i * 601)
		}
		p.Optimize()
		if got := p.ctrs[0].kind; got != arrayCtr {
			t.Fatalf("scattered Optimize kind = %d, want array", got)
		}
	})
	withMode(false, func() {
		s := New(ctrBits)
		s.Add(1)
		if got := s.ctrs[0].kind; got != bitmapCtr {
			t.Fatalf("dense policy kind = %d, want bitmap always", got)
		}
		s.Fill()
		if got := s.ctrs[0].kind; got != bitmapCtr {
			t.Fatalf("dense Fill kind = %d, want bitmap", got)
		}
	})
}

// --- serialization ----------------------------------------------------

// v2Bytes encodes ids in the pre-hybrid dense binary format (capacity +
// words), byte-identical to what the old MarshalBinary produced.
func v2Bytes(n int, ids ...int) []byte {
	words := make([]uint64, (n+wordBits-1)/wordBits)
	for _, id := range ids {
		words[id/wordBits] |= 1 << (uint(id) % wordBits)
	}
	buf := binary.LittleEndian.AppendUint64(nil, uint64(n))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300_000)
		ids := randomIDs(rng, n, []float64{0.001, 0.05, 0.6}[trial%3], trial%2 == 0)
		for _, hybrid := range []bool{true, false} {
			withMode(hybrid, func() {
				s := FromIDs(n, ids...)
				if trial%2 == 0 {
					s.Optimize()
				}
				data, err := s.MarshalBinary()
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				got := &Set{}
				if err := got.UnmarshalBinary(data); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				if !got.Equal(s) || got.Len() != s.Len() || got.Hash() != s.Hash() {
					t.Fatalf("hybrid=%v trial %d: round trip diverged", hybrid, trial)
				}
			})
		}
	}
}

// TestUnmarshalV2Compat loads pre-hybrid dense streams into the hybrid
// representation — the dense→hybrid conversion on snapshot load.
func TestUnmarshalV2Compat(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(200_000)
		ids := randomIDs(rng, n, 0.01+0.3*rng.Float64(), trial%2 == 0)
		want := FromIDs(n, ids...)
		got := &Set{}
		if err := got.UnmarshalBinary(v2Bytes(n, want.IDs()...)); err != nil {
			t.Fatalf("trial %d: v2 load: %v", trial, err)
		}
		if !got.Equal(want) || got.Hash() != want.Hash() || got.Count() != want.Count() {
			t.Fatalf("trial %d: v2 load diverged from content", trial)
		}
	}
	// Zero-capacity and empty sets.
	for _, n := range []int{0, 1, 64, 65} {
		got := &Set{}
		if err := got.UnmarshalBinary(v2Bytes(n)); err != nil {
			t.Fatalf("empty v2 n=%d: %v", n, err)
		}
		if got.Len() != n || !got.IsEmpty() {
			t.Fatalf("empty v2 n=%d: Len=%d empty=%v", n, got.Len(), got.IsEmpty())
		}
	}
}

func TestUnmarshalRejectsCorruptInput(t *testing.T) {
	base := func() []byte {
		s := FromIDs(100_000, 1, 2, 3, 70_000)
		data, _ := s.MarshalBinary()
		return data
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   {1, 2, 3},
		"truncated body": base()[:len(base())-2],
		"trailing":       append(base(), 0xFF),
		"huge capacity":  binary.LittleEndian.AppendUint64(binary.LittleEndian.AppendUint64(nil, hybridMagic), 1<<50),
		"bad kind": func() []byte {
			d := base()
			d[16] = 200 // first container kind
			return d
		}(),
	}
	for name, data := range cases {
		if err := (&Set{}).UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestV3RejectedByCapacitySanity(t *testing.T) {
	// The v3 magic deliberately exceeds the v2 capacity bound, so the
	// old decoder's first check already refuses it; our v2 path must
	// behave the same when handed a magic-less prefix. This pins the
	// constant: if hybridMagic ever drops below maxBits, v2 readers
	// would misparse v3 streams as dense words.
	if hybridMagic <= maxBits {
		t.Fatalf("hybridMagic %#x must exceed the v2 capacity bound %#x", hybridMagic, uint64(maxBits))
	}
}

// --- footprint ---------------------------------------------------------

// TestHybridBytesWinOnSparse pins the point of the whole exercise: a
// sparse tidset over a large universe must take far less memory in
// hybrid form than in dense form.
func TestHybridBytesWinOnSparse(t *testing.T) {
	n := 1 << 20
	ids := make([]int, 200)
	for i := range ids {
		ids[i] = i * 4999
	}
	d, h := buildBoth(n, ids)
	h.Optimize()
	if d.Bytes() < n/8 {
		t.Fatalf("dense Bytes() = %d, want >= %d (allocates the universe)", d.Bytes(), n/8)
	}
	if h.Bytes() > d.Bytes()/20 {
		t.Fatalf("hybrid Bytes() = %d, want at least 20x below dense %d", h.Bytes(), d.Bytes())
	}
}
