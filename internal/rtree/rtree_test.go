package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"colarm/internal/itemset"
)

// randomEntries builds n random boxes in a dims-dimensional grid with the
// given per-dimension cardinalities.
func randomEntries(r *rand.Rand, n, dims int, cards []int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		b := itemset.NewBox(dims)
		for d := 0; d < dims; d++ {
			lo := r.Intn(cards[d])
			hi := lo + r.Intn(cards[d]-lo)
			b.Lo[d], b.Hi[d] = int32(lo), int32(hi)
		}
		es[i] = Entry{Box: b, ID: int32(i), Support: int32(1 + r.Intn(100))}
	}
	return es
}

func randomRegion(r *rand.Rand, cards []int) *itemset.Region {
	reg := itemset.NewRegion(cards)
	for d := range cards {
		if r.Intn(2) == 0 {
			continue
		}
		var vals []int
		for v := 0; v < cards[d]; v++ {
			if r.Intn(2) == 0 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			vals = []int{r.Intn(cards[d])}
		}
		if err := reg.Restrict(d, vals); err != nil {
			panic(err)
		}
	}
	return reg
}

// collect runs a Search and returns matched ids sorted, with their rels.
func collect(t *Tree, reg *itemset.Region) (ids []int32, rels map[int32]itemset.Rel) {
	rels = map[int32]itemset.Rel{}
	t.Search(reg, func(e Entry, rel itemset.Rel) bool {
		ids = append(ids, e.ID)
		rels[e.ID] = rel
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return
}

// linearSearch is the brute-force oracle.
func linearSearch(es []Entry, reg *itemset.Region, minCount int) (ids []int32, rels map[int32]itemset.Rel) {
	rels = map[int32]itemset.Rel{}
	for _, e := range es {
		if minCount >= 0 && int(e.Support) < minCount {
			continue
		}
		rel := reg.Relation(e.Box)
		if rel == itemset.Disjoint {
			continue
		}
		ids = append(ids, e.ID)
		rels[e.ID] = rel
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8, QuadraticSplit); err == nil {
		t.Error("dims 0 must error")
	}
	if _, err := New(2, 1, QuadraticSplit); err == nil {
		t.Error("fanout 1 must error")
	}
	tr, err := New(2, 0, QuadraticSplit)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fanout() != DefaultFanout {
		t.Errorf("default fanout = %d", tr.Fanout())
	}
	if tr.Height() != 1 || tr.Size() != 0 {
		t.Error("fresh tree shape wrong")
	}
}

func TestBulkValidation(t *testing.T) {
	if _, err := Bulk(nil, 0, 8, STRPacking, nil); err == nil {
		t.Error("dims 0 must error")
	}
	if _, err := Bulk(nil, 2, 1, STRPacking, nil); err == nil {
		t.Error("fanout 1 must error")
	}
	bad := []Entry{{Box: itemset.NewBox(3)}}
	if _, err := Bulk(bad, 2, 8, STRPacking, nil); err == nil {
		t.Error("dim mismatch must error")
	}
	if _, err := Bulk(nil, 2, 8, MortonPacking, nil); err == nil {
		t.Error("morton without cards must error")
	}
	if _, err := Bulk(nil, 2, 8, Packing(42), nil); err == nil {
		t.Error("unknown packing must error")
	}
	// Empty bulk gives a working empty tree.
	tr, err := Bulk(nil, 2, 8, STRPacking, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 {
		t.Error("empty bulk size")
	}
	reg := itemset.NewRegion([]int{4, 4})
	st := tr.Search(reg, func(Entry, itemset.Rel) bool { t.Error("no entries expected"); return true })
	if st.EntriesEmitted != 0 {
		t.Error("empty tree emitted entries")
	}
}

func TestInsertValidation(t *testing.T) {
	tr, _ := New(2, 4, QuadraticSplit)
	if err := tr.Insert(Entry{Box: itemset.NewBox(3)}); err == nil {
		t.Error("dim mismatch must error")
	}
	if err := tr.Insert(Entry{Box: itemset.NewBox(2)}); err == nil {
		t.Error("empty box must error")
	}
}

func TestPackedSearchMatchesLinear(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cards := []int{8, 5, 12}
	es := randomEntries(r, 500, 3, cards)
	for _, packing := range []Packing{STRPacking, MortonPacking} {
		tr, err := Bulk(append([]Entry(nil), es...), 3, 8, packing, cards)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", packing, err)
		}
		if tr.Size() != len(es) {
			t.Fatalf("%v: size %d", packing, tr.Size())
		}
		for trial := 0; trial < 30; trial++ {
			reg := randomRegion(r, cards)
			gotIDs, gotRels := collect(tr, reg)
			wantIDs, wantRels := linearSearch(es, reg, -1)
			if !eqIDs(gotIDs, wantIDs) {
				t.Fatalf("%v trial %d: got %d ids, want %d", packing, trial, len(gotIDs), len(wantIDs))
			}
			for id, rel := range wantRels {
				if gotRels[id] != rel {
					t.Fatalf("%v trial %d: id %d rel %v, want %v", packing, trial, id, gotRels[id], rel)
				}
			}
		}
	}
}

func TestSupportedSearchMatchesLinear(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cards := []int{10, 10}
	es := randomEntries(r, 400, 2, cards)
	tr, err := Bulk(append([]Entry(nil), es...), 2, 6, STRPacking, cards)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		reg := randomRegion(r, cards)
		minCount := r.Intn(120)
		var gotIDs []int32
		tr.SupportedSearch(reg, minCount, func(e Entry, rel itemset.Rel) bool {
			gotIDs = append(gotIDs, e.ID)
			return true
		})
		sort.Slice(gotIDs, func(i, j int) bool { return gotIDs[i] < gotIDs[j] })
		wantIDs, _ := linearSearch(es, reg, minCount)
		if !eqIDs(gotIDs, wantIDs) {
			t.Fatalf("trial %d minCount %d: got %d, want %d", trial, minCount, len(gotIDs), len(wantIDs))
		}
	}
}

func TestSupportedSearchPrunesNodes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cards := []int{20, 20}
	es := randomEntries(r, 2000, 2, cards)
	tr, _ := Bulk(es, 2, 8, STRPacking, cards)
	reg := itemset.NewRegion(cards) // full domain
	plain := tr.Search(reg, func(Entry, itemset.Rel) bool { return true })
	supp := tr.SupportedSearch(reg, 101, func(Entry, itemset.Rel) bool { return true })
	if supp.EntriesEmitted != 0 {
		t.Error("no entry has support > 100")
	}
	if supp.NodesVisited >= plain.NodesVisited {
		t.Errorf("supported search visited %d nodes, plain %d — no pruning", supp.NodesVisited, plain.NodesVisited)
	}
}

func TestDynamicInsertMatchesLinear(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	cards := []int{9, 7, 6}
	es := randomEntries(r, 600, 3, cards)
	for _, split := range []SplitAlgorithm{QuadraticSplit, LinearSplit} {
		tr, err := New(3, 5, split)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range es {
			if err := tr.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Size() != len(es) {
			t.Fatalf("%v: size %d", split, tr.Size())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", split, err)
		}
		if tr.Height() < 3 {
			t.Errorf("%v: expected height >= 3, got %d", split, tr.Height())
		}
		for trial := 0; trial < 20; trial++ {
			reg := randomRegion(r, cards)
			gotIDs, _ := collect(tr, reg)
			wantIDs, _ := linearSearch(es, reg, -1)
			if !eqIDs(gotIDs, wantIDs) {
				t.Fatalf("%v trial %d: got %d ids, want %d", split, trial, len(gotIDs), len(wantIDs))
			}
		}
	}
}

func TestSearchBoxAndAll(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cards := []int{6, 6}
	es := randomEntries(r, 100, 2, cards)
	tr, _ := Bulk(append([]Entry(nil), es...), 2, 4, STRPacking, cards)

	q := itemset.NewBox(2)
	q.Lo[0], q.Hi[0], q.Lo[1], q.Hi[1] = 1, 3, 2, 4
	var got []int32
	tr.SearchBox(q, func(e Entry) bool {
		got = append(got, e.ID)
		return true
	})
	var want []int32
	for _, e := range es {
		if q.Intersects(e.Box) {
			want = append(want, e.ID)
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !eqIDs(got, want) {
		t.Fatalf("SearchBox: got %d, want %d", len(got), len(want))
	}

	count := 0
	tr.All(func(Entry) bool { count++; return true })
	if count != len(es) {
		t.Errorf("All visited %d, want %d", count, len(es))
	}
	// Early stop.
	count = 0
	tr.All(func(Entry) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("All early stop visited %d", count)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	cards := []int{6, 6}
	es := randomEntries(r, 200, 2, cards)
	tr, _ := Bulk(es, 2, 4, STRPacking, cards)
	reg := itemset.NewRegion(cards)
	n := 0
	tr.Search(reg, func(Entry, itemset.Rel) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d entries", n)
	}
}

func TestStats(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	cards := []int{10, 10}
	es := randomEntries(r, 300, 2, cards)
	tr, _ := Bulk(es, 2, 8, STRPacking, cards)
	levels, entries := tr.Stats(cards)
	if len(levels) != tr.Height() {
		t.Fatalf("levels %d != height %d", len(levels), tr.Height())
	}
	if levels[0].Nodes != 1 {
		t.Errorf("root level nodes = %d", levels[0].Nodes)
	}
	if entries.Count != 300 {
		t.Errorf("entry count = %d", entries.Count)
	}
	for li, ls := range levels {
		for d, e := range ls.AvgExtent {
			if e < 0 || e > 1 {
				t.Errorf("level %d dim %d extent %v outside [0,1]", li, d, e)
			}
		}
		if !sort.SliceIsSorted(ls.Supports, func(a, b int) bool { return ls.Supports[a] < ls.Supports[b] }) {
			t.Errorf("level %d supports not sorted", li)
		}
	}
	// Root extent should be ~ full domain (random boxes cover it).
	if levels[0].AvgExtent[0] < 0.5 {
		t.Errorf("root extent suspiciously small: %v", levels[0].AvgExtent)
	}
	// Selectivity helper.
	if f := FractionAtLeast(entries.Supports, 0); f != 1 {
		t.Errorf("FractionAtLeast(0) = %v", f)
	}
	if f := FractionAtLeast(entries.Supports, 1000); f != 0 {
		t.Errorf("FractionAtLeast(1000) = %v", f)
	}
	if f := FractionAtLeast(nil, 5); f != 0 {
		t.Errorf("FractionAtLeast(nil) = %v", f)
	}
	mid := FractionAtLeast(entries.Supports, 50)
	if mid <= 0 || mid >= 1 {
		t.Errorf("FractionAtLeast(50) = %v, want interior", mid)
	}
}

func TestPackedLeafUtilization(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	cards := []int{15, 15}
	es := randomEntries(r, 1024, 2, cards)
	tr, _ := Bulk(es, 2, 16, STRPacking, cards)
	// 1024 entries / fanout 16 = exactly 64 full leaves.
	levels, _ := tr.Stats(cards)
	leaves := levels[len(levels)-1].Nodes
	if leaves != 64 {
		t.Errorf("leaves = %d, want 64 (perfect packing)", leaves)
	}
}

func TestQuickSearchEqualsLinear(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := 1 + r.Intn(4)
		cards := make([]int, dims)
		for d := range cards {
			cards[d] = 2 + r.Intn(9)
		}
		n := 1 + r.Intn(150)
		es := randomEntries(r, n, dims, cards)
		fanout := 2 + r.Intn(10)

		var tr *Tree
		var err error
		switch r.Intn(4) {
		case 0:
			tr, err = Bulk(append([]Entry(nil), es...), dims, fanout, STRPacking, cards)
		case 1:
			tr, err = Bulk(append([]Entry(nil), es...), dims, fanout, MortonPacking, cards)
		case 2:
			tr, err = New(dims, fanout, QuadraticSplit)
			if err == nil {
				for _, e := range es {
					if err = tr.Insert(e); err != nil {
						break
					}
				}
			}
		default:
			tr, err = New(dims, fanout, LinearSplit)
			if err == nil {
				for _, e := range es {
					if err = tr.Insert(e); err != nil {
						break
					}
				}
			}
		}
		if err != nil {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		reg := randomRegion(r, cards)
		minCount := -1
		if r.Intn(2) == 0 {
			minCount = r.Intn(110)
		}
		var gotIDs []int32
		gotRels := map[int32]itemset.Rel{}
		fn := func(e Entry, rel itemset.Rel) bool {
			gotIDs = append(gotIDs, e.ID)
			gotRels[e.ID] = rel
			return true
		}
		if minCount >= 0 {
			tr.SupportedSearch(reg, minCount, fn)
		} else {
			tr.Search(reg, fn)
		}
		sort.Slice(gotIDs, func(i, j int) bool { return gotIDs[i] < gotIDs[j] })
		wantIDs, wantRels := linearSearch(es, reg, minCount)
		if !eqIDs(gotIDs, wantIDs) {
			return false
		}
		for id, rel := range wantRels {
			if gotRels[id] != rel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAlgorithmAndPackingStrings(t *testing.T) {
	if QuadraticSplit.String() != "quadratic" || LinearSplit.String() != "linear" {
		t.Error("split strings wrong")
	}
	if STRPacking.String() != "str" || MortonPacking.String() != "morton" {
		t.Error("packing strings wrong")
	}
}

func eqIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
