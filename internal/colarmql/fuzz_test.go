package colarmql

import (
	"reflect"
	"testing"
)

// FuzzParse checks that the parser neither panics nor hangs on
// arbitrary input, and that every statement it accepts survives a
// render/re-parse round trip unchanged — the property the REPL and
// tooling rely on when they echo queries back.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Location = (Seattle), Gender = (F) AND ITEM ATTRIBUTES Age, Salary HAVING minsupport = 70% AND minconfidence = 95%;`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 0.5 AND minconfidence = 0.5`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 0.5 AND minconfidence = 5`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM d WHERE RANGE a = ('v, 1', "w)x") HAVING minsupport = 1 AND minconfidence = 0 USING PLAN SS-E-U-V;`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM chess WHERE RANGE c00 = (v0, v1) HAVING minsupport = 90% AND minconfidence = 85% USING PLAN ARM`,
		`RePoRt LoCaLiZeD aSsOcIaTiOn RuLeS fRoM d HaViNg MiNsUpPoRt = 0.5 aNd MiNcOnFiDeNcE = 0.5`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 1e-05 AND minconfidence = .25`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM d AND ITEM ATTRIBUTES 'HAVING', x HAVING minsupport = 0.5 AND minconfidence = 0.5`,
		`REPORT @ FROM d`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM d WHERE RANGE a = (b HAVING minsupport = 0.5 AND minconfidence = 0.5`,
		"REPORT LOCALIZED ASSOCIATION RULES\nFROM 90K-120K\nHAVING minsupport = 0.70 AND minconfidence = 0.95;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		rendered := st.String()
		st2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted input %q but rendering %q fails to re-parse: %v", src, rendered, err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("round trip changed statement:\ninput:    %q\nrendered: %q\nfirst:  %+v\nsecond: %+v", src, rendered, st, st2)
		}
	})
}
