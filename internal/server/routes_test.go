package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openAPIOperations reads api/openapi.yaml and returns the set of
// "METHOD /path" operations it documents. The scan is deliberately
// shallow — top-level keys under "paths:" at one indent level, HTTP
// method keys at the next — which is exactly the shape the document
// keeps (scripts/check_openapi.py validates the rest of it).
func openAPIOperations(t *testing.T) map[string]bool {
	t.Helper()
	path := filepath.Join("..", "..", "api", "openapi.yaml")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening OpenAPI document: %v", err)
	}
	defer f.Close()

	methods := map[string]bool{
		"get": true, "put": true, "post": true, "delete": true,
		"options": true, "head": true, "patch": true, "trace": true,
	}
	ops := make(map[string]bool)
	inPaths := false
	current := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		switch {
		case indent == 0:
			inPaths = trimmed == "paths:"
		case inPaths && indent == 2 && strings.HasPrefix(trimmed, "/") && strings.HasSuffix(trimmed, ":"):
			current = strings.TrimSuffix(trimmed, ":")
		case inPaths && indent == 4 && current != "":
			key := strings.TrimSuffix(trimmed, ":")
			if methods[key] {
				ops[strings.ToUpper(key)+" "+current] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("no operations found in api/openapi.yaml")
	}
	return ops
}

// TestOpenAPIRouteCoverage asserts the OpenAPI document and the mux
// route table describe exactly the same surface: every registered
// route is documented, and nothing is documented that isn't served.
func TestOpenAPIRouteCoverage(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	documented := openAPIOperations(t)
	served := make(map[string]bool)
	for _, rt := range s.Routes() {
		key := rt.Method + " " + rt.Pattern
		served[key] = true
		if !documented[key] {
			t.Errorf("route %q is served but missing from api/openapi.yaml", key)
		}
	}
	for op := range documented {
		if !served[op] {
			t.Errorf("operation %q is documented but not served", op)
		}
	}
}

// TestRoutesRegistered asserts every table entry is actually reachable
// through Handler() — a route that 404s or 405s under its own declared
// method means the table and the mux have drifted.
func TestRoutesRegistered(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	for _, rt := range s.Routes() {
		path := rt.Pattern
		path = strings.ReplaceAll(path, "{name}", "salary")
		path = strings.ReplaceAll(path, "{id}", "sub-0")
		if rt.Endpoint == "events" {
			path += "?wait=1ms"
		}
		req := httptest.NewRequest(rt.Method, path, strings.NewReader("{}"))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code == http.StatusMethodNotAllowed || w.Code == http.StatusNotImplemented {
			t.Errorf("%s %s: got %d, route not wired", rt.Method, rt.Pattern, w.Code)
		}
		if rt.Method == "GET" && rt.Endpoint != "subscriptions" && rt.Endpoint != "events" && w.Code != http.StatusOK {
			t.Errorf("%s %s: got %d, want 200 (body %s)", rt.Method, path, w.Code, w.Body.String())
		}
	}
}

// TestAllowHeaderOnWrongMethod pins the 405 contract: the Allow header
// lists every method the path serves.
func TestAllowHeaderOnWrongMethod(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	req := httptest.NewRequest("PATCH", "/v1/subscriptions", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", w.Code)
	}
	if got := w.Header().Get("Allow"); got != "GET, POST" {
		t.Fatalf("Allow = %q, want %q", got, "GET, POST")
	}
	var er errorResponse
	if err := decodeJSON(w, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeMethodNotAllowed || er.Error.Details["allow"] != "GET, POST" {
		t.Fatalf("envelope = %+v", er)
	}
}

func decodeJSON(w *httptest.ResponseRecorder, v any) error {
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		return fmt.Errorf("content-type %q", ct)
	}
	return json.Unmarshal(w.Body.Bytes(), v)
}
