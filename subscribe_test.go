package colarm

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seattleQuery is the focal query the subscription tests stand on: the
// paper's Seattle region over the salary dataset.
func seattleQuery() Query {
	return Query{
		Range:         map[string][]string{"Location": {"Seattle"}},
		MinSupport:    0.30,
		MinConfidence: 0.50,
	}
}

// TestSubscribeNotices exercises the facade's apply-observer seam: each
// accepted ingest batch produces one notice with the covered version
// interval, Affects gates on the focal region, and cancel stops
// delivery.
func TestSubscribeNotices(t *testing.T) {
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(ds, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.NumShards(); got != 1 {
		t.Fatalf("NumShards() = %d on a monolith, want 1", got)
	}
	if got := eng.Version(); got != 0 {
		t.Fatalf("fresh engine Version() = %d, want 0", got)
	}

	var notices []ApplyNotice
	cancel := eng.Subscribe(func(n ApplyNotice) { notices = append(notices, n) })

	seattle := map[string]string{
		"Company": "Microsoft", "Title": "Sw Engg", "Location": "Seattle",
		"Gender": "F", "Age": "30-40", "Salary": "90K-120K"}
	boston := map[string]string{
		"Company": "Google", "Title": "QA Engg", "Location": "Boston",
		"Gender": "M", "Age": "20-30", "Salary": "60K-90K"}

	if _, err := eng.Ingest([]map[string]string{seattle}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ingest([]map[string]string{boston}, []int{3}); err != nil {
		t.Fatal(err)
	}
	if len(notices) != 2 {
		t.Fatalf("got %d notices, want 2", len(notices))
	}
	if n := notices[0]; n.Generation != 0 || n.FromVersion != 0 || n.ToVersion != 1 || n.NumRows() != 1 {
		t.Fatalf("first notice = %+v (rows %d), want (gen 0, 0->1, 1 row)", n, n.NumRows())
	}
	// The second batch inserts one row and deletes one: both count.
	if n := notices[1]; n.FromVersion != 1 || n.ToVersion != 2 || n.NumRows() != 2 {
		t.Fatalf("second notice = %+v (rows %d), want (1->2, 2 rows)", n, n.NumRows())
	}
	if got := eng.Version(); got != 2 {
		t.Fatalf("Version() = %d after two batches, want 2", got)
	}

	// Affectedness: the Seattle insert lies inside the region; the
	// second batch's rows are the Boston insert and deleted record 3
	// (SFO in the paper's table), so it cannot touch any Seattle rule.
	if ok, err := notices[0].Affects(seattleQuery()); err != nil || !ok {
		t.Fatalf("Seattle batch Affects(seattle) = %v, %v; want true", ok, err)
	}
	if ok, err := notices[1].Affects(seattleQuery()); err != nil || ok {
		t.Fatalf("Boston batch Affects(seattle) = %v, %v; want false", ok, err)
	}
	bad := seattleQuery()
	bad.Range["Planet"] = []string{"Mars"}
	if _, err := notices[0].Affects(bad); err == nil {
		t.Fatal("Affects with an unknown attribute did not error")
	}

	cancel()
	if _, err := eng.Ingest([]map[string]string{seattle}, nil); err != nil {
		t.Fatal(err)
	}
	if len(notices) != 2 {
		t.Fatalf("notice delivered after cancel: %d total", len(notices))
	}
}

// TestRuleDiff exercises the incremental diff primitive end to end:
// snapshot form (nil prev), self-diff emptiness, appearance/update
// detection across an affecting ingest, and replay reconstruction.
func TestRuleDiff(t *testing.T) {
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(ds, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := seattleQuery()

	snap, err := eng.RuleDiff(ctx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rules) == 0 || len(snap.Appeared) != len(snap.Rules) ||
		len(snap.Disappeared) != 0 || len(snap.Updated) != 0 {
		t.Fatalf("snapshot diff: %d rules, %d appeared, %d disappeared, %d updated",
			len(snap.Rules), len(snap.Appeared), len(snap.Disappeared), len(snap.Updated))
	}
	if snap.Generation != 0 || snap.Version != 0 {
		t.Fatalf("snapshot at (gen %d, ver %d), want (0, 0)", snap.Generation, snap.Version)
	}
	if snap.Empty() {
		t.Fatal("snapshot diff with rules reported Empty")
	}

	same, err := eng.RuleDiff(ctx, q, snap.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if !same.Empty() {
		t.Fatalf("self-diff not empty: %d appeared, %d disappeared, %d updated",
			len(same.Appeared), len(same.Disappeared), len(same.Updated))
	}

	// Keys identify rules independent of measures: every current rule's
	// key must be unique, and a measure change alone must not change it.
	keys := map[string]bool{}
	for _, r := range snap.Rules {
		k := RuleKey(r)
		if keys[k] {
			t.Fatalf("duplicate rule key %q", k)
		}
		keys[k] = true
		r.Support /= 2
		if RuleKey(r) != k {
			t.Fatal("RuleKey depends on a measured value")
		}
	}

	// An affecting batch must surface as a non-empty diff whose replay
	// over the previous rules reconstructs the current set exactly.
	if _, err := eng.Ingest([]map[string]string{{
		"Company": "Facebook", "Title": "Sw Engg", "Location": "Seattle",
		"Gender": "F", "Age": "20-30", "Salary": "30K-60K"}}, nil); err != nil {
		t.Fatal(err)
	}
	d, err := eng.RuleDiff(ctx, q, snap.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("diff after an affecting Seattle ingest is empty")
	}
	if d.Version != 1 {
		t.Fatalf("diff Version = %d, want 1", d.Version)
	}
	replayed := map[string]Rule{}
	for _, r := range snap.Rules {
		replayed[RuleKey(r)] = r
	}
	for _, r := range d.Disappeared {
		delete(replayed, RuleKey(r))
	}
	for _, r := range d.Appeared {
		replayed[RuleKey(r)] = r
	}
	for _, r := range d.Updated {
		k := RuleKey(r)
		if _, ok := replayed[k]; !ok {
			t.Fatalf("updated rule %q absent from the replayed set", k)
		}
		replayed[k] = r
	}
	if len(replayed) != len(d.Rules) {
		t.Fatalf("replay has %d rules, current set %d", len(replayed), len(d.Rules))
	}
	for _, r := range d.Rules {
		got, ok := replayed[RuleKey(r)]
		if !ok || !sameMeasures(got, r) {
			t.Fatalf("replayed rule %q diverges from the current set", RuleKey(r))
		}
	}

	bad := q
	bad.MinSupport = 7
	if _, err := eng.RuleDiff(ctx, bad, nil); err == nil {
		t.Fatal("RuleDiff with a bad threshold did not error")
	}
}

// TestSharedMetricsRegistry covers the shared-registry seam the serving
// layer uses: engines opened against one registry expose per-dataset
// metrics through a single exposition and HTTP handler.
func TestSharedMetricsRegistry(t *testing.T) {
	reg := NewMetricsRegistry()
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(ds, Options{PrimarySupport: 0.18, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Mine(seattleQuery()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "colarm_queries_total") {
		t.Fatalf("shared exposition missing query counter:\n%s", sb.String())
	}
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "colarm_queries_total") {
		t.Fatalf("handler: status %d", rec.Code)
	}
}

// TestLoadCSV round-trips a dataset through a CSV file on disk and
// mines it, covering the file-loading entry point colarm-serve's -csv
// flag uses.
func TestLoadCSV(t *testing.T) {
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "salary.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRecords() != ds.NumRecords() {
		t.Fatalf("loaded %d records, want %d", loaded.NumRecords(), ds.NumRecords())
	}
	eng, err := Open(loaded, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Mine(seattleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules from the CSV-loaded dataset")
	}
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("LoadCSV on a missing file did not error")
	}
}
