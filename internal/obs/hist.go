package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds returns the standard latency bucket upper bounds
// in seconds: 26 exponential buckets doubling from 1µs to ~33.5s,
// bracketing everything from a sub-millisecond salary-scale query to a
// paper-scale ARM run. Observations beyond the last bound land in the
// implicit +Inf bucket.
func DefaultLatencyBounds() []float64 {
	out := make([]float64, 26)
	b := 1e-6
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// Histogram is a fixed-bucket histogram of durations. Observing costs
// one binary search plus three atomic adds — no locks, no allocation —
// so it is safe (and cheap) under any number of concurrent recorders.
type Histogram struct {
	name   string
	labels string
	help   string
	bounds []float64 // upper bounds in seconds, ascending
	// buckets[i] counts observations <= bounds[i] (non-cumulative);
	// the extra last slot is the +Inf bucket.
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram(name, labels, help string, bounds []float64) *Histogram {
	h := &Histogram{name: name, labels: labels, help: help}
	h.bounds = append([]float64(nil), bounds...)
	sort.Float64s(h.bounds)
	h.buckets = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe records one duration. A negative duration (a clock step
// backwards, or a caller subtracting timestamps in the wrong order) is
// clamped to zero: letting it through would land it in the first bucket
// while driving _sum negative, corrupting quantile estimates and
// Prometheus rate() math over the scraped series.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.SearchFloat64s(h.bounds, d.Seconds())
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation within the containing bucket — the usual fixed-bucket
// estimate, accurate to the bucket resolution (a factor-2 grid here).
// It returns 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c > 0 && float64(cum+c) >= rank {
			if i == len(h.bounds) {
				// Off-scale observations: report the top finite bound
				// rather than extrapolating into the unbounded bucket.
				return time.Duration(h.bounds[len(h.bounds)-1] * float64(time.Second))
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return time.Duration((lo + (hi-lo)*frac) * float64(time.Second))
		}
		cum += c
	}
	return time.Duration(h.bounds[len(h.bounds)-1] * float64(time.Second))
}
