package colarm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/datagen"
	"colarm/internal/itemset"
	"colarm/internal/rules"
)

// TestDifferentialOracle checks every execution plan against an
// independent from-scratch oracle on randomized small datasets, and
// that parallel execution (Workers > 1) is byte-identical to serial.
//
// The oracle rebuilds both answer sets from first principles, sharing
// no code with the executor beyond the raw tidsets and the brute-force
// closed-itemset enumerator:
//
//   - MIP plans answer from the prestored closed frequent itemsets at
//     the primary support: each is projected onto the item attributes,
//     a proper projection is normalized to its global closure's
//     projection, and the body qualifies when its local support inside
//     the focal subset reaches the query threshold. (Dropping the
//     R-tree overlap condition is sound: a body with nonzero local
//     support always has an overlapping closure CFI that normalizes
//     back to it.)
//   - ARM answers from the closed frequent itemsets of the focal
//     subset itself, with no primary-support floor.
//
// Rules then follow by exhaustive antecedent/consequent split
// enumeration with exact local counting — valid because confidence is
// anti-monotone in the consequent, which makes the executor's
// level-wise pruning lossless.
func TestDifferentialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	totalRules := 0
	for trial := 0; trial < 12; trial++ {
		totalRules += runDifferentialTrial(t, rng, trial)
	}
	// Guard against a degenerate run where every comparison was of
	// empty rule sets.
	if totalRules == 0 {
		t.Fatal("no trial produced any rules; the differential comparison is vacuous")
	}
}

func runDifferentialTrial(t *testing.T, rng *rand.Rand, trial int) int {
	t.Helper()
	cfg := randomDiffConfig(rng, trial)
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatalf("trial %d: generate: %v", trial, err)
	}
	ds := &Dataset{rel: d}
	primary := 0.15 + 0.2*rng.Float64()
	eng1, err := Open(ds, Options{PrimarySupport: primary, Workers: 1})
	if err != nil {
		t.Fatalf("trial %d: open serial: %v", trial, err)
	}
	eng4, err := Open(ds, Options{PrimarySupport: primary, Workers: 4})
	if err != nil {
		t.Fatalf("trial %d: open parallel: %v", trial, err)
	}

	sp := itemset.NewSpace(d)
	tids := itemset.ItemTidsets(d, sp)
	m := d.NumRecords()

	totalRules := 0
	for qi := 0; qi < 2; qi++ {
		q := randomDiffQuery(rng, ds)
		label := fmt.Sprintf("trial %d query %d (%+v, primary %.3f)", trial, qi, q, primary)

		// Focal subset membership, from raw record labels only.
		restricted := make(map[int]map[string]bool)
		for attr, vals := range q.Range {
			ai := d.AttrIndex(attr)
			set := make(map[string]bool, len(vals))
			for _, v := range vals {
				set[v] = true
			}
			restricted[ai] = set
		}
		dq := bitset.New(m)
		for r := 0; r < m; r++ {
			rec := ds.Record(r)
			in := true
			for ai, set := range restricted {
				if !set[rec[ai]] {
					in = false
					break
				}
			}
			if in {
				dq.Add(r)
			}
		}
		size := dq.Count()

		mask := make([]bool, d.NumAttrs())
		if len(q.ItemAttributes) == 0 {
			for a := range mask {
				mask[a] = true
			}
		} else {
			for _, name := range q.ItemAttributes {
				mask[d.AttrIndex(name)] = true
			}
		}
		localCount := func(x itemset.Set) int {
			acc := bitset.Intersect(dq, tids[x[0]])
			for _, it := range x[1:] {
				acc.And(tids[it])
			}
			return acc.Count()
		}

		var expMIP, expARM []Rule
		if size > 0 {
			minCount := charm.CountFor(q.MinSupport, size)
			expMIP = wrapExpected(sp, oracleMIPRules(sp, tids, m, mask, primary, minCount, size,
				q.MinConfidence, q.MaxConsequent, localCount))
			expARM = wrapExpected(sp, oracleARMRules(sp, tids, dq, m, mask, minCount, size,
				q.MinConfidence, q.MaxConsequent, localCount))
		}

		for _, plan := range []Plan{SEV, SVS, SSEV, SSVS, SSEUV, ARM, Auto} {
			pq := q
			pq.Plan = plan
			res1, err := eng1.Mine(pq)
			if err != nil {
				t.Fatalf("%s: plan %s serial: %v", label, plan, err)
			}
			want := expMIP
			if res1.Stats.Plan == ARM {
				want = expARM
			}
			if !reflect.DeepEqual(res1.Rules, want) {
				t.Fatalf("%s: plan %s: %d rules, oracle expects %d\ngot:  %v\nwant: %v",
					label, plan, len(res1.Rules), len(want), res1.Rules, want)
			}
			res4, err := eng4.Mine(pq)
			if err != nil {
				t.Fatalf("%s: plan %s parallel: %v", label, plan, err)
			}
			if !reflect.DeepEqual(res4.Rules, res1.Rules) {
				t.Fatalf("%s: plan %s: parallel rules differ from serial", label, plan)
			}
			s1, s4 := res1.Stats, res4.Stats
			s1.DurationNanos, s4.DurationNanos = 0, 0
			if s1 != s4 {
				t.Fatalf("%s: plan %s: parallel stats differ from serial\nserial:   %+v\nparallel: %+v",
					label, plan, s1, s4)
			}
			totalRules += len(res1.Rules)
		}
	}
	return totalRules
}

// randomDiffConfig builds a small random generator configuration:
// 40-120 records over 3-5 attributes of cardinality 2-4.
func randomDiffConfig(rng *rand.Rand, trial int) datagen.Config {
	nAttrs := 3 + rng.Intn(3)
	nClusters := 2 + rng.Intn(2)
	clusters := make([]float64, nClusters)
	for i := range clusters {
		clusters[i] = 1 / float64(nClusters)
	}
	attrs := make([]datagen.AttrSpec, nAttrs)
	for a := range attrs {
		align := make([]float64, nClusters)
		for c := range align {
			align[c] = 0.3 + 0.6*rng.Float64()
		}
		attrs[a] = datagen.AttrSpec{
			Name:        fmt.Sprintf("a%d", a),
			Cardinality: 2 + rng.Intn(3),
			Align:       align,
		}
	}
	return datagen.Config{
		Name:     fmt.Sprintf("diff%d", trial),
		Records:  40 + rng.Intn(81),
		Attrs:    attrs,
		Clusters: clusters,
		Skew:     rng.Float64(),
		Seed:     rng.Int63(),
	}
}

// randomDiffQuery picks a random focal region, item-attribute set and
// thresholds over the dataset's vocabulary.
func randomDiffQuery(rng *rand.Rand, ds *Dataset) Query {
	attrs := ds.Attributes()
	q := Query{
		Range:         map[string][]string{},
		MinSupport:    0.2 + 0.4*rng.Float64(),
		MinConfidence: 0.4 + 0.5*rng.Float64(),
		MaxConsequent: rng.Intn(3),
	}
	for _, ai := range rng.Perm(len(attrs))[:rng.Intn(3)] {
		vals, _ := ds.Values(attrs[ai])
		keep := 1 + rng.Intn(len(vals))
		perm := rng.Perm(len(vals))[:keep]
		sel := make([]string, 0, keep)
		for _, vi := range perm {
			sel = append(sel, vals[vi])
		}
		q.Range[attrs[ai]] = sel
	}
	if rng.Intn(2) == 0 && len(attrs) > 2 {
		n := 2 + rng.Intn(len(attrs)-1)
		for _, ai := range rng.Perm(len(attrs))[:min(n, len(attrs))] {
			q.ItemAttributes = append(q.ItemAttributes, attrs[ai])
		}
	}
	return q
}

// oracleMIPRules derives the MIP-plan answer from scratch.
func oracleMIPRules(sp *itemset.Space, tids []*bitset.Set, m int, mask []bool,
	primary float64, minCount, size int, minConf float64, maxCons int,
	localCount func(itemset.Set) int) []rules.Rule {
	primaryCount := charm.CountFor(primary, m)
	closure := func(b itemset.Set) itemset.Set {
		tb := tids[b[0]].Clone()
		for _, it := range b[1:] {
			tb.And(tids[it])
		}
		var out itemset.Set
		for it := 0; it < sp.NumItems(); it++ {
			if tb.SubsetOf(tids[it]) {
				out = append(out, itemset.Item(it))
			}
		}
		return out
	}
	seen := make(map[string]bool)
	var bodies []itemset.Set
	for _, z := range charm.BruteForceClosed(tids, m, primaryCount) {
		body, all := z.Items.RestrictedTo(sp, mask)
		if len(body) < 2 {
			continue
		}
		if !all {
			body, _ = closure(body).RestrictedTo(sp, mask)
			if len(body) < 2 {
				continue
			}
		}
		if k := body.Key(); !seen[k] {
			seen[k] = true
			bodies = append(bodies, body)
		}
	}
	var out []rules.Rule
	for _, body := range bodies {
		if local := localCount(body); local >= minCount {
			out = append(out, enumerateSplits(body, local, size, maxCons, minConf, localCount)...)
		}
	}
	out = rules.Dedupe(out)
	rules.SortCanonical(out)
	return out
}

// oracleARMRules derives the from-scratch plan's answer independently.
func oracleARMRules(sp *itemset.Space, tids []*bitset.Set, dq *bitset.Set, m int,
	mask []bool, minCount, size int, minConf float64, maxCons int,
	localCount func(itemset.Set) int) []rules.Rule {
	localTids := make([]*bitset.Set, sp.NumItems())
	for a := 0; a < sp.NumAttrs(); a++ {
		if !mask[a] {
			continue
		}
		for v := 0; v < sp.Cardinality(a); v++ {
			it := sp.ItemOf(a, v)
			localTids[it] = bitset.Intersect(dq, tids[it])
		}
	}
	var out []rules.Rule
	for _, cl := range charm.BruteForceClosed(localTids, m, minCount) {
		if len(cl.Items) >= 2 {
			out = append(out, enumerateSplits(cl.Items, cl.Support, size, maxCons, minConf, localCount)...)
		}
	}
	out = rules.Dedupe(out)
	rules.SortCanonical(out)
	return out
}

// enumerateSplits emits every antecedent/consequent split of body whose
// confidence reaches minConf, by exhaustive enumeration.
func enumerateSplits(body itemset.Set, local, size, maxCons int, minConf float64,
	localCount func(itemset.Set) int) []rules.Rule {
	n := len(body)
	capY := maxCons
	if capY <= 0 || capY > n-1 {
		capY = n - 1
	}
	var out []rules.Rule
	for bits := 1; bits < 1<<n-1; bits++ {
		var x, y itemset.Set
		for i, it := range body {
			if bits&(1<<i) != 0 {
				y = append(y, it)
			} else {
				x = append(x, it)
			}
		}
		if len(y) > capY {
			continue
		}
		xc := localCount(x)
		if xc <= 0 {
			continue
		}
		conf := float64(local) / float64(xc)
		if conf < minConf {
			continue
		}
		out = append(out, rules.Rule{
			Antecedent:      x,
			Consequent:      y,
			SupportCount:    local,
			AntecedentCount: xc,
			ConsequentCount: localCount(y),
			SubsetSize:      size,
			Support:         float64(local) / float64(size),
			Confidence:      conf,
		})
	}
	return out
}

// wrapExpected converts oracle rules to the facade representation the
// engine returns.
func wrapExpected(sp *itemset.Space, rs []rules.Rule) []Rule {
	var out []Rule
	for _, r := range rs {
		out = append(out, wrapRule(r, sp.Labels(r.Antecedent), sp.Labels(r.Consequent)))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
