// Command colarm-bench regenerates the tables and figures of the COLARM
// paper's experimental evaluation (EDBT 2014, Section 5).
//
// Usage:
//
//	colarm-bench [flags]
//
//	-fig N        regenerate one figure (8, 9, 10, 11, 12 or 13)
//	-table NAME   regenerate a table: "accuracy" (§5.1) or "simpson" (§5.3)
//	-all          run everything (default when no -fig/-table given)
//	-full         paper-scale datasets and thresholds (slower);
//	              default is the reduced profile with the same shapes
//	-runs N       random focal subsets per scenario (default 3)
//	-seed N       generator seed (default 1)
//
// Beyond the paper's artifacts, -concurrent runs the serving-mode
// benchmark: a fixed query workload replayed from N client goroutines
// against one shared engine, comparing the serial baseline against
// intra-query parallelism (the Workers pool), inter-query concurrency
// (many clients), and both, with throughput and p50/p99 latency:
//
//	-concurrent   run the concurrent-clients benchmark
//	-clients N    client goroutines (default GOMAXPROCS)
//	-queries N    queries per client in the N-client rows (default 8)
//
// -ingest runs the mixed read/write benchmark for the live-ingestion
// subsystem: the same read workload is replayed against the fresh
// index, again while a writer streams ingest batches into the delta
// store (reads pay the merged base+delta view), and once more after
// the index rebuild — making the staleness tax, the refresh policy's
// own overhead estimate and the rebuild payoff visible side by side:
//
//	-ingest           run the mixed read/write benchmark
//	-ingest-batches N ingest batches in the mixed phase (default 16)
//	-batch-rows N     rows per ingest batch (default 32)
//
// -tidset runs the tidset representation micro-benchmark: the SELECT /
// ELIMINATE / VERIFY operator kernels plus resident bytes, measured on
// dense (pre-hybrid bitmap) and hybrid (array/bitmap/run container)
// tidsets across sparsity levels and layouts. The JSON report is the
// repository's perf-trajectory artifact format (BENCH_<pr>.json):
//
//	-tidset           run the tidset representation benchmark
//	-tidset-records N universe size in records (default 1<<20)
//	-tidset-items N   item tidsets per density level (default 48)
//	-tidset-iters N   timing iterations per kernel (default 5)
//	-bench-out FILE   write the JSON report to FILE
//
// -shards runs the scatter-gather benchmark: the same read workload is
// replayed against engines built with increasing shard counts — fresh,
// aged by ingest batches, while a consolidation runs (the engine keeps
// serving; only drifted shards re-mine), and on the consolidated
// result — charting shard count against query latency and rebuild
// pause:
//
//	-shards           run the scatter-gather benchmark
//	-shard-counts L   comma-separated shard counts (default 1,2,4,8)
//
// -standing runs the standing-query benchmark: S standing queries are
// registered over one dataset while a writer streams ingest batches
// through it, measuring ingest-to-notify latency at the subscribers
// and the per-diff incremental cost against the naive baseline of one
// full re-mine per subscription per batch:
//
//	-standing           run the standing-query benchmark
//	-standing-subs L    comma-separated subscription counts (default 1,4,16)
//	-standing-dataset D dataset: "salary" or "mushroom" (default mushroom)
//
// -advisor runs the self-tuning optimizer benchmark: first the online
// recalibration loop (plan-choice accuracy and mean latency over the
// same mushroom workload under the static unit costs, then again after
// the guardrailed recalibrator has evaluated the observed operator
// timings), then the index advisor on a skewed workload of localized
// low-support queries the base index forces to ARM — before and after
// the advisor's recommended secondary MIP-index is built:
//
//	-advisor            run the self-tuning optimizer benchmark
//	-advisor-queries N  queries per workload phase (default 24)
//
// Observability flags:
//
//	-metrics ADDR       serve engine metrics (Prometheus text format) at
//	                    http://ADDR/metrics and the pprof profiles at
//	                    http://ADDR/debug/pprof/ for the run's duration
//	-accuracy-online    measure the optimizer's plan-choice accuracy the
//	                    online way: trace random queries, re-execute all
//	                    six plans per query, score the choice against the
//	                    empirically cheapest plan (engine accuracy
//	                    trackers, distinct from the §5.1 table's offline
//	                    replay)
//	-accuracy-queries N traced queries for -accuracy-online (default 120)
//
// Absolute times differ from the paper's C++/2010-era hardware numbers;
// the reproduced quantities are the shapes: which plans win where, the
// optimizer's accuracy, and the local-vs-global CFI structure.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"colarm/internal/bench"
	"colarm/internal/obs"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to regenerate (8-13)")
		table      = flag.String("table", "", `table to regenerate ("accuracy" or "simpson")`)
		all        = flag.Bool("all", false, "run every experiment")
		full       = flag.Bool("full", false, "paper-scale profile")
		runs       = flag.Int("runs", 3, "random focal subsets per scenario")
		seed       = flag.Int64("seed", 1, "dataset generator seed")
		concurrent = flag.Bool("concurrent", false, "run the concurrent-clients serving benchmark")
		clients    = flag.Int("clients", runtime.GOMAXPROCS(0), "client goroutines for -concurrent and -ingest")
		queries    = flag.Int("queries", 8, "queries per client for -concurrent and -ingest")
		ingest     = flag.Bool("ingest", false, "run the mixed read/write (live ingestion) benchmark")
		batches    = flag.Int("ingest-batches", 16, "ingest batches in the -ingest mixed phase")
		batchRows  = flag.Int("batch-rows", 32, "rows per ingest batch for -ingest")
		metrics    = flag.String("metrics", "", "serve /metrics and /debug/pprof/ at this address during the run")
		accOnline  = flag.Bool("accuracy-online", false, "measure plan-choice accuracy via traced queries + all-plan replay")
		accQueries = flag.Int("accuracy-queries", 120, "traced queries for -accuracy-online")
		tidset     = flag.Bool("tidset", false, "run the tidset representation benchmark (dense vs hybrid)")
		tidsetRecs = flag.Int("tidset-records", 1<<20, "universe size (records) for -tidset")
		tidsetItem = flag.Int("tidset-items", 48, "item tidsets per density level for -tidset")
		tidsetIter = flag.Int("tidset-iters", 5, "timing iterations per kernel for -tidset (minimum is reported)")
		shards     = flag.Bool("shards", false, "run the scatter-gather benchmark (shard count vs latency vs rebuild pause)")
		shardKs    = flag.String("shard-counts", "1,2,4,8", "comma-separated shard counts for -shards")
		standing   = flag.Bool("standing", false, "run the standing-query benchmark (ingest-to-notify latency, diff vs full re-mine)")
		standSubs  = flag.String("standing-subs", "1,4,16", "comma-separated subscription counts for -standing")
		standData  = flag.String("standing-dataset", "mushroom", `dataset for -standing ("salary" or "mushroom")`)
		advisorRun = flag.Bool("advisor", false, "run the self-tuning optimizer benchmark (recalibration + index advisor)")
		advisorQs  = flag.Int("advisor-queries", 24, "queries per workload phase for -advisor")
		index      = flag.Bool("index", false, "run the MIP-index physical-layer benchmark (flat vs pointer layout)")
		indexProbe = flag.Int("index-probes", 4096, "probe operations per kernel for -index")
		indexIters = flag.Int("index-iters", 5, "timing rounds per kernel for -index (minimum is reported)")
		benchOut   = flag.String("bench-out", "", "write the -tidset, -shards, -index, -standing or -advisor report as JSON to this file (e.g. BENCH_10.json)")
	)
	flag.Parse()
	if *advisorRun {
		if err := runAdvisor(*full, *advisorQs, *seed, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "colarm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *standing {
		if err := runStanding(*standData, *standSubs, *batches, *batchRows, *seed, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "colarm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *index {
		if err := runIndex(*shardKs, *full, *indexProbe, *indexIters, *batches, *batchRows, *seed, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "colarm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *tidset {
		if err := runTidset(*tidsetRecs, *tidsetItem, *tidsetIter, *seed, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "colarm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *shards {
		if err := runShards(*shardKs, *full, *clients, *queries, *batches, *batchRows, *seed, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "colarm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *table, *all, *full, *runs, *seed, *concurrent, *clients, *queries,
		*ingest, *batches, *batchRows, *metrics, *accOnline, *accQueries); err != nil {
		fmt.Fprintln(os.Stderr, "colarm-bench:", err)
		os.Exit(1)
	}
}

// runAdvisor runs the self-tuning optimizer benchmark (recalibration
// accuracy/latency plus the skewed-workload secondary-index win) and
// optionally persists the JSON report (BENCH_<pr>.json).
func runAdvisor(full bool, queries int, seed int64, out string) error {
	if queries < 1 {
		return fmt.Errorf("-advisor-queries must be positive")
	}
	rep, err := bench.RunAdvisor(full, queries, seed)
	if err != nil {
		return err
	}
	bench.PrintAdvisor(os.Stdout, rep)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	return nil
}

// runStanding runs the standing-query benchmark (ingest-to-notify
// latency and per-diff cost against the full re-mine baseline) and
// optionally persists the JSON report (BENCH_<pr>.json).
func runStanding(dataset, counts string, batches, batchRows int, seed int64, out string) error {
	subs, err := parseCounts(counts)
	if err != nil {
		return err
	}
	rep, err := bench.RunStanding(dataset, subs, batches, batchRows, seed)
	if err != nil {
		return err
	}
	bench.PrintStanding(os.Stdout, rep)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	return nil
}

// runTidset runs the dense-vs-hybrid tidset benchmark and optionally
// persists the JSON report (the repository's BENCH_<pr>.json perf
// trajectory format).
func runTidset(records, items, iters int, seed int64, out string) error {
	rep := bench.RunTidset(records, items, iters, seed)
	bench.PrintTidset(os.Stdout, rep)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	return nil
}

// runIndex runs the MIP-index physical-layer benchmark (flat vs
// pointer closure/lookup/R-tree kernels plus the sharded consolidation
// cycle) and optionally persists the JSON report (BENCH_<pr>.json).
func runIndex(counts string, full bool, probes, iters, batches, batchRows int, seed int64, out string) error {
	ks, err := parseCounts(counts)
	if err != nil {
		return err
	}
	spec, err := bench.SpecByName(bench.Specs(full, seed), "mushroom")
	if err != nil {
		return err
	}
	rep, err := bench.RunIndex(spec, ks, probes, iters, batches, batchRows, seed)
	if err != nil {
		return err
	}
	bench.PrintIndex(os.Stdout, rep)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	return nil
}

// parseCounts parses a comma-separated shard-count list.
func parseCounts(counts string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(counts, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad -shard-counts entry %q", part)
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("-shard-counts selected no shard counts")
	}
	return ks, nil
}

// runShards runs the scatter-gather benchmark over the given shard
// counts and optionally persists the JSON report (BENCH_<pr>.json).
func runShards(counts string, full bool, clients, perClient, batches, batchRows int, seed int64, out string) error {
	ks, err := parseCounts(counts)
	if err != nil {
		return err
	}
	spec, err := bench.SpecByName(bench.Specs(full, seed), "mushroom")
	if err != nil {
		return err
	}
	rep, err := bench.RunShards(spec, ks, clients, perClient, batches, batchRows, seed)
	if err != nil {
		return err
	}
	bench.PrintShards(os.Stdout, rep)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	return nil
}

func run(fig int, table string, all, full bool, runs int, seed int64, concurrent bool, clients, perClient int,
	ingest bool, batches, batchRows int, metricsAddr string, accOnline bool, accQueries int) error {
	if fig == 0 && table == "" && !concurrent && !ingest && !accOnline {
		all = true
	}
	// Ctrl-C aborts the query mid-operator instead of waiting out a
	// paper-scale mining run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	reg := obs.NewRegistry()
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "colarm-bench: metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("serving metrics at http://%s/metrics (pprof at /debug/pprof/)\n", metricsAddr)
	}
	specs := bench.Specs(full, seed)
	profile := "reduced"
	if full {
		profile = "paper-scale"
	}
	fmt.Printf("COLARM experiment harness — %s profile, seed %d, %d runs/scenario\n\n", profile, seed, runs)

	envs := map[string]*bench.Env{}
	env := func(name string) (*bench.Env, error) {
		if e, ok := envs[name]; ok {
			return e, nil
		}
		spec, err := bench.SpecByName(specs, name)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		e, err := bench.SetupWith(spec, reg)
		if err != nil {
			return nil, err
		}
		fmt.Printf("[setup] %s: %d records, %d MIPs at primary %.0f%% (%.1fs)\n",
			name, e.Dataset.NumRecords(), e.Engine.Index.NumMIPs(), 100*spec.Primary,
			time.Since(start).Seconds())
		envs[name] = e
		return e, nil
	}

	datasets := []string{"chess", "mushroom", "pumsb"}
	figForDataset := map[string]int{"chess": 9, "mushroom": 10, "pumsb": 11}

	// Figure 8.
	if all || fig == 8 {
		fmt.Println()
		for _, name := range datasets {
			e, err := env(name)
			if err != nil {
				return err
			}
			rows, err := e.RunFig8()
			if err != nil {
				return err
			}
			bench.PrintFig8(os.Stdout, name, rows)
		}
	}

	// Figures 9-11 (+12 aggregates from the same cells).
	var gainRows []bench.GainRow
	wantGains := all || fig == 12
	for _, name := range datasets {
		if !(all || fig == figForDataset[name] || wantGains) {
			continue
		}
		e, err := env(name)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(seed + 100))
		cells, err := e.RunPlanGrid(0.85, runs, rng)
		if err != nil {
			return err
		}
		if all || fig == figForDataset[name] {
			fmt.Printf("Figure %d:\n", figForDataset[name])
			bench.PrintPlanGrid(os.Stdout, name, cells)
		}
		gainRows = append(gainRows, bench.Gains(name, cells))
	}
	if wantGains && len(gainRows) > 0 {
		bench.PrintGains(os.Stdout, gainRows)
	}

	// Accuracy table (§5.1).
	if all || table == "accuracy" {
		var results []bench.AccuracyResult
		for _, name := range datasets {
			e, err := env(name)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(seed + 200))
			res, err := e.RunAccuracy(runs, 0.05, rng)
			if err != nil {
				return err
			}
			results = append(results, res)
		}
		bench.PrintAccuracy(os.Stdout, results, 0.05)
	}

	// Online plan-choice accuracy: traced queries scored against
	// ground-truth all-plan executions through the engines' running
	// accuracy trackers.
	if accOnline {
		perDataset := (accQueries + len(datasets) - 1) / len(datasets)
		fmt.Printf("\nOnline plan-choice accuracy (%d traced queries per dataset, 5%% regret tolerance):\n", perDataset)
		totQ, totC := 0, 0
		for _, name := range datasets {
			e, err := env(name)
			if err != nil {
				return err
			}
			spec := e.Spec
			rng := rand.New(rand.NewSource(seed + 500))
			for n := 0; n < perDataset; n++ {
				regn := e.RandomFocalSubset(rng, spec.DQFracs[n%len(spec.DQFracs)])
				q := e.QueryFor(regn, spec.MinSupps[n%len(spec.MinSupps)], spec.MinConfs[n%len(spec.MinConfs)])
				q.Trace = &obs.Trace{}
				if _, _, err := e.Engine.MineContext(ctx, q); err != nil {
					return err
				}
				if _, err := e.Engine.EvaluatePlans(q); err != nil {
					return err
				}
			}
			rep := e.Engine.Accuracy.Report()
			fmt.Printf("  %-10s %4d queries  accuracy %5.1f%%  (worst miss regret %.0f%%)\n",
				name, rep.Queries, 100*rep.Accuracy(), 100*rep.MissRegretMax)
			totQ += rep.Queries
			totC += rep.Correct
		}
		if totQ > 0 {
			fmt.Printf("  %-10s %4d queries  accuracy %5.1f%%\n", "overall", totQ, 100*float64(totC)/float64(totQ))
		}
	}

	// Figure 13.
	if all || fig == 13 {
		for _, name := range datasets {
			e, err := env(name)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(seed + 300))
			rows := e.RunLocalVsGlobal(runs, rng)
			bench.PrintFig13(os.Stdout, name, rows)
		}
	}

	// Concurrent-clients serving benchmark.
	if all || concurrent {
		for _, name := range datasets {
			e, err := env(name)
			if err != nil {
				return err
			}
			spec := e.Spec
			rows, err := e.ConcurrencyMatrix(clients, perClient,
				spec.MinSupps[0], spec.MinConfs[0], seed+400)
			if err != nil {
				return err
			}
			bench.PrintConcurrent(os.Stdout, name, rows)
		}
	}

	// Mixed read/write (live ingestion) benchmark. Run on demand only —
	// it leaves each engine's delta store populated, so it is kept out
	// of -all and ordered after the paper artifacts.
	if ingest {
		for _, name := range datasets {
			e, err := env(name)
			if err != nil {
				return err
			}
			spec := e.Spec
			res, err := e.RunIngestMix(clients, perClient, batches, batchRows,
				spec.MinSupps[0], spec.MinConfs[0], seed+600)
			if err != nil {
				return err
			}
			bench.PrintIngest(os.Stdout, res)
		}
	}

	// Simpson anecdote (§5.3).
	if all || table == "simpson" {
		e, err := env("mushroom")
		if err != nil {
			return err
		}
		// The mushroom generator plants subpopulation patterns inside
		// m01 = m011 (mirroring the stalk-shape=tapering anecdote).
		rep, err := e.RunSimpson("m01", "m011", 0.69, 0.45, 8)
		if err != nil {
			return err
		}
		bench.PrintSimpson(os.Stdout, rep)
	}
	return nil
}
