// Package standing implements standing queries: localized association
// rule queries registered once and kept continuously up to date as
// ingestion mutates the dataset, with subscribers receiving an ordered
// stream of rule-set *diffs* instead of re-polling /v1/mine.
//
// The manager exploits the delta layer's exactness guarantee (a rule
// set is a pure function of the version clock) in two ways:
//
//   - Affectedness gating. Localized rules are computed entirely
//     within a query's focal subset, so an applied batch can only
//     change the rule set if one of its inserted or deleted records
//     lies inside the focal region (ApplyNotice.Affects). Batches that
//     miss every registered region skip mining entirely — the dominant
//     case when many narrow standing queries watch a wide ingest
//     stream.
//
//   - Shared incremental machinery. Affected queries are re-mined
//     through Engine.RuleDiff, which rides the merged-view cache (the
//     view is materialized at most once per version, shared across all
//     trackers diffed at that version) and diffs against the tracker's
//     baseline in O(|rules|).
//
// Queries are deduplicated by canonical form: any number of
// subscriptions to the same (dataset, canonical query) share one
// tracker, one baseline, and one mining pass per affecting batch.
package standing

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"colarm"
	"colarm/internal/obs"
)

// Additional sentinel errors from Manager entry points.
var (
	// ErrNoDataset means no engine is attached under the requested
	// dataset name.
	ErrNoDataset = errors.New("standing: unknown dataset")
	// ErrBadTrack means a Track named an unknown measure.
	ErrBadTrack = errors.New("standing: unknown tracked measure")
)

// trackMeasures are the measures a Track may watch.
var trackMeasures = map[string]bool{
	"support": true, "confidence": true, "lift": true,
	"cosine": true, "kulczynski": true,
}

func measureValue(r colarm.Rule, m string) float64 {
	switch m {
	case "support":
		return r.Support
	case "confidence":
		return r.Confidence
	case "lift":
		return r.Lift
	case "cosine":
		return r.Cosine
	case "kulczynski":
		return r.Kulczynski
	}
	return 0
}

// Config tunes a Manager.
type Config struct {
	// MaxSubscriptions caps live subscriptions across all datasets
	// (default 1024).
	MaxSubscriptions int
	// EventBuffer is each subscription's ring capacity in events
	// (default 256). A consumer that falls this far behind is evicted.
	EventBuffer int
	// DiffTimeout bounds each incremental mining pass (default 30s).
	DiffTimeout time.Duration
	// Metrics receives the manager's metrics; nil uses a private
	// registry.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxSubscriptions <= 0 {
		c.MaxSubscriptions = 1024
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.DiffTimeout <= 0 {
		c.DiffTimeout = 30 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// tracker is the shared state for one (dataset, canonical query) pair:
// the baseline rule set all diffs are computed against, and the
// subscriptions that receive them. Its mutex also guards each member
// subscription's ring (see Subscription).
type tracker struct {
	dataset   string
	canonical string
	query     colarm.Query

	mu sync.Mutex
	// gen and ver locate the baseline on the (generation, version)
	// timeline of the *last emitted event* — they advance only when an
	// event is appended, so diff intervals tile exactly.
	gen   uint64
	ver   uint64
	rules []colarm.Rule
	subs  []*Subscription
}

// snapshotEventLocked builds a snapshot event from the baseline; the
// caller holds t.mu. The rules slice is shared — the worker replaces
// the baseline wholesale and never mutates it in place.
func (t *tracker) snapshotEventLocked(s *Subscription) Event {
	return Event{
		Type:        EventSnapshot,
		Dataset:     s.dataset,
		Generation:  t.gen,
		FromVersion: t.ver,
		ToVersion:   t.ver,
		Rules:       t.rules,
	}
}

// attachment is the manager's hold on one dataset's current engine.
type attachment struct {
	eng    *colarm.Engine
	cancel func()
}

// pendingNotice coalesces apply notices for one dataset between worker
// passes: the covered version interval, the changed rows (capped), and
// whether an engine swap (epoch) or cap overflow forces every tracker
// to re-diff.
type pendingNotice struct {
	eng     *colarm.Engine
	notices []colarm.ApplyNotice
	// full means the notice cap overflowed: treat every tracker as
	// affected rather than keep unbounded row sets.
	full bool
	// epoch means the engine was swapped (background rebuild): every
	// tracker re-baselines on the new engine and emits an epoch event.
	epoch bool
	// verify lists newly created trackers that must be re-diffed once
	// regardless of affectedness, closing the race between baseline
	// mining and tracker registration.
	verify []*tracker
}

// maxPendingNotices bounds the per-dataset coalesced notice list; past
// this the batch degrades to full (affects-everything) semantics.
const maxPendingNotices = 256

// Manager owns standing-query subscriptions over one or more attached
// engines. One background worker serializes all diff mining; apply
// notices are coalesced per dataset while it is busy, so ingestion is
// never blocked by subscriber work beyond a map insert.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	busy     bool
	nextID   uint64
	engines  map[string]*attachment
	trackers map[string]*tracker // key: dataset + "\x00" + canonical
	subs     map[string]*Subscription
	pending  map[string]*pendingNotice // by dataset
	wake     chan struct{}
	done     chan struct{}

	active      *obs.Gauge
	diffSeconds *obs.Histogram
	events      map[string]*obs.Counter // by event type
	drops       *obs.Counter
	evictions   *obs.Counter
	skips       *obs.Counter
	diffErrors  *obs.Counter
}

// NewManager creates a Manager and starts its diff worker. Call Close
// to stop it.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	m := &Manager{
		cfg:      cfg,
		engines:  make(map[string]*attachment),
		trackers: make(map[string]*tracker),
		subs:     make(map[string]*Subscription),
		pending:  make(map[string]*pendingNotice),
		wake:     make(chan struct{}),
		done:     make(chan struct{}),

		active: reg.Gauge("colarm_subscriptions_active",
			"Live standing-query subscriptions."),
		diffSeconds: reg.Histogram("colarm_rule_diff_seconds", "",
			"Latency of incremental rule-set diff passes.", nil),
		events: map[string]*obs.Counter{},
		drops: reg.Counter("colarm_subscription_queue_dropped_total",
			"Events dropped from full subscription ring buffers."),
		evictions: reg.Counter("colarm_subscription_evictions_total",
			"Consumers evicted for falling behind their event buffer."),
		skips: reg.Counter("colarm_rule_diff_skipped_total",
			"Apply batches skipped by the affectedness gate without mining."),
		diffErrors: reg.Counter("colarm_rule_diff_errors_total",
			"Incremental diff passes that failed (retried on the next affecting batch)."),
	}
	for _, typ := range []string{EventSnapshot, EventDiff, EventEpoch, EventEvicted} {
		m.events[typ] = reg.CounterWith("colarm_subscription_events_total",
			`type="`+typ+`"`, "Standing-query events delivered to subscription buffers, by type.")
	}
	go m.run()
	return m
}

// Attach registers (or replaces) the engine serving dataset name and
// hooks its apply-notice stream. Replacing an engine — the background
// rebuild path — enqueues an epoch: every tracker on the dataset
// re-baselines against the new engine and emits an epoch event
// re-anchoring the version clock (with an empty diff when the rebuild
// preserved exactness, as it should).
func (m *Manager) Attach(dataset string, eng *colarm.Engine) {
	cancel := eng.Subscribe(func(n colarm.ApplyNotice) {
		m.enqueue(dataset, eng, func(p *pendingNotice) {
			if p.full || len(p.notices) >= maxPendingNotices {
				p.full = true
				p.notices = nil
				return
			}
			p.notices = append(p.notices, n)
		})
	})
	m.mu.Lock()
	old := m.engines[dataset]
	m.engines[dataset] = &attachment{eng: eng, cancel: cancel}
	m.mu.Unlock()
	if old != nil {
		old.cancel()
		m.enqueue(dataset, eng, func(p *pendingNotice) { p.epoch = true })
	}
}

// enqueue merges a change into the dataset's pending notice and wakes
// the worker. It is the apply-observer fast path: a map insert under
// the manager lock, nothing more.
func (m *Manager) enqueue(dataset string, eng *colarm.Engine, merge func(*pendingNotice)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	p := m.pending[dataset]
	if p == nil || p.eng != eng {
		// First notice, or a notice from a newer engine: reset onto the
		// current engine (stale pre-swap notices are subsumed by the
		// epoch re-diff).
		np := &pendingNotice{eng: eng}
		if p != nil {
			np.epoch = p.epoch
			np.verify = p.verify
		}
		p = np
		m.pending[dataset] = p
	}
	merge(p)
	close(m.wake)
	m.wake = make(chan struct{})
}

// run is the diff worker: it drains pending notices one dataset at a
// time, re-mining affected trackers and appending events.
func (m *Manager) run() {
	for {
		m.mu.Lock()
		var ds string
		var p *pendingNotice
		for k, v := range m.pending {
			ds, p = k, v
			delete(m.pending, k)
			break
		}
		if p == nil {
			m.busy = false
			if m.closed {
				m.mu.Unlock()
				close(m.done)
				return
			}
			wake := m.wake
			m.mu.Unlock()
			<-wake
			continue
		}
		m.busy = true
		var ts []*tracker
		for _, t := range m.trackers {
			if t.dataset == ds {
				ts = append(ts, t)
			}
		}
		m.mu.Unlock()
		// Deterministic order keeps event interleavings reproducible in
		// tests and spreads no tracker systematically last.
		sort.Slice(ts, func(i, j int) bool { return ts[i].canonical < ts[j].canonical })
		for _, t := range ts {
			m.diffTracker(t, p)
		}
	}
}

// diffTracker re-mines one tracker against an applied batch if the
// affectedness gate says the batch can have changed its rule set, and
// appends the resulting event to every member subscription.
func (m *Manager) diffTracker(t *tracker, p *pendingNotice) {
	affected := p.full || p.epoch
	if !affected {
		for _, tv := range p.verify {
			if tv == t {
				affected = true
				break
			}
		}
	}
	if !affected {
		for _, n := range p.notices {
			ok, err := n.Affects(t.query)
			if err != nil || ok {
				// Validation errors (e.g. after a schema-changing swap)
				// degrade conservatively to "affected"; the diff pass
				// will surface the real error.
				affected = true
				break
			}
		}
	}
	if !affected {
		m.skips.Inc()
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.DiffTimeout)
	start := time.Now()
	t.mu.Lock()
	baseline := t.rules
	t.mu.Unlock()
	diff, err := p.eng.RuleDiff(ctx, t.query, baseline)
	m.diffSeconds.Observe(time.Since(start))
	cancel()
	if err != nil {
		// Leave the baseline untouched: the next affecting batch (or
		// epoch) retries from the same anchor, so no change is lost.
		m.diffErrors.Inc()
		return
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if !baselineIs(t.rules, baseline) {
		// Another pass replaced the baseline while we mined (possible
		// only across epochs today, but cheap to guard): drop this
		// stale diff; the batch that won also covered our interval.
		return
	}
	emit := !diff.Empty() || p.epoch
	if !emit {
		// Affected but bit-identical (e.g. an insert and delete that
		// cancel out): no event; the next diff's interval covers this
		// batch too.
		return
	}
	typ := EventDiff
	if p.epoch {
		typ = EventEpoch
	}
	base := Event{
		Type:        typ,
		Dataset:     t.dataset,
		Generation:  diff.Generation,
		FromVersion: t.ver,
		ToVersion:   diff.Version,
		Appeared:    diff.Appeared,
		Disappeared: diff.Disappeared,
		Updated:     diff.Updated,
	}
	var prev map[string]colarm.Rule
	for _, s := range t.subs {
		ev := base
		if s.track != nil {
			if prev == nil {
				prev = make(map[string]colarm.Rule, len(t.rules))
				for _, r := range t.rules {
					prev[colarm.RuleKey(r)] = r
				}
			}
			ev.Crossed = crossings(*s.track, prev, diff)
		}
		m.drops.Add(int64(s.append(ev)))
		m.events[typ].Inc()
	}
	t.rules = diff.Rules
	t.gen = diff.Generation
	t.ver = diff.Version
}

// baselineIs reports whether cur is the same slice the diff was
// computed against (identity, not deep equality).
func baselineIs(cur, base []colarm.Rule) bool {
	if len(cur) != len(base) {
		return false
	}
	return len(cur) == 0 || &cur[0] == &base[0]
}

// crossings finds rules that persisted across the diff while their
// tracked measure moved from one side of the threshold to the other.
// (A rule appearing already above the threshold is visible in Appeared;
// crossings report movement, not membership.)
func crossings(tr Track, prev map[string]colarm.Rule, diff *colarm.RuleSetDiff) []Crossing {
	var out []Crossing
	for _, r := range diff.Updated {
		p, ok := prev[colarm.RuleKey(r)]
		if !ok {
			continue
		}
		pv := measureValue(p, tr.Measure)
		cv := measureValue(r, tr.Measure)
		var dir string
		switch {
		case pv < tr.Threshold && cv >= tr.Threshold:
			dir = "above"
		case pv >= tr.Threshold && cv < tr.Threshold:
			dir = "below"
		default:
			continue
		}
		out = append(out, Crossing{
			Rule: r, Measure: tr.Measure, Threshold: tr.Threshold,
			Direction: dir, Previous: pv, Current: cv,
		})
	}
	return out
}

// Create registers a subscription for q on the named dataset. The
// first subscription for a given canonical query mines the initial
// baseline synchronously; later subscribers share the existing tracker
// and receive its current baseline. The subscription's first event
// (sequence 1) is a snapshot.
func (m *Manager) Create(ctx context.Context, dataset string, q colarm.Query, track *Track) (*Subscription, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if track != nil && !trackMeasures[track.Measure] {
		return nil, fmt.Errorf("%w %q", ErrBadTrack, track.Measure)
	}
	key := dataset + "\x00" + q.Canonical()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.subs) >= m.cfg.MaxSubscriptions {
		m.mu.Unlock()
		return nil, ErrLimit
	}
	att := m.engines[dataset]
	if att == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrNoDataset, dataset)
	}
	if t := m.trackers[key]; t != nil {
		s := m.newSubscriptionLocked(t, q, track)
		m.mu.Unlock()
		return s, nil
	}
	m.mu.Unlock()

	// Mine the initial baseline outside the manager lock (it can take
	// a while and must not stall the notice fast path).
	dctx, cancel := context.WithTimeout(ctx, m.cfg.DiffTimeout)
	start := time.Now()
	diff, err := att.eng.RuleDiff(dctx, q, nil)
	m.diffSeconds.Observe(time.Since(start))
	cancel()
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.subs) >= m.cfg.MaxSubscriptions {
		m.mu.Unlock()
		return nil, ErrLimit
	}
	t := m.trackers[key]
	if t == nil {
		t = &tracker{
			dataset:   dataset,
			canonical: q.Canonical(),
			query:     q,
			gen:       diff.Generation,
			ver:       diff.Version,
			rules:     diff.Rules,
		}
		m.trackers[key] = t
		// Close the registration race: a batch applied after the
		// baseline mine but processed before the tracker existed would
		// be lost, so force one unconditional re-diff. If nothing
		// slipped in, the diff is empty and no event is emitted.
		p := m.pending[dataset]
		if p == nil {
			p = &pendingNotice{eng: att.eng}
			m.pending[dataset] = p
		}
		p.verify = append(p.verify, t)
		close(m.wake)
		m.wake = make(chan struct{})
	}
	s := m.newSubscriptionLocked(t, q, track)
	m.mu.Unlock()
	return s, nil
}

// newSubscriptionLocked attaches a new subscription to t and seeds its
// ring with a snapshot event; the caller holds m.mu.
func (m *Manager) newSubscriptionLocked(t *tracker, q colarm.Query, track *Track) *Subscription {
	m.nextID++
	s := &Subscription{
		id:       fmt.Sprintf("sub-%d", m.nextID),
		dataset:  t.dataset,
		query:    q,
		track:    track,
		t:        t,
		m:        m,
		buf:      make([]Event, m.cfg.EventBuffer),
		firstSeq: 1,
		nextSeq:  1,
		wake:     make(chan struct{}),
	}
	m.subs[s.id] = s
	t.mu.Lock()
	t.subs = append(t.subs, s)
	s.append(t.snapshotEventLocked(s))
	t.mu.Unlock()
	m.active.Inc()
	m.events[EventSnapshot].Inc()
	return s
}

// Get returns the subscription with the given id, or nil.
func (m *Manager) Get(id string) *Subscription {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.subs[id]
}

// List returns all live subscriptions, ordered by id.
func (m *Manager) List() []*Subscription {
	m.mu.Lock()
	out := make([]*Subscription, 0, len(m.subs))
	for _, s := range m.subs {
		out = append(out, s)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Delete removes a subscription, waking its consumers with ErrClosed
// (after they drain buffered events). The last subscription on a
// tracker retires the tracker — its baseline and affectedness checks
// stop costing anything. Reports whether the id existed.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.subs[id]
	if s == nil {
		return false
	}
	delete(m.subs, id)
	t := s.t
	t.mu.Lock()
	for i, o := range t.subs {
		if o == s {
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			break
		}
	}
	s.closeLocked()
	empty := len(t.subs) == 0
	t.mu.Unlock()
	if empty {
		delete(m.trackers, t.dataset+"\x00"+t.canonical)
	}
	m.active.Dec()
	return true
}

// Quiesce blocks until every enqueued apply notice has been fully
// processed (or ctx expires). It is a test and benchmark aid: after an
// Ingest returns and Quiesce succeeds, every event the batch implies
// has been appended to every subscription ring.
func (m *Manager) Quiesce(ctx context.Context) error {
	for {
		m.mu.Lock()
		idle := len(m.pending) == 0 && !m.busy
		m.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close detaches every engine, closes every subscription, and stops
// the worker (waiting for any in-flight diff pass to finish).
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.done
		return
	}
	m.closed = true
	atts := make([]*attachment, 0, len(m.engines))
	for _, a := range m.engines {
		atts = append(atts, a)
	}
	for _, s := range m.subs {
		t := s.t
		t.mu.Lock()
		s.closeLocked()
		t.mu.Unlock()
	}
	m.pending = map[string]*pendingNotice{}
	close(m.wake)
	m.wake = make(chan struct{})
	m.mu.Unlock()
	for _, a := range atts {
		a.cancel()
	}
	<-m.done
}
