package plans

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"colarm/internal/itemset"
)

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]int32, n)
			var mu sync.Mutex
			parallelFor(n, workers, func(i int) {
				mu.Lock()
				hits[i]++
				mu.Unlock()
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestParallelForSerialIsInOrder(t *testing.T) {
	var order []int
	parallelFor(5, 1, func(i int) { order = append(order, i) })
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("serial order = %v", order)
	}
}

func TestShardedCountsComputesEachKeyOnce(t *testing.T) {
	sc := newShardedCounts()
	const keys = 50
	var computes [keys]int32
	var freshTotal int32
	var mu sync.Mutex
	parallelFor(keys*16, runtime.GOMAXPROCS(0), func(i int) {
		k := i % keys
		v, fresh := sc.get(fmt.Sprintf("key-%03d", k), func() int {
			mu.Lock()
			computes[k]++
			mu.Unlock()
			return k * 7
		})
		if v != k*7 {
			t.Errorf("key %d: got %d", k, v)
		}
		if fresh {
			mu.Lock()
			freshTotal++
			mu.Unlock()
		}
	})
	for k, c := range computes {
		if c != 1 {
			t.Errorf("key %d computed %d times, want exactly once", k, c)
		}
	}
	if freshTotal != keys {
		t.Errorf("fresh count = %d, want %d (one per distinct key)", freshTotal, keys)
	}
}

func TestUnknownKindErrorMessage(t *testing.T) {
	if _, err := NewExecutor(salaryIndex(t, 0.18)).Run(Kind(42), &Query{
		Region:     itemset.NewRegion([]int{4, 6, 4, 2, 3, 4}),
		MinSupport: 0.5, MinConfidence: 0.5,
	}); err == nil || !strings.Contains(err.Error(), "42") {
		t.Errorf("unknown-kind error must name the offending value, got %v", err)
	}
	// A kind with a printable name includes it alongside the value.
	msg := unknownKindError(SSEUV).Error()
	if !strings.Contains(msg, "4") || !strings.Contains(msg, "SS-E-U-V") {
		t.Errorf("error for named kind = %q, want value and name", msg)
	}
	if msg := unknownKindError(99).Error(); !strings.Contains(msg, "99") {
		t.Errorf("error for unnamed kind = %q, want the value", msg)
	}
}

// equivQueries returns a workload covering the operator paths: full
// domain, selective regions, item-attribute masks, and a threshold low
// enough to exercise multi-level rule generation.
func equivQueries(t *testing.T, idx interface {
	RegionFromSelections(map[string][]string) (*itemset.Region, error)
}, space *itemset.Space) []*Query {
	t.Helper()
	full := itemset.RegionFor(space)
	seattle, err := idx.RegionFromSelections(map[string][]string{
		"Location": {"Seattle"}, "Gender": {"F"},
	})
	if err != nil {
		t.Fatal(err)
	}
	boston, err := idx.RegionFromSelections(map[string][]string{
		"Location": {"Boston"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, space.NumAttrs())
	mask[4], mask[5] = true, true // Age, Salary
	return []*Query{
		{Region: full, MinSupport: 0.45, MinConfidence: 0.8},
		{Region: full, MinSupport: 0.2, MinConfidence: 0.3},
		{Region: seattle, MinSupport: 0.70, MinConfidence: 0.95, ItemAttrs: mask},
		{Region: boston, MinSupport: 0.4, MinConfidence: 0.6},
		{Region: boston, MinSupport: 0.4, MinConfidence: 0.6, MaxConsequent: 1},
	}
}

// TestSerialParallelEquivalence asserts the core determinism contract:
// for every plan kind, every check mode and a workload of diverse
// queries, the parallel path (Workers = GOMAXPROCS, floored at 4) emits
// byte-identical rules and identical operator counters to the serial
// path (Workers = 1).
func TestSerialParallelEquivalence(t *testing.T) {
	idx := salaryIndex(t, 0.18)
	queries := equivQueries(t, idx, idx.Space)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, mode := range []CheckMode{AutoCheck, ScanCheck, BitmapCheck} {
		for _, k := range Kinds() {
			for qi, q := range queries {
				serial := &Executor{Idx: idx, Mode: mode, Workers: 1}
				par := &Executor{Idx: idx, Mode: mode, Workers: workers}
				want, err := serial.Run(k, q)
				if err != nil {
					t.Fatalf("%v/%v q%d serial: %v", mode, k, qi, err)
				}
				got, err := par.Run(k, q)
				if err != nil {
					t.Fatalf("%v/%v q%d parallel: %v", mode, k, qi, err)
				}
				if !reflect.DeepEqual(got.Rules, want.Rules) {
					t.Errorf("%v/%v q%d: parallel rules diverge (%d vs %d rules)",
						mode, k, qi, len(got.Rules), len(want.Rules))
				}
				ws, gs := want.Stats, got.Stats
				ws.Duration, gs.Duration = 0, 0
				if ws != gs {
					t.Errorf("%v/%v q%d: stats diverge\nserial:   %+v\nparallel: %+v", mode, k, qi, ws, gs)
				}
			}
		}
	}
}

// TestConcurrentRunSmoke hammers one shared Executor from many
// goroutines — the scenario the race detector must bless — and checks
// every goroutine observes the same answer.
func TestConcurrentRunSmoke(t *testing.T) {
	idx := salaryIndex(t, 0.18)
	ex := NewExecutor(idx) // Workers = 0: nested per-query parallelism
	queries := equivQueries(t, idx, idx.Space)

	type answer struct {
		k Kind
		q int
	}
	want := map[answer]*Result{}
	for _, k := range Kinds() {
		for qi, q := range queries {
			res, err := ex.Run(k, q)
			if err != nil {
				t.Fatal(err)
			}
			want[answer{k, qi}] = res
		}
	}

	goroutines := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				k := Kinds()[(g+it)%len(Kinds())]
				qi := (g * 7 / 3) % len(queries)
				res, err := ex.Run(k, queries[qi])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !reflect.DeepEqual(res.Rules, want[answer{k, qi}].Rules) {
					errs <- fmt.Errorf("goroutine %d: %v q%d rules diverge under concurrency", g, k, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
