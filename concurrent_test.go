package colarm

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

func openSalary(t testing.TB, opts Options) *Engine {
	t.Helper()
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	if opts.PrimarySupport == 0 {
		opts.PrimarySupport = 0.18
	}
	eng, err := Open(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestWorkersOptionEquivalence checks the public knob end to end: an
// engine opened with Workers=1 and one with the full pool answer every
// query identically, rules and statistics alike.
func TestWorkersOptionEquivalence(t *testing.T) {
	serial := openSalary(t, Options{Workers: 1})
	parallel := openSalary(t, Options{Workers: runtime.GOMAXPROCS(0) + 2})
	queries := []Query{
		{MinSupport: 0.2, MinConfidence: 0.3},
		{Range: map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
			ItemAttributes: []string{"Age", "Salary"},
			MinSupport:     0.70, MinConfidence: 0.95},
		{Range: map[string][]string{"Location": {"Boston"}},
			MinSupport: 0.4, MinConfidence: 0.6, Plan: SSEUV},
		{MinSupport: 0.45, MinConfidence: 0.8, Plan: ARM},
	}
	for qi, q := range queries {
		want, err := serial.Mine(q)
		if err != nil {
			t.Fatalf("q%d serial: %v", qi, err)
		}
		got, err := parallel.Mine(q)
		if err != nil {
			t.Fatalf("q%d parallel: %v", qi, err)
		}
		if !reflect.DeepEqual(got.Rules, want.Rules) {
			t.Errorf("q%d: rules diverge across Workers settings", qi)
		}
		ws, gs := want.Stats, got.Stats
		ws.DurationNanos, gs.DurationNanos = 0, 0
		if ws != gs {
			t.Errorf("q%d: stats diverge\nserial:   %+v\nparallel: %+v", qi, ws, gs)
		}
	}
}

// TestStatsExposesExecutorCounters checks that the executor's operator
// counters survive the trip through the public Stats instead of being
// silently dropped.
func TestStatsExposesExecutorCounters(t *testing.T) {
	eng := openSalary(t, Options{})
	res, err := eng.Mine(Query{MinSupport: 0.2, MinConfidence: 0.3, Plan: SEV})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.RNodesVisited == 0 || st.REntriesChecked == 0 {
		t.Errorf("R-tree counters not plumbed: %+v", st)
	}
	if st.Qualified == 0 || st.OracleCalls == 0 || st.OracleMisses == 0 {
		t.Errorf("ELIMINATE/VERIFY counters not plumbed: %+v", st)
	}
	// A query with an item-attribute mask must surface filter drops.
	res, err = eng.Mine(Query{
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.2, MinConfidence: 0.3, Plan: SEV,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ItemFiltered == 0 {
		t.Errorf("ItemFiltered not plumbed: %+v", res.Stats)
	}
}

// TestEngineConcurrentMine exercises the documented concurrency
// contract: one Engine serving Mine, MineQL and Explain from many
// goroutines at once. Run under -race this is the regression net for
// any shared-mutable-state slip in the executor, cost model or index.
func TestEngineConcurrentMine(t *testing.T) {
	eng := openSalary(t, Options{})
	queries := []Query{
		{MinSupport: 0.2, MinConfidence: 0.3},
		{Range: map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
			ItemAttributes: []string{"Age", "Salary"},
			MinSupport:     0.70, MinConfidence: 0.95},
		{Range: map[string][]string{"Location": {"Boston"}}, MinSupport: 0.4,
			MinConfidence: 0.6, Plan: SSVS},
		{MinSupport: 0.45, MinConfidence: 0.8, Plan: ARM},
	}
	const ql = `REPORT LOCALIZED ASSOCIATION RULES FROM salary
WHERE RANGE Location = (Seattle), Gender = (F)
AND ITEM ATTRIBUTES Age, Salary
HAVING minsupport = 70% AND minconfidence = 95%;`

	want := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := eng.Mine(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	goroutines := 4 * runtime.GOMAXPROCS(0)
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				switch (g + it) % 3 {
				case 0:
					qi := (g + it) % len(queries)
					res, err := eng.Mine(queries[qi])
					if err != nil {
						errs <- fmt.Errorf("goroutine %d Mine: %v", g, err)
						return
					}
					if !reflect.DeepEqual(res.Rules, want[qi].Rules) {
						errs <- fmt.Errorf("goroutine %d: q%d rules diverge under concurrency", g, qi)
						return
					}
				case 1:
					if _, err := eng.MineQL(ql); err != nil {
						errs <- fmt.Errorf("goroutine %d MineQL: %v", g, err)
						return
					}
				case 2:
					if _, err := eng.Explain(queries[(g+it)%len(queries)]); err != nil {
						errs <- fmt.Errorf("goroutine %d Explain: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
