package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"colarm/internal/datagen"
	"colarm/internal/plans"
)

// tinySpec is a fast chess-like environment for harness tests.
func tinySpec() DatasetSpec {
	return DatasetSpec{
		Name:          "chess",
		Config:        datagen.Scaled(datagen.ChessConfig(5), 0.1),
		Primary:       0.80,
		MinSupps:      []float64{0.85, 0.90},
		MinConfs:      []float64{0.85, 0.95},
		DQFracs:       []float64{0.50, 0.10},
		GlobalMinSupp: 0.90,
		Fig8Sweep:     []float64{0.95, 0.90, 0.85},
	}
}

func tinyEnv(t testing.TB) *Env {
	t.Helper()
	env, err := Setup(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestSpecsProfiles(t *testing.T) {
	quick := Specs(false, 1)
	full := Specs(true, 1)
	if len(quick) != 3 || len(full) != 3 {
		t.Fatal("want 3 specs per profile")
	}
	for i := range quick {
		if quick[i].Config.Records > full[i].Config.Records {
			t.Errorf("%s: quick profile larger than full", quick[i].Name)
		}
		if quick[i].Primary < full[i].Primary {
			t.Errorf("%s: quick primary below full", quick[i].Name)
		}
	}
	if _, err := SpecByName(quick, "mushroom"); err != nil {
		t.Error(err)
	}
	if _, err := SpecByName(quick, "nope"); err == nil {
		t.Error("unknown spec must error")
	}
}

func TestRandomFocalSubsetApproximatesTarget(t *testing.T) {
	env := tinyEnv(t)
	rng := rand.New(rand.NewSource(3))
	m := env.Dataset.NumRecords()
	for _, frac := range []float64{0.5, 0.2, 0.05} {
		for i := 0; i < 5; i++ {
			reg := env.RandomFocalSubset(rng, frac)
			size := env.Engine.Index.SubsetBitmap(reg).Count()
			got := float64(size) / float64(m)
			if got < frac/8 || got > frac*8 {
				t.Errorf("frac %.2f run %d: |DQ|/m = %.3f (size %d)", frac, i, got, size)
			}
		}
	}
}

func TestRunFig8Monotone(t *testing.T) {
	env := tinyEnv(t)
	rows, err := env.RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].CFIs < rows[i-1].CFIs {
			t.Errorf("CFIs fell from %d to %d as threshold dropped", rows[i-1].CFIs, rows[i].CFIs)
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, "chess", rows)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("printer output malformed")
	}
}

func TestRunPlanGridAndPrinters(t *testing.T) {
	env := tinyEnv(t)
	rng := rand.New(rand.NewSource(9))
	cells, err := env.RunPlanGrid(0.85, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(env.Spec.DQFracs)*len(env.Spec.MinSupps) {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if len(c.AvgTime) != 6 {
			t.Errorf("cell %v/%v has %d plan timings", c.DQFrac, c.MinSupp, len(c.AvgTime))
		}
		if c.BestAvg > c.ChosenAvg {
			// BestAvg must be the minimum.
			for _, d := range c.AvgTime {
				if d < c.BestAvg {
					t.Errorf("BestAvg not minimal")
				}
			}
		}
		if c.Regret() < 0 {
			t.Errorf("negative regret %v", c.Regret())
		}
	}
	var buf bytes.Buffer
	PrintPlanGrid(&buf, "chess", cells)
	out := buf.String()
	for _, want := range []string{"S-E-V", "SS-E-U-V", "ARM", "COLARM ->"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output missing %q", want)
		}
	}
	// Figure 12 gains from the same cells.
	row := Gains("chess", cells)
	if len(row.Gains) != 4 {
		t.Errorf("gains = %v", row.Gains)
	}
	buf.Reset()
	PrintGains(&buf, []GainRow{row})
	if !strings.Contains(buf.String(), "Figure 12") {
		t.Error("gains printer malformed")
	}
}

func TestRunAccuracy(t *testing.T) {
	env := tinyEnv(t)
	rng := rand.New(rand.NewSource(11))
	res, err := env.RunAccuracy(1, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := len(env.Spec.DQFracs) * len(env.Spec.MinSupps) * len(env.Spec.MinConfs)
	if res.Scenarios != want {
		t.Fatalf("scenarios = %d, want %d", res.Scenarios, want)
	}
	if res.Correct < 0 || res.Correct > res.Scenarios {
		t.Fatal("correct count out of range")
	}
	var buf bytes.Buffer
	PrintAccuracy(&buf, []AccuracyResult{res}, 0.25)
	if !strings.Contains(buf.String(), "overall") {
		t.Error("accuracy printer malformed")
	}
}

func TestRunLocalVsGlobal(t *testing.T) {
	env := tinyEnv(t)
	rng := rand.New(rand.NewSource(13))
	rows := env.RunLocalVsGlobal(2, rng)
	if len(rows) != len(env.Spec.DQFracs) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ascending DQ order.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].DQFrac > rows[i].DQFrac {
			t.Error("rows not ascending")
		}
	}
	var buf bytes.Buffer
	PrintFig13(&buf, "chess", rows)
	if !strings.Contains(buf.String(), "fresh-local") {
		t.Error("fig13 printer malformed")
	}
}

func TestRunSimpson(t *testing.T) {
	env := tinyEnv(t)
	// The chess generator plants a pattern inside f00 = f001.
	rep, err := env.RunSimpson("f00", "f001", 0.85, 0.95, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SubsetSize == 0 {
		t.Fatal("subset empty")
	}
	if rep.LocalCFIs < rep.HiddenCFIs {
		t.Error("hidden exceeds local")
	}
	var buf bytes.Buffer
	PrintSimpson(&buf, rep)
	if !strings.Contains(buf.String(), "Simpson") {
		t.Error("simpson printer malformed")
	}
	// Errors.
	if _, err := env.RunSimpson("nope", "x", 0.8, 0.4, 3); err == nil {
		t.Error("unknown attribute must error")
	}
	if _, err := env.RunSimpson("f00", "zzz", 0.8, 0.4, 3); err == nil {
		t.Error("unknown value must error")
	}
}

func TestPlanEquivalenceOnBenchmarkData(t *testing.T) {
	// Integration check: all plans answer identically on generated
	// benchmark data, not just the random property datasets.
	env := tinyEnv(t)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3; i++ {
		reg := env.RandomFocalSubset(rng, 0.25)
		q := env.QueryFor(reg, 0.85, 0.9)
		var ref []string
		for _, k := range []plans.Kind{plans.SEV, plans.SVS, plans.SSEV, plans.SSVS, plans.SSEUV} {
			res, err := env.Engine.Executor.Run(k, q)
			if err != nil {
				t.Fatal(err)
			}
			var keys []string
			for _, r := range res.Rules {
				keys = append(keys, r.Key())
			}
			if ref == nil {
				ref = keys
				continue
			}
			if len(keys) != len(ref) {
				t.Fatalf("plan %v: %d rules vs %d", k, len(keys), len(ref))
			}
			for j := range keys {
				if keys[j] != ref[j] {
					t.Fatalf("plan %v rule %d differs", k, j)
				}
			}
		}
	}
}
