package colarm

import (
	"io"
	"os"

	"colarm/internal/core"
	"colarm/internal/cost"
	"colarm/internal/mip"
	"colarm/internal/plans"
)

// Save serializes the engine's MIP-index (dataset, closed frequent
// itemsets, bounding boxes) to w. The offline mining phase is the
// expensive part of Open; a saved index restores in milliseconds with
// LoadEngine, so indexes can be built once and shipped to query-serving
// processes — the preprocess-once-query-many contract made durable.
func (e *Engine) Save(w io.Writer) error {
	_, err := e.eng.Index.WriteTo(w)
	return err
}

// SaveFile writes the index snapshot to a file.
func (e *Engine) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEngine restores an engine from a snapshot written by Save. opts
// controls the runtime knobs only (calibration, check mode); the index
// parameters (primary support, fanout, packing) come from the snapshot.
func LoadEngine(r io.Reader, opts Options) (*Engine, error) {
	idx, err := mip.ReadIndex(r)
	if err != nil {
		return nil, err
	}
	return engineFromIndex(idx, opts)
}

// LoadEngineFile restores an engine from a snapshot file.
func LoadEngineFile(path string, opts Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEngine(f, opts)
}

func engineFromIndex(idx *mip.Index, opts Options) (*Engine, error) {
	units := cost.Units{}
	if opts.Calibrate {
		units = cost.MeasureUnits(idx.Dataset.NumRecords(), idx.Dataset.NumAttrs())
	}
	mode, err := plans.ParseCheckMode(opts.CheckMode)
	if err != nil {
		return nil, err
	}
	ex := plans.NewExecutor(idx)
	ex.Mode = mode
	ex.Workers = opts.Workers
	model := cost.NewModel(idx, units)
	model.Mode = mode
	eng := &core.Engine{Index: idx, Executor: ex, Model: model}
	eng.InitObservability(idx.Dataset.Name, opts.Metrics.registry(), opts.AccuracyTolerance)
	return &Engine{eng: eng, ds: &Dataset{rel: idx.Dataset}, trackAccuracy: opts.TrackAccuracy}, nil
}
