package obs

import "sync"

// AccuracyTracker maintains the running plan-choice accuracy figure:
// for each evaluated query, whether the cost-based optimizer picked the
// empirically cheapest plan, and by what fraction the chosen plan's
// measured time exceeded the best plan's when it did not (the regret).
// Mirroring the paper's §5.1 methodology, a miss whose regret stays
// within the tolerance still counts as correct — plans within a few
// percent of each other are an arbitrary coin flip to measure.
type AccuracyTracker struct {
	tol float64

	mu            sync.Mutex
	queries       int
	correct       int
	misses        int // queries where the chosen plan was not the argmin
	missRegretSum float64
	missRegretMax float64
}

// NewAccuracyTracker creates a tracker with the given regret tolerance;
// tol <= 0 selects the paper's 5%.
func NewAccuracyTracker(tol float64) *AccuracyTracker {
	if tol <= 0 {
		tol = 0.05
	}
	return &AccuracyTracker{tol: tol}
}

// Record scores one evaluated query: chosenIsBest reports whether the
// optimizer's plan was the measured argmin, regret the extra-cost
// fraction of the chosen plan over the best one (0 when chosenIsBest).
// It returns whether the choice counts as correct under the tolerance.
func (t *AccuracyTracker) Record(chosenIsBest bool, regret float64) bool {
	correct := chosenIsBest || regret <= t.tol
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queries++
	if correct {
		t.correct++
	}
	if !chosenIsBest {
		t.misses++
		t.missRegretSum += regret
		if regret > t.missRegretMax {
			t.missRegretMax = regret
		}
	}
	return correct
}

// AccuracyReport is a snapshot of the tracker.
type AccuracyReport struct {
	Tolerance float64
	Queries   int // evaluated queries
	Correct   int // choices correct under the tolerance
	// MissRegretMax and MissRegretAvg summarize the regret of the
	// queries where the chosen plan was not the measured argmin
	// (including tolerated near-ties).
	MissRegretMax float64
	MissRegretAvg float64
}

// Accuracy returns the fraction of correct choices (0 when nothing has
// been evaluated yet).
func (r AccuracyReport) Accuracy() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Queries)
}

// Report snapshots the tracker.
func (t *AccuracyTracker) Report() AccuracyReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := AccuracyReport{Tolerance: t.tol, Queries: t.queries, Correct: t.correct, MissRegretMax: t.missRegretMax}
	if t.misses > 0 {
		r.MissRegretAvg = t.missRegretSum / float64(t.misses)
	}
	return r
}
