// Package advisor closes the optimizer's feedback loop: it turns the
// engine's observability exhaust — per-operator traces, all-plan choice
// evaluations, and the query log — into two kinds of tuning decisions.
//
// Online cost recalibration (recal.go) maintains, per primitive unit
// cost, an EWMA of the log-ratio between measured and predicted
// operator times, attributed to units by their share of each operator's
// predicted cost. When predictions are persistently biased — enough
// samples, a drift score above threshold for consecutive evaluations —
// it proposes candidate units, but swaps them in only after a guardrail
// replay proves the candidate's plan choices never regress measured
// cost beyond the accuracy tolerance against the static-units choices
// over the logged evaluation window.
//
// Workload-driven index advice (workload.go) mines the query log for
// queries the applicability gate forced to the ARM plan — localized
// thresholds below the base index's primary-support count — and
// recommends building a second physical MIP-index at a lower primary
// support once the accumulated measured-over-estimated cost gap pays
// for the build, and dropping a secondary that stops winning queries.
//
// The package is engine-agnostic: it consumes coefficient vectors and
// durations, and produces reports and recommendations; the core engine
// owns applying them (swapping model units, building and dropping
// physical indexes).
package advisor

import (
	"sync"
	"time"

	"colarm/internal/cost"
)

// Config tunes the advisor. Zero values select the defaults noted on
// each field.
type Config struct {
	// Alpha is the EWMA smoothing factor for per-unit bias (default
	// 0.25).
	Alpha float64
	// MinSamples is the minimum number of attributed operator
	// observations before a recalibration swap is considered
	// (default 24).
	MinSamples int
	// DriftThreshold is the absolute log-bias above which the live
	// units count as drifted from the evidence (default ln(1.25): a
	// sustained 25% misprediction).
	DriftThreshold float64
	// BiasStreak is the number of consecutive Recalibrate evaluations
	// the drift must persist before a swap is attempted (default 2).
	BiasStreak int
	// GuardrailTolerance is the regret fraction by which a replayed
	// plan choice under candidate units may exceed the static-units
	// choice's measured cost (default 0.05, the paper's §5.1
	// tolerance).
	GuardrailTolerance float64
	// ReplayWindow bounds the logged choice evaluations kept for the
	// guardrail replay (default 256).
	ReplayWindow int
	// LogWindow bounds the query-log ring feeding index advice
	// (default 1024).
	LogWindow int
	// MinBenefitFactor scales the estimated build cost the accumulated
	// workload benefit must clear before a secondary index build is
	// recommended (default 1).
	MinBenefitFactor float64
	// DropWinFraction is the fraction of recent queries a secondary
	// index must win to stay; below it a drop is recommended
	// (default 0.02).
	DropWinFraction float64
	// MinDropWindow is the minimum number of logged queries before a
	// drop recommendation is considered (default 32).
	MinDropWindow int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 {
		c.Alpha = 0.25
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 24
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.2231435513 // ln 1.25
	}
	if c.BiasStreak <= 0 {
		c.BiasStreak = 2
	}
	if c.GuardrailTolerance <= 0 {
		c.GuardrailTolerance = 0.05
	}
	if c.ReplayWindow <= 0 {
		c.ReplayWindow = 256
	}
	if c.LogWindow <= 0 {
		c.LogWindow = 1024
	}
	if c.MinBenefitFactor <= 0 {
		c.MinBenefitFactor = 1
	}
	if c.DropWinFraction <= 0 {
		c.DropWinFraction = 0.02
	}
	if c.MinDropWindow <= 0 {
		c.MinDropWindow = 32
	}
	return c
}

// Advisor is one engine's self-tuning state: the unit recalibrator and
// the workload log. Safe for concurrent use; observation calls are
// cheap (ring appends and a few floating-point updates) and sit on the
// traced-query path only.
type Advisor struct {
	mu  sync.Mutex
	cfg Config

	cal recalibrator
	log workload
}

// New creates an advisor calibrated against the given static units —
// the fixed reference every bias and every guardrail replay is measured
// from.
func New(static cost.Units, cfg Config) *Advisor {
	a := &Advisor{cfg: cfg.withDefaults()}
	a.cal.init(static, a.cfg)
	a.log.init(a.cfg)
	return a
}

// LiveUnits returns the units the optimizer should currently estimate
// with: the static units until a recalibration swap, the swapped
// candidate after.
func (a *Advisor) LiveUnits() cost.Units {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cal.live
}

// StaticUnits returns the fixed reference units.
func (a *Advisor) StaticUnits() cost.Units {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cal.static
}

// ObserveTerms feeds one traced query's per-operator evidence: each
// term pairs the executed operator's measured duration with its
// predicted-cost coefficient vector.
func (a *Advisor) ObserveTerms(terms []TermObservation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, t := range terms {
		a.cal.observeTerm(t)
	}
}

// ObserveChoice appends one all-plans evaluation to the guardrail
// replay window.
func (a *Advisor) ObserveChoice(c ChoiceObservation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cal.observeChoice(c)
}

// ObserveQuery appends one mined query to the workload log.
func (a *Advisor) ObserveQuery(q QueryObservation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.log.observe(q)
}

// Recalibrate runs one drift evaluation: it advances the bias streak,
// and when the drift has persisted long enough it replays the logged
// choices under the candidate units and swaps them in if the guardrail
// passes. The returned report describes the decision either way.
func (a *Advisor) Recalibrate() CalibrationReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cal.recalibrate(time.Now())
}

// Calibration returns the recalibrator's current state without
// advancing the streak — the read-only view the reporting surfaces use.
func (a *Advisor) Calibration() CalibrationReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cal.report(false)
}

// Recommendations mines the workload log against the currently
// installed secondary indexes. buildCost is the engine's measured
// index-build duration (the price a build recommendation must pay for).
func (a *Advisor) Recommendations(records int, secondaries []SecondaryState, buildCost time.Duration) []Recommendation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.log.recommendations(records, secondaries, buildCost, a.cfg)
}

// WorkloadStats summarizes the logged window.
func (a *Advisor) WorkloadStats() WorkloadStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.log.stats()
}
