package colarmql

import (
	"strings"
	"testing"
)

func TestParseFullStatement(t *testing.T) {
	src := `REPORT LOCALIZED ASSOCIATION RULES
FROM salary
WHERE RANGE Location = (Seattle), Gender = (F), Age = (20-30, 30-40)
AND ITEM ATTRIBUTES Age, Salary
HAVING minsupport = 0.70 AND minconfidence = 0.95;`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "salary" {
		t.Errorf("dataset = %q", st.Dataset)
	}
	if len(st.Range) != 3 {
		t.Fatalf("range clauses = %d", len(st.Range))
	}
	if st.Range[2].Attr != "Age" || len(st.Range[2].Values) != 2 || st.Range[2].Values[1] != "30-40" {
		t.Errorf("age clause = %+v", st.Range[2])
	}
	if len(st.ItemAttrs) != 2 || st.ItemAttrs[1] != "Salary" {
		t.Errorf("item attrs = %v", st.ItemAttrs)
	}
	if st.MinSupport != 0.70 || st.MinConfidence != 0.95 {
		t.Errorf("thresholds = %v, %v", st.MinSupport, st.MinConfidence)
	}
	if st.Plan != "" {
		t.Errorf("plan = %q", st.Plan)
	}
}

func TestParsePercentagesAndPlan(t *testing.T) {
	src := `report localized association rules from chess
where range piece = ('white king', "black rook")
having minsupport = 80% and minconfidence = 85
using plan SS-E-U-V`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.MinSupport != 0.80 {
		t.Errorf("minsupport = %v", st.MinSupport)
	}
	if st.MinConfidence != 0.85 {
		t.Errorf("minconfidence = %v", st.MinConfidence)
	}
	if st.Range[0].Values[0] != "white king" || st.Range[0].Values[1] != "black rook" {
		t.Errorf("quoted values = %v", st.Range[0].Values)
	}
	if st.Plan != "SS-E-U-V" {
		t.Errorf("plan = %q", st.Plan)
	}
}

func TestParseNoWhereClause(t *testing.T) {
	st, err := Parse(`REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 0.5 AND minconfidence = 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Range) != 0 || len(st.ItemAttrs) != 0 {
		t.Error("expected empty clauses")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"REPORT RULES FROM d HAVING minsupport = 0.5 AND minconfidence = 0.5",
		"REPORT LOCALIZED ASSOCIATION RULES FROM",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d WHERE RANGE HAVING minsupport = 0.5 AND minconfidence = 0.5",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d WHERE RANGE a = () HAVING minsupport = 0.5 AND minconfidence = 0.5",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d WHERE RANGE a = (x HAVING minsupport = 0.5 AND minconfidence = 0.5",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 0.5",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 0 AND minconfidence = 0.5",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 150% AND minconfidence = 5",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 0.5 AND minconfidence = 0.5 garbage",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d WHERE RANGE a = (x), a = (y) HAVING minsupport = 0.5 AND minconfidence = 0.5",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 0.5 AND minconfidence = 'abc'",
		"REPORT LOCALIZED ASSOCIATION RULES FROM d WHERE RANGE a = ('unterminated) HAVING minsupport = 0.5 AND minconfidence = 0.5",
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: bad query parsed: %s", i, src)
		}
	}
}

func TestMinConfidencePercentHeuristic(t *testing.T) {
	// minconfidence = 5 means 5%, since values above 1 read as percent.
	st, err := Parse(`REPORT LOCALIZED ASSOCIATION RULES FROM d HAVING minsupport = 0.5 AND minconfidence = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if st.MinConfidence != 0.05 {
		t.Errorf("minconfidence = %v, want 0.05", st.MinConfidence)
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := `REPORT LOCALIZED ASSOCIATION RULES
FROM salary
WHERE RANGE Location = (Seattle, Boston)
AND ITEM ATTRIBUTES Age, Salary
HAVING minsupport = 0.7 AND minconfidence = 0.95
USING PLAN ARM;`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Parse(st.String())
	if err != nil {
		t.Fatalf("rendered statement failed to parse: %v\n%s", err, st.String())
	}
	if st2.Dataset != st.Dataset || st2.MinSupport != st.MinSupport ||
		st2.Plan != st.Plan || len(st2.Range) != len(st.Range) {
		t.Error("round trip lost information")
	}
}

func TestLexerUnicodeAndEscapes(t *testing.T) {
	st, err := Parse(`REPORT LOCALIZED ASSOCIATION RULES FROM d ` +
		`WHERE RANGE city = ('Zü\'rich') HAVING minsupport = 0.5 AND minconfidence = 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Range[0].Values[0] != "Zü'rich" {
		t.Errorf("escaped value = %q", st.Range[0].Values[0])
	}
	if _, err := Parse("REPORT @ FROM d"); err == nil {
		t.Error("invalid character must error")
	}
}

func TestNumericBareValues(t *testing.T) {
	// Range values that look numeric (e.g. year = (1990, 2000)).
	st, err := Parse(`REPORT LOCALIZED ASSOCIATION RULES FROM d ` +
		`WHERE RANGE year = (1990, 2000) HAVING minsupport = 0.5 AND minconfidence = 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Range[0].Values) != 2 || st.Range[0].Values[0] != "1990" {
		t.Errorf("numeric values = %v", st.Range[0].Values)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	if _, err := Parse(`RePoRt LoCaLiZeD aSsOcIaTiOn RuLeS fRoM d HaViNg MiNsUpPoRt = 0.5 aNd MiNcOnFiDeNcE = 0.5`); err != nil {
		t.Fatal(err)
	}
}

func TestStatementStringContainsClauses(t *testing.T) {
	st := &Statement{
		Dataset:       "d",
		Range:         []RangeClause{{Attr: "a", Values: []string{"x"}}},
		ItemAttrs:     []string{"b"},
		MinSupport:    0.5,
		MinConfidence: 0.6,
	}
	s := st.String()
	for _, want := range []string{"FROM d", "WHERE RANGE a = (x)", "ITEM ATTRIBUTES b", "minsupport = 0.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
