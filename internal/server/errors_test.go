package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"colarm"
	"colarm/internal/standing"
)

// TestErrorEnvelopeByRoute is the route x error-class table: every /v1
// error response must carry the structured envelope with the expected
// machine-readable code — and nothing else: the deprecated flat
// legacyError field is gone.
func TestErrorEnvelopeByRoute(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxSubscriptions: 2})
	h := s.Handler()

	goodQuery := func(extra map[string]any) map[string]any {
		body := map[string]any{
			"dataset": "salary", "minSupport": 0.3, "minConfidence": 0.5,
			"range": map[string][]string{"Location": {"Seattle"}},
		}
		for k, v := range extra {
			body[k] = v
		}
		return body
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   map[string]any
		status int
		code   string
	}{
		{"mine unknown dataset", "POST", "/v1/mine",
			goodQuery(map[string]any{"dataset": "nope"}),
			http.StatusNotFound, CodeNotFound},
		{"mine unknown attribute", "POST", "/v1/mine",
			goodQuery(map[string]any{"range": map[string][]string{"Planet": {"Mars"}}}),
			http.StatusBadRequest, CodeUnknownAttribute},
		{"mine unknown value", "POST", "/v1/mine",
			goodQuery(map[string]any{"range": map[string][]string{"Location": {"Atlantis"}}}),
			http.StatusBadRequest, CodeUnknownValue},
		{"mine bad threshold", "POST", "/v1/mine",
			goodQuery(map[string]any{"minSupport": 7.0}),
			http.StatusBadRequest, CodeBadThreshold},
		{"mine unknown plan", "POST", "/v1/mine",
			goodQuery(map[string]any{"plan": "X-Y-Z"}),
			http.StatusBadRequest, CodeUnknownPlan},
		{"mine malformed body", "POST", "/v1/mine",
			map[string]any{"bogus": 1},
			http.StatusBadRequest, CodeBadRequest},
		{"explain unknown value", "POST", "/v1/explain",
			goodQuery(map[string]any{"range": map[string][]string{"Gender": {"X"}}}),
			http.StatusBadRequest, CodeUnknownValue},
		{"ingest unknown dataset", "POST", "/v1/ingest",
			map[string]any{"dataset": "nope"},
			http.StatusNotFound, CodeNotFound},
		{"ingest bad record id", "POST", "/v1/ingest",
			map[string]any{"dataset": "salary", "deletes": []int{99999}},
			http.StatusBadRequest, CodeBadRecordID},
		{"ingest unknown value", "POST", "/v1/ingest",
			map[string]any{"dataset": "salary", "inserts": []map[string]string{{
				"Company": "IBM", "Title": "QA Lead", "Location": "Atlantis",
				"Gender": "M", "Age": "30-40", "Salary": "60K-90K"}}},
			http.StatusBadRequest, CodeUnknownValue},
		{"subscribe unknown dataset", "POST", "/v1/subscriptions",
			goodQuery(map[string]any{"dataset": "nope"}),
			http.StatusNotFound, CodeNotFound},
		{"subscribe bad track", "POST", "/v1/subscriptions",
			goodQuery(map[string]any{"track": map[string]any{"measure": "zeal", "threshold": 1}}),
			http.StatusBadRequest, CodeBadTrack},
		{"subscribe bad threshold", "POST", "/v1/subscriptions",
			goodQuery(map[string]any{"minSupport": 0.0}),
			http.StatusBadRequest, CodeBadThreshold},
		{"subscription not found", "GET", "/v1/subscriptions/sub-404", nil,
			http.StatusNotFound, CodeNotFound},
		{"subscription delete not found", "DELETE", "/v1/subscriptions/sub-404", nil,
			http.StatusNotFound, CodeNotFound},
		{"events not found", "GET", "/v1/subscriptions/sub-404/events?wait=1ms", nil,
			http.StatusNotFound, CodeNotFound},
		{"mine wrong method", "GET", "/v1/mine", nil,
			http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"datasets wrong method", "POST", "/v1/datasets", nil,
			http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"subscription wrong method", "PUT", "/v1/subscriptions/sub-1", nil,
			http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"dataset detail not found", "GET", "/v1/datasets/nope", nil,
			http.StatusNotFound, CodeNotFound},
		{"advisor not found", "GET", "/v1/datasets/nope/advisor", nil,
			http.StatusNotFound, CodeNotFound},
		{"advisor apply not found", "POST", "/v1/datasets/nope/advisor/apply",
			map[string]any{},
			http.StatusNotFound, CodeNotFound},
		{"advisor wrong method", "DELETE", "/v1/datasets/salary/advisor", nil,
			http.StatusMethodNotAllowed, CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		var w *httptest.ResponseRecorder
		if tc.body != nil {
			w = postJSON(t, h, tc.path, tc.body)
		} else {
			req := httptest.NewRequest(tc.method, tc.path, nil)
			w = httptest.NewRecorder()
			h.ServeHTTP(w, req)
		}
		if w.Code != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, w.Code, tc.status, w.Body.String())
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: body is not the error envelope: %s", tc.name, w.Body.String())
			continue
		}
		if er.Error.Code != tc.code {
			t.Errorf("%s: error.code %q, want %q", tc.name, er.Error.Code, tc.code)
		}
		if er.Error.Message == "" {
			t.Errorf("%s: envelope missing message: %s", tc.name, w.Body.String())
		}
		// The migration-window legacyError field must be gone from the
		// wire format entirely.
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(w.Body.Bytes(), &raw); err == nil {
			if _, ok := raw["legacyError"]; ok {
				t.Errorf("%s: envelope still carries legacyError: %s", tc.name, w.Body.String())
			}
		}
	}

	// Subscription limit: the cap is 2; the third create must carry
	// subscription_limit.
	for i := 0; i < 2; i++ {
		q := goodQuery(nil)
		q["minSupport"] = 0.3 + float64(i)/10 // distinct canonical forms
		w := postJSON(t, h, "/v1/subscriptions", q)
		if w.Code != http.StatusCreated {
			t.Fatalf("create %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	w := postJSON(t, h, "/v1/subscriptions", goodQuery(map[string]any{"minSupport": 0.55}))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit create: status %d, body %s", w.Code, w.Body.String())
	}
	var er errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Code != CodeSubscriptionLimit {
		t.Fatalf("over-limit create: code %q, want %q", er.Error.Code, CodeSubscriptionLimit)
	}
}

// TestClassify pins the mapping for error classes that are awkward to
// trigger over HTTP deterministically.
func TestClassify(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{conflictError{err: fmt.Errorf("x"), dataset: "d"}, http.StatusConflict, CodeRebuildInProgress},
		{errOverloaded, http.StatusTooManyRequests, CodeOverloaded},
		{standing.ErrLimit, http.StatusTooManyRequests, CodeSubscriptionLimit},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, CodeDeadlineExceeded},
		{context.Canceled, 499, CodeClientClosedRequest},
		{fmt.Errorf("wrapped: %w", colarm.ErrBadRecordID), http.StatusBadRequest, CodeBadRecordID},
		{badRequestError{errors.New("x")}, http.StatusBadRequest, CodeBadRequest},
		{fmt.Errorf("%w %q", standing.ErrNoDataset, "d"), http.StatusNotFound, CodeNotFound},
		{errors.New("boom"), http.StatusInternalServerError, CodeInternal},
	}
	for _, tc := range cases {
		status, code := classify(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("classify(%v) = (%d, %q), want (%d, %q)", tc.err, status, code, tc.status, tc.code)
		}
	}

	// A 409 envelope carries the dataset in details.
	s, _ := newTestServer(t, Config{})
	w := httptest.NewRecorder()
	s.fail(w, "ingest", conflictError{err: fmt.Errorf("dataset %q is rebuilding", "salary"), dataset: "salary"})
	var er errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Details["dataset"] != "salary" {
		t.Fatalf("conflict details = %v, want dataset=salary", er.Error.Details)
	}
}
