package charm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colarm/internal/bitset"
	"colarm/internal/itemset"
	"colarm/internal/relation"
)

// salary builds the paper's Table 1 dataset.
func salary(t testing.TB) (*relation.Dataset, *itemset.Space) {
	t.Helper()
	b := relation.NewBuilder("salary", "Company", "Title", "Location", "Gender", "Age", "Salary")
	rows := [][]string{
		{"IBM", "QA Lead", "Boston", "M", "30-40", "60K-90K"},
		{"IBM", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"IBM", "Engg Mgr", "SFO", "M", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "SFO", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "M", "20-30", "90K-120K"},
		{"Google", "Tech Arch", "Boston", "M", "40-50", "120K-150K"},
		{"Microsoft", "Engg Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Microsoft", "Sw Engg", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Engg", "Seattle", "F", "20-30", "30K-60K"},
	}
	for _, r := range rows {
		if err := b.AddRecord(r...); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	return d, itemset.NewSpace(d)
}

func TestCountFor(t *testing.T) {
	cases := []struct {
		supp float64
		m    int
		want int
	}{
		{0.5, 10, 5}, {0.45, 11, 5}, {0.27, 11, 3}, {0.001, 10, 1}, {1.0, 7, 7},
	}
	for _, c := range cases {
		if got := CountFor(c.supp, c.m); got != c.want {
			t.Errorf("CountFor(%v, %d) = %d, want %d", c.supp, c.m, got, c.want)
		}
	}
}

func TestMineSupportValidation(t *testing.T) {
	d, sp := salary(t)
	if _, err := MineSupport(d, sp, 0); err == nil {
		t.Error("support 0 must error")
	}
	if _, err := MineSupport(d, sp, 1.5); err == nil {
		t.Error("support > 1 must error")
	}
	if _, err := Mine(d, sp, 0); err == nil {
		t.Error("count 0 must error")
	}
}

// TestPaperGlobalRule verifies the paper's running example: the global
// rule (Age=20-30 → Salary=90K-120K) has support 5/11 and the itemset
// {A0, S2} appears among the CFIs with support 5.
func TestPaperGlobalRule(t *testing.T) {
	d, sp := salary(t)
	res, err := Mine(d, sp, 2)
	if err != nil {
		t.Fatal(err)
	}
	a0, err := sp.ParseItem("Age=20-30")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sp.ParseItem("Salary=90K-120K")
	if err != nil {
		t.Fatal(err)
	}
	target := itemset.NewSet(a0, s2)
	found := false
	for _, c := range res.Closed {
		if target.SubsetOf(c.Items) && c.Support == 5 {
			found = true
			// Closure of {A0,S2} must be exactly the 5 matching records.
			want := bitset.FromIDs(11, 1, 2, 3, 4, 5)
			if !c.Tids.Equal(want) && target.Equal(c.Items) {
				t.Errorf("tidset of %s = %v, want %v", c.Items.Format(sp), c.Tids, want)
			}
		}
	}
	if !found {
		t.Error("closure of (Age=20-30, Salary=90K-120K) with support 5 not found")
	}
}

func TestClosedSetsAreClosedAndFrequent(t *testing.T) {
	d, sp := salary(t)
	tidsets := itemset.ItemTidsets(d, sp)
	res, err := Mine(d, sp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Closed) == 0 {
		t.Fatal("no CFIs mined")
	}
	for _, c := range res.Closed {
		if c.Support < 2 {
			t.Errorf("%s support %d below threshold", c.Items.Format(sp), c.Support)
		}
		if c.Support != c.Tids.Count() {
			t.Errorf("%s cached support %d != tidset %d", c.Items.Format(sp), c.Support, c.Tids.Count())
		}
		// Tidset must be the intersection of the member items' tidsets.
		inter := bitset.New(d.NumRecords())
		inter.Fill()
		for _, it := range c.Items {
			inter.And(tidsets[it])
		}
		if !inter.Equal(c.Tids) {
			t.Errorf("%s tidset mismatch", c.Items.Format(sp))
		}
		if !isClosed(c.Items, c.Tids, tidsets) {
			t.Errorf("%s is not closed", c.Items.Format(sp))
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, c := range res.Closed {
		k := c.Items.Key()
		if seen[k] {
			t.Errorf("duplicate CFI %s", c.Items.Format(sp))
		}
		seen[k] = true
	}
}

func TestCharmMatchesBruteForceOnSalary(t *testing.T) {
	d, sp := salary(t)
	tidsets := itemset.ItemTidsets(d, sp)
	for _, minCount := range []int{1, 2, 3, 4, 5, 6} {
		res, err := Mine(d, sp, minCount)
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForceClosed(tidsets, d.NumRecords(), minCount)
		if !sameClosed(res.Closed, want) {
			t.Errorf("minCount=%d: charm %d CFIs, brute force %d", minCount, len(res.Closed), len(want))
		}
	}
}

func sameClosed(a, b []*ClosedSet) bool {
	if len(a) != len(b) {
		return false
	}
	am := map[string]int{}
	for _, c := range a {
		am[c.Items.Key()] = c.Support
	}
	for _, c := range b {
		if s, ok := am[c.Items.Key()]; !ok || s != c.Support {
			return false
		}
	}
	return true
}

// randomDataset builds a small random relational dataset.
func randomDataset(r *rand.Rand) (*relation.Dataset, *itemset.Space) {
	nAttrs := 2 + r.Intn(3)
	cards := make([]int, nAttrs)
	names := make([]string, nAttrs)
	for i := range cards {
		cards[i] = 2 + r.Intn(3)
		names[i] = string(rune('A' + i))
	}
	b := relation.NewBuilder("rand", names...)
	for a := 0; a < nAttrs; a++ {
		for v := 0; v < cards[a]; v++ {
			b.AddValue(a, string(rune('a'+a))+string(rune('0'+v)))
		}
	}
	m := 5 + r.Intn(25)
	for i := 0; i < m; i++ {
		row := make([]int, nAttrs)
		for a := range row {
			row[a] = r.Intn(cards[a])
		}
		if err := b.AddRecordIdx(row...); err != nil {
			panic(err)
		}
	}
	d := b.Build()
	return d, itemset.NewSpace(d)
}

// Property: CHARM output equals brute-force closed itemsets on random
// relational datasets — the core correctness invariant of the offline
// phase.
func TestQuickCharmEqualsBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, sp := randomDataset(r)
		tidsets := itemset.ItemTidsets(d, sp)
		minCount := 1 + r.Intn(d.NumRecords()/2+1)
		res, err := Mine(d, sp, minCount)
		if err != nil {
			return false
		}
		want := BruteForceClosed(tidsets, d.NumRecords(), minCount)
		return sameClosed(res.Closed, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: lowering the threshold never loses CFIs mined at a higher
// threshold (monotonicity of the closed-set family).
func TestQuickThresholdMonotonicity(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, sp := randomDataset(r)
		hi := 2 + r.Intn(5)
		lo := 1 + r.Intn(hi)
		resHi, err := Mine(d, sp, hi)
		if err != nil {
			return false
		}
		resLo, err := Mine(d, sp, lo)
		if err != nil {
			return false
		}
		low := map[string]int{}
		for _, c := range resLo.Closed {
			low[c.Items.Key()] = c.Support
		}
		for _, c := range resHi.Closed {
			if s, ok := low[c.Items.Key()]; !ok || s != c.Support {
				return false
			}
		}
		return len(resLo.Closed) >= len(resHi.Closed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMineTidsetsSkipsNil(t *testing.T) {
	// Universe of 3 items over 4 records, the middle item masked out.
	tidsets := []*bitset.Set{
		bitset.FromIDs(4, 0, 1, 2),
		nil,
		bitset.FromIDs(4, 1, 2, 3),
	}
	res, err := MineTidsets(tidsets, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Closed {
		if c.Items.Contains(1) {
			t.Errorf("masked item leaked into %v", c.Items)
		}
	}
	if len(res.Closed) == 0 {
		t.Fatal("expected CFIs from unmasked items")
	}
}

func TestDeterminism(t *testing.T) {
	d, sp := salary(t)
	a, err := Mine(d, sp, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(d, sp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Closed) != len(b.Closed) {
		t.Fatal("non-deterministic CFI count")
	}
	for i := range a.Closed {
		if !a.Closed[i].Items.Equal(b.Closed[i].Items) {
			t.Fatalf("order differs at %d", i)
		}
	}
}
