// Command colarm is an interactive localized association rule miner: it
// loads (or generates) a relational dataset, builds the MIP-index, and
// answers queries written in the paper's query language.
//
// Usage:
//
//	colarm -dataset salary [flags]             # built-in datasets
//	colarm -csv data.csv -primary 0.1 [flags]  # your own data
//
//	-dataset NAME   builtin dataset: salary, chess, mushroom, pumsb
//	-csv PATH       load a headed CSV instead (all columns nominal)
//	-primary P      primary support threshold for the index (default
//	                per-dataset for builtins, 0.1 for CSV)
//	-query Q        run one query and exit (otherwise reads stdin)
//	-explain        also print the optimizer's per-plan cost estimates,
//	                the live-calibrated unit costs and their drift
//	-trace          print the per-operator execution trace of each query
//	-measures       print lift/cosine/kulczynski for each rule
//	-limit N        print at most N rules (default 25, 0 = all)
//	-seed N         generator seed for builtin synthetic datasets
//
// Example session:
//
//	$ colarm -dataset salary
//	colarm> REPORT LOCALIZED ASSOCIATION RULES FROM salary
//	     -> WHERE RANGE Location = (Seattle), Gender = (F)
//	     -> AND ITEM ATTRIBUTES Age, Salary
//	     -> HAVING minsupport = 70% AND minconfidence = 95%;
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"colarm"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "builtin dataset: salary, chess, mushroom, pumsb")
		csvPath  = flag.String("csv", "", "load a headed CSV file")
		primary  = flag.Float64("primary", 0, "primary support threshold (0 = per-dataset default)")
		query    = flag.String("query", "", "run one query and exit")
		explain  = flag.Bool("explain", false, "print per-plan cost estimates")
		trace    = flag.Bool("trace", false, "print per-operator execution traces")
		measures = flag.Bool("measures", false, "print extra interestingness measures")
		limit    = flag.Int("limit", 25, "max rules to print (0 = all)")
		seed     = flag.Int64("seed", 1, "generator seed for synthetic datasets")
	)
	flag.Parse()
	if err := run(*dataset, *csvPath, *primary, *query, opts{*explain, *trace, *measures, *limit}, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "colarm:", err)
		os.Exit(1)
	}
}

// opts bundles the per-query output switches.
type opts struct {
	explain  bool
	trace    bool
	measures bool
	limit    int
}

func run(dataset, csvPath string, primary float64, query string, o opts, seed int64) error {
	ds, defPrimary, err := loadDataset(dataset, csvPath, seed)
	if err != nil {
		return err
	}
	if primary == 0 {
		primary = defPrimary
	}
	fmt.Fprintf(os.Stderr, "building MIP-index over %q (%d records, %d attributes) at primary support %.1f%%...\n",
		ds.Name(), ds.NumRecords(), ds.NumAttributes(), 100*primary)
	eng, err := colarm.Open(ds, colarm.Options{PrimarySupport: primary, Calibrate: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "index ready: %d multidimensional itemset partitions\n", eng.NumPartitions())

	if query != "" {
		return execute(context.Background(), eng, query, o)
	}
	return repl(eng, o)
}

func loadDataset(dataset, csvPath string, seed int64) (*colarm.Dataset, float64, error) {
	switch {
	case csvPath != "":
		ds, err := colarm.LoadCSV(csvPath)
		return ds, 0.1, err
	case dataset == "salary" || dataset == "":
		ds, err := colarm.Salary()
		return ds, 0.18, err
	case dataset == "chess":
		ds, err := colarm.GenerateChess(seed)
		return ds, 0.60, err
	case dataset == "mushroom":
		ds, err := colarm.GenerateMushroom(seed)
		return ds, 0.05, err
	case dataset == "pumsb":
		ds, err := colarm.GeneratePUMSB(seed)
		return ds, 0.80, err
	default:
		return nil, 0, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func repl(eng *colarm.Engine, o opts) error {
	fmt.Fprintln(os.Stderr, `enter queries terminated by ';' ("\schema" lists attributes, "\q" quits)`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(os.Stderr, "colarm> ")
		} else {
			fmt.Fprint(os.Stderr, "     -> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case buf.Len() == 0 && (line == `\q` || line == "quit" || line == "exit"):
			return nil
		case buf.Len() == 0 && line == `\schema`:
			printSchema(eng)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			q := buf.String()
			buf.Reset()
			if err := execute(context.Background(), eng, q, o); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		prompt()
	}
	return sc.Err()
}

// printCalibration shows the self-tuning optimizer's pricing state:
// the live unit costs the estimates above were computed with, how far
// the observed-timing evidence says they have drifted, and when the
// recalibrator last swapped them.
func printCalibration(eng *colarm.Engine) {
	cal := eng.Advisor().Calibration
	u := cal.LiveUnits
	tag := "static"
	if u != cal.StaticUnits {
		tag = "recalibrated"
	}
	fmt.Printf("unit costs (%s): wordOp %.2f  boxRel %.2f  idProbe %.2f  mapOp %.2f  genOp %.2f ns\n",
		tag, u.WordOp, u.BoxRel, u.IDProbe, u.MapOp, u.GenOp)
	fmt.Printf("drift %.3f over %d samples", cal.DriftScore, cal.Samples)
	if cal.Swaps > 0 {
		fmt.Printf(" | %d recalibration(s), last %s", cal.Swaps, cal.LastSwap.Format("15:04:05"))
	}
	fmt.Println()
}

func printSchema(eng *colarm.Engine) {
	ds := eng.Dataset()
	for _, attr := range ds.Attributes() {
		vals, _ := ds.Values(attr)
		sort.Strings(vals)
		fmt.Printf("  %-20s %s\n", attr, strings.Join(vals, ", "))
	}
}

func execute(ctx context.Context, eng *colarm.Engine, query string, o opts) error {
	q, err := eng.ParseQuery(query)
	if err != nil {
		return err
	}
	q.Trace = o.trace
	// Ctrl-C aborts the running query (mid-operator, via the engine's
	// context checks) without killing an interactive session.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()
	res, err := eng.MineContext(ctx, q)
	if errors.Is(err, context.Canceled) {
		return fmt.Errorf("query interrupted")
	}
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("plan %s | subset %d records | %d candidates (%d contained, %d partial) | %d rules | %.2fms\n",
		st.Plan, st.SubsetSize, st.Candidates, st.Contained, st.PartialOverlap,
		st.RulesEmitted, float64(st.DurationNanos)/1e6)
	if o.trace && res.Trace != nil {
		fmt.Print(res.Trace.Tree())
	}
	if o.explain && len(res.Estimates) > 0 {
		fmt.Println("optimizer estimates:")
		ests := append([]colarm.PlanEstimate(nil), res.Estimates...)
		sort.Slice(ests, func(i, j int) bool { return ests[i].Cost < ests[j].Cost })
		for _, e := range ests {
			fmt.Printf("  %-10s cost %12.0f  candidates %8.0f  qualified %8.0f\n",
				e.Plan, e.Cost, e.Candidates, e.Qualified)
		}
		printCalibration(eng)
	}
	for i, r := range res.Rules {
		if o.limit > 0 && i >= o.limit {
			fmt.Printf("  ... and %d more rules\n", len(res.Rules)-o.limit)
			break
		}
		fmt.Printf("  %s", r)
		if o.measures {
			fmt.Printf("  lift=%.2f cosine=%.2f kulc=%.2f", r.Lift, r.Cosine, r.Kulczynski)
		}
		fmt.Println()
	}
	return nil
}
