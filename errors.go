package colarm

import "colarm/internal/qerr"

// Sentinel errors classifying query validation failures. Every
// rejection of a malformed Query — from Mine, Explain, MineQL,
// ParsePlan, Query.Validate or Open — wraps exactly one of these, so
// callers distinguish caller mistakes from engine faults with
// errors.Is: the HTTP serving layer maps these four to 400 Bad Request
// and anything else to 500.
var (
	// ErrUnknownAttribute marks a Range key or ItemAttributes entry
	// absent from the dataset schema.
	ErrUnknownAttribute = qerr.ErrUnknownAttribute
	// ErrUnknownValue marks a Range selection label absent from its
	// attribute's value dictionary.
	ErrUnknownValue = qerr.ErrUnknownValue
	// ErrBadThreshold marks MinSupport outside (0,1], MinConfidence
	// outside [0,1], or a negative MaxConsequent.
	ErrBadThreshold = qerr.ErrBadThreshold
	// ErrUnknownPlan marks an unresolvable plan name or Plan value.
	ErrUnknownPlan = qerr.ErrUnknownPlan
	// ErrBadRecordID marks an Ingest delete targeting a record id
	// outside the engine's current id space.
	ErrBadRecordID = qerr.ErrBadRecordID
	// ErrSnapshotVersion marks a LoadEngine stream that is not a
	// snapshot of this build's format version (an older/newer COLARM
	// snapshot, or a foreign file).
	ErrSnapshotVersion = qerr.ErrSnapshotVersion
)
